// Command sweepd is the distributed-sweep coordinator: it shards a
// workload's TLP-combination grid into cells and serves them to
// `sweep -worker` processes over HTTP/JSON, under monotonically-fenced
// leases with heartbeat-driven expiry (DESIGN.md §15).
//
// Usage:
//
//	sweepd -workload BLK_TRD -listen :9900
//	sweep  -worker http://localhost:9900        # on each worker machine
//
// The coordinator is the sweep's durable brain, not its muscle: it
// never simulates. Cells already present in -simcache complete up
// front; everything else is leased out, and accepted completions are
// persisted back into the cache (idempotent fingerprint-keyed puts) and
// into the assignment-state checkpoint (-state, atomic temp+rename), so
// killing and restarting sweepd resumes the sweep without re-running
// finished cells — and without ever reissuing a fencing token a zombie
// worker still holds, because fencing tokens are reserved in persisted
// blocks and the successor resumes above the reservation.
//
// Workers that miss heartbeats or stop making progress have their
// leases expired by a per-worker resilience watchdog (-lease-ttl) and
// their cells reassigned; stale completions are rejected by the fencing
// check. Every state transition is journaled to stderr and mirrored
// into /metrics counters (ebm_dsweep_leases_granted/expired/
// reassigned_total, ebm_dsweep_fenced_rejects_total), and accepted
// completions append worker-attributed provenance records to -ledger
// for `sweep -explain`.
//
// SIGINT/SIGTERM stops serving and exits 130; the state checkpoint and
// the cache keep everything completed so far, and rerunning the same
// command resumes. A second signal kills the process immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ebm/internal/cli"
	"ebm/internal/config"
	"ebm/internal/dsweep"
	"ebm/internal/kernel"
	"ebm/internal/obs"
	"ebm/internal/resilience"
	"ebm/internal/simcache"
	"ebm/internal/workload"
)

func main() { cli.Main("sweepd", run) }

func run(ctx context.Context) error {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	var (
		wlName  = fs.String("workload", "BLK_TRD", "two-application workload to sweep, e.g. BLK_TRD")
		levelsF = fs.String("levels", "", "comma-separated TLP levels per axis (default: the full ladder)")
		cycles  = fs.Uint64("cycles", 120_000, "cycles per combination")
		warmup  = fs.Uint64("warmup", 20_000, "warmup cycles")
		listen  = fs.String("listen", ":9900", "address the coordinator serves the wire protocol (and /metrics) on")
		simc    = fs.String("simcache", "simcache", "shared simulation-result cache directory (empty disables prewarm/persist)")
		stateF  = fs.String("state", "auto",
			"assignment-state checkpoint `file` rewritten atomically on every transition "+
				"(auto = dsweep-state.json beside the -simcache directory; empty disables restart resume)")
		leaseTTL = fs.Duration("lease-ttl", dsweep.DefaultLeaseTTL,
			"no-progress deadline per worker: a lease whose holder stops heartbeating or advancing expires and its cell is reassigned")
		ledgerF = fs.String("ledger", "auto",
			"provenance ledger appended one worker-attributed record per accepted completion "+
				"(auto = ledger.jsonl beside the -simcache directory; empty disables)")
		version = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	if *version {
		fmt.Println("sweepd", cli.Version())
		return nil
	}

	cfg := config.Default()
	wl, ok := workload.ByName(*wlName)
	if !ok || len(wl.Apps) != 2 {
		return cli.Usagef("need a two-application workload; apps: %v", kernel.Names())
	}
	var levels []int
	if *levelsF != "" {
		for _, s := range strings.Split(*levelsF, ",") {
			l, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return cli.Usagef("bad -levels %q: %v", *levelsF, err)
			}
			levels = append(levels, l)
		}
	}
	cells := dsweep.GridCells(wl.Apps, dsweep.GridOptions{
		Config: cfg, Levels: levels, TotalCycles: *cycles, WarmupCycles: *warmup,
	})

	var rcache *simcache.Cache
	if *simc != "" {
		var err error
		rcache, err = simcache.Open(*simc)
		if err != nil {
			return err
		}
	}
	statePath := *stateF
	if statePath == "auto" {
		statePath = ""
		if *simc != "" {
			statePath = filepath.Join(filepath.Dir(*simc), "dsweep-state.json")
		}
	}
	ledgerPath := *ledgerF
	if ledgerPath == "auto" {
		ledgerPath = ""
		if *simc != "" {
			ledgerPath = filepath.Join(filepath.Dir(*simc), "ledger.jsonl")
		}
	}
	var ledger *obs.Ledger
	if ledgerPath != "" {
		l, err := obs.OpenLedger(ledgerPath)
		if err != nil {
			return err
		}
		ledger = l
		defer ledger.Close()
	}

	// Every coordinator state transition lands in the journal; the
	// stderr subscriber narrates it live, and the registry mirrors the
	// lease lifecycle into /metrics.
	journal := obs.NewJournal()
	journal.Subscribe(func(e obs.Event) {
		if e.Kind == obs.EvDsweep || e.Kind == obs.EvResilience {
			fmt.Fprintf(os.Stderr, "sweepd: %s\n", e.Label)
		}
	})
	reg := obs.NewRegistry()
	mon := resilience.NewMonitor(reg, journal)

	coord, err := dsweep.New(dsweep.Options{
		Cells:     cells,
		Cache:     rcache,
		StatePath: statePath,
		LeaseTTL:  *leaseTTL,
		Version:   cli.Version(),
		Journal:   journal,
		Ledger:    ledger,
		Registry:  reg,
		Mon:       mon,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	mux := http.NewServeMux()
	mux.Handle("/", coord.Handler())
	mux.Handle(dsweep.PathMetrics, obs.Handler(reg))
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()

	st := coord.Status()
	fmt.Fprintf(os.Stderr, "sweepd: %s grid: %d cells (%d already done), serving on http://%s\n",
		*wlName, st.Total, st.Done, ln.Addr())
	hint := *listen
	if strings.HasPrefix(hint, ":") {
		hint = "<this-host>" + hint
	}
	fmt.Fprintf(os.Stderr, "sweepd: point workers at it: sweep -worker http://%s\n", hint)

	start := time.Now()
	if err := coord.Wait(ctx); err != nil {
		st := coord.Status()
		fmt.Fprintf(os.Stderr,
			"sweepd: interrupted with %d/%d cells done; state and cache are persisted — rerun the same command to resume\n",
			st.Done, st.Total)
		return err
	}
	st = coord.Status()
	n := st.Counts
	fmt.Fprintf(os.Stderr, "sweepd: sweep complete: %d cells in %v (%d prewarmed, %d resumed, %d completed by workers)\n",
		st.Total, time.Since(start).Round(time.Millisecond), n.Prewarmed, n.Resumed, n.Completed)
	fmt.Fprintf(os.Stderr, "sweepd: leases: %d granted, %d expired, %d reassigned, %d released, %d fenced rejects\n",
		n.Granted, n.Expired, n.Reassigned, n.Released, n.FencedRejects)
	fmt.Fprintf(os.Stderr, "sweepd: results persisted to %s — a local `sweep -workload %s` now replays from cache\n",
		*simc, *wlName)
	return nil
}
