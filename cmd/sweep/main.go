// Command sweep builds the exhaustive TLP-combination grid for a workload
// and prints the metric surfaces plus every search's pick — the raw data
// behind the paper's opt/BF/PBS comparison points.
//
// Usage:
//
//	sweep -workload BLK_TRD
//	sweep -workload BFS_FFT -grids ws,ebws,fi
//	sweep -workload BFS_FFT -cycles 200000
//	sweep -workload BLK_TRD -schemes "dyncta pbs-ws ccws:hivta=0.2"
//	sweep -workload BLK_TRD -o results/blk_trd.txt -listen :8080
//	sweep -workload BLK_TRD -search adaptive -ckpt
//
// -search adaptive replaces the exhaustive grid with the coarse-to-fine
// successive-halving search (DESIGN.md §13): every opt*/BF-*/maxIT pick
// brackets the optimum on a subsampled TLP ladder and refines inside the
// bracket, and candidates simulate short horizons first with the
// dominated fraction pruned each rung — with -ckpt, survivors fork from
// the previous rung's run-end checkpoint and pay only the tail cycles.
// Surfaces are skipped (they need every cell); the PBS offline walks
// read a lazy grid that simulates only the cells they touch. The exit
// report counts pruned candidates and engine cycles actually simulated.
//
// The grid's combinations run concurrently; -parallel bounds the worker
// count (default: all CPUs, runtime.NumCPU). Per-combination progress is
// journaled and echoed to stderr; -listen additionally serves live
// ebm_sweep_combos_done/total gauges (plus cache hit/miss and resilience
// counters) on /metrics. -o tees the report into a file (parent
// directories are created). -cpuprofile/-memprofile write pprof profiles
// of the build. Wall-clock time and simulations per second are reported
// on stderr at exit.
//
// Results are persisted per combination under -simcache (default
// ./simcache), so an interrupted sweep resumes where it left off: already
// persisted combinations replay from disk, only the missing ones are
// simulated. -ckpt additionally persists engine snapshots at window
// boundaries under -ckpt-dir and forks each uncached simulation from the
// deepest snapshot sharing its deterministic prefix, so even the cold part
// of a sweep is sub-linear; -ckpt-max-bytes caps the store (oldest
// checkpoints evicted first). The exit report counts simulations computed,
// replayed from cache, and forked from checkpoints.
//
// Provenance and tracing: with -simcache on, every completed run appends
// one JSON record to a ledger beside the cache directory (-ledger;
// default auto, empty disables) capturing how it was satisfied — cached,
// forked@depth, or cold — plus retries, injected faults, and cost.
// `sweep -explain` reads that ledger back and prints the summary
// (outcome counts, retry/fault totals, slowest runs) without simulating;
// repeated -ledger flags (or a directory of *.jsonl) merge several
// workers' ledgers, deduplicating records by fingerprint and
// attributing each run to the worker that satisfied it.
//
// `sweep -worker http://host:9900` joins a distributed sweep instead of
// running one: the process registers with a `sweepd` coordinator,
// leases grid cells under fencing tokens, executes them through the
// same -simcache/-ckpt stack, and heartbeats its progress. SIGTERM
// drains gracefully (the in-flight cell finishes, unstarted leases are
// released, the worker deregisters) and exits 130.
// -trace-spans writes the orchestration span tree (sweep → profiling /
// grid cells → cache get/put → execute) as a Chrome trace-event
// flamechart for chrome://tracing.
//
// SIGINT/SIGTERM triggers exactly that interruption
// gracefully — in-flight simulations abort at their next window boundary,
// the pool drains, finished combinations stay persisted, and a resumable
// state report is printed before exiting 130. A second signal kills the
// process immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ebm/internal/ckpt"
	"ebm/internal/cli"
	"ebm/internal/config"
	"ebm/internal/dsweep"
	"ebm/internal/kernel"
	"ebm/internal/metrics"
	"ebm/internal/obs"
	"ebm/internal/policy"
	"ebm/internal/profile"
	"ebm/internal/resilience"
	"ebm/internal/runner"
	"ebm/internal/search"
	"ebm/internal/sim"
	"ebm/internal/simcache"
	"ebm/internal/spec"
	"ebm/internal/workload"
)

func main() { cli.Main("sweep", run) }

func run(ctx context.Context) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		wlName  = fs.String("workload", "BLK_TRD", "two-application workload, e.g. BLK_TRD")
		grids   = fs.String("grids", "ws,ebws", "surfaces to print: ws,fi,hs,ebws,ebfi,it,bw")
		schemes = fs.String("schemes", "",
			"also run these online schemes at grid length (whitespace-separated canonical "+
				"scheme strings, e.g. 'dyncta pbs-ws ccws:hivta=0.2'; scheme grammar: "+spec.FlagHelp()+")")
		searchMode = fs.String("search", "exhaustive",
			"search strategy: exhaustive (build the full grid) or adaptive "+
				"(coarse-to-fine successive halving with checkpoint-forked continuations; "+
				"finds the same picks in a fraction of the engine work, skips surface printing)")
		cycles   = fs.Uint64("cycles", 120_000, "cycles per combination")
		warmup   = fs.Uint64("warmup", 20_000, "warmup cycles")
		cache    = fs.String("cache", "profiles.json", "alone-profile cache (empty disables)")
		simc     = fs.String("simcache", "simcache", "simulation-result cache directory (empty disables)")
		ckptOn   = fs.Bool("ckpt", false, "fork uncached simulations from prefix checkpoints (sub-linear cold sweeps)")
		ckptDir  = fs.String("ckpt-dir", "ckpt", "prefix-checkpoint store directory (with -ckpt)")
		ckptMax  = fs.Int64("ckpt-max-bytes", 0, "checkpoint store byte cap, oldest evicted first (0 = unbounded)")
		parallel = fs.Int("parallel", runtime.NumCPU(), "concurrent grid simulations (default: all CPUs)")
		outPath  = fs.String("o", "", "also write the report to this file, e.g. results/blk_trd.txt")
		listen   = fs.String("listen", "", "serve live sweep-progress metrics on this address, e.g. :8080")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile of the sweep to `file`")
		memProf  = fs.String("memprofile", "", "write a pprof heap profile at exit to `file`")
		spansF   = fs.String("trace-spans", "", "write the orchestration spans as a Chrome trace-event `file` at exit")
		explain  = fs.Bool("explain", false,
			"read the -ledger file(s) and print a provenance summary instead of sweeping; "+
				"several -ledger flags (or a directory of *.jsonl) merge, deduplicating by fingerprint and attributing outcomes per worker")
		workerURL = fs.String("worker", "",
			"run as a distributed-sweep worker: pull leased cells from the coordinator at this base `URL` (e.g. http://host:9900) until the sweep completes")
		workerID = fs.String("id", "", "worker identity for -worker (default hostname-pid)")
		version  = fs.Bool("version", false, "print the build version and exit")
		sandbox  = fs.Bool("sandbox", false,
			"run the -schemes policies inside the policy sandbox: a panicking or malformed policy degrades to a safe fallback and the sweep completes; degraded results are not cached")
		sandboxBudget = fs.Duration("sandbox-budget", 0,
			"per-decision wall-clock budget for sandboxed -schemes policies, e.g. 10ms (0 = panic isolation only; implies -sandbox)")
	)
	var ledgers multiFlag
	fs.Var(&ledgers, "ledger",
		"run-provenance ledger appended one JSON record per completed run "+
			"(auto = ledger.jsonl beside the -simcache directory; empty disables; "+
			"repeatable with -explain, where each value may be a file or a directory of *.jsonl)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	if *version {
		fmt.Println("sweep", cli.Version())
		return nil
	}

	// "auto" ties the ledger's lifetime to the simcache it explains: the
	// file lands beside the cache directory, so the pair travels together.
	ledgerPath := "auto"
	if len(ledgers) > 0 {
		ledgerPath = ledgers[0]
	}
	if ledgerPath == "auto" {
		ledgerPath = ""
		if *simc != "" {
			ledgerPath = filepath.Join(filepath.Dir(*simc), "ledger.jsonl")
		}
	}

	// -explain is a reader mode: summarize the ledger(s) a previous sweep
	// — local or distributed — appended, and exit without simulating.
	// Several paths (or a directory of per-worker files) merge into one
	// view: records sharing a fingerprint collapse onto the worker that
	// actually executed the run.
	if *explain {
		paths := []string(ledgers)
		if len(paths) == 0 || (len(paths) == 1 && paths[0] == "auto") {
			if ledgerPath == "" {
				return cli.Usagef("-explain needs a -ledger file (or -simcache for the auto default)")
			}
			paths = []string{ledgerPath}
		}
		merged := len(paths) > 1
		if fi, err := os.Stat(paths[0]); err == nil && fi.IsDir() {
			merged = true
		}
		recs, skipped, err := obs.ReadLedgers(paths...)
		if err != nil {
			return err
		}
		dups := 0
		if merged {
			recs, dups = obs.DedupByFingerprint(recs)
		}
		sum := obs.SummarizeLedger(recs, 10)
		sum.Skipped = skipped
		sum.Dups = dups
		fmt.Printf("provenance ledger %s\n", strings.Join(paths, ", "))
		sum.WriteText(os.Stdout)
		return nil
	}

	// -worker is a service mode: the rest of the flags describing what
	// to sweep are the coordinator's business; this process just
	// executes whatever cells it is leased, through the same
	// cache/checkpoint stack a local sweep uses.
	if *workerURL != "" {
		return runWorker(ctx, workerConfig{
			url: *workerURL, id: *workerID,
			simc: *simc, ledgerPath: ledgerPath,
			ckptOn: *ckptOn, ckptDir: *ckptDir, ckptMax: *ckptMax,
			parallel: *parallel,
		})
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		if dir := filepath.Dir(*outPath); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "sweep: wrote %s\n", *outPath)
		}()
		out = io.MultiWriter(os.Stdout, f)
	}

	adaptive := *searchMode == "adaptive"
	if !adaptive && *searchMode != "exhaustive" {
		return cli.Usagef("unknown -search %q (want exhaustive or adaptive)", *searchMode)
	}

	start := time.Now()
	work0 := sim.CyclesSimulated() // engine work before this sweep
	sims := 0                      // simulations actually executed this run
	cached := 0                    // results replayed from the on-disk cache
	forked := 0                    // simulations forked from a prefix checkpoint
	pruned := 0                    // adaptive-search candidates dropped mid-horizon
	defer func() {
		elapsed := time.Since(start)
		fmt.Fprintf(os.Stderr, "sweep: %d simulations in %v (%.1f sims/s), %d replayed from cache, %d forked from checkpoints, %d pruned\n",
			sims, elapsed.Round(time.Millisecond), float64(sims)/elapsed.Seconds(), cached, forked, pruned)
		fmt.Fprintf(os.Stderr, "sweep: %d engine cycles simulated (cache hits and restored checkpoint prefixes excluded)\n",
			sim.CyclesSimulated()-work0)
	}()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				return
			}
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
			}
			f.Close()
		}()
	}

	// -trace-spans: a tracer rides the context through every layer below;
	// the root "sweep" span parents profiling, the grid build, and the
	// scheme runs, and the finished tree is written as a Chrome-trace
	// flamechart at exit (lanes = concurrent workers).
	var tracer *obs.Tracer
	if *spansF != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
		var root *obs.Span
		ctx, root = obs.StartSpan(ctx, "sweep", obs.A("workload", *wlName))
		defer func() {
			root.End()
			f, err := os.Create(*spansF)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				return
			}
			werr := obs.WriteSpanTrace(f, tracer)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintln(os.Stderr, "sweep:", werr)
				return
			}
			fmt.Fprintf(os.Stderr, "sweep: wrote %d spans to %s\n", tracer.Len(), *spansF)
		}()
	}

	cfg := config.Default()
	wl, ok := workload.ByName(*wlName)
	if !ok || len(wl.Apps) != 2 {
		return cli.Usagef("need a two-application workload; apps: %v", kernel.Names())
	}

	// The result cache is what makes an interrupted sweep resumable:
	// every finished combination is persisted as it completes, and a rerun
	// replays those cells instead of re-simulating them. The pool bounds
	// execution at -parallel workers; closing it waits for in-flight tasks,
	// which is the orderly drain a SIGINT relies on.
	var rcache *simcache.Cache
	if *simc != "" {
		var err error
		rcache, err = simcache.Open(*simc)
		if err != nil {
			return err
		}
	}
	// The provenance ledger hangs off the cache handle: every completed
	// run appends one JSON record (fingerprint, scheme, cached / forked /
	// cold, retries, faults, cost) that `sweep -explain` later summarizes.
	var ledger *obs.Ledger
	if ledgerPath != "" {
		if rcache == nil {
			fmt.Fprintln(os.Stderr, "sweep: -ledger needs -simcache; provenance disabled")
		} else {
			l, err := obs.OpenLedger(ledgerPath)
			if err != nil {
				return err
			}
			ledger = l
			defer ledger.Close()
			defer func() {
				fmt.Fprintf(os.Stderr, "sweep: %d provenance records appended to %s\n",
					ledger.Appends(), ledgerPath)
			}()
			rcache.SetLedger(ledger)
		}
	}
	// The checkpoint store makes even the *cold* part of a sweep
	// sub-linear: every uncached simulation forks from the deepest
	// persisted snapshot of its deterministic prefix (written by earlier
	// sweeps at other horizons, or by this one before an interruption).
	var store *ckpt.Store
	if *ckptOn {
		var err error
		store, err = ckpt.Open(*ckptDir)
		if err != nil {
			return err
		}
		store.SetMaxBytes(*ckptMax)
	}
	pool := runner.New(*parallel)
	defer pool.Close()

	// Per-combination progress flows through an event journal: a stderr
	// subscriber narrates it, and -listen mirrors it into live gauges.
	// Resilience incidents (cancelled runs, cache retries) land in the
	// same journal and registry.
	journal := obs.NewJournal()
	journal.Subscribe(func(e obs.Event) {
		switch e.Kind {
		case obs.EvProgress:
			fmt.Fprintf(os.Stderr, "sweep: %d/%d combinations (last %s)\n",
				e.Done, e.Total, e.Label)
		case obs.EvResilience:
			fmt.Fprintf(os.Stderr, "sweep: resilience: %s\n", e.Label)
		}
	})
	var doneG, totalG *obs.Gauge
	var reg *obs.Registry
	if *listen != "" {
		reg = obs.NewRegistry()
		doneG = reg.Gauge("ebm_sweep_combos_done", "grid combinations simulated so far")
		totalG = reg.Gauge("ebm_sweep_combos_total", "grid combinations in this sweep")
		sim.InstrumentWork(reg) // ebm_cycles_simulated: work, not just progress
		pool.Instrument(reg)
		rcache.Instrument(reg)
		store.Instrument(reg)
		srv, err := obs.Serve(*listen, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sweep: serving metrics on http://%s/metrics\n", srv.Addr)
	}
	mon := resilience.NewMonitor(reg, journal)
	if rcache != nil {
		rcache.SetResilience(resilience.DefaultPolicy(), mon)
	}
	store.SetResilience(resilience.DefaultPolicy(), mon)

	// resumeReport describes the persisted state after an interruption so
	// the user knows exactly what a rerun will pick up.
	comboDone, comboTotal := 0, 0
	resumeReport := func(stage string) {
		fmt.Fprintf(os.Stderr, "sweep: interrupted during %s: %d/%d grid combinations done\n",
			stage, comboDone, comboTotal)
		if rcache != nil {
			s := rcache.Stats()
			fmt.Fprintf(os.Stderr,
				"sweep: %d results persisted to %s this run (%d replayed); rerun the same command to resume — finished combinations replay from the cache\n",
				s.Writes, *simc, s.Hits)
		} else {
			fmt.Fprintln(os.Stderr, "sweep: no -simcache directory: a rerun starts from scratch")
		}
		if store != nil {
			cs := store.Stats()
			fmt.Fprintf(os.Stderr,
				"sweep: %d checkpoints persisted to %s; a rerun forks interrupted combinations from them\n",
				cs.Writes, *ckptDir)
		}
	}

	suite, err := profile.LoadOrProfile(ctx, *cache, kernel.All(), profile.Options{
		Config: cfg, Runner: pool, Cache: rcache, Ckpt: store, Mon: mon,
	})
	if err != nil {
		if ctx.Err() != nil {
			resumeReport("profiling")
		}
		return err
	}
	names := wl.Names()
	aloneIPC, _ := suite.AloneIPC(names)
	aloneEB, _ := suite.AloneEB(names)
	bestTLPs, _ := suite.BestTLPs(names)

	gridOpts := search.GridOptions{
		Config: cfg, TotalCycles: *cycles, WarmupCycles: *warmup,
		Parallelism: *parallel,
		Runner:      pool,
		Cache:       rcache,
		Ckpt:        store,
		Progress: func(done, total int, combo []int) {
			comboDone, comboTotal = done, total
			totalG.Set(float64(total))
			doneG.Set(float64(done))
			journal.Record(obs.Event{
				Kind: obs.EvProgress, App: -1,
				Done: done, Total: total, Label: fmt.Sprint(combo),
			})
		},
	}
	var g *search.Grid
	if adaptive {
		// -search adaptive: no up-front grid. The oracle picks below run
		// the coarse-to-fine successive-halving search, and the lazy grid
		// serves only the cells the reports and PBS offline walks touch
		// (fills land in the same cache keys an exhaustive build uses).
		g, err = search.NewLazyGrid(ctx, wl.Apps, gridOpts)
	} else {
		g, err = search.BuildGrid(ctx, wl.Apps, gridOpts)
	}
	if err != nil {
		if ctx.Err() != nil {
			resumeReport("grid build")
		}
		return err
	}
	countRuns := func() {
		sims = len(g.Results)
		if rcache != nil {
			// Every executed simulation is persisted on completion, so the
			// write count is the number of runs this invocation actually paid
			// for; hits are cells (and profiles) replayed from disk.
			s := rcache.Stats()
			sims = int(s.Writes + s.WriteFails)
			cached = int(s.Hits)
		}
		if store != nil {
			forked = int(store.Stats().Forks)
		}
	}
	countRuns()
	defer countRuns() // adaptive mode keeps simulating after this point

	// bestOf is the argmax strategy behind every opt*/BF-*/maxIT pick:
	// the exhaustive grid scan, or the adaptive search sharing the same
	// cache and checkpoint store.
	bestOf := func(eval search.Eval) ([]int, error) {
		if !adaptive {
			c, _ := g.Best(eval)
			return c, nil
		}
		res, err := search.Adaptive(ctx, wl.Apps, eval, search.AdaptiveOptions{
			Config: cfg, TotalCycles: *cycles, WarmupCycles: *warmup,
			Parallelism: *parallel, Runner: pool, Cache: rcache, Ckpt: store,
			OnRung: func(r search.RungReport) {
				fmt.Fprintf(os.Stderr, "sweep: adaptive %s rung @%d cycles: %d candidates survive, %d pruned\n",
					r.Phase, r.Cycles, r.Survivors, r.Pruned)
			},
		})
		if err != nil {
			return nil, err
		}
		pruned += len(res.Pruned)
		return res.Combo, nil
	}

	surfaces := map[string]struct {
		title string
		eval  search.Eval
	}{
		"ws":   {"WS (weighted speedup)", search.SDEval(metrics.ObjWS, aloneIPC)},
		"fi":   {"FI (fairness index)", search.SDEval(metrics.ObjFI, aloneIPC)},
		"hs":   {"HS (harmonic speedup)", search.SDEval(metrics.ObjHS, aloneIPC)},
		"ebws": {"EB-WS", search.EBEval(metrics.ObjWS, nil)},
		"ebfi": {"EB-FI (scaled)", search.EBEval(metrics.ObjFI, aloneEB)},
		"it":   {"IT (instruction throughput)", search.ITEval()},
		"bw":   {"total attained bandwidth", func(r sim.Result) float64 { return r.TotalBW }},
	}
	for _, key := range strings.Split(*grids, ",") {
		key = strings.TrimSpace(key)
		s, ok := surfaces[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "sweep: unknown surface %q\n", key)
			continue
		}
		if adaptive {
			// Printing a surface means simulating every cell — exactly the
			// exhaustive work -search adaptive exists to avoid.
			fmt.Fprintf(os.Stderr, "sweep: -search adaptive skips the %q surface (surfaces need the exhaustive grid)\n", key)
			continue
		}
		fmt.Fprintf(out, "\n%s grid (rows: TLP-%s, cols: TLP-%s)\n       ", s.title, names[0], names[1])
		for _, t1 := range g.Levels {
			fmt.Fprintf(out, "%8d", t1)
		}
		fmt.Fprintln(out)
		for _, t0 := range g.Levels {
			fmt.Fprintf(out, "%6d ", t0)
			for _, t1 := range g.Levels {
				r, err := g.At([]int{t0, t1})
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "%8.3f", s.eval(r))
			}
			fmt.Fprintln(out)
		}
	}

	wsEval := surfaces["ws"].eval
	fiEval := surfaces["fi"].eval
	hsEval := surfaces["hs"].eval
	report := func(label string, combo []int) error {
		r, err := g.At(combo)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-16s combo=%-9v WS=%.3f FI=%.3f HS=%.3f\n",
			label, combo, wsEval(r), fiEval(r), hsEval(r))
		return nil
	}

	fmt.Fprintln(out)
	if err := report("++bestTLP", bestTLPs); err != nil {
		return err
	}
	if err := report("++maxTLP", []int{config.MaxTLP, config.MaxTLP}); err != nil {
		return err
	}
	for _, x := range []struct {
		label string
		eval  search.Eval
	}{
		{"optWS", wsEval}, {"optFI", fiEval}, {"optHS", hsEval},
		{"BF-WS", surfaces["ebws"].eval}, {"BF-FI", surfaces["ebfi"].eval},
		{"BF-HS", search.EBEval(metrics.ObjHS, aloneEB)},
		{"maxIT", surfaces["it"].eval},
	} {
		c, err := bestOf(x.eval)
		if err != nil {
			if ctx.Err() != nil {
				resumeReport("search " + x.label)
			}
			return err
		}
		if err := report(x.label, c); err != nil {
			return err
		}
	}
	cw, _ := g.PBSOffline(surfaces["ebws"].eval, nil)
	if err := report("PBS-WS(Offline)", cw); err != nil {
		return err
	}
	cf, _ := g.PBSOfflineFI(aloneEB, nil)
	if err := report("PBS-FI(Offline)", cf); err != nil {
		return err
	}
	ch, _ := g.PBSOffline(search.EBEval(metrics.ObjHS, aloneEB), nil)
	if err := report("PBS-HS(Offline)", ch); err != nil {
		return err
	}

	// -schemes: online comparison points next to the grid searches, run
	// at the same per-combination length through the same cache and
	// pool. Whitespace separates schemes because commas belong to the
	// scheme grammar itself.
	for _, ss := range strings.Fields(*schemes) {
		sch, err := spec.ParseScheme(ss)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		if sch.Kind == spec.KindBestTLP && len(sch.Static.TLPs) == 0 {
			sch = spec.BestTLP(bestTLPs) // resolve from the alone profiles
		}
		rs := spec.RunSpec{
			Config:             cfg,
			Apps:               wl.Apps,
			Scheme:             sch,
			TotalCycles:        *cycles,
			WarmupCycles:       *warmup,
			WindowCycles:       2_500,
			DesignatedSampling: true,
			VictimTags:         spec.VictimTagsFor(sch),
		}
		runFn := ckpt.Runner(store, rs)
		if *sandbox || *sandboxBudget > 0 {
			// Sandboxed scheme runs: the guard absorbs policy panics,
			// budget overruns, and malformed decisions, so one broken
			// policy cannot abort the sweep. A degraded run is marked
			// volatile (returned, never cached) and its faults land on
			// the provenance trail and in the journal. Checkpoints are
			// skipped — a degraded prefix must never seed future forks.
			rsRun := rs
			runFn = func(ctx context.Context) (sim.Result, error) {
				opts, err := sim.FromSpec(rsRun)
				if err != nil {
					return sim.Result{}, err
				}
				guard := policy.Wrap(opts.Manager, policy.Options{
					Budget: *sandboxBudget,
					Obs:    &obs.Observer{Metrics: reg, Journal: journal},
				})
				defer guard.Close()
				opts.Manager = guard
				s, err := sim.New(opts)
				if err != nil {
					return sim.Result{}, err
				}
				res, err := s.RunContext(ctx)
				if n := guard.Faults(); n > 0 {
					simcache.MarkVolatile(ctx)
					for _, l := range guard.FaultLabels() {
						obs.TrailFrom(ctx).AddFault("policy: " + l)
					}
					fmt.Fprintf(os.Stderr,
						"sweep: sandbox: %s degraded by %d policy faults (result not cached)\n",
						rsRun.Scheme.String(), n)
				}
				return res, err
			}
		}
		r, err := simcache.RunCached(ctx, rcache, pool, runner.PriEval, rs, runFn)
		if err != nil {
			if ctx.Err() != nil {
				resumeReport("scheme " + sch.String())
			}
			return err
		}
		sd, err := metrics.Slowdowns(r.IPCs(), aloneIPC)
		if err != nil {
			return err
		}
		final := make([]int, len(r.Apps))
		for i, a := range r.Apps {
			final[i] = a.FinalTLP
		}
		fmt.Fprintf(out, "%-16s final=%-9v WS=%.3f FI=%.3f HS=%.3f\n",
			sch.String(), final, metrics.WS(sd), metrics.FI(sd), metrics.HS(sd))
	}
	return nil
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

type workerConfig struct {
	url, id          string
	simc, ledgerPath string
	ckptOn           bool
	ckptDir          string
	ckptMax          int64
	parallel         int
}

// runWorker is `sweep -worker`: register with the coordinator, lease
// cells, execute them through the shared cache/checkpoint stack, and
// report each under its fencing token. SIGTERM/SIGINT cancels ctx,
// which drains gracefully — the in-flight cell finishes, unstarted
// leases are released, the worker deregisters — and exits 130 through
// the usual cli contract (a second signal kills immediately).
func runWorker(ctx context.Context, c workerConfig) error {
	id := c.id
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	var rcache *simcache.Cache
	if c.simc != "" {
		var err error
		rcache, err = simcache.Open(c.simc)
		if err != nil {
			return err
		}
		rcache.SetResilience(resilience.DefaultPolicy(), nil)
	}
	// The worker's ledger is its slice of the sweep's provenance: every
	// record is stamped with the worker id, so `sweep -explain` over the
	// collected per-worker files attributes each run to who satisfied it.
	if c.ledgerPath != "" && rcache != nil {
		ledger, err := obs.OpenLedger(c.ledgerPath)
		if err != nil {
			return err
		}
		ledger.SetWorker(id)
		rcache.SetLedger(ledger)
		defer ledger.Close()
		defer func() {
			fmt.Fprintf(os.Stderr, "sweep: worker %s: %d provenance records appended to %s\n",
				id, ledger.Appends(), c.ledgerPath)
		}()
	}
	var store *ckpt.Store
	if c.ckptOn {
		var err error
		store, err = ckpt.Open(c.ckptDir)
		if err != nil {
			return err
		}
		store.SetMaxBytes(c.ckptMax)
	}
	pool := runner.New(c.parallel)
	defer pool.Close()

	w := dsweep.NewWorker(dsweep.WorkerOptions{
		ID: id, URL: c.url,
		Cache: rcache, Ckpt: store, Runner: pool,
		Version: cli.Version(),
	})
	fmt.Fprintf(os.Stderr, "sweep: worker %s pulling cells from %s\n", id, c.url)
	err := w.Run(ctx)
	fmt.Fprintf(os.Stderr, "sweep: worker %s: %d completions accepted, %d fenced off\n",
		id, w.Completed(), w.Fenced())
	return err
}
