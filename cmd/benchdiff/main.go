// Command benchdiff runs the repo's performance benchmarks and records
// the results as JSON, so perf regressions show up as a reviewable diff.
//
// Usage:
//
//	benchdiff                         # run substrate benches, write BENCH_1.json
//	benchdiff -out BENCH_2.json       # record a new snapshot
//	benchdiff -old BENCH_1.json       # run, then print a comparison table
//	benchdiff -baseline BENCH_3.json  # run, then print a one-line ratio table
//	benchdiff -bench 'CycleTick' -benchtime 500000x
//	benchdiff -bench 'SimulatorCycles' \
//	    -maxratio 'BenchmarkSimulatorCyclesObs/BenchmarkSimulatorCycles=1.05'
//
// -maxratio asserts a ns/op ratio between two benchmarks of the same run
// (numerator/denominator <= bound) and exits non-zero on violation; the
// Makefile's obs-bench target uses it to hold the observability overhead
// under 5%, ckpt-bench to hold forked cold sweeps under half the
// straight-cold time, and search-bench to hold the adaptive TLP search
// under half the exhaustive sweep. Sub-benchmark names contain '/', so
// ':' also separates the pair: '-maxratio BenchX/fast:BenchX/slow=0.5'.
// Custom ReportMetric units are recorded per benchmark under "extra" and
// their ratios printed alongside the asserted one.
//
// -baseline diffs this run against any named BENCH_*.json as a single
// line of new/old ns/op ratios — the compact form for commit messages
// and CI logs, where -old's full table is too wide.
//
// SIGINT/SIGTERM cancels the benchmark subprocess and exits 130.
//
// The default -bench selection covers the simulator substrate
// (BenchmarkCycleTick, BenchmarkRequestPool, BenchmarkMSHRTable,
// BenchmarkSimulatorCycles); pass your own regex for the full paper-panel
// benches. See DESIGN.md's Performance section for how these snapshots
// are used.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"

	"ebm/internal/cli"
)

// Bench is one benchmark's recorded figures.
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Extra holds custom b.ReportMetric units (e.g. "simcycles/op",
	// "cycles/s") keyed by unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// File is the JSON layout of a snapshot.
type File struct {
	Command    string  `json:"command"`
	Benchmarks []Bench `json:"benchmarks"`
}

func main() { cli.Main("benchdiff", run) }

func run(ctx context.Context) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		bench     = fs.String("bench", "CycleTick|RequestPool|MSHRTable|SimulatorCycles", "benchmark regex passed to go test -bench")
		pkgs      = fs.String("pkgs", "./...", "package pattern to benchmark")
		benchtime = fs.String("benchtime", "", "go test -benchtime value (empty: default)")
		count     = fs.Int("count", 1, "go test -count value")
		out       = fs.String("out", "BENCH_1.json", "output JSON snapshot (empty disables)")
		old       = fs.String("old", "", "previous snapshot to diff against")
		baseline  = fs.String("baseline", "", "snapshot to diff against as a one-line ratio table")
		maxRatio  = fs.String("maxratio", "", "assert ns/op ratio 'BenchA/BenchB=1.05' within this run")
		version   = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	if *version {
		fmt.Println("benchdiff", cli.Version())
		return nil
	}

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, *pkgs)
	cmd := exec.CommandContext(ctx, "go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintln(os.Stderr, "benchdiff: go", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		os.Stderr.Write(buf.Bytes())
		if cerr := ctx.Err(); cerr != nil {
			return cerr // the subprocess was killed by the signal
		}
		return err
	}
	os.Stderr.Write(buf.Bytes())

	benches := parse(buf.Bytes())
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines matched")
	}
	snap := File{Command: "go " + strings.Join(args, " "), Benchmarks: benches}

	if *out != "" {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchdiff: wrote %s (%d benchmarks)\n", *out, len(benches))
	}

	if *old != "" {
		prev, err := load(*old)
		if err != nil {
			return err
		}
		diff(os.Stdout, prev, snap)
	}

	if *baseline != "" {
		prev, err := load(*baseline)
		if err != nil {
			return err
		}
		fmt.Println(ratioLine(*baseline, prev, snap))
	}

	if *maxRatio != "" {
		if err := assertRatio(snap, *maxRatio); err != nil {
			return err
		}
	}
	return nil
}

// assertRatio checks a "Numerator/Denominator=bound" constraint against
// the ns/op figures of the snapshot just taken. Comparing two benchmarks
// from the same run sidesteps machine-to-machine drift that makes
// absolute-time assertions flaky.
func assertRatio(snap File, spec string) error {
	names, boundStr, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("bad -maxratio %q, want 'BenchA/BenchB=1.05'", spec)
	}
	// ':' separates names containing '/' (sub-benchmarks, e.g.
	// 'BenchmarkX/fast:BenchmarkX/slow=0.5'); plain names may keep '/'.
	num, den, ok := strings.Cut(names, ":")
	if !ok {
		num, den, ok = strings.Cut(names, "/")
	}
	if !ok {
		return fmt.Errorf("bad -maxratio %q, want 'BenchA/BenchB=1.05'", spec)
	}
	bound, err := strconv.ParseFloat(strings.TrimSpace(boundStr), 64)
	if err != nil || bound <= 0 {
		return fmt.Errorf("bad -maxratio bound %q", boundStr)
	}
	// With -count > 1 each name appears several times; take the fastest
	// run of each (the least-noise estimate) before forming the ratio.
	find := func(name string) (Bench, error) {
		name = strings.TrimSpace(name)
		var best Bench
		for _, b := range snap.Benchmarks {
			if b.Name == name && (best.Name == "" || b.NsPerOp < best.NsPerOp) {
				best = b
			}
		}
		if best.Name == "" {
			return Bench{}, fmt.Errorf("-maxratio: benchmark %q not in this run", name)
		}
		return best, nil
	}
	nb, err := find(num)
	if err != nil {
		return err
	}
	db, err := find(den)
	if err != nil {
		return err
	}
	if db.NsPerOp == 0 {
		return fmt.Errorf("-maxratio: %s has zero ns/op", db.Name)
	}
	ratio := nb.NsPerOp / db.NsPerOp
	fmt.Printf("ratio %s/%s = %.4f (bound %.4f)\n", nb.Name, db.Name, ratio, bound)
	// Custom units both sides report (e.g. simcycles/op) are informative
	// context for the asserted wall-clock ratio, not themselves asserted.
	units := make([]string, 0, len(nb.Extra))
	for u := range nb.Extra {
		if db.Extra[u] != 0 {
			units = append(units, u)
		}
	}
	sort.Strings(units)
	for _, u := range units {
		fmt.Printf("ratio %s/%s [%s] = %.4f\n", nb.Name, db.Name, u, nb.Extra[u]/db.Extra[u])
	}
	if ratio > bound {
		return fmt.Errorf("ratio %.4f exceeds bound %.4f", ratio, bound)
	}
	return nil
}

// parse extracts benchmark result lines from go test output. A line looks
// like:
//
//	BenchmarkCycleTick-8   300000   3434 ns/op   2 B/op   0 allocs/op
//
// Unknown units (custom ReportMetric values) land in Bench.Extra.
func parse(output []byte) []Bench {
	var out []Bench
	sc := bufio.NewScanner(bytes.NewReader(output))
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		name := f[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
		b := Bench{Name: name, Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Extra == nil {
					b.Extra = map[string]float64{}
				}
				b.Extra[f[i+1]] = v
			}
		}
		out = append(out, b)
	}
	return out
}

func load(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	err = json.Unmarshal(data, &f)
	return f, err
}

// diff prints old-vs-new ns/op and allocs/op with percentage change.
func diff(w *os.File, old, new File) {
	byName := make(map[string]Bench, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		byName[b.Name] = b
	}
	fmt.Fprintf(w, "%-28s %12s %12s %8s %10s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	for _, b := range new.Benchmarks {
		o, ok := byName[b.Name]
		if !ok {
			fmt.Fprintf(w, "%-28s %12s %12.1f %8s %10s %10.1f %8s\n",
				b.Name, "-", b.NsPerOp, "new", "-", b.AllocsPerOp, "new")
			continue
		}
		fmt.Fprintf(w, "%-28s %12.1f %12.1f %7s%% %10.1f %10.1f %7s%%\n",
			b.Name, o.NsPerOp, b.NsPerOp, pct(o.NsPerOp, b.NsPerOp),
			o.AllocsPerOp, b.AllocsPerOp, pct(o.AllocsPerOp, b.AllocsPerOp))
	}
}

// ratioLine renders new-vs-baseline ns/op ratios as one line:
// "vs BENCH_3.json: BenchmarkA=0.97x BenchmarkB=1.42x BenchmarkC=new".
// With -count > 1 the fastest run of each name on both sides forms the
// ratio, matching assertRatio's least-noise estimate.
func ratioLine(name string, base, cur File) string {
	fastest := func(f File) map[string]float64 {
		m := map[string]float64{}
		for _, b := range f.Benchmarks {
			if v, ok := m[b.Name]; !ok || b.NsPerOp < v {
				m[b.Name] = b.NsPerOp
			}
		}
		return m
	}
	bm := fastest(base)
	var parts []string
	seen := map[string]bool{}
	for _, b := range cur.Benchmarks {
		if seen[b.Name] {
			continue
		}
		seen[b.Name] = true
		o, ok := bm[b.Name]
		switch {
		case !ok:
			parts = append(parts, b.Name+"=new")
		case o == 0:
			parts = append(parts, b.Name+"=inf")
		default:
			parts = append(parts, fmt.Sprintf("%s=%.2fx", b.Name, fastest(cur)[b.Name]/o))
		}
	}
	return "vs " + name + ": " + strings.Join(parts, " ")
}

func pct(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "+0.0"
		}
		return "+inf"
	}
	return fmt.Sprintf("%+.1f", 100*(new-old)/old)
}
