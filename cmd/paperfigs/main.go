// Command paperfigs regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index).
//
// Usage:
//
//	paperfigs -list
//	paperfigs -id fig9            # one experiment
//	paperfigs -all                # everything, in paper order
//	paperfigs -all -quick         # reduced workload set and run lengths
//	paperfigs -all -out results/  # additionally write one file per panel
//
// Alone-run profiles are cached in ./profiles.json by default (-cache "").
// Simulation results are cached under ./simcache by default (-simcache "");
// a warm rerun replays grids, evaluations, and profiles from disk.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"ebm/internal/experiments"
	"ebm/internal/workload"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		id    = flag.String("id", "", "run a single experiment by id (e.g. fig9)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced run lengths and the 10 representative workloads")
		cache = flag.String("cache", "profiles.json", "alone-profile cache path (empty disables)")
		simc  = flag.String("simcache", "simcache", "simulation-result cache directory (empty disables)")
		out   = flag.String("out", "", "directory to also write one text file per experiment")
	)
	flag.Parse()

	if *list {
		for _, x := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", x.ID, x.Title)
		}
		return
	}
	if !*all && *id == "" {
		fmt.Fprintln(os.Stderr, "paperfigs: pass -id <experiment>, -all, or -list")
		os.Exit(2)
	}

	opt := experiments.Options{ProfileCache: *cache, SimCache: *simc}
	if *quick {
		opt.GridCycles = 60_000
		opt.GridWarmup = 10_000
		opt.EvalCycles = 150_000
		opt.EvalWarmup = 5_000
		opt.Workloads = workload.Representative()
	}
	start := time.Now()
	env, err := experiments.NewEnv(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperfigs: profiling failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "profiles ready in %.1fs\n", time.Since(start).Seconds())
	defer func() {
		if c := env.Cache(); c != nil {
			s := c.Stats()
			fmt.Fprintf(os.Stderr, "simcache: %d hits, %d misses, %d results persisted (%s)\n",
				s.Hits, s.Misses, s.Writes, c.Dir())
		}
	}()

	run := func(x experiments.Experiment) error {
		var w io.Writer = os.Stdout
		var f *os.File
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				return err
			}
			var err error
			f, err = os.Create(filepath.Join(*out, x.ID+".txt"))
			if err != nil {
				return err
			}
			defer f.Close()
			w = io.MultiWriter(os.Stdout, f)
		}
		t0 := time.Now()
		if err := x.Run(env, w); err != nil {
			return fmt.Errorf("%s: %w", x.ID, err)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n", x.ID, time.Since(t0).Seconds())
		return nil
	}

	if *id != "" {
		x, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "paperfigs: unknown experiment %q (try -list)\n", *id)
			os.Exit(2)
		}
		if err := run(x); err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, x := range experiments.Registry() {
		if err := run(x); err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
			os.Exit(1)
		}
	}
}
