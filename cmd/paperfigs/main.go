// Command paperfigs regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index).
//
// Usage:
//
//	paperfigs -list
//	paperfigs -id fig9            # one experiment
//	paperfigs -all                # everything, in paper order
//	paperfigs -all -quick         # reduced workload set and run lengths
//	paperfigs -all -out results/  # additionally write one file per panel
//
// Alone-run profiles are cached in ./profiles.json by default (-cache "").
// Simulation results are cached under ./simcache by default (-simcache "");
// a warm rerun replays grids, evaluations, and profiles from disk. -ckpt
// additionally persists engine snapshots under -ckpt-dir and forks every
// uncached simulation from the deepest snapshot sharing its deterministic
// prefix — a cold -quick pass and the full pass share the prefix work.
//
// SIGINT/SIGTERM cancels the run cooperatively: in-flight simulations
// abort at their next window boundary, completed results stay persisted
// in the caches, and a rerun resumes from them (exit 130). A second
// signal kills the process immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"ebm/internal/ckpt"
	"ebm/internal/cli"
	"ebm/internal/experiments"
	"ebm/internal/obs"
	"ebm/internal/workload"
)

func main() { cli.Main("paperfigs", run) }

func run(ctx context.Context) error {
	fs := flag.NewFlagSet("paperfigs", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiments and exit")
		id      = fs.String("id", "", "run a single experiment by id (e.g. fig9)")
		all     = fs.Bool("all", false, "run every experiment")
		quick   = fs.Bool("quick", false, "reduced run lengths and the 10 representative workloads")
		cache   = fs.String("cache", "profiles.json", "alone-profile cache path (empty disables)")
		simc    = fs.String("simcache", "simcache", "simulation-result cache directory (empty disables)")
		ckptOn  = fs.Bool("ckpt", false, "fork uncached simulations from prefix checkpoints")
		ckptDir = fs.String("ckpt-dir", "ckpt", "prefix-checkpoint store directory (with -ckpt)")
		ckptMax = fs.Int64("ckpt-max-bytes", 0, "checkpoint store byte cap, oldest evicted first (0 = unbounded)")
		adapt   = fs.Bool("adaptive", false, "compute bestTLP/oracle columns via the adaptive coarse-to-fine search instead of exhaustive grids")
		out     = fs.String("out", "", "directory to also write one text file per experiment")
		ledgerF = fs.String("ledger", "", "append one provenance record per completed run to this JSONL `file` (needs -simcache)")
		spansF  = fs.String("trace-spans", "", "write the orchestration spans as a Chrome trace-event `file` at exit")
		version = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	if *version {
		fmt.Println("paperfigs", cli.Version())
		return nil
	}

	if *list {
		for _, x := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", x.ID, x.Title)
		}
		return nil
	}
	if !*all && *id == "" {
		return cli.Usagef("pass -id <experiment>, -all, or -list")
	}

	opt := experiments.Options{ProfileCache: *cache, SimCache: *simc, Adaptive: *adapt}
	// -trace-spans: the tracer rides ctx into NewEnv and every experiment
	// below it; the finished span tree is written as a flamechart at exit.
	if *spansF != "" {
		tracer := obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
		var root *obs.Span
		ctx, root = obs.StartSpan(ctx, "paperfigs")
		defer func() {
			root.End()
			f, err := os.Create(*spansF)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperfigs:", err)
				return
			}
			werr := obs.WriteSpanTrace(f, tracer)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintln(os.Stderr, "paperfigs:", werr)
				return
			}
			fmt.Fprintf(os.Stderr, "paperfigs: wrote %d spans to %s\n", tracer.Len(), *spansF)
		}()
	}
	// -ledger: provenance records flow through the environment's simcache
	// handle, so the cache is a prerequisite.
	if *ledgerF != "" {
		if *simc == "" {
			return cli.Usagef("-ledger needs -simcache")
		}
		l, err := obs.OpenLedger(*ledgerF)
		if err != nil {
			return err
		}
		defer l.Close()
		defer func() {
			fmt.Fprintf(os.Stderr, "paperfigs: %d provenance records appended to %s\n",
				l.Appends(), *ledgerF)
		}()
		opt.Ledger = l
	}
	if *ckptOn {
		store, err := ckpt.Open(*ckptDir)
		if err != nil {
			return err
		}
		store.SetMaxBytes(*ckptMax)
		opt.Ckpt = store
	}
	if *quick {
		opt.GridCycles = 60_000
		opt.GridWarmup = 10_000
		opt.EvalCycles = 150_000
		opt.EvalWarmup = 5_000
		opt.Workloads = workload.Representative()
	}
	start := time.Now()
	env, err := experiments.NewEnv(ctx, opt)
	if err != nil {
		return fmt.Errorf("profiling failed: %w", err)
	}
	fmt.Fprintf(os.Stderr, "profiles ready in %.1fs\n", time.Since(start).Seconds())
	defer func() {
		if c := env.Cache(); c != nil {
			s := c.Stats()
			fmt.Fprintf(os.Stderr, "simcache: %d hits, %d misses, %d results persisted (%s)\n",
				s.Hits, s.Misses, s.Writes, c.Dir())
		}
		if st := env.Ckpt(); st != nil {
			s := st.Stats()
			fmt.Fprintf(os.Stderr, "ckpt: %d forks, %d misses, %d checkpoints persisted (%s)\n",
				s.Forks, s.Misses, s.Writes, st.Dir())
		}
	}()

	runOne := func(x experiments.Experiment) error {
		var w io.Writer = os.Stdout
		var f *os.File
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				return err
			}
			var err error
			f, err = os.Create(filepath.Join(*out, x.ID+".txt"))
			if err != nil {
				return err
			}
			defer f.Close()
			w = io.MultiWriter(os.Stdout, f)
		}
		t0 := time.Now()
		if err := x.Run(env, w); err != nil {
			return fmt.Errorf("%s: %w", x.ID, err)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n", x.ID, time.Since(t0).Seconds())
		return nil
	}

	if *id != "" {
		x, ok := experiments.ByID(*id)
		if !ok {
			return cli.Usagef("unknown experiment %q (try -list)", *id)
		}
		return runOne(x)
	}
	for _, x := range experiments.Registry() {
		if err := ctx.Err(); err != nil {
			return err // stop between experiments; completed panels are already printed
		}
		if err := runOne(x); err != nil {
			return err
		}
	}
	return nil
}
