// Command ebsim runs one multi-application workload under one TLP
// management scheme and reports the Table III metrics.
//
// Usage:
//
//	ebsim -workload BLK_TRD -scheme pbs-ws
//	ebsim -workload BFS_FFT -scheme static:2,6
//	ebsim -workload BLK_BFS -scheme ccws:hivta=0.2,hyst=3
//	ebsim -workload JPEG_CFD_TRD -scheme dyncta -cycles 500000
//	ebsim -alone BFS            # single-application TLP sweep (Fig. 2 style)
//
// -scheme takes the canonical scheme grammar of internal/spec (see the
// README's scheme table): a registered kind — static, besttlp, maxtlp,
// dyncta, modbypass, ccws, pbs-ws, pbs-fi, pbs-hs, batch, wrs —
// optionally followed by ":args" carrying TLP levels or key=value knobs.
// The legacy -tlp flag is sugar for the static/besttlp level list.
//
// -sandbox runs the policy inside the internal/policy guard: a policy
// that panics, returns a malformed decision, or (with -sandbox-budget)
// overruns its per-decision wall-clock budget degrades the run to a safe
// fallback instead of aborting it. Degraded results are never cached or
// checkpointed; the fault tally is printed at exit, and under -chaos the
// injector also crashes the policy itself to demonstrate the recovery.
//
// Observability: -listen serves live Prometheus metrics on /metrics,
// -trace writes the per-window CSV time series, -chrometrace writes a
// Chrome trace-event file for chrome://tracing (see DESIGN.md §7 and the
// README's "Watching a run live"). -trace-spans writes the orchestration
// span tree as a Chrome-trace flamechart, and -ledger appends one
// provenance record per run satisfied through the result cache
// (DESIGN.md §12). The -listen mux also exposes net/http/pprof under
// /debug/pprof/.
//
// Performance diagnosis: -cpuprofile and -memprofile write pprof profiles
// of the run (inspect with `go tool pprof`); see DESIGN.md's Performance
// section for the benchmark workflow.
//
// -simcache DIR persists simulation results content-addressed by their
// full configuration; a repeated invocation with identical flags replays
// bit-identically from disk. Runs with -trace/-chrometrace/-listen bypass
// the cache (they need the live event stream). -ckpt persists engine
// snapshots under -ckpt-dir and forks uncached runs from the deepest
// snapshot sharing their deterministic prefix (so re-running with a longer
// -cycles only simulates the extension); -ckpt-max-bytes caps the store.
// Under -chaos the injector's faults also hit checkpoint reads and writes,
// which degrade to cold execution, never wrong results.
//
// -chaos runs the workload under deterministic fault injection (seeded by
// -chaos-seed): cache reads and writes fail probabilistically, the engine
// stalls periodically, and a progress watchdog guards the run — a live
// demonstration of the failure model of DESIGN.md §10. The run must still
// produce correct metrics; the injected-fault tally is printed at exit.
//
// SIGINT/SIGTERM cancels the run cooperatively (exit 130); a second
// signal kills the process immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ebm/internal/ckpt"
	"ebm/internal/cli"
	"ebm/internal/config"
	pbscore "ebm/internal/core"
	"ebm/internal/faultinject"
	"ebm/internal/kernel"
	"ebm/internal/metrics"
	"ebm/internal/obs"
	"ebm/internal/policy"
	"ebm/internal/profile"
	"ebm/internal/resilience"
	"ebm/internal/sim"
	"ebm/internal/simcache"
	"ebm/internal/spec"
	"ebm/internal/workload"
)

func main() { cli.Main("ebsim", run) }

func run(ctx context.Context) error {
	fs := flag.NewFlagSet("ebsim", flag.ContinueOnError)
	var (
		wlName    = fs.String("workload", "", "workload name, e.g. BLK_TRD (suite apps joined by _)")
		alone     = fs.String("alone", "", "profile a single application across all TLP levels")
		scheme    = fs.String("scheme", "pbs-ws", spec.FlagHelp())
		tlps      = fs.String("tlp", "", "comma-separated TLP combination for -scheme static/besttlp (sugar for static:N,M)")
		cycles    = fs.Uint64("cycles", 300_000, "total simulated core cycles")
		warmup    = fs.Uint64("warmup", 10_000, "warmup cycles excluded from metrics")
		window    = fs.Uint64("window", 2_500, "sampling window in cycles")
		cache     = fs.String("cache", "profiles.json", "alone-profile cache (empty disables)")
		simc      = fs.String("simcache", "", "simulation-result cache directory (empty disables)")
		ckptOn    = fs.Bool("ckpt", false, "fork uncached runs from prefix checkpoints")
		ckptDir   = fs.String("ckpt-dir", "ckpt", "prefix-checkpoint store directory (with -ckpt)")
		ckptMax   = fs.Int64("ckpt-max-bytes", 0, "checkpoint store byte cap, oldest evicted first (0 = unbounded)")
		verbose   = fs.Bool("v", false, "print per-application details")
		traceF    = fs.String("trace", "", "write per-window TLP/EB/BW/CMR time series to a CSV file")
		chromeF   = fs.String("chrometrace", "", "write a Chrome trace-event JSON file (open in chrome://tracing)")
		listen    = fs.String("listen", "", "serve live Prometheus metrics on this address, e.g. :8080 (0 picks a port)")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to `file`")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile at exit to `file`")
		chaos     = fs.Bool("chaos", false, "inject deterministic faults (cache I/O errors, stalls) and guard the run with a watchdog")
		chaosSeed = fs.Int64("chaos-seed", 1, "seed for the -chaos fault injector")
		ledgerF   = fs.String("ledger", "", "append one provenance record per completed cached run to this JSONL `file` (needs -simcache)")
		spansF    = fs.String("trace-spans", "", "write the orchestration spans as a Chrome trace-event `file` at exit")
		sandbox   = fs.Bool("sandbox", false,
			"run the policy inside the sandbox: panics and malformed decisions degrade to a safe fallback instead of aborting; degraded results are never cached")
		sandboxBudget = fs.Duration("sandbox-budget", 0,
			"per-decision wall-clock budget under -sandbox, e.g. 10ms (0 = panic isolation only; implies -sandbox)")
		version = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	if *version {
		fmt.Println("ebsim", cli.Version())
		return nil
	}
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProf()

	cfg := config.Default()

	// -trace-spans: the tracer rides ctx through profiling, the cached
	// run, and the retry/watchdog layers; the span tree is written as a
	// Chrome-trace flamechart at exit.
	if *spansF != "" {
		tracer := obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
		var root *obs.Span
		ctx, root = obs.StartSpan(ctx, "ebsim", obs.A("workload", *wlName))
		defer func() {
			root.End()
			f, err := os.Create(*spansF)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ebsim:", err)
				return
			}
			werr := obs.WriteSpanTrace(f, tracer)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintln(os.Stderr, "ebsim:", werr)
				return
			}
			fmt.Fprintf(os.Stderr, "ebsim: wrote %d spans to %s\n", tracer.Len(), *spansF)
		}()
	}

	var rcache *simcache.Cache
	if *simc != "" {
		rcache, err = simcache.Open(*simc)
		if err != nil {
			return err
		}
	}
	// -ledger: provenance hangs off the result-cache handle; observed runs
	// (-trace/-chrometrace/-listen) bypass the cache and so leave no
	// records.
	if *ledgerF != "" {
		if rcache == nil {
			return cli.Usagef("-ledger needs -simcache")
		}
		l, err := obs.OpenLedger(*ledgerF)
		if err != nil {
			return err
		}
		defer l.Close()
		defer func() {
			fmt.Fprintf(os.Stderr, "ebsim: %d provenance records appended to %s\n",
				l.Appends(), *ledgerF)
		}()
		rcache.SetLedger(l)
	}
	var store *ckpt.Store
	if *ckptOn {
		store, err = ckpt.Open(*ckptDir)
		if err != nil {
			return err
		}
		store.SetMaxBytes(*ckptMax)
		defer func() {
			s := store.Stats()
			fmt.Fprintf(os.Stderr, "ebsim: ckpt: %d forks, %d checkpoints persisted (%s)\n",
				s.Forks, s.Writes, store.Dir())
		}()
	}

	// The live-metrics registry is created up front so the resilience
	// counters land on the same /metrics endpoint as the engine's.
	var reg *obs.Registry
	if *listen != "" {
		reg = obs.NewRegistry()
	}

	// Chaos mode: a seeded injector feeds faults into the cache and the
	// engine's window boundaries; the resilience monitor tallies the
	// incidents; a watchdog aborts the run if injected stalls ever exceed
	// the progress deadline. Injected faults never change results — cache
	// read failures degrade to direct execution, write failures retry and
	// then warn — so the metrics printed below stay correct.
	var (
		inj *faultinject.Injector
		mon *resilience.Monitor
		dog *resilience.Watchdog
	)
	if *chaos {
		injCfg := faultinject.Config{
			Seed:              *chaosSeed,
			CacheReadErrProb:  0.25,
			CacheWriteErrProb: 0.25,
			StallEveryWindows: 16,
			Stall:             time.Millisecond,
		}
		if *sandbox || *sandboxBudget > 0 {
			// With the sandbox on, chaos also crashes (and, when a budget
			// is set, stalls) the policy itself; the guard absorbs both.
			injCfg.PolicyPanicProb = 0.05
			injCfg.MaxPolicyPanics = 4
			if *sandboxBudget > 0 {
				injCfg.PolicyStallEveryDecisions = 32
				injCfg.PolicyStall = 2 * *sandboxBudget
			}
		}
		inj = faultinject.New(injCfg)
		monReg := reg
		if monReg == nil {
			monReg = obs.NewRegistry() // private tally for the exit report
		}
		mon = resilience.NewMonitor(monReg, nil)
		if rcache != nil {
			rcache.SetHooks(inj)
			rcache.SetResilience(resilience.DefaultPolicy(), mon)
		}
		// Checkpoint reads and writes face the same injected faults; the
		// store's degradation ladder turns them into cold execution.
		store.SetHooks(inj)
		store.SetResilience(resilience.DefaultPolicy(), mon)
		dog = resilience.NewWatchdog(resilience.WatchdogOptions{
			Label:    "ebsim",
			Deadline: 30 * time.Second,
			Mon:      mon,
		})
		guarded, cancel := dog.Guard(ctx)
		defer cancel()
		ctx = guarded
		defer func() {
			c := inj.Counts()
			fmt.Fprintf(os.Stderr,
				"ebsim: chaos: seed=%d injected %d cache read errors, %d cache write errors, %d stalls, %d policy panics, %d policy stalls; cache retries=%d, watchdog tripped=%v\n",
				*chaosSeed, c.ReadErrs, c.WriteErrs, c.Stalls, c.PolicyPanics, c.PolicyStalls,
				mon.CacheRetries.Value(), dog.Tripped())
		}()
	}

	if *alone != "" {
		return runAlone(ctx, cfg, *alone, rcache, store)
	}
	if *wlName == "" {
		return cli.Usagef("pass -workload NAME or -alone APP")
	}
	wl, ok := workload.ByName(*wlName)
	if !ok {
		return cli.Usagef("unknown workload %q; apps: %v", *wlName, kernel.Names())
	}

	// Equal core partitioning requires divisibility: shrink the machine
	// to the largest multiple (e.g. 15 cores for three applications) as
	// the paper's equal-share methodology implies.
	if rem := cfg.NumCores % len(wl.Apps); rem != 0 {
		cfg.NumCores -= rem
		fmt.Fprintf(os.Stderr, "ebsim: using %d cores for an equal %d-way split\n",
			cfg.NumCores, len(wl.Apps))
	}
	profOpts := profile.Options{Config: cfg, CoresAlone: cfg.NumCores / len(wl.Apps), Cache: rcache, Mon: mon}
	cachePath := *cache
	if len(wl.Apps) != 2 && cachePath != "" {
		// The default cache holds half-machine profiles; keep other
		// shares in their own file.
		cachePath = fmt.Sprintf("profiles_%dapp.json", len(wl.Apps))
	}
	suite, err := profile.LoadOrProfile(ctx, cachePath, kernel.All(), profOpts)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	names := wl.Names()
	aloneIPC, err := suite.AloneIPC(names)
	if err != nil {
		return err
	}
	bestTLPs, err := suite.BestTLPs(names)
	if err != nil {
		return err
	}

	// Legacy sugar: -tlp appends the level list to a bare scheme kind.
	if *tlps != "" && !strings.Contains(*scheme, ":") {
		*scheme += ":" + *tlps
	}
	sch, err := spec.ParseScheme(*scheme)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	if sch.Kind == spec.KindBestTLP && len(sch.Static.TLPs) == 0 {
		sch = spec.BestTLP(bestTLPs) // resolve from the alone profiles
	}
	mgr, err := sch.Manager(len(wl.Apps))
	if err != nil {
		return cli.Usagef("%v", err)
	}

	victimTags := spec.VictimTagsFor(sch)

	// Observability sinks: a journal backs the CSV and Chrome-trace
	// exporters, a registry backs the live /metrics endpoint. With none of
	// the flags set the observer stays nil and the engine's hot path is
	// untouched.
	var observer *obs.Observer
	if *traceF != "" || *chromeF != "" || *listen != "" {
		observer = &obs.Observer{}
		if *traceF != "" || *chromeF != "" {
			observer.Journal = obs.NewJournal()
		}
		observer.Metrics = reg // nil unless -listen
		if pbs, ok := mgr.(*pbscore.PBS); ok {
			observer.PhaseFn = pbs.Phase
		}
	}
	if *listen != "" {
		srv, err := obs.Serve(*listen, observer.Metrics)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ebsim: serving metrics on http://%s/metrics\n", srv.Addr)
	}

	// -sandbox wraps the manager in the policy guard. Under -chaos the
	// injector's policy faults (panics, stalls) sit *inside* the guard, so
	// the run degrades to the fallback ladder and still completes; the
	// fault tally is reported at exit. Sandboxed runs skip the checkpoint
	// store — a degraded prefix must never seed future forks.
	var guard *policy.Guard
	if *sandbox || *sandboxBudget > 0 {
		inner := mgr
		if inj != nil {
			inner = faultinject.WrapManager(inner, inj)
		}
		guard = policy.Wrap(inner, policy.Options{Budget: *sandboxBudget, Obs: observer})
		defer guard.Close()
		mgr = guard
		defer func() {
			fmt.Fprintf(os.Stderr, "ebsim: sandbox: %d policy faults, %d swaps\n",
				guard.Faults(), guard.Swaps())
			for _, l := range guard.FaultLabels() {
				fmt.Fprintf(os.Stderr, "ebsim: sandbox:   %s\n", l)
			}
		}()
	}

	rs := spec.RunSpec{
		Config:             cfg,
		Apps:               wl.Apps,
		Scheme:             sch,
		TotalCycles:        *cycles,
		WarmupCycles:       *warmup,
		WindowCycles:       *window,
		DesignatedSampling: true,
		VictimTags:         victimTags,
	}
	var res sim.Result
	if (rcache != nil || store != nil) && observer == nil {
		// Hook-free runs go through the result cache and the checkpoint
		// store: a repeated invocation with identical flags replays
		// bit-identically from disk, and a longer one forks from the
		// deepest shared-prefix snapshot. Observed runs must execute for
		// their event streams, so they bypass both.
		res, err = simcache.RunCached(ctx, rcache, nil, 0, rs, directRun(rs, store, inj, dog, guard))
		if err != nil {
			return err
		}
	} else {
		runOpts, err := sim.FromSpec(rs)
		if err != nil {
			return err
		}
		runOpts.Manager = mgr // the instance observer.PhaseFn is wired to
		runOpts.Obs = observer
		if inj != nil { // a typed-nil *Injector must not become a non-nil Hooks
			runOpts.Hooks = inj
		}
		runOpts.Watchdog = dog
		s, err := sim.New(runOpts)
		if err != nil {
			return err
		}
		if res, err = s.RunContext(ctx); err != nil {
			return err
		}
	}

	if *traceF != "" {
		if err := writeFile(*traceF, func(f *os.File) error {
			return obs.WriteWindowsCSV(f, observer.Journal, len(wl.Apps))
		}); err != nil {
			return err
		}
	}
	if *chromeF != "" {
		if err := writeFile(*chromeF, func(f *os.File) error {
			return obs.WriteChromeTrace(f, observer.Journal, obs.ChromeTraceOptions{AppNames: names})
		}); err != nil {
			return err
		}
	}

	sd, err := metrics.Slowdowns(res.IPCs(), aloneIPC)
	if err != nil {
		return err
	}
	fmt.Printf("workload %s under %s (%d cycles, %d windows)\n",
		wl.Name, mgr.Name(), res.Cycles, res.Windows)
	fmt.Printf("WS=%.3f FI=%.3f HS=%.3f IT=%.3f total BW=%.3f\n",
		metrics.WS(sd), metrics.FI(sd), metrics.HS(sd), metrics.IT(res.IPCs()), res.TotalBW)
	for i, a := range res.Apps {
		fmt.Printf("  %-5s SD=%.3f IPC=%6.2f (alone %6.2f @ TLP %2d)  EB=%6.3f  final TLP=%d\n",
			a.Name, sd[i], a.IPC, aloneIPC[i], bestTLPs[i], a.EB, a.FinalTLP)
		if *verbose {
			fmt.Printf("        L1MR=%.3f L2MR=%.3f CMR=%.3f BW=%.3f rowhit=%.2f "+
				"lat=%.0f memstall=%.2f util=%.2f avgTLP=%.1f kernels=%d\n",
				a.L1MR, a.L2MR, a.CMR, a.BW, a.RowHitRate, a.AvgLatency,
				a.MemStallFrac, a.IssueUtil, a.AvgTLP, a.Kernels)
		}
	}
	return nil
}

// directRun builds the cache-miss execution path for RunCached: the
// checkpoint store when -ckpt is on, under -chaos the engine also
// carries the injector's window hooks and the watchdog's pulse, and
// under -sandbox the guard replaces the spec-built manager. With none of
// the four this returns nil and RunCached falls back to sim.Execute.
func directRun(rs spec.RunSpec, store *ckpt.Store, inj *faultinject.Injector, dog *resilience.Watchdog, guard *policy.Guard) func(context.Context) (sim.Result, error) {
	if store == nil && inj == nil && dog == nil && guard == nil {
		return nil // RunCached falls back to sim.Execute
	}
	if guard != nil {
		// A sandboxed policy can degrade the run nondeterministically, so
		// its snapshots must never seed future checkpoint forks.
		store = nil
	}
	return func(ctx context.Context) (sim.Result, error) {
		res, err := ckpt.ExecuteWith(ctx, store, rs, func(opts *sim.Options) {
			if inj != nil { // a typed-nil *Injector must not become a non-nil Hooks
				opts.Hooks = inj
			}
			opts.Watchdog = dog
			if guard != nil {
				opts.Manager = guard
			}
		})
		if guard != nil && guard.Faults() > 0 {
			// The fallback ladder changed the decisions this run executed:
			// the result no longer matches its deterministic cache key, so
			// it is returned but not persisted, and the provenance ledger
			// records each fault.
			simcache.MarkVolatile(ctx)
			for _, l := range guard.FaultLabels() {
				obs.TrailFrom(ctx).AddFault("policy: " + l)
			}
		}
		return res, err
	}
}

// writeFile creates path and runs write against it.
func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ebsim: wrote %s\n", path)
	return nil
}

// startProfiles starts a CPU profile and arranges a heap profile; the
// returned func stops and writes them. With the single-exit-point run
// pattern the deferred stop now runs on every path, including errors.
func startProfiles(cpuPath, memPath string) (func(), error) {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
	}
	return func() {
		if cpuPath != "" {
			pprof.StopCPUProfile()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ebsim:", err)
				return
			}
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ebsim:", err)
			}
			f.Close()
		}
	}, nil
}

func runAlone(ctx context.Context, cfg config.GPU, name string, rcache *simcache.Cache, store *ckpt.Store) error {
	app, ok := kernel.ByName(name)
	if !ok {
		return cli.Usagef("unknown application %q; apps: %v", name, kernel.Names())
	}
	p, err := profile.ProfileApp(ctx, app, profile.Options{Config: cfg, Cache: rcache, Ckpt: store})
	if err != nil {
		return err
	}
	fmt.Printf("%s alone (bestTLP=%d, IPC=%.2f, EB=%.3f)\n", name, p.BestTLP, p.BestIPC, p.BestEB)
	fmt.Printf("%4s %8s %7s %7s %7s %8s %7s\n", "TLP", "IPC", "L1MR", "L2MR", "CMR", "BW", "EB")
	for _, l := range p.Levels {
		a := l.Result
		fmt.Printf("%4d %8.3f %7.3f %7.3f %7.3f %8.3f %7.3f\n",
			l.TLP, a.IPC, a.L1MR, a.L2MR, a.CMR, a.BW, a.EB)
	}
	return nil
}
