// Command ebsim runs one multi-application workload under one TLP
// management scheme and reports the Table III metrics.
//
// Usage:
//
//	ebsim -workload BLK_TRD -scheme pbs-ws
//	ebsim -workload BFS_FFT -scheme static:2,6
//	ebsim -workload BLK_BFS -scheme ccws:hivta=0.2,hyst=3
//	ebsim -workload JPEG_CFD_TRD -scheme dyncta -cycles 500000
//	ebsim -alone BFS            # single-application TLP sweep (Fig. 2 style)
//
// -scheme takes the canonical scheme grammar of internal/spec (see the
// README's scheme table): a kind — static, besttlp, maxtlp, dyncta,
// modbypass, ccws, pbs-ws, pbs-fi, pbs-hs — optionally followed by
// ":args" carrying TLP levels or key=value knobs. The legacy -tlp flag
// is sugar for the static/besttlp level list.
//
// Observability: -listen serves live Prometheus metrics on /metrics,
// -trace writes the per-window CSV time series, -chrometrace writes a
// Chrome trace-event file for chrome://tracing (see DESIGN.md §7 and the
// README's "Watching a run live").
//
// Performance diagnosis: -cpuprofile and -memprofile write pprof profiles
// of the run (inspect with `go tool pprof`); see DESIGN.md's Performance
// section for the benchmark workflow.
//
// -simcache DIR persists simulation results content-addressed by their
// full configuration; a repeated invocation with identical flags replays
// bit-identically from disk. Runs with -trace/-chrometrace/-listen bypass
// the cache (they need the live event stream).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"ebm/internal/config"
	pbscore "ebm/internal/core"
	"ebm/internal/kernel"
	"ebm/internal/metrics"
	"ebm/internal/obs"
	"ebm/internal/profile"
	"ebm/internal/sim"
	"ebm/internal/simcache"
	"ebm/internal/spec"
	"ebm/internal/workload"
)

func main() {
	var (
		wlName  = flag.String("workload", "", "workload name, e.g. BLK_TRD (suite apps joined by _)")
		alone   = flag.String("alone", "", "profile a single application across all TLP levels")
		scheme  = flag.String("scheme", "pbs-ws", spec.FlagHelp())
		tlps    = flag.String("tlp", "", "comma-separated TLP combination for -scheme static/besttlp (sugar for static:N,M)")
		cycles  = flag.Uint64("cycles", 300_000, "total simulated core cycles")
		warmup  = flag.Uint64("warmup", 10_000, "warmup cycles excluded from metrics")
		window  = flag.Uint64("window", 2_500, "sampling window in cycles")
		cache   = flag.String("cache", "profiles.json", "alone-profile cache (empty disables)")
		simc    = flag.String("simcache", "", "simulation-result cache directory (empty disables)")
		verbose = flag.Bool("v", false, "print per-application details")
		traceF  = flag.String("trace", "", "write per-window TLP/EB/BW/CMR time series to a CSV file")
		chromeF = flag.String("chrometrace", "", "write a Chrome trace-event JSON file (open in chrome://tracing)")
		listen  = flag.String("listen", "", "serve live Prometheus metrics on this address, e.g. :8080 (0 picks a port)")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to `file`")
		memProf = flag.String("memprofile", "", "write a pprof heap profile at exit to `file`")
	)
	flag.Parse()
	defer startProfiles(*cpuProf, *memProf)()

	cfg := config.Default()

	var rcache *simcache.Cache
	if *simc != "" {
		var err error
		rcache, err = simcache.Open(*simc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ebsim:", err)
			os.Exit(1)
		}
	}

	if *alone != "" {
		runAlone(cfg, *alone, rcache)
		return
	}
	if *wlName == "" {
		fmt.Fprintln(os.Stderr, "ebsim: pass -workload NAME or -alone APP")
		os.Exit(2)
	}
	wl, ok := workload.ByName(*wlName)
	if !ok {
		fmt.Fprintf(os.Stderr, "ebsim: unknown workload %q; apps: %v\n", *wlName, kernel.Names())
		os.Exit(2)
	}

	// Equal core partitioning requires divisibility: shrink the machine
	// to the largest multiple (e.g. 15 cores for three applications) as
	// the paper's equal-share methodology implies.
	if rem := cfg.NumCores % len(wl.Apps); rem != 0 {
		cfg.NumCores -= rem
		fmt.Fprintf(os.Stderr, "ebsim: using %d cores for an equal %d-way split\n",
			cfg.NumCores, len(wl.Apps))
	}
	profOpts := profile.Options{Config: cfg, CoresAlone: cfg.NumCores / len(wl.Apps), Cache: rcache}
	cachePath := *cache
	if len(wl.Apps) != 2 && cachePath != "" {
		// The default cache holds half-machine profiles; keep other
		// shares in their own file.
		cachePath = fmt.Sprintf("profiles_%dapp.json", len(wl.Apps))
	}
	suite, err := profile.LoadOrProfile(cachePath, kernel.All(), profOpts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ebsim: profiling: %v\n", err)
		os.Exit(1)
	}
	names := wl.Names()
	aloneIPC, err := suite.AloneIPC(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebsim:", err)
		os.Exit(1)
	}
	bestTLPs, err := suite.BestTLPs(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebsim:", err)
		os.Exit(1)
	}

	// Legacy sugar: -tlp appends the level list to a bare scheme kind.
	if *tlps != "" && !strings.Contains(*scheme, ":") {
		*scheme += ":" + *tlps
	}
	sch, err := spec.ParseScheme(*scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebsim:", err)
		os.Exit(2)
	}
	if sch.Kind == spec.KindBestTLP && len(sch.Static.TLPs) == 0 {
		sch = spec.BestTLP(bestTLPs) // resolve from the alone profiles
	}
	mgr, err := sch.Manager(len(wl.Apps))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebsim:", err)
		os.Exit(2)
	}

	victimTags := 0
	if sch.Kind == spec.KindCCWS {
		victimTags = 1024
	}

	// Observability sinks: a journal backs the CSV and Chrome-trace
	// exporters, a registry backs the live /metrics endpoint. With none of
	// the flags set the observer stays nil and the engine's hot path is
	// untouched.
	var observer *obs.Observer
	if *traceF != "" || *chromeF != "" || *listen != "" {
		observer = &obs.Observer{}
		if *traceF != "" || *chromeF != "" {
			observer.Journal = obs.NewJournal()
		}
		if *listen != "" {
			observer.Metrics = obs.NewRegistry()
		}
		if pbs, ok := mgr.(*pbscore.PBS); ok {
			observer.PhaseFn = pbs.Phase
		}
	}
	if *listen != "" {
		srv, err := obs.Serve(*listen, observer.Metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ebsim:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ebsim: serving metrics on http://%s/metrics\n", srv.Addr)
	}

	rs := spec.RunSpec{
		Config:             cfg,
		Apps:               wl.Apps,
		Scheme:             sch,
		TotalCycles:        *cycles,
		WarmupCycles:       *warmup,
		WindowCycles:       *window,
		DesignatedSampling: true,
		VictimTags:         victimTags,
	}
	var res sim.Result
	if rcache != nil && observer == nil {
		// Hook-free runs go through the result cache: a repeated
		// invocation with identical flags replays bit-identically from
		// disk. Observed runs must execute for their event streams, so
		// they bypass the cache.
		res, err = simcache.RunCached(rcache, nil, 0, rs, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ebsim:", err)
			os.Exit(1)
		}
	} else {
		runOpts, err := sim.FromSpec(rs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ebsim:", err)
			os.Exit(1)
		}
		runOpts.Manager = mgr // the instance observer.PhaseFn is wired to
		runOpts.Obs = observer
		s, err := sim.New(runOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ebsim:", err)
			os.Exit(1)
		}
		res = s.Run()
	}

	if *traceF != "" {
		writeFile(*traceF, func(f *os.File) error {
			return obs.WriteWindowsCSV(f, observer.Journal, len(wl.Apps))
		})
	}
	if *chromeF != "" {
		writeFile(*chromeF, func(f *os.File) error {
			return obs.WriteChromeTrace(f, observer.Journal, obs.ChromeTraceOptions{AppNames: names})
		})
	}

	sd, err := metrics.Slowdowns(res.IPCs(), aloneIPC)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebsim:", err)
		os.Exit(1)
	}
	fmt.Printf("workload %s under %s (%d cycles, %d windows)\n",
		wl.Name, mgr.Name(), res.Cycles, res.Windows)
	fmt.Printf("WS=%.3f FI=%.3f HS=%.3f IT=%.3f total BW=%.3f\n",
		metrics.WS(sd), metrics.FI(sd), metrics.HS(sd), metrics.IT(res.IPCs()), res.TotalBW)
	for i, a := range res.Apps {
		fmt.Printf("  %-5s SD=%.3f IPC=%6.2f (alone %6.2f @ TLP %2d)  EB=%6.3f  final TLP=%d\n",
			a.Name, sd[i], a.IPC, aloneIPC[i], bestTLPs[i], a.EB, a.FinalTLP)
		if *verbose {
			fmt.Printf("        L1MR=%.3f L2MR=%.3f CMR=%.3f BW=%.3f rowhit=%.2f "+
				"lat=%.0f memstall=%.2f util=%.2f avgTLP=%.1f kernels=%d\n",
				a.L1MR, a.L2MR, a.CMR, a.BW, a.RowHitRate, a.AvgLatency,
				a.MemStallFrac, a.IssueUtil, a.AvgTLP, a.Kernels)
		}
	}
}

// writeFile creates path, runs write against it, and exits on any error.
func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebsim:", err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, "ebsim:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "ebsim:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ebsim: wrote %s\n", path)
}

// startProfiles starts a CPU profile and arranges a heap profile; the
// returned func stops and writes them. Profiles are skipped on the error
// paths that os.Exit (defers do not run there).
func startProfiles(cpuPath, memPath string) func() {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ebsim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ebsim:", err)
			os.Exit(1)
		}
	}
	return func() {
		if cpuPath != "" {
			pprof.StopCPUProfile()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ebsim:", err)
				return
			}
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ebsim:", err)
			}
			f.Close()
		}
	}
}

func runAlone(cfg config.GPU, name string, rcache *simcache.Cache) {
	app, ok := kernel.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "ebsim: unknown application %q; apps: %v\n", name, kernel.Names())
		os.Exit(2)
	}
	p, err := profile.ProfileApp(app, profile.Options{Config: cfg, Cache: rcache})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebsim:", err)
		os.Exit(1)
	}
	fmt.Printf("%s alone (bestTLP=%d, IPC=%.2f, EB=%.3f)\n", name, p.BestTLP, p.BestIPC, p.BestEB)
	fmt.Printf("%4s %8s %7s %7s %7s %8s %7s\n", "TLP", "IPC", "L1MR", "L2MR", "CMR", "BW", "EB")
	for _, l := range p.Levels {
		a := l.Result
		fmt.Printf("%4d %8.3f %7.3f %7.3f %7.3f %8.3f %7.3f\n",
			l.TLP, a.IPC, a.L1MR, a.L2MR, a.CMR, a.BW, a.EB)
	}
}
