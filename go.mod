module ebm

go 1.22
