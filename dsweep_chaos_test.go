package ebm_test

// Distributed-sweep chaos test: the three-act storyline of DESIGN.md §15
// run end to end against the real wire protocol, with workers that die
// the way workers actually die. Act 1 kills a worker mid-cell, lets a
// heartbeat-dropping straggler turn zombie (its lease expires while it
// keeps simulating through injected window stalls and cache write
// faults), and proves every such completion is rejected by the fencing
// check and counted. Act 2 restarts the coordinator from its state
// checkpoint and fences off a completion carried over from before the
// restart. Act 3 drains the remainder with a clean worker and proves
// the distributed sweep's per-cell results are bit-identical to a
// single-process build of the same grid — strongly: a local sweep over
// the shared cache afterwards replays every cell without simulating.
// `make dsweep-chaos` runs this under the race detector.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"ebm/internal/dsweep"
	"ebm/internal/faultinject"
	"ebm/internal/obs"
	"ebm/internal/resilience"
	"ebm/internal/runner"
	"ebm/internal/search"
	"ebm/internal/simcache"
)

func dsweepChaosCells(t *testing.T) []dsweep.Cell {
	t.Helper()
	g := chaosGridOpts(nil, nil, nil)
	return dsweep.GridCells(chaosApps(t), dsweep.GridOptions{
		Config: g.Config, Levels: g.Levels,
		TotalCycles: g.TotalCycles, WarmupCycles: g.WarmupCycles,
	})
}

func waitUntil(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// metricValue extracts a sample value from Prometheus exposition text.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		f := strings.Fields(line)
		if len(f) == 2 && f[0] == name {
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				t.Fatalf("metric %s: unparsable value %q", name, f[1])
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed:\n%s", name, body)
	return 0
}

func TestDsweepChaosRecoversBitIdentical(t *testing.T) {
	apps := chaosApps(t)
	cells := dsweepChaosCells(t)
	dir := t.TempDir()       // the shared result store every party uses
	ledgerDir := t.TempDir() // one ledger file per coordinator incarnation
	stateDir := t.TempDir()  // the coordinator's assignment checkpoint
	statePath := filepath.Join(stateDir, "dsweep-state.json")

	oldWarnf := simcache.Warnf
	simcache.Warnf = func(string, ...any) {} // injected write faults are expected noise
	t.Cleanup(func() { simcache.Warnf = oldWarnf })

	// Reference: an undisturbed single-process build in its own cache.
	refPool := runner.New(4)
	refCache, err := simcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := search.BuildGrid(context.Background(), apps, chaosGridOpts(refCache, refPool, nil))
	refPool.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Results) != len(cells) {
		t.Fatalf("%d reference results for %d cells", len(ref.Results), len(cells))
	}

	openShared := func() *simcache.Cache {
		t.Helper()
		c, err := simcache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	openLedger := func(name string) *obs.Ledger {
		t.Helper()
		l, err := obs.OpenLedger(filepath.Join(ledgerDir, name))
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	// ---- Act 1: a zombie straggler and a mid-cell crash. --------------
	//
	// The lease TTL is tiny; the zombie's heartbeats are all dropped and
	// its simulations stall 500ms per window, so every lease it takes
	// expires long before it finishes — yet it always finishes, and every
	// one of its completions must bounce off the fencing check. Its cache
	// writes are injected to fail too, so nothing it computed is trusted.
	ledger1 := openLedger("coord1.jsonl")
	reg1 := obs.NewRegistry()
	coord1, err := dsweep.New(dsweep.Options{
		Cells:     cells,
		Cache:     openShared(),
		StatePath: statePath,
		LeaseTTL:  150 * time.Millisecond,
		Version:   "devel",
		Ledger:    ledger1,
		Registry:  reg1,
		Mon:       resilience.NewMonitor(reg1, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(coord1.Handler())

	inj := faultinject.New(faultinject.Config{
		Seed:              7,
		HeartbeatDropProb: 1,
		HeartbeatDelay:    time.Millisecond,
		StallEveryWindows: 1,
		Stall:             500 * time.Millisecond,
		CacheWriteErrProb: 1,
	})
	zombieCache := openShared()
	zombieCache.SetHooks(inj)
	zombieCache.SetResilience(resilience.Policy{
		Attempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond,
	}, nil)
	zombiePool := runner.New(2)
	defer zombiePool.Close()
	zombie := dsweep.NewWorker(dsweep.WorkerOptions{
		ID: "zombie", URL: srv1.URL, Cache: zombieCache, Runner: zombiePool, Hooks: inj,
	})
	zombieErr := make(chan error, 1)
	go func() { zombieErr <- zombie.Run(context.Background()) }()
	waitUntil(t, "the zombie to take a lease", 30*time.Second, func() bool {
		return coord1.Counts().Granted >= 1
	})

	casualtyPool := runner.New(2)
	defer casualtyPool.Close()
	casualty := dsweep.NewWorker(dsweep.WorkerOptions{
		ID: "casualty", URL: srv1.URL, Cache: openShared(), Runner: casualtyPool,
	})
	casualtyErr := make(chan error, 1)
	go func() { casualtyErr <- casualty.Run(context.Background()) }()
	waitUntil(t, "the casualty to take a lease", 30*time.Second, func() bool {
		return coord1.Counts().Granted >= 2
	})
	casualty.Kill() // mid-cell: no release, no deregister — the watchdog must notice

	waitUntil(t, "expiries, a reassignment, and a fenced zombie completion", 60*time.Second, func() bool {
		n := coord1.Counts()
		return n.Expired >= 2 && n.Reassigned >= 1 && n.FencedRejects >= 1
	})
	zombie.Kill()
	for _, ch := range []chan error{zombieErr, casualtyErr} {
		select {
		case <-ch: // killed workers die with whatever error was in flight
		case <-time.After(30 * time.Second):
			t.Fatal("a killed worker did not stop")
		}
	}

	counts1 := coord1.Counts()
	doneBefore := coord1.Status().Done
	if zombie.Completed() != 0 {
		t.Fatalf("the coordinator accepted %d completions from the zombie", zombie.Completed())
	}
	if zombie.Fenced() == 0 {
		t.Fatal("the zombie never saw a completion fenced off")
	}
	fc := inj.Counts()
	if fc.HeartbeatDrops == 0 || fc.Stalls == 0 || fc.WriteErrs == 0 {
		t.Fatalf("injector counts %+v: heartbeat drops, window stalls, and cache write faults should all have fired", fc)
	}
	// The acceptance counters are mirrored into the obs registry under
	// their documented names.
	rr := httptest.NewRecorder()
	obs.Handler(reg1).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	for _, name := range []string{
		"ebm_dsweep_leases_expired_total",
		"ebm_dsweep_leases_reassigned_total",
		"ebm_dsweep_fenced_rejects_total",
	} {
		if v := metricValue(t, rr.Body.String(), name); v < 1 {
			t.Fatalf("metric %s = %v, want >= 1", name, v)
		}
	}
	srv1.Close()
	coord1.Close()
	ledger1.Close()

	// ---- Act 2: the coordinator dies and a successor takes over. ------
	//
	// The checkpoint must carry the fence reservation high-water mark
	// (persisted before any token in the block ever left, so at least
	// the grant count) and exactly the accepted completions.
	b, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	var persisted struct {
		Fence uint64                     `json:"fence"`
		Done  map[string]json.RawMessage `json:"done"`
	}
	if err := json.Unmarshal(b, &persisted); err != nil {
		t.Fatalf("torn state checkpoint: %v", err)
	}
	if persisted.Fence < counts1.Granted {
		t.Fatalf("checkpointed fence %d regressed below the grant count %d", persisted.Fence, counts1.Granted)
	}
	if len(persisted.Done) != doneBefore {
		t.Fatalf("checkpoint holds %d done cells, coordinator had %d", len(persisted.Done), doneBefore)
	}

	ledger2 := openLedger("coord2.jsonl")
	defer ledger2.Close()
	reg2 := obs.NewRegistry()
	coord2, err := dsweep.New(dsweep.Options{
		Cells:     cells,
		Cache:     openShared(),
		StatePath: statePath,
		LeaseTTL:  2 * time.Second, // the rescue worker is honest; don't race it
		Version:   "devel",
		Ledger:    ledger2,
		Registry:  reg2,
		Mon:       resilience.NewMonitor(reg2, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	srv2 := httptest.NewServer(coord2.Handler())
	defer srv2.Close()

	if n := coord2.Counts(); int(n.Resumed) != doneBefore {
		t.Fatalf("successor resumed %d cells, predecessor had completed %d", n.Resumed, doneBefore)
	}
	// A zombie from before the restart reports in with its old fence.
	// The successor has never heard of it — and still fences it off.
	ghost, _ := json.Marshal(dsweep.CompleteRequest{Worker: "zombie", Key: cells[0].Key, Fence: 1})
	resp, err := http.Post(srv2.URL+dsweep.PathComplete, "application/json", bytes.NewReader(ghost))
	if err != nil {
		t.Fatal(err)
	}
	var ghostReply dsweep.CompleteReply
	json.NewDecoder(resp.Body).Decode(&ghostReply)
	resp.Body.Close()
	if ghostReply.Accepted {
		t.Fatal("the successor accepted a completion under a pre-restart fence")
	}
	if n := coord2.Counts(); n.FencedRejects < 1 {
		t.Fatalf("successor counts %+v: the ghost completion was not counted as a fenced reject", n)
	}

	// ---- Act 3: a clean worker drains the remainder. ------------------
	rescuePool := runner.New(4)
	defer rescuePool.Close()
	rescue := dsweep.NewWorker(dsweep.WorkerOptions{
		ID: "rescue", URL: srv2.URL, Cache: openShared(), Runner: rescuePool,
	})
	rescueErr := make(chan error, 1)
	go func() { rescueErr <- rescue.Run(context.Background()) }()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := coord2.Wait(ctx); err != nil {
		t.Fatalf("sweep never finished: %v (status %+v)", err, coord2.Status())
	}
	if err := <-rescueErr; err != nil {
		t.Fatalf("rescue worker: %v", err)
	}

	// Bit-identity, cell for cell, against the undisturbed local build.
	results := coord2.Results()
	for i, cell := range cells {
		if !reflect.DeepEqual(results[cell.Key], ref.Results[i]) {
			t.Fatalf("cell %d (%s) differs from the single-process build", i, cell.Key)
		}
	}
	assertNoTornEntries(t, dir)

	// The strong form: a local sweep over the shared store replays every
	// cell from cache — zero simulation — and still matches the reference.
	replayCache := openShared()
	replayPool := runner.New(4)
	defer replayPool.Close()
	replayed, err := search.BuildGrid(context.Background(), apps, chaosGridOpts(replayCache, replayPool, nil))
	if err != nil {
		t.Fatal(err)
	}
	if s := replayCache.Stats(); int(s.Hits) != len(cells) || s.Misses != 0 {
		t.Fatalf("local replay stats %+v, want %d hits and no misses", s, len(cells))
	}
	if !reflect.DeepEqual(replayed.Results, ref.Results) {
		t.Fatal("local replay of the distributed sweep is not bit-identical to the reference")
	}

	// Provenance: the two coordinator ledgers merge into one attributed
	// story — every cell completed exactly once, by a named worker, and
	// the zombie (whose completions were all fenced) appears nowhere.
	recs, skipped, err := obs.ReadLedgers(ledgerDir)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("%d torn ledger lines", skipped)
	}
	deduped, dups := obs.DedupByFingerprint(recs)
	// Cells the successor prewarmed straight from the cache (a killed
	// worker's put can land without its completion report) were never
	// "completed" by anyone, so they carry no record — work survives the
	// crash, attribution honestly doesn't.
	wantRecs := len(cells) - int(coord2.Counts().Prewarmed)
	if len(deduped) != wantRecs || dups != 0 {
		t.Fatalf("merged ledgers hold %d records (%d dups), want one per worker-completed cell (%d)", len(deduped), dups, wantRecs)
	}
	keys := make(map[string]bool, len(cells))
	for _, c := range cells {
		keys[c.Key] = true
	}
	for _, r := range deduped {
		if !keys[r.Fingerprint] {
			t.Fatalf("ledger record for foreign fingerprint %s", r.Fingerprint)
		}
		if r.Worker == "" || r.Worker == "zombie" {
			t.Fatalf("record for %s attributed to %q", r.Fingerprint, r.Worker)
		}
	}
	sum := obs.SummarizeLedger(deduped, 0)
	if sum.Workers["rescue"] == nil || sum.Workers["rescue"].Records == 0 {
		t.Fatalf("summary workers %v, want the rescue worker attributed", sum.Workers)
	}
}
