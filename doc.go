// Package ebm is a cycle-level GPU multiprogramming simulator and a
// reference implementation of effective-bandwidth-managed thread-level
// parallelism (TLP) control, reproducing "Efficient and Fair
// Multi-programming in GPUs via Effective Bandwidth Management"
// (Wang, Luo, Ibrahim, Kayiran, Jog — HPCA 2018).
//
// The library contains everything the paper's evaluation needs, built from
// scratch in pure Go with only the standard library:
//
//   - a GPU model (SIMT cores with GTO warp schedulers and a warp-limiting
//     TLP knob, private L1 caches with MSHRs, a crossbar interconnect,
//     shared L2 slices, and GDDR5 memory controllers with FR-FCFS
//     scheduling and full bank timing);
//   - a suite of 26 synthetic GPGPU applications whose cache and bandwidth
//     behaviour spans the paper's Table IV groups;
//   - the effective bandwidth (EB) telemetry and metrics of Table III;
//   - TLP management policies: static combinations (maxTLP, bestTLP),
//     DynCTA, Mod+Bypass, and the paper's contribution — the online
//     Pattern-Based Searching managers PBS-WS, PBS-FI, and PBS-HS;
//   - exhaustive searchers (optWS/FI/HS, BF-WS/FI/HS) and offline PBS for
//     the comparison points of the evaluation.
//
// # Quick start
//
//	cfg := ebm.DefaultConfig()
//	w, _ := ebm.WorkloadByName("BFS_FFT")
//	res, err := ebm.Run(ebm.RunOptions{
//		Config:  cfg,
//		Apps:    w.Apps,
//		Manager: ebm.NewPBSWS(),
//	})
//	if err != nil { ... }
//	fmt.Println(res.Apps[0].IPC, res.Apps[1].IPC)
//
// See the examples directory for complete programs, cmd/ebsim for a CLI,
// and cmd/paperfigs for the harness that regenerates every table and
// figure in the paper's evaluation.
package ebm
