package sim_test

import (
	"testing"

	"ebm/internal/obs"
	"ebm/internal/sim"
)

// TestCyclesSimulatedCountsFullRun pins the work counter's contract: a
// cold run credits exactly its TotalCycles, and a run forked from a
// restored snapshot credits only the tail it actually executes — the
// replayed prefix was paid for by the run that produced the snapshot.
func TestCyclesSimulatedCountsFullRun(t *testing.T) {
	opts := fidelityOpts() // 20_000 cycles, 2_000-cycle windows

	s, err := sim.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	before := sim.CyclesSimulated()
	s.Run()
	if d := sim.CyclesSimulated() - before; d != opts.TotalCycles {
		t.Fatalf("cold run credited %d cycles, want %d", d, opts.TotalCycles)
	}

	// Unaligned total: the partial final window must be credited too.
	odd := opts
	odd.TotalCycles = 20_999
	s, err = sim.New(odd)
	if err != nil {
		t.Fatal(err)
	}
	before = sim.CyclesSimulated()
	s.Run()
	if d := sim.CyclesSimulated() - before; d != odd.TotalCycles {
		t.Fatalf("unaligned run credited %d cycles, want %d", d, odd.TotalCycles)
	}
}

func TestCyclesSimulatedCountsForkedTailOnly(t *testing.T) {
	opts := fidelityOpts()
	const prefix = 8_000 // a window boundary past the 3_000-cycle warmup

	short := opts
	short.TotalCycles = prefix
	ps, err := sim.New(short)
	if err != nil {
		t.Fatal(err)
	}
	ps.Run()
	data, err := ps.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}

	fs, err := sim.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.RestoreBytes(data); err != nil {
		t.Fatal(err)
	}
	before := sim.CyclesSimulated()
	fs.Run()
	if d := sim.CyclesSimulated() - before; d != opts.TotalCycles-prefix {
		t.Fatalf("forked run credited %d cycles, want the %d-cycle tail",
			d, opts.TotalCycles-prefix)
	}
}

// TestInstrumentWork pins the registry mirror: the counter is seeded with
// the work already done in this process and tracks new work.
func TestInstrumentWork(t *testing.T) {
	reg := obs.NewRegistry()
	c := sim.InstrumentWork(reg)
	if got, want := c.Value(), sim.CyclesSimulated(); got != want {
		t.Fatalf("counter seeded with %d, want %d", got, want)
	}
	s, err := sim.New(fidelityOpts())
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if got, want := c.Value(), sim.CyclesSimulated(); got != want {
		t.Fatalf("counter at %d after a run, want %d", got, want)
	}
}
