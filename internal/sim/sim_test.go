package sim

import (
	"math"
	"testing"

	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/tlp"
)

func smallCfg() config.GPU {
	c := config.Default()
	c.NumCores = 4
	c.NumMemPartitions = 4
	return c
}

func app(name string) kernel.Params {
	p, ok := kernel.ByName(name)
	if !ok {
		panic("unknown app " + name)
	}
	return p
}

func staticMgr(name string, tlps []int, bypass []bool) *tlp.Static {
	m, err := tlp.NewStatic(name, tlps, bypass)
	if err != nil {
		panic(err)
	}
	return m
}

func TestOptionValidation(t *testing.T) {
	cases := []Options{
		{},                   // no apps
		{Config: smallCfg()}, // still no apps
		{Config: smallCfg(), Apps: []kernel.Params{app("BLK")}, TotalCycles: 100, WarmupCycles: 200},
		{Config: smallCfg(), Apps: []kernel.Params{app("BLK"), app("TRD"), app("BFS")}}, // 4 cores not divisible by 3
		{Config: smallCfg(), Apps: []kernel.Params{app("BLK")}, CoresPerApp: []int{3}},  // wrong sum
		{Config: smallCfg(), Apps: []kernel.Params{app("BLK")}, CoresPerApp: []int{0}},
	}
	for i, o := range cases {
		if _, err := New(o); err == nil {
			t.Errorf("case %d accepted: %+v", i, o)
		}
	}
}

func TestSingleAppRunProducesSaneMetrics(t *testing.T) {
	s, err := New(Options{
		Config:       smallCfg(),
		Apps:         []kernel.Params{app("BLK")},
		TotalCycles:  30_000,
		WarmupCycles: 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	a := r.Apps[0]
	if r.Cycles != 25_000 {
		t.Fatalf("measured cycles = %d", r.Cycles)
	}
	if a.IPC <= 0 || a.IPC > 2*float64(smallCfg().NumCores) {
		t.Fatalf("IPC %v out of physical range", a.IPC)
	}
	if a.BW <= 0 || a.BW > 1 {
		t.Fatalf("BW %v outside (0,1]", a.BW)
	}
	if a.L1MR < 0 || a.L1MR > 1 || a.L2MR < 0 || a.L2MR > 1 {
		t.Fatalf("miss rates out of range: %v %v", a.L1MR, a.L2MR)
	}
	if math.Abs(a.CMR-a.L1MR*a.L2MR) > 1e-9 {
		t.Fatal("CMR != L1MR*L2MR")
	}
	if a.EB <= 0 {
		t.Fatalf("EB = %v", a.EB)
	}
	if a.Insts == 0 || r.Windows == 0 {
		t.Fatal("no instructions or windows measured")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		s, err := New(Options{
			Config:       smallCfg(),
			Apps:         []kernel.Params{app("BFS"), app("TRD")},
			TotalCycles:  20_000,
			WarmupCycles: 2_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	a, b := run(), run()
	for i := range a.Apps {
		if a.Apps[i].Insts != b.Apps[i].Insts {
			t.Fatalf("app %d: %d vs %d instructions across identical runs",
				i, a.Apps[i].Insts, b.Apps[i].Insts)
		}
		if a.Apps[i].BW != b.Apps[i].BW {
			t.Fatalf("app %d: BW differs across identical runs", i)
		}
	}
}

func TestTwoAppsShareMemorySystem(t *testing.T) {
	// A streaming bully must depress a co-runner's bandwidth vs alone.
	aloneOpts := Options{
		Config:       smallCfg(),
		Apps:         []kernel.Params{app("TRD")},
		CoresPerApp:  []int{2},
		TotalCycles:  40_000,
		WarmupCycles: 5_000,
	}
	aloneOpts.Config.NumCores = 2
	s, err := New(aloneOpts)
	if err != nil {
		t.Fatal(err)
	}
	alone := s.Run().Apps[0]

	s2, err := New(Options{
		Config:       smallCfg(),
		Apps:         []kernel.Params{app("TRD"), app("RED")},
		TotalCycles:  40_000,
		WarmupCycles: 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	shared := s2.Run().Apps[0]
	if shared.IPC >= alone.IPC {
		t.Fatalf("no interference: alone IPC %v, shared IPC %v", alone.IPC, shared.IPC)
	}
}

func TestTLPLimitChangesBehaviour(t *testing.T) {
	run := func(tl int) Result {
		s, err := New(Options{
			Config:       smallCfg(),
			Apps:         []kernel.Params{app("JPEG")},
			Manager:      staticMgr("s", []int{tl}, nil),
			TotalCycles:  30_000,
			WarmupCycles: 5_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	low, high := run(1), run(16)
	if high.Apps[0].IPC <= low.Apps[0].IPC {
		t.Fatalf("TLP 16 IPC %v not above TLP 1 IPC %v for a latency-bound app",
			high.Apps[0].IPC, low.Apps[0].IPC)
	}
	if low.Apps[0].FinalTLP != 1 || high.Apps[0].FinalTLP != 16 {
		t.Fatal("FinalTLP not reported")
	}
	if math.Abs(low.Apps[0].AvgTLP-1) > 0.01 {
		t.Fatalf("AvgTLP = %v, want 1", low.Apps[0].AvgTLP)
	}
}

// stepManager switches TLP at a given window to test decision latency.
type stepManager struct {
	windows int
	target  int
}

func (m *stepManager) Name() string { return "step" }
func (m *stepManager) Initial(n int) tlp.Decision {
	return tlp.NewDecision(n, 24)
}
func (m *stepManager) OnSample(s tlp.Sample) tlp.Decision {
	m.windows++
	d := tlp.NewDecision(len(s.Apps), 24)
	if m.windows >= 2 {
		for i := range d.TLP {
			d.TLP[i] = m.target
		}
	}
	return d
}

func TestManagerDecisionsApplied(t *testing.T) {
	m := &stepManager{target: 2}
	s, err := New(Options{
		Config:       smallCfg(),
		Apps:         []kernel.Params{app("BLK")},
		Manager:      m,
		TotalCycles:  30_000,
		WarmupCycles: 1_000,
		WindowCycles: 2_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Apps[0].FinalTLP != 2 {
		t.Fatalf("final TLP %d, want 2", r.Apps[0].FinalTLP)
	}
	if m.windows == 0 {
		t.Fatal("manager never sampled")
	}
	// Average TLP reflects the early high-TLP phase.
	if r.Apps[0].AvgTLP <= 2 || r.Apps[0].AvgTLP >= 24 {
		t.Fatalf("AvgTLP = %v, expected between 2 and 24", r.Apps[0].AvgTLP)
	}
}

func TestOnWindowHookAndSampleShape(t *testing.T) {
	var samples []tlp.Sample
	s, err := New(Options{
		Config:       smallCfg(),
		Apps:         []kernel.Params{app("BLK"), app("BFS")},
		TotalCycles:  20_000,
		WarmupCycles: 1_000,
		WindowCycles: 2_000,
		OnWindow:     func(sm tlp.Sample) { samples = append(samples, sm) },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(samples) != 10 {
		t.Fatalf("%d windows, want 10", len(samples))
	}
	for _, sm := range samples {
		if len(sm.Apps) != 2 {
			t.Fatal("sample app count")
		}
		for i, a := range sm.Apps {
			if a.App != i {
				t.Fatal("app index mismatch")
			}
			if a.Cycles != 2_000 {
				t.Fatalf("window cycles = %d", a.Cycles)
			}
			if a.L1MR < 0 || a.L1MR > 1 || a.L2MR < 0 || a.L2MR > 1 {
				t.Fatal("sample miss rates out of range")
			}
			if a.EB < 0 {
				t.Fatal("negative EB")
			}
		}
	}
}

func TestDesignatedVsAggregateSampling(t *testing.T) {
	collect := func(designated bool) []tlp.Sample {
		var out []tlp.Sample
		s, err := New(Options{
			Config:             smallCfg(),
			Apps:               []kernel.Params{app("TRD"), app("BLK")},
			TotalCycles:        30_000,
			WarmupCycles:       1_000,
			WindowCycles:       5_000,
			DesignatedSampling: designated,
			OnWindow:           func(sm tlp.Sample) { out = append(out, sm) },
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return out
	}
	des := collect(true)
	agg := collect(false)
	// The designated single-partition BW estimate should track the
	// aggregate within a loose factor (uniform interleaving).
	d := des[len(des)-1].Apps[0].BW
	a := agg[len(agg)-1].Apps[0].BW
	if d == 0 || a == 0 {
		t.Fatal("no bandwidth sampled")
	}
	if r := d / a; r < 0.5 || r > 2 {
		t.Fatalf("designated BW %v vs aggregate %v (ratio %v)", d, a, r)
	}
}

func TestKernelRelaunchDetection(t *testing.T) {
	p := app("BLK")
	p.KernelInsts = 10_000 // tiny kernels: several relaunches
	var relaunches int
	s, err := New(Options{
		Config:       smallCfg(),
		Apps:         []kernel.Params{p},
		TotalCycles:  40_000,
		WarmupCycles: 1_000,
		WindowCycles: 2_000,
		OnWindow: func(sm tlp.Sample) {
			if sm.Apps[0].KernelRelaunched {
				relaunches++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if relaunches == 0 {
		t.Fatal("no kernel relaunches detected")
	}
	if r.Apps[0].Kernels == 0 {
		t.Fatal("kernel count not measured")
	}
}

func TestUnequalCorePartitioning(t *testing.T) {
	s, err := New(Options{
		Config:       smallCfg(),
		Apps:         []kernel.Params{app("JPEG"), app("JPEG")},
		CoresPerApp:  []int{1, 3},
		TotalCycles:  30_000,
		WarmupCycles: 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Apps[1].IPC <= r.Apps[0].IPC {
		t.Fatalf("3-core copy (%v) not faster than 1-core copy (%v)",
			r.Apps[1].IPC, r.Apps[0].IPC)
	}
}

func TestL2WayPartitionOption(t *testing.T) {
	mask := [][]bool{make([]bool, 16), make([]bool, 16)}
	for i := 0; i < 16; i++ {
		mask[0][i] = i < 8
		mask[1][i] = i >= 8
	}
	s, err := New(Options{
		Config:         smallCfg(),
		Apps:           []kernel.Params{app("CFD"), app("SC")},
		TotalCycles:    20_000,
		WarmupCycles:   2_000,
		L2WayPartition: mask,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Apps[0].Insts == 0 || r.Apps[1].Insts == 0 {
		t.Fatal("partitioned L2 stalled the machine")
	}
}

func TestBypassDecisionApplied(t *testing.T) {
	s, err := New(Options{
		Config:       smallCfg(),
		Apps:         []kernel.Params{app("JPEG")},
		Manager:      staticMgr("byp", []int{8}, []bool{true}),
		TotalCycles:  20_000,
		WarmupCycles: 2_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Apps[0].L1MR != 1 {
		t.Fatalf("bypassed app L1MR = %v, want 1", r.Apps[0].L1MR)
	}
}

func TestResultVectors(t *testing.T) {
	s, err := New(Options{
		Config:       smallCfg(),
		Apps:         []kernel.Params{app("BLK"), app("TRD")},
		TotalCycles:  15_000,
		WarmupCycles: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if len(r.IPCs()) != 2 || len(r.EBs()) != 2 {
		t.Fatal("vector lengths")
	}
	if r.IPCs()[0] != r.Apps[0].IPC || r.EBs()[1] != r.Apps[1].EB {
		t.Fatal("vector contents")
	}
	sum := r.Apps[0].BW + r.Apps[1].BW
	if math.Abs(sum-r.TotalBW) > 1e-9 {
		t.Fatal("TotalBW != sum of per-app BW")
	}
}

func TestWarmupZero(t *testing.T) {
	s, err := New(Options{
		Config:      smallCfg(),
		Apps:        []kernel.Params{app("BLK")},
		TotalCycles: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Cycles != 10_000 || r.Apps[0].Insts == 0 {
		t.Fatal("zero-warmup run broken")
	}
}

func TestVictimTagTelemetry(t *testing.T) {
	// A thrashing cache-sensitive app must show a non-zero VTA rate when
	// the detector is enabled, and zero when disabled.
	p := app("LUD") // small per-warp working set; thrashes at high TLP
	collect := func(victimTags int) float64 {
		var last float64
		s, err := New(Options{
			Config:       smallCfg(),
			Apps:         []kernel.Params{p},
			Manager:      staticMgr("s", []int{24}, nil),
			TotalCycles:  30_000,
			WarmupCycles: 2_000,
			WindowCycles: 5_000,
			VictimTags:   victimTags,
			OnWindow:     func(sm tlp.Sample) { last = sm.Apps[0].VTARate },
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return last
	}
	if v := collect(0); v != 0 {
		t.Fatalf("VTARate %v with the detector disabled", v)
	}
	if v := collect(64); v <= 0 {
		t.Fatalf("VTARate %v for a thrashing app with the detector on", v)
	}
}

func TestCCWSEndToEnd(t *testing.T) {
	// CCWS must throttle a thrashing app below maxTLP.
	p := app("LUD")
	s, err := New(Options{
		Config:             smallCfg(),
		Apps:               []kernel.Params{p},
		Manager:            tlp.NewCCWS(),
		TotalCycles:        60_000,
		WarmupCycles:       5_000,
		WindowCycles:       2_000,
		VictimTags:         1024,
		DesignatedSampling: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Apps[0].FinalTLP >= 24 {
		t.Fatalf("CCWS left a thrashing app at TLP %d", r.Apps[0].FinalTLP)
	}
}

func TestKernelPhasesRotate(t *testing.T) {
	base := app("BLK")
	base.KernelInsts = 20_000
	phase := base
	phase.Name = ""
	phase.Rm = 0.05 // compute-heavy alternate phase
	phase.KernelInsts = 0
	phase.Phases = nil
	base.Phases = []kernel.Params{phase}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}

	// Measure windowed IPC over time: the compute-heavy phase should push
	// IPC up markedly after the first relaunch.
	var ipcs []float64
	s, err := New(Options{
		Config:       smallCfg(),
		Apps:         []kernel.Params{base},
		TotalCycles:  60_000,
		WarmupCycles: 1_000,
		WindowCycles: 2_000,
		OnWindow:     func(sm tlp.Sample) { ipcs = append(ipcs, sm.Apps[0].IPC) },
	})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Apps[0].Kernels == 0 {
		t.Fatal("no kernel boundaries crossed")
	}
	lo, hi := ipcs[0], ipcs[0]
	for _, v := range ipcs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi < 1.5*lo {
		t.Fatalf("phases did not change behaviour: IPC range [%v, %v]", lo, hi)
	}
}

func TestPhaseValidation(t *testing.T) {
	base := app("BLK")
	bad := base
	bad.PrivateWS = base.PrivateWS * 2 // layout change: must be rejected
	bad.Phases = nil
	base.Phases = []kernel.Params{bad}
	if err := base.Validate(); err == nil {
		t.Fatal("phase with a different working set accepted")
	}
}

func TestSampleEBConsistency(t *testing.T) {
	// Windowed EB must equal BW / max(CMR, floor) for every sample.
	s, err := New(Options{
		Config:       smallCfg(),
		Apps:         []kernel.Params{app("BFS"), app("TRD")},
		TotalCycles:  30_000,
		WarmupCycles: 1_000,
		WindowCycles: 2_000,
		OnWindow: func(sm tlp.Sample) {
			for _, a := range sm.Apps {
				cmr := a.CMR
				if cmr < cmrFloor {
					cmr = cmrFloor
				}
				want := a.BW / cmr
				if diff := a.EB - want; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("EB %v != BW/CMR %v", a.EB, want)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
}

func TestBackpressureStressConserves(t *testing.T) {
	// A bandwidth-saturating pair on a tiny machine: the run must neither
	// deadlock nor lose work, and per-app DRAM bytes must stay plausible.
	s, err := New(Options{
		Config:       smallCfg(),
		Apps:         []kernel.Params{app("GUPS"), app("TRD")},
		TotalCycles:  40_000,
		WarmupCycles: 2_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	for _, a := range r.Apps {
		if a.Insts == 0 {
			t.Fatalf("%s starved completely under backpressure", a.Name)
		}
		if a.BW < 0 || a.BW > 1 {
			t.Fatalf("%s BW %v out of range", a.Name, a.BW)
		}
	}
	if r.TotalBW > 1.0001 {
		t.Fatalf("total BW %v exceeds the physical peak", r.TotalBW)
	}
}

func TestRefreshOptionEndToEnd(t *testing.T) {
	run := func(trefi, trfc int) float64 {
		cfg := smallCfg()
		cfg.Timing.TREFI = trefi
		cfg.Timing.TRFC = trfc
		s, err := New(Options{
			Config:       cfg,
			Apps:         []kernel.Params{app("TRD")},
			Manager:      staticMgr("s", []int{8}, nil),
			TotalCycles:  40_000,
			WarmupCycles: 5_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run().Apps[0].BW
	}
	if with, without := run(1900, 130), run(0, 0); with >= without {
		t.Fatalf("refresh did not reduce attained bandwidth: %v vs %v", with, without)
	}
}
