package sim

import (
	"ebm/internal/tlp"
)

// cmrFloor keeps EB finite when a window carries essentially no memory
// traffic (an idle or fully cache-resident phase): the caches are modeled
// as amplifying attained bandwidth by at most 100x. The metrics package
// uses the same floor in ratio metrics.
const cmrFloor = 1e-2

// buildSample assembles the per-window telemetry handed to the TLP
// manager. With DesignatedSampling it reads one core and one partition per
// application exactly as the paper's hardware does (Fig. 8); otherwise it
// aggregates machine-wide.
func (s *Simulator) buildSample(cycle uint64) tlp.Sample {
	numApps := len(s.opts.Apps)
	// The Apps buffer is reused between windows (documented on
	// Options.OnWindow); managers and the trace recorder copy scalars.
	if cap(s.sampleApps) < numApps {
		s.sampleApps = make([]tlp.AppSample, numApps)
	}
	apps := s.sampleApps[:numApps]
	for i := range apps {
		apps[i] = tlp.AppSample{}
	}
	sample := tlp.Sample{Cycle: cycle, Apps: apps}
	windowCycles := s.opts.WindowCycles

	// Memory cycles elapsed this window (for bandwidth normalization).
	memCyclesWin := float64(windowCycles) * s.cfg.MemCyclesPerCoreCycle()
	peakWinBytesAll := s.cfg.PeakBandwidthBytesPerMemCycle() * memCyclesWin
	peakWinBytesOne := float64(s.cfg.BusWidthBytes) * memCyclesWin

	totalBW := 0.0
	for app := 0; app < numApps; app++ {
		as := &sample.Apps[app]
		as.App = app
		as.TLP = s.CurrentTLP(app)
		as.Bypass = s.cores[s.appCores[app][0]].BypassL1()
		as.Cycles = windowCycles

		var insts, issued, idle, memStall uint64
		var l1Acc, l1Miss, vtaHits uint64
		if s.opts.DesignatedSampling {
			dc := s.cores[s.appCores[app][0]]
			l1Acc = dc.L1.Stats[app].Accesses.Window()
			l1Miss = dc.L1.Stats[app].Misses.Window()
			if dc.L1.VictimTagsEnabled() {
				vtaHits = dc.L1.VTAHits[app].Window()
			}
		}
		for _, ci := range s.appCores[app] {
			c := s.cores[ci]
			insts += c.Stats.InstRetired.Window()
			issued += c.Stats.IssuedSlots.Window()
			idle += c.Stats.IdleCycles.Window()
			memStall += c.Stats.MemStall.Window()
			if !s.opts.DesignatedSampling {
				l1Acc += c.L1.Stats[app].Accesses.Window()
				l1Miss += c.L1.Stats[app].Misses.Window()
				if c.L1.VictimTagsEnabled() {
					vtaHits += c.L1.VTAHits[app].Window()
				}
			}
		}
		as.Insts = insts
		as.IPC = float64(insts) / float64(windowCycles)
		nc := float64(len(s.appCores[app]))
		as.IssueUtil = float64(issued) / (float64(windowCycles) * nc * float64(s.cfg.SchedulersPerCore))
		as.MemStallFrac = float64(memStall) / (float64(windowCycles) * nc)

		var l2Acc, l2Miss, bwBytes uint64
		if s.opts.DesignatedSampling {
			p := s.partitions[0]
			l2Acc = p.L2.Stats[app].Accesses.Window()
			l2Miss = p.L2.Stats[app].Misses.Window()
			bwBytes = p.Apps[app].BWBytes.Window()
		} else {
			for _, p := range s.partitions {
				l2Acc += p.L2.Stats[app].Accesses.Window()
				l2Miss += p.L2.Stats[app].Misses.Window()
				bwBytes += p.Apps[app].BWBytes.Window()
			}
		}

		if l1Miss > 0 {
			as.VTARate = float64(vtaHits) / float64(l1Miss)
		}
		as.L1MR = rate(l1Miss, l1Acc)
		as.L2MR = rate(l2Miss, l2Acc)
		as.CMR = as.L1MR * as.L2MR
		if s.opts.DesignatedSampling {
			as.BW = float64(bwBytes) / peakWinBytesOne
		} else {
			as.BW = float64(bwBytes) / peakWinBytesAll
		}
		as.EB = eb(as.BW, as.CMR)
		totalBW += as.BW

		// Kernel relaunch detection at app granularity.
		kp := &s.opts.Apps[app]
		if kp.KernelInsts > 0 {
			totalInsts := s.appTotalInsts(app)
			for totalInsts-s.instAtLaunch[app] >= kp.KernelInsts {
				s.instAtLaunch[app] += kp.KernelInsts
				s.kernels[app]++
				as.KernelRelaunched = true
			}
			if as.KernelRelaunched && len(s.phaseSets[app]) > 1 {
				// Rotate to the next behavioural phase.
				s.phaseIdx[app] = (s.phaseIdx[app] + 1) % len(s.phaseSets[app])
				next := s.phaseSets[app][s.phaseIdx[app]]
				for _, ws := range s.appStreams[app] {
					ws.SetPhase(next)
				}
			}
		}
	}
	sample.TotalBW = totalBW
	return sample
}

// rate returns misses/accesses with the idle-window convention of 1.0.
func rate(miss, acc uint64) float64 {
	if acc == 0 {
		return 1
	}
	return float64(miss) / float64(acc)
}

// eb computes effective bandwidth BW/CMR with the CMR floored away from
// zero so idle windows do not explode.
func eb(bw, cmr float64) float64 {
	if cmr < cmrFloor {
		cmr = cmrFloor
	}
	return bw / cmr
}

func (s *Simulator) appTotalInsts(app int) uint64 {
	var t uint64
	for _, ci := range s.appCores[app] {
		t += s.cores[ci].Stats.InstRetired.Total()
	}
	return t
}

// newWindow rolls every windowed counter in the machine.
func (s *Simulator) newWindow() {
	for _, c := range s.cores {
		c.NewWindow()
	}
	for _, p := range s.partitions {
		p.NewWindow()
	}
}

// snapshot captures per-app lifetime totals (for warmup subtraction).
func (s *Simulator) snapshot() []appSnapshot {
	return s.snapshotInto(nil)
}

// snapshotInto fills dst (grown if needed) with per-app lifetime totals,
// settling fast-forwarded idle counters first so Total() reads are exact.
func (s *Simulator) snapshotInto(dst []appSnapshot) []appSnapshot {
	for ci := range s.cores {
		s.creditQuiet(ci, s.cycle)
	}
	numApps := len(s.opts.Apps)
	if cap(dst) < numApps {
		dst = make([]appSnapshot, numApps)
	}
	snaps := dst[:numApps]
	for i := range snaps {
		snaps[i] = appSnapshot{}
	}
	for app := 0; app < numApps; app++ {
		sn := &snaps[app]
		for _, ci := range s.appCores[app] {
			c := s.cores[ci]
			sn.insts += c.Stats.InstRetired.Total()
			sn.l1Acc += c.L1.Stats[app].Accesses.Total()
			sn.l1Miss += c.L1.Stats[app].Misses.Total()
			sn.idle += c.Stats.IdleCycles.Total()
			sn.memStall += c.Stats.MemStall.Total()
			sn.issued += c.Stats.IssuedSlots.Total()
		}
		for _, p := range s.partitions {
			sn.l2Acc += p.L2.Stats[app].Accesses.Total()
			sn.l2Miss += p.L2.Stats[app].Misses.Total()
			sn.bwBytes += p.Apps[app].BWBytes.Total()
			sn.rowHits += p.Apps[app].RowHits.Total()
			sn.rowMiss += p.Apps[app].RowMisses.Total()
			sn.latSum += p.Apps[app].LatencySum.Total()
			sn.reads += p.Apps[app].DRAMReads.Total()
		}
		sn.cycles = s.cycle
		sn.memCycles = s.memCycle
		sn.kernels = s.kernels[app]
		sn.tlpWeighted = s.tlpWeighted(app)
	}
	return snaps
}

// tlpWeighted: cumulative sum of TLP over cycles; the simulator updates
// tlpAccum lazily whenever the TLP changes or is read.
func (s *Simulator) tlpWeighted(app int) float64 {
	s.flushTLPAccum()
	return s.tlpAccum[app]
}

// result assembles the measured metrics over [warmup, total).
func (s *Simulator) result(windows uint64) Result {
	if s.warm == nil {
		// Warmup 0: subtract a zero snapshot.
		s.warm = make([]appSnapshot, len(s.opts.Apps))
	}
	end := s.snapshotInto(s.accum)
	s.accum = end
	measCycles := s.cycle - s.opts.WarmupCycles
	memCycles := float64(end[0].memCycles - s.warm[0].memCycles)
	peakBytes := s.cfg.PeakBandwidthBytesPerMemCycle() * memCycles

	res := Result{Cycles: measCycles, Windows: windows, Apps: make([]AppResult, len(s.opts.Apps))}
	for app := range s.opts.Apps {
		w, e := &s.warm[app], &end[app]
		a := &res.Apps[app]
		a.Name = s.opts.Apps[app].Name
		a.Insts = e.insts - w.insts
		a.IPC = float64(a.Insts) / float64(measCycles)
		a.L1MR = rate(e.l1Miss-w.l1Miss, e.l1Acc-w.l1Acc)
		a.L2MR = rate(e.l2Miss-w.l2Miss, e.l2Acc-w.l2Acc)
		a.CMR = a.L1MR * a.L2MR
		a.BW = float64(e.bwBytes-w.bwBytes) / peakBytes
		a.EB = eb(a.BW, a.CMR)
		rowAcc := (e.rowHits - w.rowHits) + (e.rowMiss - w.rowMiss)
		if rowAcc > 0 {
			a.RowHitRate = float64(e.rowHits-w.rowHits) / float64(rowAcc)
		}
		if reads := e.reads - w.reads; reads > 0 {
			a.AvgLatency = float64(e.latSum-w.latSum) / float64(reads)
		}
		nc := float64(len(s.appCores[app]))
		a.MemStallFrac = float64(e.memStall-w.memStall) / (float64(measCycles) * nc)
		a.IssueUtil = float64(e.issued-w.issued) / (float64(measCycles) * nc * float64(s.cfg.SchedulersPerCore))
		a.AvgTLP = (e.tlpWeighted - w.tlpWeighted) / float64(measCycles)
		a.FinalTLP = s.CurrentTLP(app)
		a.Kernels = e.kernels - w.kernels
		res.TotalBW += a.BW
	}
	return res
}
