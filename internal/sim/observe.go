package sim

import (
	"fmt"

	"ebm/internal/obs"
	"ebm/internal/tlp"
)

// simObs is the engine side of the observability subsystem: it owns the
// pre-registered metric handles and publishes into the observer's sinks
// at window/decision granularity — never on the per-cycle path. All
// handle methods are nil-safe, so a journal-only or metrics-only observer
// needs no per-metric branching here; a fully nil observer is never
// constructed (Simulator.obsw stays nil and Run branches on that).
type simObs struct {
	o *obs.Observer
	j *obs.Journal // shortcut for s.o.Journal (may be nil)

	appTLP, appEB, appBW, appCMR, appIPC []*obs.Gauge
	appL1MR, appL2MR, appStall, appUtil  []*obs.Gauge
	appInsts, appKernels                 []*obs.Counter

	cycleG, memCycleG, totalBW *obs.Gauge
	windows                    *obs.Counter

	rowHits, rowMisses, dramReads, dramWrites, dramBytes, refreshes *obs.Counter
	mshrStallL1, mshrStallL2                                        *obs.Counter
	mshrOccL1, mshrOccL2                                            *obs.Gauge

	poolGets, poolAllocs, poolRecycles *obs.Counter
	poolFree, poolHit                  *obs.Gauge

	partQ, partIn, partBus      []*obs.Gauge   // per partition
	coreIdle, coreStall, coreFF []*obs.Counter // per core

	ebHist, latHist *obs.Histogram

	lastPhase string
}

// newSimObs wires the simulator to an observer, registering the full
// metric catalogue (DESIGN.md §7) when a registry is attached. Returns
// nil when the observer has no live sink, which disables all publishing.
func newSimObs(s *Simulator, o *obs.Observer) *simObs {
	if !o.Enabled() {
		return nil
	}
	w := &simObs{o: o, j: o.Journal}
	numApps := len(s.opts.Apps)
	// The handle slices are always allocated: with no registry their
	// entries stay nil and every Set/Observe no-ops (nil-safe handles), so
	// a journal-only observer walks the same publish path.
	w.appTLP = make([]*obs.Gauge, numApps)
	w.appEB = make([]*obs.Gauge, numApps)
	w.appBW = make([]*obs.Gauge, numApps)
	w.appCMR = make([]*obs.Gauge, numApps)
	w.appIPC = make([]*obs.Gauge, numApps)
	w.appL1MR = make([]*obs.Gauge, numApps)
	w.appL2MR = make([]*obs.Gauge, numApps)
	w.appStall = make([]*obs.Gauge, numApps)
	w.appUtil = make([]*obs.Gauge, numApps)
	w.appInsts = make([]*obs.Counter, numApps)
	w.appKernels = make([]*obs.Counter, numApps)
	if r := o.Metrics; r != nil {
		for app := 0; app < numApps; app++ {
			ls := []obs.Label{obs.L("app", fmt.Sprint(app)), obs.L("name", s.opts.Apps[app].Name)}
			w.appTLP[app] = r.Gauge("ebm_app_tlp", "TLP limit in effect at the end of the window", ls...)
			w.appEB[app] = r.Gauge("ebm_app_eb", "per-window effective bandwidth BW/CMR", ls...)
			w.appBW[app] = r.Gauge("ebm_app_bw", "per-window attained DRAM bandwidth, fraction of peak", ls...)
			w.appCMR[app] = r.Gauge("ebm_app_cmr", "per-window compound miss rate L1MR*L2MR", ls...)
			w.appIPC[app] = r.Gauge("ebm_app_ipc", "per-window instructions per cycle", ls...)
			w.appL1MR[app] = r.Gauge("ebm_app_l1_miss_rate", "per-window L1 miss rate", ls...)
			w.appL2MR[app] = r.Gauge("ebm_app_l2_miss_rate", "per-window L2 miss rate", ls...)
			w.appStall[app] = r.Gauge("ebm_app_mem_stall_frac", "fraction of window cycles idle on memory", ls...)
			w.appUtil[app] = r.Gauge("ebm_app_issue_util", "fraction of issue slots used in the window", ls...)
			w.appInsts[app] = r.Counter("ebm_app_insts_total", "lifetime retired warp instructions", ls...)
			w.appKernels[app] = r.Counter("ebm_app_kernels_total", "kernel launches completed", ls...)
		}
		w.cycleG = r.Gauge("ebm_cycle", "current core cycle")
		w.memCycleG = r.Gauge("ebm_mem_cycle", "current memory cycle")
		w.totalBW = r.Gauge("ebm_total_bw", "machine attained bandwidth in the last window, fraction of peak")
		w.windows = r.Counter("ebm_windows_total", "completed sampling windows")
		w.rowHits = r.Counter("ebm_dram_row_hits_total", "DRAM row-buffer hits")
		w.rowMisses = r.Counter("ebm_dram_row_misses_total", "DRAM activates (closed rows and conflicts)")
		w.dramReads = r.Counter("ebm_dram_reads_total", "DRAM read bursts")
		w.dramWrites = r.Counter("ebm_dram_writes_total", "DRAM write bursts")
		w.dramBytes = r.Counter("ebm_dram_bytes_total", "DRAM data-bus bytes transferred")
		w.refreshes = r.Counter("ebm_dram_refreshes_total", "all-bank refresh operations")
		w.mshrStallL1 = r.Counter("ebm_mshr_stall_cycles_total",
			"cycles stalled on a full MSHR file or queue", obs.L("level", "l1"))
		w.mshrStallL2 = r.Counter("ebm_mshr_stall_cycles_total",
			"cycles stalled on a full MSHR file or queue", obs.L("level", "l2"))
		w.mshrOccL1 = r.Gauge("ebm_mshr_occupancy", "distinct lines in flight", obs.L("level", "l1"))
		w.mshrOccL2 = r.Gauge("ebm_mshr_occupancy", "distinct lines in flight", obs.L("level", "l2"))
		w.poolGets = r.Counter("ebm_request_pool_gets_total", "request-pool Gets")
		w.poolAllocs = r.Counter("ebm_request_pool_heap_allocs_total", "pool Gets served by the heap")
		w.poolRecycles = r.Counter("ebm_request_pool_recycles_total", "requests returned to the pool")
		w.poolFree = r.Gauge("ebm_request_pool_free", "request-pool free-list depth")
		w.poolHit = r.Gauge("ebm_request_pool_hit_ratio", "fraction of pool Gets served by the free list")
		w.partQ = make([]*obs.Gauge, len(s.partitions))
		w.partIn = make([]*obs.Gauge, len(s.partitions))
		w.partBus = make([]*obs.Gauge, len(s.partitions))
		for i := range s.partitions {
			l := obs.L("partition", fmt.Sprint(i))
			w.partQ[i] = r.Gauge("ebm_dram_queue_depth", "FR-FCFS queue occupancy", l)
			w.partIn[i] = r.Gauge("ebm_dram_input_depth", "partition input-queue occupancy", l)
			w.partBus[i] = r.Gauge("ebm_dram_bus_utilization", "data-bus busy fraction over the last window", l)
		}
		w.coreIdle = make([]*obs.Counter, len(s.cores))
		w.coreStall = make([]*obs.Counter, len(s.cores))
		w.coreFF = make([]*obs.Counter, len(s.cores))
		for i, c := range s.cores {
			ls := []obs.Label{obs.L("core", fmt.Sprint(i)), obs.L("app", fmt.Sprint(c.App))}
			w.coreIdle[i] = r.Counter("ebm_core_idle_cycles_total", "cycles with no issuable warp", ls...)
			w.coreStall[i] = r.Counter("ebm_core_mem_stall_cycles_total", "idle cycles blocked on memory", ls...)
			w.coreFF[i] = r.Counter("ebm_core_fastforward_cycles_total", "idle cycles skipped by fast-forward", ls...)
		}
		w.ebHist = r.Histogram("ebm_window_app_eb", "distribution of per-app window EB values",
			[]float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.2, 1.6, 2, 3, 5})
		w.latHist = r.Histogram("ebm_dram_window_read_latency", "per-window mean DRAM read latency in memory cycles",
			[]float64{50, 100, 200, 400, 800, 1600, 3200})
	}
	if o.PhaseFn != nil {
		w.lastPhase = o.PhaseFn()
		w.j.Record(obs.Event{Cycle: 0, Kind: obs.EvPhase, App: -1, Label: w.lastPhase})
	}
	return w
}

// decision journals a TLP-management decision as it is applied at the
// warp schedulers.
func (w *simObs) decision(d tlp.Decision, cycle uint64) {
	w.j.Record(obs.Event{Cycle: cycle, Kind: obs.EvDecision, App: -1, Label: d.String()})
}

// policyFault journals a TLP policy misbehaving at a window boundary —
// a wrong-shaped decision or a rejected hot-swap.
func (w *simObs) policyFault(label string, cycle uint64) {
	w.j.Record(obs.Event{Cycle: cycle, Kind: obs.EvPolicyFault, App: -1, Label: label})
}

// policySwap journals a TLP policy hot-swap taking effect.
func (w *simObs) policySwap(name string, cycle uint64) {
	w.j.Record(obs.Event{Cycle: cycle, Kind: obs.EvPolicySwap, App: -1, Label: name})
}

// warmup journals the warmup boundary (measurement starts here).
func (w *simObs) warmup(cycle uint64) {
	w.j.Record(obs.Event{Cycle: cycle, Kind: obs.EvWarmup, App: -1})
}

// window publishes one completed sampling window: per-app telemetry from
// the sample the manager saw, machine-wide counters scraped from the
// engine's lifetime totals, and the journal events the CSV and Chrome
// trace exporters replay. Called once per window, before newWindow rolls
// the windowed counters.
func (w *simObs) window(s *Simulator, sample tlp.Sample, windows uint64) {
	for i := range sample.Apps {
		a := &sample.Apps[i]
		w.appTLP[i].Set(float64(a.TLP))
		w.appEB[i].Set(a.EB)
		w.appBW[i].Set(a.BW)
		w.appCMR[i].Set(a.CMR)
		w.appIPC[i].Set(a.IPC)
		w.appL1MR[i].Set(a.L1MR)
		w.appL2MR[i].Set(a.L2MR)
		w.appStall[i].Set(a.MemStallFrac)
		w.appUtil[i].Set(a.IssueUtil)
		w.appInsts[i].Set(s.appTotalInsts(i))
		w.appKernels[i].Set(s.kernels[i])
		w.ebHist.Observe(a.EB)

		w.j.Record(obs.Event{
			Cycle: sample.Cycle, Kind: obs.EvAppWindow, App: i, Window: windows,
			TLP: a.TLP, EB: a.EB, BW: a.BW, CMR: a.CMR, IPC: a.IPC,
		})
		if a.KernelRelaunched {
			w.j.Record(obs.Event{Cycle: sample.Cycle, Kind: obs.EvKernel, App: i})
		}
	}

	if w.o.Metrics != nil {
		w.cycleG.Set(float64(sample.Cycle))
		w.memCycleG.Set(float64(s.memCycle))
		w.totalBW.Set(sample.TotalBW)
		w.windows.Set(windows)

		var rowHits, rowMisses, reads, writes, bytes, refreshes uint64
		var l2Stalls, l2Occ uint64
		var latSumWin, readsWin uint64
		memCyclesWin := float64(s.opts.WindowCycles) * s.cfg.MemCyclesPerCoreCycle()
		for pi, p := range s.partitions {
			for app := range p.Apps {
				a := &p.Apps[app]
				rowHits += a.RowHits.Total()
				rowMisses += a.RowMisses.Total()
				reads += a.DRAMReads.Total()
				writes += a.DRAMWrites.Total()
				bytes += a.BWBytes.Total()
				latSumWin += a.LatencySum.Window()
				readsWin += a.DRAMReads.Window()
			}
			refreshes += p.Refreshes.Total()
			l2Stalls += p.MSHRStalls.Total()
			l2Occ += uint64(p.OutstandingMisses())
			w.partQ[pi].Set(float64(p.QueueDepth()))
			w.partIn[pi].Set(float64(p.InputDepth()))
			if memCyclesWin > 0 {
				w.partBus[pi].Set(float64(p.BusBusy.Window()) / memCyclesWin)
			}
		}
		w.rowHits.Set(rowHits)
		w.rowMisses.Set(rowMisses)
		w.dramReads.Set(reads)
		w.dramWrites.Set(writes)
		w.dramBytes.Set(bytes)
		w.refreshes.Set(refreshes)
		w.mshrStallL2.Set(l2Stalls)
		w.mshrOccL2.Set(float64(l2Occ))
		if readsWin > 0 {
			w.latHist.Observe(float64(latSumWin) / float64(readsWin))
		}

		var l1Stalls, l1Occ uint64
		for i, c := range s.cores {
			l1Stalls += c.Stats.StallMSHR.Total()
			l1Occ += uint64(c.OutstandingMisses())
			w.coreIdle[i].Set(c.Stats.IdleCycles.Total())
			w.coreStall[i].Set(c.Stats.MemStall.Total())
			w.coreFF[i].Set(c.Stats.FastForward.Total())
		}
		w.mshrStallL1.Set(l1Stalls)
		w.mshrOccL1.Set(float64(l1Occ))

		w.poolGets.Set(s.pool.Gets())
		w.poolAllocs.Set(s.pool.HeapAllocs())
		w.poolRecycles.Set(s.pool.Recycles())
		w.poolFree.Set(float64(s.pool.FreeLen()))
		if gets := s.pool.Gets(); gets > 0 {
			w.poolHit.Set(float64(gets-s.pool.HeapAllocs()) / float64(gets))
		}
	}

	if w.o.PhaseFn != nil {
		if ph := w.o.PhaseFn(); ph != w.lastPhase {
			w.lastPhase = ph
			w.j.Record(obs.Event{Cycle: sample.Cycle, Kind: obs.EvPhase, App: -1, Label: ph})
		}
	}

	// The machine window event last: the CSV exporter uses it to flush
	// the row assembled from the per-app events above.
	w.j.Record(obs.Event{
		Cycle: sample.Cycle, Kind: obs.EvWindow, App: -1, Window: windows,
		BW: sample.TotalBW,
	})
}
