package sim

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"ebm/internal/dram"
	"ebm/internal/gpu"
	"ebm/internal/icnt"
	"ebm/internal/kernel"
	"ebm/internal/mem"
	"ebm/internal/tlp"
)

// SnapshotVersion identifies the EngineState layout. Bump it whenever any
// captured structure changes shape or meaning; stale checkpoints then
// fail to restore and callers fall back to cold execution.
const SnapshotVersion = 1

// AppSnapshotState mirrors the per-app warmup accumulator snapshot.
type AppSnapshotState struct {
	Insts       uint64
	L1Acc       uint64
	L1Miss      uint64
	L2Acc       uint64
	L2Miss      uint64
	BWBytes     uint64
	RowHits     uint64
	RowMiss     uint64
	LatSum      uint64
	Reads       uint64
	Idle        uint64
	MemStall    uint64
	Issued      uint64
	Cycles      uint64
	MemCycles   uint64
	TLPWeighted float64
	Kernels     uint64
}

// EngineState is the complete serializable state of a Simulator at a
// cycle boundary: restoring it into a freshly constructed Simulator with
// the same Options and running to any horizon produces bit-identical
// results to an uninterrupted run. The Options themselves (machine
// configuration, apps, policy parameters) are NOT captured — the caller
// keys checkpoints by the run spec's deterministic prefix and rebuilds
// the machine before restoring.
type EngineState struct {
	Version int

	// Cycle is the core cycle the restored run resumes executing at.
	Cycle      uint64
	MemCycle   uint64
	MemAcc     float64
	Windows    uint64
	NextWindow uint64

	CoreInjectFree []uint64
	PartRespFree   []uint64
	CoreQuiet      []bool
	QuietFrom      []uint64
	QuietMemWait   []bool

	CurTLP    []int
	CurBypass []bool

	PendValid  bool
	PendTLP    []int
	PendBypass []bool
	PendAt     uint64

	InstAtLaunch []uint64
	Kernels      []uint64
	PhaseIdx     []int
	TLPAccum     []float64
	LastTLPFlush uint64

	// Warm is nil when the warmup boundary has not been reached yet.
	Warm []AppSnapshotState

	// ManagerName sanity-checks that a checkpoint is restored under the
	// same policy that produced it; Manager is the policy's opaque state.
	ManagerName string
	Manager     []byte

	// Streams is indexed [app][stream] in construction order.
	Streams    [][]kernel.StreamState
	Cores      []gpu.CoreState
	Partitions []dram.PartitionState
	ToMem      icnt.NetworkState
	ToCore     icnt.NetworkState
	Pool       mem.PoolState
}

// Snapshot captures the simulator's complete state. It never mutates the
// simulator (pending idle credits, TLP accumulators, and window marks are
// captured raw), so taking snapshots cannot perturb a run's results.
// Valid after RunContext returns (the state resumes at the cycle the run
// stopped at) and inside a CkptSink callback (the state resumes at the
// first cycle of the next window). It fails if the TLP manager does not
// implement tlp.Stater.
func (s *Simulator) Snapshot() (*EngineState, error) {
	mgr, ok := s.opts.Manager.(tlp.Stater)
	if !ok {
		return nil, fmt.Errorf("sim: manager %q does not support checkpointing", s.opts.Manager.Name())
	}
	mb, err := mgr.StateBytes()
	if err != nil {
		return nil, fmt.Errorf("sim: manager %q state: %w", s.opts.Manager.Name(), err)
	}
	cycle := s.cycle
	if s.atBoundary {
		// The window-boundary bookkeeping for s.cycle already ran; a fork
		// resumes at the next cycle.
		cycle++
	}
	st := &EngineState{
		Version:        SnapshotVersion,
		Cycle:          cycle,
		MemCycle:       s.memCycle,
		MemAcc:         s.memAcc,
		Windows:        s.windows,
		NextWindow:     s.nextWindow,
		CoreInjectFree: append([]uint64(nil), s.coreInjectFree...),
		PartRespFree:   append([]uint64(nil), s.partRespFree...),
		CoreQuiet:      append([]bool(nil), s.coreQuiet...),
		QuietFrom:      append([]uint64(nil), s.quietFrom...),
		QuietMemWait:   append([]bool(nil), s.quietMemWait...),
		CurTLP:         append([]int(nil), s.curDecision.TLP...),
		CurBypass:      append([]bool(nil), s.curDecision.BypassL1...),
		PendAt:         s.pendAt,
		InstAtLaunch:   append([]uint64(nil), s.instAtLaunch...),
		Kernels:        append([]uint64(nil), s.kernels...),
		PhaseIdx:       append([]int(nil), s.phaseIdx...),
		TLPAccum:       append([]float64(nil), s.tlpAccum...),
		LastTLPFlush:   s.lastTLPFlush,
		ManagerName:    s.opts.Manager.Name(),
		Manager:        mb,
		ToMem:          s.toMem.State(),
		ToCore:         s.toCore.State(),
		Pool:           s.pool.State(),
	}
	if s.pendDecision != nil {
		st.PendValid = true
		st.PendTLP = append([]int(nil), s.pendDecision.TLP...)
		st.PendBypass = append([]bool(nil), s.pendDecision.BypassL1...)
	}
	if s.warm != nil {
		st.Warm = make([]AppSnapshotState, len(s.warm))
		for i, w := range s.warm {
			st.Warm[i] = AppSnapshotState{
				Insts: w.insts, L1Acc: w.l1Acc, L1Miss: w.l1Miss,
				L2Acc: w.l2Acc, L2Miss: w.l2Miss, BWBytes: w.bwBytes,
				RowHits: w.rowHits, RowMiss: w.rowMiss, LatSum: w.latSum,
				Reads: w.reads, Idle: w.idle, MemStall: w.memStall,
				Issued: w.issued, Cycles: w.cycles, MemCycles: w.memCycles,
				TLPWeighted: w.tlpWeighted, Kernels: w.kernels,
			}
		}
	}
	st.Streams = make([][]kernel.StreamState, len(s.appStreams))
	for app, streams := range s.appStreams {
		ss := make([]kernel.StreamState, len(streams))
		for i, ws := range streams {
			ss[i] = ws.State()
		}
		st.Streams[app] = ss
	}
	st.Cores = make([]gpu.CoreState, len(s.cores))
	for i, c := range s.cores {
		st.Cores[i] = c.State()
	}
	st.Partitions = make([]dram.PartitionState, len(s.partitions))
	for i, p := range s.partitions {
		st.Partitions[i] = p.State()
	}
	return st, nil
}

// Restore loads a snapshot into a freshly constructed Simulator built
// from the same Options the snapshot's producer used. On success a
// subsequent RunContext resumes at the captured cycle and executes
// bit-identically to the uninterrupted run. On error the simulator may be
// partially mutated and must be discarded.
func (s *Simulator) Restore(st *EngineState) error {
	if st.Version != SnapshotVersion {
		return fmt.Errorf("sim: snapshot version %d, want %d", st.Version, SnapshotVersion)
	}
	mgr, ok := s.opts.Manager.(tlp.Stater)
	if !ok {
		return fmt.Errorf("sim: manager %q does not support checkpointing", s.opts.Manager.Name())
	}
	if st.ManagerName != s.opts.Manager.Name() {
		return fmt.Errorf("sim: snapshot from manager %q restored under %q", st.ManagerName, s.opts.Manager.Name())
	}
	numApps := len(s.appStreams)
	if len(st.Streams) != numApps || len(st.PhaseIdx) != numApps ||
		len(st.CurTLP) != numApps || len(st.InstAtLaunch) != numApps ||
		len(st.Kernels) != numApps || len(st.TLPAccum) != numApps {
		return fmt.Errorf("sim: snapshot has wrong app count")
	}
	if len(st.Cores) != len(s.cores) || len(st.Partitions) != len(s.partitions) {
		return fmt.Errorf("sim: snapshot has %d cores / %d partitions, machine has %d / %d",
			len(st.Cores), len(st.Partitions), len(s.cores), len(s.partitions))
	}
	if len(st.CoreInjectFree) != len(s.cores) || len(st.CoreQuiet) != len(s.cores) ||
		len(st.QuietFrom) != len(s.cores) || len(st.QuietMemWait) != len(s.cores) ||
		len(st.PartRespFree) != len(s.partitions) {
		return fmt.Errorf("sim: snapshot per-core/per-partition vectors have wrong length")
	}
	if st.Warm != nil && len(st.Warm) != numApps {
		return fmt.Errorf("sim: snapshot warmup block has %d apps, want %d", len(st.Warm), numApps)
	}
	for app, ss := range st.Streams {
		if len(ss) != len(s.appStreams[app]) {
			return fmt.Errorf("sim: snapshot app %d has %d streams, machine has %d", app, len(ss), len(s.appStreams[app]))
		}
		if st.PhaseIdx[app] < 0 || st.PhaseIdx[app] >= len(s.phaseSets[app]) {
			return fmt.Errorf("sim: snapshot app %d phase %d out of range", app, st.PhaseIdx[app])
		}
	}
	if err := mgr.SetStateBytes(st.Manager); err != nil {
		return err
	}
	for app, ss := range st.Streams {
		p := s.phaseSets[app][st.PhaseIdx[app]]
		for i, ws := range s.appStreams[app] {
			// Bind the stream to the snapshot's kernel phase first (sets
			// the params pointer), then overwrite the mutable walk state.
			ws.SetPhase(p)
			ws.SetState(ss[i])
		}
		s.phaseIdx[app] = st.PhaseIdx[app]
	}
	for i, c := range s.cores {
		if err := c.SetState(st.Cores[i]); err != nil {
			return err
		}
	}
	for i, p := range s.partitions {
		if err := p.SetState(st.Partitions[i]); err != nil {
			return err
		}
	}
	if err := s.toMem.SetState(st.ToMem); err != nil {
		return err
	}
	if err := s.toCore.SetState(st.ToCore); err != nil {
		return err
	}
	s.pool.SetState(st.Pool)

	copy(s.coreInjectFree, st.CoreInjectFree)
	copy(s.partRespFree, st.PartRespFree)
	copy(s.coreQuiet, st.CoreQuiet)
	copy(s.quietFrom, st.QuietFrom)
	copy(s.quietMemWait, st.QuietMemWait)
	copy(s.instAtLaunch, st.InstAtLaunch)
	copy(s.kernels, st.Kernels)
	copy(s.tlpAccum, st.TLPAccum)
	s.lastTLPFlush = st.LastTLPFlush

	// The cores carry their own restored TLP/bypass hardware state; the
	// decision registers are set directly, without applyDecision's wake
	// and flush side effects.
	s.curDecision = tlp.Decision{
		TLP:      append([]int(nil), st.CurTLP...),
		BypassL1: append([]bool(nil), st.CurBypass...),
	}
	s.pendDecision = nil
	if st.PendValid {
		d := tlp.Decision{
			TLP:      append([]int(nil), st.PendTLP...),
			BypassL1: append([]bool(nil), st.PendBypass...),
		}
		s.pendDecision = &d
	}
	s.pendAt = st.PendAt

	s.warm = nil
	if st.Warm != nil {
		s.warm = make([]appSnapshot, len(st.Warm))
		for i, w := range st.Warm {
			s.warm[i] = appSnapshot{
				insts: w.Insts, l1Acc: w.L1Acc, l1Miss: w.L1Miss,
				l2Acc: w.L2Acc, l2Miss: w.L2Miss, bwBytes: w.BWBytes,
				rowHits: w.RowHits, rowMiss: w.RowMiss, latSum: w.LatSum,
				reads: w.Reads, idle: w.Idle, memStall: w.MemStall,
				issued: w.Issued, cycles: w.Cycles, memCycles: w.MemCycles,
				tlpWeighted: w.TLPWeighted, kernels: w.Kernels,
			}
		}
	}

	s.cycle = st.Cycle
	s.memCycle = st.MemCycle
	s.memAcc = st.MemAcc
	s.windows = st.Windows
	s.nextWindow = st.NextWindow
	s.ckptDead = false
	s.atBoundary = false
	return nil
}

// SnapshotBytes is Snapshot serialized with gob.
func (s *Simulator) SnapshotBytes() ([]byte, error) {
	st, err := s.Snapshot()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("sim: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreBytes decodes and restores a SnapshotBytes payload.
func (s *Simulator) RestoreBytes(data []byte) error {
	var st EngineState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("sim: decode snapshot: %w", err)
	}
	return s.Restore(&st)
}
