package sim_test

import (
	"runtime"
	"testing"

	"ebm/internal/config"
	"ebm/internal/sim"
	"ebm/internal/workload"
)

// BenchmarkCycleTick measures the per-cycle cost of the full machine:
// b.N simulated core cycles of a two-application workload, so ns/op is
// nanoseconds per simulated cycle and allocs/op is the cycle-path
// allocation rate the request pool and MSHR tables are meant to hold
// near zero.
func BenchmarkCycleTick(b *testing.B) {
	wl := workload.MustMake("BLK", "BFS")
	s, err := sim.New(sim.Options{
		Config:       config.Default(),
		Apps:         wl.Apps,
		TotalCycles:  uint64(b.N),
		WindowCycles: 2_000,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
}

// measureRunMallocs returns the heap allocation count of one Run of the
// given length (simulator construction excluded).
func measureRunMallocs(t *testing.T, cycles uint64) uint64 {
	t.Helper()
	wl := workload.MustMake("BLK", "BFS")
	s, err := sim.New(sim.Options{
		Config:       config.Default(),
		Apps:         wl.Apps,
		TotalCycles:  cycles,
		WindowCycles: 2_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	s.Run()
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - m0.Mallocs
}

// TestCyclePathSteadyStateAllocs asserts the steady-state cycle path is
// allocation-free up to a small slack: the extra allocations of a 3x
// longer run over a shorter one (which cancels one-time warm-up growth of
// pools, queues and window buffers) must stay under a fraction of an
// object per simulated cycle. Before pooling, every L1 miss and DRAM
// reply allocated, putting this well above 1 per cycle.
func TestCyclePathSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is not -short friendly")
	}
	short := measureRunMallocs(t, 20_000)
	long := measureRunMallocs(t, 60_000)
	var extra uint64
	if long > short {
		extra = long - short
	}
	perKCycle := float64(extra) / 40.0
	t.Logf("steady-state allocations: %.1f per 1000 cycles (short=%d long=%d)", perKCycle, short, long)
	if perKCycle > 50 {
		t.Errorf("cycle path allocates %.1f objects per 1000 cycles, want <= 50", perKCycle)
	}
}
