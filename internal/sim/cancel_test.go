package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"ebm/internal/faultinject"
	"ebm/internal/kernel"
	"ebm/internal/resilience"
	"ebm/internal/tlp"
)

func cancelOpts() Options {
	return Options{
		Config:       smallCfg(),
		Apps:         []kernel.Params{app("BLK")},
		TotalCycles:  120_000,
		WarmupCycles: 5_000,
		WindowCycles: 1_000,
	}
}

// TestRunContextBackgroundMatchesRun pins that the cancellation plumbing
// costs nothing semantically: a background-context run is bit-identical
// to the plain Run path.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	s1, err := New(cancelOpts())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(cancelOpts())
	if err != nil {
		t.Fatal(err)
	}
	r1 := s1.Run()
	r2, err := s2.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("RunContext(Background) diverged from Run()")
	}
}

// TestCancelAbortsWithinOneWindow is the abort-latency bound of the
// cancellation contract: a cancel observed during window N stops the
// engine at that window's boundary, long before the 120k-cycle run would
// have finished.
func TestCancelAbortsWithinOneWindow(t *testing.T) {
	opts := cancelOpts()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelWindow = 10
	windows := 0
	opts.OnWindow = func(tlp.Sample) {
		windows++
		if windows == cancelWindow {
			cancel()
		}
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// OnWindow fires at the boundary and the cancellation check runs at
	// the same boundary, so the engine must stop inside that very window.
	if got, bound := s.Cycle(), uint64(cancelWindow)*opts.WindowCycles; got >= bound {
		t.Fatalf("engine ran to cycle %d, want < %d (one window after the cancel)", got, bound)
	}
	if res.Windows != cancelWindow {
		t.Fatalf("partial result reports %d windows, want %d", res.Windows, cancelWindow)
	}
}

// TestCancelBeforeWarmupReturnsZeroMeasurements: cancelling before the
// warmup snapshot exists must not underflow the measurement window; the
// partial result carries the window count and nothing else.
func TestCancelBeforeWarmupReturnsZeroMeasurements(t *testing.T) {
	opts := cancelOpts()
	opts.WarmupCycles = 50_000 // cancel long before this
	ctx, cancel := context.WithCancel(context.Background())
	fired := false
	opts.OnWindow = func(tlp.Sample) {
		if !fired {
			fired = true
			cancel()
		}
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Windows != 1 || res.Cycles != 0 || len(res.Apps) != 0 {
		t.Fatalf("pre-warmup partial = %+v, want windows only", res)
	}
}

// TestWatchdogAbortsStalledRun wires the full resilience loop: an
// injected per-window stall stops the cycle counter advancing, the
// watchdog's progress deadline expires, the guarded context cancels, and
// the engine aborts at the next boundary check.
func TestWatchdogAbortsStalledRun(t *testing.T) {
	opts := cancelOpts()
	opts.Hooks = faultinject.New(faultinject.Config{
		StallEveryWindows: 1,
		Stall:             300 * time.Millisecond,
	})
	w := resilience.NewWatchdog(resilience.WatchdogOptions{
		Label:    "stalled-run",
		Deadline: 50 * time.Millisecond,
		Poll:     10 * time.Millisecond,
	})
	opts.Watchdog = w
	ctx, cancel := w.Guard(context.Background())
	defer cancel()

	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.RunContext(ctx)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled from the watchdog trip", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("watchdog never aborted the stalled run")
	}
	if !w.Tripped() {
		t.Fatal("run aborted but the watchdog does not report a trip")
	}
}
