package sim

// Engine-work accounting: a process-wide counter of core cycles the
// engine actually executed, maintained at window granularity so the hot
// loop stays untouched. Wall-clock measures how long a sweep took;
// cyclesSimulated measures how much simulation it really paid for —
// cache hits add nothing, checkpoint forks add only their tail, and
// adaptively pruned candidates add only their short horizons, which is
// what makes the adaptive search's savings visible (`sweep -search
// adaptive`, BenchmarkAdaptiveVsExhaustive).

import (
	"sync/atomic"

	"ebm/internal/obs"
)

var (
	cyclesSimulated atomic.Uint64
	workCounter     atomic.Pointer[obs.Counter] // mirrors into a registry once InstrumentWork runs
)

// CyclesSimulated returns the process-lifetime count of core cycles the
// engine has executed (restored checkpoint prefixes excluded: a forked
// run counts only the cycles it simulates itself).
func CyclesSimulated() uint64 { return cyclesSimulated.Load() }

// InstrumentWork registers the ebm_cycles_simulated counter on reg and
// mirrors all engine work into it, seeded with the work already done.
// Exposed on `sweep -listen` so a scrape shows work, not just progress.
func InstrumentWork(reg *obs.Registry) *obs.Counter {
	c := reg.Counter("ebm_cycles_simulated",
		"core cycles actually executed by the engine (cache hits and restored checkpoint prefixes excluded)")
	c.Set(cyclesSimulated.Load())
	workCounter.Store(c)
	return c
}

// addWork credits n executed cycles; called at window boundaries and at
// run exit, never inside the cycle loop.
func addWork(n uint64) {
	if n == 0 {
		return
	}
	cyclesSimulated.Add(n)
	workCounter.Load().Add(n)
}
