package sim

import (
	"context"

	"ebm/internal/spec"
)

// FromSpec materializes a declarative run description into engine
// options, building the TLP manager through the scheme registry. The
// returned Options carry no observers or hooks — attach them afterwards
// for traced (uncacheable) runs.
func FromSpec(rs spec.RunSpec) (Options, error) {
	m, err := rs.Manager()
	if err != nil {
		return Options{}, err
	}
	return Options{
		Config:             rs.Config,
		Apps:               rs.Apps,
		CoresPerApp:        rs.CoresPerApp,
		Manager:            m,
		TotalCycles:        rs.TotalCycles,
		WarmupCycles:       rs.WarmupCycles,
		WindowCycles:       rs.WindowCycles,
		DesignatedSampling: rs.DesignatedSampling,
		DecisionDelay:      rs.DecisionDelay,
		VictimTags:         rs.VictimTags,
		L2WayPartition:     rs.L2WayPartition,
	}, nil
}

// Execute runs a declarative run description to completion: the
// replayable execution path behind simcache.RunCached. Cancellation is
// cooperative (checked at sampling-window boundaries); a cancelled run
// returns a zero Result with ctx.Err(), never a partial one, so the
// caching layers can never persist an interrupted measurement.
func Execute(ctx context.Context, rs spec.RunSpec) (Result, error) {
	o, err := FromSpec(rs)
	if err != nil {
		return Result{}, err
	}
	s, err := New(o)
	if err != nil {
		return Result{}, err
	}
	res, err := s.RunContext(ctx)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}
