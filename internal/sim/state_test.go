package sim_test

import (
	"reflect"
	"strings"
	"testing"

	"ebm/internal/config"
	pbscore "ebm/internal/core"
	"ebm/internal/metrics"
	"ebm/internal/obs"
	"ebm/internal/sim"
	"ebm/internal/tlp"
	"ebm/internal/workload"
)

// TestGoldenSnapshotRestore extends the golden bit-identity suite to the
// checkpoint path: for every golden configuration and a set of prefix
// lengths k (window-aligned, unaligned, before and at the warmup
// boundary), run(k); Snapshot; Restore into a fresh machine; run(N-k)
// must reproduce the uninterrupted run's Result exactly — every float bit
// included, via DeepEqual.
func TestGoldenSnapshotRestore(t *testing.T) {
	// Prefix lengths must exceed the warmup (Options validation rejects a
	// run that ends before measurement starts); pre-warmup fork points are
	// covered by TestSnapshotEveryWindowFidelity, whose first boundary
	// lands before its warmup cycle.
	prefixes := map[string][]uint64{
		// N=60000, warmup 10000, window 2500.
		"pbs-ws/BLK_TRD": {12_345, 30_000, 57_500},
		// N=40000, warmup 5000, window 5000 (default).
		"maxtlp/BFS_FFT": {7_500, 20_000, 23_456},
	}
	for _, g := range goldenRuns {
		g := g
		t.Run(g.label, func(t *testing.T) {
			s, err := sim.New(g.opts())
			if err != nil {
				t.Fatal(err)
			}
			golden := s.Run()
			for _, k := range prefixes[g.label] {
				short := g.opts()
				total := short.TotalCycles
				short.TotalCycles = k
				ps, err := sim.New(short)
				if err != nil {
					t.Fatal(err)
				}
				ps.Run()
				data, err := ps.SnapshotBytes()
				if err != nil {
					t.Fatalf("k=%d: snapshot: %v", k, err)
				}
				fs, err := sim.New(g.opts())
				if err != nil {
					t.Fatal(err)
				}
				if err := fs.RestoreBytes(data); err != nil {
					t.Fatalf("k=%d: restore: %v", k, err)
				}
				if got := fs.Cycle(); got != k {
					t.Fatalf("k=%d: restored simulator at cycle %d", k, got)
				}
				forked := fs.Run()
				if !reflect.DeepEqual(forked, golden) {
					t.Errorf("k=%d of %d: forked run diverged from golden:\nforked: %+v\ngolden: %+v",
						k, total, forked, golden)
				}
			}
		})
	}
}

// fidelityOpts is a mixed two-app run on a reduced machine, sized so the
// every-boundary property test stays fast while still exercising the PBS
// search state machine, kernel phase rotation, and the warmup boundary at
// a non-window-aligned cycle.
func fidelityOpts() sim.Options {
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.NumMemPartitions = 2
	wl := workload.MustMake("BLK", "TRD")
	return sim.Options{
		Config:             cfg,
		Apps:               wl.Apps,
		Manager:            pbscore.NewPBS(metrics.ObjWS),
		TotalCycles:        20_000,
		WarmupCycles:       3_000,
		WindowCycles:       2_000,
		DesignatedSampling: true,
	}
}

// filterHistLines drops the histogram families from a registry text dump.
// Histograms accumulate one observation per executed window, and a forked
// run only executes the tail windows, so they are the one metric class
// that legitimately differs; every Set-based gauge and counter must match
// bit-for-bit.
func filterHistLines(text string) string {
	var keep []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "ebm_window_app_eb") ||
			strings.Contains(line, "ebm_dram_window_read_latency") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestSnapshotEveryWindowFidelity is the property-style tentpole test:
// snapshot at EVERY window boundary of a mixed two-app run and restore
// each snapshot into a fresh simulator; every fork must finish with a
// bit-identical Result, identical non-histogram metrics, and a journal
// exactly equal to the golden journal's post-fork tail. Run twice: with
// observers attached and without.
func TestSnapshotEveryWindowFidelity(t *testing.T) {
	type ckpt struct {
		window  uint64
		data    []byte
		journal int // golden journal length at the fork point
	}

	for _, observed := range []bool{false, true} {
		name := "bare"
		if observed {
			name = "observed"
		}
		t.Run(name, func(t *testing.T) {
			var reg *obs.Registry
			var journal *obs.Journal
			opts := fidelityOpts()
			if observed {
				reg = obs.NewRegistry()
				journal = obs.NewJournal()
				opts.Obs = &obs.Observer{Metrics: reg, Journal: journal}
			}
			var ckpts []ckpt
			opts.CkptSink = func(window uint64, s *sim.Simulator) error {
				data, err := s.SnapshotBytes()
				if err != nil {
					return err
				}
				jlen := 0
				if journal != nil {
					jlen = journal.Len()
				}
				ckpts = append(ckpts, ckpt{window: window, data: data, journal: jlen})
				return nil
			}
			s, err := sim.New(opts)
			if err != nil {
				t.Fatal(err)
			}
			golden := s.Run()

			// The sink and observers must not perturb the engine.
			plain, err := sim.New(fidelityOpts())
			if err != nil {
				t.Fatal(err)
			}
			if r := plain.Run(); !reflect.DeepEqual(r, golden) {
				t.Fatalf("checkpoint sink perturbed the run:\nwith:    %+v\nwithout: %+v", r, golden)
			}

			wantWindows := fidelityOpts().TotalCycles / fidelityOpts().WindowCycles
			if uint64(len(ckpts)) != wantWindows {
				t.Fatalf("captured %d checkpoints, want one per window (%d)", len(ckpts), wantWindows)
			}
			var goldenMetrics string
			var goldenEvents []obs.Event
			if observed {
				var sb strings.Builder
				if err := reg.WriteText(&sb); err != nil {
					t.Fatal(err)
				}
				goldenMetrics = filterHistLines(sb.String())
				goldenEvents = journal.Events()
			}

			for _, c := range ckpts {
				fopts := fidelityOpts()
				var freg *obs.Registry
				var fjournal *obs.Journal
				if observed {
					freg = obs.NewRegistry()
					fjournal = obs.NewJournal()
					fopts.Obs = &obs.Observer{Metrics: freg, Journal: fjournal}
				}
				fs, err := sim.New(fopts)
				if err != nil {
					t.Fatal(err)
				}
				if err := fs.RestoreBytes(c.data); err != nil {
					t.Fatalf("window %d: restore: %v", c.window, err)
				}
				forked := fs.Run()
				if !reflect.DeepEqual(forked, golden) {
					t.Errorf("window %d: forked Result diverged:\nforked: %+v\ngolden: %+v", c.window, forked, golden)
				}
				if !observed || c.window == wantWindows {
					// The run-end checkpoint forks into a zero-cycle run:
					// nothing executes, so no metrics or journal events are
					// published — only the Result contract applies there.
					continue
				}
				var sb strings.Builder
				if err := freg.WriteText(&sb); err != nil {
					t.Fatal(err)
				}
				if got := filterHistLines(sb.String()); got != goldenMetrics {
					t.Errorf("window %d: forked metrics diverged from golden", c.window)
				}
				tail := goldenEvents[c.journal:]
				got := fjournal.Events()
				if len(got) != len(tail) || (len(tail) > 0 && !reflect.DeepEqual(got, tail)) {
					t.Errorf("window %d: journal tail diverged: forked %d events, golden tail %d events",
						c.window, len(got), len(tail))
				}
			}
		})
	}
}

// TestSnapshotUnsupportedManager pins the degradation contract: a manager
// without checkpoint support yields a Snapshot error (callers fall back
// to cold execution), never a partial snapshot.
func TestSnapshotUnsupportedManager(t *testing.T) {
	opts := fidelityOpts()
	opts.Manager = noStateManager{}
	opts.TotalCycles = 4_000
	opts.WarmupCycles = 1_000
	s, err := sim.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if _, err := s.SnapshotBytes(); err == nil {
		t.Fatal("snapshot of a non-Stater manager succeeded")
	}
}

// noStateManager is a Manager that deliberately lacks Stater.
type noStateManager struct{}

func (noStateManager) Name() string                     { return "nostate" }
func (noStateManager) Initial(numApps int) tlp.Decision { return tlp.NewDecision(numApps, 8) }
func (noStateManager) OnSample(s tlp.Sample) tlp.Decision {
	return tlp.NewDecision(len(s.Apps), 8)
}
