// Package sim assembles the full machine — cores, interconnect, memory
// partitions — and runs the multi-application cycle loop, including the
// paper's MAFIA-style execution model: each application owns an exclusive,
// equal share of the cores while the L2 and DRAM are shared; a sampling
// window periodically gathers per-application telemetry (L1/L2 miss rates,
// attained bandwidth, effective bandwidth) and feeds the active TLP
// management policy, whose decisions are applied through the warp-limiting
// scheduler after a modeled communication delay.
package sim

import (
	"context"
	"fmt"

	"ebm/internal/config"
	"ebm/internal/dram"
	"ebm/internal/faultinject"
	"ebm/internal/gpu"
	"ebm/internal/icnt"
	"ebm/internal/kernel"
	"ebm/internal/mem"
	"ebm/internal/obs"
	"ebm/internal/resilience"
	"ebm/internal/spec"
	"ebm/internal/tlp"
)

// Options configures one simulation run.
type Options struct {
	Config config.GPU

	// Apps are the co-scheduled applications (1..N).
	Apps []kernel.Params

	// CoresPerApp optionally assigns an explicit number of cores to each
	// app (must sum to Config.NumCores). Nil means an equal split.
	CoresPerApp []int

	// Manager is the TLP policy. Nil runs ++maxTLP.
	Manager tlp.Manager

	// TotalCycles and WarmupCycles delimit the run; metrics are measured
	// over [WarmupCycles, TotalCycles).
	TotalCycles  uint64
	WarmupCycles uint64

	// WindowCycles is the sampling-window length in core cycles
	// (default 5000).
	WindowCycles uint64

	// DesignatedSampling mimics the paper's low-overhead hardware: the
	// manager sees the L1 miss rate of one designated core per app and
	// the L2/bandwidth telemetry of one designated partition, instead of
	// machine-wide aggregates. Final Result metrics always aggregate.
	DesignatedSampling bool

	// DecisionDelay is the core-cycle lag between a manager decision and
	// its application at the warp schedulers (counter relay latency,
	// Fig. 8). Default 32.
	DecisionDelay uint64

	// L2WayPartition optionally restricts each app to a subset of L2 ways
	// (sensitivity study X3). Indexed [app][way].
	L2WayPartition [][]bool

	// VictimTags, when positive, enables an n-entry victim tag array on
	// every L1 (the lost-locality detector consumed by the CCWS
	// baseline's VTARate telemetry).
	VictimTags int

	// OnWindow, when non-nil, observes every sampling window after the
	// manager has seen it (tracing, Fig. 11). The Sample's Apps slice is
	// reused between windows to keep the cycle path allocation-free: copy
	// it if the hook retains telemetry beyond the call (the managers and
	// the trace recorder copy scalar fields, so they are unaffected).
	OnWindow func(tlp.Sample)

	// Obs attaches the observability subsystem (internal/obs): the metric
	// registry is refreshed and the journal appended to at window and
	// decision granularity only. Nil (or an observer with no sinks) keeps
	// the cycle loop on a single pointer-nil branch per boundary event, so
	// disabled runs stay allocation-free and bit-identical to the golden
	// baselines.
	Obs *obs.Observer

	// Hooks is the fault-injection seam (chaos tests, ebsim -chaos):
	// WindowBoundary is called once per sampling window, never per cycle.
	// Nil (production) costs one pointer-nil branch per window. Hooks are
	// not part of a run's cache identity; hooked runs must stay uncached.
	Hooks faultinject.Hooks

	// Watchdog, when non-nil, receives a progress pulse at every sampling
	// window boundary; pair it with Watchdog.Guard so a run whose cycle
	// counter stops advancing is cancelled after the no-progress deadline.
	Watchdog *resilience.Watchdog

	// CkptSink, when non-nil, is called at the end of every sampling
	// window's boundary bookkeeping with the count of windows completed so
	// far; Snapshot/SnapshotBytes called from inside the sink capture the
	// state a fork must resume from (the first cycle of the next window).
	// A sink error permanently disables further sink calls for this run —
	// checkpointing degrades, the simulation itself is never affected.
	CkptSink func(window uint64, s *Simulator) error
}

// DefaultWindowCycles is the sampling-window length applied when
// Options.WindowCycles is zero. Exported so checkpoint planners can
// compute window boundaries for specs that leave the field defaulted.
const DefaultWindowCycles = 5_000

func (o *Options) fillDefaults() error {
	if len(o.Apps) == 0 {
		return fmt.Errorf("sim: no applications")
	}
	if o.TotalCycles == 0 {
		o.TotalCycles = 120_000
	}
	if o.WindowCycles == 0 {
		o.WindowCycles = DefaultWindowCycles
	}
	if o.WarmupCycles >= o.TotalCycles {
		return fmt.Errorf("sim: warmup %d >= total %d", o.WarmupCycles, o.TotalCycles)
	}
	if o.DecisionDelay == 0 {
		o.DecisionDelay = 32
	}
	if o.Manager == nil {
		o.Manager = spec.MustManager(spec.MaxTLP(), len(o.Apps))
	}
	if err := o.Config.Validate(); err != nil {
		return err
	}
	if o.CoresPerApp == nil {
		if o.Config.NumCores%len(o.Apps) != 0 {
			return fmt.Errorf("sim: %d cores not divisible among %d apps",
				o.Config.NumCores, len(o.Apps))
		}
		per := o.Config.NumCores / len(o.Apps)
		o.CoresPerApp = make([]int, len(o.Apps))
		for i := range o.CoresPerApp {
			o.CoresPerApp[i] = per
		}
	}
	sum := 0
	for _, n := range o.CoresPerApp {
		if n <= 0 {
			return fmt.Errorf("sim: app with %d cores", n)
		}
		sum += n
	}
	if sum != o.Config.NumCores {
		return fmt.Errorf("sim: core assignment %v does not sum to %d",
			o.CoresPerApp, o.Config.NumCores)
	}
	for _, p := range o.Apps {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// AppResult is one application's measured behaviour over the measurement
// region of a run.
type AppResult struct {
	Name  string
	Insts uint64
	IPC   float64

	L1MR float64
	L2MR float64
	CMR  float64
	BW   float64 // fraction of peak DRAM bandwidth
	EB   float64

	RowHitRate   float64
	AvgLatency   float64 // mean DRAM read latency in memory cycles
	MemStallFrac float64
	IssueUtil    float64

	AvgTLP   float64
	FinalTLP int
	Kernels  uint64 // kernel launches completed during measurement
}

// Result is the outcome of one run.
type Result struct {
	Cycles  uint64 // measured core cycles
	TotalBW float64
	Apps    []AppResult
	Windows uint64
}

// IPCs returns the per-app IPC vector in a fresh slice. Hot reporting
// loops (grid evaluation) should use IPCsInto with a reused buffer.
func (r Result) IPCs() []float64 { return r.IPCsInto(nil) }

// IPCsInto appends the per-app IPC vector to dst (pass dst[:0] to reuse a
// buffer) and returns the extended slice.
func (r Result) IPCsInto(dst []float64) []float64 {
	for _, a := range r.Apps {
		dst = append(dst, a.IPC)
	}
	return dst
}

// EBs returns the per-app effective bandwidth vector in a fresh slice.
// Hot reporting loops should use EBsInto with a reused buffer.
func (r Result) EBs() []float64 { return r.EBsInto(nil) }

// EBsInto appends the per-app effective bandwidth vector to dst (pass
// dst[:0] to reuse a buffer) and returns the extended slice.
func (r Result) EBsInto(dst []float64) []float64 {
	for _, a := range r.Apps {
		dst = append(dst, a.EB)
	}
	return dst
}

type appSnapshot struct {
	insts            uint64
	l1Acc, l1Miss    uint64
	l2Acc, l2Miss    uint64
	bwBytes          uint64
	rowHits, rowMiss uint64
	latSum, reads    uint64
	idle, memStall   uint64
	issued           uint64
	cycles           uint64
	memCycles        uint64
	tlpWeighted      float64
	kernels          uint64
}

// Simulator holds the assembled machine.
type Simulator struct {
	opts Options
	cfg  *config.GPU

	cores      []*gpu.Core
	appCores   [][]int                // core ids per app
	appStreams [][]*kernel.WarpStream // all warp streams per app
	phaseSets  [][]*kernel.Params     // phase rotation per app (base first)
	phaseIdx   []int
	partitions []*dram.Partition
	toMem      *icnt.Network
	toCore     *icnt.Network

	coreInjectFree []uint64
	partRespFree   []uint64

	// pool recycles mem.Request objects machine-wide; one pool per
	// simulator, touched only by the (single-goroutine) cycle loop.
	pool *mem.Pool

	// Idle fast-forward state: a quiescent core (no issuable warp, no
	// scheduled wake-up) is not ticked; the cycles it would have spent
	// idling are credited in bulk when an external event (fill delivery,
	// TLP decision, window boundary, snapshot) next touches it.
	coreQuiet    []bool
	quietFrom    []uint64 // first skipped cycle
	quietMemWait []bool   // ActiveMemWait sampled at quiescence entry

	cycle    uint64
	memCycle uint64
	memAcc   float64

	// Window progress lives on the simulator (not as Run locals) so a
	// restored run resumes mid-schedule: windows counts completed sampling
	// windows, nextWindow is the cycle the next boundary fires at.
	windows    uint64
	nextWindow uint64

	// ckptDead latches a CkptSink failure; atBoundary is true only while
	// the sink runs, marking that a snapshot must resume at cycle+1 (the
	// boundary's bookkeeping for cycle has already run).
	ckptDead   bool
	atBoundary bool

	curDecision  tlp.Decision
	pendDecision *tlp.Decision
	pendAt       uint64

	// pendSwap is a manager queued by SwapManager; the engine installs it
	// at the next sampling window boundary (the only point a policy
	// change is well-defined: decisions are per-window).
	pendSwap tlp.Manager

	instAtLaunch []uint64 // per app, inst count at last kernel launch
	kernels      []uint64

	tlpAccum     []float64 // per app, cumulative TLP-cycles
	lastTLPFlush uint64

	warm  []appSnapshot // snapshot at warmup
	accum []appSnapshot // end-of-run snapshot buffer, reused

	sampleApps []tlp.AppSample // per-window telemetry buffer, reused

	// obsw is non-nil only when Options.Obs carries a live sink; every
	// observability hook in Run branches on it.
	obsw *simObs
}

// New builds a simulator; Options are validated and defaulted.
func New(opts Options) (*Simulator, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	cfg := opts.Config
	s := &Simulator{
		opts:           opts,
		cfg:            &cfg,
		coreInjectFree: make([]uint64, cfg.NumCores),
		partRespFree:   make([]uint64, cfg.NumMemPartitions),
		pool:           mem.NewPool(),
		coreQuiet:      make([]bool, cfg.NumCores),
		quietFrom:      make([]uint64, cfg.NumCores),
		quietMemWait:   make([]bool, cfg.NumCores),
		instAtLaunch:   make([]uint64, len(opts.Apps)),
		kernels:        make([]uint64, len(opts.Apps)),
		tlpAccum:       make([]float64, len(opts.Apps)),
	}
	s.nextWindow = opts.WindowCycles

	numApps := len(opts.Apps)
	s.appCores = make([][]int, numApps)
	s.appStreams = make([][]*kernel.WarpStream, numApps)
	s.phaseSets = make([][]*kernel.Params, numApps)
	s.phaseIdx = make([]int, numApps)
	coreID := 0
	for app, n := range opts.CoresPerApp {
		base := &s.opts.Apps[app]
		s.phaseSets[app] = append(s.phaseSets[app], base)
		for i := range base.Phases {
			s.phaseSets[app] = append(s.phaseSets[app], &base.Phases[i])
		}
		for k := 0; k < n; k++ {
			streams := make([]*kernel.WarpStream, cfg.MaxWarpsPerCore)
			for w := range streams {
				globalWarp := (coreID-firstCore(opts.CoresPerApp, app))*cfg.MaxWarpsPerCore + w
				streams[w] = kernel.NewWarpStream(base, app, globalWarp, cfg.L1.LineBytes)
			}
			s.appStreams[app] = append(s.appStreams[app], streams...)
			c := gpu.NewCore(coreID, app, &cfg, streams, numApps)
			c.SetPool(s.pool)
			if opts.VictimTags > 0 {
				c.L1.EnableVictimTags(opts.VictimTags)
			}
			s.cores = append(s.cores, c)
			s.appCores[app] = append(s.appCores[app], coreID)
			coreID++
		}
	}

	s.partitions = make([]*dram.Partition, cfg.NumMemPartitions)
	for i := range s.partitions {
		s.partitions[i] = dram.NewPartition(i, &cfg, numApps)
		s.partitions[i].SetPool(s.pool)
		if opts.L2WayPartition != nil {
			for app, mask := range opts.L2WayPartition {
				if mask == nil {
					continue
				}
				if err := s.partitions[i].L2.SetWayPartition(app, mask); err != nil {
					return nil, err
				}
			}
		}
	}

	s.toMem = icnt.New(cfg.NumMemPartitions, cfg.IcntLatency, cfg.IcntFlitSize, cfg.L1.LineBytes)
	s.toCore = icnt.New(cfg.NumCores, cfg.IcntLatency, cfg.IcntFlitSize, cfg.L1.LineBytes)

	s.curDecision = opts.Manager.Initial(numApps)
	if len(s.curDecision.TLP) != numApps {
		// A wrong-shaped initial decision used to be silently padded by
		// the static manager; it is now a construction error everywhere.
		return nil, fmt.Errorf("sim: manager %q initial decision has %d TLP values for %d applications",
			opts.Manager.Name(), len(s.curDecision.TLP), numApps)
	}
	s.applyDecision(s.curDecision)
	if opts.Obs != nil {
		s.obsw = newSimObs(s, opts.Obs)
	}
	return s, nil
}

func firstCore(coresPerApp []int, app int) int {
	sum := 0
	for i := 0; i < app; i++ {
		sum += coresPerApp[i]
	}
	return sum
}

// flushTLPAccum accrues TLP-cycles for every app up to the current cycle.
func (s *Simulator) flushTLPAccum() {
	if s.cycle <= s.lastTLPFlush {
		return
	}
	span := float64(s.cycle - s.lastTLPFlush)
	for app := range s.appCores {
		s.tlpAccum[app] += span * float64(s.CurrentTLP(app))
	}
	s.lastTLPFlush = s.cycle
}

// wakeQuiet ends core ci's fast-forward span: the cycles [quietFrom, upTo)
// it would have spent idling are credited to its counters, and the core
// resumes normal per-cycle ticking.
func (s *Simulator) wakeQuiet(ci int, upTo uint64) {
	if !s.coreQuiet[ci] {
		return
	}
	if upTo > s.quietFrom[ci] {
		s.cores[ci].CreditIdle(upTo-s.quietFrom[ci], s.quietMemWait[ci])
	}
	s.coreQuiet[ci] = false
}

// creditQuiet settles core ci's fast-forward counters up to (excluding)
// upTo without waking it, so window and snapshot reads see exact values
// while the core stays skipped.
func (s *Simulator) creditQuiet(ci int, upTo uint64) {
	if !s.coreQuiet[ci] || upTo <= s.quietFrom[ci] {
		return
	}
	s.cores[ci].CreditIdle(upTo-s.quietFrom[ci], s.quietMemWait[ci])
	s.quietFrom[ci] = upTo
}

func (s *Simulator) applyDecision(d tlp.Decision) {
	// A TLP or bypass change can make a ready-but-inactive warp issuable,
	// ending quiescence; settle and wake every fast-forwarded core first.
	for ci := range s.cores {
		s.wakeQuiet(ci, s.cycle)
	}
	s.flushTLPAccum()
	for app, cores := range s.appCores {
		for _, ci := range cores {
			if app < len(d.TLP) {
				s.cores[ci].SetTLP(config.ClampToLevel(d.TLP[app]))
			}
			if d.BypassL1 != nil && app < len(d.BypassL1) {
				s.cores[ci].SetBypassL1(d.BypassL1[app])
			}
		}
	}
	s.curDecision = d
}

// networkCap bounds the per-destination request backlog so saturated
// partitions back-pressure through to the cores.
const networkCap = 64

// Run executes the configured number of cycles and returns the measured
// result.
func (s *Simulator) Run() Result {
	res, _ := s.RunContext(context.Background())
	return res
}

// RunContext is Run with cooperative cancellation: the context is
// checked once per sampling window (never per cycle, keeping the hot
// loop allocation-free — context.Background costs a single nil-channel
// test), so a cancelled run returns within one window of the cancel with
// the partial result measured so far and ctx.Err(). Cancellation before
// the warmup boundary yields a zero Result (there is no measurement
// region yet). A nil ctx means context.Background().
func (s *Simulator) RunContext(ctx context.Context) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	done := ctx.Done() // nil for Background: the check below compiles away
	// Work accounting starts at the current cycle, so a Restore()d run
	// credits only the tail it simulates itself, never the restored
	// prefix.
	counted := s.cycle
	// No initialization of cycle/windows/nextWindow: a fresh simulator
	// starts at zero and a Restore()d one resumes where the snapshot left
	// off, so the same loop serves cold runs and checkpoint forks.
	for ; s.cycle < s.opts.TotalCycles; s.cycle++ {
		now := s.cycle

		if s.pendDecision != nil && now >= s.pendAt {
			s.applyDecision(*s.pendDecision)
			s.pendDecision = nil
			if s.obsw != nil {
				s.obsw.decision(s.curDecision, now)
			}
		}
		if now == s.opts.WarmupCycles {
			s.warm = s.snapshot()
			if s.obsw != nil {
				s.obsw.warmup(now)
			}
		}

		// Cores execute. A core that reaches quiescence (no issuable warp,
		// no scheduled wake-up) is fast-forwarded: its Tick is skipped
		// until a fill or decision arrives, and the skipped idle cycles
		// are credited in bulk at the next event or window boundary.
		for ci, c := range s.cores {
			if s.coreQuiet[ci] {
				continue
			}
			c.Tick(now)
			if c.Quiescent() {
				s.coreQuiet[ci] = true
				s.quietFrom[ci] = now + 1
				s.quietMemWait[ci] = c.ActiveMemWait()
			}
		}

		// Core -> memory injection (one message at a time per core, with
		// flit serialization at the source port).
		for ci, c := range s.cores {
			if now < s.coreInjectFree[ci] || c.PendingRequests() == 0 {
				continue
			}
			// Peek destination via the queued head by popping only when
			// the network has room.
			req := c.PopRequest()
			dst := s.cfg.PartitionOf(req.LineAddr)
			if s.toMem.Pending(dst) >= networkCap {
				// Put it back by re-queueing at the front is not possible;
				// instead stall the whole port this cycle. To keep FIFO
				// semantics we re-inject through a one-slot skid buffer.
				s.pushBack(c, req)
				continue
			}
			s.toMem.Push(dst, req, now)
			s.coreInjectFree[ci] = now + uint64(req.Flits(s.cfg.IcntFlitSize, s.cfg.L1.LineBytes))
		}

		// Memory clock domain.
		s.memAcc += s.cfg.MemCyclesPerCoreCycle()
		for s.memAcc >= 1 {
			s.memAcc--
			for _, p := range s.partitions {
				if p.CanAccept() {
					if req := s.toMem.Pop(p.ID, now); req != nil {
						p.Enqueue(req, s.memCycle)
					}
				}
				// A partition with nothing queued, no in-flight DRAM
				// events and no refresh clock is a provable no-op; skip
				// the Tick entirely.
				if !p.Quiescent() {
					p.Tick(s.memCycle)
				}
			}
			s.memCycle++
		}

		// Partition -> core responses (flit-serialized at the source).
		for pi, p := range s.partitions {
			if now < s.partRespFree[pi] {
				continue
			}
			if resp := p.PopResponse(); resp != nil {
				s.toCore.Push(resp.Core, resp, now)
				s.partRespFree[pi] = now + uint64(resp.Flits(s.cfg.IcntFlitSize, s.cfg.L1.LineBytes))
			}
		}

		// Deliver responses. A fill ends the destination core's quiescence
		// (the woken warp may issue next cycle); the reply object itself is
		// consumed here and recycled to the pool.
		for ci, c := range s.cores {
			if resp := s.toCore.Pop(ci, now); resp != nil {
				s.wakeQuiet(ci, now+1)
				c.HandleFill(resp.LineAddr)
				s.pool.Put(resp)
			}
		}

		// Sampling window boundary.
		if now+1 == s.nextWindow {
			s.windows++
			addWork(now + 1 - counted)
			counted = now + 1
			// Settle fast-forwarded counters so the window telemetry is
			// exact; quiescent cores stay skipped.
			for ci := range s.cores {
				s.creditQuiet(ci, now+1)
			}
			sample := s.buildSample(now + 1)
			var d tlp.Decision
			swapped := false
			if next := s.pendSwap; next != nil {
				s.pendSwap = nil
				nd := next.Initial(len(s.appCores))
				if len(nd.TLP) == len(s.appCores) {
					s.opts.Manager = next
					d = nd
					swapped = true
					if s.obsw != nil {
						s.obsw.policySwap(next.Name(), now+1)
					}
				} else if s.obsw != nil {
					s.obsw.policyFault(fmt.Sprintf(
						"swap rejected: manager %q initial decision has %d TLP values for %d applications",
						next.Name(), len(nd.TLP), len(s.appCores)), now+1)
				}
			}
			if !swapped {
				d = s.opts.Manager.OnSample(sample)
				if len(d.TLP) != len(s.appCores) {
					// A malformed decision never reaches the schedulers: keep
					// the current combination and journal the fault.
					if s.obsw != nil {
						s.obsw.policyFault(fmt.Sprintf(
							"manager %q decision has %d TLP values for %d applications",
							s.opts.Manager.Name(), len(d.TLP), len(s.appCores)), now+1)
					}
					d = s.curDecision
				}
			}
			if !d.Equal(s.curDecision) {
				dc := d.Clone()
				s.pendDecision = &dc
				s.pendAt = now + 1 + s.opts.DecisionDelay
			}
			if s.opts.OnWindow != nil {
				s.opts.OnWindow(sample)
			}
			if s.obsw != nil {
				s.obsw.window(s, sample, s.windows)
			}
			s.newWindow()
			s.nextWindow += s.opts.WindowCycles

			// Resilience boundary: the fault seam may stall here (a stuck
			// window), the watchdog heartbeat marks progress, and the
			// cancellation check bounds abort latency to one window.
			if s.opts.Hooks != nil {
				s.opts.Hooks.WindowBoundary(now + 1)
			}
			if s.opts.Watchdog != nil {
				s.opts.Watchdog.Pulse()
			}
			if s.opts.CkptSink != nil && !s.ckptDead {
				s.atBoundary = true
				if err := s.opts.CkptSink(s.windows, s); err != nil {
					s.ckptDead = true
				}
				s.atBoundary = false
			}
			if done != nil {
				select {
				case <-done:
					return s.partial(s.windows), ctx.Err()
				default:
				}
			}
		}
	}
	addWork(s.cycle - counted) // partial final window
	return s.result(s.windows), nil
}

// SwapManager queues a replacement TLP manager; the engine installs it
// at the next sampling window boundary — the only point a policy change
// is well-defined, since decisions are per-window. Call it from the
// simulation goroutine (an OnWindow or Hooks callback). The incoming
// manager's Initial decision becomes that window's decision; an Initial
// with the wrong number of applications rejects the swap, journals a
// policy fault, and leaves the current manager in place.
func (s *Simulator) SwapManager(m tlp.Manager) error {
	if m == nil {
		return fmt.Errorf("sim: SwapManager: nil manager")
	}
	s.pendSwap = m
	return nil
}

// partial assembles the best-effort result of an interrupted run: the
// normal measurement over [warmup, cancel) once the warmup boundary has
// passed, a zero Result (window count only) before it.
func (s *Simulator) partial(windows uint64) Result {
	if s.warm == nil || s.cycle <= s.opts.WarmupCycles {
		return Result{Windows: windows}
	}
	return s.result(windows)
}

func (s *Simulator) pushBack(c *gpu.Core, req *mem.Request) {
	// The core's out-queue is FIFO-popped; restore the head. gpu.Core
	// exposes only Pop, so the simulator keeps the skid entry itself by
	// re-pushing through a tiny helper on the core.
	c.RequeueFront(req)
}

// Cycle returns the current core cycle (testing hook).
func (s *Simulator) Cycle() uint64 { return s.cycle }

// CurrentTLP returns the TLP limit currently applied for app.
func (s *Simulator) CurrentTLP(app int) int {
	return s.cores[s.appCores[app][0]].TLP()
}
