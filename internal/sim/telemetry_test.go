package sim

import (
	"math"
	"strings"
	"testing"

	"ebm/internal/kernel"
	"ebm/internal/obs"
	"ebm/internal/tlp"
)

func TestRateIdleWindowConvention(t *testing.T) {
	if got := rate(0, 0); got != 1 {
		t.Fatalf("rate(0,0) = %v, want 1 (idle window)", got)
	}
	if got := rate(5, 10); got != 0.5 {
		t.Fatalf("rate(5,10) = %v", got)
	}
	if got := rate(0, 10); got != 0 {
		t.Fatalf("rate(0,10) = %v", got)
	}
}

func TestEBAppliesCMRFloor(t *testing.T) {
	if got := eb(0.5, 0.5); got != 1 {
		t.Fatalf("eb(0.5,0.5) = %v", got)
	}
	// Below the floor the caches are modeled as amplifying at most 100x.
	if got, want := eb(0.5, 1e-6), 0.5/cmrFloor; got != want {
		t.Fatalf("eb below floor = %v, want %v", got, want)
	}
	if got, want := eb(0.5, 0), 0.5/cmrFloor; got != want {
		t.Fatalf("eb at zero CMR = %v, want %v", got, want)
	}
	// At exactly the floor no clamping happens.
	if got, want := eb(0.3, cmrFloor), 0.3/cmrFloor; got != want {
		t.Fatalf("eb at floor = %v, want %v", got, want)
	}
}

// pokeTelemetry plants distinct L1/L2 counter values on the designated
// units (core appCores[app][0], partition 0) versus the rest of the
// machine, so designated and aggregate sampling provably disagree.
func pokeTelemetry(s *Simulator) {
	// App 0, designated core: 10 accesses, 5 misses (L1MR 0.5).
	dc := s.cores[s.appCores[0][0]]
	dc.L1.Stats[0].Accesses.Add(10)
	dc.L1.Stats[0].Misses.Add(5)
	// App 0, second core: 10 accesses, 0 misses (aggregate L1MR 0.25).
	oc := s.cores[s.appCores[0][1]]
	oc.L1.Stats[0].Accesses.Add(10)
	// Designated partition 0: L2MR 1.0 for app 0.
	s.partitions[0].L2.Stats[0].Accesses.Add(4)
	s.partitions[0].L2.Stats[0].Misses.Add(4)
	// Partition 1: L2MR 0 traffic only (aggregate L2MR 0.5).
	s.partitions[1].L2.Stats[0].Accesses.Add(4)
	// Bandwidth: only partition 1 moved data, so designated sampling
	// (partition 0 only) sees zero BW while the aggregate does not.
	s.partitions[1].Apps[0].BWBytes.Add(1 << 14)
}

func newTelemetrySim(t *testing.T, designated bool) *Simulator {
	t.Helper()
	s, err := New(Options{
		Config:             smallCfg(),
		Apps:               []kernel.Params{app("BLK"), app("TRD")},
		TotalCycles:        10_000,
		DesignatedSampling: designated,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildSampleDesignatedSampling(t *testing.T) {
	s := newTelemetrySim(t, true)
	pokeTelemetry(s)
	sm := s.buildSample(s.opts.WindowCycles)
	a := sm.Apps[0]
	if a.L1MR != 0.5 {
		t.Fatalf("designated L1MR = %v, want 0.5 (core %d only)", a.L1MR, s.appCores[0][0])
	}
	if a.L2MR != 1.0 {
		t.Fatalf("designated L2MR = %v, want 1.0 (partition 0 only)", a.L2MR)
	}
	if a.BW != 0 {
		t.Fatalf("designated BW = %v, want 0 (traffic was on partition 1)", a.BW)
	}
	// App 1 saw no traffic at all: the idle-window convention pins its
	// miss rates (and therefore CMR) to 1 with zero bandwidth.
	b := sm.Apps[1]
	if b.L1MR != 1 || b.L2MR != 1 || b.CMR != 1 || b.BW != 0 || b.EB != 0 {
		t.Fatalf("idle app sample = %+v, want all-idle convention", b)
	}
}

func TestBuildSampleAggregateSampling(t *testing.T) {
	s := newTelemetrySim(t, false)
	pokeTelemetry(s)
	sm := s.buildSample(s.opts.WindowCycles)
	a := sm.Apps[0]
	if a.L1MR != 0.25 {
		t.Fatalf("aggregate L1MR = %v, want 0.25 (5 misses / 20 accesses)", a.L1MR)
	}
	if a.L2MR != 0.5 {
		t.Fatalf("aggregate L2MR = %v, want 0.5 (4 misses / 8 accesses)", a.L2MR)
	}
	if a.BW <= 0 {
		t.Fatalf("aggregate BW = %v, want > 0 (partition 1 traffic counted)", a.BW)
	}
	if want := a.L1MR * a.L2MR; a.CMR != want {
		t.Fatalf("CMR = %v, want %v", a.CMR, want)
	}
	if want := eb(a.BW, a.CMR); a.EB != want {
		t.Fatalf("EB = %v, want %v", a.EB, want)
	}
}

// TestPartialFinalWindowDropped pins the bugfix contract: when TotalCycles
// is not a multiple of WindowCycles, the trailing partial window is
// consistently dropped everywhere — Result.Windows, the OnWindow hook, and
// the journal's window events all agree.
func TestPartialFinalWindowDropped(t *testing.T) {
	j := obs.NewJournal()
	hookCalls := 0
	s, err := New(Options{
		Config:       smallCfg(),
		Apps:         []kernel.Params{app("BLK"), app("TRD")},
		TotalCycles:  11_000, // 4 full windows of 2500 + 1000 leftover cycles
		WindowCycles: 2_500,
		OnWindow:     func(tlp.Sample) { hookCalls++ },
		Obs:          &obs.Observer{Journal: j},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Windows != 4 {
		t.Fatalf("Result.Windows = %d, want 4", res.Windows)
	}
	if hookCalls != 4 {
		t.Fatalf("OnWindow calls = %d, want 4", hookCalls)
	}
	winEvents := 0
	var lastWinCycle uint64
	for _, e := range j.Events() {
		if e.Kind == obs.EvWindow {
			winEvents++
			lastWinCycle = e.Cycle
		}
	}
	if winEvents != 4 {
		t.Fatalf("journal EvWindow count = %d, want 4", winEvents)
	}
	if lastWinCycle != 10_000 {
		t.Fatalf("last journal window at cycle %d, want 10000 (partial window dropped)", lastWinCycle)
	}
}

// TestObserverIntegration runs the engine with every sink attached and
// checks the registry and journal contents end to end, including a
// mid-run text scrape (what an HTTP client would read).
func TestObserverIntegration(t *testing.T) {
	reg := obs.NewRegistry()
	j := obs.NewJournal()
	var midRun strings.Builder
	s, err := New(Options{
		Config:       smallCfg(),
		Apps:         []kernel.Params{app("BLK"), app("TRD")},
		TotalCycles:  20_000,
		WindowCycles: 2_500,
		// Scrape mid-run exactly as the HTTP handler would, from a window
		// hook (OnWindow fires while the run is still in flight).
		OnWindow: func(tlp.Sample) {
			if midRun.Len() == 0 {
				if err := reg.WriteText(&midRun); err != nil {
					t.Errorf("mid-run scrape: %v", err)
				}
			}
		},
		Obs: &obs.Observer{Metrics: reg, Journal: j},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()

	var final strings.Builder
	if err := reg.WriteText(&final); err != nil {
		t.Fatal(err)
	}
	text := final.String()
	for _, want := range []string{
		`ebm_app_eb{app="0",name="BLK"}`,
		`ebm_app_bw{`,
		`ebm_app_cmr{`,
		`ebm_app_tlp{`,
		"ebm_dram_row_hits_total",
		`ebm_mshr_stall_cycles_total{level="l1"}`,
		`ebm_mshr_stall_cycles_total{level="l2"}`,
		"ebm_request_pool_gets_total",
		"ebm_window_app_eb_bucket",
		"ebm_windows_total 8",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("final scrape missing %q", want)
		}
	}
	if midRun.Len() == 0 {
		t.Error("mid-run scrape produced no text")
	}

	winEvents, appEvents := 0, 0
	for _, e := range j.Events() {
		switch e.Kind {
		case obs.EvWindow:
			winEvents++
		case obs.EvAppWindow:
			appEvents++
		}
	}
	if uint64(winEvents) != res.Windows {
		t.Fatalf("journal EvWindow = %d, Result.Windows = %d", winEvents, res.Windows)
	}
	if appEvents != winEvents*2 {
		t.Fatalf("journal EvAppWindow = %d, want %d (2 apps x %d windows)", appEvents, winEvents*2, winEvents)
	}
}

// TestObserverDoesNotPerturbResults asserts the zero-overhead contract on
// the model side: attaching every sink must not change a single bit of
// the simulation outcome.
func TestObserverDoesNotPerturbResults(t *testing.T) {
	run := func(o *obs.Observer) Result {
		s, err := New(Options{
			Config:       smallCfg(),
			Apps:         []kernel.Params{app("BLK"), app("TRD")},
			TotalCycles:  20_000,
			WindowCycles: 2_500,
			Obs:          o,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	plain := run(nil)
	observed := run(&obs.Observer{Metrics: obs.NewRegistry(), Journal: obs.NewJournal()})
	if len(plain.Apps) != len(observed.Apps) {
		t.Fatal("app count differs")
	}
	for i := range plain.Apps {
		p, o := plain.Apps[i], observed.Apps[i]
		if math.Float64bits(p.IPC) != math.Float64bits(o.IPC) ||
			math.Float64bits(p.EB) != math.Float64bits(o.EB) ||
			p.Insts != o.Insts {
			t.Fatalf("app %d diverged with observer attached: %+v vs %+v", i, p, o)
		}
	}
	if plain.Windows != observed.Windows {
		t.Fatal("window count diverged")
	}
}
