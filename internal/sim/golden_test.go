package sim_test

import (
	"math"
	"reflect"
	"testing"

	"ebm/internal/config"
	pbscore "ebm/internal/core"
	"ebm/internal/metrics"
	"ebm/internal/sim"
	"ebm/internal/workload"
)

// goldenApp holds one application's expected Result fields with every
// float64 stored as its exact IEEE-754 bit pattern (math.Float64bits), so
// the comparison is bit-identical, not epsilon-based.
type goldenApp struct {
	name         string
	insts        uint64
	ipc          uint64
	l1mr         uint64
	l2mr         uint64
	cmr          uint64
	bw           uint64
	eb           uint64
	rowHitRate   uint64
	avgLatency   uint64
	memStallFrac uint64
	issueUtil    uint64
	avgTLP       uint64
	finalTLP     int
	kernels      uint64
}

type goldenRun struct {
	label   string
	opts    func() sim.Options
	cycles  uint64
	windows uint64
	totalBW uint64
	apps    []goldenApp
}

// goldenRuns pins the engine's exact output for two configurations. The bit
// patterns were captured from the pre-optimization (map-MSHR, heap-request,
// always-tick) engine at the seed commit; the pooled/fast-forward engine
// must reproduce them exactly. If an intentional model change shifts these
// values, re-capture them with a small program that prints
// math.Float64bits for every Result field.
var goldenRuns = []goldenRun{
	{
		label: "pbs-ws/BLK_TRD",
		opts: func() sim.Options {
			wl := workload.MustMake("BLK", "TRD")
			return sim.Options{
				Config:             config.Default(),
				Apps:               wl.Apps,
				Manager:            pbscore.NewPBS(metrics.ObjWS),
				TotalCycles:        60_000,
				WarmupCycles:       10_000,
				WindowCycles:       2_500,
				DesignatedSampling: true,
			}
		},
		cycles:  50000,
		windows: 24,
		totalBW: 0x3fe2e9b861ceb950,
		apps: []goldenApp{
			{
				name: "BLK", insts: 25196,
				ipc: 0x3fe0201cd5f99c39, l1mr: 0x3ff0000000000000,
				l2mr: 0x3ff0000000000000, cmr: 0x3ff0000000000000,
				bw: 0x3fd3030a7cfd749d, eb: 0x3fd3030a7cfd749d,
				rowHitRate: 0x3fdaeadf978acc5f, avgLatency: 0x408151ca5327a171,
				memStallFrac: 0x3fee0e757928e0ca, issueUtil: 0x3fa0201cd5f99c39,
				avgTLP: 0x40279210385c67e0, finalTLP: 24,
			},
			{
				name: "TRD", insts: 11663,
				ipc: 0x3fcddb76b3bb83cf, l1mr: 0x3ff0000000000000,
				l2mr: 0x3ff0000000000000, cmr: 0x3ff0000000000000,
				bw: 0x3fd2d066469ffe04, eb: 0x3fd2d066469ffe04,
				rowHitRate: 0x3fdc34e234efb7cd, avgLatency: 0x407ffe14d90a070e,
				memStallFrac: 0x3fef10624dd2f1aa, issueUtil: 0x3f8ddb76b3bb83cf,
				avgTLP: 0x403490917d6b65aa, finalTLP: 1,
			},
		},
	},
	{
		label: "maxtlp/BFS_FFT",
		opts: func() sim.Options {
			wl := workload.MustMake("BFS", "FFT")
			return sim.Options{
				Config:       config.Default(),
				Apps:         wl.Apps,
				TotalCycles:  40_000,
				WarmupCycles: 5_000,
			}
		},
		cycles:  35000,
		windows: 8,
		totalBW: 0x3fdaaa4fe1806bce,
		apps: []goldenApp{
			{
				name: "BFS", insts: 23676,
				ipc: 0x3fe5a5897336f1e6, l1mr: 0x3fe80a63f06a1761,
				l2mr: 0x3fe6e7af49388943, cmr: 0x3fe13533668d25fa,
				bw: 0x3fd631ea19fa0f56, eb: 0x3fe4a319e9661f9e,
				rowHitRate: 0x3fc1df15d374084f, avgLatency: 0x407e9bda899678e2,
				memStallFrac: 0x3fed5575ca0cc191, issueUtil: 0x3fa5a5897336f1e6,
				avgTLP: 0x4038000000000000, finalTLP: 24,
			},
			{
				name: "FFT", insts: 12882,
				ipc: 0x3fd78e3f8be85c38, l1mr: 0x3fe1697d6ccffd58,
				l2mr: 0x3fec7b4644363da3, cmr: 0x3fdefec2ea60927d,
				bw: 0x3fb1e1971e1971e2, eb: 0x3fc275fdfb492473,
				rowHitRate: 0x3fce94fba3064462, avgLatency: 0x4082a43984af2b5b,
				memStallFrac: 0x3feecd2e2af3117f, issueUtil: 0x3f978e3f8be85c38,
				avgTLP: 0x4038000000000000, finalTLP: 24,
			},
		},
	},
}

func checkBits(t *testing.T, label, field string, got float64, want uint64) {
	t.Helper()
	if math.Float64bits(got) != want {
		t.Errorf("%s: %s = %v (%#x), want bits %#x (%v)",
			label, field, got, math.Float64bits(got), want, math.Float64frombits(want))
	}
}

// TestGoldenResults proves the optimized engine is bit-identical to the
// original: pooled requests, fixed-slot MSHRs and idle fast-forward must
// not change a single output bit for a fixed seed and configuration.
func TestGoldenResults(t *testing.T) {
	for _, g := range goldenRuns {
		g := g
		t.Run(g.label, func(t *testing.T) {
			s, err := sim.New(g.opts())
			if err != nil {
				t.Fatal(err)
			}
			r := s.Run()
			if r.Cycles != g.cycles || r.Windows != g.windows {
				t.Errorf("cycles/windows = %d/%d, want %d/%d",
					r.Cycles, r.Windows, g.cycles, g.windows)
			}
			checkBits(t, g.label, "TotalBW", r.TotalBW, g.totalBW)
			if len(r.Apps) != len(g.apps) {
				t.Fatalf("got %d apps, want %d", len(r.Apps), len(g.apps))
			}
			for i, want := range g.apps {
				a := r.Apps[i]
				al := g.label + "/" + want.name
				if a.Name != want.name {
					t.Errorf("%s: name %q", al, a.Name)
				}
				if a.Insts != want.insts {
					t.Errorf("%s: Insts = %d, want %d", al, a.Insts, want.insts)
				}
				checkBits(t, al, "IPC", a.IPC, want.ipc)
				checkBits(t, al, "L1MR", a.L1MR, want.l1mr)
				checkBits(t, al, "L2MR", a.L2MR, want.l2mr)
				checkBits(t, al, "CMR", a.CMR, want.cmr)
				checkBits(t, al, "BW", a.BW, want.bw)
				checkBits(t, al, "EB", a.EB, want.eb)
				checkBits(t, al, "RowHitRate", a.RowHitRate, want.rowHitRate)
				checkBits(t, al, "AvgLatency", a.AvgLatency, want.avgLatency)
				checkBits(t, al, "MemStallFrac", a.MemStallFrac, want.memStallFrac)
				checkBits(t, al, "IssueUtil", a.IssueUtil, want.issueUtil)
				checkBits(t, al, "AvgTLP", a.AvgTLP, want.avgTLP)
				if a.FinalTLP != want.finalTLP {
					t.Errorf("%s: FinalTLP = %d, want %d", al, a.FinalTLP, want.finalTLP)
				}
				if a.Kernels != want.kernels {
					t.Errorf("%s: Kernels = %d, want %d", al, a.Kernels, want.kernels)
				}
			}
		})
	}
}

// TestGoldenDeterminism runs the same workload twice through fresh
// simulators and requires structurally identical Results: no map-iteration
// order, pool state or fast-forward bookkeeping may leak into the output.
func TestGoldenDeterminism(t *testing.T) {
	for _, g := range goldenRuns {
		g := g
		t.Run(g.label, func(t *testing.T) {
			run := func() sim.Result {
				s, err := sim.New(g.opts())
				if err != nil {
					t.Fatal(err)
				}
				return s.Run()
			}
			r1, r2 := run(), run()
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("two identical runs diverged:\nfirst:  %+v\nsecond: %+v", r1, r2)
			}
		})
	}
}
