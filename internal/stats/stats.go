// Package stats provides the small numeric utilities shared across the
// simulator: aggregate means, normalization helpers, windowed counters, and
// a deterministic splittable PRNG used by the synthetic kernels.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Gmean returns the geometric mean of xs. Non-positive entries are an
// error in this codebase (all aggregated metrics are positive), so Gmean
// returns 0 in that case rather than NaN to keep tables readable.
func Gmean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Hmean returns the harmonic mean of xs (0 if any entry is non-positive).
func Hmean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// Min returns the smallest element of xs (+Inf for an empty slice).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs (-Inf for an empty slice).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Ratio returns a/b, or 0 when b is 0, keeping divide-by-zero out of the
// metric plumbing.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Normalize divides every element of xs by base, returning a new slice.
// A zero base yields a slice of zeros.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Percent formats x as a signed percentage improvement over 1.0, e.g.
// 1.13 -> "+13.0%".
func Percent(x float64) string {
	return fmt.Sprintf("%+.1f%%", (x-1)*100)
}

// Counter is a monotonically increasing event counter with a window mark,
// mirroring the paper's per-sampling-window hardware registers: Total is
// the lifetime count, Window the count since the last Reset-of-window.
type Counter struct {
	total uint64
	mark  uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.total += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.total++ }

// Total returns the lifetime count.
func (c *Counter) Total() uint64 { return c.total }

// Window returns the count accumulated since the last NewWindow call.
func (c *Counter) Window() uint64 { return c.total - c.mark }

// NewWindow starts a new sampling window.
func (c *Counter) NewWindow() { c.mark = c.total }

// CounterState is a Counter's serializable snapshot (engine checkpoints).
type CounterState struct {
	Total uint64
	Mark  uint64
}

// State returns the counter's snapshot.
func (c *Counter) State() CounterState { return CounterState{Total: c.total, Mark: c.mark} }

// SetState restores the counter from a snapshot.
func (c *Counter) SetState(st CounterState) { c.total, c.mark = st.Total, st.Mark }

// MissRatio is a hit/miss counter pair exposing windowed miss rates.
type MissRatio struct {
	Accesses Counter
	Misses   Counter
}

// Record registers one access and whether it missed.
func (m *MissRatio) Record(miss bool) {
	m.Accesses.Inc()
	if miss {
		m.Misses.Inc()
	}
}

// WindowRate returns the miss rate over the current window. With no
// accesses in the window it returns 1.0: an idle cache amplifies nothing,
// which matches the paper's convention that CMR=1 means "caches not useful".
func (m *MissRatio) WindowRate() float64 {
	a := m.Accesses.Window()
	if a == 0 {
		return 1
	}
	return float64(m.Misses.Window()) / float64(a)
}

// TotalRate returns the lifetime miss rate (1.0 when never accessed).
func (m *MissRatio) TotalRate() float64 {
	a := m.Accesses.Total()
	if a == 0 {
		return 1
	}
	return float64(m.Misses.Total()) / float64(a)
}

// NewWindow rolls both counters into a new sampling window.
func (m *MissRatio) NewWindow() {
	m.Accesses.NewWindow()
	m.Misses.NewWindow()
}

// MissRatioState is a MissRatio's serializable snapshot.
type MissRatioState struct {
	Accesses CounterState
	Misses   CounterState
}

// State returns the pair's snapshot.
func (m *MissRatio) State() MissRatioState {
	return MissRatioState{Accesses: m.Accesses.State(), Misses: m.Misses.State()}
}

// SetState restores the pair from a snapshot.
func (m *MissRatio) SetState(st MissRatioState) {
	m.Accesses.SetState(st.Accesses)
	m.Misses.SetState(st.Misses)
}
