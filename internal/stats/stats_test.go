package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGmean(t *testing.T) {
	if g := Gmean([]float64{2, 8}); !almost(g, 4) {
		t.Errorf("Gmean(2,8) = %v, want 4", g)
	}
	if g := Gmean(nil); g != 0 {
		t.Errorf("Gmean(nil) = %v, want 0", g)
	}
	if g := Gmean([]float64{1, 0, 2}); g != 0 {
		t.Errorf("Gmean with zero = %v, want 0", g)
	}
	if g := Gmean([]float64{3}); !almost(g, 3) {
		t.Errorf("Gmean single = %v, want 3", g)
	}
}

func TestMeansOrdering(t *testing.T) {
	// HM <= GM <= AM for positive inputs.
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		h, g, m := Hmean(xs), Gmean(xs), Mean(xs)
		return h <= g+1e-9 && g <= m+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHmean(t *testing.T) {
	if h := Hmean([]float64{1, 1}); !almost(h, 1) {
		t.Errorf("Hmean(1,1) = %v", h)
	}
	if h := Hmean([]float64{2, 2, 2}); !almost(h, 2) {
		t.Errorf("Hmean(2,2,2) = %v", h)
	}
	if h := Hmean([]float64{0, 2}); h != 0 {
		t.Errorf("Hmean with zero = %v, want 0", h)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatalf("Min/Max wrong: %v %v", Min(xs), Max(xs))
	}
	if m := Median(xs); !almost(m, 3) {
		t.Fatalf("Median odd = %v", m)
	}
	if m := Median([]float64{1, 2, 3, 4}); !almost(m, 2.5) {
		t.Fatalf("Median even = %v", m)
	}
	// Median must not mutate its input.
	if !sort.Float64sAreSorted([]float64{1, 2, 3}) {
		t.Fatal("sanity")
	}
	orig := []float64{5, 1, 3}
	Median(orig)
	if orig[0] != 5 || orig[1] != 1 {
		t.Fatal("Median mutated its input")
	}
}

func TestRatioAndNormalize(t *testing.T) {
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Fatal("Ratio wrong")
	}
	n := Normalize([]float64{2, 4}, 2)
	if n[0] != 1 || n[1] != 2 {
		t.Fatalf("Normalize = %v", n)
	}
	z := Normalize([]float64{2, 4}, 0)
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("Normalize by zero = %v", z)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(1.13); got != "+13.0%" {
		t.Errorf("Percent(1.13) = %q", got)
	}
	if got := Percent(0.9); got != "-10.0%" {
		t.Errorf("Percent(0.9) = %q", got)
	}
}

func TestCounterWindows(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Inc()
	if c.Total() != 6 || c.Window() != 6 {
		t.Fatalf("total=%d window=%d", c.Total(), c.Window())
	}
	c.NewWindow()
	if c.Window() != 0 || c.Total() != 6 {
		t.Fatalf("after NewWindow: total=%d window=%d", c.Total(), c.Window())
	}
	c.Add(4)
	if c.Window() != 4 || c.Total() != 10 {
		t.Fatalf("second window: total=%d window=%d", c.Total(), c.Window())
	}
}

func TestCounterWindowInvariant(t *testing.T) {
	// Window() never exceeds Total(), regardless of operation order.
	f := func(ops []uint8) bool {
		var c Counter
		for _, op := range ops {
			switch op % 3 {
			case 0:
				c.Inc()
			case 1:
				c.Add(uint64(op))
			case 2:
				c.NewWindow()
			}
			if c.Window() > c.Total() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMissRatio(t *testing.T) {
	var m MissRatio
	if m.WindowRate() != 1 {
		t.Fatalf("idle window rate = %v, want 1 (caches-not-useful convention)", m.WindowRate())
	}
	m.Record(true)
	m.Record(false)
	m.Record(false)
	m.Record(false)
	if r := m.WindowRate(); !almost(r, 0.25) {
		t.Fatalf("window rate = %v, want 0.25", r)
	}
	m.NewWindow()
	if m.WindowRate() != 1 {
		t.Fatalf("fresh window rate = %v, want 1", m.WindowRate())
	}
	m.Record(true)
	if r := m.TotalRate(); !almost(r, 2.0/5.0) {
		t.Fatalf("total rate = %v, want 0.4", r)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a42 := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a42.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/100 times", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams collide %d/100 times", same)
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if p < 0.22 || p > 0.28 {
		t.Fatalf("Bool(0.25) frequency = %v", p)
	}
}

func TestRNGFloat64Uniformity(t *testing.T) {
	r := NewRNG(13)
	var buckets [10]int
	const n = 50000
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, b := range buckets {
		if b < n/10-n/50 || b > n/10+n/50 {
			t.Fatalf("bucket %d heavily skewed: %d of %d", i, b, n)
		}
	}
}
