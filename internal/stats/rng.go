package stats

// RNG is a small, fast, deterministic PRNG (xorshift64*) used by the
// synthetic kernels. Every warp owns its own stream split from the
// application seed so simulations are reproducible regardless of
// scheduling order, and the simulator never touches math/rand global
// state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped to a fixed
// non-zero constant; xorshift has no zero state).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r := &RNG{state: seed}
	// Scramble the seed so nearby seeds do not produce nearby streams.
	for i := 0; i < 4; i++ {
		r.Uint64()
	}
	return r
}

// Split derives an independent child generator; the child stream is
// decorrelated from the parent by mixing in the split index.
func (r *RNG) Split(index uint64) *RNG {
	return NewRNG(r.Uint64() ^ (index+1)*0xBF58476D1CE4E5B9)
}

// State returns the raw generator state (engine checkpoints).
func (r *RNG) State() uint64 { return r.state }

// SetState restores the raw generator state. The zero state is invalid
// for xorshift and can only come from a corrupt snapshot; it is remapped
// the same way NewRNG remaps a zero seed so the stream stays non-degenerate.
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	r.state = s
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}
