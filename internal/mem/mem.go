// Package mem defines the memory request/response messages exchanged
// between the GPU cores, the interconnect, and the memory partitions.
package mem

import "fmt"

// Kind distinguishes the message types carried by the interconnect.
type Kind uint8

const (
	// ReadReq asks a memory partition for one cache line.
	ReadReq Kind = iota
	// WriteReq sends one dirty line to a memory partition (no response).
	WriteReq
	// ReadReply returns a filled line to the requesting core.
	ReadReply
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case ReadReq:
		return "read"
	case WriteReq:
		return "write"
	case ReadReply:
		return "reply"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Request is one line-granular memory transaction. The same struct is used
// on both directions of the interconnect; Kind tells them apart.
type Request struct {
	Kind     Kind
	LineAddr uint64 // byte address of the line, line-aligned
	App      int    // owning application (for per-app accounting)
	Core     int    // issuing core (reply routing)
	Born     uint64 // core cycle the request entered the memory system
	MemBorn  uint64 // memory cycle it entered its partition (set by dram)
}

// Flits returns the interconnect occupancy of the message in flits, given
// the flit and line sizes in bytes: control-only messages take one flit,
// data-bearing messages take one header flit plus the line payload.
func (r *Request) Flits(flitBytes, lineBytes int) int {
	if r.Kind == ReadReq {
		return 1
	}
	return 1 + (lineBytes+flitBytes-1)/flitBytes
}
