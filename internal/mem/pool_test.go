package mem

import "testing"

func TestPoolGetReturnsZeroedRequest(t *testing.T) {
	p := NewPool()
	r := p.Get()
	if *r != (Request{}) {
		t.Fatalf("fresh Get returned %+v, want zero value", *r)
	}
	r.Kind = ReadReply
	r.LineAddr = 0xdeadbeef
	r.App = 3
	r.Core = 7
	r.Born = 42
	r.MemBorn = 99
	p.Put(r)
	got := p.Get()
	if got != r {
		t.Fatal("pool did not recycle the freed request")
	}
	if *got != (Request{}) {
		t.Fatalf("recycled Get returned %+v, want zero value (no field leaks)", *got)
	}
}

func TestPoolPoisonsRecycledRequests(t *testing.T) {
	p := NewPool()
	r := p.Get()
	r.Kind = ReadReq
	r.LineAddr = 128
	p.Put(r)
	// A stale alias into a recycled request must observe poison, not the
	// old (plausible) transaction fields.
	if r.Kind != poisonKind || r.LineAddr != ^uint64(0) {
		t.Fatalf("recycled request holds %+v, want poisoned fields", *r)
	}
}

func TestPoolDoubleRecyclePanics(t *testing.T) {
	p := NewPool()
	r := p.Get()
	p.Put(r)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	p.Put(r)
}

func TestPoolLIFOAndCounters(t *testing.T) {
	p := NewPool()
	a, b := p.Get(), p.Get()
	if p.HeapAllocs() != 2 {
		t.Fatalf("heap allocs = %d, want 2", p.HeapAllocs())
	}
	p.Put(a)
	p.Put(b)
	if p.FreeLen() != 2 || p.Recycles() != 2 {
		t.Fatalf("free=%d recycles=%d, want 2/2", p.FreeLen(), p.Recycles())
	}
	if p.Get() != b || p.Get() != a {
		t.Fatal("pool is not LIFO (recently freed requests are cache-hot)")
	}
	if p.HeapAllocs() != 2 {
		t.Fatalf("recycled Gets hit the heap: allocs = %d", p.HeapAllocs())
	}
}

func TestNilPoolFallsBackToHeap(t *testing.T) {
	var p *Pool
	r := p.Get()
	if r == nil {
		t.Fatal("nil pool Get returned nil")
	}
	p.Put(r) // must not panic
	if p.FreeLen() != 0 || p.HeapAllocs() != 0 || p.Recycles() != 0 {
		t.Fatal("nil pool telemetry not zero")
	}
}

// TestPoolSteadyStateAllocFree is the allocation assertion for the pool:
// once warmed, a Get/Put cycle performs zero heap allocations.
func TestPoolSteadyStateAllocFree(t *testing.T) {
	p := NewPool()
	for i := 0; i < 64; i++ { // warm the free list and its backing array
		p.Put(p.Get())
		// Put poisons; Get un-poisons, so interleave strictly.
	}
	if avg := testing.AllocsPerRun(1000, func() {
		r := p.Get()
		r.Kind = ReadReq
		p.Put(r)
	}); avg != 0 {
		t.Fatalf("steady-state Get/Put allocates %v objects per op, want 0", avg)
	}
}

func BenchmarkRequestPool(b *testing.B) {
	p := NewPool()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := p.Get()
		r.Kind = ReadReq
		r.LineAddr = uint64(i) * 128
		p.Put(r)
	}
}

// BenchmarkRequestHeapAlloc is the baseline the pool is measured against.
func BenchmarkRequestHeapAlloc(b *testing.B) {
	b.ReportAllocs()
	var sink *Request
	for i := 0; i < b.N; i++ {
		sink = &Request{Kind: ReadReq, LineAddr: uint64(i) * 128}
	}
	_ = sink
}
