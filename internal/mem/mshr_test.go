package mem

import (
	"math/rand"
	"testing"
)

func TestMSHRAddLookupRemove(t *testing.T) {
	m := NewMSHRTable[int32](4)
	if m.Len() != 0 || m.Cap() != 4 || m.Full() {
		t.Fatalf("fresh table: len=%d cap=%d full=%v", m.Len(), m.Cap(), m.Full())
	}
	if !m.Add(128, 1) {
		t.Fatal("Add failed on empty table")
	}
	if m.Add(128, 2) {
		t.Fatal("Add succeeded for an already-present line (must use Append)")
	}
	if !m.Append(128, 2) {
		t.Fatal("Append failed for present line")
	}
	if m.Append(256, 9) {
		t.Fatal("Append succeeded for absent line")
	}
	w := m.Waiters(128)
	if len(w) != 2 || w[0] != 1 || w[1] != 2 {
		t.Fatalf("waiters = %v, want [1 2] (merge order preserved)", w)
	}
	if m.Waiters(256) != nil {
		t.Fatal("Waiters for absent line not nil")
	}
	got := m.Remove(128)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Remove returned %v, want [1 2]", got)
	}
	m.Release(got)
	if m.Len() != 0 || m.Contains(128) {
		t.Fatal("entry survived Remove")
	}
	if m.Remove(128) != nil {
		t.Fatal("Remove of absent line not nil")
	}
}

func TestMSHRFillToCapacityAndOverflow(t *testing.T) {
	const capacity = 8
	m := NewMSHRTable[int32](capacity)
	for i := 0; i < capacity; i++ {
		if !m.Add(uint64(i)*128, int32(i)) {
			t.Fatalf("Add %d rejected below capacity", i)
		}
	}
	if !m.Full() || m.Len() != capacity {
		t.Fatalf("len=%d full=%v after filling, want %d/true", m.Len(), m.Full(), capacity)
	}
	if m.Add(uint64(capacity)*128, 99) {
		t.Fatal("Add succeeded past capacity")
	}
	// Merging into existing entries must still work at capacity.
	if !m.Append(0, 77) {
		t.Fatal("Append failed at capacity")
	}
	// Freeing one slot re-admits one line.
	m.Release(m.Remove(3 * 128))
	if m.Full() {
		t.Fatal("still full after Remove")
	}
	if !m.Add(uint64(capacity)*128, 99) {
		t.Fatal("Add failed after freeing a slot")
	}
}

// TestMSHRBackshiftKeepsChainsIntact removes entries from the middle of
// colliding probe chains and checks every surviving line stays findable.
func TestMSHRBackshiftKeepsChainsIntact(t *testing.T) {
	m := NewMSHRTable[int32](16) // 32 slots
	// Lines are 128-aligned; insert many so chains form, then delete in a
	// scattered order.
	lines := make([]uint64, 16)
	for i := range lines {
		lines[i] = uint64(i) * 128 * 7 // strided to mix home slots
		if !m.Add(lines[i], int32(i)) {
			t.Fatalf("Add %d failed", i)
		}
	}
	for _, k := range []int{5, 0, 11, 8, 2, 15} {
		m.Release(m.Remove(lines[k]))
		lines[k] = ^uint64(0)
		for j, l := range lines {
			if l == ^uint64(0) {
				continue
			}
			w := m.Waiters(l)
			if len(w) != 1 || w[0] != int32(j) {
				t.Fatalf("after removals, line %#x lost: waiters=%v", l, w)
			}
		}
	}
}

// TestMSHRMatchesMapModel cross-checks the table against a map reference
// under a randomized workload.
func TestMSHRMatchesMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMSHRTable[int32](32)
	ref := map[uint64][]int32{}
	lineOf := func() uint64 { return uint64(rng.Intn(64)) * 128 }
	for op := 0; op < 20000; op++ {
		line := lineOf()
		switch rng.Intn(3) {
		case 0: // allocate or merge
			if _, ok := ref[line]; ok {
				m.Append(line, int32(op))
				ref[line] = append(ref[line], int32(op))
			} else if len(ref) < 32 {
				if !m.Add(line, int32(op)) {
					t.Fatalf("op %d: Add rejected with %d entries", op, len(ref))
				}
				ref[line] = []int32{int32(op)}
			} else if m.Add(line, int32(op)) {
				t.Fatalf("op %d: Add accepted past capacity", op)
			}
		case 1: // remove
			got := m.Remove(line)
			want := ref[line]
			delete(ref, line)
			if len(got) != len(want) {
				t.Fatalf("op %d: Remove(%#x) = %v, want %v", op, line, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("op %d: Remove(%#x) = %v, want %v", op, line, got, want)
				}
			}
			m.Release(got)
		case 2: // probe
			if m.Contains(line) != (ref[line] != nil) {
				t.Fatalf("op %d: Contains(%#x) mismatch", op, line)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: len %d != ref %d", op, m.Len(), len(ref))
		}
	}
}

// TestMSHRReleaseDropsReferences checks recycled waiter buffers are zeroed:
// a retained alias must not see stale pointers after the entry dies.
func TestMSHRReleaseDropsReferences(t *testing.T) {
	m := NewMSHRTable[*Request](4)
	r := &Request{Kind: ReadReq, LineAddr: 128}
	m.Add(128, r)
	buf := m.Remove(128)
	if len(buf) != 1 || buf[0] != r {
		t.Fatalf("Remove returned %v", buf)
	}
	alias := buf[:1]
	m.Release(buf)
	if alias[0] != nil {
		t.Fatal("Release left a live *Request in the recycled buffer")
	}
}

// TestMSHRSteadyStateAllocFree is the allocation assertion for the table:
// warmed add/append/remove cycles perform zero heap allocations.
func TestMSHRSteadyStateAllocFree(t *testing.T) {
	m := NewMSHRTable[int32](16)
	for i := 0; i < 16; i++ { // warm the waiter buffers
		m.Add(uint64(i)*128, 0)
		m.Append(uint64(i)*128, 1)
	}
	for i := 0; i < 16; i++ {
		m.Release(m.Remove(uint64(i) * 128))
	}
	if avg := testing.AllocsPerRun(1000, func() {
		m.Add(1024, 3)
		m.Append(1024, 4)
		m.Release(m.Remove(1024))
	}); avg != 0 {
		t.Fatalf("steady-state MSHR cycle allocates %v objects per op, want 0", avg)
	}
}

func BenchmarkMSHRTable(b *testing.B) {
	m := NewMSHRTable[int32](64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		line := uint64(i%64) * 128
		if !m.Add(line, int32(i)) {
			m.Release(m.Remove(line))
			m.Add(line, int32(i))
		}
	}
}
