package mem

import "fmt"

// Entries returns the table's in-flight lines and their waiter lists in
// slot-index order, with the waiter slices copied. Together with
// SetEntries it forms the MSHR half of an engine checkpoint: the physical
// slot layout is not captured because no table operation's result depends
// on it — find/Add/Append/Remove behave identically for any layout
// holding the same entry set, and waiter order within an entry (which IS
// observable through Remove) is preserved.
func (t *MSHRTable[W]) Entries() (lines []uint64, waiters [][]W) {
	for i := range t.slots {
		s := &t.slots[i]
		if !s.used {
			continue
		}
		lines = append(lines, s.line)
		waiters = append(waiters, append([]W(nil), s.waiters...))
	}
	return lines, waiters
}

// SetEntries resets the table to exactly the given in-flight entries
// (parallel slices, as produced by Entries). Recycled spare buffers are
// dropped; buffer capacities are not observable, so a restored table
// behaves bit-identically to the captured one.
func (t *MSHRTable[W]) SetEntries(lines []uint64, waiters [][]W) error {
	if len(lines) != len(waiters) {
		return fmt.Errorf("mem: mshr state has %d lines but %d waiter lists", len(lines), len(waiters))
	}
	if len(lines) > t.cap {
		return fmt.Errorf("mem: mshr state has %d entries, capacity %d", len(lines), t.cap)
	}
	for i := range t.slots {
		t.slots[i] = mshrSlot[W]{}
	}
	t.n = 0
	t.spare = t.spare[:0]
	for i, line := range lines {
		ws := waiters[i]
		if len(ws) == 0 {
			return fmt.Errorf("mem: mshr entry %#x restored with no waiters", line)
		}
		if !t.Add(line, ws[0]) {
			return fmt.Errorf("mem: mshr entry %#x duplicated in state", line)
		}
		for _, w := range ws[1:] {
			t.Append(line, w)
		}
	}
	return nil
}

// PoolState is a Pool's serializable snapshot: the free-list depth and
// the telemetry counters. The recycled Request objects themselves carry
// no information (they are poisoned), so a restore rebuilds the free list
// from fresh poisoned requests of the same count.
type PoolState struct {
	FreeLen  int
	Gets     uint64
	Allocs   uint64
	Recycles uint64
}

// State returns the pool's snapshot.
func (p *Pool) State() PoolState {
	if p == nil {
		return PoolState{}
	}
	return PoolState{FreeLen: len(p.free), Gets: p.gets, Allocs: p.allocs, Recycles: p.recycles}
}

// SetState restores the pool from a snapshot.
func (p *Pool) SetState(st PoolState) {
	if p == nil {
		return
	}
	p.gets, p.allocs, p.recycles = st.Gets, st.Allocs, st.Recycles
	p.free = p.free[:0]
	for i := 0; i < st.FreeLen; i++ {
		p.free = append(p.free, &Request{Kind: poisonKind, LineAddr: ^uint64(0)})
	}
}
