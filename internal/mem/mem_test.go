package mem

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if ReadReq.String() != "read" || WriteReq.String() != "write" || ReadReply.String() != "reply" {
		t.Fatal("kind names")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind unprintable")
	}
}

func TestFlits(t *testing.T) {
	r := &Request{Kind: ReadReq}
	if r.Flits(64, 128) != 1 {
		t.Fatal("read request should be a single control flit")
	}
	w := &Request{Kind: WriteReq}
	if w.Flits(64, 128) != 3 { // header + 2 data flits
		t.Fatalf("write flits = %d", w.Flits(64, 128))
	}
	rp := &Request{Kind: ReadReply}
	if rp.Flits(128, 128) != 2 { // header + 1 data flit
		t.Fatalf("reply flits = %d", rp.Flits(128, 128))
	}
	// Non-divisible flit sizes round up.
	if rp.Flits(100, 128) != 3 {
		t.Fatalf("ceil flits = %d", rp.Flits(100, 128))
	}
}

func TestFlitsAlwaysPositive(t *testing.T) {
	f := func(kind uint8, flit, line uint8) bool {
		r := &Request{Kind: Kind(kind % 3)}
		return r.Flits(int(flit)+1, int(line)+1) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
