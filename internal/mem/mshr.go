package mem

// MSHRTable is a fixed-slot, linear-probed miss-status holding register
// file: at most Cap distinct lines may be in flight, each with an ordered
// waiter list of type W (core-local warp indices at the L1, merged read
// requests at the L2).
//
// It replaces the map-based MSHRs of the seed simulator for two reasons:
// the hardware being modeled has a fixed MSHR budget, so a fixed table is
// the more faithful structure; and the per-cycle path must not heap
// allocate, so waiter buffers are recycled through the table instead of
// being reallocated per miss. Deletion uses backward-shift compaction, so
// probe chains never accumulate tombstones and the table stays at a <= 50%
// load factor for O(1) expected operations.
//
// Like Pool, an MSHRTable serves exactly one simulated structure on one
// goroutine and is not safe for concurrent use.
type MSHRTable[W any] struct {
	slots []mshrSlot[W]
	mask  uint64
	shift uint
	n     int
	cap   int
	spare [][]W // detached waiter buffers awaiting reuse
}

type mshrSlot[W any] struct {
	line    uint64
	used    bool
	waiters []W
}

// NewMSHRTable builds a table admitting at most capacity distinct lines.
func NewMSHRTable[W any](capacity int) *MSHRTable[W] {
	if capacity < 1 {
		capacity = 1
	}
	size := 8
	shift := uint(61) // 64 - log2(8)
	for size < 2*capacity {
		size *= 2
		shift--
	}
	return &MSHRTable[W]{
		slots: make([]mshrSlot[W], size),
		mask:  uint64(size - 1),
		shift: shift,
		cap:   capacity,
	}
}

// home is the preferred slot of a line: Fibonacci hashing spreads the
// line-aligned (low-bits-zero) addresses across the table.
func (t *MSHRTable[W]) home(line uint64) uint64 {
	return (line * 0x9E3779B97F4A7C15) >> t.shift
}

// find locates line's slot, or the empty slot that terminates its probe
// chain. The <= 50% load factor guarantees an empty slot exists.
func (t *MSHRTable[W]) find(line uint64) (idx uint64, ok bool) {
	i := t.home(line)
	for t.slots[i].used {
		if t.slots[i].line == line {
			return i, true
		}
		i = (i + 1) & t.mask
	}
	return i, false
}

// Len returns the number of distinct lines in flight.
func (t *MSHRTable[W]) Len() int { return t.n }

// Cap returns the hardware MSHR budget.
func (t *MSHRTable[W]) Cap() int { return t.cap }

// Full reports whether every MSHR entry is allocated.
func (t *MSHRTable[W]) Full() bool { return t.n >= t.cap }

// Contains reports whether line has an entry.
func (t *MSHRTable[W]) Contains(line uint64) bool {
	_, ok := t.find(line)
	return ok
}

// Waiters returns line's waiter list (nil if absent). The slice is valid
// only until the next mutating call; allocated entries always hold at
// least one waiter, so nil unambiguously means "no entry".
func (t *MSHRTable[W]) Waiters(line uint64) []W {
	if i, ok := t.find(line); ok {
		return t.slots[i].waiters
	}
	return nil
}

// Append merges one more waiter into line's existing entry, reporting
// whether an entry was present.
func (t *MSHRTable[W]) Append(line uint64, w W) bool {
	i, ok := t.find(line)
	if !ok {
		return false
	}
	t.slots[i].waiters = append(t.slots[i].waiters, w)
	return true
}

// Add allocates an entry for line with a single waiter. It returns false
// when the table is full or the line is already present (use Append for
// merges).
func (t *MSHRTable[W]) Add(line uint64, w W) bool {
	if t.n >= t.cap {
		return false
	}
	i, ok := t.find(line)
	if ok {
		return false
	}
	s := &t.slots[i]
	s.line = line
	s.used = true
	if s.waiters == nil && len(t.spare) > 0 {
		s.waiters = t.spare[len(t.spare)-1]
		t.spare = t.spare[:len(t.spare)-1]
	}
	s.waiters = append(s.waiters[:0], w)
	t.n++
	return true
}

// Remove frees line's entry and returns its detached waiter buffer (nil if
// the line is absent). The caller consumes the waiters and then hands the
// buffer back with Release so the next Add can reuse it.
func (t *MSHRTable[W]) Remove(line uint64) []W {
	i, ok := t.find(line)
	if !ok {
		return nil
	}
	buf := t.slots[i].waiters
	t.slots[i] = mshrSlot[W]{}
	// Backward-shift compaction: walk the probe chain after the hole and
	// pull back any entry whose home slot precedes the hole, so later
	// lookups never probe across a gap.
	j := i
	for {
		j = (j + 1) & t.mask
		if !t.slots[j].used {
			break
		}
		h := t.home(t.slots[j].line)
		if (j-h)&t.mask >= (j-i)&t.mask {
			t.slots[i] = t.slots[j]
			t.slots[j] = mshrSlot[W]{}
			i = j
		}
	}
	t.n--
	return buf
}

// Release returns a buffer obtained from Remove for reuse. Entries are
// zeroed so recycled buffers drop their references (no aliasing of stale
// waiters after the entry is dead).
func (t *MSHRTable[W]) Release(buf []W) {
	if cap(buf) == 0 {
		return
	}
	var zero W
	buf = buf[:cap(buf)]
	for i := range buf {
		buf[i] = zero
	}
	t.spare = append(t.spare, buf[:0])
}
