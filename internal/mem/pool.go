package mem

// poisonKind marks a Request that is sitting in a Pool's free list. No live
// message ever carries this kind, so stale aliases into recycled requests
// (and double recycles) are detectable instead of silently corrupting an
// unrelated transaction.
const poisonKind Kind = 0xEE

// Pool is a free list of Request objects. The per-cycle simulation path
// allocates one Request per L1 miss and per store; recycling them through a
// pool keeps the hot loop allocation-free once the in-flight population has
// been built up.
//
// A Pool is intentionally not safe for concurrent use: one simulator owns
// one pool, and a simulation runs on a single goroutine (the grid search
// parallelizes across simulators, each with its own pool). A nil *Pool is
// valid and falls back to plain heap allocation, which keeps unit tests and
// external users of gpu/dram working without wiring a pool.
type Pool struct {
	free []*Request

	// Telemetry for tests, benchmarks and the obs exporters.
	gets     uint64 // all Gets (hit rate = (gets-allocs)/gets)
	allocs   uint64 // Gets served by the heap (free list empty)
	recycles uint64 // Puts accepted into the free list
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed Request, reusing a recycled one when available.
func (p *Pool) Get() *Request {
	if p == nil {
		return new(Request)
	}
	p.gets++
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		*r = Request{}
		return r
	}
	p.allocs++
	return new(Request)
}

// Put recycles a completed request. The request must not be referenced by
// any queue, MSHR, or network after Put; its fields are poisoned so stale
// aliases are caught by the recycle guard rather than reading plausible
// data. Put panics if the same request is recycled twice without an
// intervening Get.
func (p *Pool) Put(r *Request) {
	if p == nil || r == nil {
		return
	}
	if r.Kind == poisonKind {
		panic("mem: Request recycled twice")
	}
	*r = Request{Kind: poisonKind, LineAddr: ^uint64(0)}
	p.recycles++
	p.free = append(p.free, r)
}

// FreeLen returns the current free-list depth (telemetry).
func (p *Pool) FreeLen() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}

// Gets returns how many requests have been handed out in total; the free
// list's hit rate is (Gets-HeapAllocs)/Gets.
func (p *Pool) Gets() uint64 {
	if p == nil {
		return 0
	}
	return p.gets
}

// HeapAllocs returns how many Gets were served by the heap rather than the
// free list; a steady-state cycle loop should stop growing this.
func (p *Pool) HeapAllocs() uint64 {
	if p == nil {
		return 0
	}
	return p.allocs
}

// Recycles returns how many requests have been returned via Put.
func (p *Pool) Recycles() uint64 {
	if p == nil {
		return 0
	}
	return p.recycles
}
