// Package resilience is the failure-handling layer of the execution
// stack (DESIGN.md §10): a Monitor that mirrors resilience incidents
// into the obs registry and journal, a bounded retry policy with
// deterministic jittered exponential backoff for transient cache I/O,
// and a per-run Watchdog that declares a simulation stuck when its cycle
// counter stops advancing past a progress deadline.
//
// Everything here is nil-safe: a nil Monitor discards incidents, a nil
// Watchdog absorbs pulses, and the zero Policy retries with defaults, so
// call sites carry no "is resilience on?" branches.
package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync/atomic"
	"time"

	"ebm/internal/obs"
)

// Monitor publishes resilience incidents: counters in an obs registry
// (runs_cancelled, cache_retries, watchdog_trips) and EvResilience
// events in a journal. Either sink may be absent; a nil Monitor is a
// no-op.
type Monitor struct {
	RunsCancelled *obs.Counter
	CacheRetries  *obs.Counter
	WatchdogTrips *obs.Counter
	Journal       *obs.Journal
}

// NewMonitor registers the resilience counters in reg (nil skips
// registration; the obs handles are nil-safe) and journals incidents to
// j (nil discards them).
func NewMonitor(reg *obs.Registry, j *obs.Journal) *Monitor {
	m := &Monitor{Journal: j}
	if reg != nil {
		m.RunsCancelled = reg.Counter("ebm_runs_cancelled_total", "simulation runs aborted by cancellation")
		m.CacheRetries = reg.Counter("ebm_cache_retries_total", "transient cache I/O failures retried")
		m.WatchdogTrips = reg.Counter("ebm_watchdog_trips_total", "runs declared stuck by the progress watchdog")
	}
	return m
}

func (m *Monitor) journal(label string) {
	if m != nil {
		m.Journal.Record(obs.Event{Kind: obs.EvResilience, App: -1, Label: label})
	}
}

// RunCancelled records one cancelled run.
func (m *Monitor) RunCancelled(label string) {
	if m == nil {
		return
	}
	m.RunsCancelled.Inc()
	m.journal("cancelled " + label)
}

// CacheRetry records one retried transient cache failure.
func (m *Monitor) CacheRetry(label string, attempt int, err error) {
	if m == nil {
		return
	}
	m.CacheRetries.Inc()
	m.journal(fmt.Sprintf("retry %d %s: %v", attempt, label, err))
}

// WatchdogTrip records one no-progress deadline expiry.
func (m *Monitor) WatchdogTrip(label string) {
	if m == nil {
		return
	}
	m.WatchdogTrips.Inc()
	m.journal("watchdog tripped " + label)
}

// Policy is a bounded retry schedule: Attempts tries total, sleeping
// BaseDelay·2^(attempt-1) capped at MaxDelay between them, each delay
// scaled by a uniform ±Jitter fraction drawn from a source seeded with
// Seed — so a given policy value produces the same delay sequence every
// run. The zero value retries with the defaults of DefaultPolicy.
type Policy struct {
	Attempts  int
	BaseDelay time.Duration
	MaxDelay  time.Duration
	Jitter    float64 // fraction of the delay, e.g. 0.2 for ±20%
	Seed      int64
}

// DefaultPolicy is the stack-wide cache-I/O retry schedule: 3 attempts,
// 2ms base doubling to a 250ms cap, ±20% deterministic jitter.
func DefaultPolicy() Policy {
	return Policy{Attempts: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 250 * time.Millisecond, Jitter: 0.2, Seed: 1}
}

func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.Attempts <= 0 {
		p.Attempts = d.Attempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// Delays returns the full backoff schedule the policy would sleep
// through (Attempts-1 entries) — the deterministic sequence tests pin.
func (p Policy) Delays() []time.Duration {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	out := make([]time.Duration, 0, p.Attempts-1)
	for a := 1; a < p.Attempts; a++ {
		out = append(out, p.delay(a, rng))
	}
	return out
}

func (p Policy) delay(attempt int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		d = time.Duration(float64(d) * (1 + p.Jitter*(2*rng.Float64()-1)))
	}
	return d
}

// Retry runs fn up to p.Attempts times, sleeping the backoff schedule
// between failures (context-aware: a cancel during the sleep returns
// ctx.Err immediately). Each retried failure is reported to mon. The
// final error (or nil on success) is returned.
func (p Policy) Retry(ctx context.Context, label string, mon *Monitor, fn func() error) error {
	p = p.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = fn(); err == nil || attempt >= p.Attempts {
			return err
		}
		mon.CacheRetry(label, attempt, err)
		obs.TrailFrom(ctx).AddRetry()
		_, sp := obs.StartSpan(ctx, "retry",
			obs.A("label", label), obs.A("attempt", strconv.Itoa(attempt)))
		t := time.NewTimer(p.delay(attempt, rng))
		select {
		case <-ctx.Done():
			t.Stop()
			sp.End()
			return ctx.Err()
		case <-t.C:
			sp.End()
		}
	}
}

// Watchdog declares a run stuck when Pulse stops being called for longer
// than the deadline. The engine pulses it at every sampling-window
// boundary; Guard derives a context that is cancelled on a trip, which
// the same boundary check then observes — so a wedged window aborts the
// run in bounded time. A nil Watchdog absorbs every call.
type Watchdog struct {
	label    string
	deadline time.Duration
	poll     time.Duration
	mon      *Monitor
	onTrip   func()

	lastPulse atomic.Int64 // time.Time.UnixNano of the latest pulse
	tripped   atomic.Bool
	stop      chan struct{}
	stopped   atomic.Bool
}

// WatchdogOptions configures NewWatchdog.
type WatchdogOptions struct {
	// Label names the guarded run in incident reports.
	Label string
	// Deadline is how long the run may go without a pulse before it is
	// declared stuck (default 30s).
	Deadline time.Duration
	// Poll is how often the guard goroutine checks (default Deadline/4).
	Poll time.Duration
	// Mon receives the trip incident (nil discards it).
	Mon *Monitor
	// OnTrip, when non-nil, runs once on the trip, before the guarded
	// context is cancelled.
	OnTrip func()
}

// NewWatchdog builds a watchdog; it is inert until Guard starts its
// polling goroutine.
func NewWatchdog(o WatchdogOptions) *Watchdog {
	if o.Deadline <= 0 {
		o.Deadline = 30 * time.Second
	}
	if o.Poll <= 0 {
		o.Poll = o.Deadline / 4
	}
	w := &Watchdog{
		label:    o.Label,
		deadline: o.Deadline,
		poll:     o.Poll,
		mon:      o.Mon,
		onTrip:   o.OnTrip,
		stop:     make(chan struct{}),
	}
	w.lastPulse.Store(time.Now().UnixNano())
	return w
}

// Deadline returns the no-progress deadline the watchdog enforces (zero
// for a nil watchdog). The distributed-sweep coordinator derives its
// lease deadlines from it, so one knob governs both views of "stuck".
func (w *Watchdog) Deadline() time.Duration {
	if w == nil {
		return 0
	}
	return w.deadline
}

// Pulse records forward progress. Safe from any goroutine and on a nil
// watchdog; the engine calls it once per sampling window.
func (w *Watchdog) Pulse() {
	if w == nil {
		return
	}
	w.lastPulse.Store(time.Now().UnixNano())
}

// Tripped reports whether the deadline ever expired.
func (w *Watchdog) Tripped() bool {
	return w != nil && w.tripped.Load()
}

// Stop ends the Guard goroutine without cancelling the guarded context.
// Idempotent; a nil watchdog is a no-op.
func (w *Watchdog) Stop() {
	if w == nil || !w.stopped.CompareAndSwap(false, true) {
		return
	}
	close(w.stop)
}

// Guard derives a context from parent that is cancelled when the
// watchdog trips, and starts the polling goroutine that enforces the
// deadline. The returned cancel releases the goroutine and the context;
// call it when the run finishes. A nil watchdog returns the parent with
// a cancel that only releases the derived context.
func (w *Watchdog) Guard(parent context.Context) (context.Context, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	if w == nil {
		return ctx, cancel
	}
	w.Pulse() // the clock starts when the guard does
	go func() {
		tick := time.NewTicker(w.poll)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-w.stop:
				return
			case <-tick.C:
				last := time.Unix(0, w.lastPulse.Load())
				if time.Since(last) > w.deadline {
					w.tripped.Store(true)
					w.mon.WatchdogTrip(w.label)
					obs.Instant(ctx, "watchdog-trip", obs.A("label", w.label))
					if w.onTrip != nil {
						w.onTrip()
					}
					cancel()
					return
				}
			}
		}
	}()
	return ctx, func() { w.Stop(); cancel() }
}
