package resilience

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"ebm/internal/obs"
)

func TestDelaysDeterministicSchedule(t *testing.T) {
	p := Policy{Attempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 25 * time.Millisecond, Jitter: 0.2, Seed: 42}
	d1 := p.Delays()
	d2 := p.Delays()
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("same policy produced different schedules: %v vs %v", d1, d2)
	}
	if len(d1) != 3 {
		t.Fatalf("4 attempts should sleep 3 times, got %d", len(d1))
	}
	// Exponential shape under the jitter envelope: base, 2*base, capped.
	bounds := []struct{ lo, hi time.Duration }{
		{8 * time.Millisecond, 12 * time.Millisecond},
		{16 * time.Millisecond, 24 * time.Millisecond},
		{20 * time.Millisecond, 30 * time.Millisecond}, // 40ms capped at 25 ± 20%
	}
	for i, d := range d1 {
		if d < bounds[i].lo || d > bounds[i].hi {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, d, bounds[i].lo, bounds[i].hi)
		}
	}
}

func TestZeroPolicyUsesDefaults(t *testing.T) {
	var p Policy
	if got, want := len(p.Delays()), DefaultPolicy().Attempts-1; got != want {
		t.Fatalf("zero policy slept %d times, want %d", got, want)
	}
}

func TestRetryRecoversFromTransientFailure(t *testing.T) {
	reg := obs.NewRegistry()
	mon := NewMonitor(reg, nil)
	p := Policy{Attempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	calls := 0
	err := p.Retry(context.Background(), "t", mon, func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3", calls)
	}
	if got := mon.CacheRetries.Value(); got != 2 {
		t.Fatalf("monitor counted %d retries, want 2", got)
	}
}

func TestRetryGivesUpAfterAttempts(t *testing.T) {
	p := Policy{Attempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	boom := errors.New("boom")
	calls := 0
	err := p.Retry(context.Background(), "t", nil, func() error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the final failure", err)
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times, want exactly Attempts=3", calls)
	}
}

func TestRetryHonoursCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := DefaultPolicy().Retry(ctx, "t", nil, func() error { calls++; return errors.New("x") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("fn ran %d times under a cancelled context, want 0", calls)
	}
}

func TestRetryCancelDuringBackoffSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Attempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour}
	done := make(chan error, 1)
	go func() {
		done <- p.Retry(ctx, "t", nil, func() error { return errors.New("x") })
	}()
	time.Sleep(10 * time.Millisecond) // let it enter the hour-long sleep
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry did not abandon its backoff sleep on cancel")
	}
}

func TestWatchdogTripsWithoutPulses(t *testing.T) {
	reg := obs.NewRegistry()
	mon := NewMonitor(reg, nil)
	w := NewWatchdog(WatchdogOptions{
		Label: "stuck", Deadline: 20 * time.Millisecond, Poll: 5 * time.Millisecond, Mon: mon,
	})
	ctx, cancel := w.Guard(context.Background())
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never tripped with no pulses")
	}
	if !w.Tripped() {
		t.Fatal("Tripped() false after the guarded context cancelled")
	}
	if got := mon.WatchdogTrips.Value(); got != 1 {
		t.Fatalf("monitor counted %d trips, want 1", got)
	}
}

func TestWatchdogPulsesPreventTrip(t *testing.T) {
	w := NewWatchdog(WatchdogOptions{Deadline: 60 * time.Millisecond, Poll: 10 * time.Millisecond})
	ctx, cancel := w.Guard(context.Background())
	defer cancel()
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		w.Pulse()
		time.Sleep(5 * time.Millisecond)
	}
	if w.Tripped() || ctx.Err() != nil {
		t.Fatalf("watchdog tripped despite steady pulses (tripped=%v ctx=%v)", w.Tripped(), ctx.Err())
	}
	cancel()
	if w.Tripped() {
		t.Fatal("cancel after a healthy run must not count as a trip")
	}
}

func TestNilSafety(t *testing.T) {
	var mon *Monitor
	mon.RunCancelled("x")
	mon.CacheRetry("x", 1, errors.New("e"))
	mon.WatchdogTrip("x")

	var w *Watchdog
	w.Pulse()
	w.Stop()
	if w.Tripped() {
		t.Fatal("nil watchdog tripped")
	}
	ctx, cancel := w.Guard(context.Background())
	defer cancel()
	if ctx.Err() != nil {
		t.Fatal("nil watchdog guard returned a dead context")
	}
}

func TestMonitorJournalsResilienceEvents(t *testing.T) {
	j := obs.NewJournal()
	mon := NewMonitor(nil, j)
	mon.RunCancelled("run-a")
	mon.WatchdogTrip("run-b")
	evs := j.Events()
	if len(evs) != 2 {
		t.Fatalf("journal holds %d events, want 2", len(evs))
	}
	for _, e := range evs {
		if e.Kind != obs.EvResilience {
			t.Fatalf("event kind %v, want EvResilience", e.Kind)
		}
	}
}
