package profile

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/simcache"
)

// TestFingerprintMatchesHistoricalAlgorithm pins the fingerprint to the
// exact bytes the pre-simcache inline FNV-1a produced, so committed
// profile caches (profiles.json et al.) stay valid across the refactor.
func TestFingerprintMatchesHistoricalAlgorithm(t *testing.T) {
	opts := smallOpts()
	apps := someApps("BLK", "JPEG")
	o := opts
	o.fillDefaults()
	b, err := json.Marshal(struct {
		Cfg        config.GPU
		Apps       []kernel.Params
		Total      uint64
		Warmup     uint64
		CoresAlone int
		Levels     []int
	}{o.Config, apps, o.TotalCycles, o.WarmupCycles, o.CoresAlone, o.Levels})
	if err != nil {
		t.Fatal(err)
	}
	var h uint64 = 1469598103934665603
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	want := fmt.Sprintf("%016x", h)
	if got := Fingerprint(opts, apps); got != want {
		t.Fatalf("Fingerprint = %s, historical algorithm gives %s", got, want)
	}
}

func TestFingerprintInvalidation(t *testing.T) {
	base := smallOpts()
	apps := someApps("BLK")
	fp := Fingerprint(base, apps)

	mutations := map[string]func(*Options){
		"config":       func(o *Options) { o.Config.NumMemPartitions *= 2 },
		"levels":       func(o *Options) { o.Levels = []int{1, 2} },
		"total cycles": func(o *Options) { o.TotalCycles += 1000 },
		"warmup":       func(o *Options) { o.WarmupCycles += 500 },
		"cores alone":  func(o *Options) { o.CoresAlone = 1 },
	}
	for name, mutate := range mutations {
		o := smallOpts()
		mutate(&o)
		if Fingerprint(o, apps) == fp {
			t.Errorf("fingerprint insensitive to %s change", name)
		}
	}
	if Fingerprint(base, someApps("BLK", "JPEG")) == fp {
		t.Error("fingerprint insensitive to app set")
	}
	if Fingerprint(base, apps) != fp {
		t.Error("fingerprint not stable")
	}
}

// TestLoadOrProfileSaveFailureIsWarning: an unwritable cache path must not
// discard a freshly profiled suite — it warns and returns the suite.
func TestLoadOrProfileSaveFailureIsWarning(t *testing.T) {
	var warned []string
	old := Warnf
	Warnf = func(format string, args ...any) {
		warned = append(warned, fmt.Sprintf(format, args...))
	}
	defer func() { Warnf = old }()

	// A path whose parent directory does not exist makes Save fail.
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "profiles.json")
	s, err := LoadOrProfile(nil, bad, someApps("BLK"), smallOpts())
	if err != nil {
		t.Fatalf("save failure escalated to error: %v", err)
	}
	if s == nil || len(s.Profiles) != 1 {
		t.Fatalf("suite dropped: %+v", s)
	}
	if len(warned) != 1 || !strings.Contains(warned[0], "cache not saved") {
		t.Fatalf("warning not surfaced: %v", warned)
	}
}

// TestProfileSuiteWarmCache: with a result cache attached, a second suite
// profile replays entirely from disk and produces the identical suite.
func TestProfileSuiteWarmCache(t *testing.T) {
	c, err := simcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts()
	opts.Cache = c
	apps := someApps("BLK", "JPEG")
	cold, err := ProfileSuite(nil, apps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Writes == 0 {
		t.Fatal("no results persisted")
	}
	before := c.Stats()
	warm, err := ProfileSuite(nil, apps, opts)
	if err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.Writes != before.Writes {
		t.Fatal("warm pass re-simulated")
	}
	if after.Hits-before.Hits < uint64(len(apps)*len(opts.Levels)) {
		t.Fatalf("warm pass hits %d, want ≥ %d", after.Hits-before.Hits, len(apps)*len(opts.Levels))
	}
	for name, p := range cold.Profiles {
		w := warm.Profiles[name]
		if w == nil || w.BestTLP != p.BestTLP || w.BestIPC != p.BestIPC || w.BestEB != p.BestEB {
			t.Fatalf("warm profile for %s differs: %+v vs %+v", name, w, p)
		}
	}
}
