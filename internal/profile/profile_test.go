package profile

import (
	"os"
	"path/filepath"
	"testing"

	"ebm/internal/config"
	"ebm/internal/kernel"
)

func smallOpts() Options {
	c := config.Default()
	c.NumCores = 4
	return Options{
		Config:       c,
		CoresAlone:   2,
		Levels:       []int{1, 4, 24},
		TotalCycles:  12_000,
		WarmupCycles: 2_000,
	}
}

func someApps(names ...string) []kernel.Params {
	out := make([]kernel.Params, len(names))
	for i, n := range names {
		p, ok := kernel.ByName(n)
		if !ok {
			panic(n)
		}
		out[i] = p
	}
	return out
}

func TestProfileAppFindsBest(t *testing.T) {
	app, _ := kernel.ByName("JPEG")
	p, err := ProfileApp(nil, app, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Levels) != 3 {
		t.Fatalf("%d levels", len(p.Levels))
	}
	for _, l := range p.Levels {
		if l.Result.IPC > p.BestIPC+1e-12 {
			t.Fatalf("bestIPC %v below level %d's %v", p.BestIPC, l.TLP, l.Result.IPC)
		}
	}
	if _, ok := p.AtTLP(4); !ok {
		t.Fatal("AtTLP(4) missing")
	}
	if _, ok := p.AtTLP(5); ok {
		t.Fatal("AtTLP(5) invented a level")
	}
	// Latency-bound JPEG should prefer more TLP over TLP=1.
	if p.BestTLP == 1 {
		t.Fatalf("JPEG bestTLP = 1 is implausible")
	}
}

func TestProfileSuiteGroups(t *testing.T) {
	suite, err := ProfileSuite(nil, someApps("BLK", "TRD", "JPEG", "GUPS"), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Profiles) != 4 {
		t.Fatalf("%d profiles", len(suite.Profiles))
	}
	counts := map[int]int{}
	for _, p := range suite.Profiles {
		if p.Group < 1 || p.Group > 4 {
			t.Fatalf("group %d out of range", p.Group)
		}
		counts[p.Group]++
	}
	// 4 apps over 4 quartiles: one each.
	for g := 1; g <= 4; g++ {
		if counts[g] != 1 {
			t.Fatalf("group sizes %v, want one per quartile", counts)
		}
	}
	// Group means must be ordered.
	for g := 1; g < 4; g++ {
		if suite.GroupMeanEB[g-1] > suite.GroupMeanEB[g] {
			t.Fatalf("group means not monotone: %v", suite.GroupMeanEB)
		}
	}
}

func TestSuiteAccessors(t *testing.T) {
	suite, err := ProfileSuite(nil, someApps("BLK", "TRD"), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"BLK", "TRD"}
	ipc, err := suite.AloneIPC(names)
	if err != nil || len(ipc) != 2 || ipc[0] <= 0 {
		t.Fatalf("AloneIPC %v %v", ipc, err)
	}
	eb, err := suite.AloneEB(names)
	if err != nil || eb[0] <= 0 {
		t.Fatalf("AloneEB %v %v", eb, err)
	}
	best, err := suite.BestTLPs(names)
	if err != nil || len(best) != 2 {
		t.Fatalf("BestTLPs %v %v", best, err)
	}
	if _, err := suite.AloneIPC([]string{"NOPE"}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := suite.GroupEB(names); err != nil {
		t.Fatal(err)
	}
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profiles.json")
	opts := smallOpts()
	apps := someApps("BLK", "TRD")

	s1, err := LoadOrProfile(nil, path, apps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache not written: %v", err)
	}
	s2, err := LoadOrProfile(nil, path, apps, opts)
	if err != nil {
		t.Fatal(err)
	}
	for n, p1 := range s1.Profiles {
		p2 := s2.Profiles[n]
		if p2 == nil || p2.BestIPC != p1.BestIPC || p2.BestTLP != p1.BestTLP {
			t.Fatalf("cache round trip lost %s", n)
		}
	}
}

func TestCacheInvalidatedByConfigChange(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profiles.json")
	apps := someApps("BLK")
	opts := smallOpts()
	if _, err := LoadOrProfile(nil, path, apps, opts); err != nil {
		t.Fatal(err)
	}
	fp1 := Fingerprint(opts, apps)
	opts2 := opts
	opts2.Config.L1MSHRs = 999
	fp2 := Fingerprint(opts2, apps)
	if fp1 == fp2 {
		t.Fatal("fingerprint insensitive to config change")
	}
	opts3 := opts
	opts3.CoresAlone = 1
	if Fingerprint(opts3, apps) == fp1 {
		t.Fatal("fingerprint insensitive to the alone core share")
	}
	if _, err := Load(path, fp2); err == nil {
		t.Fatal("stale cache accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json"), "x"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, "x"); err == nil {
		t.Fatal("corrupt file accepted")
	}
}

func TestAloneRunUsesReducedCores(t *testing.T) {
	app, _ := kernel.ByName("JPEG")
	opts := smallOpts()
	res, err := AloneRun(nil, app, 24, opts)
	if err != nil {
		t.Fatal(err)
	}
	// 2 cores x 2 schedulers: IPC can never exceed 4.
	if res.Apps[0].IPC > 4.01 {
		t.Fatalf("alone run IPC %v exceeds the 2-core issue bound", res.Apps[0].IPC)
	}
}
