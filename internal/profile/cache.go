package profile

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/simcache"
)

// cacheFile is the on-disk representation of a profiled suite, fingerprinted
// by the machine configuration and application parameters so a stale cache
// is never silently reused.
type cacheFile struct {
	Fingerprint string                 `json:"fingerprint"`
	Profiles    map[string]*AppProfile `json:"profiles"`
	GroupMeanEB [4]float64             `json:"group_mean_eb"`
}

// Fingerprint derives a stable identity for the profiling setup: machine,
// applications, run lengths, alone core share, and TLP levels. The struct
// shape and hash must stay byte-compatible with historical fingerprints so
// committed profile caches remain valid.
func Fingerprint(opts Options, apps []kernel.Params) string {
	opts.fillDefaults()
	return simcache.HashJSON(struct {
		Cfg        config.GPU
		Apps       []kernel.Params
		Total      uint64
		Warmup     uint64
		CoresAlone int
		Levels     []int
	}{opts.Config, apps, opts.TotalCycles, opts.WarmupCycles, opts.CoresAlone, opts.Levels})
}

// Save writes the suite to path with the given fingerprint.
func (s *Suite) Save(path, fingerprint string) error {
	cf := cacheFile{
		Fingerprint: fingerprint,
		Profiles:    s.Profiles,
		GroupMeanEB: s.GroupMeanEB,
	}
	b, err := json.MarshalIndent(cf, "", " ")
	if err != nil {
		return fmt.Errorf("profile: marshal cache: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("profile: write cache: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load reads a cached suite from path, returning an error if the file is
// missing, unreadable, or fingerprinted for a different setup.
func Load(path, fingerprint string) (*Suite, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cf cacheFile
	if err := json.Unmarshal(b, &cf); err != nil {
		return nil, fmt.Errorf("profile: parse cache %s: %w", path, err)
	}
	if cf.Fingerprint != fingerprint {
		return nil, fmt.Errorf("profile: cache %s was built for a different configuration", path)
	}
	return &Suite{Profiles: cf.Profiles, GroupMeanEB: cf.GroupMeanEB}, nil
}

// Warnf reports non-fatal profiling problems (stderr by default;
// replaceable for tests or embedding).
var Warnf = func(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// LoadOrProfile returns the cached suite at path when valid, otherwise
// profiles the applications and (best effort) refreshes the cache. A
// failed cache save is retried per opts.Retry and then demoted to a
// warning, never an error: the freshly profiled suite is perfectly good,
// the next run just profiles again.
func LoadOrProfile(ctx context.Context, path string, apps []kernel.Params, opts Options) (*Suite, error) {
	opts.fillDefaults()
	fp := Fingerprint(opts, apps)
	if path != "" {
		if s, err := Load(path, fp); err == nil {
			return s, nil
		}
	}
	s, err := ProfileSuite(ctx, apps, opts)
	if err != nil {
		return nil, err
	}
	if path != "" {
		err := opts.Retry.Retry(ctx, "profile-cache:"+path, opts.Mon, func() error {
			return s.Save(path, fp)
		})
		if err != nil {
			Warnf("profile: warning: suite ready but cache not saved: %v", err)
		}
	}
	return s, nil
}
