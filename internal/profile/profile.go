// Package profile performs the paper's alone-run profiling: each
// application executes by itself on the core share it would receive when
// co-scheduled (the full memory system stays attached, exactly as the
// paper defines IPC-Alone), across every TLP level. The profiles yield
// bestTLP, IPC@bestTLP and EB@bestTLP — the contents of Table IV — plus
// the group classification (G1..G4 by alone-EB quartile) used for the
// group-based EB scaling factors.
package profile

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"ebm/internal/ckpt"
	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/obs"
	"ebm/internal/resilience"
	"ebm/internal/runner"
	"ebm/internal/sim"
	"ebm/internal/simcache"
	"ebm/internal/spec"
)

// Options configures the profiler.
type Options struct {
	Config config.GPU
	// CoresAlone is the core count an application receives when alone —
	// the paper's "same set of cores" (half the machine for two-app
	// workloads). Default NumCores/2.
	CoresAlone   int
	Levels       []int
	TotalCycles  uint64
	WarmupCycles uint64
	// Parallelism bounds how many alone-runs this call keeps in flight at
	// once (it caps submissions, not pool workers — the pool is shared).
	Parallelism int
	// Runner is the execution pool alone-runs are submitted to. Nil means
	// the process-wide runner.Default().
	Runner *runner.Runner
	// Cache, when non-nil, serves alone-runs from the on-disk result
	// cache and persists fresh ones.
	Cache *simcache.Cache
	// Ckpt, when non-nil, executes uncached alone-runs through the prefix
	// checkpoint store, forking each from the deepest snapshot a prior
	// (possibly shorter or interrupted) run of the same prefix persisted.
	Ckpt *ckpt.Store
	// Retry is the backoff policy for suite-cache saves (zero value =
	// resilience.DefaultPolicy); Mon receives retry incidents (nil
	// discards them).
	Retry resilience.Policy
	Mon   *resilience.Monitor
}

func (o *Options) fillDefaults() {
	if o.CoresAlone == 0 {
		o.CoresAlone = o.Config.NumCores / 2
	}
	if o.Levels == nil {
		o.Levels = append([]int(nil), config.TLPLevels...)
	}
	if o.TotalCycles == 0 {
		o.TotalCycles = 120_000
	}
	if o.WarmupCycles == 0 {
		o.WarmupCycles = 20_000
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
}

// LevelResult is the alone behaviour of an application at one TLP level.
type LevelResult struct {
	TLP    int
	Result sim.AppResult
}

// AppProfile is the full alone profile of one application.
type AppProfile struct {
	Name    string
	Levels  []LevelResult
	BestTLP int
	BestIPC float64
	BestEB  float64 // EB at bestTLP
	Group   int     // 1..4 by alone-EB quartile across the profiled set
}

// AtTLP returns the level result for a given TLP value.
func (p *AppProfile) AtTLP(tlp int) (LevelResult, bool) {
	for _, l := range p.Levels {
		if l.TLP == tlp {
			return l, true
		}
	}
	return LevelResult{}, false
}

// AloneRun simulates one application alone at one TLP level, through the
// shared executor (PriProfile — everything downstream waits on profiles)
// and, when opts.Cache is set, the on-disk result cache. The "alone@N"
// label is display-only: the cache key canonicalizes it away, so an
// alone run and an identically shaped static run share one entry.
func AloneRun(ctx context.Context, app kernel.Params, tlpLevel int, opts Options) (sim.Result, error) {
	opts.fillDefaults()
	cfg := opts.Config
	cfg.NumCores = opts.CoresAlone
	rs := spec.RunSpec{
		Config:       cfg,
		Apps:         []kernel.Params{app},
		Scheme:       spec.Labeled(fmt.Sprintf("alone@%d", tlpLevel), []int{tlpLevel}, nil),
		TotalCycles:  opts.TotalCycles,
		WarmupCycles: opts.WarmupCycles,
	}
	ctx, sp := obs.StartSpan(ctx, "alone",
		obs.A("app", app.Name), obs.A("tlp", strconv.Itoa(tlpLevel)))
	defer sp.End()
	return simcache.RunCached(ctx, opts.Cache, opts.Runner, runner.PriProfile, rs, ckpt.Runner(opts.Ckpt, rs))
}

// pickBest selects the level with the highest alone IPC.
func (p *AppProfile) pickBest() {
	best := 0
	for i, l := range p.Levels {
		if l.Result.IPC > p.Levels[best].Result.IPC {
			best = i
		}
	}
	p.BestTLP = p.Levels[best].TLP
	p.BestIPC = p.Levels[best].Result.IPC
	p.BestEB = p.Levels[best].Result.EB
}

// ProfileApp sweeps one application across every TLP level alone, with the
// levels in flight concurrently (bounded by opts.Parallelism).
func ProfileApp(ctx context.Context, app kernel.Params, opts Options) (*AppProfile, error) {
	opts.fillDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	p := &AppProfile{Name: app.Name, Levels: make([]LevelResult, len(opts.Levels))}
	var (
		wg sync.WaitGroup
		mu sync.Mutex
		ec error
	)
	sem := make(chan struct{}, opts.Parallelism)
	for i, lvl := range opts.Levels {
		if ctx.Err() != nil {
			break // stop launching; in-flight runs abort at their next window
		}
		i, lvl := i, lvl
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := AloneRun(ctx, app, lvl, opts)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if ec == nil {
					ec = err
				}
				return
			}
			p.Levels[i] = LevelResult{TLP: lvl, Result: res.Apps[0]}
		}()
	}
	wg.Wait()
	if ec != nil {
		return nil, ec
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.pickBest()
	return p, nil
}

// Suite holds profiles for a set of applications, keyed by name.
type Suite struct {
	Profiles map[string]*AppProfile
	// GroupMeanEB[g-1] is the mean alone-EB of group g, the user-supplied
	// scaling factors of Section IV.
	GroupMeanEB [4]float64
}

// ProfileSuite profiles every application and assigns EB groups by
// quartile. The (app, level) grid fans out flat — every alone-run is an
// independent leaf task on the shared pool — with opts.Parallelism
// bounding how many this call keeps in flight.
func ProfileSuite(ctx context.Context, apps []kernel.Params, opts Options) (*Suite, error) {
	opts.fillDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := obs.StartSpan(ctx, "profile-suite", obs.A("apps", strconv.Itoa(len(apps))))
	defer sp.End()
	s := &Suite{Profiles: make(map[string]*AppProfile, len(apps))}

	profiles := make([]*AppProfile, len(apps))
	for i, app := range apps {
		profiles[i] = &AppProfile{Name: app.Name, Levels: make([]LevelResult, len(opts.Levels))}
	}
	var (
		wg sync.WaitGroup
		mu sync.Mutex
		ec error
	)
	sem := make(chan struct{}, opts.Parallelism)
launch:
	for ai, app := range apps {
		for li, lvl := range opts.Levels {
			if ctx.Err() != nil {
				break launch // stop launching; in-flight runs abort cooperatively
			}
			ai, app, li, lvl := ai, app, li, lvl
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				res, err := AloneRun(ctx, app, lvl, opts)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if ec == nil {
						ec = err
					}
					return
				}
				profiles[ai].Levels[li] = LevelResult{TLP: lvl, Result: res.Apps[0]}
			}()
		}
	}
	wg.Wait()
	if ec != nil {
		return nil, ec
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, p := range profiles {
		p.pickBest()
		s.Profiles[p.Name] = p
	}
	s.assignGroups()
	return s, nil
}

// assignGroups splits the suite into EB quartiles: G1 lowest .. G4 highest.
func (s *Suite) assignGroups() {
	type ne struct {
		name string
		eb   float64
	}
	var all []ne
	for n, p := range s.Profiles {
		all = append(all, ne{n, p.BestEB})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].eb != all[j].eb {
			return all[i].eb < all[j].eb
		}
		return all[i].name < all[j].name
	})
	var sums [4]float64
	var counts [4]int
	for i, e := range all {
		g := i * 4 / len(all) // 0..3
		s.Profiles[e.name].Group = g + 1
		sums[g] += e.eb
		counts[g]++
	}
	for g := 0; g < 4; g++ {
		if counts[g] > 0 {
			s.GroupMeanEB[g] = sums[g] / float64(counts[g])
		}
	}
}

// AloneIPC returns the IPC@bestTLP vector for the named applications.
func (s *Suite) AloneIPC(names []string) ([]float64, error) {
	out := make([]float64, len(names))
	for i, n := range names {
		p, ok := s.Profiles[n]
		if !ok {
			return nil, fmt.Errorf("profile: no profile for %q", n)
		}
		out[i] = p.BestIPC
	}
	return out, nil
}

// AloneEB returns the EB@bestTLP vector (exact scaling factors).
func (s *Suite) AloneEB(names []string) ([]float64, error) {
	out := make([]float64, len(names))
	for i, n := range names {
		p, ok := s.Profiles[n]
		if !ok {
			return nil, fmt.Errorf("profile: no profile for %q", n)
		}
		out[i] = p.BestEB
	}
	return out, nil
}

// GroupEB returns the group-mean scaling factors for the named apps (the
// paper's user-supplied option).
func (s *Suite) GroupEB(names []string) ([]float64, error) {
	out := make([]float64, len(names))
	for i, n := range names {
		p, ok := s.Profiles[n]
		if !ok {
			return nil, fmt.Errorf("profile: no profile for %q", n)
		}
		out[i] = s.GroupMeanEB[p.Group-1]
	}
	return out, nil
}

// BestTLPs returns the bestTLP vector for the named apps (the ++bestTLP
// baseline combination).
func (s *Suite) BestTLPs(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		p, ok := s.Profiles[n]
		if !ok {
			return nil, fmt.Errorf("profile: no profile for %q", n)
		}
		out[i] = p.BestTLP
	}
	return out, nil
}
