// Package runner is the run-level execution layer: one process-wide
// bounded worker pool that every simulation orchestrator — the alone-run
// profiler, the exhaustive grid builder, and the experiments evaluation
// loop — submits to. Sharing one pool lets independent phases pipeline
// (the tail of one workload's grid overlaps the head of another's
// evaluation) instead of each orchestrator spawning a throwaway worker
// set with an idle stall at every phase boundary.
//
// Tasks carry a priority (profiles unblock everything, evaluation runs
// are the long poles, grid cells are plentiful filler) and an optional
// singleflight key: identical keyed tasks submitted while one is queued
// or running attach to the first execution instead of re-running, so an
// identical (config, apps, TLPs, cycles) simulation executes at most
// once per process.
//
// Contract: tasks must be leaves. A task running on a pool worker must
// never submit to (and wait on) the same pool — with every worker blocked
// the queue can no longer drain. Orchestration loops therefore run on
// plain caller goroutines and submit only the actual simulations.
package runner

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"ebm/internal/faultinject"
	"ebm/internal/obs"
)

// ErrClosed is returned by Do once Close has been called: a shut-down
// pool refuses new work instead of running it inline, so orchestrators
// cannot accidentally keep executing past shutdown.
var ErrClosed = errors.New("runner: pool closed")

// Task priorities. Higher runs first; FIFO within a priority.
const (
	// PriGrid is for exhaustive-grid cells: plentiful, short, and only
	// consumed in bulk, so they fill whatever capacity is left.
	PriGrid = 10
	// PriEval is for evaluation-length scheme runs: the longest
	// individual simulations, started as soon as their grid resolves.
	PriEval = 20
	// PriProfile is for alone-run profiling: everything else depends on
	// the profiles, so they go to the head of the queue.
	PriProfile = 30
)

// Task is one unit of pooled work. The result is opaque to the pool.
type Task func() (any, error)

// call is one execution that one or more Do callers wait on.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// item is one queued task.
type item struct {
	ctx context.Context
	pri int
	seq uint64 // FIFO tiebreak within a priority
	key string
	fn  Task
	c   *call
}

type itemHeap []*item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].pri != h[j].pri {
		return h[i].pri > h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)   { *h = append(*h, x.(*item)) }
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Runner is a bounded worker pool with a priority queue and singleflight
// deduplication. The zero value is not usable; construct with New or use
// the process-wide Default.
type Runner struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    itemHeap
	inflight map[string]*call
	seq      uint64
	closed   bool
	workers  int
	active   int // tasks currently executing (Close waits on this)

	// hooks is the fault-injection seam (nil in production); TaskStart
	// runs inside the panic-recovery region of every pooled task.
	hooks faultinject.Hooks

	ran     atomic.Uint64
	deduped atomic.Uint64

	// Optional observability handles (nil-safe), set via Instrument.
	queueDepth *obs.Gauge
	runsC      *obs.Counter
	dedupC     *obs.Counter
}

// New starts a pool with the given number of workers (minimum 1).
func New(workers int) *Runner {
	if workers < 1 {
		workers = 1
	}
	r := &Runner{
		inflight: make(map[string]*call),
		workers:  workers,
	}
	r.cond = sync.NewCond(&r.mu)
	for i := 0; i < workers; i++ {
		go r.worker()
	}
	return r
}

var (
	defaultOnce sync.Once
	std         *Runner
)

// Default returns the process-wide shared pool, sized to the machine's
// CPU count on first use.
func Default() *Runner {
	defaultOnce.Do(func() { std = New(runtime.NumCPU()) })
	return std
}

// Workers returns the pool size.
func (r *Runner) Workers() int {
	if r == nil {
		return 0
	}
	return r.workers
}

// Close shuts the pool down and waits: queued tasks still run (their Do
// callers are already committed to the results), in-flight tasks finish,
// and only then does Close return, so a closed pool has no work left in
// the air. Do calls arriving after Close return ErrClosed. Close is
// intended for test-local pools (the Default pool lives for the
// process).
func (r *Runner) Close() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	for len(r.queue) > 0 || r.active > 0 {
		r.cond.Wait()
	}
	r.mu.Unlock()
}

// SetHooks installs the fault-injection seam (chaos tests, ebsim
// -chaos). Call before submitting work; nil (the default) is the
// zero-cost production configuration.
func (r *Runner) SetHooks(h faultinject.Hooks) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.hooks = h
	r.mu.Unlock()
}

// Do submits fn at the given priority and blocks until it (or the
// in-flight execution it deduplicates onto) completes, or ctx is
// cancelled — cancellation abandons the wait with ctx.Err(); a queued
// task whose context is already cancelled is skipped, never run, which
// is what lets a shutdown drain the queue in bounded time. A non-empty
// key enables singleflight: if a task with the same key is queued or
// running, the caller attaches to that execution and shares its result.
// An empty key always executes. A nil Runner executes fn inline; a
// closed Runner returns ErrClosed. A nil ctx means context.Background().
func (r *Runner) Do(ctx context.Context, key string, pri int, fn Task) (any, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// The pool span covers queue wait plus execution (or the wait on a
	// deduplicated predecessor) — the gap between it and the nested
	// execute span is time spent queued.
	_, sp := obs.StartSpan(ctx, "pool.do", obs.A("key", key), obs.A("pri", strconv.Itoa(pri)))
	defer sp.End()
	if r == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return fn()
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		r.mu.Unlock()
		return nil, err
	}
	if key != "" {
		if c, ok := r.inflight[key]; ok {
			r.mu.Unlock()
			r.deduped.Add(1)
			r.dedupC.Inc()
			sp.Annotate("shared", "true")
			select {
			case <-c.done:
				return c.val, c.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	c := &call{done: make(chan struct{})}
	if key != "" {
		r.inflight[key] = c
	}
	r.seq++
	heap.Push(&r.queue, &item{ctx: ctx, pri: pri, seq: r.seq, key: key, fn: fn, c: c})
	r.queueDepth.Set(float64(r.queue.Len()))
	r.cond.Signal()
	r.mu.Unlock()
	select {
	case <-c.done:
		return c.val, c.err
	case <-ctx.Done():
		// The task may still run (other dedup waiters could be attached);
		// this caller just stops waiting for it.
		return nil, ctx.Err()
	}
}

func (r *Runner) worker() {
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.closed {
			r.cond.Wait()
		}
		if len(r.queue) == 0 && r.closed {
			r.mu.Unlock()
			return
		}
		it := heap.Pop(&r.queue).(*item)
		r.active++
		hooks := r.hooks
		r.queueDepth.Set(float64(r.queue.Len()))
		r.mu.Unlock()

		skipped := false
		if err := it.ctx.Err(); err != nil {
			// Submitted before the cancel, popped after: complete the call
			// without running so a shutdown drains instead of simulating.
			it.c.err = err
			skipped = true
		} else {
			it.c.val, it.c.err = runHooked(hooks, it.key, it.fn)
			r.ran.Add(1)
		}

		r.mu.Lock()
		if it.key != "" {
			delete(r.inflight, it.key)
		}
		r.active--
		if !skipped {
			r.runsC.Inc()
		}
		r.cond.Broadcast() // wake Close waiters and idle workers
		r.mu.Unlock()
		close(it.c.done)
	}
}

// runSafe converts a task panic into an error so one bad simulation does
// not take down every orchestrator sharing the pool.
func runSafe(fn Task) (v any, err error) {
	return runHooked(nil, "", fn)
}

// runHooked is runSafe with the fault-injection seam: TaskStart runs
// inside the recovery region, so an injected panic surfaces as the same
// task error a real crash would.
func runHooked(hooks faultinject.Hooks, label string, fn Task) (v any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("runner: task panic: %v", p)
		}
	}()
	if hooks != nil {
		hooks.TaskStart(label)
	}
	return fn()
}

// Stats is a point-in-time snapshot of the pool.
type Stats struct {
	Ran     uint64 // tasks executed
	Deduped uint64 // Do calls absorbed by singleflight
	Queued  int    // tasks currently waiting
}

// Stats returns the pool's counters.
func (r *Runner) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	q := len(r.queue)
	r.mu.Unlock()
	return Stats{Ran: r.ran.Load(), Deduped: r.deduped.Load(), Queued: q}
}

// Instrument mirrors the pool's activity into an obs registry:
// ebm_runner_queue_depth, ebm_runner_tasks_total, and
// ebm_runner_dedup_total.
func (r *Runner) Instrument(reg *obs.Registry) {
	if r == nil || reg == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queueDepth = reg.Gauge("ebm_runner_queue_depth", "tasks waiting in the shared executor queue")
	r.runsC = reg.Counter("ebm_runner_tasks_total", "tasks executed by the shared executor")
	r.dedupC = reg.Counter("ebm_runner_dedup_total", "submissions absorbed by singleflight dedup")
	r.runsC.Set(r.ran.Load())
	r.dedupC.Set(r.deduped.Load())
}

// Group is a standalone singleflight for non-pooled values (e.g. "build
// this workload's grid once even if many goroutines ask"): concurrent Do
// calls with the same key share one execution of fn; once it returns the
// key is forgotten, so failures are retryable.
type Group struct {
	mu sync.Mutex
	m  map[string]*call
}

// Do runs fn for key, deduplicating concurrent callers. shared reports
// whether the result came from another caller's execution.
func (g *Group) Do(key string, fn func() (any, error)) (v any, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &call{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = runSafe(fn)

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}
