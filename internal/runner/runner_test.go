package runner

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ebm/internal/obs"
)

func TestDoReturnsValue(t *testing.T) {
	r := New(2)
	defer r.Close()
	v, err := r.Do(nil, "", PriGrid, func() (any, error) { return 42, nil })
	if err != nil || v.(int) != 42 {
		t.Fatalf("Do = %v, %v", v, err)
	}
	_, err = r.Do(nil, "", PriGrid, func() (any, error) { return nil, fmt.Errorf("boom") })
	if err == nil || err.Error() != "boom" {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	r := New(workers)
	defer r.Close()
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Do(nil, "", PriGrid, func() (any, error) {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				cur.Add(-1)
				return nil, nil
			})
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
	if s := r.Stats(); s.Ran != 24 {
		t.Fatalf("ran %d, want 24", s.Ran)
	}
}

func TestPriorityOrder(t *testing.T) {
	// One worker, blocked on a gate task; everything queued behind it
	// must drain highest-priority first, FIFO within a priority.
	r := New(1)
	defer r.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	go r.Do(nil, "", PriGrid, func() (any, error) {
		close(started)
		<-gate
		return nil, nil
	})
	<-started

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	queued := 0
	submit := func(label string, pri int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Do(nil, "", pri, func() (any, error) {
				mu.Lock()
				order = append(order, label)
				mu.Unlock()
				return nil, nil
			})
		}()
		// Serialize submissions so seq numbers follow submission order
		// (the single worker is parked on the gate, so the queue only
		// grows).
		queued++
		deadline := time.Now().Add(2 * time.Second)
		for r.Stats().Queued < queued {
			if time.Now().After(deadline) {
				t.Fatalf("submission %s never queued", label)
			}
			time.Sleep(time.Millisecond)
		}
	}
	submit("grid1", PriGrid)
	submit("eval1", PriEval)
	submit("prof1", PriProfile)
	submit("grid2", PriGrid)
	submit("eval2", PriEval)
	close(gate)
	wg.Wait()

	want := []string{"prof1", "eval1", "eval2", "grid1", "grid2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
}

func TestSingleflightDedup(t *testing.T) {
	r := New(4)
	defer r.Close()
	var execs atomic.Int64
	gate := make(chan struct{})
	const callers = 8
	var wg sync.WaitGroup
	results := make([]any, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := r.Do(nil, "same-key", PriEval, func() (any, error) {
				execs.Add(1)
				<-gate
				return "shared", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}()
	}
	// Let every caller reach Do before releasing the one execution.
	for r.Stats().Deduped < callers-1 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Fatalf("%d executions, want 1", n)
	}
	for i, v := range results {
		if v != "shared" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	s := r.Stats()
	if s.Deduped != callers-1 {
		t.Fatalf("deduped %d, want %d", s.Deduped, callers-1)
	}
	// The key is forgotten after completion: a later identical submission
	// executes again.
	if _, err := r.Do(nil, "same-key", PriEval, func() (any, error) {
		execs.Add(1)
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if execs.Load() != 2 {
		t.Fatal("completed key not forgotten")
	}
}

func TestTaskPanicBecomesError(t *testing.T) {
	r := New(1)
	defer r.Close()
	_, err := r.Do(nil, "", PriGrid, func() (any, error) { panic("kaboom") })
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestNilRunnerRunsInline(t *testing.T) {
	var r *Runner
	v, err := r.Do(nil, "k", PriEval, func() (any, error) { return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("nil runner Do = %v, %v", v, err)
	}
	if r.Stats() != (Stats{}) || r.Workers() != 0 {
		t.Fatal("nil runner stats")
	}
	r.Instrument(obs.NewRegistry()) // must not panic
}

func TestInstrument(t *testing.T) {
	r := New(2)
	defer r.Close()
	reg := obs.NewRegistry()
	r.Instrument(reg)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Do(nil, "dup", PriEval, func() (any, error) {
				time.Sleep(2 * time.Millisecond)
				return nil, nil
			})
		}()
	}
	wg.Wait()
	runs := reg.Counter("ebm_runner_tasks_total", "").Value()
	dedup := reg.Counter("ebm_runner_dedup_total", "").Value()
	if runs == 0 {
		t.Fatal("tasks counter not published")
	}
	if runs+dedup != 3 {
		t.Fatalf("runs %d + dedup %d != 3 submissions", runs, dedup)
	}
}

func TestGroupDedupsAndForgets(t *testing.T) {
	var g Group
	var execs atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := g.Do("k", func() (any, error) {
				execs.Add(1)
				<-gate
				return 11, nil
			})
			if err != nil || v.(int) != 11 {
				t.Errorf("Group.Do = %v, %v", v, err)
			}
		}()
	}
	// Wait for one execution to be registered, then release.
	for {
		g.mu.Lock()
		n := len(g.m)
		g.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if execs.Load() != 1 {
		t.Fatalf("%d executions, want 1", execs.Load())
	}
	// Forgotten: next call runs again.
	g.Do("k", func() (any, error) { execs.Add(1); return nil, nil })
	if execs.Load() != 2 {
		t.Fatal("group key not forgotten")
	}
}

func TestDefaultIsShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default not a singleton")
	}
	if Default().Workers() < 1 {
		t.Fatal("default pool empty")
	}
}
