package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoAfterCloseReturnsErrClosed(t *testing.T) {
	r := New(1)
	r.Close()
	_, err := r.Do(nil, "", PriGrid, func() (any, error) {
		t.Error("task ran on a closed pool")
		return nil, nil
	})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestCloseWaitsForInFlightTasks(t *testing.T) {
	r := New(2)
	var running, finished atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Do(nil, "", PriGrid, func() (any, error) {
				running.Add(1)
				<-release
				finished.Add(1)
				return nil, nil
			})
		}()
	}
	for running.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	closed := make(chan struct{})
	go func() {
		r.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while tasks were still executing")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after tasks finished")
	}
	if finished.Load() != 2 {
		t.Fatalf("%d tasks finished before Close returned, want 2", finished.Load())
	}
	wg.Wait()
}

// TestConcurrentCloseAndDo is the regression test for the shutdown race:
// every Do must either run its task to completion before Close returns,
// or fail with ErrClosed — never run after, never hang, never run inline
// on a closed pool.
func TestConcurrentCloseAndDo(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		r := New(2)
		var ran atomic.Int32
		const callers = 8
		var wg sync.WaitGroup
		errs := make([]error, callers)
		for i := 0; i < callers; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, errs[i] = r.Do(nil, "", PriGrid, func() (any, error) {
					ran.Add(1)
					return nil, nil
				})
			}()
		}
		closeDone := make(chan struct{})
		go func() {
			r.Close()
			close(closeDone)
		}()
		wg.Wait()
		select {
		case <-closeDone:
		case <-time.After(5 * time.Second):
			t.Fatal("Close hung against concurrent Do")
		}
		ranAtClose := ran.Load()
		okCalls := int32(0)
		for _, err := range errs {
			switch {
			case err == nil:
				okCalls++
			case errors.Is(err, ErrClosed):
			default:
				t.Fatalf("unexpected Do error: %v", err)
			}
		}
		if okCalls != ranAtClose {
			t.Fatalf("%d Do calls succeeded but %d tasks ran", okCalls, ranAtClose)
		}
		if got := ran.Load(); got != ranAtClose {
			t.Fatalf("task ran after Close returned (%d -> %d)", ranAtClose, got)
		}
	}
}

func TestDoWithCancelledContextNeverRuns(t *testing.T) {
	r := New(1)
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.Do(ctx, "", PriGrid, func() (any, error) {
		t.Error("task ran under a pre-cancelled context")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCancelAbandonsWaitWhileTaskKeepsResultForOthers(t *testing.T) {
	r := New(1)
	defer r.Close()
	release := make(chan struct{})
	started := make(chan struct{})

	// First caller holds the only worker.
	var bg sync.WaitGroup
	bg.Add(1)
	go func() {
		defer bg.Done()
		r.Do(nil, "slow", PriEval, func() (any, error) {
			close(started)
			<-release
			return 7, nil
		})
	}()
	<-started

	// Second caller attaches to the same key, then cancels its wait.
	ctx, cancel := context.WithCancel(context.Background())
	waitErr := make(chan error, 1)
	go func() {
		_, err := r.Do(ctx, "slow", PriEval, func() (any, error) { return nil, nil })
		waitErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it attach
	cancel()
	select {
	case err := <-waitErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("detached waiter got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}

	// The original execution is unaffected.
	close(release)
	bg.Wait()
	if got := r.Stats().Ran; got != 1 {
		t.Fatalf("ran = %d, want 1", got)
	}
}

// TestQueuedTasksSkippedOnCancelDrainInBoundedTime pins the drain
// property SIGINT handling relies on: a long queue of cancelled work
// completes without executing anything.
func TestQueuedTasksSkippedOnCancelDrainInBoundedTime(t *testing.T) {
	r := New(1)
	defer r.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(1)
	go func() {
		defer bg.Done()
		r.Do(nil, "", PriEval, func() (any, error) {
			close(started)
			<-block
			return nil, nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int32
	const queued = 64
	var wg sync.WaitGroup
	var cancelErrs atomic.Int32
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := r.Do(ctx, "", PriGrid, func() (any, error) {
				executed.Add(1)
				// A real grid cell would burn seconds here; executing any
				// of these after the cancel would blow the drain bound.
				time.Sleep(time.Second)
				return nil, nil
			})
			if errors.Is(err, context.Canceled) {
				cancelErrs.Add(1)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the queue fill behind the blocker
	cancel()
	close(block)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled queue did not drain in bounded time")
	}
	if got := executed.Load(); got != 0 {
		t.Fatalf("%d queued tasks executed after the cancel, want 0", got)
	}
	if got := cancelErrs.Load(); got != queued {
		t.Fatalf("%d callers saw context.Canceled, want %d", got, queued)
	}
	bg.Wait()
}
