// Package kernel models GPGPU applications as parameterized per-warp
// instruction and address streams.
//
// The paper runs CUDA benchmarks from Rodinia, Parboil, CUDA SDK, and SHOC
// on a GPGPU-Sim-based framework. This repository cannot execute CUDA, so
// each application is replaced by a synthetic kernel whose memory behaviour
// is governed by a small set of knobs: memory-instruction ratio (the
// paper's r_m), per-warp working set and access pattern (spatial stride,
// random fraction, divergence/coalescing degree), an application-shared
// region exercising the L2, and a store fraction. Cache miss rates, DRAM
// row locality, attained bandwidth, and their dependence on TLP all emerge
// from these streams interacting with the cache/DRAM models rather than
// being scripted — which is what the paper's mechanism needs to observe.
package kernel

import (
	"fmt"

	"ebm/internal/stats"
)

// Params describes one application's synthetic behaviour.
type Params struct {
	Name string

	// Rm is the fraction of instructions that are memory instructions
	// (the paper's r_m; arithmetic intensity is (1-Rm)/Rm).
	Rm float64

	// ALUDelay is the issue-to-ready latency of a compute instruction in
	// core cycles: 1 models fully independent (pipelined) arithmetic,
	// larger values model dependent chains with low ILP.
	ALUDelay int

	// CoalesceLines is the number of distinct cache lines one warp memory
	// instruction touches after coalescing: 1 is fully coalesced, up to
	// SIMT width for fully divergent access.
	CoalesceLines int

	// StepBytes is how far the warp's sequential pointer advances per
	// memory instruction. StepBytes < CoalesceLines*LineBytes yields
	// spatial reuse of lines across consecutive instructions.
	StepBytes int

	// PrivateWS is the per-warp private working set in bytes; the warp
	// walks it circularly (sequential portion) or samples it uniformly
	// (random portion, PrivRandom).
	PrivateWS  int
	PrivRandom float64

	// SharedWS is an application-wide region (bytes) all warps share —
	// lookup tables, graph structure, halos. SharedFrac is the
	// probability a memory instruction targets it; SharedSeq selects a
	// per-warp sequential walk instead of uniform sampling.
	SharedWS   int
	SharedFrac float64
	SharedSeq  bool

	// WriteFrac is the probability a memory instruction is a store.
	// Stores are write-through fire-and-forget: they consume bandwidth
	// but do not stall the warp.
	WriteFrac float64

	// KernelInsts, when non-zero, is the application-level instruction
	// count per kernel launch; crossing it triggers a kernel-relaunch
	// event (the paper restarts PBS on every relaunch).
	KernelInsts uint64

	// Phases optionally lists alternate behavioural parameter sets the
	// application cycles through at kernel boundaries (launch 0 runs the
	// base parameters, launch 1 Phases[0], and so on, round robin).
	// Real multi-kernel applications change their memory behaviour
	// between kernels, which is the dynamic interference PBS re-searches
	// against. Each phase must keep the base working-set sizes (the
	// address-space layout is fixed at construction).
	Phases []Params

	// Seed decorrelates applications from each other.
	Seed uint64
}

// Validate reports an error for out-of-range parameters.
func (p *Params) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("kernel: empty name")
	case p.Rm <= 0 || p.Rm > 1:
		return fmt.Errorf("kernel %s: Rm %v out of (0,1]", p.Name, p.Rm)
	case p.ALUDelay < 1:
		return fmt.Errorf("kernel %s: ALUDelay %d < 1", p.Name, p.ALUDelay)
	case p.CoalesceLines < 1 || p.CoalesceLines > 32:
		return fmt.Errorf("kernel %s: CoalesceLines %d out of [1,32]", p.Name, p.CoalesceLines)
	case p.StepBytes < 1:
		return fmt.Errorf("kernel %s: StepBytes %d < 1", p.Name, p.StepBytes)
	case p.PrivateWS < 128:
		return fmt.Errorf("kernel %s: PrivateWS %d < one line", p.Name, p.PrivateWS)
	case p.PrivRandom < 0 || p.PrivRandom > 1:
		return fmt.Errorf("kernel %s: PrivRandom %v out of [0,1]", p.Name, p.PrivRandom)
	case p.SharedFrac < 0 || p.SharedFrac > 1:
		return fmt.Errorf("kernel %s: SharedFrac %v out of [0,1]", p.Name, p.SharedFrac)
	case p.SharedFrac > 0 && p.SharedWS < 128:
		return fmt.Errorf("kernel %s: SharedFrac set but SharedWS %d < one line", p.Name, p.SharedWS)
	case p.WriteFrac < 0 || p.WriteFrac > 1:
		return fmt.Errorf("kernel %s: WriteFrac %v out of [0,1]", p.Name, p.WriteFrac)
	}
	for i := range p.Phases {
		ph := &p.Phases[i]
		if ph.Name == "" {
			ph.Name = fmt.Sprintf("%s#%d", p.Name, i+1)
		}
		if len(ph.Phases) != 0 {
			return fmt.Errorf("kernel %s: phases cannot nest", p.Name)
		}
		if ph.PrivateWS != p.PrivateWS || ph.SharedWS != p.SharedWS {
			return fmt.Errorf("kernel %s: phase %d changes working-set sizes", p.Name, i)
		}
		if err := ph.Validate(); err != nil {
			return fmt.Errorf("kernel %s: phase %d: %w", p.Name, i, err)
		}
	}
	return nil
}

// ComputeRun returns the mean number of compute instructions between
// memory instructions.
func (p *Params) ComputeRun() float64 {
	return (1 - p.Rm) / p.Rm
}

// Inst is one warp instruction. For memory instructions, Lines lists the
// coalesced line addresses it touches.
type Inst struct {
	IsMem bool
	Write bool
	Lines []uint64
}

// Address-space layout: each application owns a disjoint 1<<40 region so
// co-scheduled applications never alias in the shared L2.
const (
	appSpaceBits   = 40
	privRegionBase = 1 << 32 // private regions start here within the app space
)

// AppBase returns the base address of application app's address space.
func AppBase(app int) uint64 { return uint64(app+1) << appSpaceBits }

// WarpStream generates the deterministic instruction stream of one warp.
type WarpStream struct {
	p         *Params
	lineBytes uint64
	rng       *stats.RNG

	privBase  uint64
	privSize  uint64 // line-aligned
	shBase    uint64
	shSize    uint64
	seqPtr    uint64
	shPtr     uint64
	compLeft  int
	runBase   int // integer part of ComputeRun
	runFrac   float64
	lines     [32]uint64
	cur       Inst
	curValid  bool
	generated uint64 // instructions handed out (telemetry/tests)
}

// NewWarpStream builds the stream for globalWarp (unique per app across all
// cores) of application appID. lineBytes is the cache line size.
func NewWarpStream(p *Params, appID, globalWarp, lineBytes int) *WarpStream {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	lb := uint64(lineBytes)
	alignUp := func(x uint64) uint64 {
		if x < lb {
			return lb
		}
		return (x / lb) * lb
	}
	base := AppBase(appID)
	privSize := alignUp(uint64(p.PrivateWS))
	shSize := alignUp(uint64(p.SharedWS))
	if p.SharedFrac == 0 {
		shSize = lb
	}
	root := stats.NewRNG(p.Seed ^ (uint64(appID)+1)*0x9E3779B97F4A7C15)
	run := p.ComputeRun()
	s := &WarpStream{
		p:         p,
		lineBytes: lb,
		rng:       root.Split(uint64(globalWarp)),
		privBase:  base + privRegionBase + uint64(globalWarp)*privSize,
		privSize:  privSize,
		shBase:    base,
		shSize:    shSize,
		runBase:   int(run),
		runFrac:   run - float64(int(run)),
	}
	// Stagger warps within their walk so that co-resident warps do not
	// march in lockstep (real kernels are skewed by scheduling).
	s.seqPtr = (s.rng.Uint64() % (privSize / lb)) * lb
	s.shPtr = (s.rng.Uint64() % (shSize / lb)) * lb
	s.compLeft = s.rng.Intn(s.runBase + 1)
	return s
}

// Current returns the next instruction without consuming it; repeated
// calls return the same instruction until Advance. This lets the core
// retry issue on structural stalls (full MSHRs, full inject queues)
// without perturbing the stream.
func (s *WarpStream) Current() *Inst {
	if !s.curValid {
		s.generate()
		s.curValid = true
		s.generated++
	}
	return &s.cur
}

// Advance consumes the current instruction.
func (s *WarpStream) Advance() { s.curValid = false }

// Generated returns how many instructions have been handed out.
func (s *WarpStream) Generated() uint64 { return s.generated }

// ALUDelay returns the compute issue-to-ready latency of the kernel.
func (s *WarpStream) ALUDelay() int { return s.p.ALUDelay }

// Params returns the kernel parameters driving this stream.
func (s *WarpStream) Params() *Params { return s.p }

// SetPhase switches the stream to a new behavioural parameter set at a
// kernel boundary. The working-set sizes must match the construction-time
// layout (enforced by Params.Validate on phased applications); walk
// pointers and the random stream carry over so the switch is seamless.
func (s *WarpStream) SetPhase(p *Params) {
	s.p = p
	run := p.ComputeRun()
	s.runBase = int(run)
	s.runFrac = run - float64(int(run))
	if s.compLeft > s.runBase+1 {
		s.compLeft = s.runBase
	}
	s.curValid = false
}

func (s *WarpStream) generate() {
	if s.compLeft > 0 {
		s.compLeft--
		s.cur.IsMem = false
		s.cur.Write = false
		s.cur.Lines = nil
		return
	}
	// Schedule the next compute run, dithering the fractional part so the
	// long-run memory ratio matches Rm exactly in expectation.
	s.compLeft = s.runBase
	if s.rng.Float64() < s.runFrac {
		s.compLeft++
	}

	s.cur.IsMem = true
	s.cur.Write = s.rng.Bool(s.p.WriteFrac)
	n := s.p.CoalesceLines
	lines := s.lines[:0]

	if s.p.SharedFrac > 0 && s.rng.Bool(s.p.SharedFrac) {
		if s.p.SharedSeq {
			for i := 0; i < n; i++ {
				off := (s.shPtr + uint64(i)*s.lineBytes) % s.shSize
				lines = append(lines, s.shBase+off-off%s.lineBytes)
			}
			s.shPtr = (s.shPtr + uint64(s.p.StepBytes)) % s.shSize
		} else {
			nl := s.shSize / s.lineBytes
			for i := 0; i < n; i++ {
				lines = append(lines, s.shBase+(s.rng.Uint64()%nl)*s.lineBytes)
			}
		}
		s.cur.Lines = lines
		return
	}

	if s.rng.Bool(s.p.PrivRandom) {
		nl := s.privSize / s.lineBytes
		for i := 0; i < n; i++ {
			lines = append(lines, s.privBase+(s.rng.Uint64()%nl)*s.lineBytes)
		}
	} else {
		for i := 0; i < n; i++ {
			off := (s.seqPtr + uint64(i)*s.lineBytes) % s.privSize
			lines = append(lines, s.privBase+off-off%s.lineBytes)
		}
		s.seqPtr = (s.seqPtr + uint64(s.p.StepBytes)) % s.privSize
	}
	s.cur.Lines = lines
}
