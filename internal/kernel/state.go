package kernel

// StreamState is a WarpStream's serializable snapshot. The phase pointer
// is not captured: the simulator re-binds the stream to the right Params
// (via SetPhase with its tracked phase index) before restoring, then this
// state overwrites the pointer-walk and RNG fields SetPhase perturbed.
type StreamState struct {
	RNG       uint64
	SeqPtr    uint64
	ShPtr     uint64
	CompLeft  int
	RunBase   int
	RunFrac   float64
	Generated uint64

	CurValid bool
	CurIsMem bool
	CurWrite bool
	// CurLines is nil for a compute instruction; for a memory instruction
	// it is a copy of the coalesced line list (which in the live stream
	// aliases the stream's own backing array).
	CurLines []uint64
}

// State returns the stream's snapshot.
func (s *WarpStream) State() StreamState {
	st := StreamState{
		RNG:       s.rng.State(),
		SeqPtr:    s.seqPtr,
		ShPtr:     s.shPtr,
		CompLeft:  s.compLeft,
		RunBase:   s.runBase,
		RunFrac:   s.runFrac,
		Generated: s.generated,
		CurValid:  s.curValid,
		CurIsMem:  s.cur.IsMem,
		CurWrite:  s.cur.Write,
	}
	if s.cur.Lines != nil {
		st.CurLines = append([]uint64(nil), s.cur.Lines...)
	}
	return st
}

// SetState restores the stream from a snapshot. The current instruction's
// line list is copied back into the stream's backing array and re-aliased,
// matching the invariant generate() maintains.
func (s *WarpStream) SetState(st StreamState) {
	s.rng.SetState(st.RNG)
	s.seqPtr = st.SeqPtr
	s.shPtr = st.ShPtr
	s.compLeft = st.CompLeft
	s.runBase = st.RunBase
	s.runFrac = st.RunFrac
	s.generated = st.Generated
	s.curValid = st.CurValid
	s.cur = Inst{IsMem: st.CurIsMem, Write: st.CurWrite}
	if st.CurLines != nil {
		n := copy(s.lines[:], st.CurLines)
		s.cur.Lines = s.lines[:n]
	}
}
