package kernel

import (
	"math"
	"testing"
	"testing/quick"
)

func baseParams() Params {
	return Params{
		Name: "T", Rm: 0.25, ALUDelay: 1, CoalesceLines: 2, StepBytes: 128,
		PrivateWS: 4096, PrivRandom: 0.2, SharedWS: 8192, SharedFrac: 0.3,
		WriteFrac: 0.2, Seed: 7,
	}
}

func TestValidateAcceptsSuiteAndBase(t *testing.T) {
	p := baseParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("base params rejected: %v", err)
	}
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("suite app %s invalid: %v", s.Name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	muts := []func(*Params){
		func(p *Params) { p.Name = "" },
		func(p *Params) { p.Rm = 0 },
		func(p *Params) { p.Rm = 1.5 },
		func(p *Params) { p.ALUDelay = 0 },
		func(p *Params) { p.CoalesceLines = 0 },
		func(p *Params) { p.CoalesceLines = 33 },
		func(p *Params) { p.StepBytes = 0 },
		func(p *Params) { p.PrivateWS = 64 },
		func(p *Params) { p.PrivRandom = -0.1 },
		func(p *Params) { p.SharedFrac = 1.1 },
		func(p *Params) { p.SharedFrac = 0.5; p.SharedWS = 0 },
		func(p *Params) { p.WriteFrac = 2 },
	}
	for i, mut := range muts {
		p := baseParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestComputeRun(t *testing.T) {
	p := baseParams()
	p.Rm = 0.25
	if got := p.ComputeRun(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("ComputeRun = %v, want 3", got)
	}
}

func TestStreamDeterminism(t *testing.T) {
	p := baseParams()
	a := NewWarpStream(&p, 0, 5, 128)
	b := NewWarpStream(&p, 0, 5, 128)
	for i := 0; i < 2000; i++ {
		ia, ib := a.Current(), b.Current()
		if ia.IsMem != ib.IsMem || ia.Write != ib.Write || len(ia.Lines) != len(ib.Lines) {
			t.Fatalf("streams diverged at inst %d", i)
		}
		for j := range ia.Lines {
			if ia.Lines[j] != ib.Lines[j] {
				t.Fatalf("addresses diverged at inst %d line %d", i, j)
			}
		}
		a.Advance()
		b.Advance()
	}
}

func TestCurrentIsIdempotentUntilAdvance(t *testing.T) {
	p := baseParams()
	s := NewWarpStream(&p, 0, 0, 128)
	// Skip to a memory instruction.
	for !s.Current().IsMem {
		s.Advance()
	}
	first := append([]uint64(nil), s.Current().Lines...)
	for k := 0; k < 5; k++ {
		again := s.Current()
		if len(again.Lines) != len(first) {
			t.Fatal("Current changed without Advance")
		}
		for j := range first {
			if again.Lines[j] != first[j] {
				t.Fatal("Current lines changed without Advance")
			}
		}
	}
	if s.Generated() == 0 {
		t.Fatal("Generated not counting")
	}
}

func TestMemoryRatioConvergesToRm(t *testing.T) {
	for _, rm := range []float64{0.1, 0.25, 0.4} {
		p := baseParams()
		p.Rm = rm
		s := NewWarpStream(&p, 0, 0, 128)
		mem := 0
		const n = 40000
		for i := 0; i < n; i++ {
			if s.Current().IsMem {
				mem++
			}
			s.Advance()
		}
		got := float64(mem) / n
		if math.Abs(got-rm) > 0.02 {
			t.Errorf("rm=%v: measured %v", rm, got)
		}
	}
}

func TestWriteFractionConverges(t *testing.T) {
	p := baseParams()
	p.WriteFrac = 0.3
	s := NewWarpStream(&p, 0, 0, 128)
	memN, writes := 0, 0
	for i := 0; i < 60000; i++ {
		in := s.Current()
		if in.IsMem {
			memN++
			if in.Write {
				writes++
			}
		}
		s.Advance()
	}
	got := float64(writes) / float64(memN)
	if math.Abs(got-0.3) > 0.03 {
		t.Fatalf("write fraction %v, want ~0.3", got)
	}
}

func TestAddressesStayInRegions(t *testing.T) {
	p := baseParams()
	const app, warp, line = 1, 3, 128
	s := NewWarpStream(&p, app, warp, line)
	base := AppBase(app)
	for i := 0; i < 20000; i++ {
		in := s.Current()
		if in.IsMem {
			if len(in.Lines) != p.CoalesceLines {
				t.Fatalf("inst %d has %d lines, want %d", i, len(in.Lines), p.CoalesceLines)
			}
			for _, a := range in.Lines {
				if a%line != 0 {
					t.Fatalf("unaligned address %#x", a)
				}
				if a < base || a >= AppBase(app+1) {
					t.Fatalf("address %#x escaped app space [%#x,%#x)", a, base, AppBase(app+1))
				}
			}
		}
		s.Advance()
	}
}

func TestPrivateRegionsDisjointAcrossWarps(t *testing.T) {
	p := baseParams()
	p.SharedFrac = 0 // only private traffic
	p.PrivRandom = 1 // sample the whole region
	seen := map[uint64]int{}
	for warp := 0; warp < 4; warp++ {
		s := NewWarpStream(&p, 0, warp, 128)
		for i := 0; i < 5000; i++ {
			in := s.Current()
			if in.IsMem {
				for _, a := range in.Lines {
					if prev, ok := seen[a]; ok && prev != warp {
						t.Fatalf("address %#x shared between warps %d and %d", a, prev, warp)
					}
					seen[a] = warp
				}
			}
			s.Advance()
		}
	}
}

func TestSequentialWalkCoversWorkingSet(t *testing.T) {
	p := baseParams()
	p.SharedFrac = 0
	p.PrivRandom = 0
	p.CoalesceLines = 1
	p.StepBytes = 128
	p.PrivateWS = 2048 // 16 lines
	s := NewWarpStream(&p, 0, 0, 128)
	lines := map[uint64]bool{}
	for i := 0; i < 3000; i++ {
		in := s.Current()
		if in.IsMem {
			lines[in.Lines[0]] = true
		}
		s.Advance()
	}
	if len(lines) != 16 {
		t.Fatalf("sequential walk touched %d distinct lines, want 16", len(lines))
	}
}

func TestSubLineStepRevisitsLines(t *testing.T) {
	// StepBytes < LineBytes yields spatial reuse: consecutive memory
	// instructions hit the same line several times.
	p := baseParams()
	p.SharedFrac = 0
	p.PrivRandom = 0
	p.CoalesceLines = 1
	p.StepBytes = 32 // 4 insts per 128B line
	s := NewWarpStream(&p, 0, 0, 128)
	var prev uint64
	repeats, memN := 0, 0
	for i := 0; i < 8000; i++ {
		in := s.Current()
		if in.IsMem {
			if memN > 0 && in.Lines[0] == prev {
				repeats++
			}
			prev = in.Lines[0]
			memN++
		}
		s.Advance()
	}
	frac := float64(repeats) / float64(memN)
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("line repeat fraction %v, want ~0.75 for step=line/4", frac)
	}
}

func TestSuiteLookups(t *testing.T) {
	names := Names()
	if len(names) != 26 {
		t.Fatalf("suite has %d apps, want 26 (Table IV)", len(names))
	}
	sorted := SortedNames()
	if len(sorted) != 26 {
		t.Fatal("SortedNames wrong length")
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Fatal("SortedNames not sorted")
		}
	}
	for _, n := range names {
		p, ok := ByName(n)
		if !ok || p.Name != n {
			t.Fatalf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName("NOPE"); ok {
		t.Fatal("ByName accepted unknown app")
	}
	// All() returns copies: mutating must not affect the suite.
	all := All()
	all[0].Rm = 0.9999
	p, _ := ByName(all[0].Name)
	if p.Rm == 0.9999 {
		t.Fatal("All() exposed the suite's backing array")
	}
}

func TestSuiteSeedsDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, p := range All() {
		if other, ok := seen[p.Seed]; ok {
			t.Fatalf("apps %s and %s share seed %d", other, p.Name, p.Seed)
		}
		seen[p.Seed] = p.Name
	}
}

func TestAppBaseDisjoint(t *testing.T) {
	f := func(a, b uint8) bool {
		if a == b {
			return true
		}
		// App spaces are disjoint 2^40 regions.
		return AppBase(int(a)) != AppBase(int(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
