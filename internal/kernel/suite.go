// Suite of the 26 GPGPU applications evaluated in the paper (Table IV),
// drawn from Rodinia, Parboil, CUDA SDK, and SHOC. Each is modeled as a
// synthetic kernel whose parameters are chosen to match the qualitative
// behaviour the literature reports for that benchmark (streaming vs
// cache-sensitive, coalesced vs divergent, compute- vs memory-bound) and
// calibrated so the suite spans the paper's four effective-bandwidth
// groups from low (G1) to high (G4). The resulting IPC@bestTLP and
// EB@bestTLP are *measured* by the profiler (internal/profile), not
// asserted here.

package kernel

import "sort"

// seedOf derives a stable per-app seed from its position in the suite.
func seedOf(i int) uint64 { return 0xA11CE<<16 ^ uint64(i+1)*0x1000193 }

// suite lists the application models. Working sets are chosen against the
// Table I cache hierarchy: a 16 KB 4-way L1 per core (128 lines of 128 B)
// and eight 256 KB L2 slices (2 MB total). With two schedulers per core,
// TLP t activates 2t warps per core, so a per-warp working set of W lines
// starts thrashing the L1 near t = 64/W — that is what places each
// application's EB inflection point.
var suite = []Params{
	// --- Streaming, cache-insensitive (EB == BW): the "bully" class. ---
	{Name: "BLK", Rm: 0.20, ALUDelay: 2, CoalesceLines: 4, StepBytes: 512,
		PrivateWS: 256 << 10, WriteFrac: 0.25, KernelInsts: 3 << 20},
	{Name: "TRD", Rm: 0.40, ALUDelay: 1, CoalesceLines: 4, StepBytes: 512,
		PrivateWS: 512 << 10, WriteFrac: 0.33, KernelInsts: 6 << 20},
	{Name: "RED", Rm: 0.45, ALUDelay: 1, CoalesceLines: 4, StepBytes: 512,
		PrivateWS: 512 << 10, WriteFrac: 0.05, KernelInsts: 2 << 20},
	{Name: "SCP", Rm: 0.35, ALUDelay: 2, CoalesceLines: 2, StepBytes: 256,
		PrivateWS: 256 << 10, WriteFrac: 0.15, KernelInsts: 2 << 20},
	{Name: "SCAN", Rm: 0.40, ALUDelay: 2, CoalesceLines: 2, StepBytes: 256,
		PrivateWS: 384 << 10, WriteFrac: 0.45, KernelInsts: 1 << 20},
	{Name: "FWT", Rm: 0.30, ALUDelay: 2, CoalesceLines: 2, StepBytes: 256,
		PrivateWS: 256 << 10, WriteFrac: 0.30, KernelInsts: 2 << 20},

	// --- Streaming with spatial reuse (stencils): modest CMR, high BW. ---
	{Name: "SRAD", Rm: 0.30, ALUDelay: 2, CoalesceLines: 1, StepBytes: 32,
		PrivateWS: 64 << 10, WriteFrac: 0.20, KernelInsts: 2 << 20},
	{Name: "LPS", Rm: 0.28, ALUDelay: 2, CoalesceLines: 1, StepBytes: 32,
		PrivateWS: 32 << 10, SharedWS: 2 << 20, SharedFrac: 0.15, SharedSeq: true,
		WriteFrac: 0.15, KernelInsts: 2 << 20},
	{Name: "LUH", Rm: 0.33, ALUDelay: 2, CoalesceLines: 2, StepBytes: 64,
		PrivateWS: 96 << 10, SharedWS: 2 << 20, SharedFrac: 0.10,
		WriteFrac: 0.25, KernelInsts: 3 << 20},
	{Name: "BP", Rm: 0.30, ALUDelay: 2, CoalesceLines: 1, StepBytes: 64,
		PrivateWS: 64 << 10, SharedWS: 1 << 20, SharedFrac: 0.25, SharedSeq: true,
		WriteFrac: 0.25, KernelInsts: 1 << 20},

	// --- L1-sensitive with tight working sets: sharp EB inflections. ---
	{Name: "BFS", Rm: 0.35, ALUDelay: 2, CoalesceLines: 6, StepBytes: 192,
		PrivateWS: 2 << 10, PrivRandom: 0.45, SharedWS: 8 << 20, SharedFrac: 0.30,
		WriteFrac: 0.10, KernelInsts: 384 << 10},
	{Name: "FFT", Rm: 0.30, ALUDelay: 2, CoalesceLines: 2, StepBytes: 64,
		PrivateWS: 4 << 10, PrivRandom: 0.10, SharedWS: 6 << 20, SharedFrac: 0.30,
		SharedSeq: true, WriteFrac: 0.20, KernelInsts: 1 << 20},
	{Name: "HS", Rm: 0.25, ALUDelay: 3, CoalesceLines: 1, StepBytes: 32,
		PrivateWS: 1 << 10, PrivRandom: 0.05, SharedWS: 3 << 20, SharedFrac: 0.20,
		SharedSeq: true, WriteFrac: 0.15, KernelInsts: 1 << 20},
	{Name: "RAY", Rm: 0.22, ALUDelay: 3, CoalesceLines: 4, StepBytes: 96,
		PrivateWS: 4 << 10, PrivRandom: 0.35, SharedWS: 3 << 20, SharedFrac: 0.20,
		WriteFrac: 0.05, KernelInsts: 2 << 20},
	{Name: "DS", Rm: 0.38, ALUDelay: 2, CoalesceLines: 3, StepBytes: 128,
		PrivateWS: 3 << 10, PrivRandom: 0.30, SharedWS: 4 << 20, SharedFrac: 0.25,
		WriteFrac: 0.20, KernelInsts: 1 << 20},
	{Name: "JPEG", Rm: 0.25, ALUDelay: 1, CoalesceLines: 1, StepBytes: 16,
		PrivateWS: 256 << 10, WriteFrac: 0.20, KernelInsts: 2 << 20},
	{Name: "CONS", Rm: 0.28, ALUDelay: 1, CoalesceLines: 1, StepBytes: 16,
		PrivateWS: 128 << 10, SharedWS: 8 << 10, SharedFrac: 0.20, WriteFrac: 0.15,
		KernelInsts: 2 << 20},

	// --- L2-sensitive: working sets that live in the shared L2. ---
	{Name: "CFD", Rm: 0.35, ALUDelay: 2, CoalesceLines: 4, StepBytes: 256,
		PrivateWS: 8 << 10, PrivRandom: 0.20, SharedWS: 1536 << 10, SharedFrac: 0.45,
		WriteFrac: 0.20, KernelInsts: 3 << 20},
	{Name: "SC", Rm: 0.40, ALUDelay: 2, CoalesceLines: 4, StepBytes: 128,
		PrivateWS: 4 << 10, PrivRandom: 0.25, SharedWS: 1 << 20, SharedFrac: 0.50,
		WriteFrac: 0.10, KernelInsts: 2 << 20},
	{Name: "HISTO", Rm: 0.35, ALUDelay: 2, CoalesceLines: 4, StepBytes: 512,
		PrivateWS: 128 << 10, SharedWS: 256 << 10, SharedFrac: 0.55,
		WriteFrac: 0.40, KernelInsts: 1 << 20},
	{Name: "QTC", Rm: 0.32, ALUDelay: 3, CoalesceLines: 5, StepBytes: 256,
		PrivateWS: 16 << 10, PrivRandom: 0.40, SharedWS: 2560 << 10, SharedFrac: 0.35,
		WriteFrac: 0.10, KernelInsts: 1 << 20},

	// --- Compute-bound / low-intensity: small memory appetites. ---
	{Name: "LIB", Rm: 0.08, ALUDelay: 1, CoalesceLines: 1, StepBytes: 128,
		PrivateWS: 64 << 10, WriteFrac: 0.10, KernelInsts: 3 << 20},
	{Name: "LUD", Rm: 0.15, ALUDelay: 6, CoalesceLines: 2, StepBytes: 64,
		PrivateWS: 2 << 10, WriteFrac: 0.20, KernelInsts: 384 << 10},
	{Name: "NW", Rm: 0.20, ALUDelay: 8, CoalesceLines: 2, StepBytes: 128,
		PrivateWS: 4 << 10, PrivRandom: 0.15, WriteFrac: 0.25, KernelInsts: 512 << 10},
	{Name: "SAD", Rm: 0.25, ALUDelay: 2, CoalesceLines: 1, StepBytes: 32,
		PrivateWS: 8 << 10, WriteFrac: 0.10, KernelInsts: 2 << 20},

	// --- Pathological: uncoalesced random updates over a huge region. ---
	{Name: "GUPS", Rm: 0.50, ALUDelay: 1, CoalesceLines: 8, StepBytes: 1024,
		PrivateWS: 4 << 20, PrivRandom: 1.0, WriteFrac: 0.50, KernelInsts: 1 << 20},
}

func init() {
	for i := range suite {
		suite[i].Seed = seedOf(i)
		if err := suite[i].Validate(); err != nil {
			panic(err)
		}
	}
}

// Names returns the suite's application names in suite order.
func Names() []string {
	out := make([]string, len(suite))
	for i := range suite {
		out[i] = suite[i].Name
	}
	return out
}

// SortedNames returns the application names in lexical order.
func SortedNames() []string {
	out := Names()
	sort.Strings(out)
	return out
}

// ByName returns a copy of the named application's parameters and whether
// it exists.
func ByName(name string) (Params, bool) {
	for _, p := range suite {
		if p.Name == name {
			return p, true
		}
	}
	return Params{}, false
}

// All returns a copy of the full suite.
func All() []Params {
	return append([]Params(nil), suite...)
}
