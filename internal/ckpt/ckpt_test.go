package ckpt

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"ebm/internal/config"
	"ebm/internal/faultinject"
	"ebm/internal/metrics"
	"ebm/internal/obs"
	"ebm/internal/resilience"
	"ebm/internal/spec"
	"ebm/internal/workload"
)

// testSpec is a mixed two-app PBS run on a reduced machine: large
// enough to exercise the search state machine across several windows,
// small enough that the suite forks and re-runs it many times.
func testSpec(total uint64) spec.RunSpec {
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.NumMemPartitions = 2
	return spec.RunSpec{
		Config:             cfg,
		Apps:               workload.MustMake("BLK", "TRD").Apps,
		Scheme:             spec.PBS(metrics.ObjWS),
		TotalCycles:        total,
		WarmupCycles:       2_000,
		WindowCycles:       2_000,
		DesignatedSampling: true,
	}
}

func quietWarnf(t *testing.T) {
	t.Helper()
	old := Warnf
	Warnf = func(string, ...any) {}
	t.Cleanup(func() { Warnf = old })
}

func ckptFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names) // w%06d zero-pads, so lexicographic == by window
	return names
}

func TestPrefixKeySharedAcrossHorizons(t *testing.T) {
	k1 := PrefixKey(testSpec(12_000))
	if len(k1) != 16 {
		t.Fatalf("key %q not 16 hex digits", k1)
	}
	if k2 := PrefixKey(testSpec(99_000)); k2 != k1 {
		t.Fatalf("runs differing only in TotalCycles keyed apart: %s vs %s", k1, k2)
	}
	warm := testSpec(12_000)
	warm.WarmupCycles = 4_000
	if PrefixKey(warm) == k1 {
		t.Fatal("WarmupCycles must stay in the prefix key: the warmup accumulators are engine state")
	}
	sch := testSpec(12_000)
	sch.Scheme = spec.MaxTLP()
	if PrefixKey(sch) == k1 {
		t.Fatal("different schemes share a prefix key")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	payload := []byte("the quick brown snapshot")
	b := encodeEnvelope("0123456789abcdef", 42, payload)
	key, window, got, err := decodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if key != "0123456789abcdef" || window != 42 || string(got) != string(payload) {
		t.Fatalf("round trip lost data: key=%s window=%d payload=%q", key, window, got)
	}

	// Every corruption mode must decode as an error, never as data.
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)-3] },
		"bit flip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		},
		"bad magic": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			copy(c, "NOPE")
			return c
		},
		"empty": func([]byte) []byte { return nil },
	} {
		if _, _, _, err := decodeEnvelope(mutate(append([]byte(nil), b...))); err == nil {
			t.Errorf("%s envelope decoded without error", name)
		}
	}
}

// TestExecuteForksBitIdentical is the store-level bit-identity contract:
// a run forked from a persisted checkpoint — at the same horizon or a
// longer one — must return exactly the Result of a cold run.
func TestExecuteForksBitIdentical(t *testing.T) {
	ctx := context.Background()
	rs := testSpec(12_000)
	golden, err := Execute(ctx, nil, rs) // nil store == plain cold execution
	if err != nil {
		t.Fatal(err)
	}

	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.SetEvery(1)

	cold, err := Execute(ctx, st, rs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, golden) {
		t.Fatal("cold run through the store diverged from plain execution")
	}
	s := st.Stats()
	if s.Misses != 1 || s.Forks != 0 {
		t.Fatalf("cold run stats = %+v, want one miss and no forks", s)
	}
	if s.Writes == 0 || s.BytesWritten == 0 {
		t.Fatalf("cold run persisted nothing: %+v", s)
	}

	// Same horizon again: forks from the run-end checkpoint, executes
	// zero cycles, and must still reproduce the golden result exactly.
	again, err := Execute(ctx, st, rs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, golden) {
		t.Fatal("run-end fork diverged from golden")
	}
	s = st.Stats()
	if s.Hits != 1 || s.Forks != 1 {
		t.Fatalf("repeat run stats = %+v, want one hit and one fork", s)
	}

	// Longer horizon: shares the prefix, forks from the deepest
	// checkpoint, and simulates only the remaining cycles.
	long := testSpec(16_000)
	goldenLong, err := Execute(ctx, nil, long)
	if err != nil {
		t.Fatal(err)
	}
	forkedLong, err := Execute(ctx, st, long)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(forkedLong, goldenLong) {
		t.Fatal("longer-horizon fork diverged from its cold run")
	}
	if s = st.Stats(); s.Forks != 2 {
		t.Fatalf("longer-horizon run did not fork: %+v", s)
	}
}

// TestCorruptCheckpointLadder pins the degradation ladder: a corrupt
// deepest checkpoint falls back to the next-deepest; all-corrupt falls
// back to cold; both still produce bit-identical results.
func TestCorruptCheckpointLadder(t *testing.T) {
	ctx := context.Background()
	rs := testSpec(12_000)
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.SetEvery(1)
	golden, err := Execute(ctx, st, rs)
	if err != nil {
		t.Fatal(err)
	}
	files := ckptFiles(t, dir)
	if len(files) == 0 {
		t.Fatal("prewarm wrote no checkpoints")
	}

	// Tear the deepest checkpoint: the fork must come from the next one.
	if err := os.WriteFile(files[len(files)-1], []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(ctx, st2, rs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, golden) {
		t.Fatal("fork from next-deepest checkpoint diverged")
	}
	if s := st2.Stats(); s.Corrupt == 0 || s.Forks != 1 {
		t.Fatalf("ladder stats = %+v, want a counted corrupt skip and one fork", s)
	}

	// Tear everything: the lookup is a miss and the run goes cold.
	for _, f := range files {
		if err := os.WriteFile(f, []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err = Execute(ctx, st3, rs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, golden) {
		t.Fatal("all-corrupt cold fallback diverged")
	}
	if s := st3.Stats(); s.Misses != 1 || s.Forks != 0 {
		t.Fatalf("all-corrupt stats = %+v, want a miss and no forks", s)
	}
}

// TestRestorePayloadFailureDegradesCold covers the rung below envelope
// corruption: a checksum-valid envelope whose payload is not a usable
// snapshot. The restore fails, the simulator is rebuilt, the run is
// cold — and correct.
func TestRestorePayloadFailureDegradesCold(t *testing.T) {
	ctx := context.Background()
	rs := testSpec(8_000)
	golden, err := Execute(ctx, nil, rs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.SetEvery(0) // read-only: keep the poisoned entry the only one
	if err := (&Store{dir: st.dir}).Put(PrefixKey(rs), 3, []byte("not a snapshot")); err != nil {
		t.Fatal(err)
	}
	res, err := Execute(ctx, st, rs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, golden) {
		t.Fatal("cold fallback after restore failure diverged")
	}
	if s := st.Stats(); s.Hits != 1 || s.Forks != 0 || s.Corrupt != 1 {
		t.Fatalf("stats = %+v, want hit=1 fork=0 corrupt=1", s)
	}
}

// TestEvictionNeverExceedsCap is the byte-budget invariant: after every
// Put the directory fits the cap, and evicted (oldest) windows
// re-materialize as misses.
func TestEvictionNeverExceedsCap(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1024)
	one := int64(len(encodeEnvelope("k", 1, payload)))
	cap := 3*one + one/2 // room for three files, not four
	st.SetMaxBytes(cap)

	key := "deadbeefdeadbeef"
	for w := uint64(1); w <= 8; w++ {
		if err := st.Put(key, w, payload); err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, f := range ckptFiles(t, dir) {
			info, err := os.Stat(f)
			if err != nil {
				t.Fatal(err)
			}
			total += info.Size()
		}
		if total > cap {
			t.Fatalf("after window %d the store holds %d bytes, cap %d", w, total, cap)
		}
	}
	s := st.Stats()
	if s.Evictions == 0 {
		t.Fatal("cap was honoured without a single counted eviction")
	}
	if s.Writes != 8 {
		t.Fatalf("writes = %d, want 8", s.Writes)
	}

	// The oldest windows are gone: asking for a fork point at their
	// depth is a miss, while the surviving deepest window still serves.
	if _, _, ok := st.Best(key, 2); ok {
		t.Fatal("evicted windows still served a fork point")
	}
	if _, w, ok := st.Best(key, 8); !ok || w != 8 {
		t.Fatalf("deepest surviving checkpoint not served: ok=%v w=%d", ok, w)
	}
}

// TestConcurrentForksFromOnePrefix exercises the read singleflight and
// the put-if-absent write path under -race: many goroutines forking the
// same prefix concurrently all land on the golden result.
func TestConcurrentForksFromOnePrefix(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.SetEvery(1)
	if _, err := Execute(ctx, st, testSpec(8_000)); err != nil {
		t.Fatal(err) // prewarm: checkpoints through window 4
	}

	long := testSpec(12_000)
	golden, err := Execute(ctx, nil, long)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	diverged := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Execute(ctx, st, long)
			if err != nil {
				errs[i] = err
				return
			}
			diverged[i] = !reflect.DeepEqual(res, golden)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("fork %d: %v", i, errs[i])
		}
		if diverged[i] {
			t.Fatalf("fork %d diverged from golden", i)
		}
	}
	if s := st.Stats(); s.Forks != n {
		t.Fatalf("forks = %d, want %d", s.Forks, n)
	}
}

// TestFaultInjectionDegradesToCold drives the store through the chaos
// seam: total read-fault injection turns every lookup into a cold run,
// total write-fault injection loses every checkpoint after retries —
// and in both regimes the results stay bit-identical.
func TestFaultInjectionDegradesToCold(t *testing.T) {
	quietWarnf(t)
	ctx := context.Background()
	rs := testSpec(8_000)
	golden, err := Execute(ctx, nil, rs)
	if err != nil {
		t.Fatal(err)
	}

	// Read faults: a prewarmed store whose every read is failed.
	dir := t.TempDir()
	pre, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pre.SetEvery(1)
	if _, err := Execute(ctx, pre, rs); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.SetHooks(faultinject.New(faultinject.Config{Seed: 7, CacheReadErrProb: 1}))
	res, err := Execute(ctx, st, rs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, golden) {
		t.Fatal("read-faulted run diverged from golden")
	}
	if s := st.Stats(); s.Forks != 0 || s.Misses != 1 || s.Corrupt == 0 {
		t.Fatalf("read-fault stats = %+v, want forced miss with counted corrupts", s)
	}

	// Write faults: nothing persists, the run itself is untouched.
	wdir := t.TempDir()
	wst, err := Open(wdir)
	if err != nil {
		t.Fatal(err)
	}
	wst.SetEvery(1)
	wst.SetHooks(faultinject.New(faultinject.Config{Seed: 7, CacheWriteErrProb: 1}))
	wst.SetResilience(resilience.Policy{
		Attempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond,
	}, nil)
	res, err = Execute(ctx, wst, rs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, golden) {
		t.Fatal("write-faulted run diverged from golden")
	}
	if s := wst.Stats(); s.WriteFails == 0 || s.Writes != 0 {
		t.Fatalf("write-fault stats = %+v, want counted write failures and no writes", s)
	}
	if files := ckptFiles(t, wdir); len(files) != 0 {
		t.Fatalf("write-faulted store left %d files on disk", len(files))
	}
}

func TestNilStoreAndRunnerSeam(t *testing.T) {
	var st *Store
	st.SetEvery(1)
	st.SetMaxBytes(10)
	st.SetHooks(nil)
	st.SetResilience(resilience.Policy{}, nil)
	st.Instrument(obs.NewRegistry())
	if err := st.Put("k", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.Best("k", 9); ok {
		t.Fatal("nil store served a checkpoint")
	}
	if st.Stats() != (Stats{}) {
		t.Fatal("nil store has stats")
	}
	if Runner(nil, testSpec(8_000)) != nil {
		t.Fatal("Runner(nil) must return nil so RunCached executes the spec directly")
	}
}

func TestInstrumentPublishesCounters(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("cafe", 1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	st.Best("cafe", 5)
	reg := obs.NewRegistry()
	st.Instrument(reg)
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"ebm_ckpt_hits_total", "ebm_ckpt_misses_total", "ebm_ckpt_forks_total",
		"ebm_ckpt_write_evictions_total", "ebm_ckpt_bytes_written_total",
	} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("registry text missing %s", name)
		}
	}
}
