// Package ckpt is the prefix-checkpoint store: it persists engine
// snapshots taken at sampling-window boundaries and forks later runs
// from the deepest compatible one, making cold sweeps sub-linear.
//
// The insight it monetizes lives in spec.RunSpec.PrefixCanonical:
// nothing in the engine reads TotalCycles except the cycle-loop bound,
// so every run in a grid sweep that differs only in horizon executes
// the same deterministic prefix bit-for-bit. A checkpoint written at
// window w of one such run is therefore a valid fork point for all of
// them: restore, run the remaining cycles, and the Result is exactly
// what an uninterrupted run would have produced (proven by the golden
// bit-identity suite in internal/sim).
//
// Failure handling is a degradation ladder, never an abort and never a
// wrong result: a torn or corrupt envelope is skipped in favour of the
// next-deepest checkpoint; no usable checkpoint is a miss; a payload
// that fails to restore falls back to a fresh (cold) simulator; a
// snapshot that cannot be taken disables further writes for that run;
// a write that cannot be persisted is retried, then warned and
// counted. The store mirrors simcache's discipline throughout:
// nil-safe methods, atomic temp+rename writes, fault-injection hooks,
// and a retry policy with an incident monitor.
package ckpt

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"ebm/internal/faultinject"
	"ebm/internal/obs"
	"ebm/internal/resilience"
	"ebm/internal/runner"
	"ebm/internal/sim"
	"ebm/internal/simcache"
	"ebm/internal/spec"
)

// Warnf surfaces non-fatal checkpoint degradation (a snapshot that
// could not be persisted). Stderr by default; replaceable for tests
// and embedding.
var Warnf = func(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// SchemaVersion invalidates every existing checkpoint when bumped.
// Bump it when the envelope layout or the key derivation changes.
// Engine-behaviour changes are already covered: the prefix key folds
// in simcache.SchemaVersion (bumped with the goldens) and restore
// validates sim.SnapshotVersion inside the payload.
const SchemaVersion = 1

// DefaultEvery is the write cadence: one checkpoint every this many
// sampling windows (plus the run-end window, which makes re-running
// the same spec at the same horizon near-free).
const DefaultEvery = 4

// prefixEnvelope is what PrefixKey hashes: both schema versions
// alongside the prefix-canonical run description.
type prefixEnvelope struct {
	Schema int          `json:"schema"`      // simcache.SchemaVersion: engine behaviour
	Ckpt   int          `json:"ckpt_schema"` // this package's layout
	Run    spec.RunSpec `json:"run"`
}

// PrefixKey returns the content address of a run's deterministic
// prefix: FNV-1a over the prefix-canonical spec JSON (the canonical
// form with TotalCycles cleared). Two runs with equal prefix keys
// execute bit-identically up to the shorter horizon, so they share
// checkpoints.
func PrefixKey(rs spec.RunSpec) string {
	return simcache.HashJSON(prefixEnvelope{
		Schema: simcache.SchemaVersion,
		Ckpt:   SchemaVersion,
		Run:    rs.PrefixCanonical(),
	})
}

// On-disk envelope ("EBCK" format, satellite-documented in DESIGN.md):
//
//	magic "EBCK" | version u8 | key len u8 | key bytes |
//	window u64 BE | payload len u64 BE | payload | FNV-1a u64 BE
//
// The trailing checksum covers every preceding byte, so a torn rename
// target, truncated file, or bit flip decodes as corrupt — which the
// ladder treats as "try the next-deepest checkpoint".
const (
	envelopeMagic   = "EBCK"
	envelopeVersion = 1
)

func encodeEnvelope(key string, window uint64, payload []byte) []byte {
	b := make([]byte, 0, len(envelopeMagic)+2+len(key)+16+len(payload)+8)
	b = append(b, envelopeMagic...)
	b = append(b, envelopeVersion, byte(len(key)))
	b = append(b, key...)
	b = binary.BigEndian.AppendUint64(b, window)
	b = binary.BigEndian.AppendUint64(b, uint64(len(payload)))
	b = append(b, payload...)
	h := fnv.New64a()
	h.Write(b)
	return binary.BigEndian.AppendUint64(b, h.Sum64())
}

func decodeEnvelope(b []byte) (key string, window uint64, payload []byte, err error) {
	fail := func(why string) (string, uint64, []byte, error) {
		return "", 0, nil, fmt.Errorf("ckpt: corrupt envelope: %s", why)
	}
	if len(b) < len(envelopeMagic)+2+16+8 {
		return fail("short file")
	}
	if string(b[:4]) != envelopeMagic {
		return fail("bad magic")
	}
	if b[4] != envelopeVersion {
		return fail(fmt.Sprintf("version %d", b[4]))
	}
	h := fnv.New64a()
	h.Write(b[:len(b)-8])
	if binary.BigEndian.Uint64(b[len(b)-8:]) != h.Sum64() {
		return fail("checksum mismatch")
	}
	keyLen := int(b[5])
	rest := b[6 : len(b)-8]
	if len(rest) < keyLen+16 {
		return fail("short header")
	}
	key = string(rest[:keyLen])
	rest = rest[keyLen:]
	window = binary.BigEndian.Uint64(rest[:8])
	plen := binary.BigEndian.Uint64(rest[8:16])
	rest = rest[16:]
	if uint64(len(rest)) != plen {
		return fail("payload length mismatch")
	}
	return key, window, rest, nil
}

// Stats is a point-in-time snapshot of one store handle's traffic.
type Stats struct {
	Hits         uint64 // lookups that found a usable checkpoint
	Misses       uint64 // lookups with no usable checkpoint
	Writes       uint64 // checkpoints persisted
	Forks        uint64 // runs started from a restored checkpoint
	Corrupt      uint64 // unreadable/torn/foreign entries skipped
	WriteFails   uint64 // persist attempts that failed after retries
	Evictions    uint64 // files removed to honour the byte cap
	BytesWritten uint64 // envelope bytes persisted
}

// Store is a directory of checkpoint files, one per (prefix, window).
// All methods are safe for concurrent use and nil-safe: a nil *Store
// misses every lookup and drops every write, so call sites need no
// "is checkpointing on?" branches.
type Store struct {
	dir      string
	every    uint64 // write cadence in windows; 0 = read-only
	maxBytes int64  // on-disk budget; 0 = unbounded

	hits, misses, writes, forks, corrupt, writeFails, evictions, bytesWritten atomic.Uint64

	// Optional observability handles (nil-safe), set via Instrument.
	hitC, missC, forkC, evictC, bytesC *obs.Counter

	// Resilience wiring, set before use via SetHooks / SetResilience.
	hooks faultinject.Hooks
	retry resilience.Policy
	mon   *resilience.Monitor

	group runner.Group // concurrent forks from one prefix share each read
	mu    sync.Mutex   // serializes write+evict so the cap is an invariant
}

// Open returns a store rooted at dir, creating it if needed, with the
// default write cadence.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return &Store{dir: dir, every: DefaultEvery}, nil
}

// Dir returns the store root ("" for a nil store).
func (st *Store) Dir() string {
	if st == nil {
		return ""
	}
	return st.dir
}

// SetEvery sets the write cadence: a checkpoint every n sampling
// windows (plus the run-end window). n == 0 makes the store read-only:
// existing checkpoints still serve forks, nothing new is written.
// Call before submitting work.
func (st *Store) SetEvery(n uint64) {
	if st == nil {
		return
	}
	st.every = n
}

// SetMaxBytes caps the store's on-disk footprint. After every write the
// oldest files (by modification time) are evicted until the total fits;
// 0 means unbounded. Call before submitting work.
func (st *Store) SetMaxBytes(n int64) {
	if st == nil {
		return
	}
	st.maxBytes = n
}

// SetHooks installs the fault-injection seam (chaos tests, ebsim
// -chaos). Call before submitting work; nil is the production default.
func (st *Store) SetHooks(h faultinject.Hooks) {
	if st == nil {
		return
	}
	st.hooks = h
}

// SetResilience installs the persist retry policy and the incident
// monitor. The zero Policy retries with resilience.DefaultPolicy; a nil
// monitor discards incidents. Call before submitting work.
func (st *Store) SetResilience(p resilience.Policy, mon *resilience.Monitor) {
	if st == nil {
		return
	}
	st.retry = p
	st.mon = mon
}

// Stats returns the handle's traffic counters.
func (st *Store) Stats() Stats {
	if st == nil {
		return Stats{}
	}
	return Stats{
		Hits:         st.hits.Load(),
		Misses:       st.misses.Load(),
		Writes:       st.writes.Load(),
		Forks:        st.forks.Load(),
		Corrupt:      st.corrupt.Load(),
		WriteFails:   st.writeFails.Load(),
		Evictions:    st.evictions.Load(),
		BytesWritten: st.bytesWritten.Load(),
	}
}

// Instrument mirrors the store's traffic into an obs registry:
// ebm_ckpt_hits_total, ebm_ckpt_misses_total, ebm_ckpt_forks_total,
// ebm_ckpt_write_evictions_total, and ebm_ckpt_bytes_written_total.
func (st *Store) Instrument(reg *obs.Registry) {
	if st == nil || reg == nil {
		return
	}
	st.hitC = reg.Counter("ebm_ckpt_hits_total", "runs served a fork point from the checkpoint store")
	st.missC = reg.Counter("ebm_ckpt_misses_total", "checkpoint lookups that fell through to cold execution")
	st.forkC = reg.Counter("ebm_ckpt_forks_total", "simulations forked from a restored checkpoint")
	st.evictC = reg.Counter("ebm_ckpt_write_evictions_total", "checkpoint files evicted to honour the byte cap")
	st.bytesC = reg.Counter("ebm_ckpt_bytes_written_total", "checkpoint envelope bytes persisted")
	st.hitC.Set(st.hits.Load())
	st.missC.Set(st.misses.Load())
	st.forkC.Set(st.forks.Load())
	st.evictC.Set(st.evictions.Load())
	st.bytesC.Set(st.bytesWritten.Load())
}

// Path returns the checkpoint file for a (prefix, window) pair.
func (st *Store) Path(key string, window uint64) string {
	return filepath.Join(st.dir, fmt.Sprintf("%s-w%06d.ckpt", key, window))
}

// Put persists a snapshot payload under (key, window): wrapped in the
// checksummed envelope, written to a temp file, then atomically renamed
// into place. Writes are put-if-absent — checkpoints are deterministic
// functions of their key, so an existing file is already correct — and
// each write is followed by the eviction pass, so the byte cap holds as
// an invariant on return (the just-written file itself is evictable
// when the cap demands it).
func (st *Store) Put(key string, window uint64, payload []byte) error {
	if st == nil {
		return nil
	}
	name := st.Path(key, window)
	if h := st.hooks; h != nil {
		if err := h.CacheWrite(filepath.Base(name)); err != nil {
			return fmt.Errorf("ckpt: write %s: %w", filepath.Base(name), err)
		}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, err := os.Stat(name); err == nil {
		return nil
	}
	b := encodeEnvelope(key, window, payload)
	f, err := os.CreateTemp(st.dir, filepath.Base(name)+".tmp*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ckpt: write %s: %w", filepath.Base(name), err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: close %s: %w", filepath.Base(name), err)
	}
	if err := os.Rename(tmp, name); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: rename %s: %w", filepath.Base(name), err)
	}
	st.writes.Add(1)
	st.bytesWritten.Add(uint64(len(b)))
	st.bytesC.Add(uint64(len(b)))
	st.evictLocked()
	return nil
}

// evictLocked removes the oldest checkpoint files until the store fits
// its byte budget. Caller holds st.mu.
func (st *Store) evictLocked() {
	if st.maxBytes <= 0 {
		return
	}
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return
	}
	type file struct {
		name string
		size int64
		mod  int64
	}
	var files []file
	var total int64
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ckpt") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, file{e.Name(), info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mod != files[j].mod {
			return files[i].mod < files[j].mod
		}
		return files[i].name < files[j].name // deterministic among same-instant writes
	})
	for _, f := range files {
		if total <= st.maxBytes {
			return
		}
		if os.Remove(filepath.Join(st.dir, f.name)) == nil {
			total -= f.size
			st.evictions.Add(1)
			st.evictC.Inc()
		}
	}
}

// Best returns the payload of the deepest usable checkpoint for key at
// or before maxWindow. Candidates are tried deepest-first; a torn,
// corrupt, or foreign file is counted and skipped in favour of the next
// one (the degradation ladder), and exhausting them is a miss.
// Concurrent callers asking for the same file share one read.
func (st *Store) Best(key string, maxWindow uint64) (payload []byte, window uint64, ok bool) {
	return st.best(context.Background(), key, maxWindow)
}

// best is Best with the caller's context, whose provenance trail
// records injected read faults and whose tracer times the ladder walk.
func (st *Store) best(ctx context.Context, key string, maxWindow uint64) (payload []byte, window uint64, ok bool) {
	if st == nil {
		return nil, 0, false
	}
	_, sp := obs.StartSpan(ctx, "ckpt.best", obs.A("key", key))
	defer sp.End()
	type cand struct {
		name   string
		window uint64
	}
	var cands []cand
	ents, err := os.ReadDir(st.dir)
	if err == nil {
		prefix := key + "-w"
		for _, e := range ents {
			name := e.Name()
			if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".ckpt") {
				continue
			}
			w, err := strconv.ParseUint(strings.TrimSuffix(name[len(prefix):], ".ckpt"), 10, 64)
			if err != nil || w > maxWindow {
				continue
			}
			cands = append(cands, cand{name, w})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].window > cands[j].window })
	for _, c := range cands {
		if h := st.hooks; h != nil {
			if err := h.CacheRead(c.name); err != nil {
				obs.TrailFrom(ctx).AddFault("ckpt-read")
				st.corrupt.Add(1)
				continue
			}
		}
		full := filepath.Join(st.dir, c.name)
		v, _, err := st.group.Do("read:"+c.name, func() (any, error) {
			return os.ReadFile(full)
		})
		if err != nil {
			continue // raced with eviction: not corruption, just gone
		}
		gotKey, gotWindow, p, err := decodeEnvelope(v.([]byte))
		if err != nil || gotKey != key || gotWindow != c.window {
			st.corrupt.Add(1)
			continue
		}
		st.hits.Add(1)
		st.hitC.Inc()
		sp.Annotate("window", strconv.FormatUint(c.window, 10))
		return p, c.window, true
	}
	sp.Annotate("miss", "true")
	st.misses.Add(1)
	st.missC.Inc()
	return nil, 0, false
}

// persist writes a snapshot through the retry policy; exhausting the
// retries degrades to an unpersisted checkpoint with a surfaced warning
// and a counted write failure — the simulation itself is untouched.
func (st *Store) persist(ctx context.Context, key string, window uint64, payload []byte) {
	err := st.retry.Retry(ctx, fmt.Sprintf("ckpt:%s:w%d", key, window), st.mon, func() error {
		return st.Put(key, window, payload)
	})
	if err != nil {
		obs.TrailFrom(ctx).AddFault("ckpt-write")
		st.writeFails.Add(1)
		Warnf("ckpt: warning: checkpoint %s w%d not persisted: %v", key, window, err)
	}
}

// sink builds the engine's CkptSink for one run: snapshot at every
// every-th window boundary plus the run-end boundary, skipping windows
// whose file already exists (put-if-absent means the snapshot encode
// cost is skipped too). A snapshot failure propagates, which makes the
// engine disable the sink for the rest of the run; a persist failure
// does not — the store absorbs it as a counted, warned degradation.
func (st *Store) sink(ctx context.Context, key string, totalWindows, every uint64) func(uint64, *sim.Simulator) error {
	return func(window uint64, s *sim.Simulator) error {
		if window%every != 0 && window != totalWindows {
			return nil
		}
		if _, err := os.Stat(st.Path(key, window)); err == nil {
			return nil
		}
		payload, err := s.SnapshotBytes()
		if err != nil {
			return err
		}
		st.persist(ctx, key, window, payload)
		return nil
	}
}

// Execute runs a declarative run description through the checkpoint
// store: fork from the deepest usable checkpoint of the run's prefix
// when one exists, execute cold otherwise, and (unless the store is
// read-only) leave checkpoints behind for the next run that shares the
// prefix. A nil store is plain sim.Execute. Every rung of the failure
// ladder lands on a correct result: a checkpoint whose payload fails to
// restore falls back to a fresh simulator, and a run whose manager
// cannot snapshot simply stops writing.
func Execute(ctx context.Context, st *Store, rs spec.RunSpec) (sim.Result, error) {
	return ExecuteWith(ctx, st, rs, nil)
}

// ExecuteWith is Execute with a hook for adjusting the engine options
// after FromSpec (fault-injection hooks, a watchdog — ebsim's -chaos
// composes them with checkpointing this way). mutate runs before the
// checkpoint sink is attached and must not install its own CkptSink.
// A nil store still applies mutate and executes cold.
func ExecuteWith(ctx context.Context, st *Store, rs spec.RunSpec, mutate func(*sim.Options)) (sim.Result, error) {
	every := uint64(0)
	if st != nil {
		every = st.every
	}
	return executeCadence(ctx, st, rs, mutate, every)
}

// executeCadence is ExecuteWith with an explicit write cadence for this
// run (0 disables writes; restores are unaffected).
func executeCadence(ctx context.Context, st *Store, rs spec.RunSpec, mutate func(*sim.Options), every uint64) (sim.Result, error) {
	opts, err := sim.FromSpec(rs)
	if err != nil {
		return sim.Result{}, err
	}
	if mutate != nil {
		mutate(&opts)
	}
	if st == nil {
		s, err := sim.New(opts)
		if err != nil {
			return sim.Result{}, err
		}
		_, ssp := obs.StartSpan(ctx, "simulate", obs.A("from", "cold"))
		defer ssp.End()
		return s.RunContext(ctx)
	}
	key := PrefixKey(rs)
	wc := opts.WindowCycles
	if wc == 0 {
		wc = sim.DefaultWindowCycles
	}
	totalWindows := rs.TotalCycles / wc
	if every != 0 {
		opts.CkptSink = st.sink(ctx, key, totalWindows, every)
	}
	s, err := sim.New(opts)
	if err != nil {
		return sim.Result{}, err
	}
	from := "cold"
	if payload, window, ok := st.best(ctx, key, totalWindows); ok {
		if rerr := s.RestoreBytes(payload); rerr != nil {
			// The envelope was intact but the payload was not (or came
			// from an incompatible engine): the simulator may be half
			// restored, so rebuild it and run cold.
			obs.TrailFrom(ctx).AddFault("ckpt-restore")
			st.corrupt.Add(1)
			s, err = sim.New(opts)
			if err != nil {
				return sim.Result{}, err
			}
		} else {
			st.forks.Add(1)
			st.forkC.Inc()
			obs.TrailFrom(ctx).SetForked(window, SchemaVersion)
			from = fmt.Sprintf("forked@%d", window)
		}
	}
	_, ssp := obs.StartSpan(ctx, "simulate", obs.A("from", from))
	defer ssp.End()
	return s.RunContext(ctx)
}

// Runner adapts a store to simcache.RunCached's run override: the
// returned closure executes rs through the store. A nil store returns
// nil, which RunCached treats as "execute the spec directly" — so call
// sites thread the store through unconditionally.
func Runner(st *Store, rs spec.RunSpec) func(context.Context) (sim.Result, error) {
	if st == nil {
		return nil
	}
	return func(ctx context.Context) (sim.Result, error) {
		return Execute(ctx, st, rs)
	}
}

// RungRunner is Runner specialized for one rung of a successive-halving
// search: it forks from the deepest prefix checkpoint like Runner, but
// writes only the rung's run-end snapshot — the single fork point the
// next rung continues from — instead of the store's periodic cadence.
// final marks the last rung, which no continuation follows: it forks
// but writes nothing. A read-only store (SetEvery(0)) writes nothing
// either way, and a nil store returns nil like Runner.
func RungRunner(st *Store, rs spec.RunSpec, final bool) func(context.Context) (sim.Result, error) {
	if st == nil {
		return nil
	}
	return func(ctx context.Context) (sim.Result, error) {
		every := ^uint64(0) // no periodic writes: only the run-end window fires
		if final || st.every == 0 {
			every = 0
		}
		return executeCadence(ctx, st, rs, nil, every)
	}
}
