package faultinject

import (
	"errors"
	"testing"
	"time"
)

// callSequence drives a fixed hook sequence and returns the error pattern
// it produced: the determinism contract says equal seeds give equal
// patterns.
func callSequence(in *Injector) []bool {
	var out []bool
	for i := 0; i < 50; i++ {
		out = append(out, in.CacheRead("k") != nil)
		out = append(out, in.CacheWrite("k") != nil)
	}
	return out
}

func TestSameSeedSameFaults(t *testing.T) {
	cfg := Config{Seed: 7, CacheReadErrProb: 0.3, CacheWriteErrProb: 0.3}
	a := callSequence(New(cfg))
	b := callSequence(New(cfg))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequences diverge at call %d", i)
		}
	}
	saw := false
	for _, hit := range a {
		saw = saw || hit
	}
	if !saw {
		t.Fatal("probability 0.3 over 100 draws produced no fault")
	}

	c := callSequence(New(Config{Seed: 8, CacheReadErrProb: 0.3, CacheWriteErrProb: 0.3}))
	same := true
	for i := range a {
		same = same && a[i] == c[i]
	}
	if same {
		t.Fatal("different seeds produced identical 100-draw fault sequences")
	}
}

func TestErrorsWrapErrInjected(t *testing.T) {
	in := New(Config{CacheReadErrProb: 1, CacheWriteErrProb: 1})
	if err := in.CacheRead("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("CacheRead error %v does not wrap ErrInjected", err)
	}
	if err := in.CacheWrite("b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("CacheWrite error %v does not wrap ErrInjected", err)
	}
	c := in.Counts()
	if c.ReadErrs != 1 || c.WriteErrs != 1 {
		t.Fatalf("counts = %+v, want one read and one write error", c)
	}
}

func TestMaxTaskPanicsCapsInjectedPanics(t *testing.T) {
	in := New(Config{Seed: 1, TaskPanicProb: 1, MaxTaskPanics: 2})
	panics := 0
	for i := 0; i < 10; i++ {
		func() {
			defer func() {
				if recover() != nil {
					panics++
				}
			}()
			in.TaskStart("t")
		}()
	}
	if panics != 2 {
		t.Fatalf("got %d injected panics, want exactly MaxTaskPanics=2", panics)
	}
	if c := in.Counts(); c.Panics != 2 {
		t.Fatalf("counts.Panics = %d, want 2", c.Panics)
	}
}

func TestWindowBoundaryStallsEveryNth(t *testing.T) {
	in := New(Config{StallEveryWindows: 3, Stall: time.Microsecond})
	for cyc := uint64(0); cyc < 10; cyc++ {
		in.WindowBoundary(cyc)
	}
	if c := in.Counts(); c.Stalls != 3 {
		t.Fatalf("10 windows with StallEveryWindows=3 produced %d stalls, want 3", c.Stalls)
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := New(Config{})
	for i := 0; i < 20; i++ {
		if err := in.CacheRead("k"); err != nil {
			t.Fatal(err)
		}
		if err := in.CacheWrite("k"); err != nil {
			t.Fatal(err)
		}
		in.TaskStart("t") // must not panic
		in.WindowBoundary(uint64(i))
	}
	if c := in.Counts(); c != (Counts{}) {
		t.Fatalf("zero config produced faults: %+v", c)
	}
}

// TestNilInjectorIsInertHooks pins the typed-nil contract: a nil
// *Injector stored in a Hooks interface value (the -chaos-off wiring
// hazard) must inject nothing rather than dereference nil.
func TestNilInjectorIsInertHooks(t *testing.T) {
	var h Hooks = (*Injector)(nil)
	if err := h.CacheRead("k"); err != nil {
		t.Fatalf("CacheRead = %v", err)
	}
	if err := h.CacheWrite("k"); err != nil {
		t.Fatalf("CacheWrite = %v", err)
	}
	h.TaskStart("t")      // must not panic
	h.WindowBoundary(100) // must not panic
}

// TestHeartbeatDropsAndDelays covers the control-plane seam the
// distributed sweep's workers thread their beats through.
func TestHeartbeatDropsAndDelays(t *testing.T) {
	in := New(Config{Seed: 3, HeartbeatDropProb: 1})
	for i := 0; i < 5; i++ {
		err := in.Heartbeat("w")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("drop probability 1 let a beat through: %v", err)
		}
	}
	if c := in.Counts(); c.HeartbeatDrops != 5 {
		t.Fatalf("HeartbeatDrops = %d, want 5", c.HeartbeatDrops)
	}

	in = New(Config{Seed: 3, HeartbeatDelay: 10 * time.Millisecond})
	start := time.Now()
	if err := in.Heartbeat("w"); err != nil {
		t.Fatalf("delay-only config dropped a beat: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("beat returned after %v, want the injected %v delay", d, 10*time.Millisecond)
	}

	if err := (*Injector)(nil).Heartbeat("w"); err != nil {
		t.Fatalf("nil injector dropped a beat: %v", err)
	}
}
