package faultinject

import (
	"fmt"

	"ebm/internal/tlp"
)

// faultyManager interposes the injector's PolicyDecision draw between
// the engine and a real TLP manager, so chaos runs can crash or stall a
// policy mid-sweep and exercise the policy sandbox's recovery paths.
type faultyManager struct {
	inner tlp.Manager
	in    *Injector
	win   uint64
}

// WrapManager returns inner with PolicyDecision drawn before every
// OnSample. A nil injector returns inner unchanged. The wrapper is meant
// to sit *inside* a policy.Guard: the injected panics and stalls then
// surface as sandbox faults rather than crashing the run.
func WrapManager(inner tlp.Manager, in *Injector) tlp.Manager {
	if in == nil {
		return inner
	}
	return &faultyManager{inner: inner, in: in}
}

func (m *faultyManager) Name() string { return m.inner.Name() }

func (m *faultyManager) Initial(numApps int) tlp.Decision { return m.inner.Initial(numApps) }

func (m *faultyManager) OnSample(s tlp.Sample) tlp.Decision {
	m.win++
	m.in.PolicyDecision(m.win)
	return m.inner.OnSample(s)
}

// StateBytes / SetStateBytes delegate checkpointing to the inner manager
// when it supports it; the injector draw itself is stateless apart from
// the decision counter, which is deliberately not checkpointed (fault
// schedules are a property of the run, not of the simulated machine).
func (m *faultyManager) StateBytes() ([]byte, error) {
	if st, ok := m.inner.(tlp.Stater); ok {
		return st.StateBytes()
	}
	return nil, fmt.Errorf("faultinject: manager %q does not support checkpointing", m.inner.Name())
}

func (m *faultyManager) SetStateBytes(b []byte) error {
	if st, ok := m.inner.(tlp.Stater); ok {
		return st.SetStateBytes(b)
	}
	return fmt.Errorf("faultinject: manager %q does not support checkpointing", m.inner.Name())
}
