// Package faultinject is the deterministic fault-injection seam behind
// the resilience layer's chaos tests and ebsim's -chaos mode. Production
// code calls out through the Hooks interface at its natural fault points
// — cache reads and writes, task starts, simulation window boundaries —
// and every call site guards the call with a single pointer-nil branch,
// so a nil Hooks (the production configuration) costs nothing.
//
// The Injector implementation draws every fault decision from one seeded
// math/rand source under a mutex: a given seed and a given sequence of
// hook calls always produce the same faults. Concurrent callers may
// interleave their draws differently between runs, so chaos tests that
// need exact reproducibility either serialize the faulted path or use
// probabilities of 0 and 1, which are order-independent.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected marks a synthetic failure. Degradation paths test against
// it with errors.Is to distinguish injected faults from real ones.
var ErrInjected = errors.New("injected fault")

// Hooks is the seam production code calls at its fault points. All
// methods must be safe for concurrent use. A non-error hook signals a
// fault by panicking (TaskStart) or stalling (WindowBoundary).
type Hooks interface {
	// CacheRead may fail a cache entry read before the file is touched.
	CacheRead(key string) error
	// CacheWrite may fail a cache entry persist before the file is
	// written.
	CacheWrite(key string) error
	// TaskStart runs at the top of a pooled task; it may panic to
	// simulate a crashing simulation.
	TaskStart(label string)
	// WindowBoundary runs once per simulation sampling window; it may
	// sleep to simulate a stuck engine.
	WindowBoundary(cycle uint64)
}

// Config selects which faults an Injector produces and how often.
type Config struct {
	// Seed initializes the decision source; equal seeds give equal fault
	// sequences for equal call sequences.
	Seed int64

	// CacheReadErrProb / CacheWriteErrProb are per-call probabilities of
	// an injected I/O error (0 disables, 1 always fails).
	CacheReadErrProb  float64
	CacheWriteErrProb float64

	// TaskPanicProb is the per-task probability of an injected panic;
	// MaxTaskPanics caps how many tasks are crashed in total (0 means
	// unlimited).
	TaskPanicProb float64
	MaxTaskPanics int

	// StallEveryWindows stalls every Nth WindowBoundary call for Stall
	// (0 disables stalls).
	StallEveryWindows uint64
	Stall             time.Duration

	// SlowIO adds latency to every cache read and write.
	SlowIO time.Duration

	// PolicyPanicProb is the per-decision probability that a WrapManager-
	// wrapped TLP policy panics inside OnSample; MaxPolicyPanics caps the
	// total (0 means unlimited). Exercises the policy sandbox's panic
	// isolation.
	PolicyPanicProb float64
	MaxPolicyPanics int

	// PolicyStallEveryDecisions stalls every Nth wrapped OnSample call for
	// PolicyStall (0 disables). Exercises the sandbox's decision budget.
	PolicyStallEveryDecisions uint64
	PolicyStall               time.Duration

	// HeartbeatDropProb is the per-call probability that a distributed-
	// sweep worker's heartbeat is dropped before it reaches the
	// coordinator; HeartbeatDelay delays every heartbeat send first
	// (a congested control plane). Exercises lease expiry and straggler
	// reassignment in internal/dsweep.
	HeartbeatDropProb float64
	HeartbeatDelay    time.Duration
}

// Counts reports how many faults an Injector has produced.
type Counts struct {
	ReadErrs       uint64
	WriteErrs      uint64
	Panics         uint64
	Stalls         uint64
	PolicyPanics   uint64
	PolicyStalls   uint64
	HeartbeatDrops uint64
}

// Injector implements Hooks with seeded, counted fault decisions.
// All hook methods are nil-receiver-safe no-ops, so a typed-nil
// *Injector stored in a Hooks interface injects nothing instead of
// crashing (call sites should still prefer leaving Hooks nil).
type Injector struct {
	mu        sync.Mutex
	cfg       Config
	rng       *rand.Rand
	windows   uint64
	decisions uint64
	counts    Counts
}

// New returns an Injector drawing decisions from cfg.Seed.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Counts returns a snapshot of the faults produced so far.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// CacheRead fails with probability CacheReadErrProb, after SlowIO.
func (in *Injector) CacheRead(key string) error {
	if in == nil {
		return nil
	}

	in.mu.Lock()
	hit := in.cfg.CacheReadErrProb > 0 && in.rng.Float64() < in.cfg.CacheReadErrProb
	if hit {
		in.counts.ReadErrs++
	}
	slow := in.cfg.SlowIO
	in.mu.Unlock()
	if slow > 0 {
		time.Sleep(slow)
	}
	if hit {
		return fmt.Errorf("faultinject: cache read %s: %w", key, ErrInjected)
	}
	return nil
}

// CacheWrite fails with probability CacheWriteErrProb, after SlowIO.
func (in *Injector) CacheWrite(key string) error {
	if in == nil {
		return nil
	}

	in.mu.Lock()
	hit := in.cfg.CacheWriteErrProb > 0 && in.rng.Float64() < in.cfg.CacheWriteErrProb
	if hit {
		in.counts.WriteErrs++
	}
	slow := in.cfg.SlowIO
	in.mu.Unlock()
	if slow > 0 {
		time.Sleep(slow)
	}
	if hit {
		return fmt.Errorf("faultinject: cache write %s: %w", key, ErrInjected)
	}
	return nil
}

// TaskStart panics with probability TaskPanicProb, at most MaxTaskPanics
// times. The pool's runSafe recovers the panic into a task error.
func (in *Injector) TaskStart(label string) {
	if in == nil {
		return
	}

	in.mu.Lock()
	hit := in.cfg.TaskPanicProb > 0 &&
		(in.cfg.MaxTaskPanics == 0 || in.counts.Panics < uint64(in.cfg.MaxTaskPanics)) &&
		in.rng.Float64() < in.cfg.TaskPanicProb
	if hit {
		in.counts.Panics++
	}
	in.mu.Unlock()
	if hit {
		panic(fmt.Sprintf("faultinject: task %s: injected panic", label))
	}
}

// PolicyDecision draws one wrapped-policy fault: it may stall (every
// PolicyStallEveryDecisions-th call sleeps PolicyStall) and may panic
// (PolicyPanicProb, capped by MaxPolicyPanics). WrapManager calls it
// before delegating each OnSample; it is not part of the Hooks seam.
func (in *Injector) PolicyDecision(window uint64) {
	if in == nil {
		return
	}

	in.mu.Lock()
	in.decisions++
	hit := in.cfg.PolicyPanicProb > 0 &&
		(in.cfg.MaxPolicyPanics == 0 || in.counts.PolicyPanics < uint64(in.cfg.MaxPolicyPanics)) &&
		in.rng.Float64() < in.cfg.PolicyPanicProb
	if hit {
		in.counts.PolicyPanics++
	}
	stall := in.cfg.PolicyStallEveryDecisions > 0 && in.decisions%in.cfg.PolicyStallEveryDecisions == 0
	if stall {
		in.counts.PolicyStalls++
	}
	d := in.cfg.PolicyStall
	in.mu.Unlock()
	if stall && d > 0 {
		time.Sleep(d)
	}
	if hit {
		panic(fmt.Sprintf("faultinject: policy decision at window %d: injected panic", window))
	}
}

// Heartbeat draws one control-plane fault for a distributed-sweep
// worker's heartbeat: every call sleeps HeartbeatDelay, and with
// probability HeartbeatDropProb the send is dropped (the worker skips
// it, exactly as if the datagram were lost). Not part of the Hooks seam;
// internal/dsweep type-asserts for it.
func (in *Injector) Heartbeat(worker string) error {
	if in == nil {
		return nil
	}

	in.mu.Lock()
	hit := in.cfg.HeartbeatDropProb > 0 && in.rng.Float64() < in.cfg.HeartbeatDropProb
	if hit {
		in.counts.HeartbeatDrops++
	}
	d := in.cfg.HeartbeatDelay
	in.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	if hit {
		return fmt.Errorf("faultinject: heartbeat from %s: %w", worker, ErrInjected)
	}
	return nil
}

// WindowBoundary sleeps for Stall on every StallEveryWindows-th call.
func (in *Injector) WindowBoundary(cycle uint64) {
	if in == nil {
		return
	}

	in.mu.Lock()
	in.windows++
	stall := in.cfg.StallEveryWindows > 0 && in.windows%in.cfg.StallEveryWindows == 0
	if stall {
		in.counts.Stalls++
	}
	d := in.cfg.Stall
	in.mu.Unlock()
	if stall && d > 0 {
		time.Sleep(d)
	}
}
