// Package icnt models the on-chip crossbar connecting GPU cores to the
// memory partitions (Table I: one crossbar per direction).
//
// The model captures the two properties that matter for the paper's
// contention study: a fixed traversal latency, and per-output-port
// serialization — each output port delivers flits at one flit per cycle, so
// data-bearing messages (write requests, read replies) occupy a port for
// several cycles and back-pressure builds when many cores target the same
// partition. Switch-internal arbitration (iSLIP) is abstracted away; the
// output port is the bottleneck it converges to.
package icnt

import (
	"fmt"

	"ebm/internal/mem"
)

type pkt struct {
	readyAt uint64
	req     *mem.Request
}

// fifo is a slice-backed queue with an explicit head index so dequeues are
// O(1) without losing the backing array.
type fifo struct {
	items []pkt
	head  int
}

func (f *fifo) push(p pkt) { f.items = append(f.items, p) }

func (f *fifo) len() int { return len(f.items) - f.head }

func (f *fifo) peek() *pkt {
	if f.len() == 0 {
		return nil
	}
	return &f.items[f.head]
}

func (f *fifo) pop() pkt {
	p := f.items[f.head]
	f.items[f.head].req = nil // release for GC
	f.head++
	if f.head == len(f.items) {
		f.items = f.items[:0]
		f.head = 0
	} else if f.head > 1024 && f.head*2 > len(f.items) {
		n := copy(f.items, f.items[f.head:])
		f.items = f.items[:n]
		f.head = 0
	}
	return p
}

// Network is one direction of the crossbar: any input port to any of the
// dsts output ports.
type Network struct {
	latency   int
	flitBytes int
	lineBytes int
	queues    []fifo   // per destination, ordered by readyAt
	portFree  []uint64 // per destination, first cycle the port is free
	inFlight  int
}

// New builds one crossbar direction with dsts output ports. latency is the
// zero-load traversal time in cycles; flitBytes and lineBytes size the
// occupancy of data-bearing messages.
func New(dsts, latency, flitBytes, lineBytes int) *Network {
	if dsts <= 0 || latency < 0 || flitBytes <= 0 || lineBytes <= 0 {
		panic(fmt.Sprintf("icnt: invalid parameters dsts=%d latency=%d flit=%d line=%d",
			dsts, latency, flitBytes, lineBytes))
	}
	return &Network{
		latency:   latency,
		flitBytes: flitBytes,
		lineBytes: lineBytes,
		queues:    make([]fifo, dsts),
		portFree:  make([]uint64, dsts),
	}
}

// Push injects req toward output port dst at cycle now. Delivery time
// accounts for traversal latency and for serialization behind earlier
// traffic to the same port. Push must be called with non-decreasing now.
func (n *Network) Push(dst int, req *mem.Request, now uint64) {
	flits := uint64(req.Flits(n.flitBytes, n.lineBytes))
	arrive := now + uint64(n.latency)
	start := arrive
	if n.portFree[dst] > start {
		start = n.portFree[dst]
	}
	done := start + flits - 1
	n.portFree[dst] = done + 1
	n.queues[dst].push(pkt{readyAt: done, req: req})
	n.inFlight++
}

// Pop removes and returns the next message available at output port dst by
// cycle now, or nil if none has arrived yet.
func (n *Network) Pop(dst int, now uint64) *mem.Request {
	q := &n.queues[dst]
	head := q.peek()
	if head == nil || head.readyAt > now {
		return nil
	}
	p := q.pop()
	n.inFlight--
	return p.req
}

// Pending returns the number of messages queued for output port dst.
func (n *Network) Pending(dst int) int { return n.queues[dst].len() }

// InFlight returns the total number of messages inside the network.
func (n *Network) InFlight() int { return n.inFlight }

// PortBusyUntil returns the first cycle output port dst will be idle; used
// by tests and by congestion telemetry.
func (n *Network) PortBusyUntil(dst int) uint64 { return n.portFree[dst] }
