package icnt

import (
	"testing"
	"testing/quick"

	"ebm/internal/mem"
)

func req(kind mem.Kind, addr uint64) *mem.Request {
	return &mem.Request{Kind: kind, LineAddr: addr}
}

func TestZeroLoadLatency(t *testing.T) {
	n := New(4, 8, 64, 128)
	r := req(mem.ReadReq, 0)
	n.Push(2, r, 100)
	if got := n.Pop(2, 107); got != nil {
		t.Fatal("delivered before latency elapsed")
	}
	if got := n.Pop(2, 108); got != r {
		t.Fatal("not delivered at latency")
	}
	if n.InFlight() != 0 {
		t.Fatalf("inflight = %d after drain", n.InFlight())
	}
}

func TestFlitOccupancy(t *testing.T) {
	// Read request: 1 flit. Reply/write: 1 header + ceil(128/64)=2 data.
	r := req(mem.ReadReq, 0)
	if f := r.Flits(64, 128); f != 1 {
		t.Fatalf("read flits = %d, want 1", f)
	}
	w := req(mem.WriteReq, 0)
	if f := w.Flits(64, 128); f != 3 {
		t.Fatalf("write flits = %d, want 3", f)
	}
	rep := req(mem.ReadReply, 0)
	if f := rep.Flits(32, 128); f != 5 {
		t.Fatalf("reply flits at 32B = %d, want 5", f)
	}
}

func TestOutputPortSerialization(t *testing.T) {
	n := New(1, 8, 64, 128)
	// Two 3-flit messages to the same port pushed in the same cycle:
	// the second is delayed by the first's occupancy.
	a := req(mem.ReadReply, 0)
	b := req(mem.ReadReply, 128)
	n.Push(0, a, 0)
	n.Push(0, b, 0)
	// a: arrive 8, occupies 8-10, ready at 10. b: starts 11, ready 13.
	if got := n.Pop(0, 9); got != nil {
		t.Fatal("a ready too early")
	}
	if got := n.Pop(0, 10); got != a {
		t.Fatal("a not ready at its serialization end")
	}
	if got := n.Pop(0, 12); got != nil {
		t.Fatal("b ready too early")
	}
	if got := n.Pop(0, 13); got != b {
		t.Fatal("b not ready after serialization")
	}
}

func TestIndependentPorts(t *testing.T) {
	n := New(2, 8, 64, 128)
	a := req(mem.ReadReply, 0)
	b := req(mem.ReadReply, 128)
	n.Push(0, a, 0)
	n.Push(1, b, 0)
	// Different ports do not serialize against each other.
	if n.Pop(0, 10) != a || n.Pop(1, 10) != b {
		t.Fatal("independent ports interfered")
	}
}

func TestFIFOOrderPerPort(t *testing.T) {
	n := New(1, 2, 64, 128)
	var pushed []*mem.Request
	for i := 0; i < 10; i++ {
		r := req(mem.ReadReq, uint64(i*128))
		pushed = append(pushed, r)
		n.Push(0, r, uint64(i))
	}
	var got []*mem.Request
	for cyc := uint64(0); cyc < 100 && len(got) < 10; cyc++ {
		if r := n.Pop(0, cyc); r != nil {
			got = append(got, r)
		}
	}
	if len(got) != 10 {
		t.Fatalf("drained %d of 10", len(got))
	}
	for i := range got {
		if got[i] != pushed[i] {
			t.Fatalf("order violated at %d", i)
		}
	}
}

func TestPendingAndBusy(t *testing.T) {
	n := New(1, 4, 64, 128)
	n.Push(0, req(mem.ReadReq, 0), 0)
	n.Push(0, req(mem.ReadReq, 128), 0)
	if n.Pending(0) != 2 {
		t.Fatalf("pending = %d", n.Pending(0))
	}
	if n.PortBusyUntil(0) == 0 {
		t.Fatal("port busy time not tracked")
	}
}

func TestConservationProperty(t *testing.T) {
	// Every pushed message is eventually popped exactly once, in order.
	f := func(dsts []uint8) bool {
		n := New(4, 3, 64, 128)
		count := 0
		for i, d := range dsts {
			n.Push(int(d)%4, req(mem.ReadReq, uint64(i)), uint64(i))
			count++
		}
		drained := 0
		for cyc := uint64(0); cyc < uint64(len(dsts))*10+100; cyc++ {
			for p := 0; p < 4; p++ {
				if n.Pop(p, cyc) != nil {
					drained++
				}
			}
		}
		return drained == count && n.InFlight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted zero destinations")
		}
	}()
	New(0, 1, 64, 128)
}
