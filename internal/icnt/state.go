package icnt

import (
	"fmt"

	"ebm/internal/mem"
)

// PktState is one in-flight message: its delivery time and the request by
// value. Requests are duplicated on restore; the engine's message-passing
// discipline only ever reads value fields of networked requests, so fresh
// copies are behaviorally identical to the originals.
type PktState struct {
	ReadyAt uint64
	Req     mem.Request
}

// NetworkState is one crossbar direction's serializable snapshot.
type NetworkState struct {
	Queues   [][]PktState // per destination, FIFO order
	PortFree []uint64
}

// State returns the network's snapshot.
func (n *Network) State() NetworkState {
	st := NetworkState{
		Queues:   make([][]PktState, len(n.queues)),
		PortFree: append([]uint64(nil), n.portFree...),
	}
	for d := range n.queues {
		q := &n.queues[d]
		live := q.items[q.head:]
		if len(live) == 0 {
			continue
		}
		ps := make([]PktState, len(live))
		for i, p := range live {
			ps[i] = PktState{ReadyAt: p.readyAt, Req: *p.req}
		}
		st.Queues[d] = ps
	}
	return st
}

// SetState restores the network from a snapshot taken on an identically
// configured network.
func (n *Network) SetState(st NetworkState) error {
	if len(st.Queues) != len(n.queues) || len(st.PortFree) != len(n.portFree) {
		return fmt.Errorf("icnt: state has %d ports, network has %d", len(st.Queues), len(n.queues))
	}
	copy(n.portFree, st.PortFree)
	n.inFlight = 0
	for d := range n.queues {
		n.queues[d] = fifo{}
		for _, p := range st.Queues[d] {
			req := new(mem.Request)
			*req = p.Req
			n.queues[d].push(pkt{readyAt: p.ReadyAt, req: req})
			n.inFlight++
		}
	}
	return nil
}
