package policy

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ebm/internal/config"
	"ebm/internal/faultinject"
	"ebm/internal/obs"
	"ebm/internal/tlp"
)

// fakeMgr scripts Initial/OnSample per test.
type fakeMgr struct {
	name     string
	initial  func(numApps int) tlp.Decision
	onSample func(s tlp.Sample) tlp.Decision
}

func (m *fakeMgr) Name() string { return m.name }

func (m *fakeMgr) Initial(numApps int) tlp.Decision {
	if m.initial == nil {
		return tlp.NewDecision(numApps, 4)
	}
	return m.initial(numApps)
}

func (m *fakeMgr) OnSample(s tlp.Sample) tlp.Decision { return m.onSample(s) }

func sample(numApps int, cycle uint64) tlp.Sample {
	return tlp.Sample{Cycle: cycle, Apps: make([]tlp.AppSample, numApps)}
}

func TestPanicFallsBackToLastGood(t *testing.T) {
	calls := 0
	m := &fakeMgr{name: "flaky", onSample: func(s tlp.Sample) tlp.Decision {
		calls++
		if calls >= 2 {
			panic("boom")
		}
		return tlp.NewDecision(len(s.Apps), 8)
	}}
	g := Wrap(m, Options{})

	if d := g.Initial(2); len(d.TLP) != 2 || d.TLP[0] != 4 {
		t.Fatalf("initial: %v", d)
	}
	good := g.OnSample(sample(2, 100))
	if good.TLP[0] != 8 {
		t.Fatalf("good decision: %v", good)
	}
	got := g.OnSample(sample(2, 200))
	if !got.Equal(good) {
		t.Fatalf("fallback %v, want last-good %v", got, good)
	}
	if g.Faults() != 1 {
		t.Fatalf("faults = %d, want 1", g.Faults())
	}
	labels := g.FaultLabels()
	if len(labels) != 1 || !strings.Contains(labels[0], "panic: boom") {
		t.Fatalf("labels: %v", labels)
	}
}

func TestFallbackLadderSafeThenMaxTLP(t *testing.T) {
	panicky := func() *fakeMgr {
		return &fakeMgr{
			name:     "dead",
			initial:  func(int) tlp.Decision { panic("init boom") },
			onSample: func(tlp.Sample) tlp.Decision { panic("boom") },
		}
	}

	safe := tlp.NewDecision(3, 2)
	g := Wrap(panicky(), Options{Safe: &safe})
	if d := g.Initial(3); !d.Equal(safe) {
		t.Fatalf("with Safe: %v, want %v", d, safe)
	}

	g2 := Wrap(panicky(), Options{})
	d := g2.Initial(3)
	want := tlp.NewDecision(3, config.MaxTLP)
	if !d.Equal(want) {
		t.Fatalf("without Safe: %v, want all-maxTLP %v", d, want)
	}

	// A Safe with the wrong shape is skipped on the ladder.
	badSafe := tlp.NewDecision(2, 2)
	g3 := Wrap(panicky(), Options{Safe: &badSafe})
	if d := g3.Initial(3); !d.Equal(want) {
		t.Fatalf("wrong-shaped Safe: %v, want all-maxTLP %v", d, want)
	}
}

func TestInvalidDecisionsFault(t *testing.T) {
	cases := []struct {
		bad  tlp.Decision
		want string
	}{
		{tlp.Decision{TLP: []int{4}}, "TLP values for 2 applications"},
		{tlp.Decision{TLP: []int{4, 99}}, "out of range"},
		{tlp.Decision{TLP: []int{4, 0}}, "out of range"},
		{tlp.Decision{TLP: []int{4, 4}, BypassL1: []bool{true}}, "bypass mask"},
	}
	for _, c := range cases {
		bad := c.bad
		m := &fakeMgr{name: "bad", onSample: func(tlp.Sample) tlp.Decision { return bad }}
		g := Wrap(m, Options{})
		g.Initial(2)
		d := g.OnSample(sample(2, 10))
		if len(d.TLP) != 2 {
			t.Fatalf("%v: fallback shape %v", c.bad, d)
		}
		if g.Faults() != 1 {
			t.Fatalf("%v: faults = %d", c.bad, g.Faults())
		}
		if ls := g.FaultLabels(); !strings.Contains(ls[0], c.want) {
			t.Fatalf("%v: label %q, want %q", c.bad, ls[0], c.want)
		}
	}
}

func TestBudgetTimeoutAndRecovery(t *testing.T) {
	gate := make(chan struct{})
	var slow atomic.Bool
	m := &fakeMgr{name: "slow", onSample: func(s tlp.Sample) tlp.Decision {
		if slow.Load() {
			<-gate
		}
		return tlp.NewDecision(len(s.Apps), 8)
	}}
	g := Wrap(m, Options{Budget: 20 * time.Millisecond})
	defer g.Close()

	if d := g.Initial(2); len(d.TLP) != 2 {
		t.Fatalf("initial: %v", d)
	}
	g.OnSample(sample(2, 100)) // record a last-good

	slow.Store(true)
	d := g.OnSample(sample(2, 200))
	if g.Faults() != 1 {
		t.Fatalf("faults = %d after timeout", g.Faults())
	}
	if d.TLP[0] != 8 {
		t.Fatalf("timeout fallback: %v", d)
	}
	if !strings.Contains(g.FaultLabels()[0], "exceeded") {
		t.Fatalf("label: %v", g.FaultLabels())
	}

	// The worker is still stuck inside the abandoned decision: the next
	// window faults fast, and checkpoint state is unreadable.
	d = g.OnSample(sample(2, 300))
	if g.Faults() != 2 || !strings.Contains(g.FaultLabels()[1], "still running") {
		t.Fatalf("busy fault: %d %v", g.Faults(), g.FaultLabels())
	}
	if _, err := g.StateBytes(); err == nil {
		t.Fatal("StateBytes succeeded while a timed-out decision is running")
	}

	slow.Store(false)
	close(gate) // let the abandoned decision finish
	deadline := time.Now().Add(2 * time.Second)
	for {
		before := g.Faults()
		d = g.OnSample(sample(2, 400))
		if g.Faults() == before {
			break // clean decision: the sandbox recovered
		}
		if time.Now().After(deadline) {
			t.Fatalf("sandbox never recovered: %v", g.FaultLabels())
		}
		time.Sleep(time.Millisecond)
	}
	if d.TLP[0] != 8 {
		t.Fatalf("post-recovery decision: %v", d)
	}
}

func TestClosedGuardFaults(t *testing.T) {
	m := &fakeMgr{name: "m", onSample: func(s tlp.Sample) tlp.Decision {
		return tlp.NewDecision(len(s.Apps), 8)
	}}
	g := Wrap(m, Options{Budget: time.Second})
	g.Initial(2)
	g.Close()
	g.OnSample(sample(2, 10))
	if g.Faults() != 1 || !strings.Contains(g.FaultLabels()[0], "closed") {
		t.Fatalf("closed guard: %d %v", g.Faults(), g.FaultLabels())
	}
}

func TestHotSwapAtBoundary(t *testing.T) {
	j := obs.NewJournal()
	a := &fakeMgr{name: "A", onSample: func(s tlp.Sample) tlp.Decision {
		return tlp.NewDecision(len(s.Apps), 4)
	}}
	b := &fakeMgr{
		name:    "B",
		initial: func(numApps int) tlp.Decision { return tlp.NewDecision(numApps, 12) },
		onSample: func(s tlp.Sample) tlp.Decision {
			return tlp.NewDecision(len(s.Apps), 16)
		},
	}
	g := Wrap(a, Options{Obs: &obs.Observer{Journal: j}})
	g.Initial(2)

	if err := g.Swap(nil); err == nil {
		t.Fatal("nil swap accepted")
	}
	if err := g.Swap(b); err != nil {
		t.Fatal(err)
	}
	// The swap window runs B's Initial, not OnSample.
	if d := g.OnSample(sample(2, 100)); d.TLP[0] != 12 {
		t.Fatalf("swap window decision: %v", d)
	}
	if g.Name() != "B" || g.Inner() != tlp.Manager(b) {
		t.Fatalf("inner after swap: %q", g.Name())
	}
	if g.Swaps() != 1 {
		t.Fatalf("swaps = %d", g.Swaps())
	}
	if d := g.OnSample(sample(2, 200)); d.TLP[0] != 16 {
		t.Fatalf("post-swap decision: %v", d)
	}
	var swapEvents int
	for _, e := range j.Events() {
		if e.Kind == obs.EvPolicySwap && e.Label == "B" {
			swapEvents++
		}
	}
	if swapEvents != 1 {
		t.Fatalf("journal swap events = %d", swapEvents)
	}
}

func TestObserverCountersAndJournal(t *testing.T) {
	reg := obs.NewRegistry()
	j := obs.NewJournal()
	m := &fakeMgr{name: "bad", onSample: func(tlp.Sample) tlp.Decision { panic("boom") }}
	g := Wrap(m, Options{Obs: &obs.Observer{Metrics: reg, Journal: j}})
	g.Initial(2)
	g.OnSample(sample(2, 50))
	g.Swap(&fakeMgr{name: "next", onSample: func(s tlp.Sample) tlp.Decision {
		return tlp.NewDecision(len(s.Apps), 4)
	}})
	g.OnSample(sample(2, 100))

	if v := reg.Counter("ebm_policy_faults_total", "").Value(); v != 1 {
		t.Fatalf("fault counter = %d", v)
	}
	if v := reg.Counter("ebm_policy_swaps_total", "").Value(); v != 1 {
		t.Fatalf("swap counter = %d", v)
	}
	var faults, swaps int
	for _, e := range j.Events() {
		switch e.Kind {
		case obs.EvPolicyFault:
			faults++
			if e.App != -1 || e.Cycle != 50 {
				t.Fatalf("fault event: %+v", e)
			}
		case obs.EvPolicySwap:
			swaps++
		}
	}
	if faults != 1 || swaps != 1 {
		t.Fatalf("journal: %d faults, %d swaps", faults, swaps)
	}
}

func TestStaterDelegation(t *testing.T) {
	inner, err := tlp.NewStatic("s", []int{4, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := Wrap(inner, Options{})
	g.Initial(2)
	b, err := g.StateBytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetStateBytes(b); err != nil {
		t.Fatal(err)
	}

	g2 := Wrap(&fakeMgr{name: "stateless", onSample: func(s tlp.Sample) tlp.Decision {
		return tlp.NewDecision(len(s.Apps), 4)
	}}, Options{})
	if _, err := g2.StateBytes(); err == nil || !strings.Contains(err.Error(), "does not support checkpointing") {
		t.Fatalf("non-Stater StateBytes: %v", err)
	}
}

// Chaos composition: an injector-wrapped policy inside the Guard panics
// per the injected schedule and the sandbox absorbs every one.
func TestInjectedPolicyPanicsAreAbsorbed(t *testing.T) {
	inj := faultinject.New(faultinject.Config{Seed: 1, PolicyPanicProb: 1, MaxPolicyPanics: 2})
	inner, err := tlp.NewStatic("s", []int{4, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := Wrap(faultinject.WrapManager(inner, inj), Options{})
	g.Initial(2)
	for w := uint64(1); w <= 4; w++ {
		d := g.OnSample(sample(2, w*1000))
		if len(d.TLP) != 2 {
			t.Fatalf("window %d: %v", w, d)
		}
	}
	if g.Faults() != 2 {
		t.Fatalf("faults = %d, want the 2 capped injected panics", g.Faults())
	}
	if c := inj.Counts(); c.PolicyPanics != 2 {
		t.Fatalf("injector counted %d policy panics", c.PolicyPanics)
	}
}

// The Guard's accessors are safe against concurrent decision traffic
// (exercised under -race by the verify matrix).
func TestGuardConcurrentAccess(t *testing.T) {
	m := &fakeMgr{name: "m", onSample: func(s tlp.Sample) tlp.Decision {
		return tlp.NewDecision(len(s.Apps), 8)
	}}
	g := Wrap(m, Options{Budget: 50 * time.Millisecond})
	defer g.Close()
	g.Initial(2)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			g.OnSample(sample(2, uint64(i)))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			g.Name()
			g.FaultLabels()
			g.Faults()
		}
	}()
	wg.Wait()
}
