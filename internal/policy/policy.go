// Package policy is the sandbox between the cycle engine and TLP
// management policies: a Guard wraps any tlp.Manager so that a policy
// that panics, blows its per-decision time budget, or returns a
// malformed decision degrades the run to a safe fallback instead of
// killing it. The engine trusts its manager completely — one panicking
// OnSample used to abort an entire sweep — so third-party policies
// (spec.Register makes kinds pluggable) run behind a Guard.
//
// Fault handling follows a fallback ladder: the last decision the policy
// produced that validated clean, then Options.Safe, then every
// application at maxTLP (the hardware's do-no-harm default: it is the
// configuration the machine boots in). Every fault is counted, labeled,
// and journaled as obs.EvPolicyFault, so a degraded sweep is visible in
// the exit report and the provenance ledger rather than silently wrong.
//
// The Guard also supports hot-swapping the wrapped policy at a sampling
// window boundary (Swap), which journals obs.EvPolicySwap and hands the
// next window to the incoming policy's Initial.
package policy

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ebm/internal/config"
	"ebm/internal/obs"
	"ebm/internal/tlp"
)

// maxFaultLabels bounds the per-run fault label list; the counters keep
// counting past it.
const maxFaultLabels = 64

// Options configure a Guard.
type Options struct {
	// Budget is the wall-clock budget for one decision (Initial or
	// OnSample). Zero disables the budget: decisions run synchronously
	// on the engine goroutine with panic isolation only. A positive
	// budget runs decisions on a dedicated worker goroutine; a decision
	// that overruns is abandoned (the worker finishes it eventually and
	// the result is discarded) and the window falls back.
	Budget time.Duration

	// Safe is the fallback decision when no last-good decision exists
	// yet. Nil, or a Safe whose shape does not match the run's
	// application count, falls back to all-maxTLP.
	Safe *tlp.Decision

	// Obs receives EvPolicyFault/EvPolicySwap journal events and the
	// ebm_policy_faults_total / ebm_policy_swaps_total counters. Nil
	// disables both.
	Obs *obs.Observer
}

// Guard wraps a tlp.Manager with the sandbox. It implements tlp.Manager
// and tlp.Stater, delegating Name and checkpoint state to the wrapped
// policy so reports, cache keys, and checkpoint compatibility are
// unchanged by sandboxing.
type Guard struct {
	opts Options

	mu       sync.Mutex
	inner    tlp.Manager
	pending  tlp.Manager // hot-swap target, applied at the next boundary
	numApps  int
	lastGood tlp.Decision
	labels   []string

	faults atomic.Uint64
	swaps  atomic.Uint64
	faultC *obs.Counter
	swapC  *obs.Counter

	// Budget-mode worker. busy is true while a decision is in flight,
	// which includes a timed-out decision the worker is still finishing.
	calls     chan decisionCall
	busy      atomic.Bool
	closed    atomic.Bool
	closeOnce sync.Once
}

type decisionCall struct {
	fn    func() tlp.Decision
	reply chan decisionReply // buffered: a timed-out reply never blocks the worker
}

type decisionReply struct {
	d   tlp.Decision
	err error
}

// Wrap sandboxes inner under the given options.
func Wrap(inner tlp.Manager, opts Options) *Guard {
	if inner == nil {
		panic("policy: Wrap(nil manager)")
	}
	g := &Guard{opts: opts, inner: inner}
	if o := opts.Obs; o != nil && o.Metrics != nil {
		g.faultC = o.Metrics.Counter("ebm_policy_faults_total",
			"Sandboxed TLP policy faults (panic, blown time budget, invalid decision).")
		g.swapC = o.Metrics.Counter("ebm_policy_swaps_total",
			"TLP policy hot-swaps applied at window boundaries.")
	}
	if opts.Budget > 0 {
		g.calls = make(chan decisionCall)
		go g.worker()
	}
	return g
}

var (
	_ tlp.Manager = (*Guard)(nil)
	_ tlp.Stater  = (*Guard)(nil)
)

// Close stops the budget worker goroutine. Call it once the run is done
// (a Guard with no budget needs no Close). Decisions requested after
// Close fall back as faults.
func (g *Guard) Close() {
	g.closeOnce.Do(func() {
		g.closed.Store(true)
		if g.calls != nil {
			close(g.calls)
		}
	})
}

// Name implements tlp.Manager by delegation: reports and checkpoint
// envelopes see the wrapped policy's name.
func (g *Guard) Name() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.Name()
}

// Inner returns the currently wrapped policy.
func (g *Guard) Inner() tlp.Manager {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner
}

// Faults returns how many decisions fell back.
func (g *Guard) Faults() uint64 { return g.faults.Load() }

// Swaps returns how many hot-swaps were applied.
func (g *Guard) Swaps() uint64 { return g.swaps.Load() }

// FaultLabels returns the recorded fault details (bounded; the count in
// Faults is authoritative).
func (g *Guard) FaultLabels() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.labels...)
}

// Swap schedules next to replace the wrapped policy at the next sampling
// window boundary. The incoming policy starts from its own Initial at
// that boundary. Swapping is journaled as obs.EvPolicySwap.
func (g *Guard) Swap(next tlp.Manager) error {
	if next == nil {
		return fmt.Errorf("policy: swap to nil manager")
	}
	g.mu.Lock()
	g.pending = next
	g.mu.Unlock()
	return nil
}

// Initial implements tlp.Manager. It records the run's application count
// (the shape every later decision is validated against) and sandboxes
// the wrapped policy's Initial like any other decision.
func (g *Guard) Initial(numApps int) tlp.Decision {
	g.mu.Lock()
	g.numApps = numApps
	m := g.inner
	g.mu.Unlock()
	d, err := g.run(func() tlp.Decision { return m.Initial(numApps) })
	return g.accept(d, err, 0)
}

// OnSample implements tlp.Manager: apply a pending hot-swap, run the
// policy inside the sandbox, validate what came back, and fall back on
// any fault.
func (g *Guard) OnSample(s tlp.Sample) tlp.Decision {
	g.mu.Lock()
	if g.numApps == 0 {
		g.numApps = len(s.Apps)
	}
	numApps := g.numApps
	if g.pending != nil {
		next := g.pending
		g.pending = nil
		g.inner = next
		g.mu.Unlock()
		g.swaps.Add(1)
		g.swapC.Inc()
		g.journal(obs.EvPolicySwap, s.Cycle, next.Name())
		d, err := g.run(func() tlp.Decision { return next.Initial(numApps) })
		return g.accept(d, err, s.Cycle)
	}
	m := g.inner
	g.mu.Unlock()
	var fn func() tlp.Decision
	if g.opts.Budget > 0 {
		// The engine reuses s.Apps across windows; the worker may still
		// be reading a timed-out sample when the next window lands, so
		// budget-mode decisions get their own copy.
		cp := s
		cp.Apps = append([]tlp.AppSample(nil), s.Apps...)
		fn = func() tlp.Decision { return m.OnSample(cp) }
	} else {
		fn = func() tlp.Decision { return m.OnSample(s) }
	}
	d, err := g.run(fn)
	return g.accept(d, err, s.Cycle)
}

// run executes one decision under the sandbox: synchronously with panic
// isolation when there is no budget, on the worker with a deadline
// otherwise.
func (g *Guard) run(fn func() tlp.Decision) (tlp.Decision, error) {
	if g.opts.Budget <= 0 {
		r := safeRun(fn)
		return r.d, r.err
	}
	if g.closed.Load() {
		return tlp.Decision{}, fmt.Errorf("sandbox closed")
	}
	if !g.busy.CompareAndSwap(false, true) {
		// The worker is still inside a previous (timed-out) decision.
		return tlp.Decision{}, fmt.Errorf("previous decision still running past its %v budget", g.opts.Budget)
	}
	reply := make(chan decisionReply, 1)
	g.calls <- decisionCall{fn: fn, reply: reply}
	t := time.NewTimer(g.opts.Budget)
	defer t.Stop()
	select {
	case r := <-reply:
		return r.d, r.err
	case <-t.C:
		return tlp.Decision{}, fmt.Errorf("decision exceeded %v budget", g.opts.Budget)
	}
}

func (g *Guard) worker() {
	for c := range g.calls {
		r := safeRun(c.fn)
		g.busy.Store(false)
		c.reply <- r
	}
}

func safeRun(fn func() tlp.Decision) (r decisionReply) {
	defer func() {
		if p := recover(); p != nil {
			r = decisionReply{err: fmt.Errorf("panic: %v", p)}
		}
	}()
	return decisionReply{d: fn()}
}

// accept validates a decision and either records it as last-good or
// degrades to the fallback ladder.
func (g *Guard) accept(d tlp.Decision, err error, cycle uint64) tlp.Decision {
	if err == nil {
		err = validate(d, g.loadNumApps())
	}
	if err != nil {
		return g.fault(err, cycle)
	}
	g.mu.Lock()
	g.lastGood = d.Clone()
	g.mu.Unlock()
	return d
}

func (g *Guard) loadNumApps() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.numApps
}

// validate checks the decision's shape and bounds against the run.
func validate(d tlp.Decision, numApps int) error {
	if numApps > 0 && len(d.TLP) != numApps {
		return fmt.Errorf("decision has %d TLP values for %d applications", len(d.TLP), numApps)
	}
	for i, t := range d.TLP {
		if t < 1 || t > config.MaxTLP {
			return fmt.Errorf("app %d TLP %d out of range 1..%d", i, t, config.MaxTLP)
		}
	}
	if d.BypassL1 != nil && len(d.BypassL1) != len(d.TLP) {
		return fmt.Errorf("bypass mask has %d values for %d applications", len(d.BypassL1), len(d.TLP))
	}
	return nil
}

// fault counts, labels, and journals one fault, then walks the fallback
// ladder: last-good decision, Options.Safe, all-maxTLP.
func (g *Guard) fault(err error, cycle uint64) tlp.Decision {
	g.faults.Add(1)
	g.faultC.Inc()
	g.mu.Lock()
	if len(g.labels) < maxFaultLabels {
		g.labels = append(g.labels, err.Error())
	}
	fb := g.lastGood.Clone()
	numApps := g.numApps
	g.mu.Unlock()
	g.journal(obs.EvPolicyFault, cycle, err.Error())
	if fb.TLP != nil {
		return fb
	}
	if s := g.opts.Safe; s != nil && validate(*s, numApps) == nil {
		return s.Clone()
	}
	return tlp.NewDecision(numApps, config.MaxTLP)
}

func (g *Guard) journal(kind obs.EventKind, cycle uint64, label string) {
	if o := g.opts.Obs; o != nil && o.Journal != nil {
		o.Journal.Record(obs.Event{Kind: kind, Cycle: cycle, App: -1, Label: label})
	}
}

// StateBytes implements tlp.Stater by delegation, so checkpoint forking
// and the adaptive search work through the sandbox. While a timed-out
// decision is still running the state is unreadable (the policy may be
// mid-mutation); the checkpoint layer treats that like any other
// snapshot failure and stops writing.
func (g *Guard) StateBytes() ([]byte, error) {
	if g.opts.Budget > 0 && g.busy.Load() {
		return nil, fmt.Errorf("policy: state unavailable: a timed-out decision is still running")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st, ok := g.inner.(tlp.Stater)
	if !ok {
		return nil, fmt.Errorf("policy: manager %q does not support checkpointing", g.inner.Name())
	}
	return st.StateBytes()
}

// SetStateBytes implements tlp.Stater by delegation.
func (g *Guard) SetStateBytes(b []byte) error {
	if g.opts.Budget > 0 && g.busy.Load() {
		return fmt.Errorf("policy: state unavailable: a timed-out decision is still running")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st, ok := g.inner.(tlp.Stater)
	if !ok {
		return fmt.Errorf("policy: manager %q does not support checkpointing", g.inner.Name())
	}
	return st.SetStateBytes(b)
}
