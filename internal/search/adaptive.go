package search

// Adaptive coarse-to-fine TLP search with checkpoint-forked successive
// halving (DESIGN.md §13). The exhaustive searches simulate levels^apps
// combinations for the full horizon; Adaptive finds the same optimum in
// a fraction of the engine work by combining two prunes:
//
//   - Coarse→fine over the level ladder: a first pass searches a
//     subsampled ladder (every other level plus both endpoints),
//     brackets every near-winning finalist within ±1 coarse step per
//     app, and a second pass refines over the full levels inside the
//     union of those brackets only.
//   - Successive halving over horizons: in the coarse pass, every
//     candidate first simulates a short horizon (TotalCycles >> k,
//     floored to whole sampling windows), the dominated fraction is
//     pruned — near-ties of the cut survive (PruneSlack), since their
//     order often swaps by the full horizon — and survivors continue to
//     the next horizon. With a checkpoint store each rung's run ends on
//     a window boundary and persists its run-end snapshot, so the
//     continuation forks from it and pays only the tail cycles. The
//     refine pass never halves: its candidates are bracketed because
//     their neighbourhood wins at the full horizon, and short horizons
//     can rank late-blooming cells arbitrarily low.
//
// Every simulation goes through the same RunSpec/simcache path as an
// exhaustive grid cell, so full-horizon results share cache keys with
// BuildGrid cells bit-identically, and partial-horizon results are
// cached under their own shorter-TotalCycles keys — a pruned run can
// never be read back under a full-horizon key. Pruning decisions are
// recorded in the provenance ledger as "pruned@cycles" records.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ebm/internal/ckpt"
	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/obs"
	"ebm/internal/runner"
	"ebm/internal/sim"
	"ebm/internal/simcache"
	"ebm/internal/spec"
)

// AdaptiveOptions configures an adaptive search. The zero value of every
// tuning knob means its default; Config, TotalCycles, and WarmupCycles
// follow the same conventions as GridOptions.
type AdaptiveOptions struct {
	Config config.GPU
	// Levels is the full per-app TLP ladder the search optimizes over
	// (the exhaustive grid's axis); default config.TLPLevels.
	Levels []int
	// Coarse is the subsampled ladder of the bracketing pass; it must be
	// a subset of Levels. Default: every other level plus both
	// endpoints.
	Coarse []int

	TotalCycles  uint64
	WarmupCycles uint64

	// Rungs is the length of the halving horizon ladder (including the
	// final full-horizon rung): rung r simulates TotalCycles>>(Rungs-1-r)
	// cycles, floored to whole sampling windows and clamped past the
	// warmup. Default 3; 1 disables horizon halving.
	Rungs int
	// Keep is the candidate fraction surviving each pruning rung
	// (0 < Keep <= 1; at least one candidate always survives). Default
	// 0.5, i.e. successive halving. 1 disables pruning.
	Keep float64
	// PruneSlack guards the halving against short-horizon misranking: a
	// candidate below the Keep cut still survives the rung when its value
	// is within this relative distance of the last kept candidate's
	// (near-ties at a short horizon often swap order by the full
	// horizon). Default 0.05; negative means exactly zero slack.
	PruneSlack float64
	// BracketSlack widens the refine pass the same way: the bracket is
	// the union of the neighbourhoods of every coarse finalist scoring
	// within this relative distance of the coarse winner, not just the
	// winner's own neighbourhood. Default 0.05; negative means zero.
	BracketSlack float64

	// Parallelism bounds in-flight candidate simulations per rung
	// (default runtime.NumCPU), mirroring GridOptions.Parallelism.
	Parallelism int

	Runner *runner.Runner
	Cache  *simcache.Cache
	// Ckpt makes rung continuations sub-linear: each rung's run-end
	// snapshot is persisted at a window boundary and the next rung forks
	// from it. Without a store the search still prunes the same
	// candidates but survivors replay their prefixes from cycle zero.
	Ckpt *ckpt.Store

	// OnRung, when non-nil, is called after every completed rung with
	// the pruning outcome. Calls are sequential.
	OnRung func(RungReport)
}

// RungReport describes one completed rung of the halving ladder.
type RungReport struct {
	Phase     string // "coarse" or "refine"
	Rung      int    // 0-based within the phase
	Cycles    uint64 // horizon candidates were simulated to
	Survivors int    // candidates continuing to the next rung
	Pruned    int    // candidates dropped at this rung
}

// Candidate is one combination's standing in the search.
type Candidate struct {
	Combo  []int
	Value  float64    // eval of Result
	Result sim.Result // result at the deepest horizon this candidate reached

	index int // flat index over the full Levels ladder (exhaustive tie-break order)
}

// PrunedCandidate records a combination dropped at a halving rung.
type PrunedCandidate struct {
	Combo  []int
	Cycles uint64 // horizon it had simulated to when pruned
}

// AdaptiveResult is the outcome of one adaptive search.
type AdaptiveResult struct {
	Combo []int   // winning TLP combination
	Value float64 // its eval at the full horizon

	// Finals holds every candidate evaluated at the full horizon, in
	// flat-index order with bit-exact grid-cell results: with
	// Coarse=Levels, Rungs=1, and Keep=1 this is exactly the exhaustive
	// grid.
	Finals []Candidate
	// Pruned lists the combinations dropped at halving rungs.
	Pruned []PrunedCandidate

	Evaluated int // distinct combinations simulated at any horizon
	FullRuns  int // combinations that reached the full horizon
	// CyclesSubmitted sums each distinct combination's deepest horizon —
	// the engine-cycle budget the search asked for, counting each rung
	// continuation at its tail length (what it costs when forking from
	// the previous rung's checkpoint). The exhaustive equivalent is
	// levels^apps × TotalCycles.
	CyclesSubmitted uint64
}

// Adaptive finds the TLP combination maximizing eval over the full
// levels^apps grid without building it. On the paper's workloads it
// returns the identical combination as BuildGrid + Grid.Best (enforced
// by TestAdaptiveMatchesExhaustive); DESIGN.md §13 spells out when the
// two may diverge on adversarial surfaces. eval is called serially (the
// SDEval/EBEval closures reuse scratch buffers).
func Adaptive(ctx context.Context, apps []kernel.Params, eval Eval, opts AdaptiveOptions) (AdaptiveResult, error) {
	if len(apps) == 0 {
		return AdaptiveResult{}, fmt.Errorf("search: no applications")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Levels == nil {
		opts.Levels = append([]int(nil), config.TLPLevels...)
	}
	if opts.Coarse == nil {
		opts.Coarse = CoarseLevels(opts.Levels)
	}
	for _, l := range opts.Coarse {
		if indexOf(opts.Levels, l) < 0 {
			return AdaptiveResult{}, fmt.Errorf("search: coarse level %d not in levels %v", l, opts.Levels)
		}
	}
	if opts.Rungs <= 0 {
		opts.Rungs = 3
	}
	if opts.Keep <= 0 {
		opts.Keep = 0.5
	}
	if opts.Keep > 1 {
		opts.Keep = 1
	}
	opts.PruneSlack = defaultSlack(opts.PruneSlack, 0.05)
	opts.BracketSlack = defaultSlack(opts.BracketSlack, 0.05)
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.NumCPU()
	}

	names := make([]string, len(apps))
	for i := range apps {
		names[i] = apps[i].Name
	}
	ctx, asp := obs.StartSpan(ctx, "adaptive-search",
		obs.A("workload", strings.Join(names, "_")),
		obs.A("levels", fmt.Sprint(opts.Levels)), obs.A("coarse", fmt.Sprint(opts.Coarse)))
	defer asp.End()

	a := &adaptive{
		apps:     append([]kernel.Params(nil), apps...),
		opts:     opts,
		horizons: horizonLadder(opts.TotalCycles, opts.WarmupCycles, opts.Rungs),
		deepest:  map[string]uint64{},
	}

	// Coarse pass: bracket the optimum on the subsampled ladder, halving
	// up the horizon ladder.
	coarseFinals, err := a.ladder(ctx, "coarse", a.candidates(combosOf(opts.Coarse, len(apps))), eval, a.horizons)
	if err != nil {
		return AdaptiveResult{}, err
	}
	// Refine pass: the full-ladder combinations inside ±1 coarse step of
	// every near-winning coarse finalist per app, minus those the coarse
	// pass already carried to the full horizon. The bracket is evaluated
	// straight at the full horizon with no halving: these candidates are
	// in the bracket precisely because their neighbourhood wins at the
	// full horizon, and a cell whose steady state emerges late can rank
	// arbitrarily low at a short one — the small refine set buys its
	// exactness at full price.
	refineCombos := a.bracketCombos(coarseFinals)
	refineFinals, err := a.ladder(ctx, "refine", a.candidates(refineCombos), eval, a.horizons[len(a.horizons)-1:])
	if err != nil {
		return AdaptiveResult{}, err
	}

	finals := append(coarseFinals, refineFinals...)
	sort.SliceStable(finals, func(i, j int) bool { return finals[i].index < finals[j].index })
	best := bestScan(finals)

	a.res.Combo = best.Combo
	a.res.Value = best.Value
	a.res.Finals = finals
	a.res.FullRuns = len(finals)
	a.res.Evaluated = len(a.deepest)
	for _, h := range a.deepest {
		a.res.CyclesSubmitted += h
	}
	return a.res, nil
}

// CoarseLevels subsamples a level ladder for the bracketing pass: every
// other level starting at the first, plus the last (so both endpoints
// are always represented).
func CoarseLevels(levels []int) []int {
	var out []int
	for i := 0; i < len(levels); i += 2 {
		out = append(out, levels[i])
	}
	if len(levels) > 0 && out[len(out)-1] != levels[len(levels)-1] {
		out = append(out, levels[len(levels)-1])
	}
	return out
}

// horizonLadder builds the strictly increasing run-length ladder: rung r
// is total>>(rungs-1-r) floored to whole default sampling windows (so
// every rung ends on a window boundary and its run-end checkpoint is
// forkable) and clamped past the warmup (a shorter run has no
// measurement region). The last rung is always exactly total, matching
// the exhaustive grid's cache keys.
func horizonLadder(total, warmup uint64, rungs int) []uint64 {
	const wc = sim.DefaultWindowCycles
	var hs []uint64
	for r := 0; r < rungs; r++ {
		h := total >> uint(rungs-1-r)
		h = h / wc * wc
		if h <= warmup {
			h = (warmup/wc + 1) * wc
		}
		if h >= total || r == rungs-1 {
			h = total
		}
		if len(hs) > 0 && h <= hs[len(hs)-1] {
			continue // degenerate ladders collapse to fewer rungs
		}
		hs = append(hs, h)
	}
	return hs
}

// adaptive carries one search's state.
type adaptive struct {
	apps     []kernel.Params
	opts     AdaptiveOptions
	horizons []uint64
	res      AdaptiveResult

	// deepest maps a combination key to the deepest horizon it was
	// submitted at, for the CyclesSubmitted accounting and for deduping
	// refine candidates already carried to the full horizon.
	deepest map[string]uint64
}

func comboKey(c []int) string { return fmt.Sprint(c) }

// candidates wraps combos with their flat index over the full ladder —
// the exhaustive scan order, which is also the tie-break order.
func (a *adaptive) candidates(combos [][]int) []Candidate {
	g := Grid{Apps: a.apps, Levels: a.opts.Levels} // index arithmetic only
	cands := make([]Candidate, 0, len(combos))
	for _, c := range combos {
		li := make([]int, len(c))
		for i, t := range c {
			li[i] = indexOf(a.opts.Levels, t)
		}
		cands = append(cands, Candidate{Combo: c, index: g.Index(li)})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].index < cands[j].index })
	return cands
}

// bracketCombos enumerates the refine candidates: the union of the
// full-ladder neighbourhoods (±1 coarse step per app) of every coarse
// finalist scoring within BracketSlack of the coarse winner, excluding
// combinations the coarse pass already evaluated at the full horizon.
// Bracketing near-winners and not just the winner keeps a sharply peaked
// off-ladder optimum reachable when its coarse proxies run close but do
// not win.
func (a *adaptive) bracketCombos(finals []Candidate) [][]int {
	best := bestScan(finals)
	thr := slackFloor(rankValue(best.Value), a.opts.BracketSlack)
	seen := map[string]bool{}
	for _, c := range finals {
		seen[comboKey(c.Combo)] = true
	}
	// Near-winners in value order, capped at three neighbourhoods: on a
	// flat surface everything is a near-winner, and bracketing all of it
	// would regrow the exhaustive grid.
	near := append([]Candidate(nil), finals...)
	sortCandidates(near)
	if len(near) > 3 {
		near = near[:3]
	}
	var out [][]int
	for _, f := range near {
		if rankValue(f.Value) < thr {
			continue
		}
		for _, c := range a.neighbourhood(f.Combo) {
			if k := comboKey(c); !seen[k] {
				seen[k] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// neighbourhood enumerates the full-ladder combinations within ±1 coarse
// step of the given combo on every axis.
func (a *adaptive) neighbourhood(combo []int) [][]int {
	axes := make([][]int, len(combo))
	for i, w := range combo {
		ci := indexOf(a.opts.Coarse, w)
		lo, hi := w, w
		if ci > 0 {
			lo = a.opts.Coarse[ci-1]
		}
		if ci+1 < len(a.opts.Coarse) {
			hi = a.opts.Coarse[ci+1]
		}
		for _, l := range a.opts.Levels {
			if l >= lo && l <= hi {
				axes[i] = append(axes[i], l)
			}
		}
	}
	total := 1
	for _, ax := range axes {
		total *= len(ax)
	}
	out := make([][]int, 0, total)
	for idx := 0; idx < total; idx++ {
		c := make([]int, len(axes))
		rem := idx
		for i, ax := range axes {
			c[i] = ax[rem%len(ax)]
			rem /= len(ax)
		}
		out = append(out, c)
	}
	return out
}

// ladder runs one phase's candidates up the given horizon ladder,
// pruning the dominated fraction at every rung but the last, and returns
// the survivors with their full-horizon results. A single-entry ladder
// is a plain full-horizon pass with no pruning.
func (a *adaptive) ladder(ctx context.Context, phase string, cands []Candidate, eval Eval, horizons []uint64) ([]Candidate, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	for r, h := range horizons {
		if err := a.runAll(ctx, phase, cands, h); err != nil {
			return nil, err
		}
		for i := range cands {
			cands[i].Value = eval(cands[i].Result)
		}
		pruned := 0
		if r < len(horizons)-1 {
			sortCandidates(cands)
			keep := keepCount(len(cands), a.opts.Keep)
			if keep < len(cands) {
				// Slack guard: short-horizon near-ties of the last kept
				// candidate survive too — their order against it often
				// swaps by the full horizon. The rescue is capped at half
				// the nominal prune set so flat surfaces (where everything
				// is a near-tie) still make halving progress.
				thr := slackFloor(rankValue(cands[keep-1].Value), a.opts.PruneSlack)
				limit := keep + (len(cands)-keep+1)/2
				for keep < limit && rankValue(cands[keep].Value) >= thr {
					keep++
				}
			}
			if keep < len(cands) {
				for _, c := range cands[keep:] {
					a.res.Pruned = append(a.res.Pruned, PrunedCandidate{Combo: c.Combo, Cycles: h})
					a.recordPruned(c.Combo, h)
				}
				pruned = len(cands) - keep
				cands = cands[:keep]
			}
		}
		if a.opts.OnRung != nil {
			a.opts.OnRung(RungReport{Phase: phase, Rung: r, Cycles: h, Survivors: len(cands), Pruned: pruned})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].index < cands[j].index })
	return cands, nil
}

// runAll simulates every candidate to horizon h, bounded by Parallelism,
// through the shared cache/checkpoint path. Each candidate's RunSpec is
// the exhaustive grid cell's with TotalCycles=h, so successive rungs
// share a checkpoint prefix and the last rung shares the grid's cache
// keys.
func (a *adaptive) runAll(ctx context.Context, phase string, cands []Candidate, h uint64) error {
	rctx, rsp := obs.StartSpan(ctx, "adaptive-rung",
		obs.A("phase", phase), obs.A("cycles", strconv.FormatUint(h, 10)),
		obs.A("candidates", strconv.Itoa(len(cands))))
	defer rsp.End()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, a.opts.Parallelism)
	for i := range cands {
		mu.Lock()
		bail := firstErr != nil
		mu.Unlock()
		if bail || rctx.Err() != nil {
			break
		}
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			rs := a.spec(cands[i].Combo, h)
			// Rung writes are pared down to the one snapshot the next rung
			// forks from (none at the full horizon, where no rung follows).
			res, err := simcache.RunCached(rctx, a.opts.Cache, a.opts.Runner, runner.PriGrid, rs,
				ckpt.RungRunner(a.opts.Ckpt, rs, h == a.opts.TotalCycles))
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			cands[i].Result = res
		}()
	}
	wg.Wait()
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("search: adaptive search interrupted at %s rung (%d cycles): %w", phase, h, cerr)
	}
	if firstErr != nil {
		return firstErr
	}
	for i := range cands {
		a.deepest[comboKey(cands[i].Combo)] = h
	}
	return nil
}

func (a *adaptive) spec(combo []int, h uint64) spec.RunSpec {
	return spec.RunSpec{
		Config:       a.opts.Config,
		Apps:         a.apps,
		Scheme:       spec.Static(combo, nil),
		TotalCycles:  h,
		WarmupCycles: a.opts.WarmupCycles,
	}
}

// recordPruned appends the pruning decision to the provenance ledger (if
// the cache carries one): the short-horizon run itself was already
// recorded as cached/cold/forked by RunCached; this extra record marks
// that the candidate was dropped after h cycles and will never reach the
// full horizon.
func (a *adaptive) recordPruned(combo []int, h uint64) {
	l := a.opts.Cache.Ledger()
	if l == nil {
		return
	}
	rs := a.spec(combo, h)
	names := make([]string, len(a.apps))
	for i := range a.apps {
		names[i] = a.apps[i].Name
	}
	rec := obs.RunRecord{
		CacheSchema: simcache.SchemaVersion,
		Fingerprint: simcache.Key(rs),
		Scheme:      rs.Scheme.String(),
		Apps:        strings.Join(names, "_"),
		Outcome:     obs.OutcomePruned,
		Cycles:      h,
	}
	if err := l.Append(rec); err != nil {
		simcache.Warnf("search: pruned ledger record: %v", err)
	}
}

// keepCount is how many of n candidates survive a rung at the given keep
// fraction: ceil(keep×n), clamped to [1, n].
func keepCount(n int, keep float64) int {
	k := int(math.Ceil(keep * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// defaultSlack maps the AdaptiveOptions slack conventions onto a usable
// value: zero means the given default, negative means exactly zero.
func defaultSlack(s, def float64) float64 {
	if s == 0 {
		return def
	}
	if s < 0 {
		return 0
	}
	return s
}

// rankValue orders eval values for pruning: NaN ranks below everything
// (Best's strict > scan never selects it).
func rankValue(v float64) float64 {
	if math.IsNaN(v) {
		return math.Inf(-1)
	}
	return v
}

// slackFloor is the survival threshold a relative slack below v.
func slackFloor(v, slack float64) float64 {
	return v - slack*math.Abs(v)
}

// sortCandidates ranks by value descending with flat grid index as the
// tie-break, matching the exhaustive Best's first-index preference. NaN
// values rank below everything.
func sortCandidates(cands []Candidate) {
	sort.SliceStable(cands, func(i, j int) bool {
		ri, rj := rankValue(cands[i].Value), rankValue(cands[j].Value)
		if ri != rj {
			return ri > rj
		}
		return cands[i].index < cands[j].index
	})
}

// bestScan picks the winner exactly the way Grid.Best does: a strict >
// scan in flat-index order (candidates must already be index-sorted or
// carry distinct indices; ties keep the lowest index).
func bestScan(cands []Candidate) Candidate {
	sorted := append([]Candidate(nil), cands...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].index < sorted[j].index })
	best := sorted[0]
	for _, c := range sorted[1:] {
		if c.Value > best.Value {
			best = c
		}
	}
	return best
}

// combosOf enumerates every combination of the given levels for n apps
// in flat-index order over those levels (app 0 least significant).
func combosOf(levels []int, n int) [][]int {
	total := 1
	for i := 0; i < n; i++ {
		total *= len(levels)
	}
	out := make([][]int, total)
	for idx := 0; idx < total; idx++ {
		c := make([]int, n)
		rem := idx
		for i := 0; i < n; i++ {
			c[i] = levels[rem%len(levels)]
			rem /= len(levels)
		}
		out[idx] = c
	}
	return out
}
