package search

import (
	"os"
	"reflect"
	"testing"

	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/runner"
	"ebm/internal/simcache"
)

func cacheGridOpts(t *testing.T) (GridOptions, *simcache.Cache) {
	t.Helper()
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.NumMemPartitions = 4
	c, err := simcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.New(4)
	t.Cleanup(pool.Close)
	return GridOptions{
		Config:       cfg,
		Levels:       []int{1, 8, 24},
		TotalCycles:  8_000,
		WarmupCycles: 2_000,
		Parallelism:  4,
		Runner:       pool,
		Cache:        c,
	}, c
}

func cacheGridApps(t *testing.T) []kernel.Params {
	t.Helper()
	a, _ := kernel.ByName("BLK")
	b, _ := kernel.ByName("BFS")
	return []kernel.Params{a, b}
}

// TestBuildGridWarmRebuildBitIdentical: a second build over a populated
// cache must be all hits and reproduce the grid exactly.
func TestBuildGridWarmRebuildBitIdentical(t *testing.T) {
	opts, c := cacheGridOpts(t)
	apps := cacheGridApps(t)
	cold, err := BuildGrid(nil, apps, opts)
	if err != nil {
		t.Fatal(err)
	}
	cells := len(cold.Results)
	if got := c.Stats().Writes; got != uint64(cells) {
		t.Fatalf("persisted %d cells, want %d", got, cells)
	}
	before := c.Stats()
	warm, err := BuildGrid(nil, apps, opts)
	if err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.Writes != before.Writes {
		t.Fatal("warm rebuild re-simulated")
	}
	if after.Hits-before.Hits != uint64(cells) {
		t.Fatalf("warm rebuild hits %d, want %d", after.Hits-before.Hits, cells)
	}
	// Bit-identity: reflect.DeepEqual on float64 fields is exact bit
	// comparison for non-NaN values, and the engine produces no NaNs.
	if !reflect.DeepEqual(cold.Results, warm.Results) {
		t.Fatal("warm grid differs from cold grid")
	}
}

// TestBuildGridResumesPartialGrid: deleting a subset of persisted entries
// simulates an interrupted sweep; the rebuild recomputes exactly the
// deleted cells and nothing else.
func TestBuildGridResumesPartialGrid(t *testing.T) {
	opts, c := cacheGridOpts(t)
	apps := cacheGridApps(t)
	cold, err := BuildGrid(nil, apps, opts)
	if err != nil {
		t.Fatal(err)
	}
	cells := len(cold.Results)

	ents, err := os.ReadDir(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	deleted := 0
	for i, e := range ents {
		if i%3 == 0 {
			if err := os.Remove(c.Dir() + "/" + e.Name()); err != nil {
				t.Fatal(err)
			}
			deleted++
		}
	}
	if deleted == 0 || deleted == cells {
		t.Fatalf("bad partition: deleted %d of %d", deleted, cells)
	}

	before := c.Stats()
	resumed, err := BuildGrid(nil, apps, opts)
	if err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if got := after.Writes - before.Writes; got != uint64(deleted) {
		t.Fatalf("resume recomputed %d cells, want exactly the %d deleted", got, deleted)
	}
	if got := after.Hits - before.Hits; got != uint64(cells-deleted) {
		t.Fatalf("resume hit %d cells, want %d", got, cells-deleted)
	}
	if !reflect.DeepEqual(cold.Results, resumed.Results) {
		t.Fatal("resumed grid differs from the original")
	}
}

// TestBuildGridNilCacheStillWorks guards the uncached path.
func TestBuildGridNilCacheStillWorks(t *testing.T) {
	opts, _ := cacheGridOpts(t)
	opts.Cache = nil
	g, err := BuildGrid(nil, cacheGridApps(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Results) != len(opts.Levels)*len(opts.Levels) {
		t.Fatalf("grid size %d", len(g.Results))
	}
	for i, r := range g.Results {
		if r.Cycles == 0 {
			t.Fatalf("cell %d empty", i)
		}
	}
}
