package search

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"ebm/internal/ckpt"
	"ebm/internal/config"
	"ebm/internal/metrics"
	"ebm/internal/obs"
	"ebm/internal/runner"
	"ebm/internal/simcache"
	"ebm/internal/workload"
)

// adaptiveCfg is the reduced machine every adaptive test searches on
// (cacheGridOpts' 4-core/4-partition config).
func adaptiveCfg() config.GPU {
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.NumMemPartitions = 4
	return cfg
}

// adaptiveOptsFromGrid mirrors a GridOptions into the AdaptiveOptions
// that searches the same space: same machine, horizons, levels, cache,
// and checkpoint store, so full-horizon runs share cache keys with grid
// cells.
func adaptiveOptsFromGrid(g GridOptions) AdaptiveOptions {
	return AdaptiveOptions{
		Config:       g.Config,
		Levels:       g.Levels,
		TotalCycles:  g.TotalCycles,
		WarmupCycles: g.WarmupCycles,
		Parallelism:  g.Parallelism,
		Runner:       g.Runner,
		Cache:        g.Cache,
		Ckpt:         g.Ckpt,
	}
}

// pseudoAlone derives positive per-app "alone" IPC and EB vectors from a
// grid's max-TLP cell, giving the SD- and scaled-EB-based objectives
// realistic surfaces without profiling the full suite.
func pseudoAlone(t *testing.T, g *Grid) (ipc, eb []float64) {
	t.Helper()
	maxC := make([]int, len(g.Apps))
	for i := range maxC {
		maxC[i] = g.Levels[len(g.Levels)-1]
	}
	r, err := g.At(maxC)
	if err != nil {
		t.Fatal(err)
	}
	ipc = r.IPCsInto(nil)
	eb = r.EBsInto(nil)
	for i := range ipc {
		if ipc[i] <= 0 {
			ipc[i] = 1e-6
		}
		if eb[i] <= 0 {
			eb[i] = 1e-6
		}
	}
	return ipc, eb
}

// TestAdaptiveMatchesExhaustive is the correctness contract of DESIGN.md
// §13: for every paper workload and all three objectives in both SD- and
// EB-based form, the adaptive search returns the identical optimal TLP
// combination the exhaustive grid scan returns. Everything runs on the
// full 8-level ladder (64 cells per workload) on the reduced machine,
// over one shared result cache and checkpoint store so full-horizon
// adaptive runs replay the grid's own cells.
func TestAdaptiveMatchesExhaustive(t *testing.T) {
	cfg := adaptiveCfg()
	cache, err := simcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.New(8)
	t.Cleanup(pool.Close)
	gopts := GridOptions{
		Config:       cfg,
		TotalCycles:  8_000,
		WarmupCycles: 2_000,
		Parallelism:  8,
		Runner:       pool,
		Cache:        cache,
		Ckpt:         store,
	}

	wls := workload.Evaluated()
	if testing.Short() {
		wls = workload.Representative()
	}
	for _, wl := range wls {
		g, err := BuildGrid(nil, wl.Apps, gopts)
		if err != nil {
			t.Fatalf("%s: grid: %v", wl.Name, err)
		}
		aloneIPC, aloneEB := pseudoAlone(t, g)
		evals := []struct {
			name string
			mk   func() Eval // fresh closure per use: scratch buffers are not shareable
		}{
			{"optWS", func() Eval { return SDEval(metrics.ObjWS, aloneIPC) }},
			{"optFI", func() Eval { return SDEval(metrics.ObjFI, aloneIPC) }},
			{"optHS", func() Eval { return SDEval(metrics.ObjHS, aloneIPC) }},
			{"BF-WS", func() Eval { return EBEval(metrics.ObjWS, nil) }},
			{"BF-FI", func() Eval { return EBEval(metrics.ObjFI, aloneEB) }},
			{"BF-HS", func() Eval { return EBEval(metrics.ObjHS, aloneEB) }},
		}
		for _, ev := range evals {
			want, wantV := g.Best(ev.mk())
			res, err := Adaptive(nil, wl.Apps, ev.mk(), adaptiveOptsFromGrid(gopts))
			if err != nil {
				t.Fatalf("%s/%s: adaptive: %v", wl.Name, ev.name, err)
			}
			if !reflect.DeepEqual(res.Combo, want) {
				t.Errorf("%s/%s: adaptive picked %v (%.6f), exhaustive %v (%.6f)",
					wl.Name, ev.name, res.Combo, res.Value, want, wantV)
			}
			if exhaustive := uint64(len(g.Results)) * gopts.TotalCycles; res.CyclesSubmitted >= exhaustive {
				t.Errorf("%s/%s: adaptive submitted %d cycles, exhaustive equivalent %d — no savings",
					wl.Name, ev.name, res.CyclesSubmitted, exhaustive)
			}
		}
	}
}

// TestAdaptiveKeepAllFullHorizonIsExhaustive pins the degenerate ladder:
// with Coarse = Levels, a single full-horizon rung, and Keep = 1 nothing
// is pruned, and the adaptive Finals reproduce the exhaustive grid
// bit-identically — from a separate, fresh cache, so the equivalence is
// the engine's, not the cache's.
func TestAdaptiveKeepAllFullHorizonIsExhaustive(t *testing.T) {
	gopts, _ := cacheGridOpts(t)
	apps := cacheGridApps(t)
	g, err := BuildGrid(nil, apps, gopts)
	if err != nil {
		t.Fatal(err)
	}

	acache, err := simcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	aopts := adaptiveOptsFromGrid(gopts)
	aopts.Cache = acache
	aopts.Coarse = gopts.Levels
	aopts.Rungs = 1
	aopts.Keep = 1
	res, err := Adaptive(nil, apps, EBEval(metrics.ObjWS, nil), aopts)
	if err != nil {
		t.Fatal(err)
	}
	combos := g.Combos()
	if len(res.Finals) != len(combos) || len(res.Pruned) != 0 {
		t.Fatalf("finals=%d pruned=%d, want %d/0", len(res.Finals), len(res.Pruned), len(combos))
	}
	for i, c := range res.Finals {
		if !reflect.DeepEqual(c.Combo, combos[i]) {
			t.Fatalf("final %d is %v, want %v", i, c.Combo, combos[i])
		}
		if !reflect.DeepEqual(c.Result, g.Results[i]) {
			t.Fatalf("final %d result differs from exhaustive cell", i)
		}
	}
	want, _ := g.Best(EBEval(metrics.ObjWS, nil))
	if !reflect.DeepEqual(res.Combo, want) {
		t.Fatalf("combo %v, want %v", res.Combo, want)
	}
}

// TestAdaptiveCorruptRungCheckpointDegradesCold reuses the checkpoint
// degradation contract: tearing every persisted checkpoint between rungs
// forces each continuation to replay from cycle zero instead of forking,
// and determinism keeps the selected optimum (and every full-horizon
// result) identical to the clean search.
func TestAdaptiveCorruptRungCheckpointDegradesCold(t *testing.T) {
	run := func(corrupt bool) (AdaptiveResult, ckpt.Stats) {
		gopts, _ := cacheGridOpts(t)
		dir := t.TempDir()
		store, err := ckpt.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		aopts := adaptiveOptsFromGrid(gopts)
		aopts.Ckpt = store
		aopts.TotalCycles = 20_000 // three distinct rungs: 5k, 10k, 20k
		if corrupt {
			aopts.OnRung = func(RungReport) {
				files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
				if err != nil {
					t.Fatal(err)
				}
				for _, f := range files {
					if err := os.WriteFile(f, []byte("torn"), 0o644); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		res, err := Adaptive(nil, cacheGridApps(t), EBEval(metrics.ObjWS, nil), aopts)
		if err != nil {
			t.Fatal(err)
		}
		return res, store.Stats()
	}

	clean, cleanStats := run(false)
	torn, tornStats := run(true)
	if cleanStats.Forks == 0 {
		t.Fatal("clean search never forked: rung continuations are not exercising checkpoints")
	}
	if tornStats.Corrupt == 0 {
		t.Fatal("torn search skipped no corrupt checkpoints: the corruption did not bite")
	}
	if !reflect.DeepEqual(torn.Combo, clean.Combo) {
		t.Fatalf("torn-store pick %v differs from clean pick %v", torn.Combo, clean.Combo)
	}
	if len(torn.Finals) != len(clean.Finals) {
		t.Fatalf("finals %d vs %d", len(torn.Finals), len(clean.Finals))
	}
	for i := range torn.Finals {
		if !reflect.DeepEqual(torn.Finals[i].Result, clean.Finals[i].Result) {
			t.Fatalf("final %d (%v) differs between torn and clean stores",
				i, torn.Finals[i].Combo)
		}
	}
}

// TestAdaptivePrunedNeverPollutesCache is the cache-pollution acceptance
// criterion: a pruned candidate's partial-horizon result is cached only
// under its short-TotalCycles key and must never be readable under the
// full-horizon key, and every pruning decision lands in the provenance
// ledger as a pruned@cycles record.
func TestAdaptivePrunedNeverPollutesCache(t *testing.T) {
	gopts, cache := cacheGridOpts(t)
	ledgerPath := filepath.Join(t.TempDir(), "ledger.jsonl")
	ledger, err := obs.OpenLedger(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	cache.SetLedger(ledger)

	aopts := adaptiveOptsFromGrid(gopts)
	aopts.TotalCycles = 20_000
	apps := cacheGridApps(t)
	res, err := Adaptive(nil, apps, EBEval(metrics.ObjWS, nil), aopts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ledger.Close(); err != nil {
		t.Fatal(err)
	}
	if len(res.Pruned) == 0 {
		t.Fatal("search pruned nothing: the halving ladder is not exercising pruning")
	}

	finals := map[string]bool{}
	for _, c := range res.Finals {
		finals[fmt.Sprint(c.Combo)] = true
	}
	a := &adaptive{apps: apps, opts: aopts}
	recs, skipped, err := obs.ReadLedger(ledgerPath)
	if err != nil || skipped != 0 {
		t.Fatalf("ledger read: %v (skipped %d)", err, skipped)
	}
	prunedRecs := map[string]obs.RunRecord{}
	for _, r := range recs {
		if r.Outcome == obs.OutcomePruned {
			prunedRecs[r.Fingerprint] = r
		}
	}
	for _, p := range res.Pruned {
		if finals[fmt.Sprint(p.Combo)] {
			continue // re-entered via the refine bracket and reached full horizon
		}
		if p.Cycles >= aopts.TotalCycles {
			t.Fatalf("pruned %v at %d cycles: pruning at the full horizon is meaningless", p.Combo, p.Cycles)
		}
		fullKey := simcache.Key(a.spec(p.Combo, aopts.TotalCycles))
		if _, ok := cache.Get(fullKey); ok {
			t.Fatalf("pruned combo %v readable under the full-horizon key", p.Combo)
		}
		shortKey := simcache.Key(a.spec(p.Combo, p.Cycles))
		if _, ok := cache.Get(shortKey); !ok {
			t.Fatalf("pruned combo %v missing its short-horizon entry", p.Combo)
		}
		rec, ok := prunedRecs[shortKey]
		if !ok {
			t.Fatalf("pruned combo %v has no pruned ledger record", p.Combo)
		}
		if rec.Cycles != p.Cycles {
			t.Fatalf("pruned record cycles %d, want %d", rec.Cycles, p.Cycles)
		}
		if want := fmt.Sprintf("pruned@%d", p.Cycles); rec.OutcomeString() != want {
			t.Fatalf("pruned record renders %q, want %q", rec.OutcomeString(), want)
		}
	}
}

// TestCombosFirstCallConcurrent hammers the previously-racy lazy Combos
// cache from concurrent evaluators on a grid that was never handed
// through BuildGrid (which used to pre-populate the cache and hide the
// race). Run under -race via the Makefile's verify target.
func TestCombosFirstCallConcurrent(t *testing.T) {
	apps := cacheGridApps(t)
	g := &Grid{Apps: apps, Levels: []int{1, 2, 4, 8, 16, 24}}
	const goroutines = 16
	results := make([][][]int, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = g.Combos()
		}()
	}
	wg.Wait()
	want := results[0]
	if len(want) != 36 {
		t.Fatalf("combos = %d, want 36", len(want))
	}
	for i := 1; i < goroutines; i++ {
		if &results[i][0] != &want[0] || !reflect.DeepEqual(results[i], want) {
			t.Fatalf("goroutine %d saw a different combos slice", i)
		}
	}
}

// TestHorizonLadder pins the rung-horizon planning: whole windows,
// clamped past the warmup, strictly increasing, final rung exactly the
// full horizon.
func TestHorizonLadder(t *testing.T) {
	cases := []struct {
		total, warmup uint64
		rungs         int
		want          []uint64
	}{
		{120_000, 20_000, 3, []uint64{30_000, 60_000, 120_000}},
		{120_000, 20_000, 1, []uint64{120_000}},
		{8_000, 2_000, 3, []uint64{5_000, 8_000}}, // short run collapses to two rungs
		{4_000, 2_000, 3, []uint64{4_000}},        // shorter than a window: single rung
		{50_000, 2_000, 4, []uint64{5_000, 10_000, 25_000, 50_000}},
		{20_000, 20_000, 3, []uint64{20_000}}, // warmup == total: single full rung
	}
	for _, c := range cases {
		got := horizonLadder(c.total, c.warmup, c.rungs)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("horizonLadder(%d, %d, %d) = %v, want %v", c.total, c.warmup, c.rungs, got, c.want)
		}
	}
}

// TestCoarseLevels pins the default subsampling.
func TestCoarseLevels(t *testing.T) {
	got := CoarseLevels([]int{1, 2, 4, 6, 8, 12, 16, 24})
	if !reflect.DeepEqual(got, []int{1, 4, 8, 16, 24}) {
		t.Fatalf("CoarseLevels = %v", got)
	}
	if got := CoarseLevels([]int{1, 8, 24}); !reflect.DeepEqual(got, []int{1, 24}) {
		t.Fatalf("CoarseLevels(3) = %v", got)
	}
}
