// Package search runs workloads under every TLP combination and evaluates
// the paper's offline comparison points on the resulting grid:
//
//   - optWS / optFI / optHS — exhaustive search over the SD-based metric
//     (the oracle the paper normalizes against);
//   - BF-WS / BF-FI / BF-HS — exhaustive search over the EB-based metric
//     (how good EB is as a proxy, with no search error);
//   - PBS-WS/FI/HS (Offline) — the pattern-based search executed on the
//     grid data, isolating the algorithm from runtime overheads.
package search

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ebm/internal/ckpt"
	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/metrics"
	"ebm/internal/obs"
	"ebm/internal/runner"
	"ebm/internal/sim"
	"ebm/internal/simcache"
	"ebm/internal/spec"
)

// GridOptions configures a grid build.
type GridOptions struct {
	Config       config.GPU
	Levels       []int // TLP levels per axis; default config.TLPLevels
	TotalCycles  uint64
	WarmupCycles uint64
	// Parallelism bounds how many grid cells this build keeps in flight at
	// once (it caps submissions to the shared pool, not pool workers).
	Parallelism int

	// Runner is the execution pool cells are submitted to. Nil means the
	// process-wide runner.Default().
	Runner *runner.Runner
	// Cache, when non-nil, serves cells from the on-disk result cache and
	// persists fresh ones — an interrupted build resumes where it stopped.
	Cache *simcache.Cache
	// Ckpt, when non-nil, executes uncached cells through the prefix
	// checkpoint store: every cell of a grid shares one deterministic
	// prefix (the static schemes differ, so in practice each cell shares
	// its prefix with the same cell at other horizons and with earlier
	// interrupted builds), forking from the deepest persisted snapshot
	// instead of replaying from cycle zero.
	Ckpt *ckpt.Store

	// Progress, when non-nil, is called after each combination finishes
	// with the number completed so far, the grid size, and the combination
	// that just completed. Calls are serialized (made under the builder's
	// lock) but may come from any worker goroutine and out of grid order.
	Progress func(done, total int, combo []int)
}

// Grid holds one sim.Result per TLP combination of a workload.
type Grid struct {
	Apps    []kernel.Params
	Levels  []int
	Results []sim.Result // flat, row-major: index = Σ levelIdx[i] * |levels|^i

	combosOnce sync.Once
	combos     [][]int // lazily built Combos cache

	// Lazy-cell support (NewLazyGrid): fill simulates one combination on
	// its first At access, ready tracks which flat indices hold real
	// results. Both are nil for grids built by BuildGrid.
	fillMu sync.Mutex
	fill   func(tlps []int) (sim.Result, error)
	ready  []bool
}

// Index converts per-app level indices into the flat grid index.
func (g *Grid) Index(levelIdx []int) int {
	idx := 0
	stride := 1
	for _, li := range levelIdx {
		idx += li * stride
		stride *= len(g.Levels)
	}
	return idx
}

// At returns the result for the given per-app TLP levels (values, not
// indices). On a lazy grid (NewLazyGrid) a missing cell is simulated on
// first access; fills are serialized, which suits the serial offline
// searches that read them.
func (g *Grid) At(tlps []int) (sim.Result, error) {
	li := make([]int, len(tlps))
	for i, t := range tlps {
		k := indexOf(g.Levels, t)
		if k < 0 {
			return sim.Result{}, fmt.Errorf("search: TLP %d not a grid level %v", t, g.Levels)
		}
		li[i] = k
	}
	idx := g.Index(li)
	if g.fill != nil {
		g.fillMu.Lock()
		defer g.fillMu.Unlock()
		if !g.ready[idx] {
			r, err := g.fill(append([]int(nil), tlps...))
			if err != nil {
				return sim.Result{}, err
			}
			g.Results[idx] = r
			g.ready[idx] = true
		}
	}
	return g.Results[idx], nil
}

// Combos returns every TLP combination in flat-index order. The slice is
// built once under a sync.Once and cached (evaluation loops call this per
// search), so the first call is safe from concurrent evaluators; callers
// must treat the result as read-only.
func (g *Grid) Combos() [][]int {
	g.combosOnce.Do(g.buildCombos)
	return g.combos
}

func (g *Grid) buildCombos() {
	n := len(g.Apps)
	total := 1
	for i := 0; i < n; i++ {
		total *= len(g.Levels)
	}
	out := make([][]int, total)
	for idx := 0; idx < total; idx++ {
		c := make([]int, n)
		rem := idx
		for i := 0; i < n; i++ {
			c[i] = g.Levels[rem%len(g.Levels)]
			rem /= len(g.Levels)
		}
		out[idx] = c
	}
	g.combos = out
}

func indexOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// BuildGrid simulates the workload under every TLP combination. Each cell
// is a leaf task on the shared executor (PriGrid — plentiful filler work),
// served from opts.Cache when a prior build already persisted it, so an
// interrupted sweep resumes without recomputing finished combinations.
// Cancelling ctx stops new submissions, aborts in-flight cells at their
// next window boundary, and returns an "interrupted after N/M" error
// wrapping ctx.Err(); combinations that completed before the cancel are
// already persisted, which is what makes the interruption resumable.
func BuildGrid(ctx context.Context, apps []kernel.Params, opts GridOptions) (*Grid, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("search: no applications")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Levels == nil {
		opts.Levels = append([]int(nil), config.TLPLevels...)
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.NumCPU()
	}
	g := &Grid{Apps: append([]kernel.Params(nil), apps...), Levels: opts.Levels}
	combos := g.Combos()
	g.Results = make([]sim.Result, len(combos))

	names := make([]string, len(apps))
	for i := range apps {
		names[i] = apps[i].Name
	}
	ctx, gsp := obs.StartSpan(ctx, "grid-build",
		obs.A("workload", strings.Join(names, "_")), obs.A("cells", strconv.Itoa(len(combos))))
	defer gsp.End()

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
		err  error
	)
	sem := make(chan struct{}, opts.Parallelism)
	for idx := range combos {
		mu.Lock()
		bail := err != nil
		mu.Unlock()
		if bail || ctx.Err() != nil {
			break
		}
		idx := idx
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			cctx, csp := obs.StartSpan(ctx, "cell", obs.A("combo", fmt.Sprint(combos[idx])))
			res, runErr := runCombo(cctx, apps, combos[idx], opts)
			csp.End()
			mu.Lock()
			defer mu.Unlock()
			if runErr != nil {
				if err == nil {
					err = runErr
				}
				return
			}
			g.Results[idx] = res
			done++
			if opts.Progress != nil {
				opts.Progress(done, len(combos), combos[idx])
			}
		}()
	}
	wg.Wait()
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("search: grid build interrupted after %d/%d combinations: %w",
			done, len(combos), cerr)
	}
	if err != nil {
		return nil, err
	}
	return g, nil
}

// NewLazyGrid returns a grid whose cells are simulated on first access
// instead of up front: At computes a missing cell on demand through the
// same cache/checkpoint path BuildGrid uses, so the offline PBS searches
// — which read only O(apps × levels) of the levels^apps cells — cost
// only the cells they actually touch. Fresh cells persist to opts.Cache,
// so a later exhaustive build of the same workload replays them. Only
// At is lazy: Best and Combos-driven scans see zero results for cells
// never accessed, so exhaustive consumers still need BuildGrid (or the
// adaptive search, which replaces the exhaustive argmax).
func NewLazyGrid(ctx context.Context, apps []kernel.Params, opts GridOptions) (*Grid, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("search: no applications")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Levels == nil {
		opts.Levels = append([]int(nil), config.TLPLevels...)
	}
	g := &Grid{Apps: append([]kernel.Params(nil), apps...), Levels: opts.Levels}
	g.Results = make([]sim.Result, len(g.Combos()))
	g.ready = make([]bool, len(g.Results))
	owned := g.Apps
	g.fill = func(tlps []int) (sim.Result, error) {
		return runCombo(ctx, owned, tlps, opts)
	}
	return g, nil
}

func runCombo(ctx context.Context, apps []kernel.Params, tlps []int, opts GridOptions) (sim.Result, error) {
	rs := spec.RunSpec{
		Config:       opts.Config,
		Apps:         apps,
		Scheme:       spec.Static(tlps, nil),
		TotalCycles:  opts.TotalCycles,
		WarmupCycles: opts.WarmupCycles,
	}
	return simcache.RunCached(ctx, opts.Cache, opts.Runner, runner.PriGrid, rs, ckpt.Runner(opts.Ckpt, rs))
}

// Eval is how a grid cell scores under some figure of merit. The closures
// built by SDEval/EBEval/ITEval reuse captured scratch buffers across
// calls, so a single Eval value must not be invoked concurrently; build
// one evaluator per goroutine instead.
type Eval func(r sim.Result) float64

// SDEval builds an evaluator for a slowdown-based objective given the
// per-app alone IPCs (at bestTLP).
func SDEval(obj metrics.Objective, aloneIPC []float64) Eval {
	var ipcBuf, sdBuf []float64
	return func(r sim.Result) float64 {
		ipcBuf = r.IPCsInto(ipcBuf[:0])
		var err error
		sdBuf, err = metrics.SlowdownsInto(sdBuf[:0], ipcBuf, aloneIPC)
		if err != nil {
			return 0
		}
		return obj.SDMetric(sdBuf)
	}
}

// EBEval builds an evaluator for an EB-based objective; scale may be nil.
func EBEval(obj metrics.Objective, scale []float64) Eval {
	var ebBuf []float64
	return func(r sim.Result) float64 {
		ebBuf = r.EBsInto(ebBuf[:0])
		return obj.EBMetric(ebBuf, scale)
	}
}

// ITEval evaluates raw instruction throughput (Observation 2).
func ITEval() Eval {
	var ipcBuf []float64
	return func(r sim.Result) float64 {
		ipcBuf = r.IPCsInto(ipcBuf[:0])
		return metrics.IT(ipcBuf)
	}
}

// Best exhaustively finds the combination maximizing eval. It returns the
// winning TLP combination and its value.
func (g *Grid) Best(eval Eval) ([]int, float64) {
	combos := g.Combos()
	bestIdx, bestV := 0, eval(g.Results[0])
	for i := 1; i < len(combos); i++ {
		if v := eval(g.Results[i]); v > bestV {
			bestV = v
			bestIdx = i
		}
	}
	return combos[bestIdx], bestV
}

// PBSOffline executes the pattern-based search on the grid data: sweeps
// with co-runners pinned at the maximum level, critical-app selection by
// largest metric drop, inflection pinning, then downward tuning of the
// remaining apps with first-non-improvement stopping. It mirrors the
// online algorithm in internal/core minus all runtime overheads.
// sweepLevels defaults to the online manager's {1,2,4,8,16,24} subset.
func (g *Grid) PBSOffline(eval Eval, sweepLevels []int) ([]int, float64) {
	n := len(g.Apps)
	maxLevel := g.Levels[len(g.Levels)-1]
	if sweepLevels == nil {
		sweepLevels = []int{1, 2, 4, 8, 16, 24}
	}
	var usable []int
	for _, l := range sweepLevels {
		if indexOf(g.Levels, l) >= 0 {
			usable = append(usable, l)
		}
	}
	sweepLevels = usable

	at := func(tlps []int) float64 {
		r, err := g.At(tlps)
		if err != nil {
			return 0
		}
		return eval(r)
	}

	// Sweeps: vary one app over sweepLevels, others at maxLevel. Alongside
	// the pair metric, record each app's own EB to locate its Guideline-2
	// inflection cap.
	curve := make([][]float64, n)
	ownEB := make([][]float64, n)
	for app := 0; app < n; app++ {
		curve[app] = make([]float64, len(sweepLevels))
		ownEB[app] = make([]float64, len(sweepLevels))
		for li, l := range sweepLevels {
			combo := make([]int, n)
			for i := range combo {
				combo[i] = maxLevel
			}
			combo[app] = l
			curve[app][li] = at(combo)
			if r, err := g.At(combo); err == nil {
				ownEB[app][li] = r.Apps[app].EB
			}
		}
	}
	caps := make([]int, n)
	for app := 0; app < n; app++ {
		caps[app] = capByCollapse(ownEB[app], sweepLevels)
	}
	critical, bestDrop := 0, -1.0
	for app := 0; app < n; app++ {
		drop, _ := dropAndArgmax(curve[app])
		if drop > bestDrop {
			bestDrop = drop
			critical = app
		}
	}
	_, argmax := dropAndArgmax(curve[critical])
	fixed := sweepLevels[argmax]
	if fixed > caps[critical] {
		fixed = caps[critical]
	}

	combo := make([]int, n)
	for i := range combo {
		if i != critical && caps[i] < maxLevel {
			combo[i] = caps[i]
		} else {
			combo[i] = maxLevel
		}
	}
	combo[critical] = fixed

	// Tune the non-critical apps, most disruptive first.
	order := make([]int, 0, n-1)
	for app := 0; app < n; app++ {
		if app != critical {
			order = append(order, app)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		di, _ := dropAndArgmax(curve[order[i]])
		dj, _ := dropAndArgmax(curve[order[j]])
		return di > dj
	})
	desc := append([]int(nil), sweepLevels...)
	sort.Sort(sort.Reverse(sort.IntSlice(desc)))
	const patience = 2 // consecutive non-improvements before stopping
	for _, app := range order {
		lv := make([]int, 0, len(desc))
		for _, l := range desc {
			if l <= caps[app] {
				lv = append(lv, l)
			}
		}
		if len(lv) == 0 {
			lv = []int{sweepLevels[0]}
		}
		bestT, bestV := lv[0], 0.0
		combo[app] = lv[0]
		bestV = at(combo)
		miss := 0
		for _, l := range lv[1:] {
			combo[app] = l
			v := at(combo)
			if v > bestV {
				bestV = v
				bestT = l
				miss = 0
			} else if miss++; miss >= patience {
				break
			}
		}
		combo[app] = bestT
	}
	return combo, at(combo)
}

// PBSOfflineFI executes the paper's Section V-C fairness search on grid
// data for a two-application workload: sweeps record the scaled
// EB-difference; the application inducing the larger difference changes is
// critical and is fixed at the balance crossing; the other is scanned for
// the lowest healthy |difference|. scale holds the alone-EB scaling
// factors (exact, group, or sampled).
func (g *Grid) PBSOfflineFI(scale []float64, sweepLevels []int) ([]int, float64) {
	if len(g.Apps) != 2 {
		// The difference procedure is pairwise; defer to the generic
		// climb for other shapes.
		return g.PBSOffline(EBEval(metrics.ObjFI, scale), sweepLevels)
	}
	maxLevel := g.Levels[len(g.Levels)-1]
	if sweepLevels == nil {
		sweepLevels = []int{1, 2, 4, 8, 16, 24}
	}
	var usable []int
	for _, l := range sweepLevels {
		if indexOf(g.Levels, l) >= 0 {
			usable = append(usable, l)
		}
	}
	sweepLevels = usable

	diffAt := func(tlps []int) (d, sum float64) {
		r, err := g.At(tlps)
		if err != nil {
			return 0, 0
		}
		e0, e1 := r.Apps[0].EB, r.Apps[1].EB
		if len(scale) >= 2 {
			if scale[0] > 0 {
				e0 /= scale[0]
			}
			if scale[1] > 0 {
				e1 /= scale[1]
			}
		}
		return e0 - e1, e0 + e1
	}

	n := 2
	diffs := make([][]float64, n)
	sums := make([][]float64, n)
	ownEB := make([][]float64, n)
	for app := 0; app < n; app++ {
		diffs[app] = make([]float64, len(sweepLevels))
		sums[app] = make([]float64, len(sweepLevels))
		ownEB[app] = make([]float64, len(sweepLevels))
		for li, l := range sweepLevels {
			combo := []int{maxLevel, maxLevel}
			combo[app] = l
			diffs[app][li], sums[app][li] = diffAt(combo)
			if r, err := g.At(combo); err == nil {
				ownEB[app][li] = r.Apps[app].EB
			}
		}
	}
	caps := []int{
		capByCollapse(ownEB[0], sweepLevels),
		capByCollapse(ownEB[1], sweepLevels),
	}
	critical := 0
	if curveRange(diffs[1]) > curveRange(diffs[0]) {
		critical = 1
	}
	fixIdx := chooseByDiff(diffs[critical], sums[critical])
	fixed := sweepLevels[fixIdx]
	if fixed > caps[critical] {
		fixed = caps[critical]
	}

	other := 1 - critical
	combo := []int{0, 0}
	combo[critical] = fixed
	var tuneDiffs, tuneSums []float64
	var tuneLv []int
	for i := len(sweepLevels) - 1; i >= 0; i-- {
		l := sweepLevels[i]
		if l > caps[other] {
			continue
		}
		combo[other] = l
		d, s := diffAt(combo)
		tuneDiffs = append(tuneDiffs, d)
		tuneSums = append(tuneSums, s)
		tuneLv = append(tuneLv, l)
	}
	if len(tuneLv) == 0 {
		combo[other] = sweepLevels[0]
	} else {
		combo[other] = tuneLv[chooseByDiff(tuneDiffs, tuneSums)]
	}
	return combo, EBEval(metrics.ObjFI, scale)(mustAt(g, combo))
}

func mustAt(g *Grid, tlps []int) sim.Result {
	r, err := g.At(tlps)
	if err != nil {
		panic(err)
	}
	return r
}

// chooseByDiff mirrors internal/core: prefer the balance sign-crossing of
// the EB-difference; otherwise the smallest healthy |difference|.
func chooseByDiff(diffs, sums []float64) int {
	const healthyFrac = 0.4
	best := -1
	for i := 0; i+1 < len(diffs); i++ {
		if (diffs[i] <= 0) == (diffs[i+1] <= 0) {
			continue
		}
		cand := i
		if absf(diffs[i+1]) < absf(diffs[i]) {
			cand = i + 1
		}
		if best == -1 || absf(diffs[cand]) < absf(diffs[best]) {
			best = cand
		}
	}
	if best >= 0 {
		return best
	}
	maxSum := 0.0
	for _, s := range sums {
		if s > maxSum {
			maxSum = s
		}
	}
	for i, d := range diffs {
		if sums[i] < healthyFrac*maxSum {
			continue
		}
		if best == -1 || absf(d) < absf(diffs[best]) {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	best = 0
	for i := range diffs {
		if absf(diffs[i]) < absf(diffs[best]) {
			best = i
		}
	}
	return best
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// curveRange returns max-min of a curve.
func curveRange(m []float64) float64 {
	if len(m) == 0 {
		return 0
	}
	lo, hi := m[0], m[0]
	for _, v := range m {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// collapseFrac mirrors internal/core's Guideline-2 threshold.
const collapseFrac = 0.6

// capByCollapse returns the largest level whose own-EB retains at least
// collapseFrac of the curve's peak (no cap for flat or rising curves).
func capByCollapse(curve []float64, levels []int) int {
	if len(curve) == 0 {
		return levels[len(levels)-1]
	}
	peak := curve[0]
	for _, v := range curve {
		if v > peak {
			peak = v
		}
	}
	for i := len(curve) - 1; i >= 0; i-- {
		if curve[i] >= collapseFrac*peak {
			return levels[i]
		}
	}
	return levels[0]
}

// dropAndArgmax mirrors internal/core's pattern detection: the sharpest
// post-peak decline and the peak index.
func dropAndArgmax(m []float64) (drop float64, argmax int) {
	if len(m) == 0 {
		return 0, 0
	}
	maxV := m[0]
	for i, v := range m {
		if v > maxV {
			maxV = v
			argmax = i
		}
	}
	minAfter := maxV
	for _, v := range m[argmax:] {
		if v < minAfter {
			minAfter = v
		}
	}
	return maxV - minAfter, argmax
}
