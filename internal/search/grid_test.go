package search

import (
	"testing"

	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/metrics"
	"ebm/internal/sim"
)

func smallCfg() config.GPU {
	c := config.Default()
	c.NumCores = 4
	c.NumMemPartitions = 4
	return c
}

func apps(names ...string) []kernel.Params {
	out := make([]kernel.Params, len(names))
	for i, n := range names {
		p, ok := kernel.ByName(n)
		if !ok {
			panic("unknown " + n)
		}
		out[i] = p
	}
	return out
}

func buildSmallGrid(t *testing.T) *Grid {
	t.Helper()
	g, err := BuildGrid(nil, apps("BLK", "BFS"), GridOptions{
		Config:       smallCfg(),
		Levels:       []int{1, 4, 24},
		TotalCycles:  15_000,
		WarmupCycles: 3_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGridShapeAndIndexing(t *testing.T) {
	g := buildSmallGrid(t)
	combos := g.Combos()
	if len(combos) != 9 {
		t.Fatalf("%d combos, want 9", len(combos))
	}
	if len(g.Results) != 9 {
		t.Fatalf("%d results", len(g.Results))
	}
	seen := map[string]bool{}
	for _, c := range combos {
		r, err := g.At(c)
		if err != nil {
			t.Fatal(err)
		}
		if r.Apps[0].Insts == 0 {
			t.Fatalf("combo %v produced an empty result", c)
		}
		key := string(rune(c[0])) + "/" + string(rune(c[1]))
		if seen[key] {
			t.Fatalf("duplicate combo %v", c)
		}
		seen[key] = true
	}
	// Flat index round trip.
	for i, c := range combos {
		li := []int{indexOf(g.Levels, c[0]), indexOf(g.Levels, c[1])}
		if g.Index(li) != i {
			t.Fatalf("index mismatch for %v", c)
		}
	}
	if _, err := g.At([]int{3, 4}); err == nil {
		t.Fatal("At accepted a non-level TLP")
	}
}

func TestGridResultsMatchCombosByTLP(t *testing.T) {
	g := buildSmallGrid(t)
	// The stored result for (1,24) must actually be the run at TLP 1/24:
	// verify via the reported final TLPs.
	r, err := g.At([]int{1, 24})
	if err != nil {
		t.Fatal(err)
	}
	if r.Apps[0].FinalTLP != 1 || r.Apps[1].FinalTLP != 24 {
		t.Fatalf("grid cell (1,24) holds run with TLPs (%d,%d)",
			r.Apps[0].FinalTLP, r.Apps[1].FinalTLP)
	}
}

func TestBestFindsArgmax(t *testing.T) {
	g := buildSmallGrid(t)
	eval := EBEval(metrics.ObjWS, nil)
	combo, val := g.Best(eval)
	for _, c := range g.Combos() {
		r, _ := g.At(c)
		if eval(r) > val+1e-12 {
			t.Fatalf("Best missed combo %v (found %v)", c, combo)
		}
	}
	r, _ := g.At(combo)
	if eval(r) != val {
		t.Fatal("Best value inconsistent with its combo")
	}
}

func TestEvaluators(t *testing.T) {
	g := buildSmallGrid(t)
	r := g.Results[0]
	alone := []float64{r.Apps[0].IPC * 2, r.Apps[1].IPC * 2}
	if v := SDEval(metrics.ObjWS, alone)(r); v <= 0 || v > 2 {
		t.Fatalf("SD WS eval = %v", v)
	}
	if v := SDEval(metrics.ObjWS, []float64{1})(r); v != 0 {
		t.Fatal("mismatched alone vector should score 0")
	}
	if v := ITEval()(r); v != r.Apps[0].IPC+r.Apps[1].IPC {
		t.Fatal("IT eval")
	}
	if v := EBEval(metrics.ObjFI, nil)(r); v < 0 || v > 1 {
		t.Fatalf("EBFI eval = %v", v)
	}
}

func TestPBSOfflineReturnsValidCombo(t *testing.T) {
	g := buildSmallGrid(t)
	combo, val := g.PBSOffline(EBEval(metrics.ObjWS, nil), []int{1, 4, 24})
	if len(combo) != 2 {
		t.Fatal("combo shape")
	}
	if _, err := g.At(combo); err != nil {
		t.Fatalf("PBSOffline produced a non-grid combo %v", combo)
	}
	if val <= 0 {
		t.Fatalf("value %v", val)
	}
	// The pattern search may be suboptimal but must not be catastrophic:
	// within the (tiny) grid it should reach half the exhaustive best.
	_, best := g.Best(EBEval(metrics.ObjWS, nil))
	if val < 0.5*best {
		t.Fatalf("PBSOffline %v far below exhaustive %v", val, best)
	}
}

func TestPBSOfflineFIReturnsValidCombo(t *testing.T) {
	g := buildSmallGrid(t)
	scale := []float64{1, 1}
	combo, _ := g.PBSOfflineFI(scale, []int{1, 4, 24})
	if _, err := g.At(combo); err != nil {
		t.Fatalf("bad combo %v", combo)
	}
}

func TestBuildGridErrors(t *testing.T) {
	if _, err := BuildGrid(nil, nil, GridOptions{Config: smallCfg()}); err == nil {
		t.Fatal("empty workload accepted")
	}
	bad := smallCfg()
	bad.NumCores = 3 // not divisible between 2 apps
	if _, err := BuildGrid(nil, apps("BLK", "TRD"), GridOptions{
		Config: bad, TotalCycles: 1000,
	}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestThreeAppGrid(t *testing.T) {
	// 3 apps with 2 levels: 8 combos on a tiny machine (3 cores, 1 each).
	cfg := smallCfg()
	cfg.NumCores = 3
	g, err := BuildGrid(nil, apps("BLK", "TRD", "BFS"), GridOptions{
		Config:       cfg,
		Levels:       []int{2, 24},
		TotalCycles:  8_000,
		WarmupCycles: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Combos()) != 8 {
		t.Fatalf("%d combos, want 8", len(g.Combos()))
	}
	combo, _ := g.PBSOffline(EBEval(metrics.ObjWS, nil), []int{2, 24})
	if len(combo) != 3 {
		t.Fatalf("3-app PBS combo %v", combo)
	}
}

func TestGridEvalOnSyntheticResults(t *testing.T) {
	// Hand-built grid to pin PBSOffline's search path deterministically.
	g := &Grid{
		Apps:   apps("BLK", "TRD"),
		Levels: []int{1, 4, 24},
	}
	// EB surfaces: app0 collapses at 24 (own cliff), app1 indifferent.
	mk := func(eb0, eb1 float64) sim.Result {
		return sim.Result{Apps: []sim.AppResult{{EB: eb0}, {EB: eb1}}}
	}
	// Index layout: idx = i0 + 3*i1 (levels of app0 vary fastest).
	g.Results = []sim.Result{
		// t1=1:        t0=1          t0=4          t0=24
		mk(0.5, 0.9), mk(1.0, 0.8), mk(0.2, 0.6),
		// t1=4:
		mk(0.5, 0.8), mk(1.0, 0.7), mk(0.2, 0.5),
		// t1=24:
		mk(0.4, 0.6), mk(0.9, 0.5), mk(0.1, 0.3),
	}
	eval := EBEval(metrics.ObjWS, nil)
	combo, val := g.Best(eval)
	if combo[0] != 4 || combo[1] != 1 {
		t.Fatalf("Best = %v", combo)
	}
	if val != 1.8 {
		t.Fatalf("Best val = %v", val)
	}
	pc, pv := g.PBSOffline(eval, []int{1, 4, 24})
	// Sweeps at co-24: app0 curve (t0 in 1,4,24 @ t1=24): 1.0, 1.4, 0.4
	// -> drop 1.0, argmax at 4, own-EB cap 4 (collapse at 24).
	// app1 curve (t1 @ t0=24): 0.8, 0.7, 0.4 -> drop 0.4.
	// Critical = app0 fixed at 4; tune app1 descending from its cap.
	if pc[0] != 4 {
		t.Fatalf("critical app pinned at %d, want 4 (combo %v)", pc[0], pc)
	}
	r, _ := g.At(pc)
	if eval(r) != pv {
		t.Fatal("PBSOffline value inconsistent")
	}
	if pv < 1.5 {
		t.Fatalf("pattern search landed poorly: %v -> %v", pc, pv)
	}
}
