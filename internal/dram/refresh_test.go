package dram

import (
	"testing"

	"ebm/internal/config"
	"ebm/internal/mem"
)

func refreshCfg() *config.GPU {
	c := config.Default()
	c.Timing.TREFI = 500
	c.Timing.TRFC = 60
	return &c
}

func TestRefreshCounted(t *testing.T) {
	p := NewPartition(0, refreshCfg(), 1)
	for now := uint64(0); now < 2600; now++ {
		p.Tick(now)
	}
	// Refreshes at 0, 500, 1000, 1500, 2000, 2500.
	if got := p.Refreshes.Total(); got != 6 {
		t.Fatalf("refreshes = %d, want 6", got)
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	c := config.Default()
	p := NewPartition(0, &c, 1)
	for now := uint64(0); now < 10_000; now++ {
		p.Tick(now)
	}
	if p.Refreshes.Total() != 0 {
		t.Fatal("refresh ran with TREFI=0")
	}
}

func TestRefreshDelaysRequests(t *testing.T) {
	cfg := refreshCfg()
	p := NewPartition(0, cfg, 1)
	// Request arriving right at a refresh boundary waits out tRFC.
	p.Enqueue(&mem.Request{Kind: mem.ReadReq, LineAddr: 0, App: 0}, 500)
	var doneAt uint64
	for now := uint64(500); now < 1500 && doneAt == 0; now++ {
		p.Tick(now)
		if p.PopResponse() != nil {
			doneAt = now
		}
	}
	if doneAt == 0 {
		t.Fatal("request never completed")
	}
	minDone := uint64(500 + cfg.Timing.TRFC)
	if doneAt < minDone {
		t.Fatalf("request completed at %d, before the refresh window ended (%d)", doneAt, minDone)
	}
}

func TestRefreshClosesRows(t *testing.T) {
	cfg := refreshCfg()
	p := NewPartition(0, cfg, 1)
	// Open a row, run past a refresh, access the same row again: it
	// must be an activate (row miss), not a row hit.
	p.Enqueue(&mem.Request{Kind: mem.ReadReq, LineAddr: 0, App: 0}, 0)
	for now := uint64(0); now < 490; now++ {
		p.Tick(now)
		p.PopResponse()
	}
	hitsBefore := p.Apps[0].RowHits.Total()
	p.Enqueue(&mem.Request{Kind: mem.ReadReq, LineAddr: 128, App: 0}, 600)
	for now := uint64(600); now < 1100; now++ {
		p.Tick(now)
		p.PopResponse()
	}
	if p.Apps[0].RowHits.Total() != hitsBefore {
		t.Fatal("row survived a refresh (refresh must precharge all banks)")
	}
}

func TestRefreshReducesBandwidth(t *testing.T) {
	// A saturating read stream attains less bandwidth with refresh on.
	run := func(trefi, trfc int) uint64 {
		c := config.Default()
		c.Timing.TREFI = trefi
		c.Timing.TRFC = trfc
		p := NewPartition(0, &c, 1)
		addr := uint64(0)
		for now := uint64(0); now < 20_000; now++ {
			for p.CanAccept() {
				p.Enqueue(&mem.Request{Kind: mem.ReadReq, LineAddr: addr, App: 0}, now)
				addr += 128
			}
			p.Tick(now)
			for p.PopResponse() != nil {
			}
		}
		return p.Apps[0].BWBytes.Total()
	}
	without := run(0, 0)
	with := run(1000, 130)
	if with >= without {
		t.Fatalf("refresh did not cost bandwidth: %d vs %d", with, without)
	}
	// The tax should be in the ballpark of tRFC/tREFI (13%), not a cliff.
	if float64(with) < 0.6*float64(without) {
		t.Fatalf("refresh tax implausibly large: %d vs %d", with, without)
	}
}
