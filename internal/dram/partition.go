// Package dram models one GPU memory partition: the L2 cache slice, its
// MSHRs, and the GDDR5 memory controller behind it (Table I).
//
// The controller implements FR-FCFS scheduling (first-ready row hits ahead
// of older row misses) over a per-partition request queue, with per-bank
// row-buffer state and the Hynix GDDR5 timing constraints tCL, tRP, tRAS,
// tRCD, tRRD, tCCD, and tWR. The data bus serializes line transfers at BL
// memory cycles per line, which sets the attainable bandwidth ceiling the
// paper's BW metric is normalized against.
//
// All partition logic runs on the memory clock; the simulator converts to
// and from core cycles at the boundary.
package dram

import (
	"fmt"

	"ebm/internal/cache"
	"ebm/internal/config"
	"ebm/internal/mem"
	"ebm/internal/stats"
)

// bank holds per-DRAM-bank row-buffer and timing state, in memory cycles.
type bank struct {
	openRow   int64  // -1 when closed
	actAt     uint64 // time of the last activate (tRAS reference)
	colReady  uint64 // earliest next column command on this bank
	lastColAt uint64 // last column command (tWR reference)
	preDone   uint64 // precharge completion time when closing
}

type eventKind uint8

const (
	evL2Hit eventKind = iota
	evDRAMRead
)

type event struct {
	at   uint64
	kind eventKind
	req  *mem.Request
}

// eventHeap is a binary min-heap on event.at. It is hand-rolled rather
// than backed by container/heap because the interface{}-based API boxes
// every pushed and popped event, which dominated the cycle path's heap
// allocations; the sift order is identical to container/heap's, so the
// pop order among equal timestamps — and therefore the simulation — is
// unchanged.
type eventHeap []event

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	for j := len(s) - 1; j > 0; {
		parent := (j - 1) / 2
		if s[j].at >= s[parent].at {
			break
		}
		s[j], s[parent] = s[parent], s[j]
		j = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	for i := 0; ; {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s[j2].at < s[j].at {
			j = j2
		}
		if s[j].at >= s[i].at {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	e := s[n]
	s[n] = event{} // drop the *mem.Request reference
	*h = s[:n]
	return e
}

// Stats aggregates the partition-side per-application telemetry the
// paper's designated-partition sampling reads (Fig. 8 items 4–6).
type Stats struct {
	BWBytes    stats.Counter // data-bus bytes transferred (reads+writes)
	RowHits    stats.Counter
	RowMisses  stats.Counter // activates (closed or conflict)
	DRAMReads  stats.Counter
	DRAMWrites stats.Counter
	LatencySum stats.Counter // read latency in mem cycles, summed
}

// Partition is one memory controller plus its L2 slice.
type Partition struct {
	ID  int
	cfg *config.GPU

	L2 *cache.Cache

	inq      []*mem.Request // bounded input queue fed by the interconnect
	inqCap   int
	mshr     *mem.MSHRTable[*mem.Request] // line -> read waiters in DRAM
	pool     *mem.Pool                    // request free list (nil: plain allocation)
	dramQ    []*mem.Request               // FR-FCFS queue
	dramQCap int

	banks     []bank
	busFreeAt uint64
	lastActAt uint64
	lastColAt uint64

	events eventHeap

	resp []*mem.Request // completed responses awaiting the return network

	l2LatMem uint64 // L2 hit latency converted to memory cycles

	// Per-app telemetry.
	Apps []Stats

	// Refreshes counts all-bank refresh operations (zero unless the
	// timing's TREFI is configured).
	Refreshes   stats.Counter
	nextRefresh uint64

	// MSHRStalls counts memory cycles the input-queue head was blocked by
	// a full L2 MSHR file or DRAM queue (structural back-pressure toward
	// the interconnect); BusBusy accumulates the memory cycles the data
	// bus spent bursting, so (windowed BusBusy)/(window mem cycles) is the
	// bus utilization. Both are observability counters: they feed the obs
	// exporters and never influence scheduling.
	MSHRStalls stats.Counter
	BusBusy    stats.Counter

	// derived address mapping
	interleave uint64
	nparts     uint64
	rowBytes   uint64
	nbanks     uint64
}

// NewPartition builds partition id of the machine described by cfg with
// per-app statistics for numApps applications.
func NewPartition(id int, cfg *config.GPU, numApps int) *Partition {
	l2LatMem := uint64(float64(cfg.L2HitLatency) * cfg.MemCyclesPerCoreCycle())
	if l2LatMem == 0 {
		l2LatMem = 1
	}
	l2MSHRs := cfg.L2MSHRs
	if l2MSHRs <= 0 {
		l2MSHRs = 64
	}
	p := &Partition{
		ID:         id,
		cfg:        cfg,
		L2:         cache.New(cfg.L2, numApps),
		inqCap:     32,
		mshr:       mem.NewMSHRTable[*mem.Request](l2MSHRs),
		dramQCap:   64,
		banks:      make([]bank, cfg.BanksPerMC),
		l2LatMem:   l2LatMem,
		Apps:       make([]Stats, numApps),
		interleave: uint64(cfg.AddrInterleave),
		nparts:     uint64(cfg.NumMemPartitions),
		rowBytes:   uint64(cfg.RowBytes),
		nbanks:     uint64(cfg.BanksPerMC),
	}
	for i := range p.banks {
		p.banks[i].openRow = -1
	}
	return p
}

// SetPool attaches a request free list shared with the rest of the
// machine. A nil pool (the default) allocates from and releases to the
// garbage collector.
func (p *Partition) SetPool(pool *mem.Pool) { p.pool = pool }

// CanAccept reports whether the input queue has room for another request;
// the simulator uses it for interconnect back-pressure.
func (p *Partition) CanAccept() bool { return len(p.inq) < p.inqCap }

// Quiescent reports whether Tick is a provable no-op this cycle: nothing
// queued at the L2, nothing in flight to DRAM, no pending completion
// events, and no refresh modeling (refresh fires on a wall-clock schedule
// and must observe every cycle). The simulator skips ticking quiescent
// partitions; no counters advance on an idle partition, so the skip is
// exact.
func (p *Partition) Quiescent() bool {
	return len(p.inq) == 0 && len(p.dramQ) == 0 && len(p.events) == 0 &&
		p.cfg.Timing.TREFI <= 0
}

// Enqueue places a request arriving from the interconnect into the input
// queue at memory cycle now. The caller must have checked CanAccept.
func (p *Partition) Enqueue(req *mem.Request, now uint64) {
	if len(p.inq) >= p.inqCap {
		panic("dram: Enqueue past capacity; caller must check CanAccept")
	}
	req.MemBorn = now
	p.inq = append(p.inq, req)
}

// PopResponse removes one completed read reply, or returns nil.
func (p *Partition) PopResponse() *mem.Request {
	if len(p.resp) == 0 {
		return nil
	}
	r := p.resp[0]
	copy(p.resp, p.resp[1:])
	p.resp = p.resp[:len(p.resp)-1]
	return r
}

// PendingResponses returns the number of replies awaiting the return path.
func (p *Partition) PendingResponses() int { return len(p.resp) }

// localAddr converts a global line address to the partition-local byte
// offset implied by the chunked interleave: global chunk i lives at local
// chunk i/nparts. The L2 slice and the DRAM mapping both index with the
// local address — indexing with the global address would leave 1/nparts
// of the slice's sets usable, since the interleave bits are constant
// within a partition.
func (p *Partition) localAddr(addr uint64) uint64 {
	chunk := addr / p.interleave
	return (chunk/p.nparts)*p.interleave + addr%p.interleave
}

// globalAddr inverts localAddr for this partition.
func (p *Partition) globalAddr(local uint64) uint64 {
	chunk := local / p.interleave
	return (chunk*p.nparts+uint64(p.ID))*p.interleave + local%p.interleave
}

// bankAndRow maps a global line address to (bank, row) using the
// partition-local address: consecutive rows rotate across banks so
// streaming accesses exercise bank-level parallelism.
func (p *Partition) bankAndRow(addr uint64) (int, int64) {
	local := p.localAddr(addr)
	rowIdx := local / p.rowBytes
	return int(rowIdx % p.nbanks), int64(rowIdx / p.nbanks)
}

// Tick advances the partition by one memory cycle.
func (p *Partition) Tick(now uint64) {
	p.maybeRefresh(now)
	p.drainEvents(now)
	p.acceptOne(now)
	p.scheduleDRAM(now)
}

// maybeRefresh models all-bank refresh: every TREFI cycles the banks are
// precharged and unavailable for TRFC cycles.
func (p *Partition) maybeRefresh(now uint64) {
	t := &p.cfg.Timing
	if t.TREFI <= 0 || now < p.nextRefresh {
		return
	}
	p.nextRefresh = now + uint64(t.TREFI)
	p.Refreshes.Inc()
	done := now + uint64(t.TRFC)
	for i := range p.banks {
		b := &p.banks[i]
		b.openRow = -1 // refresh precharges all banks
		if b.preDone < done {
			b.preDone = done
		}
		if b.colReady < done {
			b.colReady = done
		}
	}
	if p.busFreeAt < done {
		p.busFreeAt = done
	}
}

// drainEvents retires every event due at or before now.
func (p *Partition) drainEvents(now uint64) {
	for len(p.events) > 0 && p.events[0].at <= now {
		e := p.events.pop()
		switch e.kind {
		case evL2Hit:
			e.req.Kind = mem.ReadReply
			p.resp = append(p.resp, e.req)
		case evDRAMRead:
			line := e.req.LineAddr
			app := e.req.App
			ev := p.L2.Fill(p.localAddr(line), app)
			if ev.Valid && ev.Dirty {
				// Write back the dirty victim; charged to its owner. The
				// queue may transiently exceed its cap here — write-backs
				// are internally generated and cannot be back-pressured.
				wb := p.pool.Get()
				wb.Kind, wb.LineAddr, wb.App = mem.WriteReq, p.globalAddr(ev.LineAddr), ev.App
				p.dramQ = append(p.dramQ, wb)
			}
			p.Apps[app].LatencySum.Add(now - e.req.MemBorn)
			waiters := p.mshr.Remove(line)
			for _, w := range waiters {
				w.Kind = mem.ReadReply
				p.resp = append(p.resp, w)
			}
			p.mshr.Release(waiters)
		}
	}
}

// acceptOne dequeues at most one input request per memory cycle and probes
// the L2. This matches the single tag-array port of the slice.
func (p *Partition) acceptOne(now uint64) {
	if len(p.inq) == 0 {
		return
	}
	req := p.inq[0]
	app := req.App

	if req.Kind == mem.WriteReq {
		// Store traffic is write-through from the L1s but write-back at
		// the L2: a hit marks the line dirty and is absorbed; a miss does
		// not allocate and goes straight to DRAM.
		if p.L2.WriteProbe(p.localAddr(req.LineAddr)) {
			p.popInq()
			p.pool.Put(req) // absorbed by the L2: the message is dead
			return
		}
		if len(p.dramQ) >= p.dramQCap {
			return // back-pressure: retry next cycle
		}
		p.dramQ = append(p.dramQ, req)
		p.popInq()
		return
	}

	// Read path: record the L2 access in the app's windowed stats.
	if p.L2.Access(p.localAddr(req.LineAddr), app) {
		p.events.push(event{at: now + p.l2LatMem, kind: evL2Hit, req: req})
		p.popInq()
		return
	}
	// L2 miss: merge into an existing MSHR entry if one is in flight.
	if p.mshr.Append(req.LineAddr, req) {
		p.popInq()
		return
	}
	if p.mshr.Full() || len(p.dramQ) >= p.dramQCap {
		// Structural stall; the head request retries next cycle and
		// back-pressure propagates to the interconnect.
		p.MSHRStalls.Inc()
		return
	}
	p.mshr.Add(req.LineAddr, req)
	p.dramQ = append(p.dramQ, req)
	p.popInq()
}

func (p *Partition) popInq() {
	copy(p.inq, p.inq[1:])
	p.inq[len(p.inq)-1] = nil
	p.inq = p.inq[:len(p.inq)-1]
}

// scheduleDRAM issues at most one request to the DRAM per memory cycle
// using FR-FCFS: the oldest request hitting an open row wins; if no queued
// request hits an open row, the oldest request wins.
func (p *Partition) scheduleDRAM(now uint64) {
	if len(p.dramQ) == 0 {
		return
	}
	// Allow scheduling to run ahead of the bus by enough to overlap bank
	// preparation (precharge+activate+CAS) of the next requests with the
	// current data bursts, as a pipelined controller does, while still
	// bounding how stale the FR-FCFS decision can be.
	t0 := &p.cfg.Timing
	horizon := uint64(t0.TRP + t0.TRCD + t0.TCL + 2*t0.BL)
	if p.busFreeAt > now+horizon {
		return
	}
	t := &p.cfg.Timing

	pick := -1
	for i, r := range p.dramQ {
		b, row := p.bankAndRow(r.LineAddr)
		if p.banks[b].openRow == row {
			pick = i
			break
		}
	}
	rowHit := pick >= 0
	if pick < 0 {
		pick = 0
	}
	req := p.dramQ[pick]
	copy(p.dramQ[pick:], p.dramQ[pick+1:])
	p.dramQ[len(p.dramQ)-1] = nil
	p.dramQ = p.dramQ[:len(p.dramQ)-1]

	bi, row := p.bankAndRow(req.LineAddr)
	b := &p.banks[bi]
	app := req.App

	var colAt uint64
	switch {
	case rowHit:
		colAt = max(now, b.colReady, p.lastColAt+uint64(t.TCCD))
		p.Apps[app].RowHits.Inc()
	case b.openRow < 0:
		actAt := max(now, b.preDone, p.lastActAt+uint64(t.TRRD))
		b.actAt = actAt
		b.openRow = row
		b.colReady = actAt + uint64(t.TRCD)
		p.lastActAt = actAt
		colAt = max(b.colReady, p.lastColAt+uint64(t.TCCD))
		p.Apps[app].RowMisses.Inc()
	default: // row conflict: precharge, then activate
		preAt := max(now, b.actAt+uint64(t.TRAS), b.lastColAt+uint64(t.TWR))
		actAt := max(preAt+uint64(t.TRP), p.lastActAt+uint64(t.TRRD))
		b.preDone = preAt + uint64(t.TRP)
		b.actAt = actAt
		b.openRow = row
		b.colReady = actAt + uint64(t.TRCD)
		p.lastActAt = actAt
		colAt = max(b.colReady, p.lastColAt+uint64(t.TCCD))
		p.Apps[app].RowMisses.Inc()
	}
	// Serialize the data burst on the shared bus.
	dataStart := max(colAt+uint64(t.TCL), p.busFreeAt)
	if over := dataStart - (colAt + uint64(t.TCL)); over > 0 {
		colAt += over // the column command waits for the bus slot
	}
	dataEnd := dataStart + uint64(t.BL)
	p.busFreeAt = dataEnd
	p.BusBusy.Add(uint64(t.BL))
	b.lastColAt = colAt
	b.colReady = colAt + uint64(t.TCCD)
	p.lastColAt = colAt

	p.Apps[app].BWBytes.Add(uint64(p.cfg.L2.LineBytes))
	if req.Kind == mem.WriteReq {
		p.Apps[app].DRAMWrites.Inc()
		p.pool.Put(req) // fire and forget: the burst retires the message
		return
	}
	p.Apps[app].DRAMReads.Inc()
	p.events.push(event{at: dataEnd, kind: evDRAMRead, req: req})
}

// QueueDepth returns the current FR-FCFS queue occupancy (telemetry).
func (p *Partition) QueueDepth() int { return len(p.dramQ) }

// InputDepth returns the input-queue occupancy (telemetry).
func (p *Partition) InputDepth() int { return len(p.inq) }

// OutstandingMisses returns the number of distinct lines in flight to DRAM.
func (p *Partition) OutstandingMisses() int { return p.mshr.Len() }

// NewWindow rolls every per-app counter (including the L2's) into a new
// sampling window.
func (p *Partition) NewWindow() {
	p.L2.NewWindow()
	p.MSHRStalls.NewWindow()
	p.BusBusy.NewWindow()
	for i := range p.Apps {
		a := &p.Apps[i]
		a.BWBytes.NewWindow()
		a.RowHits.NewWindow()
		a.RowMisses.NewWindow()
		a.DRAMReads.NewWindow()
		a.DRAMWrites.NewWindow()
		a.LatencySum.NewWindow()
	}
}

// String summarizes the partition state for diagnostics.
func (p *Partition) String() string {
	return fmt.Sprintf("partition %d: inq=%d dramQ=%d mshr=%d resp=%d",
		p.ID, len(p.inq), len(p.dramQ), p.mshr.Len(), len(p.resp))
}
