package dram

import (
	"fmt"

	"ebm/internal/cache"
	"ebm/internal/mem"
	"ebm/internal/stats"
)

// BankState mirrors one GDDR5 bank's timing state.
type BankState struct {
	OpenRow   int64
	ActAt     uint64
	ColReady  uint64
	LastColAt uint64
	PreDone   uint64
}

// EventState is one pending completion event: its fire time, kind, and
// the request by value.
type EventState struct {
	At   uint64
	Kind uint8
	Req  mem.Request
}

// AppStatsState mirrors one application's per-partition Stats block.
type AppStatsState struct {
	BWBytes    stats.CounterState
	RowHits    stats.CounterState
	RowMisses  stats.CounterState
	DRAMReads  stats.CounterState
	DRAMWrites stats.CounterState
	LatencySum stats.CounterState
}

// PartitionState is a Partition's complete serializable snapshot.
// Requests appear by value everywhere; on restore each slot gets a fresh
// copy. A read request in flight to DRAM is aliased twice in the live
// partition (MSHR waiter and dramQ/event entry) — duplicating it is safe
// because the completion path reads only value fields of the event's
// request and delivers the MSHR waiters, so the duplicated event object
// is simply dropped afterwards, exactly like the original would have been
// had it not also been the waiter.
type PartitionState struct {
	L2          cache.State
	Inq         []mem.Request
	MSHRLines   []uint64
	MSHRWaiters [][]mem.Request
	DramQ       []mem.Request
	Banks       []BankState
	BusFreeAt   uint64
	LastActAt   uint64
	LastColAt   uint64
	Events      []EventState // raw heap-array order
	Resp        []mem.Request
	Apps        []AppStatsState
	Refreshes   stats.CounterState
	NextRefresh uint64
	MSHRStalls  stats.CounterState
	BusBusy     stats.CounterState
}

// State returns the partition's snapshot.
func (p *Partition) State() PartitionState {
	st := PartitionState{
		L2:          p.L2.State(),
		Banks:       make([]BankState, len(p.banks)),
		BusFreeAt:   p.busFreeAt,
		LastActAt:   p.lastActAt,
		LastColAt:   p.lastColAt,
		Apps:        make([]AppStatsState, len(p.Apps)),
		Refreshes:   p.Refreshes.State(),
		NextRefresh: p.nextRefresh,
		MSHRStalls:  p.MSHRStalls.State(),
		BusBusy:     p.BusBusy.State(),
	}
	for _, r := range p.inq {
		st.Inq = append(st.Inq, *r)
	}
	lines, waiters := p.mshr.Entries()
	st.MSHRLines = lines
	st.MSHRWaiters = make([][]mem.Request, len(waiters))
	for i, ws := range waiters {
		vs := make([]mem.Request, len(ws))
		for j, w := range ws {
			vs[j] = *w
		}
		st.MSHRWaiters[i] = vs
	}
	for _, r := range p.dramQ {
		st.DramQ = append(st.DramQ, *r)
	}
	for i := range p.banks {
		b := &p.banks[i]
		st.Banks[i] = BankState{OpenRow: b.openRow, ActAt: b.actAt, ColReady: b.colReady, LastColAt: b.lastColAt, PreDone: b.preDone}
	}
	for _, e := range p.events {
		st.Events = append(st.Events, EventState{At: e.at, Kind: uint8(e.kind), Req: *e.req})
	}
	for _, r := range p.resp {
		st.Resp = append(st.Resp, *r)
	}
	for i := range p.Apps {
		a := &p.Apps[i]
		st.Apps[i] = AppStatsState{
			BWBytes:    a.BWBytes.State(),
			RowHits:    a.RowHits.State(),
			RowMisses:  a.RowMisses.State(),
			DRAMReads:  a.DRAMReads.State(),
			DRAMWrites: a.DRAMWrites.State(),
			LatencySum: a.LatencySum.State(),
		}
	}
	return st
}

// SetState restores the partition from a snapshot taken on an identically
// configured partition. The event heap array is restored verbatim: it was
// captured from a valid heap, and the sift functions are deterministic
// over the array order.
func (p *Partition) SetState(st PartitionState) error {
	if len(st.Banks) != len(p.banks) {
		return fmt.Errorf("dram: partition %d state has %d banks, partition has %d", p.ID, len(st.Banks), len(p.banks))
	}
	if len(st.Apps) != len(p.Apps) {
		return fmt.Errorf("dram: partition %d state has %d apps, partition has %d", p.ID, len(st.Apps), len(p.Apps))
	}
	if err := p.L2.SetState(st.L2); err != nil {
		return fmt.Errorf("dram: partition %d L2: %w", p.ID, err)
	}
	clone := func(v mem.Request) *mem.Request {
		r := new(mem.Request)
		*r = v
		return r
	}
	p.inq = p.inq[:0]
	for _, v := range st.Inq {
		p.inq = append(p.inq, clone(v))
	}
	waiters := make([][]*mem.Request, len(st.MSHRWaiters))
	for i, vs := range st.MSHRWaiters {
		ws := make([]*mem.Request, len(vs))
		for j := range vs {
			ws[j] = clone(vs[j])
		}
		waiters[i] = ws
	}
	if err := p.mshr.SetEntries(st.MSHRLines, waiters); err != nil {
		return fmt.Errorf("dram: partition %d: %w", p.ID, err)
	}
	p.dramQ = p.dramQ[:0]
	for _, v := range st.DramQ {
		p.dramQ = append(p.dramQ, clone(v))
	}
	for i := range p.banks {
		b := st.Banks[i]
		p.banks[i] = bank{openRow: b.OpenRow, actAt: b.ActAt, colReady: b.ColReady, lastColAt: b.LastColAt, preDone: b.PreDone}
	}
	p.busFreeAt = st.BusFreeAt
	p.lastActAt = st.LastActAt
	p.lastColAt = st.LastColAt
	p.events = p.events[:0]
	for _, e := range st.Events {
		p.events = append(p.events, event{at: e.At, kind: eventKind(e.Kind), req: clone(e.Req)})
	}
	p.resp = p.resp[:0]
	for _, v := range st.Resp {
		p.resp = append(p.resp, clone(v))
	}
	for i := range p.Apps {
		a := &p.Apps[i]
		s := st.Apps[i]
		a.BWBytes.SetState(s.BWBytes)
		a.RowHits.SetState(s.RowHits)
		a.RowMisses.SetState(s.RowMisses)
		a.DRAMReads.SetState(s.DRAMReads)
		a.DRAMWrites.SetState(s.DRAMWrites)
		a.LatencySum.SetState(s.LatencySum)
	}
	p.Refreshes.SetState(st.Refreshes)
	p.nextRefresh = st.NextRefresh
	p.MSHRStalls.SetState(st.MSHRStalls)
	p.BusBusy.SetState(st.BusBusy)
	return nil
}
