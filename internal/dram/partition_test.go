package dram

import (
	"testing"

	"ebm/internal/config"
	"ebm/internal/mem"
)

func cfg() *config.GPU {
	c := config.Default()
	return &c
}

func read(addr uint64, app int) *mem.Request {
	return &mem.Request{Kind: mem.ReadReq, LineAddr: addr, App: app}
}

func write(addr uint64, app int) *mem.Request {
	return &mem.Request{Kind: mem.WriteReq, LineAddr: addr, App: app}
}

// runUntil ticks the partition until a response appears or the budget is
// exhausted, returning the response and the cycle it appeared.
func runUntil(p *Partition, start, budget uint64) (*mem.Request, uint64) {
	for now := start; now < start+budget; now++ {
		p.Tick(now)
		if r := p.PopResponse(); r != nil {
			return r, now
		}
	}
	return nil, 0
}

func TestReadMissRoundTrip(t *testing.T) {
	c := cfg()
	p := NewPartition(0, c, 1)
	r := read(0, 0)
	p.Enqueue(r, 0)
	resp, at := runUntil(p, 0, 500)
	if resp == nil {
		t.Fatal("no response")
	}
	if resp.Kind != mem.ReadReply || resp.LineAddr != 0 {
		t.Fatalf("wrong response %+v", resp)
	}
	// A cold (closed-row) access costs at least tRCD+tCL+BL memory cycles.
	min := uint64(c.Timing.TRCD + c.Timing.TCL + c.Timing.BL)
	if at < min {
		t.Fatalf("response at %d, faster than DRAM timing allows (%d)", at, min)
	}
	if p.Apps[0].DRAMReads.Total() != 1 {
		t.Fatal("DRAM read not counted")
	}
	if p.Apps[0].BWBytes.Total() != uint64(c.L2.LineBytes) {
		t.Fatalf("bytes = %d", p.Apps[0].BWBytes.Total())
	}
}

func TestL2HitIsFasterAndCountsNoDRAM(t *testing.T) {
	c := cfg()
	p := NewPartition(0, c, 1)
	p.Enqueue(read(0, 0), 0)
	_, coldAt := runUntil(p, 0, 500)
	p.NewWindow()
	p.Enqueue(read(0, 0), 1000)
	resp, hitAt := runUntil(p, 1000, 500)
	if resp == nil {
		t.Fatal("no L2 hit response")
	}
	if hitLat := hitAt - 1000; hitLat >= coldAt {
		t.Fatalf("L2 hit latency %d not faster than cold %d", hitLat, coldAt)
	}
	if p.Apps[0].DRAMReads.Window() != 0 {
		t.Fatal("L2 hit went to DRAM")
	}
	if p.L2.Stats[0].Misses.Window() != 0 {
		t.Fatal("L2 hit recorded as miss")
	}
}

func TestMSHRMergesDuplicateLines(t *testing.T) {
	c := cfg()
	p := NewPartition(0, c, 1)
	a := read(0, 0)
	b := read(0, 0)
	b.Core = 7
	p.Enqueue(a, 0)
	p.Enqueue(b, 0)
	var got []*mem.Request
	for now := uint64(0); now < 500; now++ {
		p.Tick(now)
		for r := p.PopResponse(); r != nil; r = p.PopResponse() {
			got = append(got, r)
		}
	}
	if len(got) != 2 {
		t.Fatalf("%d responses, want 2 (both waiters served)", len(got))
	}
	if p.Apps[0].DRAMReads.Total() != 1 {
		t.Fatalf("DRAM reads = %d, want 1 (merged)", p.Apps[0].DRAMReads.Total())
	}
}

func TestRowHitVsRowMissAccounting(t *testing.T) {
	c := cfg()
	p := NewPartition(0, c, 1)
	// Two lines in the same DRAM row (partition-local adjacency):
	// global addresses addr and addr+128 share a 256B chunk.
	p.Enqueue(read(0, 0), 0)
	p.Enqueue(read(128, 0), 0)
	for now := uint64(0); now < 500; now++ {
		p.Tick(now)
		p.PopResponse()
	}
	if p.Apps[0].RowMisses.Total() != 1 {
		t.Fatalf("activates = %d, want 1", p.Apps[0].RowMisses.Total())
	}
	if p.Apps[0].RowHits.Total() != 1 {
		t.Fatalf("row hits = %d, want 1", p.Apps[0].RowHits.Total())
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	c := cfg()
	p := NewPartition(0, c, 1)
	// Open a row with a first access, then enqueue a conflicting-row
	// access (older) and a row-hit access (younger) together: FR-FCFS
	// must schedule the row hit first.
	p.Enqueue(read(0, 0), 0)
	for now := uint64(0); now < 200; now++ {
		p.Tick(now)
		p.PopResponse()
	}
	// Build a backlog (reads to other banks saturating the bus) so the
	// conflicting and row-hit requests coexist in the scheduler queue —
	// only then can FR-FCFS reorder them.
	now := uint64(200)
	for k := 1; k <= 8; k++ {
		// rowIdx = k -> bank k, distinct from bank 0.
		p.Enqueue(read(uint64(k*c.RowBytes*c.NumMemPartitions), 0), now)
		p.Tick(now)
		now++
	}
	// bank 0 again: + rowBytes*nparts*nbanks lands in bank 0, a different
	// row (conflict); 128 is a hit in the still-open row 0.
	conflict := uint64(c.RowBytes * c.NumMemPartitions * c.BanksPerMC)
	hit := uint64(128)
	p.Enqueue(read(conflict, 0), now) // older
	p.Enqueue(read(hit, 0), now)      // younger, row hit
	var hitAt, conflictAt uint64
	for ; now < 2000 && (hitAt == 0 || conflictAt == 0); now++ {
		p.Tick(now)
		for r := p.PopResponse(); r != nil; r = p.PopResponse() {
			switch r.LineAddr {
			case hit:
				hitAt = now
			case conflict:
				conflictAt = now
			}
		}
	}
	if hitAt == 0 || conflictAt == 0 {
		t.Fatal("requests did not complete")
	}
	if hitAt >= conflictAt {
		t.Fatalf("FR-FCFS served conflict (at %d) before the row hit (at %d)", conflictAt, hitAt)
	}
}

func TestWriteAbsorbedByL2(t *testing.T) {
	c := cfg()
	p := NewPartition(0, c, 1)
	p.Enqueue(read(0, 0), 0)
	for now := uint64(0); now < 300; now++ {
		p.Tick(now)
		p.PopResponse()
	}
	base := p.Apps[0].DRAMWrites.Total()
	p.Enqueue(write(0, 0), 300) // resident: write hit, no DRAM traffic
	for now := uint64(300); now < 600; now++ {
		p.Tick(now)
	}
	if p.Apps[0].DRAMWrites.Total() != base {
		t.Fatal("write hit leaked to DRAM")
	}
}

func TestWriteMissGoesToDRAM(t *testing.T) {
	c := cfg()
	p := NewPartition(0, c, 1)
	p.Enqueue(write(0, 0), 0)
	for now := uint64(0); now < 300; now++ {
		p.Tick(now)
	}
	if p.Apps[0].DRAMWrites.Total() != 1 {
		t.Fatalf("write misses to DRAM = %d, want 1 (no-allocate)", p.Apps[0].DRAMWrites.Total())
	}
	if p.PendingResponses() != 0 {
		t.Fatal("write produced a response")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	c := cfg()
	c.L2 = config.CacheGeometry{SizeBytes: 2048, Ways: 2, LineBytes: 128} // 8 sets? 2048/(2*128)=8
	p := NewPartition(0, c, 1)
	// Fill a set (2 ways), dirty one line, then force an eviction.
	// Same-set stride (local): sets*line = 1024 local = 8192 global.
	stride := uint64(8 * 128 * c.NumMemPartitions)
	step := func(addr uint64, w bool) {
		if w {
			p.Enqueue(write(addr, 0), 0)
		} else {
			p.Enqueue(read(addr, 0), 0)
		}
		for i := 0; i < 400; i++ {
			p.Tick(uint64(i))
			p.PopResponse()
		}
	}
	step(0, false)
	step(0, true) // dirty it
	step(stride, false)
	base := p.Apps[0].DRAMWrites.Total()
	step(2*stride, false) // evicts dirty line 0
	if p.Apps[0].DRAMWrites.Total() != base+1 {
		t.Fatalf("dirty eviction writes = %d, want %d", p.Apps[0].DRAMWrites.Total(), base+1)
	}
}

func TestPerAppAccounting(t *testing.T) {
	c := cfg()
	p := NewPartition(0, c, 2)
	p.Enqueue(read(0, 0), 0)
	p.Enqueue(read(1<<20, 1), 0)
	for now := uint64(0); now < 500; now++ {
		p.Tick(now)
		p.PopResponse()
	}
	if p.Apps[0].DRAMReads.Total() != 1 || p.Apps[1].DRAMReads.Total() != 1 {
		t.Fatalf("per-app reads wrong: %d / %d",
			p.Apps[0].DRAMReads.Total(), p.Apps[1].DRAMReads.Total())
	}
}

func TestBackpressure(t *testing.T) {
	c := cfg()
	p := NewPartition(0, c, 1)
	n := 0
	for p.CanAccept() {
		p.Enqueue(read(uint64(n)*128, 0), 0)
		n++
		if n > 1000 {
			t.Fatal("input queue never filled")
		}
	}
	if n == 0 {
		t.Fatal("queue rejected first request")
	}
	// Draining restores acceptance.
	for now := uint64(0); now < 50 && !p.CanAccept(); now++ {
		p.Tick(now)
	}
	if !p.CanAccept() {
		t.Fatal("queue did not drain")
	}
}

func TestEnqueuePastCapacityPanics(t *testing.T) {
	c := cfg()
	p := NewPartition(0, c, 1)
	for p.CanAccept() {
		p.Enqueue(read(0, 0), 0)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-capacity Enqueue did not panic")
		}
	}()
	p.Enqueue(read(0, 0), 0)
}

func TestLocalGlobalAddressRoundTrip(t *testing.T) {
	c := cfg()
	for id := 0; id < c.NumMemPartitions; id++ {
		p := NewPartition(id, c, 1)
		for chunk := 0; chunk < 64; chunk++ {
			global := uint64(chunk*c.NumMemPartitions+id) * uint64(c.AddrInterleave)
			if got := p.globalAddr(p.localAddr(global)); got != global {
				t.Fatalf("partition %d: roundtrip %#x -> %#x", id, global, got)
			}
		}
	}
}

func TestBandwidthConservation(t *testing.T) {
	// Total BW bytes equal lines * (reads + writes to DRAM).
	c := cfg()
	p := NewPartition(0, c, 1)
	for i := 0; i < 20; i++ {
		for !p.CanAccept() {
			p.Tick(uint64(i * 100))
		}
		p.Enqueue(read(uint64(i)*100000, 0), 0)
	}
	for now := uint64(0); now < 5000; now++ {
		p.Tick(now)
		p.PopResponse()
	}
	a := &p.Apps[0]
	want := (a.DRAMReads.Total() + a.DRAMWrites.Total()) * uint64(c.L2.LineBytes)
	if a.BWBytes.Total() != want {
		t.Fatalf("BW bytes %d != lines*%d = %d", a.BWBytes.Total(), c.L2.LineBytes, want)
	}
}

func TestLatencyAccountingSane(t *testing.T) {
	c := cfg()
	p := NewPartition(0, c, 1)
	p.Enqueue(read(0, 0), 0)
	_, at := runUntil(p, 0, 500)
	lat := p.Apps[0].LatencySum.Total()
	if lat == 0 || lat > at+1 {
		t.Fatalf("latency %d implausible (completed at %d)", lat, at)
	}
}
