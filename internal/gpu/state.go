package gpu

import (
	"fmt"

	"ebm/internal/cache"
	"ebm/internal/mem"
	"ebm/internal/stats"
)

// SchedState mirrors one GTO scheduler's mutable fields. The warp-range
// partition (base/count) is construction-time configuration.
type SchedState struct {
	ReadyMask  uint64
	MemWait    uint64
	LastIssued int
}

// CoreStatsState mirrors CoreStats for engine checkpoints.
type CoreStatsState struct {
	InstRetired  stats.CounterState
	MemInsts     stats.CounterState
	IssuedSlots  stats.CounterState
	ActiveCycles stats.CounterState
	IdleCycles   stats.CounterState
	MemStall     stats.CounterState
	StallMSHR    stats.CounterState
	FastForward  stats.CounterState
}

// CoreState is a Core's complete serializable snapshot, minus the warp
// streams (owned and restored by the simulator, which tracks the kernel
// phase each stream is bound to).
type CoreState struct {
	TLP          int
	BypassL1     bool
	PendingFills []int // per warp
	Scheds       []SchedState
	MSHRLines    []uint64
	MSHRWaiters  [][]int32
	Outq         []mem.Request
	Wheel        [][]int32 // wheelSize slots, verbatim
	L1           cache.State
	Stats        CoreStatsState
}

// State returns the core's snapshot.
func (c *Core) State() CoreState {
	st := CoreState{
		TLP:          c.tlp,
		BypassL1:     c.bypassL1,
		PendingFills: make([]int, len(c.warps)),
		Scheds:       make([]SchedState, len(c.scheds)),
		Wheel:        make([][]int32, wheelSize),
		L1:           c.L1.State(),
	}
	for i := range c.warps {
		st.PendingFills[i] = c.warps[i].pendingFills
	}
	for i := range c.scheds {
		s := &c.scheds[i]
		st.Scheds[i] = SchedState{ReadyMask: s.readyMask, MemWait: s.memWait, LastIssued: s.lastIssued}
	}
	st.MSHRLines, st.MSHRWaiters = c.mshr.Entries()
	for _, r := range c.outq {
		st.Outq = append(st.Outq, *r)
	}
	for i := range c.wheel {
		if len(c.wheel[i]) > 0 {
			st.Wheel[i] = append([]int32(nil), c.wheel[i]...)
		}
	}
	st.Stats = CoreStatsState{
		InstRetired:  c.Stats.InstRetired.State(),
		MemInsts:     c.Stats.MemInsts.State(),
		IssuedSlots:  c.Stats.IssuedSlots.State(),
		ActiveCycles: c.Stats.ActiveCycles.State(),
		IdleCycles:   c.Stats.IdleCycles.State(),
		MemStall:     c.Stats.MemStall.State(),
		StallMSHR:    c.Stats.StallMSHR.State(),
		FastForward:  c.Stats.FastForward.State(),
	}
	return st
}

// SetState restores the core from a snapshot taken on an identically
// configured core. Out-queue requests are rebuilt as fresh values: the
// engine only reads value fields of queued requests, so copies behave
// identically to the originals.
func (c *Core) SetState(st CoreState) error {
	if len(st.PendingFills) != len(c.warps) {
		return fmt.Errorf("gpu: core %d state has %d warps, core has %d", c.ID, len(st.PendingFills), len(c.warps))
	}
	if len(st.Scheds) != len(c.scheds) {
		return fmt.Errorf("gpu: core %d state has %d schedulers, core has %d", c.ID, len(st.Scheds), len(c.scheds))
	}
	if len(st.Wheel) != wheelSize {
		return fmt.Errorf("gpu: core %d state has %d wheel slots, want %d", c.ID, len(st.Wheel), wheelSize)
	}
	c.tlp = st.TLP
	c.bypassL1 = st.BypassL1
	for i := range c.warps {
		c.warps[i].pendingFills = st.PendingFills[i]
	}
	for i := range c.scheds {
		s := &c.scheds[i]
		s.readyMask = st.Scheds[i].ReadyMask
		s.memWait = st.Scheds[i].MemWait
		s.lastIssued = st.Scheds[i].LastIssued
	}
	if err := c.mshr.SetEntries(st.MSHRLines, st.MSHRWaiters); err != nil {
		return fmt.Errorf("gpu: core %d: %w", c.ID, err)
	}
	c.outq = c.outq[:0]
	for i := range st.Outq {
		r := new(mem.Request)
		*r = st.Outq[i]
		c.outq = append(c.outq, r)
	}
	c.wheelBusy = 0
	for i := range c.wheel {
		c.wheel[i] = append(c.wheel[i][:0], st.Wheel[i]...)
		c.wheelBusy += len(c.wheel[i])
	}
	if err := c.L1.SetState(st.L1); err != nil {
		return fmt.Errorf("gpu: core %d L1: %w", c.ID, err)
	}
	c.Stats.InstRetired.SetState(st.Stats.InstRetired)
	c.Stats.MemInsts.SetState(st.Stats.MemInsts)
	c.Stats.IssuedSlots.SetState(st.Stats.IssuedSlots)
	c.Stats.ActiveCycles.SetState(st.Stats.ActiveCycles)
	c.Stats.IdleCycles.SetState(st.Stats.IdleCycles)
	c.Stats.MemStall.SetState(st.Stats.MemStall)
	c.Stats.StallMSHR.SetState(st.Stats.StallMSHR)
	c.Stats.FastForward.SetState(st.Stats.FastForward)
	return nil
}
