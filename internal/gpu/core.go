// Package gpu models one GPU core (streaming multiprocessor / compute
// unit): its warp contexts, two greedy-then-oldest (GTO) warp schedulers,
// the static warp-limiting (SWL) TLP knob the paper's mechanisms actuate,
// the per-core L1 data cache with MSHRs, and the memory-instruction
// coalescing front end.
package gpu

import (
	"fmt"
	"math/bits"

	"ebm/internal/cache"
	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/mem"
	"ebm/internal/stats"
)

// wheelSize bounds how far in the future a warp wake-up may be scheduled
// (ALU latency or L1 hit latency); both are far below 64 cycles.
const wheelSize = 64

type warp struct {
	stream       *kernel.WarpStream
	pendingFills int
}

// scheduler is one GTO warp scheduler owning a contiguous age-ordered block
// of the core's warps. Bit w of the masks refers to its w-th warp (0 is
// oldest).
type scheduler struct {
	base       int // core-local index of warp 0
	count      int
	readyMask  uint64
	memWait    uint64 // warps with outstanding fills
	lastIssued int    // scheduler-local index, -1 if none
}

func (s *scheduler) activeMask(tlp int) uint64 {
	if tlp >= s.count {
		return (uint64(1) << s.count) - 1
	}
	return (uint64(1) << tlp) - 1
}

// CoreStats is the per-core telemetry read by the sampling hardware and
// the TLP managers.
type CoreStats struct {
	InstRetired  stats.Counter // warp instructions issued/retired
	MemInsts     stats.Counter
	IssuedSlots  stats.Counter // issue slots used (<= 2 per cycle)
	ActiveCycles stats.Counter // cycles with at least one issue
	IdleCycles   stats.Counter // cycles with no ready active warp at all
	MemStall     stats.Counter // idle cycles where an active warp waited on memory
	StallMSHR    stats.Counter // issue aborts due to full MSHRs/inject queue
	FastForward  stats.Counter // idle cycles credited in bulk by the fast-forward path
}

// NewWindow rolls every counter into a new sampling window.
func (cs *CoreStats) NewWindow() {
	cs.InstRetired.NewWindow()
	cs.MemInsts.NewWindow()
	cs.IssuedSlots.NewWindow()
	cs.ActiveCycles.NewWindow()
	cs.IdleCycles.NewWindow()
	cs.MemStall.NewWindow()
	cs.StallMSHR.NewWindow()
	cs.FastForward.NewWindow()
}

// Core is one streaming multiprocessor running warps of a single
// application (the paper maps each application to an exclusive core set).
type Core struct {
	ID  int
	App int

	cfg *config.GPU
	L1  *cache.Cache

	warps  []warp
	scheds []scheduler
	tlp    int // active warps per scheduler

	mshr      *mem.MSHRTable[int32] // line -> core-local warp waiters
	pool      *mem.Pool             // request free list (nil: plain allocation)
	outq      []*mem.Request
	outqCap   int
	wheel     [wheelSize][]int32 // wake lists; entry = core-local warp index
	wheelBusy int                // total queued wakeups (fast empty check)

	bypassL1 bool

	Stats CoreStats

	// missBuf is scratch for the two-pass memory issue.
	missBuf []uint64
}

// NewCore builds core id running app's kernel with the given warp streams
// (len must equal cfg.MaxWarpsPerCore). numApps sizes the L1's per-app
// stat vectors (only this app's slot is used, but keeping the shape
// uniform simplifies the samplers).
func NewCore(id, app int, cfg *config.GPU, streams []*kernel.WarpStream, numApps int) *Core {
	if len(streams) != cfg.MaxWarpsPerCore {
		panic(fmt.Sprintf("gpu: core %d got %d streams, want %d", id, len(streams), cfg.MaxWarpsPerCore))
	}
	c := &Core{
		ID:      id,
		App:     app,
		cfg:     cfg,
		L1:      cache.New(cfg.L1, numApps),
		warps:   make([]warp, len(streams)),
		mshr:    mem.NewMSHRTable[int32](cfg.L1MSHRs),
		outqCap: 16,
		tlp:     cfg.MaxTLPPerScheduler(),
	}
	for i, s := range streams {
		c.warps[i].stream = s
	}
	per := cfg.MaxWarpsPerCore / cfg.SchedulersPerCore
	c.scheds = make([]scheduler, cfg.SchedulersPerCore)
	for i := range c.scheds {
		c.scheds[i] = scheduler{
			base:       i * per,
			count:      per,
			readyMask:  (uint64(1) << per) - 1,
			lastIssued: -1,
		}
	}
	return c
}

// SetTLP sets the active-warp limit per scheduler (the SWL knob). Values
// are clamped to [1, warps-per-scheduler].
func (c *Core) SetTLP(tlp int) {
	maxTLP := c.cfg.MaxTLPPerScheduler()
	if tlp < 1 {
		tlp = 1
	}
	if tlp > maxTLP {
		tlp = maxTLP
	}
	c.tlp = tlp
}

// TLP returns the current active-warp limit per scheduler.
func (c *Core) TLP() int { return c.tlp }

// SetPool attaches a request free list shared with the rest of the
// machine. A nil pool (the default) allocates requests from the heap.
func (c *Core) SetPool(p *mem.Pool) { c.pool = p }

// SetBypassL1 enables or disables L1 bypassing for this core (used by the
// Mod+Bypass baseline).
func (c *Core) SetBypassL1(on bool) { c.bypassL1 = on }

// BypassL1 reports whether the L1 is being bypassed.
func (c *Core) BypassL1() bool { return c.bypassL1 }

// CanInject reports whether the out-queue has room for n more requests.
func (c *Core) CanInject(n int) bool { return len(c.outq)+n <= c.outqCap }

// PopRequest removes the next request destined for the interconnect.
func (c *Core) PopRequest() *mem.Request {
	if len(c.outq) == 0 {
		return nil
	}
	r := c.outq[0]
	copy(c.outq, c.outq[1:])
	c.outq[len(c.outq)-1] = nil
	c.outq = c.outq[:len(c.outq)-1]
	return r
}

// PendingRequests returns the out-queue depth.
func (c *Core) PendingRequests() int { return len(c.outq) }

// RequeueFront restores a popped request to the head of the out-queue
// (the simulator's one-entry skid buffer for network back-pressure).
func (c *Core) RequeueFront(r *mem.Request) {
	c.outq = append(c.outq, nil)
	copy(c.outq[1:], c.outq)
	c.outq[0] = r
}

// OutstandingMisses returns the number of distinct lines in flight.
func (c *Core) OutstandingMisses() int { return c.mshr.Len() }

// schedulerOf returns the scheduler owning core-local warp w and w's
// scheduler-local index.
func (c *Core) schedulerOf(w int) (*scheduler, int) {
	per := c.scheds[0].count
	si := w / per
	return &c.scheds[si], w - c.scheds[si].base
}

// wake marks warp w ready.
func (c *Core) wake(w int) {
	s, li := c.schedulerOf(w)
	s.readyMask |= uint64(1) << li
}

// sleep marks warp w not ready.
func (c *Core) sleep(w int) {
	s, li := c.schedulerOf(w)
	s.readyMask &^= uint64(1) << li
}

// scheduleWake arranges for warp w to become ready after delay cycles.
func (c *Core) scheduleWake(w int, now uint64, delay int) {
	if delay <= 0 {
		delay = 1
	}
	if delay >= wheelSize {
		delay = wheelSize - 1
	}
	slot := (now + uint64(delay)) % wheelSize
	c.wheel[slot] = append(c.wheel[slot], int32(w))
	c.wheelBusy++
}

// HandleFill delivers a returned line: it fills the L1 (unless bypassing)
// and wakes every warp that was waiting on it.
func (c *Core) HandleFill(lineAddr uint64) {
	if !c.bypassL1 {
		c.L1.Fill(lineAddr, c.App)
	}
	waiters := c.mshr.Remove(lineAddr)
	if waiters == nil {
		return
	}
	for _, w32 := range waiters {
		w := int(w32)
		wp := &c.warps[w]
		wp.pendingFills--
		if wp.pendingFills <= 0 {
			wp.pendingFills = 0
			c.wake(w)
			s, li := c.schedulerOf(w)
			s.memWait &^= uint64(1) << li
		}
	}
	c.mshr.Release(waiters)
}

// Tick advances the core by one cycle: wake-ups, then one issue attempt
// per scheduler.
func (c *Core) Tick(now uint64) {
	if c.wheelBusy > 0 {
		slot := now % wheelSize
		if list := c.wheel[slot]; len(list) > 0 {
			for _, w := range list {
				c.wake(int(w))
			}
			c.wheelBusy -= len(list)
			c.wheel[slot] = list[:0]
		}
	}

	issued := 0
	anyActiveMemWait := false
	for si := range c.scheds {
		s := &c.scheds[si]
		act := s.activeMask(c.tlp)
		if s.memWait&act != 0 {
			anyActiveMemWait = true
		}
		ready := s.readyMask & act
		if ready == 0 {
			continue
		}
		var pick int
		if s.lastIssued >= 0 && ready&(uint64(1)<<s.lastIssued) != 0 {
			pick = s.lastIssued // greedy: stick with the current warp
		} else {
			pick = bits.TrailingZeros64(ready) // then oldest
		}
		if c.issue(s, pick, now) {
			s.lastIssued = pick
			issued++
		}
	}

	if issued > 0 {
		c.Stats.IssuedSlots.Add(uint64(issued))
		c.Stats.ActiveCycles.Inc()
	} else {
		c.Stats.IdleCycles.Inc()
		if anyActiveMemWait {
			c.Stats.MemStall.Inc()
		}
	}
}

// issue tries to issue the current instruction of the scheduler's warp at
// local index li; it returns false on a structural stall (the warp stays
// ready and will retry).
func (c *Core) issue(s *scheduler, li int, now uint64) bool {
	w := s.base + li
	wp := &c.warps[w]
	inst := wp.stream.Current()

	if !inst.IsMem {
		wp.stream.Advance()
		c.Stats.InstRetired.Inc()
		delay := c.alu()
		if delay > 1 {
			c.sleep(w)
			c.scheduleWake(w, now, delay)
		}
		return true
	}

	if inst.Write {
		// Stores are write-through and fire-and-forget: they need out-queue
		// space but do not block the warp on completion.
		if !c.CanInject(len(inst.Lines)) {
			c.Stats.StallMSHR.Inc()
			return false
		}
		for _, line := range inst.Lines {
			r := c.pool.Get()
			r.Kind, r.LineAddr, r.App, r.Core, r.Born = mem.WriteReq, line, c.App, c.ID, now
			c.outq = append(c.outq, r)
		}
		wp.stream.Advance()
		c.Stats.InstRetired.Inc()
		c.Stats.MemInsts.Inc()
		return true
	}

	// Load: classify each line (two passes so a structural stall leaves
	// no side effects and the warp can retry the identical instruction).
	c.missBuf = c.missBuf[:0]
	newLines := 0
	for _, line := range inst.Lines {
		if !c.bypassL1 && c.L1.Contains(line) {
			continue
		}
		c.missBuf = append(c.missBuf, line)
		if !c.mshr.Contains(line) && !containsLine(c.missBuf[:len(c.missBuf)-1], line) {
			newLines++
		}
	}
	if newLines > 0 {
		if c.mshr.Len()+newLines > c.mshr.Cap() || !c.CanInject(newLines) {
			c.Stats.StallMSHR.Inc()
			return false
		}
	}

	// Commit: record L1 stats, allocate MSHRs, send requests.
	fills := 0
	for _, line := range inst.Lines {
		var hit bool
		if c.bypassL1 {
			hit = false
			c.L1.Stats[c.App].Record(true)
		} else {
			hit = c.L1.Access(line, c.App)
		}
		if hit {
			continue
		}
		if waiters := c.mshr.Waiters(line); waiters != nil {
			if !waitersContain(waiters, int32(w)) {
				c.mshr.Append(line, int32(w))
				fills++
			} else {
				// The same warp already waits on this line (duplicate line
				// in a divergent access); one fill wakes it once.
			}
			continue
		}
		c.mshr.Add(line, int32(w))
		fills++
		r := c.pool.Get()
		r.Kind, r.LineAddr, r.App, r.Core, r.Born = mem.ReadReq, line, c.App, c.ID, now
		c.outq = append(c.outq, r)
	}

	wp.stream.Advance()
	c.Stats.InstRetired.Inc()
	c.Stats.MemInsts.Inc()

	if fills == 0 {
		// All hits: the warp waits out the L1 hit latency.
		c.sleep(w)
		c.scheduleWake(w, now, c.cfg.L1HitLatency)
		return true
	}
	wp.pendingFills += fills
	c.sleep(w)
	s.memWait |= uint64(1) << li
	return true
}

// alu returns the issue-to-ready delay of a compute instruction for this
// core's application.
func (c *Core) alu() int {
	// The ALU delay is a kernel parameter; all warps of a core share it.
	return c.warps[0].stream.ALUDelay()
}

func containsLine(lines []uint64, line uint64) bool {
	for _, l := range lines {
		if l == line {
			return true
		}
	}
	return false
}

func waitersContain(xs []int32, x int32) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Quiescent reports whether Tick is a provable no-op until an external
// event touches the core: no scheduled wake-ups and no issuable warp under
// the current TLP limit. Only a fill delivery (HandleFill) or a TLP/bypass
// change can end quiescence, so the simulator may fast-forward the core,
// crediting the skipped cycles through CreditIdle.
func (c *Core) Quiescent() bool {
	if c.wheelBusy > 0 {
		return false
	}
	for si := range c.scheds {
		s := &c.scheds[si]
		if s.readyMask&s.activeMask(c.tlp) != 0 {
			return false
		}
	}
	return true
}

// ActiveMemWait reports whether any warp inside the active TLP window is
// blocked on memory. During a quiescent span this predicate is invariant,
// so the simulator samples it once when the core goes quiet.
func (c *Core) ActiveMemWait() bool {
	for si := range c.scheds {
		s := &c.scheds[si]
		if s.memWait&s.activeMask(c.tlp) != 0 {
			return true
		}
	}
	return false
}

// CreditIdle accounts n fast-forwarded cycles exactly as n quiescent Tick
// calls would have: each is an idle cycle, and a memory stall when an
// active warp was blocked on a fill.
func (c *Core) CreditIdle(n uint64, memWait bool) {
	c.Stats.IdleCycles.Add(n)
	c.Stats.FastForward.Add(n)
	if memWait {
		c.Stats.MemStall.Add(n)
	}
}

// NewWindow starts a new sampling window on the core and L1 counters.
func (c *Core) NewWindow() {
	c.Stats.NewWindow()
	c.L1.NewWindow()
}
