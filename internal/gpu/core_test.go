package gpu

import (
	"testing"

	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/mem"
)

func machine() *config.GPU {
	c := config.Default()
	return &c
}

func computeOnly() kernel.Params {
	return kernel.Params{
		Name: "COMP", Rm: 0.0001, ALUDelay: 1, CoalesceLines: 1,
		StepBytes: 128, PrivateWS: 4096, Seed: 3,
	}
}

func memHeavy() kernel.Params {
	return kernel.Params{
		Name: "MEM", Rm: 0.9, ALUDelay: 1, CoalesceLines: 1,
		StepBytes: 128, PrivateWS: 1 << 20, Seed: 4,
	}
}

func newCore(t *testing.T, cfg *config.GPU, p kernel.Params) *Core {
	t.Helper()
	streams := make([]*kernel.WarpStream, cfg.MaxWarpsPerCore)
	for i := range streams {
		streams[i] = kernel.NewWarpStream(&p, 0, i, cfg.L1.LineBytes)
	}
	return NewCore(0, 0, cfg, streams, 1)
}

func TestComputeBoundIPCSaturatesIssueWidth(t *testing.T) {
	cfg := machine()
	c := newCore(t, cfg, computeOnly())
	c.SetTLP(24)
	const cycles = 2000
	for now := uint64(0); now < cycles; now++ {
		c.Tick(now)
	}
	ipc := float64(c.Stats.InstRetired.Total()) / cycles
	if ipc < 1.9 || ipc > 2.01 {
		t.Fatalf("compute-bound IPC %v, want ~2 (two schedulers)", ipc)
	}
}

func TestTLP1ComputeIPC(t *testing.T) {
	cfg := machine()
	c := newCore(t, cfg, computeOnly())
	c.SetTLP(1)
	for now := uint64(0); now < 2000; now++ {
		c.Tick(now)
	}
	// ALUDelay 1: even one warp per scheduler sustains full issue.
	ipc := float64(c.Stats.InstRetired.Total()) / 2000
	if ipc < 1.9 {
		t.Fatalf("TLP=1, ALUDelay=1 IPC %v, want ~2", ipc)
	}
}

func TestALUDelayThrottlesSingleWarp(t *testing.T) {
	cfg := machine()
	p := computeOnly()
	p.ALUDelay = 4
	c := newCore(t, cfg, p)
	c.SetTLP(1)
	for now := uint64(0); now < 2000; now++ {
		c.Tick(now)
	}
	ipc := float64(c.Stats.InstRetired.Total()) / 2000
	// One warp per scheduler issuing every 4 cycles: IPC ~ 2/4.
	if ipc < 0.45 || ipc > 0.55 {
		t.Fatalf("dependent-chain IPC %v, want ~0.5", ipc)
	}
	// With enough warps the latency is hidden again.
	c2 := newCore(t, cfg, p)
	c2.SetTLP(8)
	for now := uint64(0); now < 2000; now++ {
		c2.Tick(now)
	}
	if ipc2 := float64(c2.Stats.InstRetired.Total()) / 2000; ipc2 < 1.9 {
		t.Fatalf("TLP=8 did not hide ALU latency: IPC %v", ipc2)
	}
}

func TestMemoryInstructionsProduceRequests(t *testing.T) {
	cfg := machine()
	c := newCore(t, cfg, memHeavy())
	c.SetTLP(4)
	got := 0
	for now := uint64(0); now < 500; now++ {
		c.Tick(now)
		for c.PendingRequests() > 0 {
			r := c.PopRequest()
			if r.Kind != mem.ReadReq && r.Kind != mem.WriteReq {
				t.Fatalf("unexpected kind %v", r.Kind)
			}
			if r.Core != 0 || r.App != 0 {
				t.Fatalf("bad routing fields %+v", r)
			}
			got++
		}
	}
	if got == 0 {
		t.Fatal("no memory requests produced")
	}
	if c.Stats.MemInsts.Total() == 0 {
		t.Fatal("memory instructions not counted")
	}
}

func TestWarpsBlockUntilFill(t *testing.T) {
	cfg := machine()
	c := newCore(t, cfg, memHeavy())
	c.SetTLP(1) // two warps total (one per scheduler)
	var outstanding []uint64
	for now := uint64(0); now < 300; now++ {
		c.Tick(now)
		for c.PendingRequests() > 0 {
			r := c.PopRequest()
			if r.Kind == mem.ReadReq {
				outstanding = append(outstanding, r.LineAddr)
			}
		}
	}
	// With 2 warps and 1 read each in flight, the core wedges at <= 2
	// outstanding reads (plus a few write fire-and-forgets already
	// drained above).
	if len(outstanding) > 4 {
		t.Fatalf("%d reads without any fill; warps are not blocking", len(outstanding))
	}
	before := c.Stats.InstRetired.Total()
	for now := uint64(300); now < 400; now++ {
		c.Tick(now)
	}
	if c.Stats.InstRetired.Total() != before {
		t.Fatal("blocked warps kept retiring")
	}
	// Deliver the fills: the warps wake and make progress.
	for _, a := range outstanding {
		c.HandleFill(a)
	}
	for now := uint64(400); now < 600; now++ {
		c.Tick(now)
		for c.PendingRequests() > 0 {
			c.PopRequest()
		}
	}
	if c.Stats.InstRetired.Total() <= before {
		t.Fatal("fills did not wake the warps")
	}
}

func TestTLPLimitBoundsConcurrentWarps(t *testing.T) {
	cfg := machine()
	p := memHeavy()
	p.WriteFrac = 0
	p.PrivRandom = 1 // distinct addresses per warp
	c := newCore(t, cfg, p)
	c.SetTLP(2) // 2 active warps per scheduler -> at most 4 blocked readers
	reads := 0
	for now := uint64(0); now < 1000; now++ {
		c.Tick(now)
		for c.PendingRequests() > 0 {
			if c.PopRequest().Kind == mem.ReadReq {
				reads++
			}
		}
	}
	if reads > 4 {
		t.Fatalf("TLP=2 allowed %d concurrent readers, want <= 4", reads)
	}
	if reads != 4 {
		t.Fatalf("active warps did not all issue: %d", reads)
	}
}

func TestSetTLPClamps(t *testing.T) {
	cfg := machine()
	c := newCore(t, cfg, computeOnly())
	c.SetTLP(-3)
	if c.TLP() != 1 {
		t.Fatalf("TLP clamped to %d, want 1", c.TLP())
	}
	c.SetTLP(999)
	if c.TLP() != cfg.MaxTLPPerScheduler() {
		t.Fatalf("TLP clamped to %d, want %d", c.TLP(), cfg.MaxTLPPerScheduler())
	}
}

func TestL1HitsDontGenerateTraffic(t *testing.T) {
	cfg := machine()
	p := kernel.Params{ // tiny resident working set, pure reads
		Name: "FIT", Rm: 0.5, ALUDelay: 1, CoalesceLines: 1,
		StepBytes: 128, PrivateWS: 512, Seed: 5,
	}
	c := newCore(t, cfg, p)
	c.SetTLP(1)
	drain := func() {
		for c.PendingRequests() > 0 {
			r := c.PopRequest()
			if r.Kind == mem.ReadReq {
				c.HandleFill(r.LineAddr) // instant memory for warmup
			}
		}
	}
	for now := uint64(0); now < 3000; now++ {
		c.Tick(now)
		drain()
	}
	c.NewWindow()
	reads := 0
	for now := uint64(3000); now < 6000; now++ {
		c.Tick(now)
		for c.PendingRequests() > 0 {
			if c.PopRequest().Kind == mem.ReadReq {
				reads++
			}
		}
	}
	if reads != 0 {
		t.Fatalf("resident working set still missed %d times", reads)
	}
	if mr := c.L1.Stats[0].WindowRate(); mr != 0 {
		t.Fatalf("steady-state L1 miss rate %v, want 0", mr)
	}
}

func TestBypassL1ForcesMisses(t *testing.T) {
	cfg := machine()
	p := kernel.Params{
		Name: "FIT", Rm: 0.5, ALUDelay: 1, CoalesceLines: 1,
		StepBytes: 128, PrivateWS: 512, Seed: 5,
	}
	c := newCore(t, cfg, p)
	c.SetTLP(1)
	c.SetBypassL1(true)
	if !c.BypassL1() {
		t.Fatal("bypass flag lost")
	}
	for now := uint64(0); now < 2000; now++ {
		c.Tick(now)
		for c.PendingRequests() > 0 {
			r := c.PopRequest()
			if r.Kind == mem.ReadReq {
				c.HandleFill(r.LineAddr)
			}
		}
	}
	if mr := c.L1.Stats[0].TotalRate(); mr != 1 {
		t.Fatalf("bypassing L1 miss rate %v, want 1", mr)
	}
}

func TestMSHRMergeSameLine(t *testing.T) {
	cfg := machine()
	p := kernel.Params{ // all warps hammer the same single line
		Name: "ONE", Rm: 0.9, ALUDelay: 1, CoalesceLines: 1,
		StepBytes: 128, PrivateWS: 128, SharedWS: 128, SharedFrac: 1,
		SharedSeq: true, Seed: 6,
	}
	c := newCore(t, cfg, p)
	c.SetTLP(8)
	reads := 0
	for now := uint64(0); now < 200; now++ {
		c.Tick(now)
		for c.PendingRequests() > 0 {
			if c.PopRequest().Kind == mem.ReadReq {
				reads++
			}
		}
	}
	if reads != 1 {
		t.Fatalf("%d read requests for one shared line, want 1 (MSHR merge)", reads)
	}
	if c.OutstandingMisses() != 1 {
		t.Fatalf("outstanding misses %d, want 1", c.OutstandingMisses())
	}
	c.HandleFill(kernel.AppBase(0)) // the shared region starts at the app base
	if c.OutstandingMisses() != 0 {
		t.Fatal("fill did not clear the MSHR entry")
	}
}

func TestRequeueFrontPreservesOrder(t *testing.T) {
	cfg := machine()
	c := newCore(t, cfg, memHeavy())
	c.SetTLP(4)
	for now := uint64(0); now < 50 && c.PendingRequests() < 2; now++ {
		c.Tick(now)
	}
	if c.PendingRequests() < 2 {
		t.Skip("not enough traffic")
	}
	first := c.PopRequest()
	c.RequeueFront(first)
	if got := c.PopRequest(); got != first {
		t.Fatal("RequeueFront lost head position")
	}
}

func TestStatsWindows(t *testing.T) {
	cfg := machine()
	c := newCore(t, cfg, computeOnly())
	for now := uint64(0); now < 100; now++ {
		c.Tick(now)
	}
	if c.Stats.InstRetired.Window() == 0 {
		t.Fatal("no windowed instructions")
	}
	c.NewWindow()
	if c.Stats.InstRetired.Window() != 0 {
		t.Fatal("NewWindow did not roll core stats")
	}
}

func TestGTOGreedyStaysOnWarp(t *testing.T) {
	cfg := machine()
	c := newCore(t, cfg, computeOnly())
	c.SetTLP(4)
	// With pure compute and ALUDelay 1 the greedy scheduler should keep
	// issuing from the same (oldest) warp; all instructions come from 2
	// warps (one per scheduler).
	for now := uint64(0); now < 1000; now++ {
		c.Tick(now)
	}
	gen := 0
	per := cfg.MaxWarpsPerCore / cfg.SchedulersPerCore
	for i, w := range c.warps {
		if w.stream.Generated() > 0 {
			gen++
			if i != 0 && i != per {
				t.Fatalf("greedy scheduler issued from warp %d", i)
			}
		}
	}
	if gen != 2 {
		t.Fatalf("%d warps progressed, want 2 (one per scheduler)", gen)
	}
}
