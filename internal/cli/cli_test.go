package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{flag.ErrHelp, ExitOK},
		{errors.New("boom"), ExitError},
		{fmt.Errorf("wrapped: %w", errors.New("boom")), ExitError},
		{Usagef("bad flag"), ExitUsage},
		{fmt.Errorf("outer: %w", Usagef("bad flag")), ExitUsage},
		{context.Canceled, ExitInterrupted},
		{context.DeadlineExceeded, ExitInterrupted},
		{fmt.Errorf("interrupted after 3/64: %w", context.Canceled), ExitInterrupted},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestUsagefMarksAndFormats(t *testing.T) {
	err := Usagef("unknown workload %q", "X_Y")
	if !IsUsage(err) {
		t.Fatal("Usagef error not recognized by IsUsage")
	}
	if want := `unknown workload "X_Y"`; err.Error() != want {
		t.Fatalf("message %q, want %q", err.Error(), want)
	}
	if IsUsage(errors.New("plain")) {
		t.Fatal("plain error classified as usage")
	}
}

func TestRunPrintsErrorAndReturnsCode(t *testing.T) {
	var buf strings.Builder
	code := Run("toolname", &buf, func(ctx context.Context) error {
		return errors.New("broke")
	})
	if code != ExitError {
		t.Fatalf("code = %d, want %d", code, ExitError)
	}
	if got := buf.String(); got != "toolname: broke\n" {
		t.Fatalf("stderr = %q", got)
	}
}

func TestRunHelpIsSilentSuccess(t *testing.T) {
	var buf strings.Builder
	if code := Run("t", &buf, func(context.Context) error { return flag.ErrHelp }); code != ExitOK {
		t.Fatalf("code = %d, want 0", code)
	}
	if buf.Len() != 0 {
		t.Fatalf("help produced stderr output: %q", buf.String())
	}
}

// TestRunSIGINTCancelsAndExits130 sends this process a real SIGINT while
// fn blocks on the context — the full signal path the binaries rely on.
func TestRunSIGINTCancelsAndExits130(t *testing.T) {
	var buf strings.Builder
	started := make(chan struct{})
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- Run("t", &buf, func(ctx context.Context) error {
			close(started)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(30 * time.Second):
				return errors.New("signal never cancelled the context")
			}
		})
	}()
	<-started
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-codeCh:
		if code != ExitInterrupted {
			t.Fatalf("code = %d, want %d (stderr: %q)", code, ExitInterrupted, buf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after SIGINT")
	}
	if !strings.Contains(buf.String(), "interrupted") {
		t.Fatalf("stderr %q does not mention the interruption", buf.String())
	}
}
