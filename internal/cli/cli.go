// Package cli is the shared command scaffolding for the ebm binaries: a
// single run(ctx) entry point per command, signal-driven cancellation,
// and one exit path with conventional codes. Commands parse flags with
// flag.ContinueOnError, wrap bad usage in Usagef, and do all their work
// under the context — on SIGINT/SIGTERM the context cancels, in-flight
// simulations abort at their next window boundary, and the process exits
// 130 after an orderly drain. A second signal kills the process
// immediately for the case where the drain itself wedges.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
)

// Exit codes.
const (
	ExitOK          = 0
	ExitError       = 1
	ExitUsage       = 2
	ExitInterrupted = 130 // 128 + SIGINT, the shell convention
)

// usageError marks an error as the caller's fault (bad flags or
// arguments): exit 2, and the message is prefixed with the command name.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

// Usagef wraps a bad-usage condition so Run exits with ExitUsage.
func Usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

// IsUsage reports whether err is a usage error.
func IsUsage(err error) bool {
	var u usageError
	return errors.As(err, &u)
}

// ExitCode maps a run(ctx) error to a process exit code.
func ExitCode(err error) int {
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return ExitOK
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ExitInterrupted
	case IsUsage(err):
		return ExitUsage
	default:
		return ExitError
	}
}

// Version renders the build identity every binary reports under -version
// and workers exchange in the registration handshake: the module version
// when stamped, the VCS revision (short, with a +dirty marker) when the
// build carried one, and always the Go toolchain. Without build info
// (rare outside tests) it degrades to "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "+dirty"
		}
		v += " (" + rev + ")"
	}
	return v + " " + bi.GoVersion
}

// Run executes fn under a signal-cancelled context and returns the exit
// code. The context cancels on the first SIGINT/SIGTERM; a second signal
// bypasses the orderly drain and kills the process (exit 130) so a stuck
// shutdown can always be escaped. Errors are printed to stderr prefixed
// with the command name (flag.ErrHelp prints nothing — the FlagSet
// already wrote its usage text).
func Run(name string, stderr io.Writer, fn func(ctx context.Context) error) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // re-arm default disposition: the next signal terminates immediately
	}()

	err := fn(ctx)
	code := ExitCode(err)
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintf(stderr, "%s: %v\n", name, err)
	}
	if code == ExitInterrupted {
		fmt.Fprintf(stderr, "%s: interrupted\n", name)
	}
	return code
}

// Main is Run plus os.Exit — the one-line body of every main().
func Main(name string, fn func(ctx context.Context) error) {
	os.Exit(Run(name, os.Stderr, fn))
}
