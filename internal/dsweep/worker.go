package dsweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"ebm/internal/ckpt"
	"ebm/internal/faultinject"
	"ebm/internal/obs"
	"ebm/internal/runner"
	"ebm/internal/sim"
	"ebm/internal/simcache"
	"ebm/internal/tlp"
)

// heartbeatFaults is the optional fault seam for the control plane:
// when the configured Hooks value also implements it (as
// *faultinject.Injector does), every heartbeat send draws a fault
// decision first — an error means the beat is dropped on the floor.
type heartbeatFaults interface {
	Heartbeat(worker string) error
}

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// ID names this worker on the coordinator and in provenance
	// records. Must be unique among live workers.
	ID string
	// URL is the coordinator's base URL (e.g. "http://host:9900").
	URL string
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client

	// Cache/Ckpt/Runner are the same execution stack a local sweep
	// uses: results are served from and persisted to Cache (the shared
	// store), uncached cells fork from Ckpt, and simulations run on
	// Runner (nil = the process-wide pool).
	Cache  *simcache.Cache
	Ckpt   *ckpt.Store
	Runner *runner.Runner

	// Hooks is the fault-injection seam, threaded into the engine
	// (window stalls) and, when it implements heartbeatFaults, into
	// the control plane (dropped/delayed beats). Nil in production.
	Hooks faultinject.Hooks

	// Version is this binary's build identity for the registration
	// handshake (cli.Version form).
	Version string
}

// Worker pulls leased cells from a coordinator and executes them
// through the shared cache/checkpoint stack.
//
// Two contexts govern its lifetime, deliberately distinct:
//
//   - Run's ctx is the drain signal (SIGTERM): when it cancels, the
//     in-flight cell FINISHES, unstarted leases are released, and the
//     worker deregisters — an orderly exit another worker never has to
//     clean up after.
//   - The internal hard context (tripped by Kill) is the crash: it
//     aborts the simulation at its next window boundary and skips all
//     courtesies, leaving the coordinator to expire the lease. Chaos
//     tests use it to die the way real workers die.
type Worker struct {
	o          WorkerOptions
	hardCtx    context.Context
	hardCancel context.CancelFunc

	// hbEvery is the coordinator-assigned heartbeat cadence in
	// nanoseconds. Atomic because re-registration (a 410 mid-sweep)
	// rewrites it while the heartbeat goroutine reads it.
	hbEvery  atomic.Int64
	progress atomic.Uint64 // simulation windows completed, reported in heartbeats
	done     atomic.Uint64 // completions accepted by the coordinator
	fenced   atomic.Uint64 // completions rejected by the fencing check
}

// NewWorker builds a worker; Run starts it.
func NewWorker(o WorkerOptions) *Worker {
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Version == "" {
		o.Version = "devel"
	}
	w := &Worker{o: o}
	w.hardCtx, w.hardCancel = context.WithCancel(context.Background())
	return w
}

// Kill simulates a worker crash: the in-flight simulation aborts at
// its next window boundary, heartbeats stop, and nothing is released
// or deregistered — recovering is the coordinator's problem.
func (w *Worker) Kill() { w.hardCancel() }

// Completed returns how many completions the coordinator accepted.
func (w *Worker) Completed() uint64 { return w.done.Load() }

// Fenced returns how many of this worker's completions were rejected
// by the fencing check (it was a zombie for those cells).
func (w *Worker) Fenced() uint64 { return w.fenced.Load() }

// Run registers, then leases and executes cells until the coordinator
// reports the sweep done (returns nil), ctx cancels (graceful drain;
// returns ctx.Err so the CLI exits 130), or Kill fires.
func (w *Worker) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := w.register(); err != nil {
		return err
	}
	stop := make(chan struct{})
	defer close(stop)
	go w.heartbeatLoop(stop)

	for {
		if err := w.hardCtx.Err(); err != nil {
			return err // killed
		}
		if err := ctx.Err(); err != nil {
			w.deregister() // drain: the previous cell already finished
			return err
		}
		reply, code, err := w.lease()
		if code == http.StatusGone {
			// The coordinator forgot us — our lease expired or it
			// restarted. Every fence we held is dead; start over.
			if err := w.register(); err != nil {
				return err
			}
			continue
		}
		if err != nil {
			return err
		}
		switch {
		case reply.Done:
			w.deregister()
			return nil
		case reply.Cell == nil:
			select {
			case <-time.After(w.hbInterval()):
			case <-ctx.Done():
			case <-w.hardCtx.Done():
			}
			continue
		}
		if ctx.Err() != nil {
			// Drain arrived between the liveness check and the grant:
			// this lease never started, so hand it straight back.
			w.release(reply.Cell.Key, reply.Fence)
			w.deregister()
			return ctx.Err()
		}
		done, err := w.execute(reply.Cell, reply.Fence)
		if err != nil {
			return err
		}
		if done {
			// Our completion was the sweep's last: exit off this reply
			// rather than racing one more /lease against a coordinator
			// that may already be shutting down.
			w.deregister()
			return nil
		}
	}
}

// execute runs one cell through the shared stack and reports it under
// the lease's fence, returning whether this completion finished the
// sweep. The provenance trail attached here is the same one RunCached
// and the layers below annotate, so the record shipped to the
// coordinator says exactly how the cell was satisfied.
func (w *Worker) execute(cell *Cell, fence uint64) (bool, error) {
	rs := cell.Spec
	if got := simcache.Key(rs); got != cell.Key {
		return false, fmt.Errorf("dsweep: cell fingerprint mismatch: coordinator says %s, spec keys as %s", cell.Key, got)
	}
	start := time.Now()
	runCtx, trail := obs.WithTrail(w.hardCtx)
	runFn := func(rc context.Context) (sim.Result, error) {
		return ckpt.ExecuteWith(rc, w.o.Ckpt, rs, func(o *sim.Options) {
			prev := o.OnWindow
			o.OnWindow = func(s tlp.Sample) {
				w.progress.Add(1)
				if prev != nil {
					prev(s)
				}
			}
			if w.o.Hooks != nil {
				o.Hooks = w.o.Hooks
			}
		})
	}
	res, err := simcache.RunCached(runCtx, w.o.Cache, w.o.Runner, runner.PriGrid, rs, runFn)
	if err != nil {
		return false, err
	}
	names := make([]string, len(rs.Apps))
	for i := range rs.Apps {
		names[i] = rs.Apps[i].Name
	}
	rec := obs.RunRecord{
		CacheSchema: simcache.SchemaVersion,
		Fingerprint: cell.Key,
		Scheme:      rs.Scheme.String(),
		Apps:        strings.Join(names, "_"),
		Worker:      w.o.ID,
		Cycles:      res.Cycles,
		WallNs:      time.Since(start).Nanoseconds(),
	}
	trail.Fill(&rec)
	reply, _, err := w.complete(CompleteRequest{
		Worker: w.o.ID, Key: cell.Key, Fence: fence, Result: res, Record: &rec,
	})
	if err != nil {
		return false, err
	}
	if reply.Accepted {
		w.done.Add(1)
	} else {
		w.fenced.Add(1)
	}
	return reply.Done, nil
}

// heartbeatLoop beats at the coordinator-assigned cadence until the
// worker exits or is killed. Send failures are deliberately ignored:
// liveness is the coordinator's judgement, and the penalty for silence
// is exactly the lease expiry the protocol is built around.
func (w *Worker) heartbeatLoop(stop <-chan struct{}) {
	t := time.NewTicker(w.hbInterval())
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-w.hardCtx.Done():
			return
		case <-t.C:
			// Re-registration may have been assigned a new cadence.
			t.Reset(w.hbInterval())
			if hf, ok := w.o.Hooks.(heartbeatFaults); ok {
				if hf.Heartbeat(w.o.ID) != nil {
					continue // injected drop: the beat never leaves
				}
			}
			w.post(PathHeartbeat, HeartbeatRequest{Worker: w.o.ID, Progress: w.progress.Load()}, nil)
		}
	}
}

// hbInterval returns the current heartbeat cadence, defaulting before
// the first registration reply lands.
func (w *Worker) hbInterval() time.Duration {
	if ns := w.hbEvery.Load(); ns > 0 {
		return time.Duration(ns)
	}
	return DefaultLeaseTTL / 3
}

func (w *Worker) register() error {
	var reply HelloReply
	code, err := w.post(PathRegister, Hello{
		Worker:      w.o.ID,
		Version:     w.o.Version,
		Wire:        WireVersion,
		CacheSchema: simcache.SchemaVersion,
		CkptSchema:  ckpt.SchemaVersion,
	}, &reply)
	if err != nil {
		return fmt.Errorf("dsweep: register: %w", err)
	}
	if !reply.OK {
		reason := reply.Error
		if reason == "" {
			reason = fmt.Sprintf("coordinator answered %d", code)
		}
		return fmt.Errorf("dsweep: worker %s rejected: %s", w.o.ID, reason)
	}
	if reply.HeartbeatEveryNs > 0 {
		w.hbEvery.Store(reply.HeartbeatEveryNs)
	}
	return nil
}

func (w *Worker) lease() (LeaseReply, int, error) {
	var reply LeaseReply
	code, err := w.post(PathLease, LeaseRequest{Worker: w.o.ID}, &reply)
	if err != nil {
		return LeaseReply{}, code, fmt.Errorf("dsweep: lease: %w", err)
	}
	if code == http.StatusGone {
		return LeaseReply{}, code, nil
	}
	return reply, code, nil
}

func (w *Worker) complete(req CompleteRequest) (CompleteReply, int, error) {
	var reply CompleteReply
	code, err := w.post(PathComplete, req, &reply)
	if err != nil {
		return CompleteReply{}, code, fmt.Errorf("dsweep: complete: %w", err)
	}
	return reply, code, nil
}

func (w *Worker) release(key string, fence uint64) {
	w.post(PathRelease, ReleaseRequest{Worker: w.o.ID, Key: key, Fence: fence}, nil)
}

func (w *Worker) deregister() {
	w.post(PathDeregister, DeregisterRequest{Worker: w.o.ID}, nil)
}

// post sends one JSON request and decodes the JSON reply (when out is
// non-nil and the server sent a body). The status code is returned
// even alongside an unmarshallable body so callers can branch on 410.
func (w *Worker) post(path string, in, out any) (int, error) {
	b, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(w.hardCtx, http.MethodPost, w.o.URL+path, bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.o.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode, nil
}

// Ensure the injector satisfies the control-plane fault seam.
var _ heartbeatFaults = (*faultinject.Injector)(nil)
