package dsweep

import (
	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/simcache"
	"ebm/internal/spec"
)

// GridOptions selects the grid a distributed sweep covers — the same
// knobs search.GridOptions exposes for a local build, minus the
// execution wiring (which lives on the workers).
type GridOptions struct {
	Config       config.GPU
	Levels       []int // TLP levels per axis; default config.TLPLevels
	TotalCycles  uint64
	WarmupCycles uint64
}

// GridCells enumerates the exhaustive TLP-combination grid as wire
// cells, in the exact flat-index order and RunSpec shape
// search.BuildGrid submits — so every cell's fingerprint matches the
// key a single-process `sweep` of the same grid would use, and the
// two modes warm each other's cache. This correspondence is what the
// bit-identity chaos test pins.
func GridCells(apps []kernel.Params, opts GridOptions) []Cell {
	levels := opts.Levels
	if levels == nil {
		levels = append([]int(nil), config.TLPLevels...)
	}
	n := len(apps)
	total := 1
	for i := 0; i < n; i++ {
		total *= len(levels)
	}
	cells := make([]Cell, 0, total)
	for idx := 0; idx < total; idx++ {
		combo := make([]int, n)
		rem := idx
		for i := 0; i < n; i++ {
			combo[i] = levels[rem%len(levels)]
			rem /= len(levels)
		}
		rs := spec.RunSpec{
			Config:       opts.Config,
			Apps:         apps,
			Scheme:       spec.Static(combo, nil),
			TotalCycles:  opts.TotalCycles,
			WarmupCycles: opts.WarmupCycles,
		}
		cells = append(cells, Cell{Key: simcache.Key(rs), Spec: rs})
	}
	return cells
}
