package dsweep

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"ebm/internal/ckpt"
	"ebm/internal/obs"
	"ebm/internal/sim"
	"ebm/internal/simcache"
)

// testCells fabricates cells whose keys are opaque strings: coordinator
// bookkeeping never recomputes fingerprints, so the spec can stay zero.
func testCells(keys ...string) []Cell {
	cells := make([]Cell, len(keys))
	for i, k := range keys {
		cells[i] = Cell{Key: k}
	}
	return cells
}

func fakeResult(n uint64) sim.Result {
	return sim.Result{Cycles: n, TotalBW: float64(n) / 7, Windows: n % 5}
}

func goodHello(id string) Hello {
	return Hello{
		Worker:      id,
		Version:     "devel",
		Wire:        WireVersion,
		CacheSchema: simcache.SchemaVersion,
		CkptSchema:  ckpt.SchemaVersion,
	}
}

func newTestCoord(t *testing.T, opts Options) *Coordinator {
	t.Helper()
	if opts.LeaseTTL == 0 {
		opts.LeaseTTL = time.Minute // never expires within a unit test
	}
	if opts.Version == "" {
		opts.Version = "devel"
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRegisterHandshakeRejectsMismatches(t *testing.T) {
	c := newTestCoord(t, Options{Cells: testCells("a"), Version: "release-1"})
	cases := []struct {
		name string
		h    Hello
		want string // substring of the rejection reason
	}{
		{"empty id", Hello{Version: "release-1", Wire: WireVersion, CacheSchema: simcache.SchemaVersion, CkptSchema: ckpt.SchemaVersion}, "empty worker id"},
		{"wire", Hello{Worker: "w", Version: "release-1", Wire: WireVersion + 1, CacheSchema: simcache.SchemaVersion, CkptSchema: ckpt.SchemaVersion}, "wire version"},
		{"cache schema", Hello{Worker: "w", Version: "release-1", Wire: WireVersion, CacheSchema: simcache.SchemaVersion + 9, CkptSchema: ckpt.SchemaVersion}, "simcache schema"},
		{"ckpt schema", Hello{Worker: "w", Version: "release-1", Wire: WireVersion, CacheSchema: simcache.SchemaVersion, CkptSchema: ckpt.SchemaVersion + 9}, "ckpt schema"},
		{"build version", Hello{Worker: "w", Version: "release-2", Wire: WireVersion, CacheSchema: simcache.SchemaVersion, CkptSchema: ckpt.SchemaVersion}, "build version"},
	}
	for _, tc := range cases {
		reply := c.Register(tc.h)
		if reply.OK {
			t.Fatalf("%s: mismatched hello was accepted", tc.name)
		}
		if !strings.Contains(reply.Error, tc.want) {
			t.Fatalf("%s: rejection %q does not name the mismatch %q", tc.name, reply.Error, tc.want)
		}
	}
	if st := c.Status(); st.Workers != 0 {
		t.Fatalf("%d workers registered after rejections", st.Workers)
	}

	h := goodHello("w")
	h.Version = "release-1"
	reply := c.Register(h)
	if !reply.OK {
		t.Fatalf("compatible hello rejected: %s", reply.Error)
	}
	if reply.HeartbeatEveryNs <= 0 || reply.LeaseTTLNs != int64(time.Minute) {
		t.Fatalf("handshake cadence hb=%d ttl=%d, want ttl=%d (read back off the watchdog)",
			reply.HeartbeatEveryNs, reply.LeaseTTLNs, int64(time.Minute))
	}
}

// TestFencingRejectsZombiesAndDuplicates walks the core lease state
// machine: grant, manual expiry, reassignment under a higher fence, and
// the three fenced-reject shapes (stale fence, already-done, unknown
// cell) — each counted in Counts and in the obs registry counters.
func TestFencingRejectsZombiesAndDuplicates(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCoord(t, Options{Cells: testCells("a", "b"), Registry: reg})
	for _, id := range []string{"w1", "w2"} {
		if r := c.Register(goodHello(id)); !r.OK {
			t.Fatalf("register %s: %s", id, r.Error)
		}
	}

	reply, known := c.Lease(LeaseRequest{Worker: "w1"})
	if !known || reply.Cell == nil || reply.Cell.Key != "a" || reply.Fence != 1 {
		t.Fatalf("first lease = %+v (known %v), want cell a under fence 1", reply, known)
	}

	// w1 goes silent; the operator (here: the test) expires it.
	c.expireWorker("w1", "test expiry")
	if _, known := c.Lease(LeaseRequest{Worker: "w1"}); known {
		t.Fatal("expired worker still known to the coordinator")
	}

	// The cell comes back under a strictly higher fence: a reassignment.
	reply2, known := c.Lease(LeaseRequest{Worker: "w2"})
	if !known || reply2.Cell == nil || reply2.Cell.Key != "a" {
		t.Fatalf("reassignment lease = %+v, want cell a", reply2)
	}
	if reply2.Fence <= reply.Fence {
		t.Fatalf("reassigned fence %d did not advance past %d", reply2.Fence, reply.Fence)
	}

	// The zombie finishes anyway. Its result is rejected by the fence.
	if r := c.Complete(CompleteRequest{Worker: "w1", Key: "a", Fence: reply.Fence, Result: fakeResult(1)}); r.Accepted {
		t.Fatal("zombie completion under a dead fence was accepted")
	}
	// The live lease lands.
	if r := c.Complete(CompleteRequest{Worker: "w2", Key: "a", Fence: reply2.Fence, Result: fakeResult(2)}); !r.Accepted {
		t.Fatalf("live completion rejected: %s", r.Reason)
	}
	// A duplicate of a done cell and a completion for a cell outside the
	// sweep are both fenced rejects.
	if r := c.Complete(CompleteRequest{Worker: "w2", Key: "a", Fence: reply2.Fence, Result: fakeResult(2)}); r.Accepted {
		t.Fatal("duplicate completion of a done cell was accepted")
	}
	if r := c.Complete(CompleteRequest{Worker: "w2", Key: "nope", Fence: 99, Result: fakeResult(3)}); r.Accepted {
		t.Fatal("completion for an unknown cell was accepted")
	}

	n := c.Counts()
	if n.Expired != 1 || n.Reassigned != 1 || n.FencedRejects != 3 || n.Completed != 1 {
		t.Fatalf("counts = %+v, want 1 expired, 1 reassigned, 3 fenced rejects, 1 completed", n)
	}
	// The registry mirrors the lifecycle under the documented names.
	rr := httptest.NewRecorder()
	obs.Handler(reg).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	for _, want := range []string{
		"ebm_dsweep_leases_granted_total 2",
		"ebm_dsweep_leases_expired_total 1",
		"ebm_dsweep_leases_reassigned_total 1",
		"ebm_dsweep_fenced_rejects_total 3",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// Result durability: the accepted result (and only it) is visible.
	res := c.Results()
	if len(res) != 1 || !reflect.DeepEqual(res["a"], fakeResult(2)) {
		t.Fatalf("results = %+v, want only cell a with the live worker's result", res)
	}
}

// TestHeartbeatProgressGating pins the wedged-worker rule: heartbeats
// sustain a lease only while reported progress advances (or the worker
// is idle); beats without progress expire exactly like silence.
func TestHeartbeatProgressGating(t *testing.T) {
	ttl := 200 * time.Millisecond
	c := newTestCoord(t, Options{Cells: testCells("a", "b"), LeaseTTL: ttl})
	for _, id := range []string{"busy", "idle"} {
		if r := c.Register(goodHello(id)); !r.OK {
			t.Fatalf("register %s: %s", id, r.Error)
		}
	}
	if reply, _ := c.Lease(LeaseRequest{Worker: "busy"}); reply.Cell == nil {
		t.Fatal("no lease granted")
	}

	// Advancing progress (and idle beats) carry both workers well past
	// the TTL.
	progress := uint64(0)
	until := time.Now().Add(3 * ttl)
	for time.Now().Before(until) {
		progress++
		if !c.Heartbeat(HeartbeatRequest{Worker: "busy", Progress: progress}) {
			t.Fatal("advancing worker expired despite progress")
		}
		if !c.Heartbeat(HeartbeatRequest{Worker: "idle", Progress: 0}) {
			t.Fatal("idle worker expired despite heartbeats")
		}
		time.Sleep(ttl / 8)
	}

	// Now the busy worker wedges: beats keep arriving, progress does not.
	// (The idle worker keeps beating too — it must survive this.)
	waitFor(t, "wedged worker to expire", 10*ttl, func() bool {
		c.Heartbeat(HeartbeatRequest{Worker: "idle", Progress: 0})
		return !c.Heartbeat(HeartbeatRequest{Worker: "busy", Progress: progress})
	})
	n := c.Counts()
	if n.Expired < 1 {
		t.Fatalf("counts = %+v, want the wedged worker's lease expired", n)
	}
	if st := c.Status(); st.Pending != 2 {
		t.Fatalf("status = %+v, want both cells pending again", st)
	}
	// The idle worker is still fine.
	if !c.Heartbeat(HeartbeatRequest{Worker: "idle", Progress: 0}) {
		t.Fatal("idle worker was expired alongside the wedged one")
	}
}

// TestRestartResumesWithoutRerunningAndFenceNeverRegresses is the
// coordinator-crash story: a successor built over the same state path
// restores completed cells, restarts the fence above every token the
// old incarnation issued, and fences off completions from before the
// restart.
func TestRestartResumesWithoutRerunningAndFenceNeverRegresses(t *testing.T) {
	state := filepath.Join(t.TempDir(), "state.json")
	cells := testCells("a", "b", "c")

	c1 := newTestCoord(t, Options{Cells: cells, StatePath: state})
	if r := c1.Register(goodHello("w1")); !r.OK {
		t.Fatal(r.Error)
	}
	l1, _ := c1.Lease(LeaseRequest{Worker: "w1"})
	if r := c1.Complete(CompleteRequest{Worker: "w1", Key: l1.Cell.Key, Fence: l1.Fence, Result: fakeResult(11)}); !r.Accepted {
		t.Fatal(r.Reason)
	}
	l2, _ := c1.Lease(LeaseRequest{Worker: "w1"}) // granted, never completed
	c1.Close()

	// The checkpoint on disk carries the schema, the fence high-water
	// mark, and exactly the completed cell.
	b, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Schema int                   `json:"schema"`
		Fence  uint64                `json:"fence"`
		Done   map[string]sim.Result `json:"done"`
	}
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("torn state checkpoint: %v", err)
	}
	if st.Schema != StateSchemaVersion || st.Fence < l2.Fence || len(st.Done) != 1 {
		t.Fatalf("state = schema %d fence %d done %d, want schema %d fence >= %d done 1",
			st.Schema, st.Fence, len(st.Done), StateSchemaVersion, l2.Fence)
	}

	c2 := newTestCoord(t, Options{Cells: cells, StatePath: state})
	if n := c2.Counts(); n.Resumed != 1 {
		t.Fatalf("counts = %+v, want 1 cell resumed from the checkpoint", n)
	}
	if got := c2.Results(); !reflect.DeepEqual(got[l1.Cell.Key], fakeResult(11)) {
		t.Fatalf("resumed result %+v is not the one completed before the restart", got)
	}
	// The restarted coordinator forgot the roster on purpose.
	if _, known := c2.Lease(LeaseRequest{Worker: "w1"}); known {
		t.Fatal("pre-restart worker still known after restart")
	}
	// A completion under a pre-restart fence is a zombie.
	if r := c2.Complete(CompleteRequest{Worker: "w1", Key: l2.Cell.Key, Fence: l2.Fence, Result: fakeResult(22)}); r.Accepted {
		t.Fatal("pre-restart completion was accepted by the successor")
	}
	// New grants start strictly above every token ever issued.
	if r := c2.Register(goodHello("w2")); !r.OK {
		t.Fatal(r.Error)
	}
	l3, _ := c2.Lease(LeaseRequest{Worker: "w2"})
	if l3.Cell == nil || l3.Fence <= l2.Fence {
		t.Fatalf("post-restart fence %d did not advance past pre-restart %d", l3.Fence, l2.Fence)
	}
}

func TestTornStateCheckpointDegradesToFreshStart(t *testing.T) {
	state := filepath.Join(t.TempDir(), "state.json")
	if err := os.WriteFile(state, []byte(`{"schema":1,"fence":7,"done":{`), 0o644); err != nil {
		t.Fatal(err)
	}
	c := newTestCoord(t, Options{Cells: testCells("a"), StatePath: state})
	if n := c.Counts(); n.Resumed != 0 {
		t.Fatalf("resumed %d cells from a torn checkpoint", n.Resumed)
	}
	if st := c.Status(); st.Done != 0 || st.Pending != 1 {
		t.Fatalf("status = %+v, want a fresh sweep", st)
	}
}

func TestPrewarmCompletesCachedCellsUpFront(t *testing.T) {
	cache, err := simcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	warm := fakeResult(99)
	if err := cache.Put("a", warm); err != nil {
		t.Fatal(err)
	}
	c := newTestCoord(t, Options{Cells: testCells("a", "b"), Cache: cache})
	st := c.Status()
	if st.Done != 1 || st.Pending != 1 || c.Counts().Prewarmed != 1 {
		t.Fatalf("status = %+v counts = %+v, want cell a prewarmed", st, c.Counts())
	}
	if got := c.Results()["a"]; !reflect.DeepEqual(got, warm) {
		t.Fatalf("prewarmed result %+v differs from the cached one", got)
	}
}

func TestReleaseAndDeregisterReturnCellsToQueue(t *testing.T) {
	// Duplicate keys collapse: the fingerprint is the identity.
	c := newTestCoord(t, Options{Cells: testCells("a", "b", "a")})
	if st := c.Status(); st.Total != 2 {
		t.Fatalf("total = %d, want duplicate-keyed cells collapsed to 2", st.Total)
	}
	if r := c.Register(goodHello("w")); !r.OK {
		t.Fatal(r.Error)
	}

	l1, _ := c.Lease(LeaseRequest{Worker: "w"})
	// A stale release (wrong fence) must not yank the lease.
	if r := c.Release(ReleaseRequest{Worker: "w", Key: l1.Cell.Key, Fence: l1.Fence + 1}); r.Accepted {
		t.Fatal("stale release accepted")
	}
	if st := c.Status(); st.Leased != 1 {
		t.Fatalf("status = %+v after stale release, want the lease intact", st)
	}
	// The real one hands the cell back.
	if r := c.Release(ReleaseRequest{Worker: "w", Key: l1.Cell.Key, Fence: l1.Fence}); !r.Accepted {
		t.Fatalf("release rejected: %s", r.Reason)
	}
	if st := c.Status(); st.Pending != 2 || st.Leased != 0 {
		t.Fatalf("status = %+v after release, want both cells pending", st)
	}

	// Deregistering with a lease outstanding releases it too.
	l2, _ := c.Lease(LeaseRequest{Worker: "w"})
	if l2.Cell == nil {
		t.Fatal("no lease after release")
	}
	c.Deregister(DeregisterRequest{Worker: "w"})
	st := c.Status()
	if st.Workers != 0 || st.Pending != 2 || st.Leased != 0 {
		t.Fatalf("status = %+v after deregister, want empty roster and both cells pending", st)
	}
	if n := c.Counts(); n.Released != 2 || n.Expired != 0 {
		t.Fatalf("counts = %+v, want 2 orderly releases and no expiries", n)
	}
}

// TestSweepDoneSignals pins the completion protocol: Done closes, Wait
// returns, and further leases answer Done so workers drain themselves.
func TestSweepDoneSignals(t *testing.T) {
	c := newTestCoord(t, Options{Cells: testCells("a")})
	if r := c.Register(goodHello("w")); !r.OK {
		t.Fatal(r.Error)
	}
	l, _ := c.Lease(LeaseRequest{Worker: "w"})
	select {
	case <-c.Done():
		t.Fatal("Done closed before the sweep completed")
	default:
	}
	if r := c.Complete(CompleteRequest{Worker: "w", Key: l.Cell.Key, Fence: l.Fence, Result: fakeResult(1)}); !r.Accepted {
		t.Fatal(r.Reason)
	}
	select {
	case <-c.Done():
	case <-time.After(time.Second):
		t.Fatal("Done not closed after the last completion")
	}
	if reply, _ := c.Lease(LeaseRequest{Worker: "w"}); !reply.Done {
		t.Fatalf("post-completion lease = %+v, want Done", reply)
	}
}
