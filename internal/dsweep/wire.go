// Package dsweep is the crash-tolerant distributed sweep service:
// a coordinator that shards grid cells across worker processes over
// HTTP/JSON, under leases designed for the ways workers actually fail.
//
// The unit of work is a Cell — a canonical spec.RunSpec plus its
// simcache fingerprint. The fingerprint is the cell's identity
// everywhere: the coordinator dedups and checkpoints by it, workers
// persist results under it, and a completed cell is bit-identical to
// the same cell run by a single-process sweep because both sides
// execute the same deterministic engine and the result cache already
// proves JSON round-trips are exact.
//
// The failure model (DESIGN.md §15) is the point of the package:
//
//   - Workers register (a handshake that rejects mismatched schema or
//     build versions) and heartbeat; each worker is guarded by a
//     resilience.Watchdog whose deadline is the lease TTL.
//   - Cells are handed out under monotonically-fenced leases. Fencing
//     tokens are reserved in blocks: the state checkpoint always holds
//     a high-water mark no granted token exceeds, so the counter never
//     regresses — not even across a coordinator restart — while the
//     grant fast path only touches disk once per block.
//   - Missed heartbeats or stalled progress (heartbeats that arrive
//     but report no new simulation windows) trip the watchdog, expire
//     the worker's leases, and put its cells back in the queue; the
//     next grant of such a cell counts as a reassignment.
//   - A zombie — a worker whose lease expired but which finishes
//     anyway — has its completion rejected by the fencing-token check.
//     The rejection is bookkeeping, not correctness: results are
//     idempotent simcache puts keyed by fingerprint, so a duplicate
//     write is harmless by construction.
//   - The coordinator checkpoints its fence and completed results
//     atomically (temp+rename, like every store in this repo), so a
//     restarted coordinator resumes the sweep without re-running
//     finished cells, and journals every state transition so
//     `sweep -explain` can reconstruct who ran what.
package dsweep

import (
	"ebm/internal/obs"
	"ebm/internal/sim"
	"ebm/internal/spec"
)

// WireVersion gates the HTTP/JSON protocol itself; a worker speaking a
// different wire version is rejected at registration.
const WireVersion = 1

// Endpoint paths served by the coordinator.
const (
	PathRegister   = "/register"
	PathLease      = "/lease"
	PathHeartbeat  = "/heartbeat"
	PathComplete   = "/complete"
	PathRelease    = "/release"
	PathDeregister = "/deregister"
	PathStatus     = "/status"
	PathMetrics    = "/metrics"
)

// Cell is one unit of distributable work: the canonical run
// description and its simcache fingerprint. Key is the cell's identity
// on the wire, in the coordinator's checkpoint, and in the shared
// result cache — stable across restarts because it is derived from the
// spec, not from any session state.
type Cell struct {
	Key  string       `json:"key"`
	Spec spec.RunSpec `json:"spec"`
}

// Hello is the registration handshake. The coordinator rejects a
// worker whose wire version, cache/checkpoint schema, or build version
// differs from its own: schema skew would silently key results
// differently, and binary skew would break the bit-identity guarantee
// the shared cache depends on.
type Hello struct {
	Worker      string `json:"worker"`
	Version     string `json:"version"` // build identity (cli.Version form)
	Wire        int    `json:"wire"`
	CacheSchema int    `json:"cache_schema"`
	CkptSchema  int    `json:"ckpt_schema"`
}

// HelloReply answers a registration. On success it carries the
// control-plane cadence the worker must follow; on rejection Error
// says exactly which component mismatched.
type HelloReply struct {
	OK               bool   `json:"ok"`
	Error            string `json:"error,omitempty"`
	HeartbeatEveryNs int64  `json:"heartbeat_every_ns,omitempty"`
	LeaseTTLNs       int64  `json:"lease_ttl_ns,omitempty"`
}

// LeaseRequest asks for the next cell.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseReply hands out a cell under a fencing token, or reports the
// queue state: Wait means every remaining cell is leased elsewhere
// (poll again), Done means the sweep is complete (drain and exit).
type LeaseReply struct {
	Cell  *Cell  `json:"cell,omitempty"`
	Fence uint64 `json:"fence,omitempty"`
	Wait  bool   `json:"wait,omitempty"`
	Done  bool   `json:"done,omitempty"`
}

// HeartbeatRequest is the worker's liveness-and-progress beacon.
// Progress is a monotone counter of simulation windows completed; the
// coordinator feeds the worker's watchdog only when it advances (or
// the worker holds no lease), so a wedged engine expires its lease
// even while heartbeats keep arriving.
type HeartbeatRequest struct {
	Worker   string `json:"worker"`
	Progress uint64 `json:"progress"`
}

// CompleteRequest reports a finished cell under the lease's fencing
// token. Record, when present, is the worker's provenance record for
// the run (how it was satisfied, retries, faults, cost) which the
// coordinator appends to its own ledger for `sweep -explain`.
type CompleteRequest struct {
	Worker string         `json:"worker"`
	Key    string         `json:"key"`
	Fence  uint64         `json:"fence"`
	Result sim.Result     `json:"result"`
	Record *obs.RunRecord `json:"record,omitempty"`
}

// CompleteReply says whether the completion was accepted. A rejection
// (stale fence, unknown cell, already-done cell) is normal operation
// for a zombie worker — its work already landed in the cache, only the
// attribution is refused. Done rides along when this completion was
// the sweep's last: the worker exits off this reply instead of racing
// a final /lease against the coordinator's own shutdown.
type CompleteReply struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
	Done     bool   `json:"done,omitempty"`
}

// ReleaseRequest returns an unstarted lease to the queue — the
// graceful-drain path: a worker that is shutting down hands back cells
// it never began so another worker picks them up immediately instead
// of after a lease expiry.
type ReleaseRequest struct {
	Worker string `json:"worker"`
	Key    string `json:"key"`
	Fence  uint64 `json:"fence"`
}

// DeregisterRequest removes a worker from the coordinator's roster.
type DeregisterRequest struct {
	Worker string `json:"worker"`
}

// Status is the coordinator's observable state (GET /status).
type Status struct {
	Total   int    `json:"total"`
	Done    int    `json:"done"`
	Leased  int    `json:"leased"`
	Pending int    `json:"pending"`
	Workers int    `json:"workers"`
	Counts  Counts `json:"counts"`
}

// Counts tallies the coordinator's lease lifecycle — the numbers the
// chaos test asserts on and the obs counters mirror.
type Counts struct {
	Granted       uint64 `json:"granted"`
	Expired       uint64 `json:"expired"`
	Reassigned    uint64 `json:"reassigned"`
	FencedRejects uint64 `json:"fenced_rejects"`
	Completed     uint64 `json:"completed"`
	Released      uint64 `json:"released"`
	Prewarmed     uint64 `json:"prewarmed"` // cells satisfied from the cache at startup
	Resumed       uint64 `json:"resumed"`   // cells restored done from the state checkpoint
}
