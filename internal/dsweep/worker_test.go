package dsweep

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ebm/internal/cli"
	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/runner"
	"ebm/internal/search"
	"ebm/internal/simcache"
)

func workerTestApps(t testing.TB) []kernel.Params {
	t.Helper()
	a, ok := kernel.ByName("BLK")
	if !ok {
		t.Fatal("no BLK")
	}
	b, ok := kernel.ByName("BFS")
	if !ok {
		t.Fatal("no BFS")
	}
	return []kernel.Params{a, b}
}

func workerTestGrid(levels []int) GridOptions {
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.NumMemPartitions = 4
	return GridOptions{Config: cfg, Levels: levels, TotalCycles: 6_000, WarmupCycles: 2_000}
}

func openCache(t testing.TB, dir string) *simcache.Cache {
	t.Helper()
	c, err := simcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestWorkerSweepsBitIdenticalToLocalBuild drives one worker through a
// real (small) grid over the real HTTP protocol and pins the package's
// core promise: the distributed sweep's per-cell results are exactly
// the ones a single-process search.BuildGrid produces, cell for cell in
// the shared flat-index order.
func TestWorkerSweepsBitIdenticalToLocalBuild(t *testing.T) {
	apps := workerTestApps(t)
	gopts := workerTestGrid([]int{1, 24})
	cells := GridCells(apps, gopts)

	refPool := runner.New(4)
	defer refPool.Close()
	ref, err := search.BuildGrid(context.Background(), apps, search.GridOptions{
		Config: gopts.Config, Levels: gopts.Levels,
		TotalCycles: gopts.TotalCycles, WarmupCycles: gopts.WarmupCycles,
		Parallelism: 2, Runner: refPool, Cache: openCache(t, t.TempDir()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Results) != len(cells) {
		t.Fatalf("%d reference results for %d cells: GridCells diverged from search.BuildGrid", len(ref.Results), len(cells))
	}

	dir := t.TempDir()
	coord := newTestCoord(t, Options{Cells: cells, Cache: openCache(t, dir)})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	pool := runner.New(4)
	defer pool.Close()
	w := NewWorker(WorkerOptions{ID: "solo", URL: srv.URL, Cache: openCache(t, dir), Runner: pool})
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker run: %v", err)
	}
	if got := w.Completed(); got != uint64(len(cells)) {
		t.Fatalf("worker completed %d cells, want %d", got, len(cells))
	}
	if st := coord.Status(); st.Done != st.Total || st.Workers != 0 {
		t.Fatalf("status = %+v, want every cell done and the worker drained off the roster", st)
	}
	results := coord.Results()
	for i, cell := range cells {
		if !reflect.DeepEqual(results[cell.Key], ref.Results[i]) {
			t.Fatalf("cell %d (%s) differs from the local build", i, cell.Key)
		}
	}
}

// TestWorkerReRegistersAfterCoordinatorRestart swaps a fresh
// coordinator (restored from the state checkpoint) in under a running
// worker mid-sweep. The worker's next contact gets 410 Gone,
// re-registers, and finishes the sweep; nothing completed before the
// restart is re-run.
func TestWorkerReRegistersAfterCoordinatorRestart(t *testing.T) {
	apps := workerTestApps(t)
	cells := GridCells(apps, workerTestGrid([]int{1, 24}))
	dir := t.TempDir()
	state := dir + "/state.json"

	c1 := newTestCoord(t, Options{Cells: cells, Cache: openCache(t, dir), StatePath: state})
	var mu sync.Mutex
	cur := c1
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		c := cur
		mu.Unlock()
		c.Handler().ServeHTTP(w, r)
	}))
	defer srv.Close()

	pool := runner.New(4)
	defer pool.Close()
	w := NewWorker(WorkerOptions{ID: "survivor", URL: srv.URL, Cache: openCache(t, dir), Runner: pool})
	errCh := make(chan error, 1)
	go func() { errCh <- w.Run(context.Background()) }()

	waitFor(t, "a completion before the restart", 60*time.Second, func() bool {
		return c1.Counts().Completed >= 1
	})
	c2 := newTestCoord(t, Options{Cells: cells, Cache: openCache(t, dir), StatePath: state})
	if c2.Counts().Resumed+c2.Counts().Prewarmed < 1 {
		t.Fatalf("successor counts = %+v, want pre-restart completions restored", c2.Counts())
	}
	mu.Lock()
	cur = c2
	mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := c2.Wait(ctx); err != nil {
		t.Fatalf("sweep did not finish after the restart: %v (status %+v)", err, c2.Status())
	}
	if err := <-errCh; err != nil {
		t.Fatalf("worker run: %v", err)
	}
	if st := c2.Status(); st.Done != st.Total {
		t.Fatalf("status = %+v after restart, want the full grid done", st)
	}
}

// TestWorkerDrainsGracefullyOnSIGTERM delivers a real SIGTERM through
// internal/cli's notify context — the exact path `sweep -worker` runs
// under — and checks the drain contract: exit code 130, the in-flight
// cell finished or the unstarted lease handed back, the roster empty,
// and nothing left for lease expiry to clean up.
func TestWorkerDrainsGracefullyOnSIGTERM(t *testing.T) {
	apps := workerTestApps(t)
	cells := GridCells(apps, workerTestGrid([]int{1, 8, 24})) // 9 cells: the sweep outlives the signal
	dir := t.TempDir()
	coord := newTestCoord(t, Options{Cells: cells, Cache: openCache(t, dir)})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	pool := runner.New(4)
	defer pool.Close()
	w := NewWorker(WorkerOptions{ID: "draining", URL: srv.URL, Cache: openCache(t, dir), Runner: pool})

	var buf strings.Builder
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- cli.Run("sweep", &buf, func(ctx context.Context) error {
			return w.Run(ctx)
		})
	}()
	waitFor(t, "the worker to take a lease", 60*time.Second, func() bool {
		return coord.Counts().Granted >= 1
	})
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var code int
	select {
	case code = <-codeCh:
	case <-time.After(60 * time.Second):
		t.Fatal("worker did not drain after SIGTERM")
	}
	if code != cli.ExitInterrupted {
		t.Fatalf("exit code = %d (stderr %q), want %d", code, buf.String(), cli.ExitInterrupted)
	}
	st := coord.Status()
	if st.Workers != 0 || st.Leased != 0 {
		t.Fatalf("status = %+v after drain, want an empty roster and no dangling leases", st)
	}
	n := coord.Counts()
	if n.Completed == 0 && n.Released == 0 {
		t.Fatalf("counts = %+v: the granted lease was neither finished nor handed back", n)
	}
	if n.Expired != 0 {
		t.Fatalf("counts = %+v: a graceful drain left work for lease expiry", n)
	}
}

func TestWorkerRejectedByVersionHandshake(t *testing.T) {
	coord := newTestCoord(t, Options{Cells: testCells("a"), Version: "release-9"})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	w := NewWorker(WorkerOptions{ID: "old", URL: srv.URL}) // Version defaults to "devel"
	err := w.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("mismatched worker ran: err = %v", err)
	}
	if !strings.Contains(err.Error(), "build version") {
		t.Fatalf("rejection %v does not name the version mismatch", err)
	}
}
