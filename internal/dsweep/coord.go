package dsweep

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"ebm/internal/ckpt"
	"ebm/internal/obs"
	"ebm/internal/resilience"
	"ebm/internal/sim"
	"ebm/internal/simcache"
)

// StateSchemaVersion invalidates persisted coordinator checkpoints when
// the state-file layout changes.
const StateSchemaVersion = 1

// DefaultLeaseTTL is how long a lease survives without the worker
// showing progress before it expires. Production sweeps measure cells
// in seconds-to-minutes; chaos tests shrink it to milliseconds.
const DefaultLeaseTTL = 30 * time.Second

// Options configures a Coordinator.
type Options struct {
	// Cells is the sweep's work list. Cells sharing a fingerprint are
	// collapsed onto one: the fingerprint is the identity.
	Cells []Cell

	// Cache, when non-nil, is the coordinator's view of the shared
	// result store: cells already present are completed up front
	// (prewarm), and every accepted completion is persisted into it —
	// an idempotent put keyed by the fingerprint, so duplicates from
	// any source are harmless.
	Cache *simcache.Cache

	// StatePath, when non-empty, is the assignment-state checkpoint:
	// the fence counter and every completed result, rewritten
	// atomically on each transition so a restarted coordinator resumes
	// without re-running finished cells. A torn or foreign-schema file
	// is ignored (the sweep restarts from the cache prewarm instead).
	StatePath string

	// FenceBlock is how many fencing tokens are reserved (persisted to
	// the state checkpoint) ahead of demand. Durability requires the
	// persisted high-water mark to stay ahead of every token ever
	// granted — not that every grant hit the disk — so reserving in
	// blocks keeps the grant path free of I/O at the cost of burning at
	// most one block of token numbers per coordinator restart (fences
	// only need monotonicity; gaps are meaningless). Default 64.
	FenceBlock uint64

	// LeaseTTL is the no-progress deadline for a worker's leases; it
	// seeds each worker's resilience.Watchdog (default DefaultLeaseTTL)
	// and is what the lease deadline is "derived from the Watchdog
	// machinery" means: the coordinator reads the effective deadline
	// back off the watchdog it built.
	LeaseTTL time.Duration

	// HeartbeatEvery is the cadence workers are told to beat at
	// (default LeaseTTL/3, so two beats can be lost before expiry).
	HeartbeatEvery time.Duration

	// Version is the coordinator's build identity; a worker whose
	// handshake reports a different one is rejected.
	Version string

	// Journal receives one EvDsweep event per state transition;
	// Ledger receives the provenance record of every accepted
	// completion (worker-attributed); Registry mirrors the lease
	// lifecycle into counters and gauges. All nil-safe.
	Journal  *obs.Journal
	Ledger   *obs.Ledger
	Registry *obs.Registry

	// Mon receives watchdog-trip incidents (nil discards).
	Mon *resilience.Monitor
}

type cellStatus int

const (
	cellPending cellStatus = iota
	cellLeased
	cellDone
)

type cellState struct {
	cell    Cell
	status  cellStatus
	worker  string // current leaseholder (cellLeased)
	fence   uint64 // fencing token of the current/accepted lease
	expired bool   // a lease on this cell expired: next grant is a reassignment
	result  sim.Result
}

type workerState struct {
	id       string
	version  string
	wd       *resilience.Watchdog
	stopWd   context.CancelFunc
	progress uint64
	leases   map[string]uint64 // cell key -> fence
}

// Coordinator owns the sweep's authoritative state: the cell table,
// the worker roster with per-worker watchdogs, and the monotonic fence
// counter. All mutation happens under one mutex; the HTTP layer in
// server.go is a thin decode-call-encode shim over its methods.
type Coordinator struct {
	opts Options

	mu      sync.Mutex
	cells   map[string]*cellState
	order   []string // deterministic handout order (first-listed first)
	workers map[string]*workerState
	fence   uint64 // last token granted
	fenceHW uint64 // persisted reservation high-water mark (>= fence)
	doneN   int
	counts  Counts
	doneCh  chan struct{}

	grantedC, expiredC, reassignedC, fencedC *obs.Counter
	workersG, doneG, totalG                  *obs.Gauge
}

// New builds a coordinator over the given cells, restoring any
// persisted assignment state and prewarming completed cells from the
// shared cache. It is ready to serve immediately (see Handler).
func New(opts Options) (*Coordinator, error) {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = opts.LeaseTTL / 3
	}
	if opts.FenceBlock == 0 {
		opts.FenceBlock = 64
	}
	c := &Coordinator{
		opts:    opts,
		cells:   make(map[string]*cellState, len(opts.Cells)),
		workers: make(map[string]*workerState),
		doneCh:  make(chan struct{}),
	}
	if reg := opts.Registry; reg != nil {
		c.grantedC = reg.Counter("ebm_dsweep_leases_granted_total", "cell leases handed to workers")
		c.expiredC = reg.Counter("ebm_dsweep_leases_expired_total", "leases expired by missed heartbeats or stalled progress")
		c.reassignedC = reg.Counter("ebm_dsweep_leases_reassigned_total", "expired cells re-granted to another worker")
		c.fencedC = reg.Counter("ebm_dsweep_fenced_rejects_total", "zombie completions rejected by the fencing-token check")
		c.workersG = reg.Gauge("ebm_dsweep_workers", "workers currently registered")
		c.doneG = reg.Gauge("ebm_dsweep_cells_done", "cells completed")
		c.totalG = reg.Gauge("ebm_dsweep_cells_total", "cells in this sweep")
	}
	for _, cl := range opts.Cells {
		if _, dup := c.cells[cl.Key]; dup {
			continue // the fingerprint is the identity; duplicates collapse
		}
		c.cells[cl.Key] = &cellState{cell: cl}
		c.order = append(c.order, cl.Key)
	}
	c.totalG.Set(float64(len(c.order)))

	if err := c.loadState(); err != nil {
		return nil, err
	}
	c.prewarm()
	c.mu.Lock()
	c.checkDoneLocked()
	c.mu.Unlock()
	return c, nil
}

func (c *Coordinator) journal(label string) {
	c.opts.Journal.Record(obs.Event{Kind: obs.EvDsweep, App: -1, Label: label})
}

// persisted coordinator checkpoint layout.
type stateFile struct {
	Schema int                   `json:"schema"`
	Fence  uint64                `json:"fence"`
	Done   map[string]sim.Result `json:"done"`
}

// loadState restores the fence and completed cells from StatePath.
// Unreadable or foreign state degrades to an empty one — the cache
// prewarm recovers most of the loss, and the fence restarts above any
// zombie's token because the checkpoint always carries the reservation
// high-water mark, never a smaller number.
func (c *Coordinator) loadState() error {
	if c.opts.StatePath == "" {
		return nil
	}
	b, err := os.ReadFile(c.opts.StatePath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("dsweep: state %s: %w", c.opts.StatePath, err)
	}
	var st stateFile
	if json.Unmarshal(b, &st) != nil || st.Schema != StateSchemaVersion {
		c.journal("state checkpoint unreadable; starting fresh")
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Resume from the reservation high-water mark: tokens in the dead
	// incarnation's unused tail of the block are skipped, which costs
	// nothing — monotonicity is the only property fences carry.
	c.fence = st.Fence
	c.fenceHW = st.Fence
	for key, res := range st.Done {
		cs, ok := c.cells[key]
		if !ok || cs.status == cellDone {
			continue
		}
		cs.status = cellDone
		cs.result = res
		c.doneN++
		c.counts.Resumed++
	}
	c.doneG.Set(float64(c.doneN))
	if c.counts.Resumed > 0 {
		c.journal(fmt.Sprintf("resumed %d completed cells from state checkpoint (fence %d)", c.counts.Resumed, c.fence))
	}
	return nil
}

// saveStateLocked atomically rewrites the checkpoint. Must hold c.mu.
// A failed write is surfaced but never fatal: the sweep's correctness
// does not depend on the checkpoint, only restart cost does.
func (c *Coordinator) saveStateLocked() {
	if c.opts.StatePath == "" {
		return
	}
	st := stateFile{Schema: StateSchemaVersion, Fence: c.fenceHW, Done: make(map[string]sim.Result, c.doneN)}
	for key, cs := range c.cells {
		if cs.status == cellDone {
			st.Done[key] = cs.result
		}
	}
	b, err := json.Marshal(st)
	if err != nil {
		return // plain data always marshals
	}
	dir, base := splitPath(c.opts.StatePath)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		simcache.Warnf("dsweep: state checkpoint: %v", err)
		return
	}
	tmp := f.Name()
	if _, err := f.Write(b); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err == nil {
		err = os.Rename(tmp, c.opts.StatePath)
	}
	if err != nil {
		os.Remove(tmp)
		simcache.Warnf("dsweep: state checkpoint: %v", err)
	}
}

func splitPath(p string) (dir, base string) {
	for i := len(p) - 1; i >= 0; i-- {
		if os.IsPathSeparator(p[i]) {
			return p[:i+1], p[i+1:]
		}
	}
	return ".", p
}

// prewarm completes every pending cell the shared cache already holds:
// the whole point of a fingerprint-keyed store is that earlier sweeps
// (local or distributed) have already paid for some of this one.
func (c *Coordinator) prewarm() {
	if c.opts.Cache == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, key := range c.order {
		cs := c.cells[key]
		if cs.status != cellPending {
			continue
		}
		if res, ok := c.opts.Cache.Get(key); ok {
			cs.status = cellDone
			cs.result = res
			c.doneN++
			c.counts.Prewarmed++
		}
	}
	c.doneG.Set(float64(c.doneN))
	c.saveStateLocked()
	if c.counts.Prewarmed > 0 {
		c.journal(fmt.Sprintf("prewarmed %d cells from the result cache", c.counts.Prewarmed))
	}
}

// Register admits a worker after the compatibility handshake. A worker
// re-registering under a live id replaces its old incarnation (which
// is then treated as expired — its leases return to the queue).
func (c *Coordinator) Register(h Hello) HelloReply {
	reject := func(format string, args ...any) HelloReply {
		msg := fmt.Sprintf(format, args...)
		c.journal(fmt.Sprintf("rejected worker %s: %s", h.Worker, msg))
		return HelloReply{Error: msg}
	}
	if h.Worker == "" {
		return reject("empty worker id")
	}
	if h.Wire != WireVersion {
		return reject("wire version %d, coordinator speaks %d", h.Wire, WireVersion)
	}
	if h.CacheSchema != simcache.SchemaVersion {
		return reject("simcache schema %d, coordinator uses %d — results would key differently", h.CacheSchema, simcache.SchemaVersion)
	}
	if h.CkptSchema != ckpt.SchemaVersion {
		return reject("ckpt schema %d, coordinator uses %d", h.CkptSchema, ckpt.SchemaVersion)
	}
	if c.opts.Version != "" && h.Version != c.opts.Version {
		return reject("build version %q, coordinator is %q — mixed builds void bit-identity", h.Version, c.opts.Version)
	}

	c.mu.Lock()
	if old, ok := c.workers[h.Worker]; ok {
		c.expireLocked(old, "replaced by re-registration")
	}
	ws := &workerState{id: h.Worker, version: h.Version, leases: make(map[string]uint64)}
	// The watchdog IS the lease deadline: no pulses (lost heartbeats or
	// stalled progress) for LeaseTTL trips it, expiring the worker.
	ws.wd = resilience.NewWatchdog(resilience.WatchdogOptions{
		Label:    "dsweep:" + h.Worker,
		Deadline: c.opts.LeaseTTL,
		Mon:      c.opts.Mon,
		OnTrip:   func() { c.expireWorker(h.Worker, "lease deadline expired") },
	})
	_, ws.stopWd = ws.wd.Guard(context.Background())
	c.workers[h.Worker] = ws
	c.workersG.Set(float64(len(c.workers)))
	c.mu.Unlock()
	c.journal(fmt.Sprintf("worker %s registered (%s)", h.Worker, h.Version))
	return HelloReply{
		OK:               true,
		HeartbeatEveryNs: int64(c.opts.HeartbeatEvery),
		LeaseTTLNs:       int64(ws.wd.Deadline()),
	}
}

// Lease hands the next pending cell to a worker under a fresh fencing
// token. The fence is persisted (state checkpoint) before the reply,
// so a coordinator restart can never re-issue a token a zombie still
// holds. known=false means the worker is not registered (its lease
// expired or the coordinator restarted) and must re-register.
func (c *Coordinator) Lease(req LeaseRequest) (reply LeaseReply, known bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws, ok := c.workers[req.Worker]
	if !ok {
		return LeaseReply{}, false
	}
	for _, key := range c.order {
		cs := c.cells[key]
		if cs.status != cellPending {
			continue
		}
		c.fence++
		// Fence durability before the token leaves: the checkpoint must
		// always hold a number no token ever exceeds. Reserving a block
		// at a time keeps this off the grant fast path — the save runs
		// once per FenceBlock grants, not once per grant.
		if c.fence > c.fenceHW {
			c.fenceHW = c.fence + c.opts.FenceBlock - 1
			c.saveStateLocked()
		}
		cs.status = cellLeased
		cs.worker = req.Worker
		cs.fence = c.fence
		ws.leases[key] = c.fence
		ws.wd.Pulse() // taking work is progress
		c.counts.Granted++
		c.grantedC.Inc()
		reassigned := cs.expired
		if reassigned {
			cs.expired = false
			c.counts.Reassigned++
			c.reassignedC.Inc()
		}
		what := "granted"
		if reassigned {
			what = "reassigned"
		}
		c.journal(fmt.Sprintf("lease %s: cell %s -> %s (fence %d)", what, key, req.Worker, cs.fence))
		return LeaseReply{Cell: &cs.cell, Fence: cs.fence}, true
	}
	if c.doneN == len(c.order) {
		return LeaseReply{Done: true}, true
	}
	return LeaseReply{Wait: true}, true
}

// Heartbeat records a worker's beacon. The watchdog is pulsed only
// when the reported progress advanced or the worker holds no lease —
// so a dead worker (no beats) and a wedged one (beats, no progress)
// expire identically.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (known bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws, ok := c.workers[req.Worker]
	if !ok {
		return false
	}
	if req.Progress > ws.progress || len(ws.leases) == 0 {
		ws.wd.Pulse()
	}
	if req.Progress > ws.progress {
		ws.progress = req.Progress
	}
	return true
}

// Complete accepts a finished cell if — and only if — the reporting
// worker still holds the cell's current lease under the matching
// fencing token. Everything else (already-done cell, stale fence,
// unknown cell, forgotten worker) is a fenced reject: counted,
// journaled, harmless.
func (c *Coordinator) Complete(req CompleteRequest) CompleteReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	rejectLocked := func(reason string) CompleteReply {
		c.counts.FencedRejects++
		c.fencedC.Inc()
		c.journal(fmt.Sprintf("fenced reject: cell %s from %s (fence %d): %s", req.Key, req.Worker, req.Fence, reason))
		return CompleteReply{Reason: reason, Done: c.doneN == len(c.cells)}
	}
	cs, ok := c.cells[req.Key]
	if !ok {
		return rejectLocked("unknown cell")
	}
	if cs.status == cellDone {
		return rejectLocked("cell already completed")
	}
	if cs.status != cellLeased || cs.worker != req.Worker || cs.fence != req.Fence {
		return rejectLocked(fmt.Sprintf("stale lease (current fence %d held by %s)", cs.fence, cs.worker))
	}
	cs.status = cellDone
	cs.result = req.Result
	c.doneN++
	c.counts.Completed++
	c.doneG.Set(float64(c.doneN))
	if ws, ok := c.workers[req.Worker]; ok {
		delete(ws.leases, req.Key)
		ws.wd.Pulse()
	}
	// The cache put is idempotent (fingerprint-keyed, atomic rename):
	// the worker usually already persisted it; this makes the result
	// durable at the coordinator even when workers have private disks.
	if c.opts.Cache != nil {
		if err := c.opts.Cache.Put(req.Key, req.Result); err != nil {
			simcache.Warnf("dsweep: persist %s: %v", req.Key, err)
		}
	}
	if req.Record != nil {
		rec := *req.Record
		if rec.Worker == "" {
			rec.Worker = req.Worker
		}
		if err := c.opts.Ledger.Append(rec); err != nil {
			simcache.Warnf("dsweep: ledger: %v", err)
		}
	}
	c.saveStateLocked()
	c.journal(fmt.Sprintf("completed: cell %s by %s (fence %d)", req.Key, req.Worker, req.Fence))
	c.checkDoneLocked()
	return CompleteReply{Accepted: true, Done: c.doneN == len(c.cells)}
}

// Release returns an unstarted lease to the queue (graceful drain).
// Fence-checked like Complete: a stale release must not yank a cell
// that has since been re-leased to someone else.
func (c *Coordinator) Release(req ReleaseRequest) CompleteReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := c.cells[req.Key]
	if !ok || cs.status != cellLeased || cs.worker != req.Worker || cs.fence != req.Fence {
		return CompleteReply{Reason: "stale release"}
	}
	cs.status = cellPending
	cs.worker = ""
	c.counts.Released++
	if ws, ok := c.workers[req.Worker]; ok {
		delete(ws.leases, req.Key)
	}
	c.journal(fmt.Sprintf("lease released: cell %s by %s (fence %d)", req.Key, req.Worker, req.Fence))
	return CompleteReply{Accepted: true}
}

// Deregister removes a worker; any leases it still holds are returned
// to the queue as released (an orderly exit, not an expiry).
func (c *Coordinator) Deregister(req DeregisterRequest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws, ok := c.workers[req.Worker]
	if !ok {
		return
	}
	for key, fence := range ws.leases {
		if cs, ok := c.cells[key]; ok && cs.status == cellLeased && cs.worker == ws.id && cs.fence == fence {
			cs.status = cellPending
			cs.worker = ""
			c.counts.Released++
			c.journal(fmt.Sprintf("lease released: cell %s by departing %s (fence %d)", key, ws.id, fence))
		}
	}
	c.removeLocked(ws)
	c.journal(fmt.Sprintf("worker %s deregistered", ws.id))
}

// expireWorker is the watchdog's trip action.
func (c *Coordinator) expireWorker(id, why string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws, ok := c.workers[id]
	if !ok {
		return
	}
	c.expireLocked(ws, why)
}

// expireLocked returns every lease the worker holds to the queue
// (marked for reassignment accounting) and drops the worker. The
// worker itself is not told: its next coordinator contact gets a
// "who are you?" and re-registers — by which time its old fencing
// tokens are dead.
func (c *Coordinator) expireLocked(ws *workerState, why string) {
	for key, fence := range ws.leases {
		cs, ok := c.cells[key]
		if !ok || cs.status != cellLeased || cs.worker != ws.id || cs.fence != fence {
			continue
		}
		cs.status = cellPending
		cs.worker = ""
		cs.expired = true
		c.counts.Expired++
		c.expiredC.Inc()
		c.journal(fmt.Sprintf("lease expired: cell %s held by %s (fence %d): %s", key, ws.id, fence, why))
	}
	c.removeLocked(ws)
	c.journal(fmt.Sprintf("worker %s expired: %s", ws.id, why))
}

func (c *Coordinator) removeLocked(ws *workerState) {
	ws.stopWd()
	delete(c.workers, ws.id)
	c.workersG.Set(float64(len(c.workers)))
}

func (c *Coordinator) checkDoneLocked() {
	if c.doneN == len(c.order) {
		select {
		case <-c.doneCh:
		default:
			close(c.doneCh)
		}
	}
}

// Done is closed when every cell has completed.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Wait blocks until the sweep completes or ctx cancels.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Counts returns a snapshot of the lease-lifecycle tallies.
func (c *Coordinator) Counts() Counts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts
}

// Status returns the observable sweep state.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Status{Total: len(c.order), Done: c.doneN, Workers: len(c.workers), Counts: c.counts}
	for _, cs := range c.cells {
		switch cs.status {
		case cellLeased:
			s.Leased++
		case cellPending:
			s.Pending++
		}
	}
	return s
}

// Results returns the completed per-cell results by fingerprint.
func (c *Coordinator) Results() map[string]sim.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]sim.Result, c.doneN)
	for key, cs := range c.cells {
		if cs.status == cellDone {
			out[key] = cs.result
		}
	}
	return out
}

// Close stops every worker watchdog. The coordinator keeps answering
// state queries but will no longer expire leases.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ws := range c.workers {
		ws.stopWd()
	}
}
