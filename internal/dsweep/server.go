package dsweep

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
)

// Handler exposes the coordinator's methods as the HTTP/JSON wire
// protocol. Registration failures answer 400 with the HelloReply
// explaining the mismatch; an unknown worker answers 410 Gone, the
// signal to re-register (its lease expired, or the coordinator
// restarted and forgot the roster — deliberately: leases are not
// checkpointed, only fences and results are).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathRegister, func(w http.ResponseWriter, r *http.Request) {
		var h Hello
		if !decode(w, r, &h) {
			return
		}
		reply := c.Register(h)
		code := http.StatusOK
		if !reply.OK {
			code = http.StatusBadRequest
		}
		encode(w, code, reply)
	})
	mux.HandleFunc("POST "+PathLease, func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decode(w, r, &req) {
			return
		}
		reply, known := c.Lease(req)
		if !known {
			w.WriteHeader(http.StatusGone)
			return
		}
		encode(w, http.StatusOK, reply)
	})
	mux.HandleFunc("POST "+PathHeartbeat, func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decode(w, r, &req) {
			return
		}
		if !c.Heartbeat(req) {
			w.WriteHeader(http.StatusGone)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST "+PathComplete, func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decode(w, r, &req) {
			return
		}
		// No 410 here: a zombie's completion must reach the fencing
		// check (and its counter), not bounce off the roster.
		encode(w, http.StatusOK, c.Complete(req))
	})
	mux.HandleFunc("POST "+PathRelease, func(w http.ResponseWriter, r *http.Request) {
		var req ReleaseRequest
		if !decode(w, r, &req) {
			return
		}
		encode(w, http.StatusOK, c.Release(req))
	})
	mux.HandleFunc("POST "+PathDeregister, func(w http.ResponseWriter, r *http.Request) {
		var req DeregisterRequest
		if !decode(w, r, &req) {
			return
		}
		c.Deregister(req)
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET "+PathStatus, func(w http.ResponseWriter, r *http.Request) {
		encode(w, http.StatusOK, c.Status())
	})
	return mux
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("dsweep: bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func encode(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// Serve starts the coordinator's HTTP server on addr. The returned
// server is already serving; Close it to stop.
func Serve(addr string, c *Coordinator) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("dsweep: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: c.Handler()}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}
