// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each experiment is a
// function writing a text rendition of the paper's panel; cmd/paperfigs
// dispatches them and bench_test.go wraps them in benchmarks.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"ebm/internal/ckpt"
	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/metrics"
	"ebm/internal/obs"
	"ebm/internal/profile"
	"ebm/internal/runner"
	"ebm/internal/search"
	"ebm/internal/sim"
	"ebm/internal/simcache"
	"ebm/internal/spec"
	"ebm/internal/workload"
)

// Options configures an experiment environment.
type Options struct {
	Config config.GPU

	// ProfileCache is an optional JSON path caching alone profiles.
	ProfileCache string

	// GridCycles/GridWarmup are the per-combination run lengths for the
	// exhaustive searches.
	GridCycles, GridWarmup uint64

	// EvalCycles/EvalWarmup are the run lengths for the final scheme
	// comparisons (long enough to amortize online search like the paper's
	// full-application runs).
	EvalCycles, EvalWarmup uint64

	// WindowCycles is the sampling window for online managers.
	WindowCycles uint64

	// Workloads overrides the evaluation set (default: the 25 evaluated
	// two-app workloads).
	Workloads []workload.Workload

	// Adaptive routes EvalWorkload's offline searches through the
	// coarse-to-fine successive-halving search (search.Adaptive) instead
	// of the exhaustive grid: the opt*/BF-* oracle picks come from
	// adaptive searches and the PBS offline walks read a lazy
	// cell-on-demand grid, so a workload pays only for the cells the
	// searches actually touch. On the paper's workloads the picks are
	// identical (TestAdaptiveMatchesExhaustive); experiments that print
	// whole surfaces still build exhaustive grids.
	Adaptive bool

	Parallelism int

	// SimCache, when non-empty, is the directory of the shared on-disk
	// simulation-result cache: grids, evaluation runs, and alone profiles
	// all persist there and replay on later runs.
	SimCache string

	// Ckpt, when non-nil, is the prefix-checkpoint store: every uncached
	// simulation — profiles, grid cells, evaluation runs — forks from the
	// deepest persisted snapshot of its deterministic prefix instead of
	// replaying from cycle zero.
	Ckpt *ckpt.Store

	// Runner is the execution pool simulations are submitted to. Nil
	// means the process-wide runner.Default().
	Runner *runner.Runner

	// Ledger, when non-nil, receives one provenance record per completed
	// cached run — profiles, grid cells, and evaluation runs alike
	// (requires SimCache; the ledger hangs off the result cache handle).
	Ledger *obs.Ledger
}

func (o *Options) fillDefaults() {
	if o.Config.NumCores == 0 {
		o.Config = config.Default()
	}
	if o.GridCycles == 0 {
		o.GridCycles = 120_000
	}
	if o.GridWarmup == 0 {
		o.GridWarmup = 20_000
	}
	if o.EvalCycles == 0 {
		o.EvalCycles = 600_000
	}
	if o.EvalWarmup == 0 {
		o.EvalWarmup = 10_000
	}
	if o.WindowCycles == 0 {
		o.WindowCycles = 2_500
	}
	if o.Workloads == nil {
		o.Workloads = workload.Evaluated()
	}
}

// Env carries the shared state: the machine, the alone profiles, the
// execution pool, and the in-process + on-disk result caches.
type Env struct {
	Opt   Options
	Suite *profile.Suite

	// ctx is the lifecycle of every simulation the environment submits:
	// experiment Run functions inherit it implicitly (keeping the
	// Experiment signature stable) and a cancel aborts grids, evals, and
	// profiles cooperatively. Set by NewEnv; never nil.
	ctx context.Context

	cache *simcache.Cache
	ckpt  *ckpt.Store    // nil = cold execution for cache misses
	pool  *runner.Runner // nil = runner.Default() at submission time
	sf    runner.Group   // collapses duplicate grid builds / evals

	mu        sync.Mutex
	grids     map[string]*search.Grid
	lazyGrids map[string]*search.Grid // cell-on-demand grids (Options.Adaptive)
	evalCache map[string]*Eval
}

// NewEnv profiles the full application suite (or loads the cache) and
// returns a ready environment. ctx governs the initial profiling and
// every simulation later submitted through the environment; nil means
// context.Background().
func NewEnv(ctx context.Context, opt Options) (*Env, error) {
	opt.fillDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	var cache *simcache.Cache
	if opt.SimCache != "" {
		var err error
		cache, err = simcache.Open(opt.SimCache)
		if err != nil {
			return nil, err
		}
		cache.SetLedger(opt.Ledger)
	}
	suite, err := profile.LoadOrProfile(ctx, opt.ProfileCache, kernel.All(), profile.Options{
		Config:       opt.Config,
		TotalCycles:  opt.GridCycles,
		WarmupCycles: opt.GridWarmup,
		Parallelism:  opt.Parallelism,
		Runner:       opt.Runner,
		Cache:        cache,
		Ckpt:         opt.Ckpt,
	})
	if err != nil {
		return nil, err
	}
	return &Env{
		Opt:       opt,
		Suite:     suite,
		ctx:       ctx,
		cache:     cache,
		ckpt:      opt.Ckpt,
		pool:      opt.Runner,
		grids:     map[string]*search.Grid{},
		lazyGrids: map[string]*search.Grid{},
		evalCache: map[string]*Eval{},
	}, nil
}

// Context returns the environment's lifecycle context.
func (e *Env) Context() context.Context { return e.ctx }

// Cache returns the environment's result cache (nil when -simcache is
// off), e.g. for hit/miss reporting and obs instrumentation.
func (e *Env) Cache() *simcache.Cache { return e.cache }

// Ckpt returns the environment's prefix-checkpoint store (nil when
// checkpointing is off), e.g. for fork reporting and obs
// instrumentation.
func (e *Env) Ckpt() *ckpt.Store { return e.ckpt }

// buildGrid is search.BuildGrid, replaceable in tests (the Env.Grid
// duplicate-build regression test swaps in a blocking build).
var buildGrid = search.BuildGrid

// Grid returns (building and caching on first use) the exhaustive
// TLP-combination grid for a workload. Concurrent callers for the same
// workload share one build via singleflight — previously both would miss
// the map and build the full grid twice.
func (e *Env) Grid(w workload.Workload) (*search.Grid, error) {
	e.mu.Lock()
	g, ok := e.grids[w.Name]
	e.mu.Unlock()
	if ok {
		return g, nil
	}
	v, _, err := e.sf.Do("grid:"+w.Name, func() (any, error) {
		e.mu.Lock()
		g, ok := e.grids[w.Name]
		e.mu.Unlock()
		if ok {
			return g, nil
		}
		gctx, gsp := obs.StartSpan(e.ctx, "env-grid", obs.A("workload", w.Name))
		defer gsp.End()
		g, err := buildGrid(gctx, w.Apps, e.gridOptions())
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.grids[w.Name] = g
		e.mu.Unlock()
		return g, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*search.Grid), nil
}

// gridOptions is the shared build configuration of exhaustive, lazy, and
// adaptive searches: same machine, horizons, pool, cache, and checkpoint
// store, so all three produce (and replay) identical cache entries.
func (e *Env) gridOptions() search.GridOptions {
	return search.GridOptions{
		Config:       e.Opt.Config,
		TotalCycles:  e.Opt.GridCycles,
		WarmupCycles: e.Opt.GridWarmup,
		Parallelism:  e.Opt.Parallelism,
		Runner:       e.pool,
		Cache:        e.cache,
		Ckpt:         e.ckpt,
	}
}

// LazyGrid returns (creating and caching on first use) the
// cell-on-demand grid for a workload: cells simulate on first At access
// through the same cache path as Grid, so the offline PBS walks under
// Options.Adaptive pay only for the cells they read.
func (e *Env) LazyGrid(w workload.Workload) (*search.Grid, error) {
	e.mu.Lock()
	g, ok := e.lazyGrids[w.Name]
	e.mu.Unlock()
	if ok {
		return g, nil
	}
	v, _, err := e.sf.Do("lazygrid:"+w.Name, func() (any, error) {
		e.mu.Lock()
		g, ok := e.lazyGrids[w.Name]
		e.mu.Unlock()
		if ok {
			return g, nil
		}
		g, err := search.NewLazyGrid(e.ctx, w.Apps, e.gridOptions())
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.lazyGrids[w.Name] = g
		e.mu.Unlock()
		return g, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*search.Grid), nil
}

// AdaptiveBest finds the combination maximizing eval through the
// coarse-to-fine successive-halving search — Options.Adaptive's
// replacement for Grid.Best, sharing the environment's cache and
// checkpoint store.
func (e *Env) AdaptiveBest(w workload.Workload, eval search.Eval) ([]int, float64, error) {
	res, err := search.Adaptive(e.ctx, w.Apps, eval, search.AdaptiveOptions{
		Config:       e.Opt.Config,
		TotalCycles:  e.Opt.GridCycles,
		WarmupCycles: e.Opt.GridWarmup,
		Parallelism:  e.Opt.Parallelism,
		Runner:       e.pool,
		Cache:        e.cache,
		Ckpt:         e.ckpt,
	})
	if err != nil {
		return nil, 0, err
	}
	return res.Combo, res.Value, nil
}

// Run executes a declarative run description through the shared executor
// (PriEval) and the on-disk result cache. Every cacheable simulation an
// experiment performs funnels through here; runs that need observers or
// per-window hooks (uncacheable by construction) assemble sim.Options
// directly instead.
func (e *Env) Run(rs spec.RunSpec) (sim.Result, error) {
	return simcache.RunCached(e.ctx, e.cache, e.pool, runner.PriEval, rs, ckpt.Runner(e.ckpt, rs))
}

// EvalSpec is the evaluation-length run description for a workload under
// a scheme: the paper's comparison conditions (designated sampling, the
// configured window) at full evaluation length.
func (e *Env) EvalSpec(w workload.Workload, sch spec.SchemeSpec) spec.RunSpec {
	return spec.RunSpec{
		Config:             e.Opt.Config,
		Apps:               w.Apps,
		Scheme:             sch,
		TotalCycles:        e.Opt.EvalCycles,
		WarmupCycles:       e.Opt.EvalWarmup,
		WindowCycles:       e.Opt.WindowCycles,
		DesignatedSampling: true,
	}
}

// RunScheme evaluates a workload under a scheme at evaluation length.
func (e *Env) RunScheme(w workload.Workload, sch spec.SchemeSpec) (sim.Result, error) {
	return e.Run(e.EvalSpec(w, sch))
}

// RunStatic runs a workload at a fixed TLP combination for the evaluation
// length.
func (e *Env) RunStatic(w workload.Workload, tlps []int) (sim.Result, error) {
	return e.RunScheme(w, spec.Static(tlps, nil))
}

// Alone returns (aloneIPC, aloneEB, bestTLPs) for a workload's apps.
func (e *Env) Alone(w workload.Workload) (ipc, eb []float64, best []int, err error) {
	names := w.Names()
	if ipc, err = e.Suite.AloneIPC(names); err != nil {
		return
	}
	if eb, err = e.Suite.AloneEB(names); err != nil {
		return
	}
	best, err = e.Suite.BestTLPs(names)
	return
}

// SD converts a result into the slowdown vector against alone IPCs.
func SD(r sim.Result, aloneIPC []float64) []float64 {
	sd, err := metrics.Slowdowns(r.IPCs(), aloneIPC)
	if err != nil {
		panic(err) // alone IPCs are always positive by construction
	}
	return sd
}

// Outcome is one scheme's measured behaviour on one workload.
type Outcome struct {
	Scheme string
	Combo  []int // nil for dynamic schemes
	WS     float64
	FI     float64
	HS     float64
	IT     float64
	Result sim.Result
}

// Eval holds every scheme outcome for one workload (the unit behind
// Figs. 9, 10, and the HS panel).
type Eval struct {
	Workload workload.Workload
	AloneIPC []float64
	AloneEB  []float64
	BestTLPs []int
	Outcomes map[string]Outcome
}

// Scheme names used across the evaluation figures.
const (
	SchBestTLP   = "++bestTLP"
	SchMaxTLP    = "++maxTLP"
	SchDynCTA    = "++DynCTA"
	SchCCWS      = "++CCWS"
	SchModBypass = "Mod+Bypass"
	SchBatch     = "++Batch"
	SchWRS       = "++WRS"
	SchPBSWS     = "PBS-WS"
	SchPBSFI     = "PBS-FI"
	SchPBSHS     = "PBS-HS"
	SchPBSWSOff  = "PBS-WS(Offline)"
	SchPBSFIOff  = "PBS-FI(Offline)"
	SchPBSHSOff  = "PBS-HS(Offline)"
	SchBFWS      = "BF-WS"
	SchBFFI      = "BF-FI"
	SchBFHS      = "BF-HS"
	SchOptWS     = "optWS"
	SchOptFI     = "optFI"
	SchOptHS     = "optHS"
)

// FigureSchemes is the catalog of executable (non-offline) comparison
// schemes the figures evaluate, as registry specs. bestTLPs is the
// profiled per-app combination that resolves ++bestTLP; the remaining
// entries are workload-independent. Offline points (opt*, BF-*, PBS-*
// (Offline)) are grid searches, not managers, so they have no spec.
func FigureSchemes(bestTLPs []int) map[string]spec.SchemeSpec {
	return map[string]spec.SchemeSpec{
		SchBestTLP:   spec.BestTLP(bestTLPs),
		SchMaxTLP:    spec.MaxTLP(),
		SchDynCTA:    spec.DynCTA(),
		SchCCWS:      spec.CCWS(),
		SchModBypass: spec.ModBypass(),
		SchBatch:     spec.Batch(),
		SchWRS:       spec.WRS(),
		SchPBSWS:     spec.PBS(metrics.ObjWS),
		SchPBSFI:     spec.PBS(metrics.ObjFI),
		SchPBSHS:     spec.PBS(metrics.ObjHS),
	}
}

// EvalWorkload measures every comparison scheme on one workload. Static
// combinations discovered by the searches are re-run at evaluation length;
// online schemes run with full overheads.
func (e *Env) EvalWorkload(w workload.Workload) (*Eval, error) {
	_, sp := obs.StartSpan(e.ctx, "eval-workload", obs.A("workload", w.Name))
	defer sp.End()
	aloneIPC, aloneEB, bestTLPs, err := e.Alone(w)
	if err != nil {
		return nil, err
	}
	// Options.Adaptive swaps the exhaustive grid for the adaptive search
	// (oracle picks) plus a lazy cell-on-demand grid (the PBS offline
	// walks, which read only O(apps × levels) cells).
	var g *search.Grid
	if e.Opt.Adaptive {
		g, err = e.LazyGrid(w)
	} else {
		g, err = e.Grid(w)
	}
	if err != nil {
		return nil, err
	}

	// Static combos per scheme.
	combos := map[string][]int{
		SchBestTLP: bestTLPs,
		SchMaxTLP:  maxCombo(len(w.Apps)),
	}
	var pickErr error
	pick := func(name string, eval search.Eval) {
		if pickErr != nil {
			return
		}
		if e.Opt.Adaptive {
			c, _, err := e.AdaptiveBest(w, eval)
			if err != nil {
				pickErr = err
				return
			}
			combos[name] = c
			return
		}
		c, _ := g.Best(eval)
		combos[name] = c
	}
	pick(SchOptWS, search.SDEval(metrics.ObjWS, aloneIPC))
	pick(SchOptFI, search.SDEval(metrics.ObjFI, aloneIPC))
	pick(SchOptHS, search.SDEval(metrics.ObjHS, aloneIPC))
	pick(SchBFWS, search.EBEval(metrics.ObjWS, nil))
	pick(SchBFFI, search.EBEval(metrics.ObjFI, aloneEB))
	pick(SchBFHS, search.EBEval(metrics.ObjHS, aloneEB))
	if pickErr != nil {
		return nil, pickErr
	}
	if c, _ := g.PBSOffline(search.EBEval(metrics.ObjWS, nil), nil); c != nil {
		combos[SchPBSWSOff] = c
	}
	if c, _ := g.PBSOfflineFI(aloneEB, nil); c != nil {
		combos[SchPBSFIOff] = c
	}
	if c, _ := g.PBSOffline(search.EBEval(metrics.ObjHS, aloneEB), nil); c != nil {
		combos[SchPBSHSOff] = c
	}

	ev := &Eval{
		Workload: w,
		AloneIPC: aloneIPC,
		AloneEB:  aloneEB,
		BestTLPs: bestTLPs,
		Outcomes: map[string]Outcome{},
	}

	// All evaluation-length runs are independent leaf simulations: fan
	// them out on the shared pool — each distinct static combo once, plus
	// every online scheme — and collect under one lock.
	figSchemes := FigureSchemes(bestTLPs)
	online := []struct {
		name string
		sch  spec.SchemeSpec
	}{
		{SchDynCTA, figSchemes[SchDynCTA]},
		{SchModBypass, figSchemes[SchModBypass]},
		{SchBatch, figSchemes[SchBatch]},
		{SchWRS, figSchemes[SchWRS]},
		{SchPBSWS, figSchemes[SchPBSWS]},
		{SchPBSFI, figSchemes[SchPBSFI]},
		{SchPBSHS, figSchemes[SchPBSHS]},
	}
	type key string
	comboKey := func(c []int) key { return key(fmt.Sprint(c)) }
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	staticResults := map[key]sim.Result{}
	for _, c := range combos {
		k := comboKey(c)
		if _, ok := staticResults[k]; ok {
			continue
		}
		staticResults[k] = sim.Result{} // claim; filled below
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := e.RunStatic(w, c)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			staticResults[k] = r
		}()
	}
	onlineResults := make([]sim.Result, len(online))
	for i, o := range online {
		i, o := i, o
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := e.RunScheme(w, o.sch)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			onlineResults[i] = r
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for name, c := range combos {
		ev.add(name, c, staticResults[comboKey(c)], aloneIPC)
	}
	for i, o := range online {
		ev.add(o.name, nil, onlineResults[i], aloneIPC)
	}
	return ev, nil
}

func (ev *Eval) add(name string, combo []int, r sim.Result, aloneIPC []float64) {
	sd := SD(r, aloneIPC)
	ev.Outcomes[name] = Outcome{
		Scheme: name,
		Combo:  combo,
		WS:     metrics.WS(sd),
		FI:     metrics.FI(sd),
		HS:     metrics.HS(sd),
		IT:     metrics.IT(r.IPCs()),
		Result: r,
	}
}

func maxCombo(n int) []int {
	c := make([]int, n)
	for i := range c {
		c[i] = config.MaxTLP
	}
	return c
}

// Experiment is a runnable paper panel.
type Experiment struct {
	ID    string
	Title string
	Run   func(e *Env, w io.Writer) error
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Table I: simulated GPU configuration", Table1},
		{"table2", "Table II: evaluated TLP configurations", Table2},
		{"table3", "Table III: evaluated metrics (algebraic check)", Table3},
		{"table4", "Table IV: application characteristics", Table4},
		{"fig1", "Fig. 1: WS and FI for BFS_FFT under bestTLP/maxTLP/opt", Fig1},
		{"fig2", "Fig. 2: effect of TLP on IPC/BW/CMR/EB for BFS", Fig2},
		{"fig3", "Fig. 3: effective bandwidth across the hierarchy", Fig3},
		{"fig4", "Fig. 4: per-app SD and EB, bestTLP vs opt", Fig4},
		{"fig5", "Fig. 5: IPC alone-ratio vs EB alone-ratio", Fig5},
		{"fig6", "Fig. 6: EB-WS patterns for BLK_TRD", Fig6},
		{"fig7", "Fig. 7: PBS-FI and PBS-HS walkthrough on BLK_TRD", Fig7},
		{"fig8", "Fig. 8: hardware organization overheads", Fig8},
		{"fig9", "Fig. 9: weighted speedup of all schemes", Fig9},
		{"fig10", "Fig. 10: fairness of all schemes", Fig10},
		{"fig11", "Fig. 11: TLP over time for BLK_BFS under PBS", Fig11},
		{"fig12", "HS panel (reconstructed): harmonic speedup of all schemes", Fig12},
		{"cores", "Sensitivity: core partitioning (reconstructed)", SensCores},
		{"l2part", "Sensitivity: L2 way partitioning (reconstructed)", SensL2},
		{"3app", "Scalability: three-application workloads (reconstructed)", ThreeApp},
		{"ablation", "Ablations: objective, search, window, scaling, sampling", Ablations},
		{"extras", "Extensions: CCWS baseline, kernel phases + drift, DRAM refresh", Extras},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, x := range Registry() {
		if x.ID == id {
			return x, true
		}
	}
	return Experiment{}, false
}

// gmean over a slice (0 on empty/non-positive).
func gmean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	prod := 1.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		prod *= x
	}
	// Repeated multiplication is fine at these magnitudes (25 values
	// near 1.0).
	return pow(prod, 1/float64(len(xs)))
}

func pow(x, p float64) float64 {
	// Thin wrapper to keep math import localized.
	return mathPow(x, p)
}

// sortedSchemes returns outcome names in a stable presentation order.
func sortedSchemes(m map[string]Outcome) []string {
	order := []string{
		SchBestTLP, SchMaxTLP, SchDynCTA, SchModBypass, SchBatch, SchWRS,
		SchPBSWS, SchPBSWSOff, SchBFWS, SchOptWS,
		SchPBSFI, SchPBSFIOff, SchBFFI, SchOptFI,
		SchPBSHS, SchPBSHSOff, SchBFHS, SchOptHS,
	}
	var out []string
	seen := map[string]bool{}
	for _, n := range order {
		if _, ok := m[n]; ok {
			out = append(out, n)
			seen[n] = true
		}
	}
	var rest []string
	for n := range m {
		if !seen[n] {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}
