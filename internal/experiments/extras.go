package experiments

import (
	"fmt"
	"io"

	"ebm/internal/kernel"
	"ebm/internal/metrics"
	"ebm/internal/profile"
	"ebm/internal/sim"
	"ebm/internal/spec"
	"ebm/internal/workload"
)

// Extras exercises the repository's extensions beyond the paper's figures:
//
//  1. a CCWS-style lost-locality baseline next to ++DynCTA and PBS-WS;
//  2. phase-changing kernels, where PBS's drift detector (an extension of
//     the paper's relaunch-only restart rule) re-searches as interference
//     shifts mid-kernel;
//  3. DRAM refresh modeling as a fidelity ablation.
func Extras(e *Env, w io.Writer) error {
	if err := extraCCWS(e, w); err != nil {
		return err
	}
	if err := extraPhases(e, w); err != nil {
		return err
	}
	return extraRefresh(e, w)
}

func extraCCWS(e *Env, w io.Writer) error {
	header(w, "Extra 1: CCWS-style locality throttling vs DynCTA vs PBS-WS")
	t := newTable("workload", "scheme", "WS", "FI")
	for _, wl := range []workload.Workload{
		workload.MustMake("BLK", "BFS"),
		workload.MustMake("BFS", "FFT"),
		workload.MustMake("CFD", "TRD"),
	} {
		aloneIPC, err := e.Suite.AloneIPC(wl.Names())
		if err != nil {
			return err
		}
		for _, sch := range []struct {
			name string
			spec spec.SchemeSpec
		}{
			{SchDynCTA, spec.DynCTA()},
			{SchCCWS, spec.CCWS()},
			{SchPBSWS, spec.PBS(metrics.ObjWS)},
		} {
			rs := e.EvalSpec(wl, sch.spec)
			rs.VictimTags = 1024
			r, err := e.Run(rs)
			if err != nil {
				return err
			}
			sd := SD(r, aloneIPC)
			t.row(wl.Name, sch.name,
				fmt.Sprintf("%.3f", metrics.WS(sd)), fmt.Sprintf("%.3f", metrics.FI(sd)))
		}
	}
	t.write(w)
	fmt.Fprintf(w, "\nexpected shape: CCWS, like DynCTA, fixes single-app thrashing but cannot\n"+
		"coordinate co-runners; PBS-WS wins by managing the shared bandwidth.\n")
	return nil
}

func extraPhases(e *Env, w io.Writer) error {
	header(w, "Extra 2: phase-changing kernels and drift-triggered re-search")
	// BFS whose alternate kernel phase is far more bandwidth-hungry.
	bfs, _ := kernel.ByName("BFS")
	bfs.KernelInsts = 96 << 10 // short kernels so phases rotate within the horizon
	phase := bfs
	phase.Name = ""
	phase.Rm = 0.15
	phase.CoalesceLines = 2
	phase.SharedFrac = 0.05
	phase.KernelInsts = 0
	phase.Phases = nil
	bfs.Phases = []kernel.Params{phase}
	blk, _ := kernel.ByName("BLK")
	wl := workload.Workload{Name: "BLK_BFSphased", Apps: []kernel.Params{blk, bfs}}

	aloneIPC, err := e.Suite.AloneIPC([]string{"BLK", "BFS"})
	if err != nil {
		return err
	}

	t := newTable("scheme", "WS", "searches", "relaunch restarts", "drift restarts")
	for _, variant := range []struct {
		name  string
		drift float64
	}{
		{"PBS-WS (paper: relaunch-only restarts)", 0},
		{"PBS-WS + drift detector", 0.6},
	} {
		// Drift counters are read post-run, so this path stays on the
		// direct engine; the knobbed manager still comes from the registry.
		sch := spec.PBS(metrics.ObjWS)
		sch.PBS.DriftThreshold = variant.drift
		sch.PBS.DriftWindows = 4
		mgr, err := spec.PBSManager(sch, len(wl.Apps))
		if err != nil {
			return err
		}
		s, err := sim.New(sim.Options{
			Config:             e.Opt.Config,
			Apps:               wl.Apps,
			Manager:            mgr,
			TotalCycles:        e.Opt.EvalCycles,
			WarmupCycles:       e.Opt.EvalWarmup,
			WindowCycles:       e.Opt.WindowCycles,
			DesignatedSampling: true,
		})
		if err != nil {
			return err
		}
		sd := SD(s.Run(), aloneIPC)
		t.row(variant.name, fmt.Sprintf("%.3f", metrics.WS(sd)),
			fmt.Sprint(mgr.Searches()), fmt.Sprint(mgr.Restarts()), fmt.Sprint(mgr.Drifts()))
	}
	t.write(w)
	fmt.Fprintf(w, "\n(BFS alternates between a cache-sensitive and a streaming phase each kernel;\n"+
		"slowdowns are against the base-phase alone profile.)\n")
	return nil
}

func extraRefresh(e *Env, w io.Writer) error {
	header(w, "Extra 3: DRAM refresh fidelity ablation")
	trd, _ := kernel.ByName("TRD")
	t := newTable("refresh", "IPC", "attained BW")
	for _, variant := range []struct {
		name        string
		trefi, trfc int
	}{{"off (default)", 0, 0}, {"tREFI=1900 tRFC=130", 1900, 130}} {
		cfg := e.Opt.Config
		cfg.NumCores = cfg.NumCores / 2
		cfg.Timing.TREFI = variant.trefi
		cfg.Timing.TRFC = variant.trfc
		res, err := profile.AloneRun(e.ctx, trd, 8, profile.Options{
			Config:       cfg,
			CoresAlone:   cfg.NumCores,
			TotalCycles:  e.Opt.GridCycles,
			WarmupCycles: e.Opt.GridWarmup,
			Runner:       e.pool,
			Cache:        e.cache,
		})
		if err != nil {
			return err
		}
		t.row(variant.name, fmt.Sprintf("%.3f", res.Apps[0].IPC),
			fmt.Sprintf("%.3f", res.Apps[0].BW))
	}
	t.write(w)
	fmt.Fprintf(w, "\nrefresh costs a streaming kernel a few percent of bandwidth (tRFC/tREFI);\n"+
		"it is off by default to match the paper's accounting.\n")
	return nil
}
