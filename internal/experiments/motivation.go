package experiments

import (
	"fmt"
	"io"
	"sort"

	"ebm/internal/kernel"
	"ebm/internal/metrics"
	"ebm/internal/profile"
	"ebm/internal/workload"
)

// Fig1 reproduces the motivating panel: WS and FI of BFS_FFT under
// ++bestTLP, ++maxTLP, optWS and optFI, normalized to ++bestTLP.
func Fig1(e *Env, w io.Writer) error {
	header(w, "Fig. 1: WS and FI for BFS_FFT (normalized to ++bestTLP)")
	wl := workload.MustMake("BFS", "FFT")
	ev, err := e.EvalWorkload(wl)
	if err != nil {
		return err
	}
	base := ev.Outcomes[SchBestTLP]
	t := newTable("scheme", "combo", "WS", "WS/base", "FI", "FI/base")
	for _, name := range []string{SchBestTLP, SchMaxTLP, SchOptWS, SchOptFI} {
		o := ev.Outcomes[name]
		t.row(name, fmtCombo(o.Combo),
			fmt.Sprintf("%.3f", o.WS), fmt.Sprintf("%.3f", o.WS/base.WS),
			fmt.Sprintf("%.3f", o.FI), fmt.Sprintf("%.3f", o.FI/base.FI))
	}
	t.write(w)
	fmt.Fprintf(w, "\npaper shape: optWS and optFI clearly above ++bestTLP; ++maxTLP at or below it.\n")
	return nil
}

// Fig2 reproduces the single-application TLP study: IPC, BW, CMR, and EB
// for BFS alone, normalized to its bestTLP.
func Fig2(e *Env, w io.Writer) error {
	header(w, "Fig. 2: effect of TLP on IPC, BW, CMR, EB for BFS alone (normalized to bestTLP)")
	app, _ := kernel.ByName("BFS")
	p, err := profile.ProfileApp(e.ctx, app, profile.Options{
		Config:       e.Opt.Config,
		TotalCycles:  e.Opt.GridCycles,
		WarmupCycles: e.Opt.GridWarmup,
		Parallelism:  e.Opt.Parallelism,
		Runner:       e.pool,
		Cache:        e.cache,
	})
	if err != nil {
		return err
	}
	base, _ := p.AtTLP(p.BestTLP)
	t := newTable("TLP", "IPC", "BW", "CMR", "EB", "IPC/base", "EB/base")
	for _, l := range p.Levels {
		a := l.Result
		t.row(fmt.Sprint(l.TLP),
			fmt.Sprintf("%.3f", a.IPC), fmt.Sprintf("%.3f", a.BW),
			fmt.Sprintf("%.3f", a.CMR), fmt.Sprintf("%.3f", a.EB),
			fmt.Sprintf("%.3f", a.IPC/base.Result.IPC),
			fmt.Sprintf("%.3f", a.EB/base.Result.EB))
	}
	t.write(w)
	fmt.Fprintf(w, "\nbestTLP=%d. paper shape: BW and IPC rise with TLP until CMR growth negates\n"+
		"the BW gains; EB tracks IPC across the sweep.\n", p.BestTLP)
	return nil
}

// Fig3 demonstrates effective bandwidth at each hierarchy level for one
// BFS run: EB at L2 = BW/L2MR, EB at the core = BW/CMR.
func Fig3(e *Env, w io.Writer) error {
	header(w, "Fig. 3: effective bandwidth at different levels of the hierarchy (BFS alone)")
	app, _ := kernel.ByName("BFS")
	res, err := profile.AloneRun(e.ctx, app, 4, profile.Options{
		Config:       e.Opt.Config,
		TotalCycles:  e.Opt.GridCycles,
		WarmupCycles: e.Opt.GridWarmup,
		Runner:       e.pool,
		Cache:        e.cache,
	})
	if err != nil {
		return err
	}
	a := res.Apps[0]
	ebL2 := metrics.EB(a.BW, a.L2MR)
	ebCore := metrics.EB(a.BW, a.CMR)
	t := newTable("level", "expression", "value")
	t.row("A: DRAM", "BW (fraction of peak)", fmt.Sprintf("%.3f", a.BW))
	t.row("B: seen by L1 (after L2)", "BW / L2MR", fmt.Sprintf("%.3f", ebL2))
	t.row("C: seen by the core", "BW / (L1MR*L2MR) = BW/CMR", fmt.Sprintf("%.3f", ebCore))
	t.write(w)
	fmt.Fprintf(w, "\nL1MR=%.3f L2MR=%.3f: each cache level amplifies the delivered bandwidth\n"+
		"by the inverse of its miss rate.\n", a.L1MR, a.L2MR)
	return nil
}

// Fig4 reproduces the per-application slowdown and EB breakdowns of the
// representative workloads under ++bestTLP and optWS.
func Fig4(e *Env, w io.Writer) error {
	header(w, "Fig. 4: per-app slowdown and effective bandwidth, ++bestTLP vs optWS")
	t := newTable("workload", "scheme", "combo", "SD-1", "SD-2", "WS", "EB-1", "EB-2", "EB-WS")
	for _, wl := range workload.Representative() {
		ev, err := e.EvalWorkload(wl)
		if err != nil {
			return err
		}
		for _, name := range []string{SchBestTLP, SchOptWS} {
			o := ev.Outcomes[name]
			sd := SD(o.Result, ev.AloneIPC)
			ebs := o.Result.EBs()
			t.row(wl.Name, name, fmtCombo(o.Combo),
				fmt.Sprintf("%.3f", sd[0]), fmt.Sprintf("%.3f", sd[1]),
				fmt.Sprintf("%.3f", o.WS),
				fmt.Sprintf("%.3f", ebs[0]), fmt.Sprintf("%.3f", ebs[1]),
				fmt.Sprintf("%.3f", metrics.EBWS(ebs)))
		}
	}
	t.write(w)
	fmt.Fprintf(w, "\nObservation 1: the combination with the higher EB-WS also has the higher WS\n"+
		"for (almost) every workload above.\n")
	return nil
}

// Fig5 compares the alone-ratio bias of IPC and EB across all application
// pairs: EB_AR is consistently lower, which is why EB-based system metrics
// are less biased proxies (Section IV).
func Fig5(e *Env, w io.Writer) error {
	header(w, "Fig. 5: IPC alone-ratio vs EB alone-ratio across all application pairs")
	names := kernel.Names()
	var ipcAR, ebAR []float64
	wins := 0
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			p1, p2 := e.Suite.Profiles[names[i]], e.Suite.Profiles[names[j]]
			ia := metrics.AloneRatio(p1.BestIPC, p2.BestIPC)
			ea := metrics.AloneRatio(p1.BestEB, p2.BestEB)
			ipcAR = append(ipcAR, ia)
			ebAR = append(ebAR, ea)
			if ea <= ia {
				wins++
			}
		}
	}
	sort.Float64s(ipcAR)
	sort.Float64s(ebAR)
	q := func(xs []float64, p float64) float64 { return xs[int(p*float64(len(xs)-1))] }
	t := newTable("percentile", "IPC_AR", "EB_AR")
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		t.row(fmt.Sprintf("p%.0f", p*100),
			fmt.Sprintf("%.2f", q(ipcAR, p)), fmt.Sprintf("%.2f", q(ebAR, p)))
	}
	t.write(w)
	fmt.Fprintf(w, "\npairs: %d; EB_AR <= IPC_AR in %.1f%% of pairs; gmean IPC_AR=%.2f, EB_AR=%.2f\n",
		len(ipcAR), 100*float64(wins)/float64(len(ipcAR)), gmean(ipcAR), gmean(ebAR))
	fmt.Fprintf(w, "paper shape: EB_AR is much lower than IPC_AR on average, so EB-based\n"+
		"system metrics carry less alone-application bias.\n")
	return nil
}
