package experiments

import (
	"fmt"
	"io"
	"sync"

	"ebm/internal/metrics"
	"ebm/internal/obs"
	"ebm/internal/search"
	"ebm/internal/sim"
	"ebm/internal/spec"
	"ebm/internal/workload"
)

func evalSDFI(aloneIPC []float64) search.Eval { return search.SDEval(metrics.ObjFI, aloneIPC) }
func evalSDHS(aloneIPC []float64) search.Eval { return search.SDEval(metrics.ObjHS, aloneIPC) }
func evalEBHS(aloneEB []float64) search.Eval  { return search.EBEval(metrics.ObjHS, aloneEB) }

// evals computes (with caching) the full scheme evaluation for every
// workload in the environment's evaluation set. Workloads evaluate
// concurrently — each EvalWorkload is an orchestrator on its own
// goroutine submitting leaf simulations to the shared pool — and
// singleflight collapses duplicate requests for the same workload.
func (e *Env) evals() (map[string]*Eval, error) {
	out := map[string]*Eval{}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, wl := range e.Opt.Workloads {
		wl := wl
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev, err := e.evalOf(wl)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			out[wl.Name] = ev
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// evalOf returns the cached evaluation for one workload, computing it at
// most once even under concurrent callers.
func (e *Env) evalOf(wl workload.Workload) (*Eval, error) {
	e.mu.Lock()
	ev, ok := e.evalCache[wl.Name]
	e.mu.Unlock()
	if ok {
		return ev, nil
	}
	v, _, err := e.sf.Do("eval:"+wl.Name, func() (any, error) {
		e.mu.Lock()
		ev, ok := e.evalCache[wl.Name]
		e.mu.Unlock()
		if ok {
			return ev, nil
		}
		ev, err := e.EvalWorkload(wl)
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.evalCache[wl.Name] = ev
		e.mu.Unlock()
		return ev, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Eval), nil
}

// metricOf extracts one objective's value from an outcome.
func metricOf(o Outcome, obj metrics.Objective) float64 {
	switch obj {
	case metrics.ObjWS:
		return o.WS
	case metrics.ObjFI:
		return o.FI
	default:
		return o.HS
	}
}

// schemePanel renders a Fig. 9/10/12-style panel: for each representative
// workload (and the gmean over the full evaluation set), each scheme's
// metric normalized to ++bestTLP.
func (e *Env) schemePanel(w io.Writer, obj metrics.Objective, schemes []string) error {
	evs, err := e.evals()
	if err != nil {
		return err
	}
	repr := map[string]bool{}
	for _, wl := range workload.Representative() {
		repr[wl.Name] = true
	}

	t := newTable(append([]string{"workload"}, schemes...)...)
	norm := map[string][]float64{} // per scheme, across all workloads
	for _, wl := range e.Opt.Workloads {
		ev := evs[wl.Name]
		base := metricOf(ev.Outcomes[SchBestTLP], obj)
		cells := []string{wl.Name}
		for _, s := range schemes {
			o, ok := ev.Outcomes[s]
			v := 0.0
			if ok && base > 0 {
				v = metricOf(o, obj) / base
			}
			norm[s] = append(norm[s], v)
			cells = append(cells, fmt.Sprintf("%.3f", v))
		}
		if repr[wl.Name] || len(e.Opt.Workloads) <= 12 {
			t.row(cells...)
		}
	}
	cells := []string{"Gmean(all)"}
	for _, s := range schemes {
		cells = append(cells, fmt.Sprintf("%.3f", gmean(norm[s])))
	}
	t.row(cells...)
	t.write(w)
	fmt.Fprintf(w, "\n(all values normalized to ++bestTLP; Gmean over the %d-workload set)\n",
		len(e.Opt.Workloads))
	return nil
}

// Fig9 reproduces the weighted-speedup comparison of all schemes.
func Fig9(e *Env, w io.Writer) error {
	header(w, "Fig. 9: impact on Weighted Speedup (normalized to ++bestTLP)")
	return e.schemePanel(w, metrics.ObjWS,
		[]string{SchDynCTA, SchModBypass, SchBatch, SchWRS, SchPBSWS, SchPBSWSOff, SchBFWS, SchOptWS})
}

// Fig10 reproduces the fairness comparison of all schemes.
func Fig10(e *Env, w io.Writer) error {
	header(w, "Fig. 10: impact on Fairness Index (normalized to ++bestTLP)")
	return e.schemePanel(w, metrics.ObjFI,
		[]string{SchDynCTA, SchModBypass, SchBatch, SchWRS, SchPBSFI, SchPBSFIOff, SchBFFI, SchOptFI})
}

// Fig12 reconstructs the harmonic-speedup panel (its data fall in the
// truncated tail of the source text; the schemes follow Section V-D).
func Fig12(e *Env, w io.Writer) error {
	header(w, "HS panel (reconstructed): impact on Harmonic Speedup (normalized to ++bestTLP)")
	return e.schemePanel(w, metrics.ObjHS,
		[]string{SchDynCTA, SchModBypass, SchBatch, SchWRS, SchPBSHS, SchPBSHSOff, SchBFHS, SchOptHS})
}

// Fig11 traces the TLP decisions of PBS-WS and PBS-FI over the execution
// of BLK_BFS, with the searching (sampling) periods marked.
func Fig11(e *Env, w io.Writer) error {
	header(w, "Fig. 11: TLP over time for BLK_BFS under PBS-WS and PBS-FI")
	wl := workload.MustMake("BLK", "BFS")
	for _, variant := range []struct {
		sch  spec.SchemeSpec
		name string
	}{{spec.PBS(metrics.ObjWS), SchPBSWS}, {spec.PBS(metrics.ObjFI), SchPBSFI}} {
		mgr, err := spec.PBSManager(variant.sch, len(wl.Apps))
		if err != nil {
			return err
		}
		rec := obs.NewRecorder(len(wl.Apps))
		rec.SearchingFn = mgr.Searching
		// Twice the evaluation horizon so kernel-relaunch restarts (and
		// the re-sampling periods around them) are visible.
		s, err := sim.New(sim.Options{
			Config:             e.Opt.Config,
			Apps:               wl.Apps,
			Manager:            mgr,
			TotalCycles:        2 * e.Opt.EvalCycles,
			WarmupCycles:       e.Opt.EvalWarmup,
			WindowCycles:       e.Opt.WindowCycles,
			DesignatedSampling: true,
			OnWindow:           rec.Hook,
		})
		if err != nil {
			return err
		}
		s.Run()
		fmt.Fprintf(w, "\n--- %s ---\n", variant.name)
		for app := range wl.Apps {
			fmt.Fprintf(w, "\nTLP-%s over time (bar height = TLP, max 24):\n%s",
				wl.Apps[app].Name, obs.RenderASCII(rec.TLP[app], 24, 24))
		}
		searching := 0
		for _, p := range rec.Searching.Points {
			if p.Value > 0 {
				searching++
			}
		}
		fmt.Fprintf(w, "\nsampling/search windows: %d of %d (%.0f%%); searches completed: %d; "+
			"kernel-relaunch restarts: %d\n",
			searching, len(rec.Searching.Points),
			100*float64(searching)/float64(max(1, len(rec.Searching.Points))),
			mgr.Searches(), mgr.Restarts())
	}
	fmt.Fprintf(w, "\npaper shape: a preferred combination holds for most of the run, with\n"+
		"re-sampling periods (shaded in the paper) around kernel relaunches.\n")
	return nil
}
