package experiments

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/search"
	"ebm/internal/workload"
)

// TestGridSingleflightUnderConcurrency is the regression test for the
// duplicate-build race: previously two callers could both miss the map
// (the mutex was released between lookup and build) and build the full
// grid twice. With a blocking build standing in, every concurrent caller
// must share one build and one resulting grid.
func TestGridSingleflightUnderConcurrency(t *testing.T) {
	old := buildGrid
	defer func() { buildGrid = old }()
	var builds atomic.Int64
	gate := make(chan struct{})
	buildGrid = func(ctx context.Context, apps []kernel.Params, opts search.GridOptions) (*search.Grid, error) {
		builds.Add(1)
		<-gate
		return old(ctx, apps, opts)
	}

	env := testEnv(t)
	wl := workload.MustMake("BLK", "BFS")
	const callers = 8
	grids := make([]*search.Grid, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := env.Grid(wl)
			if err != nil {
				t.Error(err)
			}
			grids[i] = g
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for builds.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("build never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Give the remaining callers time to reach Grid while the one build
	// is parked on the gate — under the old code they would each start
	// their own build and builds would exceed 1 before the gate opens.
	time.Sleep(20 * time.Millisecond)
	if n := builds.Load(); n != 1 {
		t.Fatalf("%d builds started concurrently, want 1", n)
	}
	close(gate)
	wg.Wait()

	for i := 1; i < callers; i++ {
		if grids[i] != grids[0] {
			t.Fatalf("caller %d got a different grid instance", i)
		}
	}
	if builds.Load() != 1 {
		t.Fatalf("%d builds, want 1", builds.Load())
	}
}

// TestEnvWarmSimCacheBitIdentical: a second environment sharing the same
// -simcache directory replays evaluation results from disk, bit-identical
// to the cold computation.
func TestEnvWarmSimCacheBitIdentical(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Env {
		t.Helper()
		cfg := config.Default()
		cfg.NumCores = 4
		cfg.NumMemPartitions = 4
		env, err := NewEnv(nil, Options{
			Config:       cfg,
			GridCycles:   8_000,
			GridWarmup:   1_000,
			EvalCycles:   20_000,
			EvalWarmup:   1_000,
			WindowCycles: 1_000,
			Workloads:    []workload.Workload{workload.MustMake("BLK", "BFS")},
			Parallelism:  2,
			SimCache:     dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		return env
	}

	cold := mk()
	ev1, err := cold.EvalWorkload(cold.Opt.Workloads[0])
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache().Stats().Writes == 0 {
		t.Fatal("cold run persisted nothing")
	}

	warm := mk()
	before := warm.Cache().Stats()
	ev2, err := warm.EvalWorkload(warm.Opt.Workloads[0])
	if err != nil {
		t.Fatal(err)
	}
	after := warm.Cache().Stats()
	if after.Hits == before.Hits {
		t.Fatal("warm run never touched the cache")
	}
	if after.Writes != before.Writes {
		t.Fatalf("warm run re-simulated %d runs", after.Writes-before.Writes)
	}
	// reflect.DeepEqual over float64 fields is exact bit comparison for
	// the non-NaN values the engine produces: the determinism guarantee.
	if !reflect.DeepEqual(ev1.Outcomes, ev2.Outcomes) {
		t.Fatal("warm outcomes differ from cold outcomes")
	}
}
