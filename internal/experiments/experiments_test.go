package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ebm/internal/config"
	"ebm/internal/metrics"
	"ebm/internal/workload"
)

// testEnv builds a miniature environment: a 4-core machine, short runs,
// and a two-workload evaluation set, so the experiment plumbing can be
// exercised quickly.
func testEnv(t *testing.T) *Env {
	t.Helper()
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.NumMemPartitions = 4
	env, err := NewEnv(nil, Options{
		Config:       cfg,
		GridCycles:   8_000,
		GridWarmup:   1_000,
		EvalCycles:   30_000,
		EvalWarmup:   1_000,
		WindowCycles: 1_000,
		Workloads: []workload.Workload{
			workload.MustMake("BLK", "BFS"),
			workload.MustMake("FFT", "TRD"),
		},
		Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	want := []string{
		"table1", "table2", "table3", "table4",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12",
		"cores", "l2part", "3app", "ablation", "extras",
	}
	if len(reg) != len(want) {
		t.Fatalf("%d experiments, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Title == "" || reg[i].Run == nil {
			t.Errorf("experiment %s incomplete", id)
		}
	}
	if _, ok := ByID("fig9"); !ok {
		t.Fatal("ByID miss")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID invented an experiment")
	}
}

func TestStaticTables(t *testing.T) {
	env := testEnv(t)
	for _, id := range []string{"table1", "table2", "table3", "table4", "fig8"} {
		x, _ := ByID(id)
		var buf bytes.Buffer
		if err := x.Run(env, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

func TestTable1MentionsTiming(t *testing.T) {
	env := testEnv(t)
	var buf bytes.Buffer
	if err := Table1(env, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"tCL=12", "FR-FCFS", "GDDR5"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestEvalWorkloadProducesAllSchemes(t *testing.T) {
	env := testEnv(t)
	ev, err := env.EvalWorkload(workload.MustMake("BLK", "BFS"))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{
		SchBestTLP, SchMaxTLP, SchDynCTA, SchModBypass,
		SchPBSWS, SchPBSFI, SchPBSHS,
		SchPBSWSOff, SchPBSFIOff, SchPBSHSOff,
		SchBFWS, SchBFFI, SchBFHS, SchOptWS, SchOptFI, SchOptHS,
	} {
		o, ok := ev.Outcomes[s]
		if !ok {
			t.Errorf("scheme %s missing", s)
			continue
		}
		if o.WS <= 0 || o.WS > 2.5 {
			t.Errorf("%s WS = %v out of range", s, o.WS)
		}
		if o.FI < 0 || o.FI > 1.0001 {
			t.Errorf("%s FI = %v out of range", s, o.FI)
		}
	}
	// optWS is exhaustive over the grid: no static scheme beats it at
	// grid length; at eval length allow small measurement drift.
	opt := ev.Outcomes[SchOptWS].WS
	if ev.Outcomes[SchBestTLP].WS > opt*1.15 {
		t.Errorf("++bestTLP (%v) implausibly above optWS (%v)", ev.Outcomes[SchBestTLP].WS, opt)
	}
}

// TestEvalWorkloadAdaptiveMatchesExhaustive pins the Options.Adaptive
// contract: routing the offline searches through the coarse-to-fine
// successive-halving search (over a lazy grid for the PBS-offline picks)
// must select the same combinations — and therefore produce identical
// outcomes — as the exhaustive grid path.
func TestEvalWorkloadAdaptiveMatchesExhaustive(t *testing.T) {
	mk := func(adaptive bool) *Env {
		t.Helper()
		cfg := config.Default()
		cfg.NumCores = 4
		cfg.NumMemPartitions = 4
		env, err := NewEnv(nil, Options{
			Config:       cfg,
			GridCycles:   8_000,
			GridWarmup:   1_000,
			EvalCycles:   30_000,
			EvalWarmup:   1_000,
			WindowCycles: 1_000,
			Workloads:    []workload.Workload{workload.MustMake("BLK", "BFS")},
			Parallelism:  2,
			Adaptive:     adaptive,
		})
		if err != nil {
			t.Fatal(err)
		}
		return env
	}
	wl := workload.MustMake("BLK", "BFS")
	exh, err := mk(false).EvalWorkload(wl)
	if err != nil {
		t.Fatal(err)
	}
	ada, err := mk(true).EvalWorkload(wl)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range exh.Outcomes {
		got, ok := ada.Outcomes[name]
		if !ok {
			t.Errorf("adaptive run missing scheme %s", name)
			continue
		}
		if !reflect.DeepEqual(got.Combo, want.Combo) {
			t.Errorf("%s: adaptive combo %v, exhaustive %v", name, got.Combo, want.Combo)
		}
		if got.WS != want.WS || got.FI != want.FI || got.HS != want.HS {
			t.Errorf("%s: adaptive outcome (%v %v %v) differs from exhaustive (%v %v %v)",
				name, got.WS, got.FI, got.HS, want.WS, want.FI, want.HS)
		}
	}
}

func TestSchemePanelOutput(t *testing.T) {
	env := testEnv(t)
	var buf bytes.Buffer
	if err := env.schemePanel(&buf, metrics.ObjWS,
		[]string{SchDynCTA, SchPBSWS, SchOptWS}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Gmean(all)") {
		t.Fatal("panel missing gmean row")
	}
	if !strings.Contains(out, "BLK_BFS") || !strings.Contains(out, "FFT_TRD") {
		t.Fatal("panel missing workload rows")
	}
}

func TestGridCaching(t *testing.T) {
	env := testEnv(t)
	wl := workload.MustMake("BLK", "BFS")
	g1, err := env.Grid(wl)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := env.Grid(wl)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("grid not cached")
	}
}

func TestGmean(t *testing.T) {
	if g := gmean([]float64{1, 4}); g < 1.99 || g > 2.01 {
		t.Fatalf("gmean = %v", g)
	}
	if gmean(nil) != 0 || gmean([]float64{0, 1}) != 0 {
		t.Fatal("gmean degenerate cases")
	}
}

func TestSortedSchemes(t *testing.T) {
	m := map[string]Outcome{
		SchOptWS: {}, SchBestTLP: {}, "zzz-custom": {}, SchPBSWS: {},
	}
	got := sortedSchemes(m)
	if got[0] != SchBestTLP {
		t.Fatalf("order %v", got)
	}
	if got[len(got)-1] != "zzz-custom" {
		t.Fatalf("custom scheme not last: %v", got)
	}
}

func TestFmtCombo(t *testing.T) {
	if fmtCombo([]int{2, 8}) != "(2,8)" {
		t.Fatal("fmtCombo")
	}
	if fmtCombo(nil) != "dynamic" {
		t.Fatal("fmtCombo nil")
	}
}

func TestTableRendering(t *testing.T) {
	tb := newTable("a", "bb")
	tb.row("1", "2")
	tb.rowf("x", "%.1f", 3.14159)
	var buf bytes.Buffer
	tb.write(&buf)
	out := buf.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "3.1") {
		t.Fatalf("table output: %s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("%d lines", len(lines))
	}
}
