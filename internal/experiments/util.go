package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

var mathPow = math.Pow

// table renders rows of labeled float columns with a header.
type table struct {
	headers []string
	rows    [][]string
}

func newTable(headers ...string) *table {
	return &table{headers: headers}
}

func (t *table) row(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) rowf(label string, format string, vals ...float64) {
	cells := []string{label}
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.row(cells...)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	seps := make([]string, len(t.headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
}

func fmtCombo(c []int) string {
	if c == nil {
		return "dynamic"
	}
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n\n", title)
}
