package experiments

import (
	"fmt"
	"io"
	"sort"

	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/metrics"
)

// Table1 prints the simulated machine description (the paper's Table I).
func Table1(e *Env, w io.Writer) error {
	header(w, "Table I: key configuration parameters of the simulated GPU")
	c := e.Opt.Config
	t := newTable("parameter", "value")
	t.row("cores", fmt.Sprint(c.NumCores))
	t.row("SIMT width", fmt.Sprint(c.SIMTWidth))
	t.row("warps/core", fmt.Sprint(c.MaxWarpsPerCore))
	t.row("warp schedulers/core", fmt.Sprint(c.SchedulersPerCore))
	t.row("max TLP per scheduler", fmt.Sprint(c.MaxTLPPerScheduler()))
	t.row("core clock", fmt.Sprintf("%d MHz", c.CoreClockMHz))
	t.row("interconnect clock", fmt.Sprintf("%d MHz", c.IcntClockMHz))
	t.row("memory clock", fmt.Sprintf("%d MHz", c.MemClockMHz))
	t.row("L1 data cache / core", fmt.Sprintf("%d KB, %d-way, %d B lines",
		c.L1.SizeBytes/1024, c.L1.Ways, c.L1.LineBytes))
	t.row("L1 MSHRs / core", fmt.Sprint(c.L1MSHRs))
	t.row("L2 cache", fmt.Sprintf("%d x %d KB slices, %d-way",
		c.NumMemPartitions, c.L2.SizeBytes/1024, c.L2.Ways))
	t.row("memory controllers", fmt.Sprintf("%d, FR-FCFS", c.NumMemPartitions))
	t.row("DRAM banks / MC", fmt.Sprintf("%d (%d bank groups)", c.BanksPerMC, c.BankGroupsPerMC))
	t.row("address interleave", fmt.Sprintf("%d B chunks", c.AddrInterleave))
	t.row("DRAM row", fmt.Sprintf("%d B", c.RowBytes))
	tm := c.Timing
	t.row("GDDR5 timing", fmt.Sprintf("tCL=%d tRP=%d tRAS=%d tRCD=%d tRRD=%d tCCD=%d tWR=%d BL=%d",
		tm.TCL, tm.TRP, tm.TRAS, tm.TRCD, tm.TRRD, tm.TCCD, tm.TWR, tm.BL))
	t.row("peak DRAM bandwidth", fmt.Sprintf("%.1f GB/s",
		c.PeakBandwidthBytesPerMemCycle()*float64(c.MemClockMHz)*1e6/1e9))
	t.write(w)
	return nil
}

// Table2 prints the evaluated TLP configurations (the paper's Table II).
func Table2(e *Env, w io.Writer) error {
	header(w, "Table II: evaluated TLP configurations")
	t := newTable("acronym", "description")
	t.row("maxTLP", fmt.Sprintf("single application at the maximum TLP (%d)", config.MaxTLP))
	t.row("++maxTLP", "all co-scheduled applications at their maxTLP")
	t.row("bestTLP", "single application at its best-performing TLP (profiled alone)")
	t.row("++bestTLP", "all co-scheduled applications at their own bestTLP")
	t.row("DynCTA", "single application under DynCTA modulation")
	t.row("++DynCTA", "all co-scheduled applications under DynCTA")
	t.row("optWS", "exhaustive search maximizing weighted speedup")
	t.row("optFI", "exhaustive search maximizing the fairness index")
	t.row("optHS", "exhaustive search maximizing harmonic weighted speedup")
	t.write(w)
	fmt.Fprintf(w, "\nTLP levels per application: %v (%d^2 = %d two-app combinations)\n",
		config.TLPLevels, len(config.TLPLevels), len(config.TLPLevels)*len(config.TLPLevels))
	return nil
}

// Table3 prints the metric definitions and verifies their algebra on a
// worked example (the paper's Table III).
func Table3(e *Env, w io.Writer) error {
	header(w, "Table III: evaluated metrics")
	t := newTable("acronym", "definition")
	t.row("SD", "slowdown: IPC-shared / IPC-alone@bestTLP")
	t.row("WS", "weighted speedup: SD-1 + SD-2")
	t.row("FI", "fairness index: min(SD-1/SD-2, SD-2/SD-1)")
	t.row("HS", "harmonic weighted speedup: n / (1/SD-1 + 1/SD-2)")
	t.row("BW", "attained DRAM bandwidth / theoretical peak")
	t.row("CMR", "combined miss rate: L1MR x L2MR")
	t.row("EB", "effective bandwidth: BW / CMR")
	t.row("EB-WS", "EB-1 + EB-2")
	t.row("EB-FI", "min(EB-1/EB-2, EB-2/EB-1), optionally alone-EB scaled")
	t.row("EB-HS", "n / (1/EB-1 + 1/EB-2)")
	t.write(w)

	// Worked example pinning the algebra.
	sd := []float64{0.8, 0.5}
	fmt.Fprintf(w, "\nworked example: SD=%v -> WS=%.3f FI=%.3f HS=%.3f\n",
		sd, metrics.WS(sd), metrics.FI(sd), metrics.HS(sd))
	fmt.Fprintf(w, "                BW=0.40 L1MR=0.50 L2MR=0.40 -> CMR=%.3f EB=%.3f\n",
		metrics.CMR(0.5, 0.4), metrics.EB(0.4, metrics.CMR(0.5, 0.4)))
	return nil
}

// Table4 prints the profiled application characteristics (the paper's
// Table IV): IPC@bestTLP, EB@bestTLP, and the EB-quartile group.
func Table4(e *Env, w io.Writer) error {
	header(w, "Table IV: GPGPU application characteristics (measured)")
	names := kernel.Names()
	sort.Slice(names, func(i, j int) bool {
		return e.Suite.Profiles[names[i]].BestEB < e.Suite.Profiles[names[j]].BestEB
	})
	t := newTable("app", "bestTLP", "IPC@bestTLP", "EB@bestTLP", "group")
	for _, n := range names {
		p := e.Suite.Profiles[n]
		t.row(n, fmt.Sprint(p.BestTLP), fmt.Sprintf("%.2f", p.BestIPC),
			fmt.Sprintf("%.3f", p.BestEB), fmt.Sprintf("G%d", p.Group))
	}
	t.write(w)
	fmt.Fprintf(w, "\ngroup mean alone-EB (the user-supplied scaling factors): "+
		"G1=%.3f G2=%.3f G3=%.3f G4=%.3f\n",
		e.Suite.GroupMeanEB[0], e.Suite.GroupMeanEB[1], e.Suite.GroupMeanEB[2], e.Suite.GroupMeanEB[3])
	return nil
}
