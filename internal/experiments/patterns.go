package experiments

import (
	"fmt"
	"io"

	pbscore "ebm/internal/core"
	"ebm/internal/metrics"
	"ebm/internal/workload"
)

// Fig6 reproduces the pattern illustration for BLK_TRD: EB-WS and per-app
// EB across the full TLP grid, shown as iso-TLP curves. The pattern the
// paper exploits is the consistency of the inflection along one axis.
func Fig6(e *Env, w io.Writer) error {
	header(w, "Fig. 6: EB-WS and per-app EB patterns for BLK_TRD")
	wl := workload.MustMake("BLK", "TRD")
	g, err := e.Grid(wl)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "(a) EB-WS; rows = TLP-BLK, columns = TLP-TRD\n\n")
	t := newTable(append([]string{"TLP-BLK\\TRD"}, levelHeaders(g.Levels)...)...)
	var ebBuf []float64 // reused across the 64 grid cells
	for _, t0 := range g.Levels {
		cells := []string{fmt.Sprint(t0)}
		for _, t1 := range g.Levels {
			r, err := g.At([]int{t0, t1})
			if err != nil {
				return err
			}
			ebBuf = r.EBsInto(ebBuf[:0])
			cells = append(cells, fmt.Sprintf("%.3f", metrics.EBWS(ebBuf)))
		}
		t.row(cells...)
	}
	t.write(w)

	for app := 0; app < 2; app++ {
		fmt.Fprintf(w, "\n(b%d) EB-%s; rows = TLP-BLK, columns = TLP-TRD\n\n", app+1, wl.Apps[app].Name)
		tb := newTable(append([]string{"TLP-BLK\\TRD"}, levelHeaders(g.Levels)...)...)
		for _, t0 := range g.Levels {
			cells := []string{fmt.Sprint(t0)}
			for _, t1 := range g.Levels {
				r, err := g.At([]int{t0, t1})
				if err != nil {
					return err
				}
				cells = append(cells, fmt.Sprintf("%.3f", r.Apps[app].EB))
			}
			tb.row(cells...)
		}
		tb.write(w)
	}
	fmt.Fprintf(w, "\npaper shape: the sharp EB-WS decline appears at a consistent TLP of the\n"+
		"critical application across co-runner TLP levels (the shaded pattern region).\n")
	return nil
}

// Fig7 walks through PBS-FI and PBS-HS on BLK_TRD: the scaled
// EB-difference views and the EB-HS views, plus the combinations each
// search selects.
func Fig7(e *Env, w io.Writer) error {
	header(w, "Fig. 7: PBS-FI (EB-difference) and PBS-HS (EB-HS) views for BLK_TRD")
	wl := workload.MustMake("BLK", "TRD")
	g, err := e.Grid(wl)
	if err != nil {
		return err
	}
	aloneEB, err := e.Suite.AloneEB(wl.Names())
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "(a) scaled EB-difference (EB-BLK/alone - EB-TRD/alone); rows = TLP-BLK\n\n")
	t := newTable(append([]string{"TLP-BLK\\TRD"}, levelHeaders(g.Levels)...)...)
	for _, t0 := range g.Levels {
		cells := []string{fmt.Sprint(t0)}
		for _, t1 := range g.Levels {
			r, err := g.At([]int{t0, t1})
			if err != nil {
				return err
			}
			d := r.Apps[0].EB/aloneEB[0] - r.Apps[1].EB/aloneEB[1]
			cells = append(cells, fmt.Sprintf("%+.3f", d))
		}
		t.row(cells...)
	}
	t.write(w)

	fmt.Fprintf(w, "\n(c) EB-HS (scaled); rows = TLP-BLK\n\n")
	th := newTable(append([]string{"TLP-BLK\\TRD"}, levelHeaders(g.Levels)...)...)
	var ebBuf []float64 // reused across the 64 grid cells
	for _, t0 := range g.Levels {
		cells := []string{fmt.Sprint(t0)}
		for _, t1 := range g.Levels {
			r, err := g.At([]int{t0, t1})
			if err != nil {
				return err
			}
			ebBuf = r.EBsInto(ebBuf[:0])
			cells = append(cells, fmt.Sprintf("%.3f", metrics.EBHS(ebBuf, aloneEB)))
		}
		th.row(cells...)
	}
	th.write(w)

	fiCombo, _ := g.PBSOfflineFI(aloneEB, nil)
	hsCombo, _ := g.PBSOffline(evalEBHS(aloneEB), nil)
	aloneIPC, err := e.Suite.AloneIPC(wl.Names())
	if err != nil {
		return err
	}
	optFI, _ := g.Best(evalSDFI(aloneIPC))
	optHS, _ := g.Best(evalSDHS(aloneIPC))
	fmt.Fprintf(w, "\nPBS-FI picks %s (optFI is %s); PBS-HS picks %s (optHS is %s).\n",
		fmtCombo(fiCombo), fmtCombo(optFI), fmtCombo(hsCombo), fmtCombo(optHS))
	fmt.Fprintf(w, "paper shape: the searches land on or adjacent to the zero crossing of the\n"+
		"scaled EB-difference and the EB-HS peak respectively.\n")
	return nil
}

// Fig8 prints the mechanism's hardware organization overheads.
func Fig8(e *Env, w io.Writer) error {
	header(w, "Fig. 8 / Section V-E: hardware organization and overheads")
	cost := pbscore.CostModel(2, e.Opt.Config.NumCores, e.Opt.Config.NumMemPartitions)
	fmt.Fprint(w, cost.String())
	fmt.Fprintf(w, "\nsearch footprint: %d sweep samples + <= %d tuning samples per search\n"+
		"(vs %d combinations for an exhaustive search).\n",
		2*6, 2*6, 64)
	return nil
}

func levelHeaders(levels []int) []string {
	out := make([]string, len(levels))
	for i, l := range levels {
		out[i] = fmt.Sprint(l)
	}
	return out
}
