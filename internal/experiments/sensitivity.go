package experiments

import (
	"fmt"
	"io"

	"ebm/internal/config"
	"ebm/internal/metrics"
	"ebm/internal/profile"
	"ebm/internal/spec"
	"ebm/internal/workload"
)

// SensCores reconstructs the Section VI-D core-partitioning sensitivity:
// ++bestTLP vs PBS-WS under unequal core splits. PBS's benefit should
// persist across partitionings because it manages the shared memory
// system, not the core allocation.
func SensCores(e *Env, w io.Writer) error {
	header(w, "Sensitivity: core partitioning (reconstructed from Section VI-D)")
	wl := workload.MustMake("BLK", "TRD")
	aloneIPCEqual, _, bestTLPs, err := e.Alone(wl)
	if err != nil {
		return err
	}
	total := e.Opt.Config.NumCores
	splits := [][]int{{total / 4, 3 * total / 4}, {3 * total / 8, 5 * total / 8},
		{total / 2, total / 2}, {5 * total / 8, 3 * total / 8}}

	t := newTable("cores", "scheme", "WS", "FI", "norm WS")
	for _, split := range splits {
		// Alone IPC depends on the core share; rescale the equal-split
		// profile by the issue-width ratio as a first-order correction
		// (documented approximation: alone IPC is near-linear in cores
		// for the latency-bound region these apps occupy).
		aloneIPC := make([]float64, len(aloneIPCEqual))
		for i := range aloneIPC {
			aloneIPC[i] = aloneIPCEqual[i] * float64(split[i]) / float64(total/2)
		}
		var base float64
		for _, sch := range []struct {
			name string
			spec spec.SchemeSpec
		}{
			{SchBestTLP, spec.Static(bestTLPs, nil)},
			{SchPBSWS, spec.PBS(metrics.ObjWS)},
		} {
			rs := e.EvalSpec(wl, sch.spec)
			rs.CoresPerApp = split
			r, err := e.Run(rs)
			if err != nil {
				return err
			}
			sd := SD(r, aloneIPC)
			ws := metrics.WS(sd)
			if sch.name == SchBestTLP {
				base = ws
			}
			t.row(fmt.Sprintf("%d/%d", split[0], split[1]), sch.name,
				fmt.Sprintf("%.3f", ws), fmt.Sprintf("%.3f", metrics.FI(sd)),
				fmt.Sprintf("%.3f", ws/base))
		}
	}
	t.write(w)
	fmt.Fprintf(w, "\nexpected shape: PBS-WS >= ++bestTLP at every core split.\n")
	return nil
}

// SensL2 reconstructs the L2-partitioning sensitivity: equal per-app way
// partitioning of the shared L2 under ++bestTLP and PBS-WS.
func SensL2(e *Env, w io.Writer) error {
	header(w, "Sensitivity: L2 way partitioning (reconstructed from Section VI-D)")
	wl := workload.MustMake("JPEG", "CFD")
	aloneIPC, _, bestTLPs, err := e.Alone(wl)
	if err != nil {
		return err
	}
	ways := e.Opt.Config.L2.Ways
	half := make([][]bool, 2)
	for app := 0; app < 2; app++ {
		half[app] = make([]bool, ways)
		for wy := 0; wy < ways; wy++ {
			half[app][wy] = (wy < ways/2) == (app == 0)
		}
	}

	t := newTable("L2", "scheme", "WS", "FI")
	for _, part := range []struct {
		name string
		mask [][]bool
	}{{"shared", nil}, {"way-partitioned", half}} {
		for _, sch := range []struct {
			name string
			spec spec.SchemeSpec
		}{
			{SchBestTLP, spec.Static(bestTLPs, nil)},
			{SchPBSWS, spec.PBS(metrics.ObjWS)},
		} {
			rs := e.EvalSpec(wl, sch.spec)
			rs.L2WayPartition = part.mask
			r, err := e.Run(rs)
			if err != nil {
				return err
			}
			sd := SD(r, aloneIPC)
			t.row(part.name, sch.name,
				fmt.Sprintf("%.3f", metrics.WS(sd)), fmt.Sprintf("%.3f", metrics.FI(sd)))
		}
	}
	t.write(w)
	fmt.Fprintf(w, "\nexpected shape: PBS-WS helps with and without cache partitioning; the two\n"+
		"mechanisms are complementary.\n")
	return nil
}

// ThreeApp reconstructs the three-application scalability study: PBS
// extends by fixing the most critical application first, then tuning the
// rest (Section V-B "trivially extended"). Three applications share a
// 15-core machine (5 cores each, paper-style equal partitioning); alone
// references are re-profiled on the 5-core share.
func ThreeApp(e *Env, w io.Writer) error {
	header(w, "Scalability: three-application workloads (reconstructed from Section VI-D)")
	cfg := e.Opt.Config
	cfg.NumCores = 15
	aloneCache := map[string]float64{}
	aloneOf := func(wl workload.Workload, bestTLPs []int) ([]float64, error) {
		out := make([]float64, len(wl.Apps))
		for i, app := range wl.Apps {
			if v, ok := aloneCache[app.Name]; ok {
				out[i] = v
				continue
			}
			r, err := profile.AloneRun(e.ctx, app, bestTLPs[i], profile.Options{
				Config:       cfg,
				CoresAlone:   cfg.NumCores / 3,
				TotalCycles:  e.Opt.GridCycles,
				WarmupCycles: e.Opt.GridWarmup,
				Runner:       e.pool,
				Cache:        e.cache,
			})
			if err != nil {
				return nil, err
			}
			out[i] = r.Apps[0].IPC
			aloneCache[app.Name] = out[i]
		}
		return out, nil
	}

	t := newTable("workload", "scheme", "combo/final", "WS", "FI")
	for _, wl := range workload.ThreeApp() {
		bestTLPs, err := e.Suite.BestTLPs(wl.Names())
		if err != nil {
			return err
		}
		aloneIPC, err := aloneOf(wl, bestTLPs)
		if err != nil {
			return err
		}
		schemes := []struct {
			name string
			spec spec.SchemeSpec
		}{
			{SchBestTLP, spec.Static(bestTLPs, nil)},
			{SchMaxTLP, spec.MaxTLP()},
			{SchDynCTA, spec.DynCTA()},
			{SchPBSWS, spec.PBS(metrics.ObjWS)},
		}
		for _, sch := range schemes {
			rs := e.EvalSpec(wl, sch.spec)
			rs.Config = cfg
			r, err := e.Run(rs)
			if err != nil {
				return err
			}
			sd := SD(r, aloneIPC)
			final := make([]int, len(wl.Apps))
			for i := range final {
				final[i] = r.Apps[i].FinalTLP
			}
			label := fmtCombo(bestTLPs)
			switch sch.name {
			case SchMaxTLP:
				label = fmtCombo([]int{config.MaxTLP, config.MaxTLP, config.MaxTLP})
			case SchDynCTA, SchPBSWS:
				label = "final " + fmtCombo(final)
			}
			t.row(wl.Name, sch.name, label,
				fmt.Sprintf("%.3f", metrics.WS(sd)), fmt.Sprintf("%.3f", metrics.FI(sd)))
		}
	}
	t.write(w)
	fmt.Fprintf(w, "\nexpected shape: PBS-WS above ++bestTLP and ++DynCTA on three-app workloads;\n"+
		"the search cost grows linearly (one sweep per application), not exponentially.\n")
	return nil
}
