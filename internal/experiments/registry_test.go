package experiments

import (
	"encoding/json"
	"testing"

	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/metrics"
	"ebm/internal/simcache"
	"ebm/internal/spec"
)

// TestFigureSchemesResolveThroughRegistry pins the acceptance criterion
// that every scheme the paper figures evaluate is constructible through
// internal/spec alone: each entry builds a manager via the registry and
// survives both serialization round trips.
func TestFigureSchemesResolveThroughRegistry(t *testing.T) {
	bestTLPs := []int{2, 8}
	schemes := FigureSchemes(bestTLPs)

	wantNames := []string{SchBestTLP, SchMaxTLP, SchDynCTA, SchModBypass,
		SchCCWS, SchPBSWS, SchPBSFI, SchPBSHS}
	for _, name := range wantNames {
		if _, ok := schemes[name]; !ok {
			t.Errorf("FigureSchemes missing %q", name)
		}
	}

	for name, sch := range schemes {
		if err := sch.Validate(len(bestTLPs)); err != nil {
			t.Errorf("%s: Validate: %v", name, err)
			continue
		}
		mgr, err := sch.Manager(len(bestTLPs))
		if err != nil {
			t.Errorf("%s: Manager: %v", name, err)
			continue
		}
		if mgr.Name() == "" {
			t.Errorf("%s: empty manager name", name)
		}
		// Flag-string round trip rebuilds an identically named manager.
		parsed, err := spec.ParseScheme(sch.String())
		if err != nil {
			t.Errorf("%s: ParseScheme(%q): %v", name, sch.String(), err)
			continue
		}
		m2, err := parsed.Manager(len(bestTLPs))
		if err != nil {
			t.Errorf("%s: reparsed Manager: %v", name, err)
			continue
		}
		if mgr.Name() != m2.Name() {
			t.Errorf("%s: manager name changed across round trip: %q vs %q",
				name, mgr.Name(), m2.Name())
		}
	}
}

// TestRegistryKindsCompleteAndStable extends the completeness criterion
// to every registered kind, not just the figure entries: each kind has a
// representative spec here (adding a kind without extending this test
// fails it), round-trips through both the flag grammar and JSON with its
// cache identity intact, and is reachable from FigureSchemes either
// directly or through canonicalization.
func TestRegistryKindsCompleteAndStable(t *testing.T) {
	bestTLPs := []int{2, 8}
	reps := map[string]spec.SchemeSpec{
		spec.KindStatic:    spec.Static([]int{2, 4}, nil),
		spec.KindBestTLP:   spec.BestTLP(bestTLPs),
		spec.KindMaxTLP:    spec.MaxTLP(),
		spec.KindDynCTA:    spec.DynCTA(),
		spec.KindModBypass: spec.ModBypass(),
		spec.KindCCWS:      spec.CCWS(),
		spec.KindPBSWS:     spec.PBS(metrics.ObjWS),
		spec.KindPBSFI:     spec.PBS(metrics.ObjFI),
		spec.KindPBSHS:     spec.PBS(metrics.ObjHS),
		spec.KindBatch:     spec.Batch(),
		spec.KindWRS:       spec.WRS(),
	}

	blk, _ := kernel.ByName("BLK")
	trd, _ := kernel.ByName("TRD")
	runOf := func(s spec.SchemeSpec) spec.RunSpec {
		return spec.RunSpec{
			Config:       config.Default(),
			Apps:         []kernel.Params{blk, trd},
			Scheme:       s,
			TotalCycles:  60_000,
			WarmupCycles: 10_000,
		}
	}

	for _, k := range spec.Kinds() {
		rep, ok := reps[k]
		if !ok {
			t.Errorf("registered kind %q has no representative here — extend this test", k)
			continue
		}
		mgr, err := rep.Manager(2)
		if err != nil {
			t.Errorf("%s: Manager: %v", k, err)
			continue
		}

		// Flag-grammar round trip.
		parsed, err := spec.ParseScheme(rep.String())
		if err != nil {
			t.Errorf("%s: ParseScheme(%q): %v", k, rep.String(), err)
			continue
		}
		// JSON round trip.
		b, err := json.Marshal(rep)
		if err != nil {
			t.Errorf("%s: marshal: %v", k, err)
			continue
		}
		var back spec.SchemeSpec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Errorf("%s: unmarshal: %v", k, err)
			continue
		}

		key := simcache.Key(runOf(rep))
		for form, s := range map[string]spec.SchemeSpec{"grammar": parsed, "json": back} {
			m2, err := s.Manager(2)
			if err != nil {
				t.Errorf("%s: %s round trip Manager: %v", k, form, err)
				continue
			}
			if m2.Name() != mgr.Name() {
				t.Errorf("%s: %s round trip changed manager name: %q vs %q",
					k, form, m2.Name(), mgr.Name())
			}
			if k2 := simcache.Key(runOf(s)); k2 != key {
				t.Errorf("%s: %s round trip changed cache key: %s vs %s", k, form, k2, key)
			}
		}
		if key != simcache.Key(runOf(rep)) {
			t.Errorf("%s: cache key not stable across recomputation", k)
		}
	}

	// Every kind is reachable from the figure catalog, directly or via
	// its canonical form (++bestTLP resolves to a static combination).
	covered := map[string]bool{}
	for _, sch := range FigureSchemes(bestTLPs) {
		covered[sch.Kind] = true
		covered[runOf(sch).Canonical().Scheme.Kind] = true
	}
	for _, k := range spec.Kinds() {
		if !covered[k] {
			t.Errorf("kind %q not reachable from FigureSchemes", k)
		}
	}
}
