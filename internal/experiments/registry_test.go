package experiments

import (
	"testing"

	"ebm/internal/spec"
)

// TestFigureSchemesResolveThroughRegistry pins the acceptance criterion
// that every scheme the paper figures evaluate is constructible through
// internal/spec alone: each entry builds a manager via the registry and
// survives both serialization round trips.
func TestFigureSchemesResolveThroughRegistry(t *testing.T) {
	bestTLPs := []int{2, 8}
	schemes := FigureSchemes(bestTLPs)

	wantNames := []string{SchBestTLP, SchMaxTLP, SchDynCTA, SchModBypass,
		SchCCWS, SchPBSWS, SchPBSFI, SchPBSHS}
	for _, name := range wantNames {
		if _, ok := schemes[name]; !ok {
			t.Errorf("FigureSchemes missing %q", name)
		}
	}

	for name, sch := range schemes {
		if err := sch.Validate(len(bestTLPs)); err != nil {
			t.Errorf("%s: Validate: %v", name, err)
			continue
		}
		mgr, err := sch.Manager(len(bestTLPs))
		if err != nil {
			t.Errorf("%s: Manager: %v", name, err)
			continue
		}
		if mgr.Name() == "" {
			t.Errorf("%s: empty manager name", name)
		}
		// Flag-string round trip rebuilds an identically named manager.
		parsed, err := spec.ParseScheme(sch.String())
		if err != nil {
			t.Errorf("%s: ParseScheme(%q): %v", name, sch.String(), err)
			continue
		}
		m2, err := parsed.Manager(len(bestTLPs))
		if err != nil {
			t.Errorf("%s: reparsed Manager: %v", name, err)
			continue
		}
		if mgr.Name() != m2.Name() {
			t.Errorf("%s: manager name changed across round trip: %q vs %q",
				name, mgr.Name(), m2.Name())
		}
	}
}
