package experiments

import (
	"fmt"
	"io"

	"ebm/internal/metrics"
	"ebm/internal/search"
	"ebm/internal/sim"
	"ebm/internal/spec"
	"ebm/internal/workload"
)

// Ablations exercises the design choices DESIGN.md calls out:
//
//  1. the search objective (EB vs raw BW vs raw IT as the online signal);
//  2. pattern-based search vs naive exhaustive sampling (samples used);
//  3. sampling-window length;
//  4. scaling-factor source for fairness (none / sampled / group / exact);
//  5. designated-core sampling vs full aggregation.
func Ablations(e *Env, w io.Writer) error {
	if err := ablObjective(e, w); err != nil {
		return err
	}
	if err := ablSearchCost(e, w); err != nil {
		return err
	}
	if err := ablWindow(e, w); err != nil {
		return err
	}
	if err := ablScaling(e, w); err != nil {
		return err
	}
	return ablSampling(e, w)
}

// ablObjective compares exhaustively maximizing EB-WS vs raw attained BW
// vs raw instruction throughput, judged by the WS each achieves.
func ablObjective(e *Env, w io.Writer) error {
	header(w, "Ablation 1: search objective (what should the hardware maximize?)")
	t := newTable("workload", "maximize EB-WS", "maximize BW", "maximize IT", "optWS")
	wls := workload.Representative()
	var rel [3][]float64
	for _, wl := range wls {
		g, err := e.Grid(wl)
		if err != nil {
			return err
		}
		aloneIPC, err := e.Suite.AloneIPC(wl.Names())
		if err != nil {
			return err
		}
		wsEval := search.SDEval(metrics.ObjWS, aloneIPC)
		bwEval := func(r sim.Result) float64 { return r.TotalBW }
		vals := make([]float64, 4)
		for i, ev := range []search.Eval{search.EBEval(metrics.ObjWS, nil), bwEval, search.ITEval(), wsEval} {
			c, _ := g.Best(ev)
			r, err := g.At(c)
			if err != nil {
				return err
			}
			vals[i] = wsEval(r)
		}
		for i := 0; i < 3; i++ {
			rel[i] = append(rel[i], vals[i]/vals[3])
		}
		t.rowf(wl.Name, "%.3f", vals...)
	}
	t.write(w)
	fmt.Fprintf(w, "\nWS captured vs optWS (gmean): EB-WS %.1f%%, BW %.1f%%, IT %.1f%% — the EB\n"+
		"objective dominates raw bandwidth and raw throughput.\n",
		100*gmean(rel[0]), 100*gmean(rel[1]), 100*gmean(rel[2]))
	return nil
}

// ablSearchCost counts the samples PBS needs vs naive exhaustive online
// sampling, and the WS each would reach.
func ablSearchCost(e *Env, w io.Writer) error {
	header(w, "Ablation 2: pattern-based search vs naive exhaustive sampling")
	t := newTable("workload", "PBS samples", "naive samples", "PBS WS frac of naive")
	var fr []float64
	for _, wl := range workload.Representative() {
		g, err := e.Grid(wl)
		if err != nil {
			return err
		}
		aloneIPC, err := e.Suite.AloneIPC(wl.Names())
		if err != nil {
			return err
		}
		wsEval := search.SDEval(metrics.ObjWS, aloneIPC)
		pbsCombo, _ := g.PBSOffline(search.EBEval(metrics.ObjWS, nil), nil)
		naiveCombo, _ := g.Best(search.EBEval(metrics.ObjWS, nil))
		rp, err := g.At(pbsCombo)
		if err != nil {
			return err
		}
		rn, err := g.At(naiveCombo)
		if err != nil {
			return err
		}
		frac := wsEval(rp) / wsEval(rn)
		fr = append(fr, frac)
		// PBS: 6 sweep points per app + at most 6 tuning points.
		t.row(wl.Name, "<= 18", "64", fmt.Sprintf("%.3f", frac))
	}
	t.write(w)
	fmt.Fprintf(w, "\nPBS reaches %.1f%% (gmean) of the naive exhaustive EB search's WS using\n"+
		"about a quarter of the samples — the paper's overhead argument.\n", 100*gmean(fr))
	return nil
}

// ablWindow sweeps the sampling-window length for online PBS-WS.
func ablWindow(e *Env, w io.Writer) error {
	header(w, "Ablation 3: sampling window length (online PBS-WS on BLK_BFS)")
	wl := workload.MustMake("BLK", "BFS")
	aloneIPC, err := e.Suite.AloneIPC(wl.Names())
	if err != nil {
		return err
	}
	t := newTable("window (cycles)", "WS", "searches done")
	for _, win := range []uint64{1000, 2500, 5000, 10000} {
		// Search counters are read after the run, so this is one of the
		// deliberately uncacheable direct-engine paths: the manager comes
		// from the registry, the run does not go through the cache.
		mgr, err := spec.PBSManager(spec.PBS(metrics.ObjWS), len(wl.Apps))
		if err != nil {
			return err
		}
		s, err := sim.New(sim.Options{
			Config:             e.Opt.Config,
			Apps:               wl.Apps,
			Manager:            mgr,
			TotalCycles:        e.Opt.EvalCycles,
			WarmupCycles:       e.Opt.EvalWarmup,
			WindowCycles:       win,
			DesignatedSampling: true,
		})
		if err != nil {
			return err
		}
		r := s.Run()
		t.row(fmt.Sprint(win), fmt.Sprintf("%.3f", metrics.WS(SD(r, aloneIPC))),
			fmt.Sprint(mgr.Searches()))
	}
	t.write(w)
	fmt.Fprintf(w, "\nshort windows are noisy; long windows slow the search. The default (2500)\n"+
		"matches the paper's finding that trends stabilize within the interval.\n")
	return nil
}

// ablScaling compares the EB-FI scaling-factor sources on the offline
// search (none vs sampled online vs group means vs exact alone EB).
func ablScaling(e *Env, w io.Writer) error {
	header(w, "Ablation 4: EB-FI scaling factors (offline PBS-FI)")
	t := newTable("workload", "no scale", "group", "exact", "optFI")
	var relG, relE []float64
	for _, wl := range workload.Representative() {
		g, err := e.Grid(wl)
		if err != nil {
			return err
		}
		aloneIPC, err := e.Suite.AloneIPC(wl.Names())
		if err != nil {
			return err
		}
		exact, err := e.Suite.AloneEB(wl.Names())
		if err != nil {
			return err
		}
		group, err := e.Suite.GroupEB(wl.Names())
		if err != nil {
			return err
		}
		fiEval := search.SDEval(metrics.ObjFI, aloneIPC)
		fiOf := func(scale []float64) float64 {
			c, _ := g.PBSOfflineFI(scale, nil)
			r, err := g.At(c)
			if err != nil {
				return 0
			}
			return fiEval(r)
		}
		vNone, vGroup, vExact := fiOf(nil), fiOf(group), fiOf(exact)
		_, vOpt := g.Best(fiEval)
		relG = append(relG, safeRatio(vGroup, vOpt))
		relE = append(relE, safeRatio(vExact, vOpt))
		t.rowf(wl.Name, "%.3f", vNone, vGroup, vExact, vOpt)
	}
	t.write(w)
	fmt.Fprintf(w, "\nfraction of optFI captured (gmean): group %.1f%%, exact %.1f%% — scaling\n"+
		"factors close part of the outlier gap exactly as Section IV argues.\n",
		100*gmean(relG), 100*gmean(relE))
	return nil
}

// ablSampling compares the paper's designated-core/partition sampling with
// full machine-wide aggregation feeding PBS-WS.
func ablSampling(e *Env, w io.Writer) error {
	header(w, "Ablation 5: designated sampling vs full aggregation (online PBS-WS)")
	t := newTable("workload", "designated WS", "aggregated WS", "delta")
	for _, wl := range []workload.Workload{
		workload.MustMake("BLK", "BFS"),
		workload.MustMake("BFS", "FFT"),
		workload.MustMake("FFT", "TRD"),
	} {
		aloneIPC, err := e.Suite.AloneIPC(wl.Names())
		if err != nil {
			return err
		}
		run := func(designated bool) (float64, error) {
			rs := e.EvalSpec(wl, spec.PBS(metrics.ObjWS))
			rs.DesignatedSampling = designated
			r, err := e.Run(rs)
			if err != nil {
				return 0, err
			}
			return metrics.WS(SD(r, aloneIPC)), nil
		}
		des, err := run(true)
		if err != nil {
			return err
		}
		agg, err := run(false)
		if err != nil {
			return err
		}
		t.row(wl.Name, fmt.Sprintf("%.3f", des), fmt.Sprintf("%.3f", agg),
			fmt.Sprintf("%+.1f%%", 100*(des-agg)/agg))
	}
	t.write(w)
	fmt.Fprintf(w, "\nthe cheap designated sampling tracks full aggregation closely (uniform\n"+
		"miss-rate/bandwidth distribution across partitions, Section V-E).\n")
	return nil
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
