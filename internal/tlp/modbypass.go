package tlp

// ModBypass implements the Mod+Bypass comparison scheme: DynCTA-style TLP
// modulation combined with L1 cache bypassing for applications that do not
// benefit from the cache. Bypassing the cache-insensitive application
// frees L1 (and, through reduced thrashing, L2) capacity for the
// cache-sensitive co-runner, which is where the scheme's gains over plain
// ++DynCTA come from. Like DynCTA it works from per-application local
// signals and does not reason about aggregate bandwidth, which is the gap
// the paper's PBS closes.
type ModBypass struct {
	mod *DynCTA

	// BypassL1MR: an application whose L1 miss rate stays above this for
	// Confirm consecutive windows is declared cache-insensitive and its
	// L1 is bypassed. An application drops back below UnbypassL1MR (with
	// the same confirmation count, measured on the shadow miss rate of
	// accesses that would have hit) to re-enable the cache. Because the
	// shadow rate is not observable once bypassing, re-enablement uses a
	// periodic probe window instead.
	BypassL1MR  float64
	Confirm     int
	ProbeEvery  int // windows between probation windows while bypassing
	probeActive []bool

	votes   []int
	windows []int
	cur     Decision
}

// NewModBypass returns the Mod+Bypass policy with default thresholds.
func NewModBypass() *ModBypass {
	return &ModBypass{
		mod:        NewDynCTA(),
		BypassL1MR: 0.95,
		Confirm:    3,
		ProbeEvery: 32,
	}
}

// Name implements Manager.
func (m *ModBypass) Name() string { return "Mod+Bypass" }

// Initial implements Manager.
func (m *ModBypass) Initial(numApps int) Decision {
	m.votes = make([]int, numApps)
	m.windows = make([]int, numApps)
	m.probeActive = make([]bool, numApps)
	m.cur = m.mod.Initial(numApps)
	return m.cur.Clone()
}

// OnSample implements Manager.
func (m *ModBypass) OnSample(s Sample) Decision {
	if m.votes == nil {
		m.Initial(len(s.Apps))
	}
	d := m.mod.OnSample(s)
	if len(m.cur.BypassL1) != len(s.Apps) {
		m.cur = NewDecision(len(s.Apps), 0)
	}
	for i := range s.Apps {
		a := &s.Apps[i]
		m.windows[i]++
		bypassing := m.cur.BypassL1[i]
		switch {
		case !bypassing:
			if a.L1MR >= m.BypassL1MR {
				m.votes[i]++
			} else {
				m.votes[i] = 0
			}
			if m.votes[i] >= m.Confirm {
				m.cur.BypassL1[i] = true
				m.votes[i] = 0
			}
		case m.probeActive[i]:
			// Probation window just ran with the cache on; keep the cache
			// if it proved useful, otherwise return to bypassing.
			m.probeActive[i] = false
			m.cur.BypassL1[i] = a.L1MR >= m.BypassL1MR
		default:
			if m.ProbeEvery > 0 && m.windows[i]%m.ProbeEvery == 0 {
				// Run one window with the cache enabled to re-measure.
				m.probeActive[i] = true
				m.cur.BypassL1[i] = false
			}
		}
	}
	d.BypassL1 = append([]bool(nil), m.cur.BypassL1...)
	m.cur.TLP = d.TLP
	return d
}
