package tlp

import (
	"testing"

	"ebm/internal/config"
)

func sample(apps ...AppSample) Sample {
	return Sample{Cycle: 1000, Apps: apps}
}

func TestNewDecision(t *testing.T) {
	d := NewDecision(3, 8)
	if len(d.TLP) != 3 || len(d.BypassL1) != 3 {
		t.Fatal("wrong shape")
	}
	for _, v := range d.TLP {
		if v != 8 {
			t.Fatal("wrong fill")
		}
	}
}

func TestDecisionEqual(t *testing.T) {
	base := Decision{TLP: []int{8, 16}, BypassL1: []bool{false, true}}
	cases := []struct {
		name string
		a, b Decision
		want bool
	}{
		{"identical", base, base.Clone(), true},
		{"different TLP", base, Decision{TLP: []int{8, 24}, BypassL1: []bool{false, true}}, false},
		{"different bypass", base, Decision{TLP: []int{8, 16}, BypassL1: []bool{true, true}}, false},
		{"different length", base, Decision{TLP: []int{8}}, false},
		{"nil bypass equals all-false",
			Decision{TLP: []int{8, 16}},
			Decision{TLP: []int{8, 16}, BypassL1: []bool{false, false}}, true},
		{"clamped to same level",
			Decision{TLP: []int{25, 16}},
			Decision{TLP: []int{config.ClampToLevel(25), 16}}, true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%s: Equal = %v, want %v", c.name, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("%s (reversed): Equal = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{TLP: []int{24, 1}}
	if got := d.String(); got != "tlp=[24 1]" {
		t.Fatalf("String = %q", got)
	}
	d = Decision{TLP: []int{8, 8}, BypassL1: []bool{true, false}}
	if got := d.String(); got != "tlp=[8 8] bypass=[tf]" {
		t.Fatalf("String = %q", got)
	}
}

func TestDecisionClone(t *testing.T) {
	d := NewDecision(2, 4)
	c := d.Clone()
	c.TLP[0] = 24
	c.BypassL1[1] = true
	if d.TLP[0] != 4 || d.BypassL1[1] {
		t.Fatal("Clone aliased the original")
	}
}

func TestStaticManager(t *testing.T) {
	m, err := NewStatic("x", []int{2, 8}, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Initial(2)
	if d.TLP[0] != 2 || d.TLP[1] != 8 || !d.BypassL1[0] || d.BypassL1[1] {
		t.Fatalf("Initial = %+v", d)
	}
	d2 := m.OnSample(sample(AppSample{}, AppSample{}))
	if d2.TLP[0] != 2 || d2.TLP[1] != 8 {
		t.Fatal("static manager drifted")
	}
	if m.Name() != "x" {
		t.Fatal("name")
	}
	if m.String() == "" {
		t.Fatal("String empty")
	}
}

func TestStaticConstructionValidates(t *testing.T) {
	if _, err := NewStatic("x", nil, nil); err == nil {
		t.Error("empty TLP list accepted")
	}
	if _, err := NewStatic("x", []int{2, 8}, []bool{true}); err == nil {
		t.Error("short bypass mask accepted")
	}
	m, err := NewStatic("x", []int{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The decision is exactly the constructed combination — no silent
	// padding to a larger application count.
	if d := m.Initial(3); len(d.TLP) != 1 || d.TLP[0] != 2 {
		t.Fatalf("Initial = %v, want the 1-app combination unchanged", d.TLP)
	}
}

func TestMaxTLPManager(t *testing.T) {
	m := NewMaxTLP(2)
	d := m.Initial(2)
	for _, v := range d.TLP {
		if v != config.MaxTLP {
			t.Fatal("maxTLP wrong")
		}
	}
}

func TestDynCTADecreasesOnMemStall(t *testing.T) {
	m := NewDynCTA()
	d := m.Initial(1)
	start := d.TLP[0]
	for i := 0; i < 2*m.Hysteresis; i++ {
		d = m.OnSample(sample(AppSample{MemStallFrac: 0.9, IssueUtil: 0.1}))
	}
	if d.TLP[0] >= start {
		t.Fatalf("TLP %d did not decrease from %d under heavy memory stall", d.TLP[0], start)
	}
}

func TestDynCTAIncreasesWhenLatencyBound(t *testing.T) {
	m := NewDynCTA()
	d := m.Initial(1)
	start := d.TLP[0]
	for i := 0; i < 2*m.Hysteresis; i++ {
		d = m.OnSample(sample(AppSample{MemStallFrac: 0.05, IssueUtil: 0.3}))
	}
	if d.TLP[0] <= start {
		t.Fatalf("TLP %d did not increase from %d when under-utilized", d.TLP[0], start)
	}
}

func TestDynCTAHoldsWhenHealthy(t *testing.T) {
	m := NewDynCTA()
	d := m.Initial(1)
	start := d.TLP[0]
	for i := 0; i < 10; i++ {
		d = m.OnSample(sample(AppSample{MemStallFrac: 0.35, IssueUtil: 0.95}))
	}
	if d.TLP[0] != start {
		t.Fatalf("TLP moved from %d to %d in the healthy band", start, d.TLP[0])
	}
}

func TestDynCTAHysteresisBlocksSingleWindowNoise(t *testing.T) {
	m := NewDynCTA()
	d := m.Initial(1)
	start := d.TLP[0]
	// One noisy window, then healthy ones: no move.
	d = m.OnSample(sample(AppSample{MemStallFrac: 0.9}))
	d = m.OnSample(sample(AppSample{MemStallFrac: 0.3, IssueUtil: 0.9}))
	d = m.OnSample(sample(AppSample{MemStallFrac: 0.3, IssueUtil: 0.9}))
	if d.TLP[0] != start {
		t.Fatalf("hysteresis failed: %d -> %d", start, d.TLP[0])
	}
}

func TestDynCTAStaysOnLevels(t *testing.T) {
	m := NewDynCTA()
	m.Initial(1)
	d := Decision{}
	for i := 0; i < 50; i++ {
		d = m.OnSample(sample(AppSample{MemStallFrac: 0.99}))
	}
	if config.LevelIndex(d.TLP[0]) == -1 {
		t.Fatalf("DynCTA left the level set: %d", d.TLP[0])
	}
	if d.TLP[0] != config.TLPLevels[0] {
		t.Fatalf("persistent stall should bottom out at %d, got %d", config.TLPLevels[0], d.TLP[0])
	}
}

func TestDynCTAPerAppIndependence(t *testing.T) {
	m := NewDynCTA()
	m.Initial(2)
	var d Decision
	for i := 0; i < 6; i++ {
		d = m.OnSample(sample(
			AppSample{App: 0, MemStallFrac: 0.9},                  // down
			AppSample{App: 1, MemStallFrac: 0.05, IssueUtil: 0.2}, // up
		))
	}
	if d.TLP[0] >= d.TLP[1] {
		t.Fatalf("apps not modulated independently: %v", d.TLP)
	}
}

func TestModBypassEngagesOnHighL1MR(t *testing.T) {
	m := NewModBypass()
	m.Initial(2)
	var d Decision
	for i := 0; i < m.Confirm+1; i++ {
		d = m.OnSample(sample(
			AppSample{App: 0, L1MR: 0.99},
			AppSample{App: 1, L1MR: 0.20},
		))
	}
	if !d.BypassL1[0] {
		t.Fatal("cache-insensitive app not bypassed")
	}
	if d.BypassL1[1] {
		t.Fatal("cache-friendly app bypassed")
	}
}

func TestModBypassNeedsConfirmation(t *testing.T) {
	m := NewModBypass()
	m.Initial(1)
	d := m.OnSample(sample(AppSample{L1MR: 0.99}))
	if d.BypassL1[0] {
		t.Fatal("bypassed after a single window")
	}
}

func TestModBypassProbeRestoresCache(t *testing.T) {
	m := NewModBypass()
	m.ProbeEvery = 4
	m.Initial(1)
	var d Decision
	// Engage bypass.
	for i := 0; i < m.Confirm; i++ {
		d = m.OnSample(sample(AppSample{L1MR: 0.99}))
	}
	if !d.BypassL1[0] {
		t.Fatal("not bypassed")
	}
	// Run until a probe window opens (cache re-enabled for one window).
	probed := false
	for i := 0; i < 3*m.ProbeEvery; i++ {
		d = m.OnSample(sample(AppSample{L1MR: 0.99}))
		if !d.BypassL1[0] {
			probed = true
			// During probation the app now shows a LOW miss rate:
			// the cache must stay enabled.
			d = m.OnSample(sample(AppSample{L1MR: 0.10}))
			break
		}
	}
	if !probed {
		t.Fatal("no probation window opened")
	}
	if d.BypassL1[0] {
		t.Fatal("probe ignored the recovered miss rate")
	}
}

func TestModBypassKeepsModulating(t *testing.T) {
	m := NewModBypass()
	d := m.Initial(1)
	start := d.TLP[0]
	for i := 0; i < 8; i++ {
		d = m.OnSample(sample(AppSample{L1MR: 0.99, MemStallFrac: 0.9}))
	}
	if d.TLP[0] >= start {
		t.Fatal("Mod+Bypass lost the DynCTA modulation half")
	}
}
