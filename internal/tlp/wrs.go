package tlp

import "ebm/internal/config"

// WRS implements a warp-resource-sharing policy in the spirit of Jatala
// et al.: the machine's warp budget is conserved rather than per-app
// capped. Every application starts at an equal fair share, and warp
// slots migrate from applications that cannot use them (memory-saturated
// ones, whose extra warps only deepen queueing) to applications that can
// (busy, latency-limited ones), one TLP level per hysteresis period. The
// conservation constraint is what distinguishes it from DynCTA-style
// local modulation: the total allocation, measured in TLP-level indices,
// never exceeds numApps times the fair share, so one application's gain
// is always another's (idle) capacity.
type WRS struct {
	// Share is the per-application fair-share TLP level; the conserved
	// machine budget is numApps * LevelIndex(Share) level steps.
	Share int

	// HighMemStall marks a donor: above this fraction of memory-stalled
	// idle cycles the application yields a level.
	HighMemStall float64
	// LowUtil gates takers: an application below HighMemStall whose
	// issue utilization is under LowUtil still has latency to hide, so
	// it bids for a level.
	LowUtil float64

	// Hysteresis: consecutive windows agreeing before a slot moves.
	Hysteresis int

	votes []int // + to take, - to donate, per app
	cur   Decision
}

// NewWRS returns the warp-resource-sharing policy with its defaults: an
// 8-warp fair share (the mid TLP level), donors above 50% memory stall,
// takers under 70% issue utilization, and 2-window hysteresis.
func NewWRS() *WRS {
	return &WRS{Share: 8, HighMemStall: 0.5, LowUtil: 0.7, Hysteresis: 2}
}

// Name implements Manager.
func (w *WRS) Name() string { return "++WRS" }

// Initial implements Manager: everyone starts at the fair share.
func (w *WRS) Initial(numApps int) Decision {
	w.votes = make([]int, numApps)
	w.cur = NewDecision(numApps, config.ClampToLevel(w.Share))
	return w.cur.Clone()
}

// budget is the conserved allocation in TLP-level-index steps.
func (w *WRS) budget(numApps int) int {
	return numApps * config.LevelIndex(config.ClampToLevel(w.Share))
}

// allocated sums the current allocation in level-index steps.
func (w *WRS) allocated() int {
	total := 0
	for _, t := range w.cur.TLP {
		total += config.LevelIndex(config.ClampToLevel(t))
	}
	return total
}

// OnSample implements Manager. Donors release first so the freed budget
// is available to takers in the same window; ties break on the lowest
// application index, keeping the policy deterministic.
func (w *WRS) OnSample(s Sample) Decision {
	if w.votes == nil {
		w.Initial(len(s.Apps))
	}
	for i := range s.Apps {
		a := &s.Apps[i]
		switch {
		case a.MemStallFrac > w.HighMemStall:
			if w.votes[i] > 0 {
				w.votes[i] = 0
			}
			w.votes[i]--
		case a.IssueUtil < w.LowUtil:
			if w.votes[i] < 0 {
				w.votes[i] = 0
			}
			w.votes[i]++
		default:
			w.votes[i] = 0
		}
	}
	// Donors first: a released level immediately re-enters the pool.
	for i := range w.cur.TLP {
		idx := config.LevelIndex(config.ClampToLevel(w.cur.TLP[i]))
		if w.votes[i] <= -w.Hysteresis && idx > 0 {
			w.cur.TLP[i] = config.TLPLevels[idx-1]
			w.votes[i] = 0
		}
	}
	// Takers claim one level each while the conserved budget allows.
	for i := range w.cur.TLP {
		idx := config.LevelIndex(config.ClampToLevel(w.cur.TLP[i]))
		if w.votes[i] >= w.Hysteresis && idx < len(config.TLPLevels)-1 &&
			w.allocated()+1 <= w.budget(len(s.Apps)) {
			w.cur.TLP[i] = config.TLPLevels[idx+1]
			w.votes[i] = 0
		}
	}
	return w.cur.Clone()
}
