package tlp

import "ebm/internal/config"

// CCWS implements a cache-conscious wavefront-scheduling-inspired baseline
// (after Rogers et al.): each application watches its lost-locality signal
// — the fraction of L1 misses whose tags are still in a small victim tag
// array, i.e. lines that were recently evicted by the application's own
// thrashing — and throttles its TLP when locality is being destroyed,
// releasing warps again when locality recovers. Like DynCTA it is a
// single-application heuristic with no view of co-runners' shared-resource
// consumption, which is the gap the paper's PBS closes.
//
// The simulator's victim-tag detector must be enabled
// (sim.Options.VictimTags > 0) for the VTARate signal to be non-zero;
// otherwise CCWS degenerates to holding its initial TLP.
type CCWS struct {
	// HighVTA: above this lost-locality fraction the application is
	// thrashing its own L1 and TLP is decreased.
	HighVTA float64
	// LowVTA / LowUtil: with locality healthy and issue slots idle, TLP
	// is increased to hide more latency.
	LowVTA  float64
	LowUtil float64
	// Hysteresis: consecutive agreeing windows before a move.
	Hysteresis int

	votes []int
	cur   Decision
}

// NewCCWS returns the CCWS-style baseline with default thresholds.
func NewCCWS() *CCWS {
	return &CCWS{
		HighVTA:    0.15,
		LowVTA:     0.05,
		LowUtil:    0.8,
		Hysteresis: 2,
	}
}

// Name implements Manager.
func (c *CCWS) Name() string { return "++CCWS" }

// Initial implements Manager: start from maxTLP and throttle on evidence,
// which is CCWS's direction of travel (it reacts to detected thrashing).
func (c *CCWS) Initial(numApps int) Decision {
	c.votes = make([]int, numApps)
	c.cur = NewDecision(numApps, config.MaxTLP)
	return c.cur.Clone()
}

// OnSample implements Manager.
func (c *CCWS) OnSample(s Sample) Decision {
	if c.votes == nil {
		c.Initial(len(s.Apps))
	}
	for i := range s.Apps {
		a := &s.Apps[i]
		idx := config.LevelIndex(c.cur.TLP[i])
		if idx < 0 {
			idx = len(config.TLPLevels) - 1
		}
		switch {
		case a.VTARate > c.HighVTA:
			if c.votes[i] > 0 {
				c.votes[i] = 0
			}
			c.votes[i]--
		case a.VTARate < c.LowVTA && a.IssueUtil < c.LowUtil:
			if c.votes[i] < 0 {
				c.votes[i] = 0
			}
			c.votes[i]++
		default:
			c.votes[i] = 0
		}
		if c.votes[i] <= -c.Hysteresis && idx > 0 {
			idx--
			c.votes[i] = 0
		} else if c.votes[i] >= c.Hysteresis && idx < len(config.TLPLevels)-1 {
			idx++
			c.votes[i] = 0
		}
		c.cur.TLP[i] = config.TLPLevels[idx]
	}
	return c.cur.Clone()
}
