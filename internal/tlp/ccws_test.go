package tlp

import (
	"testing"

	"ebm/internal/config"
)

func TestCCWSThrottlesOnLostLocality(t *testing.T) {
	m := NewCCWS()
	d := m.Initial(1)
	if d.TLP[0] != config.MaxTLP {
		t.Fatalf("CCWS starts at %d, want maxTLP", d.TLP[0])
	}
	for i := 0; i < 3*m.Hysteresis; i++ {
		d = m.OnSample(sample(AppSample{VTARate: 0.4, IssueUtil: 0.9}))
	}
	if d.TLP[0] >= config.MaxTLP {
		t.Fatalf("TLP %d did not drop under heavy lost locality", d.TLP[0])
	}
}

func TestCCWSRecoversWarps(t *testing.T) {
	m := NewCCWS()
	m.Initial(1)
	var d Decision
	// Throttle hard first.
	for i := 0; i < 20; i++ {
		d = m.OnSample(sample(AppSample{VTARate: 0.9}))
	}
	low := d.TLP[0]
	// Locality recovered and issue slots idle: release warps.
	for i := 0; i < 3*m.Hysteresis; i++ {
		d = m.OnSample(sample(AppSample{VTARate: 0.0, IssueUtil: 0.2}))
	}
	if d.TLP[0] <= low {
		t.Fatalf("TLP stuck at %d after locality recovered", d.TLP[0])
	}
}

func TestCCWSHoldsWhenHealthy(t *testing.T) {
	m := NewCCWS()
	d := m.Initial(1)
	start := d.TLP[0]
	for i := 0; i < 10; i++ {
		d = m.OnSample(sample(AppSample{VTARate: 0.08, IssueUtil: 0.95}))
	}
	if d.TLP[0] != start {
		t.Fatalf("CCWS moved from %d to %d in the healthy band", start, d.TLP[0])
	}
}

func TestCCWSWithoutDetectorHolds(t *testing.T) {
	// VTARate stays 0 when the victim-tag detector is off and the app is
	// busy: CCWS must not oscillate.
	m := NewCCWS()
	d := m.Initial(1)
	start := d.TLP[0]
	for i := 0; i < 10; i++ {
		d = m.OnSample(sample(AppSample{VTARate: 0, IssueUtil: 0.95}))
	}
	if d.TLP[0] != start {
		t.Fatalf("CCWS drifted without a detector: %d -> %d", start, d.TLP[0])
	}
}

func TestCCWSPerApp(t *testing.T) {
	m := NewCCWS()
	m.Initial(2)
	var d Decision
	for i := 0; i < 6; i++ {
		d = m.OnSample(sample(
			AppSample{App: 0, VTARate: 0.5},
			AppSample{App: 1, VTARate: 0.0, IssueUtil: 0.9},
		))
	}
	if d.TLP[0] >= d.TLP[1] {
		t.Fatalf("apps not handled independently: %v", d.TLP)
	}
	if m.Name() != "++CCWS" {
		t.Fatal("name")
	}
}
