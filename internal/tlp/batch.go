package tlp

import "ebm/internal/config"

// Batch implements a thread-batching policy in the spirit of Li et al.'s
// throughput-oriented thread batching: instead of every application
// holding a mid-level warp allocation all the time, the applications take
// turns as the "batched" one — the active application runs at a high TLP
// for a fixed number of sampling windows while the others idle at a low
// TLP, then the turn rotates. Concentrating the warp budget on one
// application at a time keeps its cache footprint and row-buffer locality
// intact (the property thread batching exploits), at the cost of latency
// fairness — which is exactly the trade-off the paper's comparison column
// is meant to expose.
type Batch struct {
	// Period is how many sampling windows one application stays active
	// before the turn rotates.
	Period int
	// Hi is the active application's TLP; Lo is everyone else's.
	Hi int
	Lo int

	win uint64 // completed sampling windows since Initial
	cur Decision
}

// NewBatch returns the thread-batching policy with its default knobs:
// 8-window turns, the full warp budget for the active application, and a
// trickle of 2 warps for the parked ones (enough to keep their kernels
// making forward progress between turns).
func NewBatch() *Batch {
	return &Batch{Period: 8, Hi: config.MaxTLP, Lo: 2}
}

// Name implements Manager.
func (b *Batch) Name() string { return "++Batch" }

// decide computes the rotation's decision for the current window count.
func (b *Batch) decide(numApps int) Decision {
	d := NewDecision(numApps, b.Lo)
	if numApps > 0 {
		active := int(b.win/uint64(b.Period)) % numApps
		d.TLP[active] = b.Hi
	}
	return d
}

// Initial implements Manager: application 0 owns the first turn.
func (b *Batch) Initial(numApps int) Decision {
	b.win = 0
	b.cur = b.decide(numApps)
	return b.cur.Clone()
}

// OnSample implements Manager: advance the window clock and rotate the
// active application every Period windows.
func (b *Batch) OnSample(s Sample) Decision {
	if b.cur.TLP == nil {
		b.Initial(len(s.Apps))
	}
	b.win++
	b.cur = b.decide(len(s.Apps))
	return b.cur.Clone()
}
