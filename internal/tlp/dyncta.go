package tlp

import "ebm/internal/config"

// DynCTA implements the per-application dynamic TLP modulation baseline in
// the spirit of DynCTA (Kayiran et al.): each application independently
// monitors its own latency-tolerance signals — how often the core sits
// idle with warps blocked on memory, and how well the issue slots are
// utilized — and nudges its own TLP up or down one level accordingly. The
// defining property the paper criticizes is preserved: the heuristic uses
// only the application's local signals and is oblivious to co-runners'
// shared-resource consumption.
type DynCTA struct {
	// HighMemStall: above this fraction of memory-stalled idle cycles the
	// application is deemed memory-saturated and TLP is decreased.
	HighMemStall float64
	// LowMemStall / LowUtil: below HighMemStall, if issue utilization is
	// below LowUtil, more warps could help hide latency and TLP is
	// increased.
	LowMemStall float64
	LowUtil     float64

	// Hysteresis: consecutive windows agreeing before a move is made.
	Hysteresis int

	votes []int // + for up, - for down, per app
	cur   Decision
}

// NewDynCTA returns the ++DynCTA policy with the default thresholds.
func NewDynCTA() *DynCTA {
	return &DynCTA{
		HighMemStall: 0.5,
		LowMemStall:  0.25,
		LowUtil:      0.8,
		Hysteresis:   2,
	}
}

// Name implements Manager.
func (d *DynCTA) Name() string { return "++DynCTA" }

// Initial implements Manager: DynCTA starts from a mid TLP and adapts.
func (d *DynCTA) Initial(numApps int) Decision {
	d.votes = make([]int, numApps)
	d.cur = NewDecision(numApps, config.TLPLevels[len(config.TLPLevels)/2])
	return d.cur.Clone()
}

// OnSample implements Manager.
func (d *DynCTA) OnSample(s Sample) Decision {
	if d.votes == nil {
		d.Initial(len(s.Apps))
	}
	for i := range s.Apps {
		a := &s.Apps[i]
		idx := config.LevelIndex(d.cur.TLP[i])
		if idx < 0 {
			idx = len(config.TLPLevels) - 1
		}
		switch {
		case a.MemStallFrac > d.HighMemStall:
			if d.votes[i] > 0 {
				d.votes[i] = 0
			}
			d.votes[i]--
		case a.MemStallFrac < d.LowMemStall && a.IssueUtil < d.LowUtil:
			if d.votes[i] < 0 {
				d.votes[i] = 0
			}
			d.votes[i]++
		default:
			d.votes[i] = 0
		}
		if d.votes[i] <= -d.Hysteresis && idx > 0 {
			idx--
			d.votes[i] = 0
		} else if d.votes[i] >= d.Hysteresis && idx < len(config.TLPLevels)-1 {
			idx++
			d.votes[i] = 0
		}
		d.cur.TLP[i] = config.TLPLevels[idx]
	}
	return d.cur.Clone()
}
