package tlp

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Stater is implemented by managers whose internal decision state can be
// captured into and restored from an opaque byte string, which is what
// lets a simulation be checkpointed mid-run and forked. A manager that
// does not implement Stater cannot be checkpointed; the simulator reports
// that as a snapshot error and callers degrade to cold execution.
//
// StateBytes must not mutate the manager, and SetStateBytes must leave a
// freshly Initial()-ed manager in a state that continues bit-identically
// to the captured one.
type Stater interface {
	StateBytes() ([]byte, error)
	SetStateBytes(b []byte) error
}

// EncodeState gob-encodes a manager state mirror (shared helper for the
// Stater implementations here and in internal/core).
func EncodeState(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeState gob-decodes a manager state mirror.
func DecodeState(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// StateBytes implements Stater: static policies carry no mutable state.
func (s *Static) StateBytes() ([]byte, error) { return nil, nil }

// SetStateBytes implements Stater.
func (s *Static) SetStateBytes(b []byte) error {
	if len(b) != 0 {
		return fmt.Errorf("tlp: static manager restored with %d bytes of state", len(b))
	}
	return nil
}

// modState mirrors the mutable fields shared by the vote-hysteresis
// managers (DynCTA, CCWS).
type modState struct {
	Votes  []int
	TLP    []int
	Bypass []bool
}

// StateBytes implements Stater.
func (d *DynCTA) StateBytes() ([]byte, error) {
	return EncodeState(modState{Votes: d.votes, TLP: d.cur.TLP, Bypass: d.cur.BypassL1})
}

// SetStateBytes implements Stater.
func (d *DynCTA) SetStateBytes(b []byte) error {
	var st modState
	if err := DecodeState(b, &st); err != nil {
		return fmt.Errorf("tlp: dyncta state: %w", err)
	}
	d.votes = st.Votes
	d.cur = Decision{TLP: st.TLP, BypassL1: st.Bypass}
	return nil
}

// StateBytes implements Stater.
func (c *CCWS) StateBytes() ([]byte, error) {
	return EncodeState(modState{Votes: c.votes, TLP: c.cur.TLP, Bypass: c.cur.BypassL1})
}

// SetStateBytes implements Stater.
func (c *CCWS) SetStateBytes(b []byte) error {
	var st modState
	if err := DecodeState(b, &st); err != nil {
		return fmt.Errorf("tlp: ccws state: %w", err)
	}
	c.votes = st.Votes
	c.cur = Decision{TLP: st.TLP, BypassL1: st.Bypass}
	return nil
}

// batchState mirrors Batch: the rotation clock plus the current decision.
type batchState struct {
	Win    uint64
	TLP    []int
	Bypass []bool
}

// StateBytes implements Stater.
func (b *Batch) StateBytes() ([]byte, error) {
	return EncodeState(batchState{Win: b.win, TLP: b.cur.TLP, Bypass: b.cur.BypassL1})
}

// SetStateBytes implements Stater.
func (b *Batch) SetStateBytes(bs []byte) error {
	var st batchState
	if err := DecodeState(bs, &st); err != nil {
		return fmt.Errorf("tlp: batch state: %w", err)
	}
	b.win = st.Win
	b.cur = Decision{TLP: st.TLP, BypassL1: st.Bypass}
	return nil
}

// StateBytes implements Stater: WRS shares the vote-hysteresis state
// shape of the modulating managers.
func (w *WRS) StateBytes() ([]byte, error) {
	return EncodeState(modState{Votes: w.votes, TLP: w.cur.TLP, Bypass: w.cur.BypassL1})
}

// SetStateBytes implements Stater.
func (w *WRS) SetStateBytes(b []byte) error {
	var st modState
	if err := DecodeState(b, &st); err != nil {
		return fmt.Errorf("tlp: wrs state: %w", err)
	}
	w.votes = st.Votes
	w.cur = Decision{TLP: st.TLP, BypassL1: st.Bypass}
	return nil
}

// modBypassState mirrors ModBypass: the wrapped modulator's state plus the
// bypass probation machine.
type modBypassState struct {
	Mod         []byte
	ProbeActive []bool
	Votes       []int
	Windows     []int
	TLP         []int
	Bypass      []bool
}

// StateBytes implements Stater.
func (m *ModBypass) StateBytes() ([]byte, error) {
	mod, err := m.mod.StateBytes()
	if err != nil {
		return nil, err
	}
	return EncodeState(modBypassState{
		Mod:         mod,
		ProbeActive: m.probeActive,
		Votes:       m.votes,
		Windows:     m.windows,
		TLP:         m.cur.TLP,
		Bypass:      m.cur.BypassL1,
	})
}

// SetStateBytes implements Stater.
func (m *ModBypass) SetStateBytes(b []byte) error {
	var st modBypassState
	if err := DecodeState(b, &st); err != nil {
		return fmt.Errorf("tlp: mod+bypass state: %w", err)
	}
	if err := m.mod.SetStateBytes(st.Mod); err != nil {
		return err
	}
	m.probeActive = st.ProbeActive
	m.votes = st.Votes
	m.windows = st.Windows
	m.cur = Decision{TLP: st.TLP, BypassL1: st.Bypass}
	return nil
}
