// Package tlp defines the interface between the simulator's sampling
// hardware and the TLP management policies, and implements the baseline
// policies the paper compares against: static per-application TLP
// (maxTLP, bestTLP and arbitrary combinations), DynCTA-style dynamic
// modulation, and the Mod+Bypass scheme (TLP modulation plus L1 bypassing
// for cache-insensitive applications).
//
// The paper's own mechanism (pattern-based searching over effective
// bandwidth) lives in internal/core and implements Manager too.
package tlp

import (
	"fmt"

	"ebm/internal/config"
)

// AppSample is one application's telemetry for one sampling window, as
// collected by the Fig. 8 hardware: L1 miss rate from a designated core,
// L2 miss rate and attained bandwidth from a designated memory partition
// (or machine-wide aggregates when designated sampling is disabled).
type AppSample struct {
	App    int
	TLP    int // TLP limit in effect during the window
	Bypass bool

	Insts  uint64
	Cycles uint64
	IPC    float64

	L1MR float64
	L2MR float64
	CMR  float64 // L1MR * L2MR
	BW   float64 // attained DRAM bandwidth, fraction of peak
	EB   float64 // BW / CMR

	IssueUtil    float64 // fraction of issue slots used
	MemStallFrac float64 // fraction of cycles idle with warps blocked on memory

	// VTARate is the fraction of L1 misses that hit the victim tag array
	// (lost intra-app locality); only populated when the simulator's
	// victim-tag detector is enabled (CCWS baseline).
	VTARate float64

	KernelRelaunched bool // a kernel boundary was crossed in this window
}

// Sample is the telemetry for one sampling window across all applications.
type Sample struct {
	Cycle   uint64 // end-of-window core cycle
	TotalBW float64
	Apps    []AppSample
}

// Decision is a manager's requested configuration. Slices are indexed by
// application.
type Decision struct {
	TLP      []int
	BypassL1 []bool
}

// NewDecision returns a Decision with every app at tlp and no bypassing.
func NewDecision(numApps, tlp int) Decision {
	d := Decision{TLP: make([]int, numApps), BypassL1: make([]bool, numApps)}
	for i := range d.TLP {
		d.TLP[i] = tlp
	}
	return d
}

// Clone deep-copies the decision.
func (d Decision) Clone() Decision {
	return Decision{
		TLP:      append([]int(nil), d.TLP...),
		BypassL1: append([]bool(nil), d.BypassL1...),
	}
}

// Equal reports whether two decisions request the same hardware state:
// TLP values are compared after clamping to the machine's level range
// (the warp schedulers cannot tell 25 from 24), and a nil BypassL1 equals
// an all-false one. The simulator uses it to skip no-op decision relays.
func (d Decision) Equal(o Decision) bool {
	if len(d.TLP) != len(o.TLP) {
		return false
	}
	for i := range d.TLP {
		if config.ClampToLevel(d.TLP[i]) != config.ClampToLevel(o.TLP[i]) {
			return false
		}
	}
	bypass := func(x Decision, i int) bool {
		return x.BypassL1 != nil && i < len(x.BypassL1) && x.BypassL1[i]
	}
	for i := range d.TLP {
		if bypass(d, i) != bypass(o, i) {
			return false
		}
	}
	return true
}

// String renders the decision for journals and logs, e.g.
// "tlp=[24 1]" or "tlp=[8 8] bypass=[tf]".
func (d Decision) String() string {
	anyBypass := false
	for _, b := range d.BypassL1 {
		anyBypass = anyBypass || b
	}
	if !anyBypass {
		return fmt.Sprintf("tlp=%v", d.TLP)
	}
	marks := make([]byte, 0, len(d.BypassL1))
	for _, b := range d.BypassL1 {
		if b {
			marks = append(marks, 't')
		} else {
			marks = append(marks, 'f')
		}
	}
	return fmt.Sprintf("tlp=%v bypass=[%s]", d.TLP, marks)
}

// Manager is a TLP management policy driven by the sampling hardware.
type Manager interface {
	// Name identifies the policy in reports.
	Name() string
	// Initial returns the configuration to start executing with.
	Initial(numApps int) Decision
	// OnSample is invoked at the end of every sampling window and returns
	// the configuration for the next window.
	OnSample(s Sample) Decision
}

// Static runs every application at a fixed TLP combination for the whole
// execution: it implements maxTLP, bestTLP, ++bestTLP, and the individual
// combinations enumerated by the exhaustive searches.
type Static struct {
	name   string
	tlps   []int
	bypass []bool
}

// NewStatic builds a static policy. bypass may be nil; when set it must
// match tlps element for element. The combination length is the policy's
// application count: it is validated here, once, instead of Initial
// silently padding a short list with maxTLP (or truncating a long one),
// which used to turn a malformed spec into a quietly different
// simulation.
func NewStatic(name string, tlps []int, bypass []bool) (*Static, error) {
	if len(tlps) == 0 {
		return nil, fmt.Errorf("tlp: static policy %q needs at least one TLP value", name)
	}
	if bypass != nil && len(bypass) != len(tlps) {
		return nil, fmt.Errorf("tlp: static policy %q has %d bypass values for %d TLP values",
			name, len(bypass), len(tlps))
	}
	return &Static{name: name, tlps: tlps, bypass: bypass}, nil
}

// NewMaxTLP returns the ++maxTLP policy for numApps applications.
func NewMaxTLP(numApps int) *Static {
	tlps := make([]int, numApps)
	for i := range tlps {
		tlps[i] = config.MaxTLP
	}
	return &Static{name: "++maxTLP", tlps: tlps}
}

// Name implements Manager.
func (s *Static) Name() string { return s.name }

// Initial implements Manager: the decision is exactly the constructed
// combination. A numApps that disagrees with the combination length is a
// construction-time error (NewStatic) and an engine-level one (sim.New
// rejects a wrong-length initial decision), so no padding happens here.
func (s *Static) Initial(numApps int) Decision {
	d := Decision{
		TLP:      append([]int(nil), s.tlps...),
		BypassL1: make([]bool, len(s.tlps)),
	}
	if s.bypass != nil {
		copy(d.BypassL1, s.bypass)
	}
	return d
}

// OnSample implements Manager: static policies never change.
func (s *Static) OnSample(sm Sample) Decision {
	return s.Initial(len(sm.Apps))
}

// String implements fmt.Stringer.
func (s *Static) String() string {
	return fmt.Sprintf("%s%v", s.name, s.tlps)
}
