package simcache

import (
	"context"
	"sync/atomic"
)

// The volatile flag rides the execution context that RunCached hands to
// its run closure. A layer that degrades the result nondeterministically
// — the policy sandbox falling back after a panic or a blown decision
// budget — marks the run volatile, and RunCached then skips persisting
// it: the cache must only ever hold the deterministic result the spec
// key promises.

type volatileKey struct{}

type volatileFlag struct{ v atomic.Bool }

// withVolatileFlag attaches a fresh flag for one execution.
func withVolatileFlag(ctx context.Context) (context.Context, *volatileFlag) {
	f := &volatileFlag{}
	return context.WithValue(ctx, volatileKey{}, f), f
}

// MarkVolatile flags the run owning ctx as degraded: its result is still
// returned to the caller but will not be persisted to the cache. No-op
// when ctx carries no flag (a run outside RunCached).
func MarkVolatile(ctx context.Context) {
	if f, ok := ctx.Value(volatileKey{}).(*volatileFlag); ok {
		f.v.Store(true)
	}
}

// Volatile reports whether MarkVolatile was called on ctx's run.
func Volatile(ctx context.Context) bool {
	f, ok := ctx.Value(volatileKey{}).(*volatileFlag)
	return ok && f.v.Load()
}
