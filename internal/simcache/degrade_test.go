package simcache

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"ebm/internal/faultinject"
	"ebm/internal/obs"
	"ebm/internal/resilience"
	"ebm/internal/runner"
	"ebm/internal/sim"
)

// captureWarnf redirects the degradation warnings into the test and
// restores stderr reporting afterwards.
func captureWarnf(t *testing.T) *[]string {
	t.Helper()
	var lines []string
	old := Warnf
	Warnf = func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	t.Cleanup(func() { Warnf = old })
	return &lines
}

// fastRetry keeps degradation tests quick: full attempts, microsecond
// sleeps.
func fastRetry() resilience.Policy {
	return resilience.Policy{Attempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
}

// flakyWriteHooks fails the first N CacheWrite calls, then heals.
type flakyWriteHooks struct {
	failures int
	calls    int
}

func (h *flakyWriteHooks) CacheRead(string) error { return nil }
func (h *flakyWriteHooks) CacheWrite(key string) error {
	h.calls++
	if h.calls <= h.failures {
		return fmt.Errorf("flaky write %d: %w", h.calls, faultinject.ErrInjected)
	}
	return nil
}
func (h *flakyWriteHooks) TaskStart(string)      {}
func (h *flakyWriteHooks) WindowBoundary(uint64) {}

// TestWriteFailureDegradesToDirectExecution simulates a persistently
// broken cache filesystem (the directory is replaced by a regular file,
// so every temp-file create fails like ENOSPC would): the run must still
// return its computed result, warn once, and count the failure — never
// abort.
func TestWriteFailureDegradesToDirectExecution(t *testing.T) {
	warns := captureWarnf(t)
	dir := filepath.Join(t.TempDir(), "cache")
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.Instrument(reg)
	mon := resilience.NewMonitor(reg, nil)
	c.SetResilience(fastRetry(), mon)

	// Break the cache medium out from under the handle.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	want := awkwardResult()
	got, err := RunCached(nil, c, nil, runner.PriGrid, testSpec(), func(context.Context) (sim.Result, error) {
		return want, nil
	})
	if err != nil {
		t.Fatalf("broken cache aborted the run: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("degraded run returned a different result")
	}
	if s := c.Stats(); s.WriteFails != 1 {
		t.Fatalf("WriteFails = %d, want 1", s.WriteFails)
	}
	if got := mon.CacheRetries.Value(); got != 2 {
		t.Fatalf("retries counted = %d, want Attempts-1 = 2", got)
	}
	if len(*warns) != 1 || !strings.Contains((*warns)[0], "not persisted") {
		t.Fatalf("warnings = %q, want one 'not persisted' warning", *warns)
	}
}

// TestReadOnlyCacheDirDegrades covers the chmod-0500 flavour of the same
// failure on systems where permissions bind (root bypasses them, so the
// test skips under euid 0 — the ENOTDIR variant above runs everywhere).
func TestReadOnlyCacheDirDegrades(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permissions do not bind")
	}
	warns := captureWarnf(t)
	dir := filepath.Join(t.TempDir(), "cache")
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.SetResilience(fastRetry(), nil)
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(dir, 0o755) })

	want := awkwardResult()
	got, err := RunCached(nil, c, nil, runner.PriGrid, testSpec(), func(context.Context) (sim.Result, error) {
		return want, nil
	})
	if err != nil {
		t.Fatalf("read-only cache aborted the run: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("degraded run returned a different result")
	}
	if s := c.Stats(); s.WriteFails != 1 {
		t.Fatalf("WriteFails = %d, want 1", s.WriteFails)
	}
	if len(*warns) != 1 {
		t.Fatalf("warnings = %q, want exactly one", *warns)
	}
}

// TestTransientWriteFailureHealedByRetry: the first write attempt fails,
// the backoff retry succeeds, and the entry lands on disk with no
// surfaced degradation.
func TestTransientWriteFailureHealedByRetry(t *testing.T) {
	warns := captureWarnf(t)
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mon := resilience.NewMonitor(reg, nil)
	c.SetHooks(&flakyWriteHooks{failures: 1})
	c.SetResilience(fastRetry(), mon)

	want := awkwardResult()
	if _, err := RunCached(nil, c, nil, runner.PriGrid, testSpec(), func(context.Context) (sim.Result, error) {
		return want, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := mon.CacheRetries.Value(); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
	if s := c.Stats(); s.WriteFails != 0 || s.Writes != 1 {
		t.Fatalf("stats = %+v, want the healed write persisted", s)
	}
	if len(*warns) != 0 {
		t.Fatalf("healed write still warned: %q", *warns)
	}
	if got, ok := c.Get(Key(testSpec())); !ok || !reflect.DeepEqual(got, want) {
		t.Fatal("healed entry not readable from disk")
	}
}

// TestInjectedReadErrorDegradesLikeCorruptEntry: a valid entry exists on
// disk, but the read fault makes it unreadable — the lookup must count a
// corrupt miss and fall through to direct execution.
func TestInjectedReadErrorDegradesLikeCorruptEntry(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key(testSpec())
	if err := c.Put(key, awkwardResult()); err != nil {
		t.Fatal(err)
	}
	c.SetHooks(faultinject.New(faultinject.Config{CacheReadErrProb: 1, CacheWriteErrProb: 1}))
	c.SetResilience(fastRetry(), nil)
	captureWarnf(t)

	executed := false
	if _, err := RunCached(nil, c, nil, runner.PriGrid, testSpec(), func(context.Context) (sim.Result, error) {
		executed = true
		return awkwardResult(), nil
	}); err != nil {
		t.Fatal(err)
	}
	if !executed {
		t.Fatal("unreadable entry did not fall through to direct execution")
	}
	s := c.Stats()
	if s.Corrupt == 0 || s.Misses == 0 {
		t.Fatalf("stats = %+v, want the injected read counted as a corrupt miss", s)
	}
}

// TestMidWriteInterruptLeavesRecoverableCache: a torn temp file and a
// truncated entry (what a kill mid-write leaves behind) must read as a
// miss, then be healed by the next run's atomic rewrite.
func TestMidWriteInterruptLeavesRecoverableCache(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key(testSpec())
	// A torn entry: valid JSON prefix, cut mid-stream.
	if err := os.WriteFile(c.Path(key), []byte(`{"schema":2,"key":"`), 0o644); err != nil {
		t.Fatal(err)
	}
	// An abandoned temp file from the interrupted writer.
	if err := os.WriteFile(filepath.Join(c.Dir(), key+".tmp123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := c.Get(key); ok {
		t.Fatal("torn entry served as a hit")
	}
	want := awkwardResult()
	got, err := RunCached(nil, c, nil, runner.PriGrid, testSpec(), func(context.Context) (sim.Result, error) {
		return want, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recovery run returned a different result")
	}
	if healed, ok := c.Get(key); !ok || !reflect.DeepEqual(healed, want) {
		t.Fatal("torn entry was not healed by the rewrite")
	}
}

// TestCancelledRunCountsRunsCancelled: a cancel surfaces ctx.Err, returns
// a zero result (nothing partial can ever be cached), and lands on the
// runs_cancelled counter.
func TestCancelledRunCountsRunsCancelled(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mon := resilience.NewMonitor(reg, nil)
	c.SetResilience(fastRetry(), mon)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res, err := RunCached(ctx, c, nil, runner.PriGrid, testSpec(), func(context.Context) (sim.Result, error) {
		t.Error("cancelled run executed")
		return sim.Result{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !reflect.DeepEqual(res, sim.Result{}) {
		t.Fatal("cancelled run returned a non-zero result")
	}
	if got := mon.RunsCancelled.Value(); got != 1 {
		t.Fatalf("runs_cancelled = %d, want 1", got)
	}
	if c.Len() != 0 {
		t.Fatal("cancelled run persisted an entry")
	}
}
