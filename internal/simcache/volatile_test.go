package simcache

import (
	"context"
	"reflect"
	"testing"

	"ebm/internal/runner"
	"ebm/internal/sim"
)

// A run that marks itself volatile (the policy sandbox degraded it) is
// returned to the caller but never persisted: a later identical request
// must re-execute and may then cache its clean result.
func TestVolatileRunSkipsPersist(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rs := testSpec()
	want := awkwardResult()

	got, err := RunCached(nil, c, nil, runner.PriEval, rs, func(ctx context.Context) (sim.Result, error) {
		MarkVolatile(ctx)
		if !Volatile(ctx) {
			t.Error("Volatile not visible inside the marked run")
		}
		return want, nil
	})
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("volatile run: %v %v", got, err)
	}
	if _, ok := c.Get(Key(rs)); ok {
		t.Fatal("volatile result was persisted")
	}
	if st := c.Stats(); st.Writes != 0 {
		t.Fatalf("volatile run counted %d writes", st.Writes)
	}

	// The clean re-run caches normally.
	if _, err := RunCached(nil, c, nil, runner.PriEval, rs, func(context.Context) (sim.Result, error) {
		return want, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(Key(rs)); !ok {
		t.Fatal("clean re-run did not persist")
	}
}

// MarkVolatile outside a RunCached execution is a safe no-op.
func TestMarkVolatileWithoutFlagIsNoop(t *testing.T) {
	ctx := context.Background()
	MarkVolatile(ctx)
	if Volatile(ctx) {
		t.Fatal("bare context reported volatile")
	}
}
