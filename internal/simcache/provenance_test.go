package simcache

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ebm/internal/faultinject"
	"ebm/internal/obs"
	"ebm/internal/runner"
	"ebm/internal/sim"
)

// openLedgered returns a cache with a provenance ledger attached, plus
// the ledger path for reading it back.
func openLedgered(t *testing.T) (*Cache, string) {
	t.Helper()
	dir := t.TempDir()
	c, err := Open(filepath.Join(dir, "simcache"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ledger.jsonl")
	l, err := obs.OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	c.SetLedger(l)
	return c, path
}

// TestRunCachedAppendsColdThenCachedRecords is the ledger's core
// contract: a cold run appends one "cold" record, and the warm replay of
// the exact same spec appends one "cached" record with the same
// fingerprint.
func TestRunCachedAppendsColdThenCachedRecords(t *testing.T) {
	c, path := openLedgered(t)
	rs := testSpec()
	want := awkwardResult()
	runs := 0
	stub := func(context.Context) (sim.Result, error) { runs++; return want, nil }

	r1, err := RunCached(context.Background(), c, nil, 0, rs, stub)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunCached(context.Background(), c, nil, 0, rs, stub)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("stub ran %d times, want 1", runs)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("warm replay diverged from the computed result")
	}

	recs, skipped, err := obs.ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(recs) != 2 {
		t.Fatalf("recs=%d skipped=%d, want 2/0", len(recs), skipped)
	}
	key := Key(rs)
	for i, r := range recs {
		if r.Fingerprint != key {
			t.Fatalf("record %d fingerprint %q, want %q", i, r.Fingerprint, key)
		}
		if r.CacheSchema != SchemaVersion || r.Scheme != rs.Scheme.String() || r.Apps != "BLK" {
			t.Fatalf("record %d = %+v", i, r)
		}
		if r.Cycles != want.Cycles || r.WallNs < 0 {
			t.Fatalf("record %d cost fields = %+v", i, r)
		}
	}
	if recs[0].Outcome != obs.OutcomeCold || recs[1].Outcome != obs.OutcomeCached {
		t.Fatalf("outcomes = %q,%q, want cold,cached", recs[0].Outcome, recs[1].Outcome)
	}
	// A warm ledger summarizes to zero cold work — the -explain line.
	s := obs.SummarizeLedger(recs[1:], 0)
	if s.Cold != 0 || s.Forked != 0 || s.Cached != 1 {
		t.Fatalf("warm summary = %+v", s)
	}
}

// TestProvenanceRecordsInjectedFaultsAndRetries pins the chaos-side
// contract deterministically: with every cache read and write failing,
// the run still completes, and its ledger record carries the injected
// fault labels and the retry count.
func TestProvenanceRecordsInjectedFaultsAndRetries(t *testing.T) {
	captureWarnf(t)
	c, path := openLedgered(t)
	c.SetHooks(faultinject.New(faultinject.Config{
		Seed: 1, CacheReadErrProb: 1, CacheWriteErrProb: 1,
	}))
	c.SetResilience(fastRetry(), nil)

	res, err := RunCached(context.Background(), c, nil, 0, testSpec(),
		func(context.Context) (sim.Result, error) { return awkwardResult(), nil })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, awkwardResult()) {
		t.Fatal("injected faults changed the returned result")
	}

	recs, _, err := obs.ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("%d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Outcome != obs.OutcomeCold {
		t.Fatalf("outcome = %q, want cold", r.Outcome)
	}
	// fastRetry makes 3 persist attempts: 2 retried failures, then the
	// exhausted policy degrades to an unpersisted result.
	if r.Retries != 2 {
		t.Fatalf("retries = %d, want 2", r.Retries)
	}
	faults := map[string]int{}
	for _, f := range r.Faults {
		faults[f]++
	}
	// Two failed reads (the outer lookup and the pre-execution re-check)
	// and one exhausted write.
	if faults["cache-read"] != 2 || faults["cache-write"] != 1 {
		t.Fatalf("faults = %v", r.Faults)
	}
}

// TestDedupWaiterRecordsCached pins the singleflight attribution rule:
// when two identical runs race, exactly one record reads "cold" (the
// execution) and the other reads "cached" (the waiter shared it).
func TestDedupWaiterRecordsCached(t *testing.T) {
	c, path := openLedgered(t)
	pool := runner.New(2)
	defer pool.Close()
	rs := testSpec()

	started := make(chan struct{})
	release := make(chan struct{})
	run := func(context.Context) (sim.Result, error) {
		close(started)
		<-release
		return awkwardResult(), nil
	}

	errs := make(chan error, 2)
	go func() {
		_, err := RunCached(context.Background(), c, pool, runner.PriGrid, rs, run)
		errs <- err
	}()
	<-started // the first call is executing; the second must dedup onto it
	go func() {
		_, err := RunCached(context.Background(), c, pool, runner.PriGrid, rs,
			func(context.Context) (sim.Result, error) {
				t.Error("dedup waiter executed its own run")
				return sim.Result{}, nil
			})
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter attach to the inflight key
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	recs, _, err := obs.ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	got := map[string]int{}
	for _, r := range recs {
		got[r.Outcome]++
	}
	if got[obs.OutcomeCold] != 1 || got[obs.OutcomeCached] != 1 {
		t.Fatalf("outcomes = %v, want one cold + one cached", got)
	}
}

// TestNoLedgerNoRecords: without SetLedger the trail machinery stays off
// and RunCached appends nothing anywhere.
func TestNoLedgerNoRecords(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(filepath.Join(dir, "simcache"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCached(context.Background(), c, nil, 0, testSpec(),
		func(ctx context.Context) (sim.Result, error) {
			if obs.TrailFrom(ctx) != nil {
				t.Error("trail attached without a ledger")
			}
			return awkwardResult(), nil
		}); err != nil {
		t.Fatal(err)
	}
	if c.Ledger() != nil {
		t.Fatal("ledger appeared from nowhere")
	}
}
