package simcache

// Multi-process sharing: the cache directory is the distributed sweep's
// shared result store, so two OS processes writing it concurrently —
// including racing puts to the SAME keys — must never produce a torn
// entry, and each process must be able to read what the other wrote.
// The children are real processes (the test binary re-executed), not
// goroutines: this exercises rename atomicity across process
// boundaries, which no in-process test can.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"ebm/internal/sim"
)

const (
	sharedDirEnv = "EBM_SHARED_CACHE_DIR"
	sharedIDEnv  = "EBM_SHARED_CACHE_ID"
	sharedKeys   = 40
)

func sharedResult(mark, i uint64) sim.Result {
	return sim.Result{
		Cycles:  mark*1_000_000 + i,
		TotalBW: float64(i) * 0.03125,
		Windows: mark,
		Apps:    []sim.AppResult{{Name: "proc", Insts: i, IPC: float64(mark) + float64(i)/64}},
	}
}

// TestHelperSharedCacheWriter is not a test: it is the body of the
// child processes spawned by TestSharedCacheSurvivesConcurrentProcesses.
// Each child floods the shared directory with contended and private
// keys, then reads its sibling's private keys back — proving
// cross-process visibility, not just own-write readback.
func TestHelperSharedCacheWriter(t *testing.T) {
	dir := os.Getenv(sharedDirEnv)
	if dir == "" {
		t.Skip("helper for TestSharedCacheSurvivesConcurrentProcesses")
	}
	id := os.Getenv(sharedIDEnv)
	mark := uint64(1)
	other := "B"
	if id == "B" {
		mark, other = 2, "A"
	}
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < sharedKeys; i++ {
		// Both processes race on the contended keys with different
		// payloads; the atomic rename means one whole payload wins.
		if err := c.Put(fmt.Sprintf("contended-%03d", i), sharedResult(mark, i)); err != nil {
			t.Fatalf("contended put %d: %v", i, err)
		}
		if err := c.Put(fmt.Sprintf("own-%s-%03d", id, i), sharedResult(mark, i)); err != nil {
			t.Fatalf("own put %d: %v", i, err)
		}
	}
	// Read the sibling's writes. It may still be mid-flood, so poll for
	// its last key before sweeping them all.
	lastKey := fmt.Sprintf("own-%s-%03d", other, sharedKeys-1)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, ok := c.Get(lastKey); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sibling process %s never finished writing", other)
		}
		time.Sleep(5 * time.Millisecond)
	}
	otherMark := uint64(3) - mark
	for i := uint64(0); i < sharedKeys; i++ {
		res, ok := c.Get(fmt.Sprintf("own-%s-%03d", other, i))
		if !ok {
			t.Fatalf("sibling entry own-%s-%03d unreadable", other, i)
		}
		if want := sharedResult(otherMark, i); !equalResults(res, want) {
			t.Fatalf("sibling entry %d round-tripped as %+v", i, res)
		}
	}
}

func equalResults(a, b sim.Result) bool {
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	return string(ab) == string(bb)
}

func TestSharedCacheSurvivesConcurrentProcesses(t *testing.T) {
	dir := t.TempDir()
	procs := make([]*exec.Cmd, 0, 2)
	for _, id := range []string{"A", "B"} {
		cmd := exec.Command(os.Args[0], "-test.run=TestHelperSharedCacheWriter$", "-test.count=1", "-test.v")
		cmd.Env = append(os.Environ(), sharedDirEnv+"="+dir, sharedIDEnv+"="+id)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, cmd)
	}
	for i, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("writer process %d failed: %v", i, err)
		}
	}

	// Every entry on disk must be whole: correct schema, key matching
	// the filename, unmarshalable result. Contended keys must carry one
	// writer's payload in its entirety — never a blend.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := 0
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		files++
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("unreadable entry %s: %v", e.Name(), err)
		}
		var entry struct {
			Schema int        `json:"schema"`
			Key    string     `json:"key"`
			Result sim.Result `json:"result"`
		}
		if err := json.Unmarshal(b, &entry); err != nil {
			t.Fatalf("torn entry %s: %v", e.Name(), err)
		}
		if entry.Schema != SchemaVersion {
			t.Fatalf("entry %s schema %d, want %d", e.Name(), entry.Schema, SchemaVersion)
		}
	}
	if want := 3 * sharedKeys; files != want {
		t.Fatalf("%d entries on disk, want %d (contended + two private sets)", files, want)
	}

	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < sharedKeys; i++ {
		res, ok := c.Get(fmt.Sprintf("contended-%03d", i))
		if !ok {
			t.Fatalf("contended key %d missing after the race", i)
		}
		mark := res.Windows
		if mark != 1 && mark != 2 {
			t.Fatalf("contended key %d carries mark %d: not either writer's whole payload", i, mark)
		}
		if want := sharedResult(mark, i); !equalResults(res, want) {
			t.Fatalf("contended key %d is a blend of writers: %+v", i, res)
		}
	}
}
