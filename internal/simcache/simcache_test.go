package simcache

import (
	"encoding/json"
	"math"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/obs"
	"ebm/internal/runner"
	"ebm/internal/sim"
	"ebm/internal/tlp"
)

func testSpec() RunSpec {
	app, _ := kernel.ByName("BLK")
	return RunSpec{
		Config:       config.Default(),
		Apps:         []kernel.Params{app},
		ManagerID:    "static[4]",
		TotalCycles:  60_000,
		WarmupCycles: 10_000,
	}
}

// awkwardResult exercises float values whose decimal rendering must
// round-trip to the exact same bits.
func awkwardResult() sim.Result {
	return sim.Result{
		Cycles:  1 << 62, // above 2^53: must not pass through float64
		TotalBW: 0.1 + 0.2,
		Windows: 123,
		Apps: []sim.AppResult{
			{
				Name: "BLK", Insts: 987654321987654321, IPC: 1.0 / 3.0,
				L1MR: math.Nextafter(0.5, 1), L2MR: 1e-17, CMR: 0.30000000000000004,
				BW: 2.0 / 7.0, EB: math.SmallestNonzeroFloat64,
				RowHitRate: 0.9999999999999999, AvgLatency: 12345.6789,
				MemStallFrac: 0.1, IssueUtil: 0.25, AvgTLP: 23.999999999999996,
				FinalTLP: 24, Kernels: 42,
			},
		},
	}
}

func TestKeyStabilityAndInvalidation(t *testing.T) {
	base := testSpec()
	k := base.Key()
	if k != testSpec().Key() {
		t.Fatal("key not stable for identical specs")
	}
	if len(k) != 16 {
		t.Fatalf("key %q not 16 hex digits", k)
	}

	mutations := map[string]func(*RunSpec){
		"config":        func(s *RunSpec) { s.Config.L2MSHRs = 999 },
		"total cycles":  func(s *RunSpec) { s.TotalCycles++ },
		"warmup cycles": func(s *RunSpec) { s.WarmupCycles++ },
		"manager":       func(s *RunSpec) { s.ManagerID = "static[8]" },
		"apps":          func(s *RunSpec) { s.Apps[0].Rm += 0.01 },
		"window":        func(s *RunSpec) { s.WindowCycles = 777 },
		"sampling":      func(s *RunSpec) { s.DesignatedSampling = true },
		"cores":         func(s *RunSpec) { s.CoresPerApp = []int{30} },
		"victim tags":   func(s *RunSpec) { s.VictimTags = 1024 },
		"l2 ways":       func(s *RunSpec) { s.L2WayPartition = [][]bool{{true}} },
	}
	for name, mutate := range mutations {
		s := testSpec()
		mutate(&s)
		if s.Key() == k {
			t.Errorf("key insensitive to %s change", name)
		}
	}

	// A schema bump must change every key even for identical specs.
	bumped := testSpec()
	bumped.Schema = SchemaVersion + 1
	if HashJSON(bumped) == k {
		t.Fatal("key insensitive to schema version")
	}
}

func TestSpecFromOptions(t *testing.T) {
	app, _ := kernel.ByName("TRD")
	o := sim.Options{
		Config:             config.Default(),
		Apps:               []kernel.Params{app},
		Manager:            tlp.NewStatic("static[8]", []int{8}, nil),
		TotalCycles:        50_000,
		WarmupCycles:       5_000,
		WindowCycles:       2_500,
		DesignatedSampling: true,
		VictimTags:         64,
	}
	s := Spec(o)
	if s.ManagerID != "static[8]" || s.TotalCycles != 50_000 || s.VictimTags != 64 {
		t.Fatalf("spec %+v lost options", s)
	}
	if Spec(sim.Options{Apps: o.Apps}).ManagerID != "++maxTLP" {
		t.Fatal("nil manager not keyed as the engine default")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Spec accepted a hooked run")
		}
	}()
	o.OnWindow = func(tlp.Sample) {}
	Spec(o)
}

func TestPutGetBitIdentical(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	orig := awkwardResult()
	if err := c.Put("k1", orig); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("k1")
	if !ok {
		t.Fatal("miss after put")
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip changed the result:\n%+v\n%+v", orig, got)
	}
	// Belt and braces: the floats must agree at the bit level, not just
	// under ==.
	pairs := [][2]float64{
		{orig.TotalBW, got.TotalBW},
		{orig.Apps[0].IPC, got.Apps[0].IPC},
		{orig.Apps[0].L1MR, got.Apps[0].L1MR},
		{orig.Apps[0].EB, got.Apps[0].EB},
		{orig.Apps[0].AvgTLP, got.Apps[0].AvgTLP},
	}
	for i, p := range pairs {
		if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
			t.Errorf("pair %d: %x != %x", i, math.Float64bits(p[0]), math.Float64bits(p[1]))
		}
	}
	if s := c.Stats(); s.Hits != 1 || s.Writes != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCorruptEntriesAreMisses(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", awkwardResult()); err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"truncated":      []byte(`{"schema":1,"key":"k","result":{"Cyc`),
		"garbage":        []byte("\x00\x01\x02 not json"),
		"empty":          {},
		"wrong key":      mustJSON(entry{Schema: SchemaVersion, Key: "other", Result: awkwardResult()}),
		"foreign schema": mustJSON(entry{Schema: SchemaVersion + 1, Key: "k", Result: awkwardResult()}),
	}
	for name, data := range cases {
		if err := os.WriteFile(c.Path("k"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get("k"); ok {
			t.Errorf("%s entry served as a hit", name)
		}
	}
	if s := c.Stats(); s.Corrupt != uint64(len(cases)) {
		t.Fatalf("corrupt count %d, want %d", s.Corrupt, len(cases))
	}

	// RunCached falls back to recompute and heals the entry.
	ran := 0
	res, err := RunCached(c, nil, runner.PriGrid, testSpec(), func() (sim.Result, error) {
		ran++
		return awkwardResult(), nil
	})
	if err != nil || ran != 1 {
		t.Fatalf("recompute: err %v, ran %d", err, ran)
	}
	if got, ok := c.Get(testSpec().Key()); !ok || !reflect.DeepEqual(got, res) {
		t.Fatal("healed entry missing or different")
	}
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

func TestRunCachedHitSkipsPoolAndRun(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	want := awkwardResult()
	if err := c.Put(spec.Key(), want); err != nil {
		t.Fatal(err)
	}
	got, err := RunCached(c, nil, runner.PriEval, spec, func() (sim.Result, error) {
		t.Fatal("run executed despite a valid cache entry")
		return sim.Result{}, nil
	})
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("hit path: %v %v", got, err)
	}
}

func TestRunCachedDedupsConcurrentIdenticalRuns(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.New(4)
	defer pool.Close()
	spec := testSpec()
	var execs atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := RunCached(c, pool, runner.PriGrid, spec, func() (sim.Result, error) {
				execs.Add(1)
				<-gate
				return awkwardResult(), nil
			})
			if err != nil || len(res.Apps) != 1 {
				t.Errorf("RunCached: %v %v", res, err)
			}
		}()
	}
	for pool.Stats().Deduped+pool.Stats().Ran < 5 {
		// Wait until five submissions have either attached or queued
		// behind the gated execution (cold Gets all miss first).
		if execs.Load() > 1 {
			break
		}
	}
	close(gate)
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Fatalf("%d executions for identical specs, want 1", n)
	}
}

func TestNilCacheIsSafe(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	if err := c.Put("k", sim.Result{}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || c.Dir() != "" || c.Stats() != (Stats{}) {
		t.Fatal("nil cache accessors")
	}
	c.Instrument(obs.NewRegistry()) // must not panic
	ran := 0
	if _, err := RunCached(c, nil, runner.PriGrid, testSpec(), func() (sim.Result, error) {
		ran++
		return sim.Result{}, nil
	}); err != nil || ran != 1 {
		t.Fatalf("uncached run: %v ran=%d", err, ran)
	}
}

func TestInstrumentCounters(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.Instrument(reg)
	c.Get("absent")
	c.Put("k", sim.Result{})
	c.Get("k")
	if v := reg.Counter("ebm_simcache_hits_total", "").Value(); v != 1 {
		t.Fatalf("hits %d", v)
	}
	if v := reg.Counter("ebm_simcache_misses_total", "").Value(); v != 1 {
		t.Fatalf("misses %d", v)
	}
	if v := reg.Counter("ebm_simcache_writes_total", "").Value(); v != 1 {
		t.Fatalf("writes %d", v)
	}
}

func TestLenCountsEntries(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", sim.Result{})
	c.Put("b", sim.Result{})
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

// TestRealRunBitIdentityThroughCache is the end-to-end determinism
// guarantee: an actual simulation's cached bytes decode to exactly the
// result a fresh computation returns.
func TestRealRunBitIdentityThroughCache(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.NumMemPartitions = 4
	app, _ := kernel.ByName("BFS")
	run := func() (sim.Result, error) {
		s, err := sim.New(sim.Options{
			Config:      cfg,
			Apps:        []kernel.Params{app},
			Manager:     tlp.NewStatic("static[4]", []int{4}, nil),
			TotalCycles: 10_000, WarmupCycles: 2_000,
		})
		if err != nil {
			return sim.Result{}, err
		}
		return s.Run(), nil
	}
	fresh1, err := run()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{Config: cfg, Apps: []kernel.Params{app},
		ManagerID: "static[4]", TotalCycles: 10_000, WarmupCycles: 2_000}
	pool := runner.New(2)
	defer pool.Close()
	cached, err := RunCached(c, pool, runner.PriGrid, spec, run)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunCached(c, pool, runner.PriGrid, spec, func() (sim.Result, error) {
		t.Fatal("warm lookup re-simulated")
		return sim.Result{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh1, cached) || !reflect.DeepEqual(cached, warm) {
		t.Fatalf("cached result differs from fresh computation:\nfresh %+v\nwarm  %+v", fresh1, warm)
	}
}
