package simcache

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/obs"
	"ebm/internal/runner"
	"ebm/internal/sim"
	"ebm/internal/spec"
)

func testSpec() spec.RunSpec {
	app, _ := kernel.ByName("BLK")
	return spec.RunSpec{
		Config:       config.Default(),
		Apps:         []kernel.Params{app},
		Scheme:       spec.Static([]int{4}, nil),
		TotalCycles:  60_000,
		WarmupCycles: 10_000,
	}
}

// awkwardResult exercises float values whose decimal rendering must
// round-trip to the exact same bits.
func awkwardResult() sim.Result {
	return sim.Result{
		Cycles:  1 << 62, // above 2^53: must not pass through float64
		TotalBW: 0.1 + 0.2,
		Windows: 123,
		Apps: []sim.AppResult{
			{
				Name: "BLK", Insts: 987654321987654321, IPC: 1.0 / 3.0,
				L1MR: math.Nextafter(0.5, 1), L2MR: 1e-17, CMR: 0.30000000000000004,
				BW: 2.0 / 7.0, EB: math.SmallestNonzeroFloat64,
				RowHitRate: 0.9999999999999999, AvgLatency: 12345.6789,
				MemStallFrac: 0.1, IssueUtil: 0.25, AvgTLP: 23.999999999999996,
				FinalTLP: 24, Kernels: 42,
			},
		},
	}
}

func TestKeyStabilityAndInvalidation(t *testing.T) {
	base := testSpec()
	k := Key(base)
	if k != Key(testSpec()) {
		t.Fatal("key not stable for identical specs")
	}
	if len(k) != 16 {
		t.Fatalf("key %q not 16 hex digits", k)
	}

	mutations := map[string]func(*spec.RunSpec){
		"config":        func(s *spec.RunSpec) { s.Config.L2MSHRs = 999 },
		"total cycles":  func(s *spec.RunSpec) { s.TotalCycles++ },
		"warmup cycles": func(s *spec.RunSpec) { s.WarmupCycles++ },
		"scheme combo":  func(s *spec.RunSpec) { s.Scheme = spec.Static([]int{8}, nil) },
		"scheme kind":   func(s *spec.RunSpec) { s.Scheme = spec.DynCTA() },
		"scheme knob": func(s *spec.RunSpec) {
			s.Scheme = spec.CCWS()
			s.Scheme.CCWS.HighVTA = 0.2
		},
		"apps":        func(s *spec.RunSpec) { s.Apps[0].Rm += 0.01 },
		"window":      func(s *spec.RunSpec) { s.WindowCycles = 777 },
		"sampling":    func(s *spec.RunSpec) { s.DesignatedSampling = true },
		"cores":       func(s *spec.RunSpec) { s.CoresPerApp = []int{30} },
		"victim tags": func(s *spec.RunSpec) { s.VictimTags = 1024 },
		"l2 ways":     func(s *spec.RunSpec) { s.L2WayPartition = [][]bool{{true}} },
	}
	for name, mutate := range mutations {
		s := testSpec()
		mutate(&s)
		if Key(s) == k {
			t.Errorf("key insensitive to %s change", name)
		}
	}

	// A schema bump must change every key even for identical specs.
	bumped := keyEnvelope{Schema: SchemaVersion + 1, Run: testSpec().Canonical()}
	if HashJSON(bumped) == k {
		t.Fatal("key insensitive to schema version")
	}
}

// TestKeyGolden pins the cache keys of representative runs. A failure
// here means existing on-disk caches silently invalidated — if the key
// change is intentional (engine behaviour, canonical form, or entry
// layout changed), bump SchemaVersion in the same commit and repin.
func TestKeyGolden(t *testing.T) {
	app, _ := kernel.ByName("BLK")
	base := func(sch spec.SchemeSpec) spec.RunSpec {
		return spec.RunSpec{
			Config:       config.Default(),
			Apps:         []kernel.Params{app},
			Scheme:       sch,
			TotalCycles:  60_000,
			WarmupCycles: 10_000,
		}
	}
	ccwsKnobbed := spec.CCWS()
	ccwsKnobbed.CCWS.HighVTA = 0.2
	golden := []struct {
		name string
		rs   spec.RunSpec
		key  string
	}{
		{"static", base(spec.Static([]int{4}, nil)), "7685589eb6dadc03"},
		{"maxtlp", base(spec.MaxTLP()), "9e6f84e2908c386b"},
		{"dyncta", base(spec.DynCTA()), "0fd73e0024d3e7ce"},
		{"ccws knobbed", base(ccwsKnobbed), "f08b59db0d893673"},
		{"pbs-ws", base(spec.PBS(0)), "9fe7f23833a9d3ba"},
	}
	for _, g := range golden {
		if k := Key(g.rs); k != g.key {
			t.Errorf("%s: key %s, want %s (did the canonical form or schema change without a SchemaVersion bump?)", g.name, k, g.key)
		}
	}
}

// TestKeyCanonicalEquivalence pins which distinct requests are supposed
// to share a cache entry: aliases, labels, and default-stated knobs must
// not fragment the cache.
func TestKeyCanonicalEquivalence(t *testing.T) {
	base := testSpec()
	k := Key(base)

	// A display label is not part of the run's identity.
	labeled := base
	labeled.Scheme = spec.Labeled("alone@4", []int{4}, nil)
	if Key(labeled) != k {
		t.Error("label changed the key")
	}

	// A resolved bestTLP executes as the static combination it names.
	best := base
	best.Scheme = spec.BestTLP([]int{4})
	if Key(best) != k {
		t.Error("resolved besttlp keyed differently from its static combination")
	}

	// maxTLP is the static all-MaxTLP combination.
	mx := base
	mx.Scheme = spec.MaxTLP()
	st := base
	st.Scheme = spec.Static([]int{config.MaxTLP}, nil)
	if Key(mx) != Key(st) {
		t.Error("maxtlp keyed differently from static[MaxTLP]")
	}

	// Knobs stated at their defaults are the defaults.
	implicit := base
	implicit.Scheme = spec.CCWS()
	explicit := base
	explicit.Scheme = spec.CCWS()
	explicit.Scheme.CCWS.HighVTA = 0.15 // the default, stated
	if Key(implicit) != Key(explicit) {
		t.Error("default-valued knob changed the key")
	}
}

func TestPutGetBitIdentical(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	orig := awkwardResult()
	if err := c.Put("k1", orig); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("k1")
	if !ok {
		t.Fatal("miss after put")
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip changed the result:\n%+v\n%+v", orig, got)
	}
	// Belt and braces: the floats must agree at the bit level, not just
	// under ==.
	pairs := [][2]float64{
		{orig.TotalBW, got.TotalBW},
		{orig.Apps[0].IPC, got.Apps[0].IPC},
		{orig.Apps[0].L1MR, got.Apps[0].L1MR},
		{orig.Apps[0].EB, got.Apps[0].EB},
		{orig.Apps[0].AvgTLP, got.Apps[0].AvgTLP},
	}
	for i, p := range pairs {
		if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
			t.Errorf("pair %d: %x != %x", i, math.Float64bits(p[0]), math.Float64bits(p[1]))
		}
	}
	if s := c.Stats(); s.Hits != 1 || s.Writes != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCorruptEntriesAreMisses(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", awkwardResult()); err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"truncated":      []byte(`{"schema":1,"key":"k","result":{"Cyc`),
		"garbage":        []byte("\x00\x01\x02 not json"),
		"empty":          {},
		"wrong key":      mustJSON(entry{Schema: SchemaVersion, Key: "other", Result: awkwardResult()}),
		"foreign schema": mustJSON(entry{Schema: SchemaVersion + 1, Key: "k", Result: awkwardResult()}),
	}
	for name, data := range cases {
		if err := os.WriteFile(c.Path("k"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get("k"); ok {
			t.Errorf("%s entry served as a hit", name)
		}
	}
	if s := c.Stats(); s.Corrupt != uint64(len(cases)) {
		t.Fatalf("corrupt count %d, want %d", s.Corrupt, len(cases))
	}

	// RunCached falls back to recompute and heals the entry.
	ran := 0
	res, err := RunCached(nil, c, nil, runner.PriGrid, testSpec(), func(context.Context) (sim.Result, error) {
		ran++
		return awkwardResult(), nil
	})
	if err != nil || ran != 1 {
		t.Fatalf("recompute: err %v, ran %d", err, ran)
	}
	if got, ok := c.Get(Key(testSpec())); !ok || !reflect.DeepEqual(got, res) {
		t.Fatal("healed entry missing or different")
	}
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

func TestRunCachedHitSkipsPoolAndRun(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rs := testSpec()
	want := awkwardResult()
	if err := c.Put(Key(rs), want); err != nil {
		t.Fatal(err)
	}
	got, err := RunCached(nil, c, nil, runner.PriEval, rs, func(context.Context) (sim.Result, error) {
		t.Fatal("run executed despite a valid cache entry")
		return sim.Result{}, nil
	})
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("hit path: %v %v", got, err)
	}
}

func TestRunCachedDedupsConcurrentIdenticalRuns(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.New(4)
	defer pool.Close()
	rs := testSpec()
	var execs atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := RunCached(nil, c, pool, runner.PriGrid, rs, func(context.Context) (sim.Result, error) {
				execs.Add(1)
				<-gate
				return awkwardResult(), nil
			})
			if err != nil || len(res.Apps) != 1 {
				t.Errorf("RunCached: %v %v", res, err)
			}
		}()
	}
	for pool.Stats().Deduped+pool.Stats().Ran < 5 {
		// Wait until five submissions have either attached or queued
		// behind the gated execution (cold Gets all miss first).
		if execs.Load() > 1 {
			break
		}
	}
	close(gate)
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Fatalf("%d executions for identical specs, want 1", n)
	}
}

func TestNilCacheIsSafe(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	if err := c.Put("k", sim.Result{}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || c.Dir() != "" || c.Stats() != (Stats{}) {
		t.Fatal("nil cache accessors")
	}
	c.Instrument(obs.NewRegistry()) // must not panic
	ran := 0
	if _, err := RunCached(nil, c, nil, runner.PriGrid, testSpec(), func(context.Context) (sim.Result, error) {
		ran++
		return sim.Result{}, nil
	}); err != nil || ran != 1 {
		t.Fatalf("uncached run: %v ran=%d", err, ran)
	}
}

func TestInstrumentCounters(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.Instrument(reg)
	c.Get("absent")
	c.Put("k", sim.Result{})
	c.Get("k")
	if v := reg.Counter("ebm_simcache_hits_total", "").Value(); v != 1 {
		t.Fatalf("hits %d", v)
	}
	if v := reg.Counter("ebm_simcache_misses_total", "").Value(); v != 1 {
		t.Fatalf("misses %d", v)
	}
	if v := reg.Counter("ebm_simcache_writes_total", "").Value(); v != 1 {
		t.Fatalf("writes %d", v)
	}
}

func TestLenCountsEntries(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", sim.Result{})
	c.Put("b", sim.Result{})
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

// TestRealRunBitIdentityThroughCache is the end-to-end determinism
// guarantee: an actual simulation's cached bytes decode to exactly the
// result a fresh computation returns.
func TestRealRunBitIdentityThroughCache(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.NumMemPartitions = 4
	app, _ := kernel.ByName("BFS")
	rs := spec.RunSpec{Config: cfg, Apps: []kernel.Params{app},
		Scheme: spec.Static([]int{4}, nil), TotalCycles: 10_000, WarmupCycles: 2_000}
	fresh1, err := sim.Execute(nil, rs)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.New(2)
	defer pool.Close()
	cached, err := RunCached(nil, c, pool, runner.PriGrid, rs, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunCached(nil, c, pool, runner.PriGrid, rs, func(context.Context) (sim.Result, error) {
		t.Fatal("warm lookup re-simulated")
		return sim.Result{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh1, cached) || !reflect.DeepEqual(cached, warm) {
		t.Fatalf("cached result differs from fresh computation:\nfresh %+v\nwarm  %+v", fresh1, warm)
	}
}

// TestKnobbedManagerRoundTripsCache covers what the spec-keyed cache
// newly enables: a manager with a non-default knob (previously
// unidentifiable by name string, hence uncacheable) executing through
// the cache with full bit identity.
func TestKnobbedManagerRoundTripsCache(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.NumMemPartitions = 4
	app, _ := kernel.ByName("BFS")
	sch := spec.CCWS()
	sch.CCWS.HighVTA = 0.2
	sch.CCWS.Hysteresis = 3
	rs := spec.RunSpec{Config: cfg, Apps: []kernel.Params{app},
		Scheme: sch, TotalCycles: 10_000, WarmupCycles: 2_000, VictimTags: 64}
	fresh, err := sim.Execute(nil, rs)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cached, err := RunCached(nil, c, nil, runner.PriEval, rs, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunCached(nil, c, nil, runner.PriEval, rs, func(context.Context) (sim.Result, error) {
		t.Fatal("warm lookup re-simulated")
		return sim.Result{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, cached) || !reflect.DeepEqual(cached, warm) {
		t.Fatal("knobbed run not bit-identical through the cache")
	}

	// The default-knobbed scheme must be a different entry.
	def := rs
	def.Scheme = spec.CCWS()
	if Key(def) == Key(rs) {
		t.Fatal("knobbed and default CCWS share a key")
	}
}
