// Package simcache is a versioned, content-addressed on-disk cache for
// simulation results. A run is identified by a fingerprint of its
// canonical spec.RunSpec — the machine configuration, the applications,
// the scheme with every knob explicit, and the run lengths — so grid
// cells, evaluation runs, and alone profiles persist across processes:
// an interrupted sweep resumes where it stopped and a warm paperfigs run
// replays from disk instead of re-simulating. Because the key is the
// canonical spec JSON rather than a manager name string, any knobbed
// manager the registry can build is cacheable, and equivalent requests
// (++maxTLP vs the static combination it executes as, a labeled alone
// run vs the same static run) deduplicate onto one entry.
//
// The cycle engine is deterministic (pinned by the golden bit-identity
// tests in internal/sim), and sim.Result round-trips JSON exactly (Go
// encodes float64 with the shortest form that parses back to the same
// bits), so a cached result is bit-identical to a fresh computation —
// test-enforced here and in internal/search.
//
// Invalidation is by key, never by mutation: the key embeds
// SchemaVersion, which MUST be bumped whenever engine behaviour changes
// (the same commits that regenerate internal/sim's golden files), and
// every behavioural knob of the run. Writes go through a temp file and
// an atomic rename; reads tolerate corruption (a truncated, garbled, or
// foreign-schema entry is a miss, never an error), so a killed process
// cannot poison the cache.
package simcache

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"ebm/internal/faultinject"
	"ebm/internal/obs"
	"ebm/internal/resilience"
	"ebm/internal/runner"
	"ebm/internal/sim"
	"ebm/internal/spec"
)

// Warnf surfaces non-fatal cache degradation (a computed result that
// could not be persisted). Stderr by default; replaceable for tests and
// embedding.
var Warnf = func(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// SchemaVersion invalidates every existing cache entry when bumped. Bump
// it whenever the cycle engine's behaviour changes — i.e. in the same
// change that regenerates the golden bit-identity files — or when the
// key derivation or entry layout changes.
//
// History: 1 keyed runs by manager name strings; 2 keys them by the
// canonical spec.RunSpec JSON.
const SchemaVersion = 2

// HashJSON fingerprints any plain data value as FNV-1a over its JSON
// encoding, rendered as 16 hex digits. It is the shared helper behind
// profile fingerprints and run keys; values must marshal cleanly (plain
// config/parameter structs always do).
func HashJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err) // plain data structs always marshal
	}
	var h uint64 = 1469598103934665603
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x", h)
}

// keyEnvelope is what Key actually hashes: the schema version alongside
// the canonical run description.
type keyEnvelope struct {
	Schema int          `json:"schema"`
	Run    spec.RunSpec `json:"run"`
}

// Key returns a run's content address under the current schema: FNV-1a
// over the canonical spec JSON. Canonicalization (spec.RunSpec.Canonical)
// is what makes equivalent requests — scheme aliases, display labels,
// knobs stated at their defaults — share one entry.
func Key(rs spec.RunSpec) string {
	return HashJSON(keyEnvelope{Schema: SchemaVersion, Run: rs.Canonical()})
}

// entry is the on-disk layout: the schema and key are stored alongside
// the result so a renamed, truncated, or stale file can never be
// mistaken for a hit.
type entry struct {
	Schema int        `json:"schema"`
	Key    string     `json:"key"`
	Result sim.Result `json:"result"`
}

// Stats is a point-in-time snapshot of one cache handle's traffic.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Writes     uint64
	Corrupt    uint64 // misses caused by unreadable/foreign entries
	WriteFails uint64 // persist attempts that failed (results still served)
}

// Cache is a directory of result entries, one file per key. All methods
// are safe for concurrent use and nil-safe: a nil *Cache misses every
// Get and drops every Put, so call sites need no "is caching on?"
// branches.
type Cache struct {
	dir string

	hits, misses, writes, corrupt, writeFails atomic.Uint64

	// Optional observability handles (nil-safe), set via Instrument.
	hitC, missC, writeC, writeFailC *obs.Counter

	// Resilience wiring, set before use via SetHooks / SetResilience:
	// hooks is the fault-injection seam (nil in production), retry the
	// persist backoff policy (zero value = resilience.DefaultPolicy),
	// mon the incident sink (nil discards).
	hooks faultinject.Hooks
	retry resilience.Policy
	mon   *resilience.Monitor

	// ledger, when set via SetLedger, receives one provenance record per
	// completed RunCached call (nil-safe).
	ledger *obs.Ledger
}

// SetLedger installs the run-provenance ledger: every completed
// RunCached call through this handle appends one RunRecord describing
// how the run was satisfied (cached / forked@depth / cold), its retries
// and injected faults, and its cost. Call before submitting work; nil
// is the default (no provenance).
func (c *Cache) SetLedger(l *obs.Ledger) {
	if c == nil {
		return
	}
	c.ledger = l
}

// Ledger returns the installed provenance ledger (nil when provenance
// is off or the cache handle is nil).
func (c *Cache) Ledger() *obs.Ledger {
	if c == nil {
		return nil
	}
	return c.ledger
}

// SetHooks installs the fault-injection seam (chaos tests, ebsim
// -chaos). Call before submitting work; nil is the production default.
func (c *Cache) SetHooks(h faultinject.Hooks) {
	if c == nil {
		return
	}
	c.hooks = h
}

// SetResilience installs the persist retry policy and the incident
// monitor. The zero Policy retries with resilience.DefaultPolicy; a nil
// monitor discards incidents. Call before submitting work.
func (c *Cache) SetResilience(p resilience.Policy, mon *resilience.Monitor) {
	if c == nil {
		return
	}
	c.retry = p
	c.mon = mon
}

// Open returns a cache rooted at dir, creating it if needed.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root ("" for a nil cache).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// Path returns the entry file for a key.
func (c *Cache) Path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached result for key, if a valid entry exists.
func (c *Cache) Get(key string) (sim.Result, bool) {
	return c.get(context.Background(), key, true)
}

// get is Get with the miss counting optional (RunCached's inner
// re-check would otherwise record a second miss for every simulation it
// runs) and with the caller's context, whose provenance trail records
// injected read faults.
func (c *Cache) get(ctx context.Context, key string, countMiss bool) (sim.Result, bool) {
	if c == nil {
		return sim.Result{}, false
	}
	if h := c.hooks; h != nil {
		if err := h.CacheRead(key); err != nil {
			// An unreadable entry degrades exactly like a corrupt one: a
			// counted miss that falls through to direct execution.
			obs.TrailFrom(ctx).AddFault("cache-read")
			c.corrupt.Add(1)
			if countMiss {
				c.misses.Add(1)
				c.missC.Inc()
			}
			return sim.Result{}, false
		}
	}
	b, err := os.ReadFile(c.Path(key))
	if err != nil {
		if countMiss {
			c.misses.Add(1)
			c.missC.Inc()
		}
		return sim.Result{}, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Schema != SchemaVersion || e.Key != key {
		c.corrupt.Add(1)
		if countMiss {
			c.misses.Add(1)
			c.missC.Inc()
		}
		return sim.Result{}, false
	}
	c.hits.Add(1)
	c.hitC.Inc()
	return e.Result, true
}

// Put persists a result under key: marshalled to a temp file in the
// cache directory, then atomically renamed into place, so concurrent
// writers and killed processes leave either the old entry or the new
// one, never a torn file.
func (c *Cache) Put(key string, r sim.Result) error {
	if c == nil {
		return nil
	}
	if h := c.hooks; h != nil {
		if err := h.CacheWrite(key); err != nil {
			return fmt.Errorf("simcache: write %s: %w", key, err)
		}
	}
	b, err := json.Marshal(entry{Schema: SchemaVersion, Key: key, Result: r})
	if err != nil {
		return fmt.Errorf("simcache: marshal %s: %w", key, err)
	}
	f, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("simcache: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("simcache: write %s: %w", key, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("simcache: close %s: %w", key, err)
	}
	if err := os.Rename(tmp, c.Path(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("simcache: rename %s: %w", key, err)
	}
	c.writes.Add(1)
	c.writeC.Inc()
	return nil
}

// Len counts valid-looking entries on disk (files named <key>.json).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n
}

// Stats returns this handle's hit/miss/write counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Writes:     c.writes.Load(),
		Corrupt:    c.corrupt.Load(),
		WriteFails: c.writeFails.Load(),
	}
}

// Instrument mirrors the cache's traffic into an obs registry:
// ebm_simcache_hits_total, ebm_simcache_misses_total,
// ebm_simcache_writes_total, and ebm_simcache_write_fails_total.
func (c *Cache) Instrument(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	c.hitC = reg.Counter("ebm_simcache_hits_total", "simulation results served from the on-disk cache")
	c.missC = reg.Counter("ebm_simcache_misses_total", "cache lookups that fell through to simulation")
	c.writeC = reg.Counter("ebm_simcache_writes_total", "simulation results persisted to the cache")
	c.writeFailC = reg.Counter("ebm_simcache_write_fails_total", "results computed but not persisted after retries")
	c.hitC.Set(c.hits.Load())
	c.missC.Set(c.misses.Load())
	c.writeC.Set(c.writes.Load())
	c.writeFailC.Set(c.writeFails.Load())
}

// persist writes a computed result through the retry policy; exhausting
// the retries degrades to an uncached (but still returned) result with a
// surfaced warning and a counted write failure — never an aborted run.
func (c *Cache) persist(ctx context.Context, key string, r sim.Result) {
	if c == nil {
		return
	}
	err := c.retry.Retry(ctx, "simcache:"+key, c.mon, func() error {
		return c.Put(key, r)
	})
	if err != nil {
		obs.TrailFrom(ctx).AddFault("cache-write")
		c.writeFails.Add(1)
		c.writeFailC.Inc()
		Warnf("simcache: warning: result %s computed but not persisted: %v", key, err)
	}
}

// ledgerRecord folds one completed run into its provenance record.
func ledgerRecord(rs spec.RunSpec, key string, trail *obs.Trail, res sim.Result, wall time.Duration) obs.RunRecord {
	names := make([]string, len(rs.Apps))
	for i := range rs.Apps {
		names[i] = rs.Apps[i].Name
	}
	rec := obs.RunRecord{
		CacheSchema: SchemaVersion,
		Fingerprint: key,
		Scheme:      rs.Scheme.String(),
		Apps:        strings.Join(names, "_"),
		Cycles:      res.Cycles,
		WallNs:      wall.Nanoseconds(),
	}
	trail.Fill(&rec)
	return rec
}

// RunCached executes a simulation through the shared layers: serve from
// the cache when possible, otherwise submit to the pool (the Default
// pool when r is nil) with singleflight on the spec key — identical
// concurrent requests share one execution — and persist the result.
// run overrides the execution (tests, custom assembly); nil executes
// the spec itself (sim.Execute), which is the normal path. The context
// cancels cooperatively: the wait, the simulation (at its next window
// boundary), and the retry sleeps all observe it, and a cancelled run is
// counted on the cache's resilience monitor. Cache write failures are
// retried per the cache's policy and then deliberately non-fatal (the
// result is still perfectly good); they surface through Warnf, Stats,
// and the instrumented counters instead.
func RunCached(ctx context.Context, c *Cache, r *runner.Runner, pri int, rs spec.RunSpec, run func(context.Context) (sim.Result, error)) (sim.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if run == nil {
		run = func(ctx context.Context) (sim.Result, error) { return sim.Execute(ctx, rs) }
	}
	key := Key(rs)
	ctx, sp := obs.StartSpan(ctx, "run", obs.A("key", key), obs.A("scheme", rs.Scheme.String()))
	defer sp.End()
	// The trail rides the run's context: the layers below (checkpoint
	// forking, retry policies, fault-injected I/O) mark what happened,
	// and the completed run folds it into one ledger record. A dedup
	// waiter's closure runs under the first submitter's context, so its
	// own trail stays un-executed and its record reads "cached" — one
	// honest record per RunCached call, one execution per singleflight.
	// A caller that already attached a trail (a dsweep worker deriving
	// the outcome it reports upstream) shares it instead of being
	// shadowed by a fresh one.
	var trail *obs.Trail
	if c.Ledger() != nil {
		if t := obs.TrailFrom(ctx); t != nil {
			trail = t
		} else {
			ctx, trail = obs.WithTrail(ctx)
		}
	}
	start := time.Now()
	gs := sp.Child("cache.get")
	if res, ok := c.get(ctx, key, true); ok {
		gs.End()
		sp.Annotate("outcome", obs.OutcomeCached)
		if trail != nil {
			c.ledger.Append(ledgerRecord(rs, key, trail, res, time.Since(start)))
		}
		return res, nil
	}
	gs.End()
	if r == nil {
		r = runner.Default()
	}
	v, err := r.Do(ctx, "sim:"+key, pri, func() (any, error) {
		// A concurrent process (or a deduplicated predecessor in this
		// one) may have persisted the entry since the first lookup.
		if res, ok := c.get(ctx, key, false); ok {
			return res, nil
		}
		obs.TrailFrom(ctx).MarkExecuted()
		ectx, es := obs.StartSpan(ctx, "execute")
		ectx, vf := withVolatileFlag(ectx)
		res, err := run(ectx)
		es.End()
		if err != nil {
			return nil, err
		}
		if vf.v.Load() {
			// A degraded (e.g. sandbox-fallback) result is returned to the
			// caller but never cached: the key promises the deterministic
			// result of the spec, and this run did not produce it.
			return res, nil
		}
		_, ps := obs.StartSpan(ctx, "cache.put")
		c.persist(ctx, key, res)
		ps.End()
		return res, nil
	})
	if err != nil {
		sp.Annotate("error", err.Error())
		if c != nil && ctx.Err() != nil {
			c.mon.RunCancelled("sim:" + key)
		}
		return sim.Result{}, err
	}
	res := v.(sim.Result)
	if trail != nil {
		rec := ledgerRecord(rs, key, trail, res, time.Since(start))
		sp.Annotate("outcome", rec.OutcomeString())
		c.ledger.Append(rec)
	} else {
		sp.Annotate("outcome", "run")
	}
	return res, nil
}
