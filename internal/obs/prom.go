package obs

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// WriteText renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), the format served on /metrics.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.c != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case s.g != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, s.labels, formatFloat(s.g.Value()))
			case s.h != nil:
				writeHistogram(bw, f.name, s.labels, s.h)
			}
		}
	}
	return bw.Flush()
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	// Cumulative bucket counts, as the format requires.
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name,
			mergeLabels(labels, `le="`+formatFloat(bound)+`"`), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="+Inf"`), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
}

// mergeLabels splices an extra label pair into a pre-rendered label set.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry on any path.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// Server is a running metrics endpoint.
type Server struct {
	Addr string // the bound address, useful with ":0" listen specs
	ln   net.Listener
	srv  *http.Server
}

// Serve starts an HTTP server on addr exposing the registry at /metrics
// (the root path redirects there) and the standard pprof profiles under
// /debug/pprof/, so a live sweep can be profiled without restarting it
// with -cpuprofile. It returns once the listener is bound, with requests
// served on a background goroutine; Close shuts it down.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", http.RedirectHandler("/metrics", http.StatusFound))
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: srv}
	go srv.Serve(ln)
	return s, nil
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
