package obs

// Merged-ledger machinery for distributed sweeps: per-worker stamping,
// multi-file/directory reads, fingerprint dedup, and the per-worker
// attribution rows `sweep -explain` prints.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeWorkerLedger(t *testing.T, path, worker string, recs ...RunRecord) {
	t.Helper()
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	l.SetWorker(worker)
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSetWorkerStampsUnattributedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.jsonl")
	explicit := testRecord("ffff", OutcomeCached)
	explicit.Worker = "other"
	writeWorkerLedger(t, path, "w7", testRecord("eeee", OutcomeCold), explicit)
	recs, _, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Worker != "w7" {
		t.Fatalf("unattributed record stamped %q, want the ledger's worker", recs[0].Worker)
	}
	if recs[1].Worker != "other" {
		t.Fatalf("explicit attribution overwritten: %q", recs[1].Worker)
	}
}

func TestReadLedgersMergesFilesAndDirectories(t *testing.T) {
	dir := t.TempDir()
	// Lexical order inside a directory makes merges stable: b.jsonl
	// after a.jsonl regardless of mtime.
	writeWorkerLedger(t, filepath.Join(dir, "b.jsonl"), "w2", testRecord("k2", OutcomeCached))
	writeWorkerLedger(t, filepath.Join(dir, "a.jsonl"), "w1", testRecord("k1", OutcomeCold))
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("not a ledger"), 0o644); err != nil {
		t.Fatal(err)
	}
	lone := filepath.Join(t.TempDir(), "local.jsonl")
	writeWorkerLedger(t, lone, "", testRecord("k3", OutcomeForked))

	recs, skipped, err := ReadLedgers(dir, lone)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(recs) != 3 {
		t.Fatalf("recs=%d skipped=%d, want 3 merged records", len(recs), skipped)
	}
	for i, want := range []struct{ fp, worker string }{{"k1", "w1"}, {"k2", "w2"}, {"k3", ""}} {
		if recs[i].Fingerprint != want.fp || recs[i].Worker != want.worker {
			t.Fatalf("record %d = %s/%q, want %s/%q", i, recs[i].Fingerprint, recs[i].Worker, want.fp, want.worker)
		}
	}

	if _, _, err := ReadLedgers(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("missing ledger path did not error")
	}
	empty := t.TempDir()
	if _, _, err := ReadLedgers(empty); err == nil {
		t.Fatal("directory without ledgers did not error")
	}
}

func TestDedupByFingerprintPrefersTheExecutingWorker(t *testing.T) {
	replayed := testRecord("k1", OutcomeCached)
	replayed.Worker = "replayer"
	executed := testRecord("k1", OutcomeCold)
	executed.Worker = "executor"
	executedDup := testRecord("k1", OutcomeCached)
	executedDup.Worker = "late-replayer"
	solo := testRecord("k2", OutcomeForked)
	pruned1 := testRecord("k3", OutcomePruned)
	pruned2 := testRecord("k3", OutcomePruned)

	out, dups := DedupByFingerprint([]RunRecord{replayed, executed, solo, executedDup, pruned1, pruned2})
	if dups != 2 {
		t.Fatalf("dups = %d, want the two k1 replays collapsed", dups)
	}
	if len(out) != 4 {
		t.Fatalf("len(out) = %d, want k1, k2, and both pruned decisions", len(out))
	}
	// k1's surviving record is the one that actually simulated, kept in
	// the first-seen position so merge order stays stable.
	if out[0].Fingerprint != "k1" || out[0].Worker != "executor" || out[0].Outcome != OutcomeCold {
		t.Fatalf("k1 survivor = %+v, want the executing worker's cold record", out[0])
	}
	// Pruned records are distinct decisions, never collapsed.
	if out[2].Outcome != OutcomePruned || out[3].Outcome != OutcomePruned {
		t.Fatalf("pruned records were deduped: %+v", out[2:])
	}
}

func TestSummarizeLedgerAttributesPerWorker(t *testing.T) {
	w1cold := testRecord("k1", OutcomeCold)
	w1cold.Worker = "w1"
	w1cold.WallNs = 100
	w2cached := testRecord("k2", OutcomeCached)
	w2cached.Worker = "w2"
	local := testRecord("k3", OutcomeForked)

	sum := SummarizeLedger([]RunRecord{w1cold, w2cached, local}, 2)
	if len(sum.Workers) != 3 {
		t.Fatalf("workers = %v, want w1, w2, and local", sum.Workers)
	}
	if w := sum.Workers["w1"]; w == nil || w.Records != 1 || w.Cold != 1 || w.WallNs != 100 {
		t.Fatalf("w1 row = %+v", sum.Workers["w1"])
	}
	if w := sum.Workers["w2"]; w == nil || w.Cached != 1 {
		t.Fatalf("w2 row = %+v", sum.Workers["w2"])
	}
	if w := sum.Workers["local"]; w == nil || w.Forked != 1 {
		t.Fatalf("unstamped record not aggregated under local: %+v", sum.Workers)
	}

	sum.Dups = 2
	var buf strings.Builder
	sum.WriteText(&buf)
	text := buf.String()
	for _, want := range []string{"w1", "w2", "local", "duplicate records collapsed by fingerprint: 2"} {
		if !strings.Contains(text, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, text)
		}
	}
}
