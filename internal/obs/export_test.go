package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// windowJournal builds a two-app journal with the event shapes the engine
// emits: per-app window events, then the machine window event, with a
// decision and a phase transition interleaved.
func windowJournal() *Journal {
	j := NewJournal()
	j.Record(Event{Cycle: 0, Kind: EvPhase, App: -1, Label: "init"})
	j.Record(Event{Cycle: 2500, Kind: EvAppWindow, App: 0, Window: 1, TLP: 24, EB: 0.5, BW: 0.2, CMR: 0.4, IPC: 1.5})
	j.Record(Event{Cycle: 2500, Kind: EvAppWindow, App: 1, Window: 1, TLP: 8, EB: 0.3, BW: 0.1, CMR: 0.33, IPC: 0.7})
	j.Record(Event{Cycle: 2500, Kind: EvWindow, App: -1, Window: 1, BW: 0.3})
	j.Record(Event{Cycle: 2532, Kind: EvDecision, App: -1, Label: "tlp=[16 8]"})
	j.Record(Event{Cycle: 3000, Kind: EvWarmup, App: -1})
	j.Record(Event{Cycle: 5000, Kind: EvPhase, App: -1, Label: "sweep"})
	j.Record(Event{Cycle: 5000, Kind: EvAppWindow, App: 0, Window: 2, TLP: 16, EB: 0.6, BW: 0.25, CMR: 0.4, IPC: 1.6})
	j.Record(Event{Cycle: 5000, Kind: EvAppWindow, App: 1, Window: 2, TLP: 8, EB: 0.2, BW: 0.1, CMR: 0.5, IPC: 0.6})
	j.Record(Event{Cycle: 5000, Kind: EvKernel, App: 1})
	j.Record(Event{Cycle: 5000, Kind: EvWindow, App: -1, Window: 2, BW: 0.35})
	return j
}

func TestWriteChromeTrace(t *testing.T) {
	var b strings.Builder
	err := WriteChromeTrace(&b, windowJournal(), ChromeTraceOptions{AppNames: []string{"BLK", "TRD"}})
	if err != nil {
		t.Fatal(err)
	}
	// The output must be a valid trace-event JSON object.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	count := map[string]int{}
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		count[ph]++
		if _, ok := e["pid"]; !ok {
			t.Fatalf("event without pid: %v", e)
		}
	}
	if count["X"] < 3 { // 2 windows + 1 closed phase span
		t.Errorf("want >=3 duration events, got %d", count["X"])
	}
	if count["C"] != 2*2*5 { // 2 windows x 2 apps x 5 counter tracks
		t.Errorf("want 20 counter events, got %d", count["C"])
	}
	if count["i"] != 3 { // decision + warmup + kernel
		t.Errorf("want 3 instant events, got %d", count["i"])
	}
	if count["M"] != 3 { // machine + 2 app process names
		t.Errorf("want 3 metadata events, got %d", count["M"])
	}
	if !strings.Contains(b.String(), "app0 BLK") {
		t.Error("missing app process name")
	}
}

func TestWriteWindowsCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteWindowsCSV(&b, windowJournal(), 2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines, want header+2:\n%s", len(lines), b.String())
	}
	wantHead := "cycle,tlp0,eb0,bw0,cmr0,tlp1,eb1,bw1,cmr1,ebws,decisions,phase"
	if lines[0] != wantHead {
		t.Fatalf("header %q, want %q", lines[0], wantHead)
	}
	if lines[1] != "2500,24,0.5,0.2,0.4,8,0.3,0.1,0.33,0.8,0,init" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	// The decision at cycle 2532 lands in window 2's row; phase flipped.
	if lines[2] != "5000,16,0.6,0.25,0.4,8,0.2,0.1,0.5,0.8,1,sweep" {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestWriteWindowsCSVEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteWindowsCSV(&b, NewJournal(), 2); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(b.String()), "\n"); len(lines) != 1 {
		t.Fatalf("empty journal must emit only the header, got %q", b.String())
	}
}

func TestServeMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("ebm_app_eb", "eb", L("app", "0")).Set(0.75)
	reg.Counter("ebm_dram_row_hits_total", "hits").Set(11)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	for _, want := range []string{
		`ebm_app_eb{app="0"} 0.75`,
		"ebm_dram_row_hits_total 11",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics body missing %q:\n%s", want, body)
		}
	}

	// Root redirects to /metrics.
	resp2, err := http.Get("http://" + srv.Addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Request.URL.Path != "/metrics" {
		t.Errorf("root did not redirect to /metrics (landed on %s)", resp2.Request.URL.Path)
	}
}
