package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNestingAndRecording(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("sweep", A("workload", "BLK_TRD"))
	child := root.Child("cell")
	grand := child.Child("execute")
	grand.End()
	child.Annotate("outcome", "cold")
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	// Completion order: innermost first.
	g, c, r := spans[0], spans[1], spans[2]
	if g.Name != "execute" || c.Name != "cell" || r.Name != "sweep" {
		t.Fatalf("span order = %s,%s,%s", g.Name, c.Name, r.Name)
	}
	if r.Parent != 0 {
		t.Fatalf("root parent = %d, want 0", r.Parent)
	}
	if c.Parent != r.ID || g.Parent != c.ID {
		t.Fatalf("parent chain broken: %d<-%d<-%d", r.ID, c.Parent, g.Parent)
	}
	// Intervals nest: parent contains child.
	if c.Start > g.Start || c.End < g.End || r.Start > c.Start || r.End < c.End {
		t.Fatal("child interval not contained in parent")
	}
	if r.Dur() < 0 {
		t.Fatalf("negative duration %v", r.Dur())
	}
	found := false
	for _, a := range c.Attrs {
		if a.Key == "outcome" && a.Value == "cold" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Annotate lost: %v", c.Attrs)
	}
}

func TestSpanEndIdempotentAndAnnotateAfterEnd(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("x")
	s.End()
	s.Annotate("late", "1") // must not land
	s.End()                 // must not double-record
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if attrs := tr.Spans()[0].Attrs; len(attrs) != 0 {
		t.Fatalf("attrs after End = %v", attrs)
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x", A("k", "v"))
	if s != nil {
		t.Fatal("nil tracer must start nil spans")
	}
	// Entire chain is absorbing.
	s.Child("y").Annotate("a", "b")
	s.Child("y").End()
	s.End()
	tr.Instant("z")
	tr.SetLimit(1)
	if tr.Len() != 0 || tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must read empty")
	}
}

func TestStartSpanWithoutTracerIsFree(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Fatal("span without tracer")
	}
	if ctx2 != ctx {
		t.Fatal("untraced StartSpan must return the context unchanged")
	}
	Instant(ctx, "nothing") // must not panic
	if TracerFrom(nil) != nil || SpanFrom(nil) != nil {
		t.Fatal("nil context lookups must be nil")
	}
}

func TestStartSpanContextPropagation(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "run")
	cctx, child := StartSpan(ctx, "cache.get")
	if SpanFrom(cctx) != child || SpanFrom(ctx) != root {
		t.Fatal("context span mismatch")
	}
	child.End()
	// A sibling started from the same parent ctx nests under root, not
	// under the finished child.
	_, sib := StartSpan(ctx, "cache.put")
	sib.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("%d spans", len(spans))
	}
	rootID := spans[2].ID
	if spans[0].Parent != rootID || spans[1].Parent != rootID {
		t.Fatalf("siblings must share the root parent: %+v", spans)
	}
}

func TestInstantRecordsZeroDurationChild(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "run")
	Instant(ctx, "watchdog-trip", A("label", "cell"))
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("%d spans", len(spans))
	}
	trip := spans[0]
	if trip.Name != "watchdog-trip" || trip.Parent != spans[1].ID {
		t.Fatalf("instant span = %+v", trip)
	}
}

func TestSpanLimitDropsBeyondCap(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(2)
	for i := 0; i < 5; i++ {
		tr.Start("s").End()
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Fatalf("Len=%d Dropped=%d, want 2/3", tr.Len(), tr.Dropped())
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, sp := StartSpan(ctx, "cell")
				_, in := StartSpan(c, "execute")
				in.End()
				sp.Annotate("i", "x")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 8*50*2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), 8*50*2)
	}
}

func TestPackSpanLanesSeparatesWorkers(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	// Sorted by Start asc, End desc — the order appendSpanEvents feeds.
	spans := []SpanData{
		{Name: "A-outer", Start: ms(0), End: ms(100)},
		{Name: "A-inner", Start: ms(10), End: ms(90)},
		{Name: "B-outer", Start: ms(50), End: ms(150)}, // overlaps A without nesting
		{Name: "A-next", Start: ms(120), End: ms(140)}, // A's lane has drained
	}
	lanes := packSpanLanes(spans)
	want := []int{0, 0, 1, 0}
	for i := range want {
		if lanes[i] != want[i] {
			t.Fatalf("lanes = %v, want %v", lanes, want)
		}
	}
}

func TestWriteSpanTraceJSON(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "sweep", A("workload", "BLK_TRD"))
	cctx, cell := StartSpan(ctx, "cell")
	time.Sleep(time.Millisecond) // give the X events non-zero microseconds
	Instant(cctx, "watchdog-trip")
	cell.End()
	root.End()

	var b strings.Builder
	if err := WriteSpanTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var xs, is, metas int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			xs++
			if e["pid"].(float64) != spanPid {
				t.Fatalf("span event on pid %v", e["pid"])
			}
		case "i":
			is++
		case "M":
			if e["args"].(map[string]any)["name"] == "orchestration" {
				metas++
			}
		}
	}
	if xs != 2 || is != 1 || metas != 1 {
		t.Fatalf("X=%d i=%d orchestration-M=%d, want 2/1/1", xs, is, metas)
	}
	if !strings.Contains(b.String(), `"workload":"BLK_TRD"`) {
		t.Fatalf("attrs missing from args:\n%s", b.String())
	}
}

func TestWriteSpanTraceEmptyTracer(t *testing.T) {
	var b strings.Builder
	if err := WriteSpanTrace(&b, NewTracer()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// Only the machine process meta from the (nil) journal side.
	for _, e := range doc.TraceEvents {
		if e["pid"].(float64) == spanPid {
			t.Fatalf("span event from an empty tracer: %v", e)
		}
	}
}
