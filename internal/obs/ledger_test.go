package obs

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testRecord(fp, outcome string) RunRecord {
	return RunRecord{
		CacheSchema: 2, Fingerprint: fp, Scheme: "static:4,8",
		Apps: "BLK_TRD", Outcome: outcome, Cycles: 100_000, WallNs: 5_000_000,
	}
}

func TestLedgerAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	cold := testRecord("aaaa", OutcomeCold)
	cold.Retries = 2
	cold.Faults = []string{"cache-read", "cache-read"}
	forked := testRecord("bbbb", OutcomeForked)
	forked.ForkWindow = 3
	forked.CkptSchema = 1
	for _, r := range []RunRecord{cold, forked, testRecord("cccc", OutcomeCached)} {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if l.Appends() != 3 || l.Path() != path {
		t.Fatalf("Appends=%d Path=%s", l.Appends(), l.Path())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, skipped, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(recs) != 3 {
		t.Fatalf("recs=%d skipped=%d", len(recs), skipped)
	}
	if recs[0].LedgerSchema != LedgerSchemaVersion {
		t.Fatalf("schema not stamped: %+v", recs[0])
	}
	if recs[0].Retries != 2 || len(recs[0].Faults) != 2 {
		t.Fatalf("cold record lost provenance: %+v", recs[0])
	}
	if got := recs[1].OutcomeString(); got != "forked@3" {
		t.Fatalf("OutcomeString = %q", got)
	}
	if recs[1].CkptSchema != 1 {
		t.Fatalf("forked record lost ckpt schema: %+v", recs[1])
	}
	if recs[2].OutcomeString() != OutcomeCached {
		t.Fatalf("cached record = %+v", recs[2])
	}
}

func TestReadLedgerSkipsCorruptAndForeignLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord("good", OutcomeCold)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// A torn line, a foreign schema, and a record with no fingerprint —
	// all must be skipped, not fail the read.
	junk := `{"ledger_schema":1,"fingerprint":"to` + "\n" +
		`{"ledger_schema":99,"fingerprint":"future","outcome":"cold"}` + "\n" +
		`{"ledger_schema":1,"outcome":"cold"}` + "\n" +
		"\n"
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(junk)
	f.Close()

	recs, skipped, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Fingerprint != "good" {
		t.Fatalf("recs = %+v", recs)
	}
	if skipped != 3 { // the blank line is ignored silently, not counted
		t.Fatalf("skipped = %d, want 3", skipped)
	}
}

func TestLedgerConcurrentAppendsInterleaveWholeRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r := testRecord(fmt.Sprintf("w%d-%d", w, i), OutcomeCold)
				if err := l.Append(r); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	recs, skipped, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(recs) != writers*each {
		t.Fatalf("recs=%d skipped=%d, want %d/0", len(recs), skipped, writers*each)
	}
}

func TestNilLedgerIsSafe(t *testing.T) {
	var l *Ledger
	if err := l.Append(testRecord("x", OutcomeCold)); err != nil {
		t.Fatal(err)
	}
	if l.Appends() != 0 || l.Path() != "" || l.Close() != nil {
		t.Fatal("nil ledger must absorb everything")
	}
}

func TestSummarizeLedgerCountsAndTopK(t *testing.T) {
	var recs []RunRecord
	for i := 0; i < 4; i++ {
		r := testRecord(fmt.Sprintf("cold%d", i), OutcomeCold)
		r.WallNs = int64(i+1) * 1000
		r.Retries = 1
		recs = append(recs, r)
	}
	fk := testRecord("fk", OutcomeForked)
	fk.ForkWindow = 7
	fk.WallNs = 10_000
	fk.Faults = []string{"ckpt-read"}
	hit := testRecord("hit", OutcomeCached)
	hit.WallNs = 1 // replayed from disk: effectively free
	pr := testRecord("pr", OutcomePruned)
	pr.Cycles = 25_000
	recs = append(recs, fk, hit, pr)

	s := SummarizeLedger(recs, 2)
	if s.Records != 7 || s.Cold != 4 || s.Forked != 1 || s.Cached != 1 || s.Pruned != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Retries != 4 || s.Faults != 1 {
		t.Fatalf("retries=%d faults=%d", s.Retries, s.Faults)
	}
	// A pruning decision is not a run: the short simulation it refers to
	// already logged its own cycles, so the total must not include it.
	if s.Cycles != 6*100_000 {
		t.Fatalf("pruned record double-booked cycles: %d", s.Cycles)
	}
	if got := pr.OutcomeString(); got != "pruned@25000" {
		t.Fatalf("OutcomeString = %q", got)
	}
	if len(s.Slowest) != 2 || s.Slowest[0].Fingerprint != "fk" || s.Slowest[1].Fingerprint != "cold3" {
		t.Fatalf("slowest = %+v", s.Slowest)
	}
	if SummarizeLedger(recs, 0).Slowest != nil {
		t.Fatal("topK=0 must keep no slowest runs")
	}
}

func TestLedgerSummaryWriteText(t *testing.T) {
	warm := []RunRecord{testRecord("a", OutcomeCached), testRecord("b", OutcomeCached)}
	s := SummarizeLedger(warm, 1)
	s.Skipped = 1
	var b strings.Builder
	s.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"runs: 2 (0 cold / 0 forked / 2 cached / 0 pruned)",
		"retries: 0  injected faults: 0",
		"unreadable ledger lines skipped: 1",
		"slowest runs:",
		"static:4,8",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestTrailLifecycle(t *testing.T) {
	// Default: a trail nobody marked is a cache hit.
	ctx, trail := WithTrail(context.Background())
	if TrailFrom(ctx) != trail {
		t.Fatal("TrailFrom lost the trail")
	}
	var r RunRecord
	trail.Fill(&r)
	if r.Outcome != OutcomeCached {
		t.Fatalf("unmarked trail outcome = %q", r.Outcome)
	}

	// Executed without a fork: cold, with the tallies copied over.
	trail.MarkExecuted()
	trail.AddRetry()
	trail.AddRetry()
	trail.AddFault("cache-write")
	r = RunRecord{}
	trail.Fill(&r)
	if r.Outcome != OutcomeCold || r.Retries != 2 || len(r.Faults) != 1 {
		t.Fatalf("cold fill = %+v", r)
	}

	// Forked: outcome carries the restore depth and ckpt schema.
	trail.SetForked(5, 1)
	r = RunRecord{}
	trail.Fill(&r)
	if r.Outcome != OutcomeForked || r.ForkWindow != 5 || r.CkptSchema != 1 {
		t.Fatalf("forked fill = %+v", r)
	}
}

func TestNilTrailIsSafe(t *testing.T) {
	var trail *Trail
	trail.MarkExecuted()
	trail.SetForked(1, 1)
	trail.AddRetry()
	trail.AddFault("x")
	var r RunRecord
	trail.Fill(&r)
	if r.Outcome != OutcomeCached {
		t.Fatalf("nil trail fill = %+v", r)
	}
	if TrailFrom(context.Background()) != nil {
		t.Fatal("plain context must carry no trail")
	}
}
