package obs

import (
	"fmt"
	"strings"

	"ebm/internal/tlp"
)

// Point is one windowed observation of a run time series.
type Point struct {
	Cycle uint64
	Value float64
}

// Series is a named time series.
type Series struct {
	Name   string
	Points []Point
}

// Add appends an observation.
func (s *Series) Add(cycle uint64, v float64) {
	s.Points = append(s.Points, Point{Cycle: cycle, Value: v})
}

// Recorder collects per-application TLP, EB, and bandwidth series from
// sampling windows — the data behind Fig. 11 (TLP choices over time
// under PBS) and any other longitudinal view. Install Hook as
// sim.Options.OnWindow. (Formerly internal/trace; it lives here with
// the rest of the run-observation machinery.)
type Recorder struct {
	TLP      []Series // per app
	EB       []Series
	BW       []Series
	MetricEB Series  // total EB (EB-WS) per window
	Relaunch []Point // kernel relaunch markers (Value = app index)
	// Searching marks windows where the attached PBS manager was mid-
	// search (the shaded regions of Fig. 11); set SearchingFn to feed it.
	Searching   Series
	SearchingFn func() bool
}

// NewRecorder builds a recorder for numApps applications.
func NewRecorder(numApps int) *Recorder {
	r := &Recorder{
		TLP: make([]Series, numApps),
		EB:  make([]Series, numApps),
		BW:  make([]Series, numApps),
	}
	for i := 0; i < numApps; i++ {
		r.TLP[i].Name = fmt.Sprintf("TLP-%d", i)
		r.EB[i].Name = fmt.Sprintf("EB-%d", i)
		r.BW[i].Name = fmt.Sprintf("BW-%d", i)
	}
	r.MetricEB.Name = "EB-WS"
	r.Searching.Name = "searching"
	return r
}

// Hook records one sampling window.
func (r *Recorder) Hook(s tlp.Sample) {
	total := 0.0
	for i := range s.Apps {
		a := &s.Apps[i]
		if i < len(r.TLP) {
			r.TLP[i].Add(s.Cycle, float64(a.TLP))
			r.EB[i].Add(s.Cycle, a.EB)
			r.BW[i].Add(s.Cycle, a.BW)
		}
		total += a.EB
		if a.KernelRelaunched {
			r.Relaunch = append(r.Relaunch, Point{Cycle: s.Cycle, Value: float64(i)})
		}
	}
	r.MetricEB.Add(s.Cycle, total)
	if r.SearchingFn != nil {
		v := 0.0
		if r.SearchingFn() {
			v = 1.0
		}
		r.Searching.Add(s.Cycle, v)
	}
}

// RenderASCII renders a series as a compact one-line-per-bucket text chart
// (value bars), used by the figure regeneration binaries.
func RenderASCII(s Series, buckets int, maxV float64) string {
	if len(s.Points) == 0 || buckets <= 0 {
		return ""
	}
	if maxV <= 0 {
		for _, p := range s.Points {
			if p.Value > maxV {
				maxV = p.Value
			}
		}
		if maxV == 0 {
			maxV = 1
		}
	}
	per := (len(s.Points) + buckets - 1) / buckets
	var b strings.Builder
	for i := 0; i < len(s.Points); i += per {
		end := i + per
		if end > len(s.Points) {
			end = len(s.Points)
		}
		sum := 0.0
		for _, p := range s.Points[i:end] {
			sum += p.Value
		}
		avg := sum / float64(end-i)
		bars := int(avg / maxV * 40)
		if bars < 0 {
			bars = 0
		}
		if bars > 40 {
			bars = 40
		}
		fmt.Fprintf(&b, "%10d %7.2f %s\n", s.Points[i].Cycle, avg, strings.Repeat("#", bars))
	}
	return b.String()
}
