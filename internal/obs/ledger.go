package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LedgerSchemaVersion stamps every record so a reader can reject lines
// written by an incompatible future layout. Bump it when RunRecord's
// meaning (not just its optional fields) changes.
const LedgerSchemaVersion = 1

// Run outcomes as recorded in the provenance ledger.
const (
	OutcomeCached = "cached" // served from the result cache (or a singleflight predecessor)
	OutcomeCold   = "cold"   // simulated from cycle zero
	OutcomeForked = "forked" // simulated from a restored prefix checkpoint
	OutcomePruned = "pruned" // dropped by the adaptive search after a partial horizon
)

// RunRecord is one line of the provenance ledger: the full transaction
// record of one completed run — what was asked for, how it was
// satisfied, and what it cost. This is the wire-visible unit a future
// coordinator/worker sweep service streams to clients.
type RunRecord struct {
	LedgerSchema int    `json:"ledger_schema"`
	CacheSchema  int    `json:"cache_schema"`
	CkptSchema   int    `json:"ckpt_schema,omitempty"` // set when the run forked
	Fingerprint  string `json:"fingerprint"`           // simcache key of the run
	Scheme       string `json:"scheme"`                // canonical scheme flag string
	Apps         string `json:"apps,omitempty"`        // underscore-joined workload name
	Worker       string `json:"worker,omitempty"`      // distributed-sweep worker that satisfied the run

	Outcome    string   `json:"outcome"`               // cached | cold | forked | pruned
	ForkWindow uint64   `json:"fork_window,omitempty"` // restore depth for forked runs
	Retries    int      `json:"retries,omitempty"`     // retried transient I/O failures
	Faults     []string `json:"faults,omitempty"`      // injected/observed fault labels

	Cycles uint64 `json:"cycles"`  // simulated core cycles in the result
	WallNs int64  `json:"wall_ns"` // wall-clock cost of satisfying the run
}

// OutcomeString renders the outcome in the ledger's display form:
// "cached", "cold", "forked@<window>", or "pruned@<cycles>" (the horizon
// an adaptively-pruned candidate had simulated to when dropped).
func (r RunRecord) OutcomeString() string {
	switch r.Outcome {
	case OutcomeForked:
		return fmt.Sprintf("forked@%d", r.ForkWindow)
	case OutcomePruned:
		return fmt.Sprintf("pruned@%d", r.Cycles)
	}
	return r.Outcome
}

// Ledger is an append-only JSONL file of RunRecords, one line per
// completed run, written beside the simcache directory. Appends are
// atomic: the file is opened O_APPEND and each record is a single
// Write of one newline-terminated line, so concurrent appenders (even
// across processes) interleave whole records, never fragments. A nil
// *Ledger drops every Append, so call sites need no "is provenance
// on?" branches.
type Ledger struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	worker  string
	appends atomic.Uint64
}

// OpenLedger opens (creating if needed) the ledger at path for
// appending.
func OpenLedger(path string) (*Ledger, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: ledger %s: %w", path, err)
	}
	return &Ledger{f: f, path: path}, nil
}

// Path returns the ledger file path ("" for a nil ledger).
func (l *Ledger) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// Appends returns how many records this handle has written.
func (l *Ledger) Appends() uint64 {
	if l == nil {
		return 0
	}
	return l.appends.Load()
}

// SetWorker stamps every subsequent Append with the given worker
// identity (unless the record already names one) — how a distributed
// sweep's per-worker ledgers attribute their runs. Call before
// submitting work; a nil ledger ignores it.
func (l *Ledger) SetWorker(id string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.worker = id
	l.mu.Unlock()
}

// Append writes one record (stamping LedgerSchema) as a single line.
func (l *Ledger) Append(r RunRecord) error {
	if l == nil {
		return nil
	}
	r.LedgerSchema = LedgerSchemaVersion
	l.mu.Lock()
	if r.Worker == "" {
		r.Worker = l.worker
	}
	l.mu.Unlock()
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("obs: ledger marshal: %w", err)
	}
	b = append(b, '\n')
	l.mu.Lock()
	_, err = l.f.Write(b)
	l.mu.Unlock()
	if err != nil {
		return fmt.Errorf("obs: ledger append: %w", err)
	}
	l.appends.Add(1)
	return nil
}

// Close releases the underlying file.
func (l *Ledger) Close() error {
	if l == nil {
		return nil
	}
	return l.f.Close()
}

// ReadLedger parses a ledger file, skipping (and counting) lines that
// are torn, garbled, or carry a foreign schema — a reader tolerates a
// crashed writer the same way the result cache tolerates a torn entry.
func ReadLedger(path string) (recs []RunRecord, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("obs: ledger %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r RunRecord
		if json.Unmarshal(line, &r) != nil || r.LedgerSchema != LedgerSchemaVersion || r.Fingerprint == "" {
			skipped++
			continue
		}
		recs = append(recs, r)
	}
	if serr := sc.Err(); serr != nil {
		return recs, skipped, fmt.Errorf("obs: ledger %s: %w", path, serr)
	}
	return recs, skipped, nil
}

// ReadLedgers reads and concatenates several ledgers — the merged view
// of a distributed sweep where every worker appended its own file. Each
// path may be a single ledger file or a directory, which reads every
// *.jsonl inside (lexical order, so merges are stable). Unreadable lines
// are skipped and counted as in ReadLedger; a missing path is an error.
func ReadLedgers(paths ...string) (recs []RunRecord, skipped int, err error) {
	var files []string
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			return nil, 0, fmt.Errorf("obs: ledger %s: %w", p, err)
		}
		if !fi.IsDir() {
			files = append(files, p)
			continue
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return nil, 0, fmt.Errorf("obs: ledger dir %s: %w", p, err)
		}
		n := 0
		for _, e := range ents {
			if !e.IsDir() && filepath.Ext(e.Name()) == ".jsonl" {
				files = append(files, filepath.Join(p, e.Name()))
				n++
			}
		}
		if n == 0 {
			return nil, 0, fmt.Errorf("obs: ledger dir %s holds no *.jsonl files", p)
		}
	}
	for _, f := range files {
		r, s, err := ReadLedger(f)
		if err != nil {
			return recs, skipped, err
		}
		recs = append(recs, r...)
		skipped += s
	}
	return recs, skipped, nil
}

// DedupByFingerprint collapses records sharing a fingerprint into one —
// the merged multi-worker view, where the worker that executed a run and
// the workers that replayed it from the shared cache all logged the same
// key. The surviving record is the first that actually simulated (cold
// or forked — the attribution `sweep -explain` wants), falling back to
// the first seen; pruned records are kept as-is (each is a distinct
// decision, and short-horizon keys never collide with full runs). Input
// order is preserved; dups counts the records dropped.
func DedupByFingerprint(recs []RunRecord) (out []RunRecord, dups int) {
	executed := func(r RunRecord) bool {
		return r.Outcome == OutcomeCold || r.Outcome == OutcomeForked
	}
	at := make(map[string]int, len(recs)) // fingerprint -> index in out
	for _, r := range recs {
		if r.Outcome == OutcomePruned {
			out = append(out, r)
			continue
		}
		i, seen := at[r.Fingerprint]
		if !seen {
			at[r.Fingerprint] = len(out)
			out = append(out, r)
			continue
		}
		dups++
		if executed(r) && !executed(out[i]) {
			out[i] = r
		}
	}
	return out, dups
}

// LedgerWorker is one worker's slice of a merged-ledger summary.
type LedgerWorker struct {
	Records int
	Cold    int
	Forked  int
	Cached  int
	Pruned  int
	Cycles  uint64
	WallNs  int64
}

// LedgerSummary is the aggregate view `sweep -explain` prints: outcome
// counts, retry/fault totals, and the slowest runs.
type LedgerSummary struct {
	Records int
	Cached  int
	Cold    int
	Forked  int
	Pruned  int // adaptive-search candidates dropped mid-horizon
	Skipped int // unreadable ledger lines
	Dups    int // merged-ledger records collapsed by fingerprint

	Retries int
	Faults  int

	Cycles  uint64
	WallNs  int64
	Slowest []RunRecord // top-k by wall cost, descending

	// Workers attributes outcomes per distributed-sweep worker; records
	// with no worker stamp aggregate under "local".
	Workers map[string]*LedgerWorker
}

// SummarizeLedger aggregates records into the -explain view, keeping the
// topK slowest runs (<= 0 keeps none).
func SummarizeLedger(recs []RunRecord, topK int) LedgerSummary {
	s := LedgerSummary{Records: len(recs)}
	worker := func(r RunRecord) *LedgerWorker {
		id := r.Worker
		if id == "" {
			id = "local"
		}
		if s.Workers == nil {
			s.Workers = make(map[string]*LedgerWorker)
		}
		w := s.Workers[id]
		if w == nil {
			w = &LedgerWorker{}
			s.Workers[id] = w
		}
		return w
	}
	for _, r := range recs {
		w := worker(r)
		w.Records++
		switch r.Outcome {
		case OutcomeCached:
			s.Cached++
			w.Cached++
		case OutcomeForked:
			s.Forked++
			w.Forked++
		case OutcomePruned:
			// A pruning decision, not a run: the partial-horizon
			// simulation it refers to already logged its own record, so
			// counting its cycles again would double-book the work.
			s.Pruned++
			w.Pruned++
			continue
		default:
			s.Cold++
			w.Cold++
		}
		s.Retries += r.Retries
		s.Faults += len(r.Faults)
		s.Cycles += r.Cycles
		s.WallNs += r.WallNs
		w.Cycles += r.Cycles
		w.WallNs += r.WallNs
	}
	if topK > 0 {
		sorted := make([]RunRecord, 0, len(recs))
		for _, r := range recs {
			if r.Outcome != OutcomePruned { // a decision, not a run
				sorted = append(sorted, r)
			}
		}
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].WallNs > sorted[j].WallNs })
		if len(sorted) > topK {
			sorted = sorted[:topK]
		}
		s.Slowest = sorted
	}
	return s
}

// WriteText renders the summary for humans (the `sweep -explain`
// output).
func (s LedgerSummary) WriteText(w io.Writer) {
	fmt.Fprintf(w, "runs: %d (%d cold / %d forked / %d cached / %d pruned)\n",
		s.Records, s.Cold, s.Forked, s.Cached, s.Pruned)
	fmt.Fprintf(w, "retries: %d  injected faults: %d\n", s.Retries, s.Faults)
	fmt.Fprintf(w, "simulated cycles: %d  total wall: %s\n", s.Cycles, time.Duration(s.WallNs))
	if s.Skipped > 0 {
		fmt.Fprintf(w, "unreadable ledger lines skipped: %d\n", s.Skipped)
	}
	if s.Dups > 0 {
		fmt.Fprintf(w, "duplicate records collapsed by fingerprint: %d\n", s.Dups)
	}
	// Per-worker attribution matters only once a distributed sweep is in
	// the picture: a purely local ledger summarizes as one "local" row,
	// which would just repeat the totals.
	if len(s.Workers) > 1 || (len(s.Workers) == 1 && s.Workers["local"] == nil) {
		ids := make([]string, 0, len(s.Workers))
		for id := range s.Workers {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Fprintf(w, "per worker:\n")
		for _, id := range ids {
			lw := s.Workers[id]
			fmt.Fprintf(w, "  %-20s %4d runs (%d cold / %d forked / %d cached / %d pruned)  %d cycles  %s\n",
				id, lw.Records, lw.Cold, lw.Forked, lw.Cached, lw.Pruned,
				lw.Cycles, time.Duration(lw.WallNs).Round(time.Microsecond))
		}
	}
	if len(s.Slowest) > 0 {
		fmt.Fprintf(w, "slowest runs:\n")
		for i, r := range s.Slowest {
			apps := r.Apps
			if apps == "" {
				apps = "-"
			}
			fmt.Fprintf(w, "  %2d. %-10s %-24s %-12s %10s  %s\n",
				i+1, apps, r.Scheme, r.OutcomeString(), time.Duration(r.WallNs).Round(time.Microsecond), r.Fingerprint)
		}
	}
}

// Trail is the per-run provenance collector: the execution layers below
// RunCached (checkpoint forking, retry policies, fault-injected I/O)
// mark what actually happened on the trail riding the run's context,
// and RunCached folds it into the ledger record. All methods are
// nil-safe, so layers annotate unconditionally.
type Trail struct {
	mu         sync.Mutex
	executed   bool
	forked     bool
	forkWindow uint64
	ckptSchema int
	retries    int
	faults     []string
}

type trailCtxKey struct{}

// WithTrail attaches a fresh trail to the context and returns both.
func WithTrail(ctx context.Context) (context.Context, *Trail) {
	if ctx == nil {
		ctx = context.Background()
	}
	t := &Trail{}
	return context.WithValue(ctx, trailCtxKey{}, t), t
}

// TrailFrom returns the context's trail, or nil.
func TrailFrom(ctx context.Context) *Trail {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(trailCtxKey{}).(*Trail)
	return t
}

// MarkExecuted records that the run actually simulated under this trail
// (as opposed to being served from the cache or a singleflight
// predecessor, whose closure ran under a different context).
func (t *Trail) MarkExecuted() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.executed = true
	t.mu.Unlock()
}

// SetForked records that the run restored a prefix checkpoint at the
// given window, under the given checkpoint schema version.
func (t *Trail) SetForked(window uint64, ckptSchema int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.forked = true
	t.forkWindow = window
	t.ckptSchema = ckptSchema
	t.mu.Unlock()
}

// AddRetry counts one retried transient failure.
func (t *Trail) AddRetry() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.retries++
	t.mu.Unlock()
}

// AddFault records one injected/observed fault label (e.g. "cache-read").
func (t *Trail) AddFault(label string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.faults = append(t.faults, label)
	t.mu.Unlock()
}

// Fill folds the trail into a record: the outcome (cached unless this
// trail's context executed the simulation; then cold or forked@window),
// the fork depth and checkpoint schema, and the retry/fault tallies.
func (t *Trail) Fill(r *RunRecord) {
	r.Outcome = OutcomeCached
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.executed {
		if t.forked {
			r.Outcome = OutcomeForked
			r.ForkWindow = t.forkWindow
			r.CkptSchema = t.ckptSchema
		} else {
			r.Outcome = OutcomeCold
		}
	}
	r.Retries = t.retries
	if len(t.faults) > 0 {
		r.Faults = append([]string(nil), t.faults...)
	}
}
