package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LedgerSchemaVersion stamps every record so a reader can reject lines
// written by an incompatible future layout. Bump it when RunRecord's
// meaning (not just its optional fields) changes.
const LedgerSchemaVersion = 1

// Run outcomes as recorded in the provenance ledger.
const (
	OutcomeCached = "cached" // served from the result cache (or a singleflight predecessor)
	OutcomeCold   = "cold"   // simulated from cycle zero
	OutcomeForked = "forked" // simulated from a restored prefix checkpoint
	OutcomePruned = "pruned" // dropped by the adaptive search after a partial horizon
)

// RunRecord is one line of the provenance ledger: the full transaction
// record of one completed run — what was asked for, how it was
// satisfied, and what it cost. This is the wire-visible unit a future
// coordinator/worker sweep service streams to clients.
type RunRecord struct {
	LedgerSchema int    `json:"ledger_schema"`
	CacheSchema  int    `json:"cache_schema"`
	CkptSchema   int    `json:"ckpt_schema,omitempty"` // set when the run forked
	Fingerprint  string `json:"fingerprint"`           // simcache key of the run
	Scheme       string `json:"scheme"`                // canonical scheme flag string
	Apps         string `json:"apps,omitempty"`        // underscore-joined workload name

	Outcome    string   `json:"outcome"`               // cached | cold | forked | pruned
	ForkWindow uint64   `json:"fork_window,omitempty"` // restore depth for forked runs
	Retries    int      `json:"retries,omitempty"`     // retried transient I/O failures
	Faults     []string `json:"faults,omitempty"`      // injected/observed fault labels

	Cycles uint64 `json:"cycles"`  // simulated core cycles in the result
	WallNs int64  `json:"wall_ns"` // wall-clock cost of satisfying the run
}

// OutcomeString renders the outcome in the ledger's display form:
// "cached", "cold", "forked@<window>", or "pruned@<cycles>" (the horizon
// an adaptively-pruned candidate had simulated to when dropped).
func (r RunRecord) OutcomeString() string {
	switch r.Outcome {
	case OutcomeForked:
		return fmt.Sprintf("forked@%d", r.ForkWindow)
	case OutcomePruned:
		return fmt.Sprintf("pruned@%d", r.Cycles)
	}
	return r.Outcome
}

// Ledger is an append-only JSONL file of RunRecords, one line per
// completed run, written beside the simcache directory. Appends are
// atomic: the file is opened O_APPEND and each record is a single
// Write of one newline-terminated line, so concurrent appenders (even
// across processes) interleave whole records, never fragments. A nil
// *Ledger drops every Append, so call sites need no "is provenance
// on?" branches.
type Ledger struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	appends atomic.Uint64
}

// OpenLedger opens (creating if needed) the ledger at path for
// appending.
func OpenLedger(path string) (*Ledger, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: ledger %s: %w", path, err)
	}
	return &Ledger{f: f, path: path}, nil
}

// Path returns the ledger file path ("" for a nil ledger).
func (l *Ledger) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// Appends returns how many records this handle has written.
func (l *Ledger) Appends() uint64 {
	if l == nil {
		return 0
	}
	return l.appends.Load()
}

// Append writes one record (stamping LedgerSchema) as a single line.
func (l *Ledger) Append(r RunRecord) error {
	if l == nil {
		return nil
	}
	r.LedgerSchema = LedgerSchemaVersion
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("obs: ledger marshal: %w", err)
	}
	b = append(b, '\n')
	l.mu.Lock()
	_, err = l.f.Write(b)
	l.mu.Unlock()
	if err != nil {
		return fmt.Errorf("obs: ledger append: %w", err)
	}
	l.appends.Add(1)
	return nil
}

// Close releases the underlying file.
func (l *Ledger) Close() error {
	if l == nil {
		return nil
	}
	return l.f.Close()
}

// ReadLedger parses a ledger file, skipping (and counting) lines that
// are torn, garbled, or carry a foreign schema — a reader tolerates a
// crashed writer the same way the result cache tolerates a torn entry.
func ReadLedger(path string) (recs []RunRecord, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("obs: ledger %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r RunRecord
		if json.Unmarshal(line, &r) != nil || r.LedgerSchema != LedgerSchemaVersion || r.Fingerprint == "" {
			skipped++
			continue
		}
		recs = append(recs, r)
	}
	if serr := sc.Err(); serr != nil {
		return recs, skipped, fmt.Errorf("obs: ledger %s: %w", path, serr)
	}
	return recs, skipped, nil
}

// LedgerSummary is the aggregate view `sweep -explain` prints: outcome
// counts, retry/fault totals, and the slowest runs.
type LedgerSummary struct {
	Records int
	Cached  int
	Cold    int
	Forked  int
	Pruned  int // adaptive-search candidates dropped mid-horizon
	Skipped int // unreadable ledger lines

	Retries int
	Faults  int

	Cycles  uint64
	WallNs  int64
	Slowest []RunRecord // top-k by wall cost, descending
}

// SummarizeLedger aggregates records into the -explain view, keeping the
// topK slowest runs (<= 0 keeps none).
func SummarizeLedger(recs []RunRecord, topK int) LedgerSummary {
	s := LedgerSummary{Records: len(recs)}
	for _, r := range recs {
		switch r.Outcome {
		case OutcomeCached:
			s.Cached++
		case OutcomeForked:
			s.Forked++
		case OutcomePruned:
			// A pruning decision, not a run: the partial-horizon
			// simulation it refers to already logged its own record, so
			// counting its cycles again would double-book the work.
			s.Pruned++
			continue
		default:
			s.Cold++
		}
		s.Retries += r.Retries
		s.Faults += len(r.Faults)
		s.Cycles += r.Cycles
		s.WallNs += r.WallNs
	}
	if topK > 0 {
		sorted := make([]RunRecord, 0, len(recs))
		for _, r := range recs {
			if r.Outcome != OutcomePruned { // a decision, not a run
				sorted = append(sorted, r)
			}
		}
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].WallNs > sorted[j].WallNs })
		if len(sorted) > topK {
			sorted = sorted[:topK]
		}
		s.Slowest = sorted
	}
	return s
}

// WriteText renders the summary for humans (the `sweep -explain`
// output).
func (s LedgerSummary) WriteText(w io.Writer) {
	fmt.Fprintf(w, "runs: %d (%d cold / %d forked / %d cached / %d pruned)\n",
		s.Records, s.Cold, s.Forked, s.Cached, s.Pruned)
	fmt.Fprintf(w, "retries: %d  injected faults: %d\n", s.Retries, s.Faults)
	fmt.Fprintf(w, "simulated cycles: %d  total wall: %s\n", s.Cycles, time.Duration(s.WallNs))
	if s.Skipped > 0 {
		fmt.Fprintf(w, "unreadable ledger lines skipped: %d\n", s.Skipped)
	}
	if len(s.Slowest) > 0 {
		fmt.Fprintf(w, "slowest runs:\n")
		for i, r := range s.Slowest {
			apps := r.Apps
			if apps == "" {
				apps = "-"
			}
			fmt.Fprintf(w, "  %2d. %-10s %-24s %-12s %10s  %s\n",
				i+1, apps, r.Scheme, r.OutcomeString(), time.Duration(r.WallNs).Round(time.Microsecond), r.Fingerprint)
		}
	}
}

// Trail is the per-run provenance collector: the execution layers below
// RunCached (checkpoint forking, retry policies, fault-injected I/O)
// mark what actually happened on the trail riding the run's context,
// and RunCached folds it into the ledger record. All methods are
// nil-safe, so layers annotate unconditionally.
type Trail struct {
	mu         sync.Mutex
	executed   bool
	forked     bool
	forkWindow uint64
	ckptSchema int
	retries    int
	faults     []string
}

type trailCtxKey struct{}

// WithTrail attaches a fresh trail to the context and returns both.
func WithTrail(ctx context.Context) (context.Context, *Trail) {
	if ctx == nil {
		ctx = context.Background()
	}
	t := &Trail{}
	return context.WithValue(ctx, trailCtxKey{}, t), t
}

// TrailFrom returns the context's trail, or nil.
func TrailFrom(ctx context.Context) *Trail {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(trailCtxKey{}).(*Trail)
	return t
}

// MarkExecuted records that the run actually simulated under this trail
// (as opposed to being served from the cache or a singleflight
// predecessor, whose closure ran under a different context).
func (t *Trail) MarkExecuted() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.executed = true
	t.mu.Unlock()
}

// SetForked records that the run restored a prefix checkpoint at the
// given window, under the given checkpoint schema version.
func (t *Trail) SetForked(window uint64, ckptSchema int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.forked = true
	t.forkWindow = window
	t.ckptSchema = ckptSchema
	t.mu.Unlock()
}

// AddRetry counts one retried transient failure.
func (t *Trail) AddRetry() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.retries++
	t.mu.Unlock()
}

// AddFault records one injected/observed fault label (e.g. "cache-read").
func (t *Trail) AddFault(label string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.faults = append(t.faults, label)
	t.mu.Unlock()
}

// Fill folds the trail into a record: the outcome (cached unless this
// trail's context executed the simulation; then cold or forked@window),
// the fork depth and checkpoint schema, and the retry/fault tallies.
func (t *Trail) Fill(r *RunRecord) {
	r.Outcome = OutcomeCached
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.executed {
		if t.forked {
			r.Outcome = OutcomeForked
			r.ForkWindow = t.forkWindow
			r.CkptSchema = t.ckptSchema
		} else {
			r.Outcome = OutcomeCold
		}
	}
	r.Retries = t.retries
	if len(t.faults) > 0 {
		r.Faults = append([]string(nil), t.faults...)
	}
}
