package obs

import "testing"

func TestJournalRecordAndSnapshot(t *testing.T) {
	j := NewJournal()
	j.Record(Event{Cycle: 100, Kind: EvWindow, App: -1, Window: 1})
	j.Record(Event{Cycle: 150, Kind: EvDecision, App: -1, Label: "tlp=[24 1]"})
	if j.Len() != 2 {
		t.Fatalf("len = %d, want 2", j.Len())
	}
	ev := j.Events()
	ev[0].Cycle = 999 // snapshot must be a copy
	if j.Events()[0].Cycle != 100 {
		t.Fatal("Events returned aliased storage")
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record(Event{})
	if j.Len() != 0 || j.Events() != nil || j.Dropped() != 0 {
		t.Fatal("nil journal must be inert")
	}
}

func TestJournalLimit(t *testing.T) {
	j := NewJournal()
	j.SetLimit(2)
	seen := 0
	j.Subscribe(func(Event) { seen++ })
	for i := 0; i < 5; i++ {
		j.Record(Event{Cycle: uint64(i)})
	}
	if j.Len() != 2 {
		t.Fatalf("len = %d, want 2 (limit)", j.Len())
	}
	if j.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", j.Dropped())
	}
	if seen != 5 {
		t.Fatalf("subscriber saw %d events, want all 5", seen)
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvWindow: "window", EvAppWindow: "app-window", EvDecision: "decision",
		EvWarmup: "warmup", EvPhase: "phase", EvKernel: "kernel",
		EvProgress: "progress", EventKind(99): "kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("kind %d = %q, want %q", k, got, want)
		}
	}
}

func TestObserverEnabled(t *testing.T) {
	var nilObs *Observer
	if nilObs.Enabled() {
		t.Fatal("nil observer enabled")
	}
	if (&Observer{}).Enabled() {
		t.Fatal("empty observer enabled")
	}
	if !(&Observer{Journal: NewJournal()}).Enabled() {
		t.Fatal("journal-only observer disabled")
	}
	if !(&Observer{Metrics: NewRegistry()}).Enabled() {
		t.Fatal("metrics-only observer disabled")
	}
}
