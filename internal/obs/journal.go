package obs

import (
	"fmt"
	"sync"
)

// EventKind classifies journal events.
type EventKind uint8

const (
	// EvWindow marks a completed sampling window (machine-wide; App is
	// -1). Window is the 1-based window ordinal, Cycle the end-of-window
	// core cycle, EB the machine total attained bandwidth fraction.
	EvWindow EventKind = iota
	// EvAppWindow carries one application's telemetry for the window it
	// precedes (the exporters group the N EvAppWindow events with the
	// EvWindow that follows them).
	EvAppWindow
	// EvDecision records a TLP-management decision being applied at the
	// warp schedulers (after the decision relay delay). Label renders the
	// full combination.
	EvDecision
	// EvWarmup marks the warmup boundary: metrics measurement starts here.
	EvWarmup
	// EvPhase records a policy phase transition (PBS init/scale/sweep/
	// tune/stable); Label is the new phase name.
	EvPhase
	// EvKernel marks a kernel relaunch detected for App in this window.
	EvKernel
	// EvProgress is generic long-job progress (grid sweeps): Done of
	// Total work items finished; Label is a human-readable line.
	EvProgress
	// EvResilience records a resilience-layer incident — a cancelled run,
	// a retried cache write, a watchdog trip; Label carries the detail.
	EvResilience
	// EvPolicyFault records a sandboxed TLP policy misbehaving — a panic
	// in OnSample, a blown decision time budget, or an invalid decision —
	// and the run degrading to the fallback decision; Label carries the
	// fault detail.
	EvPolicyFault
	// EvPolicySwap records a TLP policy being hot-swapped at a window
	// boundary; Label names the incoming policy.
	EvPolicySwap
	// EvDsweep records a distributed-sweep coordinator state transition —
	// a worker registering or deregistering, a lease granted, expired,
	// released, or reassigned, a completion accepted or fenced off; Label
	// carries the detail (worker, cell fingerprint, fencing token).
	EvDsweep
)

// String names the kind for CSV/debug output.
func (k EventKind) String() string {
	switch k {
	case EvWindow:
		return "window"
	case EvAppWindow:
		return "app-window"
	case EvDecision:
		return "decision"
	case EvWarmup:
		return "warmup"
	case EvPhase:
		return "phase"
	case EvKernel:
		return "kernel"
	case EvProgress:
		return "progress"
	case EvResilience:
		return "resilience"
	case EvPolicyFault:
		return "policy-fault"
	case EvPolicySwap:
		return "policy-swap"
	case EvDsweep:
		return "dsweep"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one structured journal entry. Only the fields relevant to the
// Kind are populated; App is -1 for machine-wide events.
type Event struct {
	Cycle  uint64
	Kind   EventKind
	App    int
	Window uint64 // window ordinal (EvWindow, EvAppWindow)
	Label  string // phase name, decision combo, progress line

	// Per-application window telemetry (EvAppWindow); EB doubles as the
	// machine total-BW on EvWindow.
	TLP int
	EB  float64
	BW  float64
	CMR float64
	IPC float64

	// Progress bookkeeping (EvProgress).
	Done, Total int
}

// Journal is an append-only structured event log. Recording is cheap (a
// mutex and a slice append), happens at window/decision granularity —
// never per cycle — and is safe from multiple goroutines (the grid
// builder records progress from its workers). Subscribers observe every
// event as it is recorded, even once the storage limit is reached.
type Journal struct {
	mu      sync.Mutex
	events  []Event
	limit   int
	dropped uint64
	subs    []func(Event)
}

// NewJournal returns an unbounded journal.
func NewJournal() *Journal { return &Journal{} }

// SetLimit bounds stored events: once len reaches limit, further events
// are counted as dropped but still delivered to subscribers. Zero (the
// default) stores everything.
func (j *Journal) SetLimit(limit int) {
	j.mu.Lock()
	j.limit = limit
	j.mu.Unlock()
}

// Record appends one event. A nil journal discards it.
func (j *Journal) Record(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	if j.limit > 0 && len(j.events) >= j.limit {
		j.dropped++
	} else {
		j.events = append(j.events, e)
	}
	subs := j.subs
	j.mu.Unlock()
	for _, fn := range subs {
		fn(e)
	}
}

// Subscribe registers fn to be called synchronously for every subsequent
// Record. Subscribers must not call back into the journal.
func (j *Journal) Subscribe(fn func(Event)) {
	j.mu.Lock()
	// Copy-on-write so Record can release the lock before fanning out.
	subs := make([]func(Event), 0, len(j.subs)+1)
	subs = append(subs, j.subs...)
	j.subs = append(subs, fn)
	j.mu.Unlock()
}

// Events returns a snapshot copy of the stored events.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.events...)
}

// Len returns the number of stored events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// Dropped returns how many events were discarded due to the limit.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Observer bundles the sinks the engine publishes into. Any field may be
// nil; the engine checks once per window. PhaseFn, when set, is polled at
// every window so phase transitions of the attached policy (e.g. PBS)
// land in the journal without coupling the policy to this package.
type Observer struct {
	Metrics *Registry
	Journal *Journal
	PhaseFn func() string
}

// Enabled reports whether the observer has any live sink.
func (o *Observer) Enabled() bool {
	return o != nil && (o.Metrics != nil || o.Journal != nil)
}
