// Package obs is the simulator's observability subsystem: a lightweight
// metrics registry (counters, gauges, and fixed-bucket histograms with
// atomic values, safe to scrape from a concurrent HTTP handler while the
// single-goroutine cycle engine publishes), a structured event journal
// (TLP decisions, PBS phase transitions, window rollovers, the warmup
// boundary, grid progress), and three exporters: Prometheus text format
// (prom.go), Chrome trace-event JSON (chrometrace.go), and a per-window
// CSV (csv.go).
//
// The engine side is branch-on-nil: a nil Observer — or a nil Registry or
// Journal inside one — costs a pointer compare at each sampling window and
// nothing at all on the per-cycle path, so the cycle engine stays
// allocation-free and bit-identical with observability disabled (guarded
// by the golden and steady-state-allocation tests in internal/sim).
// Publishing happens at window granularity: the engine scrapes its
// existing windowed counters into the registry's atomic values, which the
// HTTP exporter reads from any goroutine without locks.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The engine publishes
// either by Add/Inc (event-driven counters) or by Set with the lifetime
// total of an internal stats.Counter (scrape-style mirroring); both keep
// the exported value monotone.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Set stores the counter's value directly; used to mirror an engine-side
// lifetime counter whose own monotonicity is already guaranteed.
func (c *Counter) Set(n uint64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds in increasing order; an implicit +Inf bucket is always present.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1, the last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Label is one metric label pair. Labels are rendered in the order given
// at registration, so callers should use a consistent order per family.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type series struct {
	labels string // pre-rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

type family struct {
	name, help, typ string
	series          []*series
	byKey           map[string]*series
}

// Registry holds named metric families. Registration takes a lock;
// reading and writing metric values is lock-free. Registering the same
// name+labels again returns the existing handle, so wiring code can be
// idempotent.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(l.Value)
		b.WriteString(v)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// register finds or creates the family and series for name+labels. It
// panics on a type conflict (two registrations of one name with different
// metric types), which is a wiring bug, not a runtime condition.
func (r *Registry) register(name, help, typ string, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	key := renderLabels(labels)
	if s := f.byKey[key]; s != nil {
		return s
	}
	s := &series{labels: key}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// Counter registers (or finds) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, "counter", labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, "gauge", labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram registers (or finds) a fixed-bucket histogram. The bucket
// bounds of the first registration win for the whole family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.register(name, help, "histogram", labels)
	if s.h == nil {
		s.h = newHistogram(bounds)
	}
	return s.h
}
