package obs

import (
	"strings"
	"testing"

	"ebm/internal/tlp"
)

func TestRecorderCollectsSeries(t *testing.T) {
	r := NewRecorder(2)
	searching := true
	r.SearchingFn = func() bool { return searching }
	for w := 1; w <= 5; w++ {
		if w == 4 {
			searching = false
		}
		r.Hook(tlp.Sample{
			Cycle: uint64(w * 1000),
			Apps: []tlp.AppSample{
				{App: 0, TLP: 8, EB: 0.5, BW: 0.2},
				{App: 1, TLP: 4, EB: 0.3, BW: 0.1, KernelRelaunched: w == 3},
			},
		})
	}
	if len(r.TLP[0].Points) != 5 || len(r.EB[1].Points) != 5 {
		t.Fatal("series lengths")
	}
	if r.TLP[0].Points[0].Value != 8 || r.TLP[1].Points[0].Value != 4 {
		t.Fatal("TLP values")
	}
	if len(r.Relaunch) != 1 || r.Relaunch[0].Value != 1 {
		t.Fatalf("relaunch markers %v", r.Relaunch)
	}
	if r.MetricEB.Points[0].Value != 0.8 {
		t.Fatalf("EB-WS point = %v", r.MetricEB.Points[0].Value)
	}
	if r.Searching.Points[0].Value != 1 || r.Searching.Points[4].Value != 0 {
		t.Fatal("searching series wrong")
	}
}

func TestRecorderWithoutSearchingFn(t *testing.T) {
	r := NewRecorder(1)
	r.Hook(tlp.Sample{Apps: []tlp.AppSample{{TLP: 2}}})
	if len(r.Searching.Points) != 0 {
		t.Fatal("searching recorded without a source")
	}
}

func TestSeriesAdd(t *testing.T) {
	var s Series
	s.Add(10, 1.5)
	s.Add(20, 2.5)
	if len(s.Points) != 2 || s.Points[1].Cycle != 20 {
		t.Fatal("Add broken")
	}
}

func TestRenderASCII(t *testing.T) {
	var s Series
	s.Name = "x"
	for i := 0; i < 100; i++ {
		s.Add(uint64(i*1000), float64(i%25))
	}
	out := RenderASCII(s, 10, 24)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("%d buckets, want 10", len(lines))
	}
	for _, l := range lines {
		if !strings.Contains(l, "#") && !strings.HasSuffix(strings.TrimSpace(l), "0.00") {
			t.Fatalf("bucket line without bars: %q", l)
		}
	}
	if RenderASCII(Series{}, 10, 1) != "" {
		t.Fatal("empty series should render empty")
	}
	// Auto max.
	if RenderASCII(s, 5, 0) == "" {
		t.Fatal("auto-max render empty")
	}
}

func TestRenderASCIIClampsBars(t *testing.T) {
	var s Series
	s.Add(0, 1e9) // way above max
	out := RenderASCII(s, 1, 10)
	if strings.Count(out, "#") > 40 {
		t.Fatal("bar length not clamped")
	}
}
