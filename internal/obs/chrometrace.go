package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// ChromeTraceOptions configures the trace-event rendering.
type ChromeTraceOptions struct {
	// AppNames label the per-application tracks; missing entries fall
	// back to "app N".
	AppNames []string
	// Tracer, when non-nil, adds its finished spans as flamechart tracks
	// on a separate "orchestration" process (wall-clock microseconds;
	// the journal tracks above are in cycles).
	Tracer *Tracer
}

// traceEvent is one entry of the Chrome trace-event JSON format
// (chrome://tracing and Perfetto both load it). Ts and Dur are in
// microseconds; we map one core cycle to one microsecond.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	machinePid = 0
	tidWindows = 0
	tidEvents  = 1
	tidPhases  = 2

	// spanPid hosts the orchestration span tracks, far above the
	// per-application counter processes (pid = app+1).
	spanPid = 9999
)

// WriteChromeTrace renders the journal as Chrome trace-event JSON:
// sampling windows and PBS phases as duration tracks and decisions,
// warmup, and kernel relaunches as instant events on the "machine"
// process; per-application TLP/EB/BW/CMR/IPC as counter tracks on one
// process per application.
func WriteChromeTrace(w io.Writer, j *Journal, opts ChromeTraceOptions) error {
	events := j.Events()
	out := make([]traceEvent, 0, 4*len(events)+8)

	meta := func(pid int, name string) {
		out = append(out, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	meta(machinePid, "machine")
	named := make(map[int]bool)

	appName := func(app int) string {
		if app >= 0 && app < len(opts.AppNames) && opts.AppNames[app] != "" {
			return fmt.Sprintf("app%d %s", app, opts.AppNames[app])
		}
		return fmt.Sprintf("app%d", app)
	}
	counter := func(app int, cycle uint64, name string, v float64) {
		pid := app + 1
		if !named[pid] {
			named[pid] = true
			meta(pid, appName(app))
		}
		out = append(out, traceEvent{
			Name: name, Ph: "C", Ts: cycle, Pid: pid,
			Args: map[string]any{"value": v},
		})
	}

	var prevWindowEnd uint64
	var phaseName string
	var phaseStart uint64
	var lastCycle uint64
	for _, e := range events {
		if e.Cycle > lastCycle {
			lastCycle = e.Cycle
		}
		switch e.Kind {
		case EvWindow:
			out = append(out, traceEvent{
				Name: fmt.Sprintf("window %d", e.Window), Ph: "X",
				Ts: prevWindowEnd, Dur: e.Cycle - prevWindowEnd,
				Pid: machinePid, Tid: tidWindows,
				Args: map[string]any{"total_bw": e.BW},
			})
			prevWindowEnd = e.Cycle
		case EvAppWindow:
			counter(e.App, e.Cycle, "TLP", float64(e.TLP))
			counter(e.App, e.Cycle, "EB", e.EB)
			counter(e.App, e.Cycle, "BW", e.BW)
			counter(e.App, e.Cycle, "CMR", e.CMR)
			counter(e.App, e.Cycle, "IPC", e.IPC)
		case EvDecision:
			out = append(out, traceEvent{
				Name: "decision", Ph: "i", Ts: e.Cycle,
				Pid: machinePid, Tid: tidEvents, S: "p",
				Args: map[string]any{"combo": e.Label},
			})
		case EvWarmup:
			out = append(out, traceEvent{
				Name: "warmup end", Ph: "i", Ts: e.Cycle,
				Pid: machinePid, Tid: tidEvents, S: "p",
			})
		case EvKernel:
			out = append(out, traceEvent{
				Name: fmt.Sprintf("kernel relaunch app%d", e.App), Ph: "i",
				Ts: e.Cycle, Pid: machinePid, Tid: tidEvents, S: "t",
			})
		case EvPhase:
			if phaseName != "" {
				out = append(out, traceEvent{
					Name: phaseName, Ph: "X", Ts: phaseStart,
					Dur: e.Cycle - phaseStart, Pid: machinePid, Tid: tidPhases,
				})
			}
			phaseName, phaseStart = e.Label, e.Cycle
		}
	}
	if phaseName != "" && lastCycle > phaseStart {
		out = append(out, traceEvent{
			Name: phaseName, Ph: "X", Ts: phaseStart,
			Dur: lastCycle - phaseStart, Pid: machinePid, Tid: tidPhases,
		})
	}

	if opts.Tracer != nil {
		if spans := opts.Tracer.Spans(); len(spans) > 0 {
			meta(spanPid, "orchestration")
			out = appendSpanEvents(out, spans)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}

// WriteSpanTrace renders a tracer's spans alone as Chrome trace-event
// JSON — the `-trace-spans` artifact: one flamechart track per logical
// worker, wall-clock microseconds.
func WriteSpanTrace(w io.Writer, t *Tracer) error {
	return WriteChromeTrace(w, nil, ChromeTraceOptions{Tracer: t})
}

// packSpanLanes assigns each span a track ("lane") such that within a
// lane spans either nest or do not overlap — which is exactly what the
// Chrome trace viewer needs to draw X events as a flame stack. Spans of
// one worker's call chain contain each other and share a lane; spans of
// concurrent workers overlap without containment and spill onto fresh
// lanes, yielding one flamechart track per worker with no goroutine
// identity needed. Returns lane indices aligned with the sorted input.
func packSpanLanes(spans []SpanData) []int {
	lanes := make([]int, len(spans))
	// stacks[l] holds the open (containing) spans of lane l, innermost
	// last; a span fits the lane if the innermost still-open span fully
	// contains it, or the lane has drained.
	var stacks [][]SpanData
	for i, s := range spans {
		placed := false
		for l := range stacks {
			st := stacks[l]
			for len(st) > 0 && st[len(st)-1].End <= s.Start {
				st = st[:len(st)-1]
			}
			if len(st) == 0 || st[len(st)-1].End >= s.End {
				stacks[l] = append(st, s)
				lanes[i] = l
				placed = true
				break
			}
			stacks[l] = st
		}
		if !placed {
			stacks = append(stacks, []SpanData{s})
			lanes[i] = len(stacks) - 1
		}
	}
	return lanes
}

func appendSpanEvents(out []traceEvent, spans []SpanData) []traceEvent {
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].End > spans[j].End // longer (containing) spans first
	})
	lanes := packSpanLanes(spans)
	for i, s := range spans {
		var args map[string]any
		if len(s.Attrs) > 0 {
			args = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				args[a.Key] = a.Value
			}
		}
		ev := traceEvent{
			Name: s.Name,
			Ts:   uint64(s.Start.Microseconds()),
			Pid:  spanPid, Tid: lanes[i],
			Args: args,
		}
		// Anything under the format's microsecond resolution would render
		// as a zero-width X sliver; point events (watchdog trips) and
		// sub-microsecond spans stay visible as instants instead.
		if d := s.Dur(); d < time.Microsecond {
			ev.Ph, ev.S = "i", "t"
		} else {
			ev.Ph, ev.Dur = "X", uint64(d.Microseconds())
		}
		out = append(out, ev)
	}
	return out
}
