package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeTraceOptions configures the trace-event rendering.
type ChromeTraceOptions struct {
	// AppNames label the per-application tracks; missing entries fall
	// back to "app N".
	AppNames []string
}

// traceEvent is one entry of the Chrome trace-event JSON format
// (chrome://tracing and Perfetto both load it). Ts and Dur are in
// microseconds; we map one core cycle to one microsecond.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	machinePid = 0
	tidWindows = 0
	tidEvents  = 1
	tidPhases  = 2
)

// WriteChromeTrace renders the journal as Chrome trace-event JSON:
// sampling windows and PBS phases as duration tracks and decisions,
// warmup, and kernel relaunches as instant events on the "machine"
// process; per-application TLP/EB/BW/CMR/IPC as counter tracks on one
// process per application.
func WriteChromeTrace(w io.Writer, j *Journal, opts ChromeTraceOptions) error {
	events := j.Events()
	out := make([]traceEvent, 0, 4*len(events)+8)

	meta := func(pid int, name string) {
		out = append(out, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	meta(machinePid, "machine")
	named := make(map[int]bool)

	appName := func(app int) string {
		if app >= 0 && app < len(opts.AppNames) && opts.AppNames[app] != "" {
			return fmt.Sprintf("app%d %s", app, opts.AppNames[app])
		}
		return fmt.Sprintf("app%d", app)
	}
	counter := func(app int, cycle uint64, name string, v float64) {
		pid := app + 1
		if !named[pid] {
			named[pid] = true
			meta(pid, appName(app))
		}
		out = append(out, traceEvent{
			Name: name, Ph: "C", Ts: cycle, Pid: pid,
			Args: map[string]any{"value": v},
		})
	}

	var prevWindowEnd uint64
	var phaseName string
	var phaseStart uint64
	var lastCycle uint64
	for _, e := range events {
		if e.Cycle > lastCycle {
			lastCycle = e.Cycle
		}
		switch e.Kind {
		case EvWindow:
			out = append(out, traceEvent{
				Name: fmt.Sprintf("window %d", e.Window), Ph: "X",
				Ts: prevWindowEnd, Dur: e.Cycle - prevWindowEnd,
				Pid: machinePid, Tid: tidWindows,
				Args: map[string]any{"total_bw": e.BW},
			})
			prevWindowEnd = e.Cycle
		case EvAppWindow:
			counter(e.App, e.Cycle, "TLP", float64(e.TLP))
			counter(e.App, e.Cycle, "EB", e.EB)
			counter(e.App, e.Cycle, "BW", e.BW)
			counter(e.App, e.Cycle, "CMR", e.CMR)
			counter(e.App, e.Cycle, "IPC", e.IPC)
		case EvDecision:
			out = append(out, traceEvent{
				Name: "decision", Ph: "i", Ts: e.Cycle,
				Pid: machinePid, Tid: tidEvents, S: "p",
				Args: map[string]any{"combo": e.Label},
			})
		case EvWarmup:
			out = append(out, traceEvent{
				Name: "warmup end", Ph: "i", Ts: e.Cycle,
				Pid: machinePid, Tid: tidEvents, S: "p",
			})
		case EvKernel:
			out = append(out, traceEvent{
				Name: fmt.Sprintf("kernel relaunch app%d", e.App), Ph: "i",
				Ts: e.Cycle, Pid: machinePid, Tid: tidEvents, S: "t",
			})
		case EvPhase:
			if phaseName != "" {
				out = append(out, traceEvent{
					Name: phaseName, Ph: "X", Ts: phaseStart,
					Dur: e.Cycle - phaseStart, Pid: machinePid, Tid: tidPhases,
				})
			}
			phaseName, phaseStart = e.Label, e.Cycle
		}
	}
	if phaseName != "" && lastCycle > phaseStart {
		out = append(out, traceEvent{
			Name: phaseName, Ph: "X", Ts: phaseStart,
			Dur: lastCycle - phaseStart, Pid: machinePid, Tid: tidPhases,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}
