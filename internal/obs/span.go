package obs

import (
	"context"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A builds an Attr; the short name keeps instrumentation sites readable.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// SpanData is one finished span as recorded by a Tracer. Start and End
// are wall-clock offsets from the tracer's epoch (monotonic, so
// durations are exact even across clock adjustments).
type SpanData struct {
	ID     uint64
	Parent uint64 // 0 for root spans
	Name   string
	Attrs  []Attr
	Start  time.Duration
	End    time.Duration
}

// Dur returns the span's wall-clock duration.
func (sd SpanData) Dur() time.Duration { return sd.End - sd.Start }

// DefaultSpanLimit bounds how many finished spans a tracer retains;
// beyond it new spans are counted as dropped. Orchestration-granularity
// tracing (one handful of spans per simulation) stays far below it.
const DefaultSpanLimit = 1 << 20

// Tracer collects wall-clock spans from the orchestration layers: sweep,
// grid cell, cache get/put, checkpoint fork, pooled execution, retry,
// watchdog trip. It records at orchestration granularity only — never
// from the per-cycle engine hot path — so its overhead contract is
// "unmeasurable on any real run" (enforced by `make trace-bench`).
//
// All methods are safe for concurrent use and nil-safe: a nil *Tracer
// starts nil *Spans, and every Span method absorbs a nil receiver, so
// instrumented call sites need no "is tracing on?" branches.
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	spans   []SpanData
	nextID  uint64
	limit   int
	dropped uint64
}

// NewTracer returns a tracer whose span clock starts now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now(), limit: DefaultSpanLimit}
}

// SetLimit bounds the retained finished spans (<= 0 means unlimited).
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

func (t *Tracer) now() time.Duration { return time.Since(t.epoch) }

// Span is one in-flight (or finished) operation. Create with
// Tracer.Start or Span.Child, finish with End; a span that is never
// ended is simply not recorded.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Duration

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// Start opens a root span. A nil tracer returns a nil (no-op) span.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.start(0, name, attrs)
}

func (t *Tracer) start(parent uint64, name string, attrs []Attr) *Span {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{tr: t, id: id, parent: parent, name: name, start: t.now(), attrs: attrs}
}

// Instant records a zero-duration root span — a point event such as a
// watchdog trip.
func (t *Tracer) Instant(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.instant(0, name, attrs)
}

// instant records a point event: one timestamp, Start == End, so the
// exporter renders it as an instant marker rather than a zero-width bar.
func (t *Tracer) instant(parent uint64, name string, attrs []Attr) {
	now := t.now()
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	t.record(SpanData{ID: id, Parent: parent, Name: name, Attrs: attrs, Start: now, End: now})
}

// Child opens a span nested under s. A nil span returns a nil span, so
// chains off an untraced context cost nothing.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(s.id, name, attrs)
}

// Annotate appends an attribute to an in-flight span (e.g. the outcome,
// known only at the end).
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// End finishes the span and records it on the tracer. Idempotent; safe
// on a nil span and from any goroutine.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.tr.record(SpanData{
		ID: s.id, Parent: s.parent, Name: s.name, Attrs: attrs,
		Start: s.start, End: s.tr.now(),
	})
}

func (t *Tracer) record(sd SpanData) {
	t.mu.Lock()
	if t.limit > 0 && len(t.spans) >= t.limit {
		t.dropped++
	} else {
		t.spans = append(t.spans, sd)
	}
	t.mu.Unlock()
}

// Spans returns a copy of the finished spans in completion order.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanData(nil), t.spans...)
}

// Len returns the number of retained finished spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many finished spans the limit discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

type tracerCtxKey struct{}
type spanCtxKey struct{}

// WithTracer attaches a tracer to the context; every orchestration layer
// below (grid build, cache, checkpoints, pool, retries) picks it up via
// StartSpan. Attaching nil is a no-op.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerCtxKey{}, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerCtxKey{}).(*Tracer)
	return t
}

// SpanFrom returns the context's current span, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan opens a span as a child of the context's current span (or as
// a root on the context's tracer) and returns a context carrying it, so
// nesting follows the call tree with no signatures changed. Without a
// tracer it returns (ctx, nil) with no allocation — the universal no-op.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	var sp *Span
	if parent := SpanFrom(ctx); parent != nil {
		sp = parent.Child(name, attrs...)
	} else if tr := TracerFrom(ctx); tr != nil {
		sp = tr.Start(name, attrs...)
	}
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// Instant records a zero-duration span under the context's current span
// (or as a root) — point events like a watchdog trip. No tracer, no-op.
func Instant(ctx context.Context, name string, attrs ...Attr) {
	if parent := SpanFrom(ctx); parent != nil {
		parent.tr.instant(parent.id, name, attrs)
		return
	}
	TracerFrom(ctx).Instant(name, attrs...)
}
