package obs

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteWindowsCSV renders the journal's sampling windows as CSV: one row
// per window with the end-of-window cycle, per-application TLP/EB/BW/CMR
// columns, the machine EB sum (the EB-WS objective), a decision column
// counting the TLP decisions applied since the previous window, and the
// policy phase in effect (empty when the policy exposes none). numApps
// fixes the column set so rows are rectangular even for an empty journal.
func WriteWindowsCSV(w io.Writer, j *Journal, numApps int) error {
	cw := csv.NewWriter(w)
	head := []string{"cycle"}
	for i := 0; i < numApps; i++ {
		head = append(head,
			fmt.Sprintf("tlp%d", i), fmt.Sprintf("eb%d", i),
			fmt.Sprintf("bw%d", i), fmt.Sprintf("cmr%d", i))
	}
	head = append(head, "ebws", "decisions", "phase")
	if err := cw.Write(head); err != nil {
		return err
	}

	apps := make([]Event, numApps)
	haveApp := make([]bool, numApps)
	decisions := 0
	phase := ""
	row := make([]string, 0, len(head))
	for _, e := range j.Events() {
		switch e.Kind {
		case EvAppWindow:
			if e.App >= 0 && e.App < numApps {
				apps[e.App] = e
				haveApp[e.App] = true
			}
		case EvDecision:
			decisions++
		case EvPhase:
			phase = e.Label
		case EvWindow:
			row = append(row[:0], fmt.Sprint(e.Cycle))
			ebws := 0.0
			for i := 0; i < numApps; i++ {
				var a Event
				if haveApp[i] {
					a = apps[i]
				}
				ebws += a.EB
				row = append(row,
					fmt.Sprint(a.TLP), fmt.Sprintf("%g", a.EB),
					fmt.Sprintf("%g", a.BW), fmt.Sprintf("%g", a.CMR))
				haveApp[i] = false
			}
			row = append(row, fmt.Sprintf("%g", ebws), fmt.Sprint(decisions), phase)
			decisions = 0
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
