package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ebm_events_total", "events", L("app", "0"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Set(42)
	if c.Value() != 42 {
		t.Fatalf("counter after Set = %d, want 42", c.Value())
	}
	g := r.Gauge("ebm_depth", "depth")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}

	// Idempotent registration returns the same handle.
	if c2 := r.Counter("ebm_events_total", "events", L("app", "0")); c2 != c {
		t.Fatal("re-registration returned a new counter")
	}
	// Same family, different labels: a distinct series.
	if c3 := r.Counter("ebm_events_total", "events", L("app", "1")); c3 == c {
		t.Fatal("different labels returned the same counter")
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	c.Set(9)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metric handles must read zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ebm_lat", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("sum = %v, want 556.5", h.Sum())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`ebm_lat_bucket{le="1"} 2`, // 0.5 and the boundary value 1
		`ebm_lat_bucket{le="10"} 3`,
		`ebm_lat_bucket{le="100"} 4`,
		`ebm_lat_bucket{le="+Inf"} 5`,
		`ebm_lat_sum 556.5`,
		`ebm_lat_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("ebm_dram_row_hits_total", "DRAM row-buffer hits").Set(7)
	r.Gauge("ebm_app_eb", "per-app EB", L("app", "0"), L("name", "BLK")).Set(0.25)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP ebm_dram_row_hits_total DRAM row-buffer hits\n",
		"# TYPE ebm_dram_row_hits_total counter\n",
		"ebm_dram_row_hits_total 7\n",
		"# TYPE ebm_app_eb gauge\n",
		`ebm_app_eb{app="0",name="BLK"} 0.25` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	if got := renderLabels([]Label{{Key: "k", Value: `a"b\c`}}); got != `{k="a\"b\\c"}` {
		t.Fatalf("renderLabels = %s", got)
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as gauge after counter did not panic")
		}
	}()
	r.Gauge("x", "")
}

// TestConcurrentScrape exercises the scrape-while-publish contract: value
// writes and WriteText from concurrent goroutines must be race-free.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			g.Set(float64(i))
			h.Observe(float64(i % 3))
		}
	}()
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
