package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestExpositionEscapesAwkwardLabelValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("ebm_runs_total", "runs", L("scheme", `ccws:hivta=0.2`)).Set(1)
	r.Gauge("ebm_odd", "odd values",
		L("path", `C:\tmp\"x"`), L("msg", "line1\nline2")).Set(3)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`ebm_runs_total{scheme="ccws:hivta=0.2"} 1`,
		`ebm_odd{path="C:\\tmp\\\"x\"",msg="line1\nline2"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Escaped values must never introduce raw newlines inside a sample
	// line — every line stays "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, " ") < 1 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestHelpNewlinesFlattened(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "first\nsecond").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# HELP c first second\n") {
		t.Fatalf("HELP not flattened:\n%s", b.String())
	}
}

func TestLabeledHistogramBucketRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ebm_lat", "latency", []float64{1, 10}, L("app", "0"), L("kind", "grid"))
	for _, v := range []float64{0.5, 5, 50} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// le must be spliced INTO the existing label set, and sum/count keep
	// the base labels untouched.
	for _, want := range []string{
		`ebm_lat_bucket{app="0",kind="grid",le="1"} 1`,
		`ebm_lat_bucket{app="0",kind="grid",le="10"} 2`,
		`ebm_lat_bucket{app="0",kind="grid",le="+Inf"} 3`,
		`ebm_lat_sum{app="0",kind="grid"} 55.5`,
		`ebm_lat_count{app="0",kind="grid"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition missing %q:\n%s", want, out)
		}
	}
}

func TestMergeLabels(t *testing.T) {
	if got := mergeLabels("", `le="1"`); got != `{le="1"}` {
		t.Fatalf("empty base: %s", got)
	}
	if got := mergeLabels(`{a="b"}`, `le="+Inf"`); got != `{a="b",le="+Inf"}` {
		t.Fatalf("spliced: %s", got)
	}
}

// TestScrapeDuringPublish drives the real HTTP handler while publishers
// hammer every metric type — the -race build is the assertion.
func TestScrapeDuringPublish(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c", "", L("w", string(rune('a'+w))))
			g := r.Gauge("g", "", L("w", string(rune('a'+w))))
			h := r.Histogram("h", "", []float64{1, 2}, L("w", string(rune('a'+w))))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 4))
			}
		}(w)
	}
	for i := 0; i < 25; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Fatalf("scrape %d: status=%d len=%d", i, resp.StatusCode, len(body))
		}
	}
	close(stop)
	wg.Wait()
}

func TestServeExposesPprof(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
}
