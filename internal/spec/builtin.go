package spec

// The nine scheme kinds the paper evaluates, registered as descriptors.
// Every body here is the former closed kind-switch arm, moved verbatim:
// the golden cache-key and manager-name tests pin that this refactor
// changed nothing observable.

import (
	"fmt"
	"slices"
	"strconv"
	"strings"

	"ebm/internal/config"
	pbscore "ebm/internal/core"
	"ebm/internal/tlp"
)

func registerBuiltins() {
	registerStaticKind(KindStatic)
	registerStaticKind(KindBestTLP)
	registerMaxTLP()
	registerDynCTA()
	registerModBypass()
	registerCCWS()
	registerPBSKind(KindPBSWS)
	registerPBSKind(KindPBSFI)
	registerPBSKind(KindPBSHS)
}

// bypassKnob parses the shared static/besttlp bypass mask ("bypass=tf").
func bypassKnob() KnobDef {
	return KnobDef{Key: "bypass", Help: "bypass=tf…", Set: func(sp *SchemeSpec, val string) error {
		if sp.Static == nil {
			sp.Static = &StaticSpec{}
		}
		mask := make([]bool, len(val))
		for j := 0; j < len(val); j++ {
			switch val[j] {
			case 't':
				mask[j] = true
			case 'f':
			default:
				return fmt.Errorf("spec: bypass mask %q must be t/f per application", val)
			}
		}
		sp.Static.Bypass = mask
		return nil
	}}
}

// registerStaticKind registers static or besttlp; the two share grammar
// and validation and differ only in the default report name.
func registerStaticKind(kind string) {
	Register(Descriptor{
		Kind:        kind,
		Knobs:       []KnobDef{bypassKnob()},
		AcceptsTLPs: true,
		Stater:      true,
		Normalize: func(s SchemeSpec) SchemeSpec {
			out := SchemeSpec{Kind: s.Kind}
			st := &StaticSpec{}
			if s.Static != nil {
				st.TLPs = slices.Clone(s.Static.TLPs)
				st.Label = s.Static.Label
				if slices.Contains(s.Static.Bypass, true) {
					st.Bypass = slices.Clone(s.Static.Bypass)
				}
			}
			out.Static = st
			return out
		},
		Validate: func(n SchemeSpec, numApps int) error {
			if n.Unresolved() {
				return fmt.Errorf("spec: besttlp combination unresolved; resolve it from alone profiles (spec.BestTLP)")
			}
			st := n.Static
			if len(st.TLPs) == 0 {
				return fmt.Errorf("spec: %s needs a TLP combination, e.g. %q", n.Kind, n.Kind+":2,8")
			}
			if numApps > 0 && len(st.TLPs) != numApps {
				return fmt.Errorf("spec: %s has %d TLP values for %d applications", n.Kind, len(st.TLPs), numApps)
			}
			for _, t := range st.TLPs {
				if t < 1 || t > config.MaxTLP {
					return fmt.Errorf("spec: TLP %d out of range 1..%d", t, config.MaxTLP)
				}
			}
			if st.Bypass != nil && len(st.Bypass) != len(st.TLPs) {
				return fmt.Errorf("spec: bypass mask has %d values for %d applications", len(st.Bypass), len(st.TLPs))
			}
			return nil
		},
		Factory: func(n SchemeSpec, numApps int) (tlp.Manager, error) {
			name := n.Static.Label
			if name == "" {
				if n.Kind == KindBestTLP {
					// The combination is part of the name so reports
					// distinguish runs even when re-profiling changes the
					// best TLPs.
					name = fmt.Sprintf("++bestTLP%v", n.Static.TLPs)
				} else {
					name = fmt.Sprintf("static%v", n.Static.TLPs)
				}
			}
			return tlp.NewStatic(name, n.Static.TLPs, n.Static.Bypass)
		},
		Canonical: func(n SchemeSpec, numApps int) SchemeSpec {
			if n.Unresolved() {
				return n
			}
			return SchemeSpec{Kind: KindStatic, Static: &StaticSpec{TLPs: n.Static.TLPs, Bypass: n.Static.Bypass}}
		},
		Format: func(n SchemeSpec) []string {
			var args []string
			for _, t := range n.Static.TLPs {
				args = append(args, strconv.Itoa(t))
			}
			if n.Static.Bypass != nil {
				mask := make([]byte, len(n.Static.Bypass))
				for j, b := range n.Static.Bypass {
					if b {
						mask[j] = 't'
					} else {
						mask[j] = 'f'
					}
				}
				args = append(args, "bypass="+string(mask))
			}
			return args
		},
	})
}

func registerMaxTLP() {
	Register(Descriptor{
		Kind:   KindMaxTLP,
		Stater: true,
		Normalize: func(s SchemeSpec) SchemeSpec {
			return SchemeSpec{Kind: KindMaxTLP} // no knobs
		},
		Validate: func(n SchemeSpec, numApps int) error {
			if numApps == 0 {
				return fmt.Errorf("spec: maxtlp needs the application count")
			}
			return nil
		},
		Factory: func(n SchemeSpec, numApps int) (tlp.Manager, error) {
			return tlp.NewMaxTLP(numApps), nil
		},
		Canonical: func(n SchemeSpec, numApps int) SchemeSpec {
			if numApps <= 0 {
				return n
			}
			tlps := make([]int, numApps)
			for i := range tlps {
				tlps[i] = config.MaxTLP
			}
			return SchemeSpec{Kind: KindStatic, Static: &StaticSpec{TLPs: tlps}}
		},
	})
}

func dynSub(sp *SchemeSpec) *DynCTASpec {
	if sp.DynCTA == nil {
		sp.DynCTA = &DynCTASpec{}
	}
	return sp.DynCTA
}

func registerDynCTA() {
	Register(Descriptor{
		Kind:   KindDynCTA,
		Stater: true,
		Knobs: []KnobDef{
			knobF(KindDynCTA, "himem", func(sp *SchemeSpec) *float64 { return &dynSub(sp).HighMemStall }),
			knobF(KindDynCTA, "lomem", func(sp *SchemeSpec) *float64 { return &dynSub(sp).LowMemStall }),
			knobF(KindDynCTA, "loutil", func(sp *SchemeSpec) *float64 { return &dynSub(sp).LowUtil }),
			knobI(KindDynCTA, "hyst", func(sp *SchemeSpec) *int { return &dynSub(sp).Hysteresis }),
		},
		Normalize: func(s SchemeSpec) SchemeSpec {
			d := defaultDynCTA()
			if s.DynCTA != nil {
				fillF(&d.HighMemStall, s.DynCTA.HighMemStall)
				fillF(&d.LowMemStall, s.DynCTA.LowMemStall)
				fillF(&d.LowUtil, s.DynCTA.LowUtil)
				fillI(&d.Hysteresis, s.DynCTA.Hysteresis)
			}
			return SchemeSpec{Kind: KindDynCTA, DynCTA: d}
		},
		Validate: func(n SchemeSpec, numApps int) error {
			d := n.DynCTA
			if d.Hysteresis < 1 {
				return fmt.Errorf("spec: dyncta hysteresis %d < 1", d.Hysteresis)
			}
			if d.LowMemStall >= d.HighMemStall {
				return fmt.Errorf("spec: dyncta lomem %g >= himem %g", d.LowMemStall, d.HighMemStall)
			}
			return nil
		},
		Factory: func(n SchemeSpec, numApps int) (tlp.Manager, error) {
			d := tlp.NewDynCTA()
			d.HighMemStall = n.DynCTA.HighMemStall
			d.LowMemStall = n.DynCTA.LowMemStall
			d.LowUtil = n.DynCTA.LowUtil
			d.Hysteresis = n.DynCTA.Hysteresis
			return d, nil
		},
		Format: func(n SchemeSpec) []string {
			def := defaultDynCTA()
			var args []string
			numArg(&args, "himem", n.DynCTA.HighMemStall, def.HighMemStall)
			numArg(&args, "lomem", n.DynCTA.LowMemStall, def.LowMemStall)
			numArg(&args, "loutil", n.DynCTA.LowUtil, def.LowUtil)
			intArg(&args, "hyst", n.DynCTA.Hysteresis, def.Hysteresis)
			return args
		},
	})
}

func ccwsSub(sp *SchemeSpec) *CCWSSpec {
	if sp.CCWS == nil {
		sp.CCWS = &CCWSSpec{}
	}
	return sp.CCWS
}

func registerCCWS() {
	Register(Descriptor{
		Kind:   KindCCWS,
		Stater: true,
		// CCWS reads the VTARate signal, live only when the run enables
		// the victim-tag detector; 1024 tags is the paper's capacity.
		VictimTags: 1024,
		Knobs: []KnobDef{
			knobF(KindCCWS, "hivta", func(sp *SchemeSpec) *float64 { return &ccwsSub(sp).HighVTA }),
			knobF(KindCCWS, "lovta", func(sp *SchemeSpec) *float64 { return &ccwsSub(sp).LowVTA }),
			knobF(KindCCWS, "loutil", func(sp *SchemeSpec) *float64 { return &ccwsSub(sp).LowUtil }),
			knobI(KindCCWS, "hyst", func(sp *SchemeSpec) *int { return &ccwsSub(sp).Hysteresis }),
		},
		Normalize: func(s SchemeSpec) SchemeSpec {
			c := defaultCCWS()
			if s.CCWS != nil {
				fillF(&c.HighVTA, s.CCWS.HighVTA)
				fillF(&c.LowVTA, s.CCWS.LowVTA)
				fillF(&c.LowUtil, s.CCWS.LowUtil)
				fillI(&c.Hysteresis, s.CCWS.Hysteresis)
			}
			return SchemeSpec{Kind: KindCCWS, CCWS: c}
		},
		Validate: func(n SchemeSpec, numApps int) error {
			c := n.CCWS
			if c.Hysteresis < 1 {
				return fmt.Errorf("spec: ccws hysteresis %d < 1", c.Hysteresis)
			}
			if c.LowVTA >= c.HighVTA {
				return fmt.Errorf("spec: ccws lovta %g >= hivta %g", c.LowVTA, c.HighVTA)
			}
			return nil
		},
		Factory: func(n SchemeSpec, numApps int) (tlp.Manager, error) {
			c := tlp.NewCCWS()
			c.HighVTA = n.CCWS.HighVTA
			c.LowVTA = n.CCWS.LowVTA
			c.LowUtil = n.CCWS.LowUtil
			c.Hysteresis = n.CCWS.Hysteresis
			return c, nil
		},
		Format: func(n SchemeSpec) []string {
			def := defaultCCWS()
			var args []string
			numArg(&args, "hivta", n.CCWS.HighVTA, def.HighVTA)
			numArg(&args, "lovta", n.CCWS.LowVTA, def.LowVTA)
			numArg(&args, "loutil", n.CCWS.LowUtil, def.LowUtil)
			intArg(&args, "hyst", n.CCWS.Hysteresis, def.Hysteresis)
			return args
		},
	})
}

func modSub(sp *SchemeSpec) *ModBypassSpec {
	if sp.ModBypass == nil {
		sp.ModBypass = &ModBypassSpec{}
	}
	return sp.ModBypass
}

func registerModBypass() {
	Register(Descriptor{
		Kind:   KindModBypass,
		Stater: true,
		Knobs: []KnobDef{
			knobF(KindModBypass, "l1mr", func(sp *SchemeSpec) *float64 { return &modSub(sp).BypassL1MR }),
			knobI(KindModBypass, "confirm", func(sp *SchemeSpec) *int { return &modSub(sp).Confirm }),
			knobI(KindModBypass, "probe", func(sp *SchemeSpec) *int { return &modSub(sp).ProbeEvery }),
		},
		Normalize: func(s SchemeSpec) SchemeSpec {
			m := defaultModBypass()
			if s.ModBypass != nil {
				fillF(&m.BypassL1MR, s.ModBypass.BypassL1MR)
				fillI(&m.Confirm, s.ModBypass.Confirm)
				fillI(&m.ProbeEvery, s.ModBypass.ProbeEvery)
			}
			if m.ProbeEvery < 0 {
				m.ProbeEvery = -1 // every non-positive value means "never probe"
			}
			return SchemeSpec{Kind: KindModBypass, ModBypass: m}
		},
		Validate: func(n SchemeSpec, numApps int) error {
			m := n.ModBypass
			if m.BypassL1MR <= 0 || m.BypassL1MR > 1 {
				return fmt.Errorf("spec: modbypass l1mr %g outside (0,1]", m.BypassL1MR)
			}
			if m.Confirm < 1 {
				return fmt.Errorf("spec: modbypass confirm %d < 1", m.Confirm)
			}
			return nil
		},
		Factory: func(n SchemeSpec, numApps int) (tlp.Manager, error) {
			m := tlp.NewModBypass()
			m.BypassL1MR = n.ModBypass.BypassL1MR
			m.Confirm = n.ModBypass.Confirm
			m.ProbeEvery = n.ModBypass.ProbeEvery
			return m, nil
		},
		Format: func(n SchemeSpec) []string {
			def := defaultModBypass()
			var args []string
			numArg(&args, "l1mr", n.ModBypass.BypassL1MR, def.BypassL1MR)
			intArg(&args, "confirm", n.ModBypass.Confirm, def.Confirm)
			intArg(&args, "probe", n.ModBypass.ProbeEvery, def.ProbeEvery)
			return args
		},
	})
}

func pbsSub(sp *SchemeSpec) *PBSSpec {
	if sp.PBS == nil {
		sp.PBS = &PBSSpec{}
	}
	return sp.PBS
}

func registerPBSKind(kind string) {
	Register(Descriptor{
		Kind:   kind,
		Stater: true,
		Knobs: []KnobDef{
			{Key: "scaling", Set: func(sp *SchemeSpec, val string) error {
				if _, err := scaleMode(val); err != nil {
					return err
				}
				pbsSub(sp).Scaling = val
				return nil
			}},
			{Key: "sweep", Set: func(sp *SchemeSpec, val string) error {
				var levels []int
				for _, part := range strings.Split(val, "+") {
					lvl, err := strconv.Atoi(part)
					if err != nil {
						return badArg(kind, "sweep="+val)
					}
					levels = append(levels, lvl)
				}
				pbsSub(sp).SweepLevels = levels
				return nil
			}},
			knobI(kind, "settle", func(sp *SchemeSpec) *int { return &pbsSub(sp).SettleWindows }),
			knobI(kind, "measure", func(sp *SchemeSpec) *int { return &pbsSub(sp).MeasureWindows }),
			knobI(kind, "patience", func(sp *SchemeSpec) *int { return &pbsSub(sp).TunePatience }),
			knobI(kind, "fullevery", func(sp *SchemeSpec) *int { return &pbsSub(sp).FullSearchEvery }),
			knobF(kind, "drift", func(sp *SchemeSpec) *float64 { return &pbsSub(sp).DriftThreshold }),
			knobI(kind, "driftwin", func(sp *SchemeSpec) *int { return &pbsSub(sp).DriftWindows }),
		},
		Normalize: func(s SchemeSpec) SchemeSpec {
			p := defaultPBS(kind)
			if s.PBS != nil {
				if s.PBS.Scaling != "" {
					p.Scaling = s.PBS.Scaling
				}
				if len(s.PBS.SweepLevels) > 0 {
					p.SweepLevels = slices.Clone(s.PBS.SweepLevels)
				}
				p.GroupEB = slices.Clone(s.PBS.GroupEB)
				fillI(&p.SettleWindows, s.PBS.SettleWindows)
				fillI(&p.MeasureWindows, s.PBS.MeasureWindows)
				fillI(&p.TunePatience, s.PBS.TunePatience)
				fillI(&p.FullSearchEvery, s.PBS.FullSearchEvery)
				p.DriftThreshold = s.PBS.DriftThreshold
				p.DriftWindows = s.PBS.DriftWindows
			}
			// The drift detector is one feature: no threshold means the window
			// count is dead, and an enabled detector acts on at least one
			// window — normalize both so equivalent configs compare equal.
			if p.DriftThreshold == 0 {
				p.DriftWindows = 0
			} else if p.DriftWindows == 0 {
				p.DriftWindows = 1
			}
			p.SweepLevels = slices.Clone(p.SweepLevels)
			return SchemeSpec{Kind: kind, PBS: p}
		},
		Validate: func(n SchemeSpec, numApps int) error {
			p := n.PBS
			mode, err := scaleMode(p.Scaling)
			if err != nil {
				return err
			}
			if mode == pbscore.GroupScale {
				if len(p.GroupEB) == 0 {
					return fmt.Errorf("spec: %s group scaling needs per-application group_eb factors", n.Kind)
				}
				if numApps > 0 && len(p.GroupEB) != numApps {
					return fmt.Errorf("spec: %s has %d group_eb factors for %d applications", n.Kind, len(p.GroupEB), numApps)
				}
			}
			if len(p.SweepLevels) == 0 {
				return fmt.Errorf("spec: %s needs sweep levels", n.Kind)
			}
			for _, t := range p.SweepLevels {
				if t < 1 || t > config.MaxTLP {
					return fmt.Errorf("spec: sweep level %d out of range 1..%d", t, config.MaxTLP)
				}
			}
			if p.MeasureWindows < 1 || p.SettleWindows < 0 {
				return fmt.Errorf("spec: %s measure_windows %d / settle_windows %d invalid", n.Kind, p.MeasureWindows, p.SettleWindows)
			}
			if p.DriftThreshold < 0 || p.DriftWindows < 0 {
				return fmt.Errorf("spec: %s drift knobs must be non-negative", n.Kind)
			}
			return nil
		},
		Factory: func(n SchemeSpec, numApps int) (tlp.Manager, error) {
			p := pbscore.NewPBS(objective(n.Kind))
			mode, _ := scaleMode(n.PBS.Scaling) // validated above
			p.Scaling = mode
			p.GroupValues = slices.Clone(n.PBS.GroupEB)
			p.SweepLevels = slices.Clone(n.PBS.SweepLevels)
			p.SettleWindows = n.PBS.SettleWindows
			p.MeasureWindows = n.PBS.MeasureWindows
			p.TunePatience = n.PBS.TunePatience
			p.FullSearchEvery = n.PBS.FullSearchEvery
			p.DriftThreshold = n.PBS.DriftThreshold
			p.DriftWindows = n.PBS.DriftWindows
			return p, nil
		},
		Format: func(n SchemeSpec) []string {
			def := defaultPBS(n.Kind)
			var args []string
			if n.PBS.Scaling != def.Scaling {
				args = append(args, "scaling="+n.PBS.Scaling)
			}
			if !slices.Equal(n.PBS.SweepLevels, def.SweepLevels) {
				parts := make([]string, len(n.PBS.SweepLevels))
				for j, lvl := range n.PBS.SweepLevels {
					parts[j] = strconv.Itoa(lvl)
				}
				args = append(args, "sweep="+strings.Join(parts, "+"))
			}
			intArg(&args, "settle", n.PBS.SettleWindows, def.SettleWindows)
			intArg(&args, "measure", n.PBS.MeasureWindows, def.MeasureWindows)
			intArg(&args, "patience", n.PBS.TunePatience, def.TunePatience)
			intArg(&args, "fullevery", n.PBS.FullSearchEvery, def.FullSearchEvery)
			numArg(&args, "drift", n.PBS.DriftThreshold, 0)
			if n.PBS.DriftThreshold != 0 {
				intArg(&args, "driftwin", n.PBS.DriftWindows, 1)
			}
			return args
		},
	})
}

// numArg/intArg append a key=value arg when the knob differs from its
// default (the Format building blocks, shared by every kind).
func numArg(args *[]string, key string, v, def float64) {
	if v != def {
		*args = append(*args, key+"="+strconv.FormatFloat(v, 'g', -1, 64))
	}
}

func intArg(args *[]string, key string, v, def int) {
	if v != def {
		*args = append(*args, key+"="+strconv.Itoa(v))
	}
}
