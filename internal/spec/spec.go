// Package spec is the canonical, serializable description of what to
// simulate: a SchemeSpec names a TLP-management policy by kind plus its
// typed knobs, and a RunSpec adds the machine, the applications, and the
// run lengths. Every scheme the paper evaluates — static combinations,
// ++bestTLP, ++maxTLP, DynCTA, Mod+Bypass, CCWS, and PBS-WS/FI/HS — is
// registered here with a validated factory producing a tlp.Manager, so
// commands, experiments, and the result cache all construct policies
// from one description instead of thirty scattered switch arms.
//
// Specs round-trip two ways: JSON (the service-facing request encoding)
// and the compact flag-string grammar of ParseScheme/String
// ("static:2,8", "pbs-ws:drift=0.6,driftwin=4"). Normalization fills
// every knob with the defaults of the real constructors, so a spec that
// states a default explicitly and one that omits it are the same spec —
// the property internal/simcache's canonical cache keys build on.
package spec

import (
	"fmt"
	"slices"

	"ebm/internal/config"
	pbscore "ebm/internal/core"
	"ebm/internal/metrics"
	"ebm/internal/tlp"
)

// Scheme kinds, as written in flag strings and JSON.
const (
	KindStatic    = "static"
	KindBestTLP   = "besttlp"
	KindMaxTLP    = "maxtlp"
	KindDynCTA    = "dyncta"
	KindModBypass = "modbypass"
	KindCCWS      = "ccws"
	KindPBSWS     = "pbs-ws"
	KindPBSFI     = "pbs-fi"
	KindPBSHS     = "pbs-hs"
)

// Kinds returns every registered scheme kind in presentation order.
func Kinds() []string {
	return []string{
		KindStatic, KindBestTLP, KindMaxTLP, KindDynCTA,
		KindModBypass, KindCCWS, KindPBSWS, KindPBSFI, KindPBSHS,
	}
}

// StaticSpec parameterizes the static and besttlp kinds.
type StaticSpec struct {
	// TLPs is the per-application TLP combination. For besttlp it is the
	// profile-derived best combination; a besttlp spec with no TLPs is
	// unresolved and cannot build a manager yet.
	TLPs []int `json:"tlps,omitempty"`

	// Bypass optionally bypasses the L1 for selected applications. Nil
	// and all-false are the same configuration (and normalize to nil).
	Bypass []bool `json:"bypass,omitempty"`

	// Label overrides the manager's report name (e.g. "alone@4"). It is
	// display-only: not expressible in the flag grammar and dropped from
	// canonical cache keys, since it never affects the simulation.
	Label string `json:"label,omitempty"`
}

// DynCTASpec parameterizes the ++DynCTA baseline. Zero fields take the
// defaults of tlp.NewDynCTA.
type DynCTASpec struct {
	HighMemStall float64 `json:"high_mem_stall,omitempty"`
	LowMemStall  float64 `json:"low_mem_stall,omitempty"`
	LowUtil      float64 `json:"low_util,omitempty"`
	Hysteresis   int     `json:"hysteresis,omitempty"`
}

// CCWSSpec parameterizes the CCWS-style baseline. Zero fields take the
// defaults of tlp.NewCCWS. The run must enable the victim-tag detector
// (RunSpec.VictimTags) for the VTARate signal to be live.
type CCWSSpec struct {
	HighVTA    float64 `json:"high_vta,omitempty"`
	LowVTA     float64 `json:"low_vta,omitempty"`
	LowUtil    float64 `json:"low_util,omitempty"`
	Hysteresis int     `json:"hysteresis,omitempty"`
}

// ModBypassSpec parameterizes the Mod+Bypass baseline. Zero fields take
// the defaults of tlp.NewModBypass; ProbeEvery -1 disables re-probing.
type ModBypassSpec struct {
	BypassL1MR float64 `json:"bypass_l1mr,omitempty"`
	Confirm    int     `json:"confirm,omitempty"`
	ProbeEvery int     `json:"probe_every,omitempty"`
}

// PBSSpec parameterizes the pattern-based searching managers. Zero
// fields take the defaults of core.NewPBS for the kind's objective.
type PBSSpec struct {
	// Scaling is the alone-EB scaling source: "none", "group", or
	// "sampled". Empty means the objective's default (none for WS,
	// sampled for FI/HS).
	Scaling string `json:"scaling,omitempty"`

	// GroupEB supplies the per-application factors for group scaling.
	// JSON/API-only (profile-derived, not flag-expressible).
	GroupEB []float64 `json:"group_eb,omitempty"`

	SweepLevels     []int   `json:"sweep_levels,omitempty"`
	SettleWindows   int     `json:"settle_windows,omitempty"`
	MeasureWindows  int     `json:"measure_windows,omitempty"`
	TunePatience    int     `json:"tune_patience,omitempty"`
	FullSearchEvery int     `json:"full_search_every,omitempty"`
	DriftThreshold  float64 `json:"drift_threshold,omitempty"`
	DriftWindows    int     `json:"drift_windows,omitempty"`
}

// SchemeSpec is the canonical description of one TLP-management policy:
// a kind plus the sub-spec that kind reads (the others stay nil). The
// zero value of a sub-spec means "all defaults", so SchemeSpec{Kind:
// KindDynCTA} is the paper's DynCTA baseline.
type SchemeSpec struct {
	Kind      string         `json:"kind"`
	Static    *StaticSpec    `json:"static,omitempty"`
	DynCTA    *DynCTASpec    `json:"dyncta,omitempty"`
	CCWS      *CCWSSpec      `json:"ccws,omitempty"`
	ModBypass *ModBypassSpec `json:"modbypass,omitempty"`
	PBS       *PBSSpec       `json:"pbs,omitempty"`
}

// Static returns a fixed-TLP-combination scheme (bypass may be nil).
func Static(tlps []int, bypass []bool) SchemeSpec {
	s := SchemeSpec{Kind: KindStatic, Static: &StaticSpec{
		TLPs:   slices.Clone(tlps),
		Bypass: slices.Clone(bypass),
	}}
	return mustNormalize(s)
}

// Labeled is Static with an explicit report name (e.g. "alone@4").
func Labeled(label string, tlps []int, bypass []bool) SchemeSpec {
	s := Static(tlps, bypass)
	s.Static.Label = label
	return s
}

// BestTLP returns the ++bestTLP scheme resolved to a concrete
// profile-derived combination.
func BestTLP(tlps []int) SchemeSpec {
	return mustNormalize(SchemeSpec{Kind: KindBestTLP, Static: &StaticSpec{TLPs: slices.Clone(tlps)}})
}

// MaxTLP returns the ++maxTLP scheme (every application at the top TLP).
func MaxTLP() SchemeSpec { return mustNormalize(SchemeSpec{Kind: KindMaxTLP}) }

// DynCTA returns the ++DynCTA baseline with its default thresholds.
func DynCTA() SchemeSpec { return mustNormalize(SchemeSpec{Kind: KindDynCTA}) }

// CCWS returns the CCWS-style baseline with its default thresholds.
func CCWS() SchemeSpec { return mustNormalize(SchemeSpec{Kind: KindCCWS}) }

// ModBypass returns the Mod+Bypass baseline with its default thresholds.
func ModBypass() SchemeSpec { return mustNormalize(SchemeSpec{Kind: KindModBypass}) }

// PBS returns the pattern-based searching scheme for an objective
// (PBS-WS, PBS-FI, or PBS-HS) with the paper's default knobs.
func PBS(obj metrics.Objective) SchemeSpec {
	kind := KindPBSWS
	switch obj {
	case metrics.ObjFI:
		kind = KindPBSFI
	case metrics.ObjHS:
		kind = KindPBSHS
	}
	return mustNormalize(SchemeSpec{Kind: kind})
}

// Unresolved reports whether the spec still needs profile-derived data
// before it can build a manager (a besttlp scheme with no combination).
func (s SchemeSpec) Unresolved() bool {
	return s.Kind == KindBestTLP && (s.Static == nil || len(s.Static.TLPs) == 0)
}

// isPBS reports whether kind is one of the pattern-based searchers.
func isPBS(kind string) bool {
	return kind == KindPBSWS || kind == KindPBSFI || kind == KindPBSHS
}

// objective returns the EB objective a PBS kind optimizes.
func objective(kind string) metrics.Objective {
	switch kind {
	case KindPBSFI:
		return metrics.ObjFI
	case KindPBSHS:
		return metrics.ObjHS
	default:
		return metrics.ObjWS
	}
}

// defaultPBS reads the default knobs off the real constructor so the
// spec layer can never drift from core.NewPBS.
func defaultPBS(kind string) *PBSSpec {
	p := pbscore.NewPBS(objective(kind))
	return &PBSSpec{
		Scaling:         p.Scaling.String(),
		SweepLevels:     p.SweepLevels,
		SettleWindows:   p.SettleWindows,
		MeasureWindows:  p.MeasureWindows,
		TunePatience:    p.TunePatience,
		FullSearchEvery: p.FullSearchEvery,
	}
}

// defaultDynCTA / defaultCCWS / defaultModBypass likewise mirror the
// manager constructors' defaults.
func defaultDynCTA() *DynCTASpec {
	d := tlp.NewDynCTA()
	return &DynCTASpec{
		HighMemStall: d.HighMemStall, LowMemStall: d.LowMemStall,
		LowUtil: d.LowUtil, Hysteresis: d.Hysteresis,
	}
}

func defaultCCWS() *CCWSSpec {
	c := tlp.NewCCWS()
	return &CCWSSpec{
		HighVTA: c.HighVTA, LowVTA: c.LowVTA,
		LowUtil: c.LowUtil, Hysteresis: c.Hysteresis,
	}
}

func defaultModBypass() *ModBypassSpec {
	m := tlp.NewModBypass()
	return &ModBypassSpec{BypassL1MR: m.BypassL1MR, Confirm: m.Confirm, ProbeEvery: m.ProbeEvery}
}

func scaleMode(s string) (pbscore.ScaleMode, error) {
	switch s {
	case pbscore.NoScale.String():
		return pbscore.NoScale, nil
	case pbscore.GroupScale.String():
		return pbscore.GroupScale, nil
	case pbscore.SampledScale.String():
		return pbscore.SampledScale, nil
	default:
		return 0, fmt.Errorf("spec: unknown scaling %q (none|group|sampled)", s)
	}
}

func mustNormalize(s SchemeSpec) SchemeSpec {
	n, err := s.Normalized()
	if err != nil {
		panic(err) // constructors only build registered kinds
	}
	return n
}

// Normalized returns a deep copy with every omitted knob filled with the
// kind's default, all-false bypass masks dropped, and sub-specs the kind
// does not read cleared — the form in which two equivalent specs compare
// (and hash) equal. ParseScheme and the constructors always return
// normalized specs. Unknown kinds are an error.
func (s SchemeSpec) Normalized() (SchemeSpec, error) {
	out := SchemeSpec{Kind: s.Kind}
	switch s.Kind {
	case KindStatic, KindBestTLP:
		st := &StaticSpec{}
		if s.Static != nil {
			st.TLPs = slices.Clone(s.Static.TLPs)
			st.Label = s.Static.Label
			if slices.Contains(s.Static.Bypass, true) {
				st.Bypass = slices.Clone(s.Static.Bypass)
			}
		}
		out.Static = st
	case KindMaxTLP:
		// No knobs.
	case KindDynCTA:
		d := defaultDynCTA()
		if s.DynCTA != nil {
			fillF(&d.HighMemStall, s.DynCTA.HighMemStall)
			fillF(&d.LowMemStall, s.DynCTA.LowMemStall)
			fillF(&d.LowUtil, s.DynCTA.LowUtil)
			fillI(&d.Hysteresis, s.DynCTA.Hysteresis)
		}
		out.DynCTA = d
	case KindCCWS:
		c := defaultCCWS()
		if s.CCWS != nil {
			fillF(&c.HighVTA, s.CCWS.HighVTA)
			fillF(&c.LowVTA, s.CCWS.LowVTA)
			fillF(&c.LowUtil, s.CCWS.LowUtil)
			fillI(&c.Hysteresis, s.CCWS.Hysteresis)
		}
		out.CCWS = c
	case KindModBypass:
		m := defaultModBypass()
		if s.ModBypass != nil {
			fillF(&m.BypassL1MR, s.ModBypass.BypassL1MR)
			fillI(&m.Confirm, s.ModBypass.Confirm)
			fillI(&m.ProbeEvery, s.ModBypass.ProbeEvery)
		}
		if m.ProbeEvery < 0 {
			m.ProbeEvery = -1 // every non-positive value means "never probe"
		}
		out.ModBypass = m
	case KindPBSWS, KindPBSFI, KindPBSHS:
		p := defaultPBS(s.Kind)
		if s.PBS != nil {
			if s.PBS.Scaling != "" {
				p.Scaling = s.PBS.Scaling
			}
			if len(s.PBS.SweepLevels) > 0 {
				p.SweepLevels = slices.Clone(s.PBS.SweepLevels)
			}
			p.GroupEB = slices.Clone(s.PBS.GroupEB)
			fillI(&p.SettleWindows, s.PBS.SettleWindows)
			fillI(&p.MeasureWindows, s.PBS.MeasureWindows)
			fillI(&p.TunePatience, s.PBS.TunePatience)
			fillI(&p.FullSearchEvery, s.PBS.FullSearchEvery)
			p.DriftThreshold = s.PBS.DriftThreshold
			p.DriftWindows = s.PBS.DriftWindows
		}
		// The drift detector is one feature: no threshold means the window
		// count is dead, and an enabled detector acts on at least one
		// window — normalize both so equivalent configs compare equal.
		if p.DriftThreshold == 0 {
			p.DriftWindows = 0
		} else if p.DriftWindows == 0 {
			p.DriftWindows = 1
		}
		p.SweepLevels = slices.Clone(p.SweepLevels)
		out.PBS = p
	default:
		return SchemeSpec{}, fmt.Errorf("spec: unknown scheme kind %q (one of %v)", s.Kind, Kinds())
	}
	return out, nil
}

// fillF/fillI overwrite the default with an explicitly set (non-zero)
// knob. Zero always means "use the default"; none of the knobs has a
// meaningful zero setting (ProbeEvery's "off" is -1).
func fillF(dst *float64, v float64) {
	if v != 0 {
		*dst = v
	}
}

func fillI(dst *int, v int) {
	if v != 0 {
		*dst = v
	}
}

// Validate checks the (normalized) spec against an application count.
// numApps 0 defers the per-application length checks to run time — the
// facade uses it for managers built before the workload is chosen;
// kinds that cannot be built without the count (maxtlp) reject it.
func (s SchemeSpec) Validate(numApps int) error {
	n, err := s.Normalized()
	if err != nil {
		return err
	}
	if numApps < 0 {
		return fmt.Errorf("spec: negative application count %d", numApps)
	}
	switch n.Kind {
	case KindStatic, KindBestTLP:
		if s.Unresolved() {
			return fmt.Errorf("spec: besttlp combination unresolved; resolve it from alone profiles (spec.BestTLP)")
		}
		st := n.Static
		if len(st.TLPs) == 0 {
			return fmt.Errorf("spec: %s needs a TLP combination, e.g. %q", n.Kind, n.Kind+":2,8")
		}
		if numApps > 0 && len(st.TLPs) != numApps {
			return fmt.Errorf("spec: %s has %d TLP values for %d applications", n.Kind, len(st.TLPs), numApps)
		}
		for _, t := range st.TLPs {
			if t < 1 || t > config.MaxTLP {
				return fmt.Errorf("spec: TLP %d out of range 1..%d", t, config.MaxTLP)
			}
		}
		if st.Bypass != nil && len(st.Bypass) != len(st.TLPs) {
			return fmt.Errorf("spec: bypass mask has %d values for %d applications", len(st.Bypass), len(st.TLPs))
		}
	case KindMaxTLP:
		if numApps == 0 {
			return fmt.Errorf("spec: maxtlp needs the application count")
		}
	case KindDynCTA:
		d := n.DynCTA
		if d.Hysteresis < 1 {
			return fmt.Errorf("spec: dyncta hysteresis %d < 1", d.Hysteresis)
		}
		if d.LowMemStall >= d.HighMemStall {
			return fmt.Errorf("spec: dyncta lomem %g >= himem %g", d.LowMemStall, d.HighMemStall)
		}
	case KindCCWS:
		c := n.CCWS
		if c.Hysteresis < 1 {
			return fmt.Errorf("spec: ccws hysteresis %d < 1", c.Hysteresis)
		}
		if c.LowVTA >= c.HighVTA {
			return fmt.Errorf("spec: ccws lovta %g >= hivta %g", c.LowVTA, c.HighVTA)
		}
	case KindModBypass:
		m := n.ModBypass
		if m.BypassL1MR <= 0 || m.BypassL1MR > 1 {
			return fmt.Errorf("spec: modbypass l1mr %g outside (0,1]", m.BypassL1MR)
		}
		if m.Confirm < 1 {
			return fmt.Errorf("spec: modbypass confirm %d < 1", m.Confirm)
		}
	default: // pbs-*
		p := n.PBS
		mode, err := scaleMode(p.Scaling)
		if err != nil {
			return err
		}
		if mode == pbscore.GroupScale {
			if len(p.GroupEB) == 0 {
				return fmt.Errorf("spec: %s group scaling needs per-application group_eb factors", n.Kind)
			}
			if numApps > 0 && len(p.GroupEB) != numApps {
				return fmt.Errorf("spec: %s has %d group_eb factors for %d applications", n.Kind, len(p.GroupEB), numApps)
			}
		}
		if len(p.SweepLevels) == 0 {
			return fmt.Errorf("spec: %s needs sweep levels", n.Kind)
		}
		for _, t := range p.SweepLevels {
			if t < 1 || t > config.MaxTLP {
				return fmt.Errorf("spec: sweep level %d out of range 1..%d", t, config.MaxTLP)
			}
		}
		if p.MeasureWindows < 1 || p.SettleWindows < 0 {
			return fmt.Errorf("spec: %s measure_windows %d / settle_windows %d invalid", n.Kind, p.MeasureWindows, p.SettleWindows)
		}
		if p.DriftThreshold < 0 || p.DriftWindows < 0 {
			return fmt.Errorf("spec: %s drift knobs must be non-negative", n.Kind)
		}
	}
	return nil
}

// Manager validates the spec and builds the tlp.Manager it describes —
// the single registry-backed construction path for every scheme. The
// manager's Name() is deterministic in the spec, so equal specs always
// report (and key) identically.
func (s SchemeSpec) Manager(numApps int) (tlp.Manager, error) {
	if err := s.Validate(numApps); err != nil {
		return nil, err
	}
	n, _ := s.Normalized() // Validate already proved it normalizes
	switch n.Kind {
	case KindStatic:
		name := n.Static.Label
		if name == "" {
			name = fmt.Sprintf("static%v", n.Static.TLPs)
		}
		return tlp.NewStatic(name, n.Static.TLPs, n.Static.Bypass), nil
	case KindBestTLP:
		name := n.Static.Label
		if name == "" {
			// The combination is part of the name so reports distinguish
			// runs even when re-profiling changes the best TLPs.
			name = fmt.Sprintf("++bestTLP%v", n.Static.TLPs)
		}
		return tlp.NewStatic(name, n.Static.TLPs, n.Static.Bypass), nil
	case KindMaxTLP:
		return tlp.NewMaxTLP(numApps), nil
	case KindDynCTA:
		d := tlp.NewDynCTA()
		d.HighMemStall = n.DynCTA.HighMemStall
		d.LowMemStall = n.DynCTA.LowMemStall
		d.LowUtil = n.DynCTA.LowUtil
		d.Hysteresis = n.DynCTA.Hysteresis
		return d, nil
	case KindCCWS:
		c := tlp.NewCCWS()
		c.HighVTA = n.CCWS.HighVTA
		c.LowVTA = n.CCWS.LowVTA
		c.LowUtil = n.CCWS.LowUtil
		c.Hysteresis = n.CCWS.Hysteresis
		return c, nil
	case KindModBypass:
		m := tlp.NewModBypass()
		m.BypassL1MR = n.ModBypass.BypassL1MR
		m.Confirm = n.ModBypass.Confirm
		m.ProbeEvery = n.ModBypass.ProbeEvery
		return m, nil
	default: // pbs-*
		p := pbscore.NewPBS(objective(n.Kind))
		mode, _ := scaleMode(n.PBS.Scaling) // validated above
		p.Scaling = mode
		p.GroupValues = slices.Clone(n.PBS.GroupEB)
		p.SweepLevels = slices.Clone(n.PBS.SweepLevels)
		p.SettleWindows = n.PBS.SettleWindows
		p.MeasureWindows = n.PBS.MeasureWindows
		p.TunePatience = n.PBS.TunePatience
		p.FullSearchEvery = n.PBS.FullSearchEvery
		p.DriftThreshold = n.PBS.DriftThreshold
		p.DriftWindows = n.PBS.DriftWindows
		return p, nil
	}
}

// MustManager is Manager for specs known valid by construction.
func MustManager(s SchemeSpec, numApps int) tlp.Manager {
	m, err := s.Manager(numApps)
	if err != nil {
		panic(err)
	}
	return m
}

// PBSManager builds a pbs-* spec's manager with its concrete type, for
// call sites that read the search telemetry (Searching/Searches/
// Restarts/Drifts) or install the phase probe.
func PBSManager(s SchemeSpec, numApps int) (*pbscore.PBS, error) {
	if !isPBS(s.Kind) {
		return nil, fmt.Errorf("spec: %q is not a pbs scheme", s.Kind)
	}
	m, err := s.Manager(numApps)
	if err != nil {
		return nil, err
	}
	return m.(*pbscore.PBS), nil
}

// canonical rewrites the scheme into the form that identifies the
// simulation's behaviour and nothing else, for cache keying:
//
//   - maxtlp and resolved besttlp collapse to the static combination
//     they execute as (so ++bestTLP[2 8], static:2,8, and an alone run
//     at the same levels deduplicate);
//   - display labels are dropped;
//   - every remaining knob is explicit at its default (normalization),
//     so "ccws" and "ccws:hivta=0.15" key identically.
//
// Invalid specs are returned unchanged — they can never execute, so
// their keys only need to be deterministic.
func (s SchemeSpec) canonical(numApps int) SchemeSpec {
	n, err := s.Normalized()
	if err != nil {
		return s
	}
	switch n.Kind {
	case KindMaxTLP:
		if numApps <= 0 {
			return n
		}
		tlps := make([]int, numApps)
		for i := range tlps {
			tlps[i] = config.MaxTLP
		}
		return SchemeSpec{Kind: KindStatic, Static: &StaticSpec{TLPs: tlps}}
	case KindStatic, KindBestTLP:
		if s.Unresolved() {
			return n
		}
		return SchemeSpec{Kind: KindStatic, Static: &StaticSpec{TLPs: n.Static.TLPs, Bypass: n.Static.Bypass}}
	default:
		return n
	}
}
