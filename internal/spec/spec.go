// Package spec is the canonical, serializable description of what to
// simulate: a SchemeSpec names a TLP-management policy by kind plus its
// typed knobs, and a RunSpec adds the machine, the applications, and the
// run lengths. Every scheme the paper evaluates — static combinations,
// ++bestTLP, ++maxTLP, DynCTA, Mod+Bypass, CCWS, and PBS-WS/FI/HS — is
// registered here with a validated factory producing a tlp.Manager, so
// commands, experiments, and the result cache all construct policies
// from one description instead of thirty scattered switch arms.
//
// Specs round-trip two ways: JSON (the service-facing request encoding)
// and the compact flag-string grammar of ParseScheme/String
// ("static:2,8", "pbs-ws:drift=0.6,driftwin=4"). Normalization fills
// every knob with the defaults of the real constructors, so a spec that
// states a default explicitly and one that omits it are the same spec —
// the property internal/simcache's canonical cache keys build on.
package spec

import (
	"fmt"
	"slices"

	pbscore "ebm/internal/core"
	"ebm/internal/metrics"
	"ebm/internal/tlp"
)

// Scheme kinds, as written in flag strings and JSON. The names are
// constants for call-site convenience; the authoritative list is the
// registry (Kinds()), which out-of-tree kinds extend via Register.
const (
	KindStatic    = "static"
	KindBestTLP   = "besttlp"
	KindMaxTLP    = "maxtlp"
	KindDynCTA    = "dyncta"
	KindModBypass = "modbypass"
	KindCCWS      = "ccws"
	KindPBSWS     = "pbs-ws"
	KindPBSFI     = "pbs-fi"
	KindPBSHS     = "pbs-hs"
	KindBatch     = "batch"
	KindWRS       = "wrs"
)

// StaticSpec parameterizes the static and besttlp kinds.
type StaticSpec struct {
	// TLPs is the per-application TLP combination. For besttlp it is the
	// profile-derived best combination; a besttlp spec with no TLPs is
	// unresolved and cannot build a manager yet.
	TLPs []int `json:"tlps,omitempty"`

	// Bypass optionally bypasses the L1 for selected applications. Nil
	// and all-false are the same configuration (and normalize to nil).
	Bypass []bool `json:"bypass,omitempty"`

	// Label overrides the manager's report name (e.g. "alone@4"). It is
	// display-only: not expressible in the flag grammar and dropped from
	// canonical cache keys, since it never affects the simulation.
	Label string `json:"label,omitempty"`
}

// DynCTASpec parameterizes the ++DynCTA baseline. Zero fields take the
// defaults of tlp.NewDynCTA.
type DynCTASpec struct {
	HighMemStall float64 `json:"high_mem_stall,omitempty"`
	LowMemStall  float64 `json:"low_mem_stall,omitempty"`
	LowUtil      float64 `json:"low_util,omitempty"`
	Hysteresis   int     `json:"hysteresis,omitempty"`
}

// CCWSSpec parameterizes the CCWS-style baseline. Zero fields take the
// defaults of tlp.NewCCWS. The run must enable the victim-tag detector
// (RunSpec.VictimTags) for the VTARate signal to be live.
type CCWSSpec struct {
	HighVTA    float64 `json:"high_vta,omitempty"`
	LowVTA     float64 `json:"low_vta,omitempty"`
	LowUtil    float64 `json:"low_util,omitempty"`
	Hysteresis int     `json:"hysteresis,omitempty"`
}

// ModBypassSpec parameterizes the Mod+Bypass baseline. Zero fields take
// the defaults of tlp.NewModBypass; ProbeEvery -1 disables re-probing.
type ModBypassSpec struct {
	BypassL1MR float64 `json:"bypass_l1mr,omitempty"`
	Confirm    int     `json:"confirm,omitempty"`
	ProbeEvery int     `json:"probe_every,omitempty"`
}

// PBSSpec parameterizes the pattern-based searching managers. Zero
// fields take the defaults of core.NewPBS for the kind's objective.
type PBSSpec struct {
	// Scaling is the alone-EB scaling source: "none", "group", or
	// "sampled". Empty means the objective's default (none for WS,
	// sampled for FI/HS).
	Scaling string `json:"scaling,omitempty"`

	// GroupEB supplies the per-application factors for group scaling.
	// JSON/API-only (profile-derived, not flag-expressible).
	GroupEB []float64 `json:"group_eb,omitempty"`

	SweepLevels     []int   `json:"sweep_levels,omitempty"`
	SettleWindows   int     `json:"settle_windows,omitempty"`
	MeasureWindows  int     `json:"measure_windows,omitempty"`
	TunePatience    int     `json:"tune_patience,omitempty"`
	FullSearchEvery int     `json:"full_search_every,omitempty"`
	DriftThreshold  float64 `json:"drift_threshold,omitempty"`
	DriftWindows    int     `json:"drift_windows,omitempty"`
}

// SchemeSpec is the canonical description of one TLP-management policy:
// a kind plus the sub-spec that kind reads (the others stay nil). The
// zero value of a sub-spec means "all defaults", so SchemeSpec{Kind:
// KindDynCTA} is the paper's DynCTA baseline.
type SchemeSpec struct {
	Kind      string         `json:"kind"`
	Static    *StaticSpec    `json:"static,omitempty"`
	DynCTA    *DynCTASpec    `json:"dyncta,omitempty"`
	CCWS      *CCWSSpec      `json:"ccws,omitempty"`
	ModBypass *ModBypassSpec `json:"modbypass,omitempty"`
	PBS       *PBSSpec       `json:"pbs,omitempty"`
	Batch     *BatchSpec     `json:"batch,omitempty"`
	WRS       *WRSSpec       `json:"wrs,omitempty"`
}

// Static returns a fixed-TLP-combination scheme (bypass may be nil).
func Static(tlps []int, bypass []bool) SchemeSpec {
	s := SchemeSpec{Kind: KindStatic, Static: &StaticSpec{
		TLPs:   slices.Clone(tlps),
		Bypass: slices.Clone(bypass),
	}}
	return mustNormalize(s)
}

// Labeled is Static with an explicit report name (e.g. "alone@4").
func Labeled(label string, tlps []int, bypass []bool) SchemeSpec {
	s := Static(tlps, bypass)
	s.Static.Label = label
	return s
}

// BestTLP returns the ++bestTLP scheme resolved to a concrete
// profile-derived combination.
func BestTLP(tlps []int) SchemeSpec {
	return mustNormalize(SchemeSpec{Kind: KindBestTLP, Static: &StaticSpec{TLPs: slices.Clone(tlps)}})
}

// MaxTLP returns the ++maxTLP scheme (every application at the top TLP).
func MaxTLP() SchemeSpec { return mustNormalize(SchemeSpec{Kind: KindMaxTLP}) }

// DynCTA returns the ++DynCTA baseline with its default thresholds.
func DynCTA() SchemeSpec { return mustNormalize(SchemeSpec{Kind: KindDynCTA}) }

// CCWS returns the CCWS-style baseline with its default thresholds.
func CCWS() SchemeSpec { return mustNormalize(SchemeSpec{Kind: KindCCWS}) }

// ModBypass returns the Mod+Bypass baseline with its default thresholds.
func ModBypass() SchemeSpec { return mustNormalize(SchemeSpec{Kind: KindModBypass}) }

// PBS returns the pattern-based searching scheme for an objective
// (PBS-WS, PBS-FI, or PBS-HS) with the paper's default knobs.
func PBS(obj metrics.Objective) SchemeSpec {
	kind := KindPBSWS
	switch obj {
	case metrics.ObjFI:
		kind = KindPBSFI
	case metrics.ObjHS:
		kind = KindPBSHS
	}
	return mustNormalize(SchemeSpec{Kind: kind})
}

// Unresolved reports whether the spec still needs profile-derived data
// before it can build a manager (a besttlp scheme with no combination).
func (s SchemeSpec) Unresolved() bool {
	return s.Kind == KindBestTLP && (s.Static == nil || len(s.Static.TLPs) == 0)
}

// isPBS reports whether kind is one of the pattern-based searchers.
func isPBS(kind string) bool {
	return kind == KindPBSWS || kind == KindPBSFI || kind == KindPBSHS
}

// objective returns the EB objective a PBS kind optimizes.
func objective(kind string) metrics.Objective {
	switch kind {
	case KindPBSFI:
		return metrics.ObjFI
	case KindPBSHS:
		return metrics.ObjHS
	default:
		return metrics.ObjWS
	}
}

// defaultPBS reads the default knobs off the real constructor so the
// spec layer can never drift from core.NewPBS.
func defaultPBS(kind string) *PBSSpec {
	p := pbscore.NewPBS(objective(kind))
	return &PBSSpec{
		Scaling:         p.Scaling.String(),
		SweepLevels:     p.SweepLevels,
		SettleWindows:   p.SettleWindows,
		MeasureWindows:  p.MeasureWindows,
		TunePatience:    p.TunePatience,
		FullSearchEvery: p.FullSearchEvery,
	}
}

// defaultDynCTA / defaultCCWS / defaultModBypass likewise mirror the
// manager constructors' defaults.
func defaultDynCTA() *DynCTASpec {
	d := tlp.NewDynCTA()
	return &DynCTASpec{
		HighMemStall: d.HighMemStall, LowMemStall: d.LowMemStall,
		LowUtil: d.LowUtil, Hysteresis: d.Hysteresis,
	}
}

func defaultCCWS() *CCWSSpec {
	c := tlp.NewCCWS()
	return &CCWSSpec{
		HighVTA: c.HighVTA, LowVTA: c.LowVTA,
		LowUtil: c.LowUtil, Hysteresis: c.Hysteresis,
	}
}

func defaultModBypass() *ModBypassSpec {
	m := tlp.NewModBypass()
	return &ModBypassSpec{BypassL1MR: m.BypassL1MR, Confirm: m.Confirm, ProbeEvery: m.ProbeEvery}
}

func scaleMode(s string) (pbscore.ScaleMode, error) {
	switch s {
	case pbscore.NoScale.String():
		return pbscore.NoScale, nil
	case pbscore.GroupScale.String():
		return pbscore.GroupScale, nil
	case pbscore.SampledScale.String():
		return pbscore.SampledScale, nil
	default:
		return 0, fmt.Errorf("spec: unknown scaling %q (none|group|sampled)", s)
	}
}

func mustNormalize(s SchemeSpec) SchemeSpec {
	n, err := s.Normalized()
	if err != nil {
		panic(err) // constructors only build registered kinds
	}
	return n
}

// Normalized returns a deep copy with every omitted knob filled with the
// kind's default, all-false bypass masks dropped, and sub-specs the kind
// does not read cleared — the form in which two equivalent specs compare
// (and hash) equal. ParseScheme and the constructors always return
// normalized specs. Unknown (unregistered) kinds are an error.
func (s SchemeSpec) Normalized() (SchemeSpec, error) {
	d, ok := lookup(s.Kind)
	if !ok {
		return SchemeSpec{}, fmt.Errorf("spec: unknown scheme kind %q (one of %v)", s.Kind, Kinds())
	}
	return d.Normalize(s), nil
}

// fillF/fillI overwrite the default with an explicitly set (non-zero)
// knob. Zero always means "use the default"; none of the knobs has a
// meaningful zero setting (ProbeEvery's "off" is -1).
func fillF(dst *float64, v float64) {
	if v != 0 {
		*dst = v
	}
}

func fillI(dst *int, v int) {
	if v != 0 {
		*dst = v
	}
}

// Validate checks the (normalized) spec against an application count.
// numApps 0 defers the per-application length checks to run time — the
// facade uses it for managers built before the workload is chosen;
// kinds that cannot be built without the count (maxtlp) reject it.
func (s SchemeSpec) Validate(numApps int) error {
	n, err := s.Normalized()
	if err != nil {
		return err
	}
	if numApps < 0 {
		return fmt.Errorf("spec: negative application count %d", numApps)
	}
	d, _ := lookup(n.Kind) // Normalized already proved the kind is registered
	return d.Validate(n, numApps)
}

// Manager validates the spec and builds the tlp.Manager it describes —
// the single registry-backed construction path for every scheme. The
// manager's Name() is deterministic in the spec, so equal specs always
// report (and key) identically.
func (s SchemeSpec) Manager(numApps int) (tlp.Manager, error) {
	if err := s.Validate(numApps); err != nil {
		return nil, err
	}
	n, _ := s.Normalized() // Validate already proved it normalizes
	d, _ := lookup(n.Kind)
	return d.Factory(n, numApps)
}

// MustManager is Manager for specs known valid by construction. The
// panic carries the scheme's flag-grammar string, not just its kind, so
// a bad spec is debuggable from the stack trace alone.
func MustManager(s SchemeSpec, numApps int) tlp.Manager {
	m, err := s.Manager(numApps)
	if err != nil {
		panic(fmt.Errorf("spec: MustManager(%q, %d apps): %w", s.String(), numApps, err))
	}
	return m
}

// PBSManager builds a pbs-* spec's manager with its concrete type, for
// call sites that read the search telemetry (Searching/Searches/
// Restarts/Drifts) or install the phase probe.
func PBSManager(s SchemeSpec, numApps int) (*pbscore.PBS, error) {
	if !isPBS(s.Kind) {
		return nil, fmt.Errorf("spec: %q is not a pbs scheme", s.Kind)
	}
	m, err := s.Manager(numApps)
	if err != nil {
		return nil, err
	}
	return m.(*pbscore.PBS), nil
}

// canonical rewrites the scheme into the form that identifies the
// simulation's behaviour and nothing else, for cache keying:
//
//   - maxtlp and resolved besttlp collapse to the static combination
//     they execute as (so ++bestTLP[2 8], static:2,8, and an alone run
//     at the same levels deduplicate);
//   - display labels are dropped;
//   - every remaining knob is explicit at its default (normalization),
//     so "ccws" and "ccws:hivta=0.15" key identically.
//
// Invalid specs are returned unchanged — they can never execute, so
// their keys only need to be deterministic.
func (s SchemeSpec) canonical(numApps int) SchemeSpec {
	n, err := s.Normalized()
	if err != nil {
		return s
	}
	d, _ := lookup(n.Kind)
	if d.Canonical == nil {
		return n
	}
	return d.Canonical(n, numApps)
}
