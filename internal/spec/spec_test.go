package spec

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"ebm/internal/config"
	"ebm/internal/metrics"
)

// numAppsFor picks the application count a spec's manager is built for
// in the round-trip tests.
func numAppsFor(s SchemeSpec) int {
	if (s.Kind == KindStatic || s.Kind == KindBestTLP) && s.Static != nil {
		return len(s.Static.TLPs)
	}
	return 2
}

// grammarCorpus enumerates every kind crossed with a grid of knob
// settings: the defaults, each knob individually off-default, and a
// combined variant. It backs both the exhaustive round-trip test (every
// entry must survive both round trips) and the FuzzParseScheme seed set.
func grammarCorpus() []string {
	out := []string{
		"static:4",
		"static:2,8",
		"static:2,8,24",
		"static:2,8,bypass=tf",
		"static:24,24,bypass=tt",
		"besttlp:2,8",
		"besttlp:6,6,bypass=ft",
		"maxtlp",

		"dyncta",
		"dyncta:himem=0.6", "dyncta:lomem=0.1", "dyncta:loutil=0.5", "dyncta:hyst=4",
		"dyncta:himem=0.9,lomem=0.05,loutil=0.3,hyst=1",

		"ccws",
		"ccws:hivta=0.3", "ccws:lovta=0.01", "ccws:loutil=0.5", "ccws:hyst=5",
		"ccws:hivta=0.2,lovta=0.1,hyst=3",

		"modbypass",
		"modbypass:l1mr=0.5", "modbypass:confirm=5", "modbypass:probe=-1", "modbypass:probe=64",
		"modbypass:l1mr=0.99,confirm=1,probe=16",

		"batch",
		"batch:period=4", "batch:hi=16", "batch:lo=1",
		"batch:period=2,hi=12,lo=4",

		"wrs",
		"wrs:share=4", "wrs:himem=0.8", "wrs:loutil=0.5", "wrs:hyst=3",
		"wrs:share=12,himem=0.4,loutil=0.9,hyst=1",
	}
	for _, kind := range []string{KindPBSWS, KindPBSFI, KindPBSHS} {
		out = append(out, kind)
		for _, knob := range []string{
			"scaling=none", "scaling=sampled", "sweep=1+4+16", "sweep=2",
			"settle=3", "measure=5", "patience=1", "fullevery=9",
			"drift=0.6", "drift=0.6,driftwin=4",
		} {
			out = append(out, kind+":"+knob)
		}
		out = append(out, kind+":sweep=1+2+4+8,measure=3,drift=0.25,driftwin=2")
	}
	return out
}

// gridSpecs parses the grammar corpus and appends the JSON-only
// variants. Every entry must survive both round trips.
func gridSpecs(t *testing.T) []SchemeSpec {
	t.Helper()
	var out []SchemeSpec
	for _, s := range grammarCorpus() {
		sp, err := ParseScheme(s)
		if err != nil {
			t.Fatalf("grid spec %q: %v", s, err)
		}
		out = append(out, sp)
	}

	// JSON-only features: display labels and group scaling factors.
	out = append(out, Labeled("alone@4", []int{4}, nil))
	group := PBS(metrics.ObjFI)
	group.PBS.Scaling = "group"
	group.PBS.GroupEB = []float64{1.25, 2.5}
	out = append(out, mustNormalize(group))
	return out
}

// TestRoundTripExhaustive is the registry's core contract: for every
// kind × knob setting, the flag string and the JSON encoding both
// reproduce the identical normalized spec, and the spec builds an
// identically named manager.
func TestRoundTripExhaustive(t *testing.T) {
	for _, s := range gridSpecs(t) {
		n := numAppsFor(s)

		// Flag-string round trip. Labels and group factors are JSON-only,
		// so compare against the spec with them stripped.
		want := s
		if want.Static != nil && want.Static.Label != "" {
			st := *want.Static
			st.Label = ""
			want.Static = &st
		}
		if want.PBS != nil && want.PBS.GroupEB != nil {
			p := *want.PBS
			p.GroupEB = nil
			want.PBS = &p
			want = mustNormalize(want) // group scaling w/o factors still parses
		}
		parsed, err := ParseScheme(s.String())
		if err != nil {
			t.Errorf("%s: ParseScheme(String) failed: %v", s, err)
			continue
		}
		if !reflect.DeepEqual(parsed, want) {
			t.Errorf("%s: flag round trip changed the spec:\n got %#v\nwant %#v", s, parsed, want)
		}

		// JSON round trip preserves everything, including labels/factors.
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%s: marshal: %v", s, err)
		}
		var back SchemeSpec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", s, err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Errorf("%s: JSON round trip changed the spec:\n got %#v\nwant %#v", s, back, s)
		}

		// Both decodings build managers named identically to the original's.
		m1, err := s.Manager(n)
		if err != nil {
			t.Errorf("%s: Manager(%d): %v", s, n, err)
			continue
		}
		// Skip when parsing legitimately stripped a JSON-only display
		// label or group factors, which change the reported name.
		if (s.Static == nil || s.Static.Label == "") && (s.PBS == nil || s.PBS.GroupEB == nil) {
			m2, err := parsed.Manager(n)
			if err != nil {
				t.Errorf("%s: parsed Manager(%d): %v", s, n, err)
			} else if m1.Name() != m2.Name() {
				t.Errorf("%s: manager names diverge: %q vs %q", s, m1.Name(), m2.Name())
			}
		}
		m3, err := back.Manager(n)
		if err != nil {
			t.Errorf("%s: JSON Manager(%d): %v", s, n, err)
		} else if m1.Name() != m3.Name() {
			t.Errorf("%s: JSON manager name diverges: %q vs %q", s, m1.Name(), m3.Name())
		}
	}
}

// TestManagerNames pins the report names the registry produces — the
// strings every figure and historical cache key was built around.
func TestManagerNames(t *testing.T) {
	cases := []struct {
		s    SchemeSpec
		n    int
		name string
	}{
		{Static([]int{2, 8}, nil), 2, "static[2 8]"},
		{Labeled("alone@4", []int{4}, nil), 1, "alone@4"},
		{BestTLP([]int{2, 8}), 2, "++bestTLP[2 8]"},
		{MaxTLP(), 2, "++maxTLP"},
		{DynCTA(), 2, "++DynCTA"},
		{CCWS(), 2, "++CCWS"},
		{ModBypass(), 2, "Mod+Bypass"},
		{PBS(metrics.ObjWS), 2, "PBS-WS"},
		{PBS(metrics.ObjFI), 2, "PBS-FI(sampled)"},
		{PBS(metrics.ObjHS), 2, "PBS-HS(sampled)"},
	}
	for _, c := range cases {
		m, err := c.s.Manager(c.n)
		if err != nil {
			t.Errorf("%s: %v", c.s, err)
			continue
		}
		if m.Name() != c.name {
			t.Errorf("%s: name %q, want %q", c.s, m.Name(), c.name)
		}
	}
}

func TestNormalizationEquivalences(t *testing.T) {
	// Stating a default explicitly is the same spec as omitting it.
	explicit, err := ParseScheme("ccws:hivta=0.15")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(explicit, CCWS()) {
		t.Errorf("default-valued knob broke equivalence: %#v vs %#v", explicit, CCWS())
	}

	// All-false bypass masks are no mask.
	if s := Static([]int{2, 8}, []bool{false, false}); s.Static.Bypass != nil {
		t.Errorf("all-false bypass not dropped: %#v", s.Static)
	}

	// Any negative probe interval is the single "never" value.
	a, _ := ParseScheme("modbypass:probe=-7")
	b, _ := ParseScheme("modbypass:probe=-1")
	if !reflect.DeepEqual(a, b) {
		t.Errorf("negative probe intervals not collapsed: %#v vs %#v", a, b)
	}

	// Drift windows are dead without a threshold, and at least 1 with one.
	off, _ := ParseScheme("pbs-ws")
	deadWin := PBS(metrics.ObjWS)
	deadWin.PBS.DriftWindows = 3
	if n := mustNormalize(deadWin); !reflect.DeepEqual(n, off) {
		t.Errorf("drift windows without threshold not dropped: %#v", n.PBS)
	}
	on, _ := ParseScheme("pbs-ws:drift=0.5")
	if on.PBS.DriftWindows != 1 {
		t.Errorf("enabled drift defaulted to %d windows, want 1", on.PBS.DriftWindows)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                  // no kind
		"bogus",             // unknown kind
		"static:",           // colon with no args
		"dyncta:4",          // bare int outside static/besttlp
		"static:x",          // non-integer level
		"ccws:bogus=1",      // unknown knob
		"ccws:hivta=x",      // bad float
		"dyncta:hyst=x",     // bad int
		"static:2,bypass=x", // bad mask char
		"pbs-ws:scaling=no", // unknown scaling
		"pbs-ws:sweep=1+x",  // bad sweep element
		"maxtlp:loutil=0.5", // maxtlp has no knobs
	}
	for _, s := range bad {
		if _, err := ParseScheme(s); err == nil {
			t.Errorf("ParseScheme(%q) accepted", s)
		}
	}
}

func TestValidate(t *testing.T) {
	valid := func(s SchemeSpec, n int) {
		t.Helper()
		if err := s.Validate(n); err != nil {
			t.Errorf("Validate(%s, %d): %v", s, n, err)
		}
	}
	invalid := func(s SchemeSpec, n int, frag string) {
		t.Helper()
		err := s.Validate(n)
		if err == nil {
			t.Errorf("Validate(%s, %d) passed, want error mentioning %q", s, n, frag)
			return
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("Validate(%s, %d) = %v, want mention of %q", s, n, err, frag)
		}
	}

	valid(Static([]int{2, 8}, nil), 2)
	valid(Static([]int{2, 8}, nil), 0) // numApps deferred
	valid(DynCTA(), 0)
	valid(PBS(metrics.ObjWS), 3)

	invalid(SchemeSpec{Kind: "bogus"}, 2, "unknown scheme kind")
	invalid(SchemeSpec{Kind: KindStatic}, 2, "TLP combination")
	invalid(Static([]int{2, 8}, nil), 3, "2 TLP values for 3")
	invalid(Static([]int{0}, nil), 1, "out of range")
	invalid(Static([]int{config.MaxTLP + 1}, nil), 1, "out of range")
	invalid(Static([]int{2, 8}, []bool{true}), 2, "bypass mask")
	invalid(SchemeSpec{Kind: KindBestTLP}, 2, "unresolved")
	invalid(MaxTLP(), 0, "application count")
	invalid(SchemeSpec{Kind: KindDynCTA, DynCTA: &DynCTASpec{LowMemStall: 0.9}}, 2, "lomem")
	invalid(SchemeSpec{Kind: KindCCWS, CCWS: &CCWSSpec{LowVTA: 0.5}}, 2, "lovta")
	invalid(SchemeSpec{Kind: KindModBypass, ModBypass: &ModBypassSpec{BypassL1MR: 1.5}}, 2, "l1mr")
	invalid(SchemeSpec{Kind: KindPBSWS, PBS: &PBSSpec{SweepLevels: []int{99}}}, 2, "out of range")
	invalid(SchemeSpec{Kind: KindPBSWS, PBS: &PBSSpec{MeasureWindows: -1}}, 2, "measure_windows")
	invalid(SchemeSpec{Kind: KindPBSFI, PBS: &PBSSpec{Scaling: "group"}}, 2, "group_eb")

	group := PBS(metrics.ObjFI)
	group.PBS.Scaling = "group"
	group.PBS.GroupEB = []float64{1, 2}
	valid(group, 2)
	invalid(group, 3, "group_eb")
}

func TestManagerErrors(t *testing.T) {
	if _, err := (SchemeSpec{Kind: "bogus"}).Manager(2); err == nil {
		t.Error("unknown kind built a manager")
	}
	if _, err := (SchemeSpec{Kind: KindBestTLP}).Manager(2); err == nil {
		t.Error("unresolved besttlp built a manager")
	}
	if _, err := PBSManager(DynCTA(), 2); err == nil {
		t.Error("PBSManager accepted a non-pbs scheme")
	}
	if m, err := PBSManager(PBS(metrics.ObjWS), 2); err != nil || m == nil {
		t.Errorf("PBSManager(pbs-ws): %v", err)
	}
}

func TestFlagHelpAndKindsComplete(t *testing.T) {
	help := FlagHelp()
	for _, k := range Kinds() {
		if !strings.Contains(help, k) {
			t.Errorf("FlagHelp missing kind %q: %s", k, help)
		}
		if _, ok := Lookup(k); !ok {
			t.Errorf("registry missing kind %q", k)
		}
		// Every kind parses bare; every kind except besttlp (unresolved
		// until profiled) and maxtlp-with-unknown-count builds a manager.
		sp, err := ParseScheme(k)
		if err != nil {
			t.Errorf("ParseScheme(%q): %v", k, err)
			continue
		}
		if k == KindStatic || k == KindBestTLP {
			continue // need a combination to build
		}
		if _, err := sp.Manager(2); err != nil {
			t.Errorf("bare %q: Manager(2): %v", k, err)
		}
	}
}

func TestUnresolvedBestTLP(t *testing.T) {
	sp, err := ParseScheme("besttlp")
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Unresolved() {
		t.Fatal("bare besttlp not unresolved")
	}
	if BestTLP([]int{2, 8}).Unresolved() {
		t.Fatal("resolved besttlp reported unresolved")
	}
}
