package spec

// The two related-work scheme kinds landed on top of the registry: thread
// batching (Li et al.) and warp-resource sharing (Jatala et al.). They
// are ordinary registrations — nothing outside this file special-cases
// them — which is the point of the descriptor table: a new policy is one
// Register call plus its tlp.Manager.

import (
	"fmt"

	"ebm/internal/config"
	"ebm/internal/tlp"
)

// BatchSpec parameterizes the thread-batching kind. Zero fields take the
// defaults of tlp.NewBatch.
type BatchSpec struct {
	// Period is how many sampling windows one application stays the
	// batched (high-TLP) one before the turn rotates.
	Period int `json:"period,omitempty"`
	// Hi is the active application's TLP; Lo is every parked one's.
	Hi int `json:"hi,omitempty"`
	Lo int `json:"lo,omitempty"`
}

// WRSSpec parameterizes the warp-resource-sharing kind. Zero fields take
// the defaults of tlp.NewWRS.
type WRSSpec struct {
	// Share is the per-application fair-share TLP level the conserved
	// warp budget is computed from.
	Share        int     `json:"share,omitempty"`
	HighMemStall float64 `json:"high_mem_stall,omitempty"`
	LowUtil      float64 `json:"low_util,omitempty"`
	Hysteresis   int     `json:"hysteresis,omitempty"`
}

// Batch returns the thread-batching scheme with its default knobs.
func Batch() SchemeSpec { return mustNormalize(SchemeSpec{Kind: KindBatch}) }

// WRS returns the warp-resource-sharing scheme with its default knobs.
func WRS() SchemeSpec { return mustNormalize(SchemeSpec{Kind: KindWRS}) }

// defaultBatch / defaultWRS mirror the manager constructors' defaults,
// like the other kinds, so the spec layer can never drift from them.
func defaultBatch() *BatchSpec {
	b := tlp.NewBatch()
	return &BatchSpec{Period: b.Period, Hi: b.Hi, Lo: b.Lo}
}

func defaultWRS() *WRSSpec {
	w := tlp.NewWRS()
	return &WRSSpec{Share: w.Share, HighMemStall: w.HighMemStall, LowUtil: w.LowUtil, Hysteresis: w.Hysteresis}
}

func batchSub(sp *SchemeSpec) *BatchSpec {
	if sp.Batch == nil {
		sp.Batch = &BatchSpec{}
	}
	return sp.Batch
}

func wrsSub(sp *SchemeSpec) *WRSSpec {
	if sp.WRS == nil {
		sp.WRS = &WRSSpec{}
	}
	return sp.WRS
}

func registerBatch() {
	Register(Descriptor{
		Kind:   KindBatch,
		Stater: true,
		Knobs: []KnobDef{
			knobI(KindBatch, "period", func(sp *SchemeSpec) *int { return &batchSub(sp).Period }),
			knobI(KindBatch, "hi", func(sp *SchemeSpec) *int { return &batchSub(sp).Hi }),
			knobI(KindBatch, "lo", func(sp *SchemeSpec) *int { return &batchSub(sp).Lo }),
		},
		Normalize: func(s SchemeSpec) SchemeSpec {
			b := defaultBatch()
			if s.Batch != nil {
				fillI(&b.Period, s.Batch.Period)
				fillI(&b.Hi, s.Batch.Hi)
				fillI(&b.Lo, s.Batch.Lo)
			}
			return SchemeSpec{Kind: KindBatch, Batch: b}
		},
		Validate: func(n SchemeSpec, numApps int) error {
			b := n.Batch
			if b.Period < 1 {
				return fmt.Errorf("spec: batch period %d < 1", b.Period)
			}
			if b.Lo < 1 || b.Hi > config.MaxTLP || b.Lo > b.Hi {
				return fmt.Errorf("spec: batch lo %d / hi %d outside 1 <= lo <= hi <= %d", b.Lo, b.Hi, config.MaxTLP)
			}
			return nil
		},
		Factory: func(n SchemeSpec, numApps int) (tlp.Manager, error) {
			b := tlp.NewBatch()
			b.Period = n.Batch.Period
			b.Hi = n.Batch.Hi
			b.Lo = n.Batch.Lo
			return b, nil
		},
		Format: func(n SchemeSpec) []string {
			def := defaultBatch()
			var args []string
			intArg(&args, "period", n.Batch.Period, def.Period)
			intArg(&args, "hi", n.Batch.Hi, def.Hi)
			intArg(&args, "lo", n.Batch.Lo, def.Lo)
			return args
		},
	})
}

func registerWRS() {
	Register(Descriptor{
		Kind:   KindWRS,
		Stater: true,
		Knobs: []KnobDef{
			knobI(KindWRS, "share", func(sp *SchemeSpec) *int { return &wrsSub(sp).Share }),
			knobF(KindWRS, "himem", func(sp *SchemeSpec) *float64 { return &wrsSub(sp).HighMemStall }),
			knobF(KindWRS, "loutil", func(sp *SchemeSpec) *float64 { return &wrsSub(sp).LowUtil }),
			knobI(KindWRS, "hyst", func(sp *SchemeSpec) *int { return &wrsSub(sp).Hysteresis }),
		},
		Normalize: func(s SchemeSpec) SchemeSpec {
			w := defaultWRS()
			if s.WRS != nil {
				fillI(&w.Share, s.WRS.Share)
				fillF(&w.HighMemStall, s.WRS.HighMemStall)
				fillF(&w.LowUtil, s.WRS.LowUtil)
				fillI(&w.Hysteresis, s.WRS.Hysteresis)
			}
			return SchemeSpec{Kind: KindWRS, WRS: w}
		},
		Validate: func(n SchemeSpec, numApps int) error {
			w := n.WRS
			if w.Share < 1 || w.Share > config.MaxTLP {
				return fmt.Errorf("spec: wrs share %d out of range 1..%d", w.Share, config.MaxTLP)
			}
			if w.Hysteresis < 1 {
				return fmt.Errorf("spec: wrs hysteresis %d < 1", w.Hysteresis)
			}
			if w.HighMemStall <= 0 || w.HighMemStall > 1 {
				return fmt.Errorf("spec: wrs himem %g outside (0,1]", w.HighMemStall)
			}
			if w.LowUtil <= 0 || w.LowUtil > 1 {
				return fmt.Errorf("spec: wrs loutil %g outside (0,1]", w.LowUtil)
			}
			return nil
		},
		Factory: func(n SchemeSpec, numApps int) (tlp.Manager, error) {
			w := tlp.NewWRS()
			w.Share = n.WRS.Share
			w.HighMemStall = n.WRS.HighMemStall
			w.LowUtil = n.WRS.LowUtil
			w.Hysteresis = n.WRS.Hysteresis
			return w, nil
		},
		Format: func(n SchemeSpec) []string {
			def := defaultWRS()
			var args []string
			intArg(&args, "share", n.WRS.Share, def.Share)
			numArg(&args, "himem", n.WRS.HighMemStall, def.HighMemStall)
			numArg(&args, "loutil", n.WRS.LowUtil, def.LowUtil)
			intArg(&args, "hyst", n.WRS.Hysteresis, def.Hysteresis)
			return args
		},
	})
}
