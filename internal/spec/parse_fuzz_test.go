package spec

import (
	"reflect"
	"testing"
)

// FuzzParseScheme drives arbitrary strings through the flag grammar.
// Invariants: ParseScheme never panics; an accepted spec re-renders
// through String() to a string that parses back to the identical spec
// (the fixed point the cache key relies on); and validation/manager
// construction on the parsed spec never panics either.
func FuzzParseScheme(f *testing.F) {
	for _, s := range grammarCorpus() {
		f.Add(s)
	}
	// Representative rejects: unknown kind, bad knob, dangling colon,
	// malformed numbers, knobs on kinds that take none.
	for _, s := range []string{
		"", ":", "static", "static:", "static:0", "static:a,b",
		"nosuchkind", "nosuchkind:1,2", "maxtlp:4", "dyncta:bogus=1",
		"ccws:hivta=", "pbs-ws:sweep=", "batch:period=x", "wrs:share=-1",
		"static:2,8,bypass=xy", "pbs-ws:scaling=wat",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseScheme(s)
		if err != nil {
			if err.Error() == "" {
				t.Fatalf("ParseScheme(%q): empty error", s)
			}
			return
		}
		rendered := sp.String()
		back, err := ParseScheme(rendered)
		if err != nil {
			t.Fatalf("ParseScheme(%q) accepted but its rendering %q does not reparse: %v",
				s, rendered, err)
		}
		if !reflect.DeepEqual(sp, back) {
			t.Fatalf("round trip not a fixed point:\n input %q -> %#v\n via %q -> %#v",
				s, sp, rendered, back)
		}
		// Validation and construction must fail cleanly, never panic.
		if err := sp.Validate(2); err == nil {
			if _, err := sp.Manager(2); err != nil {
				t.Fatalf("%q validated for 2 apps but Manager failed: %v", rendered, err)
			}
		}
	})
}
