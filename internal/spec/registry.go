package spec

import (
	"fmt"
	"slices"
	"strconv"
	"strings"

	"ebm/internal/tlp"
)

// KnobDef declares one key=value knob of a scheme kind: the key as written
// in the flag grammar, an optional display form for help text (defaults to
// the key), and the setter that applies a raw value string to the
// un-normalized spec. Setters return badArg-style errors for malformed
// values; range checks belong in the descriptor's Validate.
type KnobDef struct {
	Key  string
	Help string // display form in error/help text; "" means Key
	Set  func(sp *SchemeSpec, val string) error
}

// Descriptor is the single source of truth for one scheme kind: its flag
// grammar (knobs, bare-TLP args), normalization and validation rules, the
// manager factory, the cache-key canonical form, and everything the CLIs
// derive (help text, victim-tag requirements). Registering a descriptor
// makes the kind parseable, buildable, and cache-keyable everywhere —
// there is no other switch to extend.
type Descriptor struct {
	// Kind is the name written in flag strings and JSON ("dyncta").
	Kind string

	// Knobs are the kind's key=value args, in help-text order.
	Knobs []KnobDef

	// AcceptsTLPs marks kinds whose bare integer args build a TLP
	// combination (static/besttlp).
	AcceptsTLPs bool

	// Normalize fills every omitted knob with the kind's default and
	// clears sub-specs the kind does not read. It must be total: any
	// spec of this kind normalizes (validation happens later).
	Normalize func(s SchemeSpec) SchemeSpec

	// Validate checks the normalized spec against an application count
	// (0 defers per-application length checks to run time).
	Validate func(n SchemeSpec, numApps int) error

	// Factory builds the manager from a validated, normalized spec.
	Factory func(n SchemeSpec, numApps int) (tlp.Manager, error)

	// Canonical rewrites the normalized spec into the form that
	// identifies the simulation's behaviour and nothing else, for cache
	// keying. Nil means the normalized spec is already canonical.
	Canonical func(n SchemeSpec, numApps int) SchemeSpec

	// Format renders the normalized spec's args for String(), emitting
	// only knobs that differ from the kind's defaults. Nil means the
	// kind has no args.
	Format func(n SchemeSpec) []string

	// Stater marks kinds whose managers implement tlp.Stater, so
	// checkpoint forking and the adaptive search work.
	Stater bool

	// VictimTags is the victim-tag detector capacity the kind's
	// telemetry needs (0 when it reads no VTA signal). The CLIs enable
	// the detector from this instead of special-casing kinds.
	VictimTags int
}

var registry = struct {
	order  []string
	byKind map[string]*Descriptor
}{byKind: map[string]*Descriptor{}}

// Register adds a scheme kind to the registry. It panics on a duplicate
// or incomplete descriptor — registration is an init-time programming
// contract, not a runtime input.
func Register(d Descriptor) {
	switch {
	case d.Kind == "":
		panic("spec: Register: empty kind")
	case d.Normalize == nil || d.Validate == nil || d.Factory == nil:
		panic(fmt.Sprintf("spec: Register(%q): Normalize, Validate and Factory are required", d.Kind))
	}
	if _, dup := registry.byKind[d.Kind]; dup {
		panic(fmt.Sprintf("spec: Register(%q): duplicate kind", d.Kind))
	}
	registry.byKind[d.Kind] = &d
	registry.order = append(registry.order, d.Kind)
}

// lookup returns the kind's descriptor.
func lookup(kind string) (*Descriptor, bool) {
	d, ok := registry.byKind[kind]
	return d, ok
}

// Kinds returns every registered scheme kind in registration order.
func Kinds() []string {
	return slices.Clone(registry.order)
}

// Lookup returns a copy of the kind's descriptor, for callers that need
// registry metadata (Stater support, victim tags) without building a
// manager.
func Lookup(kind string) (Descriptor, bool) {
	d, ok := lookup(kind)
	if !ok {
		return Descriptor{}, false
	}
	return *d, true
}

// VictimTagsFor returns the victim-tag detector capacity the scheme's
// kind requires (0 for unregistered kinds and kinds that read no VTA
// signal). The CLIs size RunSpec.VictimTags from this.
func VictimTagsFor(s SchemeSpec) int {
	d, ok := lookup(s.Kind)
	if !ok {
		return 0
	}
	return d.VictimTags
}

// FlagHelp renders the -scheme usage line from the registry, so help
// text can never drift from the supported kinds.
func FlagHelp() string {
	return strings.Join(Kinds(), "|") +
		"; optional :args — TLP levels for static/besttlp (static:2,8), key=value knobs otherwise (see README)"
}

// knobHelp joins a kind's knob display forms for error/help text.
func knobHelp(kind string) string {
	d, ok := lookup(kind)
	if !ok {
		return ""
	}
	parts := make([]string, 0, len(d.Knobs))
	for _, k := range d.Knobs {
		if k.Help != "" {
			parts = append(parts, k.Help)
		} else {
			parts = append(parts, k.Key)
		}
	}
	return strings.Join(parts, " ")
}

func badArg(kind, tok string) error {
	help := knobHelp(kind)
	if help == "" {
		help = "none"
	}
	return fmt.Errorf("spec: bad %s arg %q (knobs: %s)", kind, tok, help)
}

// knobF/knobI build float64/int knobs over a field accessor (the accessor
// materializes the sub-spec on demand, so parsing never reads nil).
func knobF(kind, key string, get func(sp *SchemeSpec) *float64) KnobDef {
	return KnobDef{Key: key, Set: func(sp *SchemeSpec, val string) error {
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return badArg(kind, key+"="+val)
		}
		*get(sp) = v
		return nil
	}}
}

func knobI(kind, key string, get func(sp *SchemeSpec) *int) KnobDef {
	return KnobDef{Key: key, Set: func(sp *SchemeSpec, val string) error {
		v, err := strconv.Atoi(val)
		if err != nil {
			return badArg(kind, key+"="+val)
		}
		*get(sp) = v
		return nil
	}}
}

// The registrations run from one init so the presentation order is fixed
// regardless of file compilation order: the nine kinds the repo has
// always had, then the related-work additions.
func init() {
	registerBuiltins()
	registerBatch()
	registerWRS()
}
