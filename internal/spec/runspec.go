package spec

import (
	"fmt"

	"ebm/internal/config"
	"ebm/internal/kernel"
	"ebm/internal/tlp"
)

// RunSpec is the full serializable description of one simulation:
// machine, applications, scheme, and run lengths. It is the request
// type commands and experiments hand to the executor, and the value the
// result cache fingerprints — everything that determines the outcome is
// here, and nothing that does not (observers and hooks cannot be
// expressed, so a cached run is replayable by construction). Values are
// recorded as requested, not as defaulted: callers relying on engine
// defaults key consistently among themselves.
type RunSpec struct {
	Config             config.GPU      `json:"config"`
	Apps               []kernel.Params `json:"apps"`
	CoresPerApp        []int           `json:"cores_per_app,omitempty"`
	Scheme             SchemeSpec      `json:"scheme"`
	TotalCycles        uint64          `json:"total_cycles"`
	WarmupCycles       uint64          `json:"warmup_cycles"`
	WindowCycles       uint64          `json:"window_cycles,omitempty"`
	DesignatedSampling bool            `json:"designated,omitempty"`
	DecisionDelay      uint64          `json:"decision_delay,omitempty"`
	VictimTags         int             `json:"victim_tags,omitempty"`
	L2WayPartition     [][]bool        `json:"l2_ways,omitempty"`
}

// Validate checks that the run describes something executable.
func (r RunSpec) Validate() error {
	if len(r.Apps) == 0 {
		return fmt.Errorf("spec: run has no applications")
	}
	return r.Scheme.Validate(len(r.Apps))
}

// Manager builds the run's TLP manager through the scheme registry.
func (r RunSpec) Manager() (tlp.Manager, error) {
	return r.Scheme.Manager(len(r.Apps))
}

// Canonical returns the run with its scheme rewritten to the canonical
// form (labels dropped, aliases collapsed, knobs explicit at their
// defaults): the value whose JSON encoding is the run's cache identity.
// Two RunSpecs that would execute identically canonicalize equal.
func (r RunSpec) Canonical() RunSpec {
	r.Scheme = r.Scheme.canonical(len(r.Apps))
	return r
}

// PrefixCanonical returns the canonical run with TotalCycles cleared: the
// value whose JSON encoding identifies the run's deterministic prefix.
// Nothing in the engine reads TotalCycles except the cycle-loop bound, so
// two runs whose PrefixCanonical forms are equal execute bit-identically
// up to the shorter horizon — which is what makes a checkpoint written by
// one a valid fork point for the other. WarmupCycles stays in the key:
// the warmup accumulator snapshot is engine state a checkpoint carries.
func (r RunSpec) PrefixCanonical() RunSpec {
	r = r.Canonical()
	r.TotalCycles = 0
	return r
}
