package spec

import (
	"fmt"
	"slices"
	"strconv"
	"strings"
)

// The flag-string grammar, shared by ParseScheme and String:
//
//	scheme  = kind [ ":" arg { "," arg } ]
//	arg     = INT            (a TLP level; static/besttlp only)
//	        | key "=" value
//
// Bare integers build the TLP combination ("static:2,8"). Knob keys are
// per kind (see knobHelp); list-valued knobs join elements with "+"
// since "," separates args ("pbs-ws:sweep=1+4+16"). String emits only
// knobs that differ from the kind's defaults, so ParseScheme(String)
// reproduces the normalized spec exactly.

// knobHelp lists each kind's knob keys for help and error text.
var knobHelp = map[string]string{
	KindStatic:    "bypass=tf…",
	KindBestTLP:   "bypass=tf…",
	KindMaxTLP:    "",
	KindDynCTA:    "himem lomem loutil hyst",
	KindCCWS:      "hivta lovta loutil hyst",
	KindModBypass: "l1mr confirm probe",
	KindPBSWS:     "scaling sweep settle measure patience fullevery drift driftwin",
	KindPBSFI:     "scaling sweep settle measure patience fullevery drift driftwin",
	KindPBSHS:     "scaling sweep settle measure patience fullevery drift driftwin",
}

// FlagHelp renders the -scheme usage line from the registry, so help
// text can never drift from the supported kinds.
func FlagHelp() string {
	return strings.Join(Kinds(), "|") +
		"; optional :args — TLP levels for static/besttlp (static:2,8), key=value knobs otherwise (see README)"
}

// ParseScheme parses the flag-string grammar into a normalized
// SchemeSpec. It is the inverse of String.
func ParseScheme(s string) (SchemeSpec, error) {
	kind, args, hasArgs := strings.Cut(strings.TrimSpace(s), ":")
	sp := SchemeSpec{Kind: kind}
	if _, err := sp.Normalized(); err != nil {
		return SchemeSpec{}, err
	}
	if hasArgs && strings.TrimSpace(args) == "" {
		return SchemeSpec{}, fmt.Errorf("spec: %q has a ':' but no args", s)
	}
	for _, tok := range strings.Split(args, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, isKnob := strings.Cut(tok, "=")
		if !isKnob {
			lvl, err := strconv.Atoi(tok)
			if err != nil || (kind != KindStatic && kind != KindBestTLP) {
				return SchemeSpec{}, badArg(kind, tok)
			}
			if sp.Static == nil {
				sp.Static = &StaticSpec{}
			}
			sp.Static.TLPs = append(sp.Static.TLPs, lvl)
			continue
		}
		if err := setKnob(&sp, kind, key, val); err != nil {
			return SchemeSpec{}, err
		}
	}
	return sp.Normalized()
}

func badArg(kind, tok string) error {
	help := knobHelp[kind]
	if help == "" {
		help = "none"
	}
	return fmt.Errorf("spec: bad %s arg %q (knobs: %s)", kind, tok, help)
}

// setKnob applies one key=value token to the kind's sub-spec.
func setKnob(sp *SchemeSpec, kind, key, val string) error {
	f := func(dst *float64) error {
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return badArg(kind, key+"="+val)
		}
		*dst = v
		return nil
	}
	i := func(dst *int) error {
		v, err := strconv.Atoi(val)
		if err != nil {
			return badArg(kind, key+"="+val)
		}
		*dst = v
		return nil
	}
	switch kind {
	case KindStatic, KindBestTLP:
		if key != "bypass" {
			return badArg(kind, key+"="+val)
		}
		if sp.Static == nil {
			sp.Static = &StaticSpec{}
		}
		mask := make([]bool, len(val))
		for j := 0; j < len(val); j++ {
			switch val[j] {
			case 't':
				mask[j] = true
			case 'f':
			default:
				return fmt.Errorf("spec: bypass mask %q must be t/f per application", val)
			}
		}
		sp.Static.Bypass = mask
		return nil
	case KindDynCTA:
		if sp.DynCTA == nil {
			sp.DynCTA = &DynCTASpec{}
		}
		d := sp.DynCTA
		switch key {
		case "himem":
			return f(&d.HighMemStall)
		case "lomem":
			return f(&d.LowMemStall)
		case "loutil":
			return f(&d.LowUtil)
		case "hyst":
			return i(&d.Hysteresis)
		}
	case KindCCWS:
		if sp.CCWS == nil {
			sp.CCWS = &CCWSSpec{}
		}
		c := sp.CCWS
		switch key {
		case "hivta":
			return f(&c.HighVTA)
		case "lovta":
			return f(&c.LowVTA)
		case "loutil":
			return f(&c.LowUtil)
		case "hyst":
			return i(&c.Hysteresis)
		}
	case KindModBypass:
		if sp.ModBypass == nil {
			sp.ModBypass = &ModBypassSpec{}
		}
		m := sp.ModBypass
		switch key {
		case "l1mr":
			return f(&m.BypassL1MR)
		case "confirm":
			return i(&m.Confirm)
		case "probe":
			return i(&m.ProbeEvery)
		}
	case KindPBSWS, KindPBSFI, KindPBSHS:
		if sp.PBS == nil {
			sp.PBS = &PBSSpec{}
		}
		p := sp.PBS
		switch key {
		case "scaling":
			if _, err := scaleMode(val); err != nil {
				return err
			}
			p.Scaling = val
			return nil
		case "sweep":
			var levels []int
			for _, part := range strings.Split(val, "+") {
				lvl, err := strconv.Atoi(part)
				if err != nil {
					return badArg(kind, key+"="+val)
				}
				levels = append(levels, lvl)
			}
			p.SweepLevels = levels
			return nil
		case "settle":
			return i(&p.SettleWindows)
		case "measure":
			return i(&p.MeasureWindows)
		case "patience":
			return i(&p.TunePatience)
		case "fullevery":
			return i(&p.FullSearchEvery)
		case "drift":
			return f(&p.DriftThreshold)
		case "driftwin":
			return i(&p.DriftWindows)
		}
	}
	return badArg(kind, key+"="+val)
}

// String renders the spec in the flag-string grammar, emitting only
// knobs that differ from the kind's defaults (display labels and
// group_eb factors are JSON-only and omitted). For any valid spec,
// ParseScheme(s.String()) reproduces s.Normalized().
func (s SchemeSpec) String() string {
	n, err := s.Normalized()
	if err != nil {
		return s.Kind
	}
	var args []string
	num := func(key string, v, def float64) {
		if v != def {
			args = append(args, key+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	ival := func(key string, v, def int) {
		if v != def {
			args = append(args, key+"="+strconv.Itoa(v))
		}
	}
	switch n.Kind {
	case KindStatic, KindBestTLP:
		for _, t := range n.Static.TLPs {
			args = append(args, strconv.Itoa(t))
		}
		if n.Static.Bypass != nil {
			mask := make([]byte, len(n.Static.Bypass))
			for j, b := range n.Static.Bypass {
				if b {
					mask[j] = 't'
				} else {
					mask[j] = 'f'
				}
			}
			args = append(args, "bypass="+string(mask))
		}
	case KindDynCTA:
		def := defaultDynCTA()
		num("himem", n.DynCTA.HighMemStall, def.HighMemStall)
		num("lomem", n.DynCTA.LowMemStall, def.LowMemStall)
		num("loutil", n.DynCTA.LowUtil, def.LowUtil)
		ival("hyst", n.DynCTA.Hysteresis, def.Hysteresis)
	case KindCCWS:
		def := defaultCCWS()
		num("hivta", n.CCWS.HighVTA, def.HighVTA)
		num("lovta", n.CCWS.LowVTA, def.LowVTA)
		num("loutil", n.CCWS.LowUtil, def.LowUtil)
		ival("hyst", n.CCWS.Hysteresis, def.Hysteresis)
	case KindModBypass:
		def := defaultModBypass()
		num("l1mr", n.ModBypass.BypassL1MR, def.BypassL1MR)
		ival("confirm", n.ModBypass.Confirm, def.Confirm)
		ival("probe", n.ModBypass.ProbeEvery, def.ProbeEvery)
	case KindPBSWS, KindPBSFI, KindPBSHS:
		def := defaultPBS(n.Kind)
		if n.PBS.Scaling != def.Scaling {
			args = append(args, "scaling="+n.PBS.Scaling)
		}
		if !slices.Equal(n.PBS.SweepLevels, def.SweepLevels) {
			parts := make([]string, len(n.PBS.SweepLevels))
			for j, lvl := range n.PBS.SweepLevels {
				parts[j] = strconv.Itoa(lvl)
			}
			args = append(args, "sweep="+strings.Join(parts, "+"))
		}
		ival("settle", n.PBS.SettleWindows, def.SettleWindows)
		ival("measure", n.PBS.MeasureWindows, def.MeasureWindows)
		ival("patience", n.PBS.TunePatience, def.TunePatience)
		ival("fullevery", n.PBS.FullSearchEvery, def.FullSearchEvery)
		num("drift", n.PBS.DriftThreshold, 0)
		if n.PBS.DriftThreshold != 0 {
			ival("driftwin", n.PBS.DriftWindows, 1)
		}
	}
	if len(args) == 0 {
		return n.Kind
	}
	return n.Kind + ":" + strings.Join(args, ",")
}
