package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// The flag-string grammar, shared by ParseScheme and String:
//
//	scheme  = kind [ ":" arg { "," arg } ]
//	arg     = INT            (a TLP level; static/besttlp only)
//	        | key "=" value
//
// Bare integers build the TLP combination ("static:2,8"). Knob keys are
// per kind (each registered Descriptor declares its KnobDefs); list-valued
// knobs join elements with "+" since "," separates args
// ("pbs-ws:sweep=1+4+16"). String emits only knobs that differ from the
// kind's defaults, so ParseScheme(String) reproduces the normalized spec
// exactly. Both directions dispatch through the registry, so a kind
// registered out of tree parses and prints with no changes here.

// ParseScheme parses the flag-string grammar into a normalized
// SchemeSpec. It is the inverse of String.
func ParseScheme(s string) (SchemeSpec, error) {
	kind, args, hasArgs := strings.Cut(strings.TrimSpace(s), ":")
	sp := SchemeSpec{Kind: kind}
	d, ok := lookup(kind)
	if !ok {
		_, err := sp.Normalized() // the canonical unknown-kind error
		return SchemeSpec{}, err
	}
	if hasArgs && strings.TrimSpace(args) == "" {
		return SchemeSpec{}, fmt.Errorf("spec: %q has a ':' but no args", s)
	}
	for _, tok := range strings.Split(args, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, isKnob := strings.Cut(tok, "=")
		if !isKnob {
			lvl, err := strconv.Atoi(tok)
			if err != nil || !d.AcceptsTLPs {
				return SchemeSpec{}, badArg(kind, tok)
			}
			if sp.Static == nil {
				sp.Static = &StaticSpec{}
			}
			sp.Static.TLPs = append(sp.Static.TLPs, lvl)
			continue
		}
		if err := setKnob(d, &sp, key, val); err != nil {
			return SchemeSpec{}, err
		}
	}
	return sp.Normalized()
}

// setKnob applies one key=value token via the kind's knob table.
func setKnob(d *Descriptor, sp *SchemeSpec, key, val string) error {
	for _, k := range d.Knobs {
		if k.Key == key {
			return k.Set(sp, val)
		}
	}
	return badArg(d.Kind, key+"="+val)
}

// String renders the spec in the flag-string grammar, emitting only
// knobs that differ from the kind's defaults (display labels and
// group_eb factors are JSON-only and omitted). For any valid spec,
// ParseScheme(s.String()) reproduces s.Normalized().
func (s SchemeSpec) String() string {
	n, err := s.Normalized()
	if err != nil {
		return s.Kind
	}
	d, _ := lookup(n.Kind)
	var args []string
	if d.Format != nil {
		args = d.Format(n)
	}
	if len(args) == 0 {
		return n.Kind
	}
	return n.Kind + ":" + strings.Join(args, ",")
}
