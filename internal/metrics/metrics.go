// Package metrics implements the paper's Table III: the slowdown-based
// system metrics (SD, WS, FI, HS) reported in the evaluation, the
// auxiliary resource metrics (BW, CMR, EB), and the EB-based runtime
// proxies (EB-WS, EB-FI, EB-HS) the proposed mechanisms optimize, plus the
// alone-ratio bias measures of Fig. 5.
package metrics

import (
	"fmt"
	"math"
)

// ebFloor keeps ratio metrics finite when an application's EB is measured
// as (near) zero over a window with no memory traffic.
const ebFloor = 1e-3

// cmrFloor caps cache amplification at 100x, matching the simulator's
// telemetry floor.
const cmrFloor = 1e-2

// Slowdowns computes per-application SD = IPC-Shared / IPC-Alone. The
// alone IPCs must come from each application running by itself on the same
// core set at its bestTLP (the paper's definition).
func Slowdowns(sharedIPC, aloneIPC []float64) ([]float64, error) {
	return SlowdownsInto(nil, sharedIPC, aloneIPC)
}

// SlowdownsInto appends per-application slowdowns to dst (pass dst[:0] to
// reuse a buffer across grid cells) and returns the extended slice.
func SlowdownsInto(dst, sharedIPC, aloneIPC []float64) ([]float64, error) {
	if len(sharedIPC) != len(aloneIPC) {
		return nil, fmt.Errorf("metrics: %d shared IPCs vs %d alone IPCs", len(sharedIPC), len(aloneIPC))
	}
	for i := range sharedIPC {
		if aloneIPC[i] <= 0 {
			return nil, fmt.Errorf("metrics: alone IPC of app %d is %v", i, aloneIPC[i])
		}
		dst = append(dst, sharedIPC[i]/aloneIPC[i])
	}
	return dst, nil
}

// WS is the Weighted Speedup: the sum of slowdowns. Its maximum is the
// number of applications (absent constructive interference).
func WS(sd []float64) float64 {
	sum := 0.0
	for _, s := range sd {
		sum += s
	}
	return sum
}

// FI is the Fairness Index: the minimum pairwise ratio of slowdowns.
// 1.0 is a completely fair system. For two applications this is
// min(SD1/SD2, SD2/SD1); for more it generalizes to min_i,j SDi/SDj.
func FI(sd []float64) float64 {
	if len(sd) == 0 {
		return 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range sd {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi <= 0 {
		return 0
	}
	return lo / hi
}

// HS is the Harmonic Weighted Speedup, n/Σ(1/SDi), balancing throughput
// and fairness.
func HS(sd []float64) float64 {
	if len(sd) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range sd {
		if s <= 0 {
			return 0
		}
		sum += 1 / s
	}
	return float64(len(sd)) / sum
}

// IT is the Instruction Throughput: the sum of raw IPCs (used by
// Observation 2: maximizing IT is not maximizing WS).
func IT(ipc []float64) float64 {
	sum := 0.0
	for _, x := range ipc {
		sum += x
	}
	return sum
}

// EB computes effective bandwidth from attained bandwidth (fraction of
// peak) and combined miss rate, flooring CMR so idle phases stay finite.
func EB(bw, cmr float64) float64 {
	if cmr < cmrFloor {
		cmr = cmrFloor
	}
	return bw / cmr
}

// CMR is the combined miss rate L1MR * L2MR.
func CMR(l1mr, l2mr float64) float64 { return l1mr * l2mr }

// floorEB clamps an EB vector away from zero for ratio metrics.
func floorEB(eb []float64) []float64 {
	out := make([]float64, len(eb))
	for i, e := range eb {
		if e < ebFloor {
			e = ebFloor
		}
		out[i] = e
	}
	return out
}

// EBWS is the EB-based Weighted Speedup: the sum of per-app EBs.
func EBWS(eb []float64) float64 {
	sum := 0.0
	for _, e := range eb {
		sum += e
	}
	return sum
}

// EBFI is the EB-based Fairness Index: the minimum pairwise EB ratio,
// optionally after scaling each EB by the application's alone-EB (the
// scaling factors of Section IV). scale may be nil for unscaled EB-FI.
func EBFI(eb, scale []float64) float64 {
	e := floorEB(eb)
	if scale != nil {
		for i := range e {
			if i < len(scale) && scale[i] > 0 {
				e[i] /= scale[i]
			}
		}
	}
	return FI(e)
}

// EBHS is the EB-based Harmonic Speedup, optionally scaled like EBFI.
func EBHS(eb, scale []float64) float64 {
	e := floorEB(eb)
	if scale != nil {
		for i := range e {
			if i < len(scale) && scale[i] > 0 {
				e[i] /= scale[i]
			}
		}
	}
	return HS(e)
}

// AloneRatio returns the bias measure used in Fig. 5: max(m1/m2, m2/m1)
// for the alone values of the two applications (IPC_AR or EB_AR).
func AloneRatio(m1, m2 float64) float64 {
	if m1 <= 0 || m2 <= 0 {
		return math.Inf(1)
	}
	if m1 > m2 {
		return m1 / m2
	}
	return m2 / m1
}

// Objective selects which system metric an optimizer targets.
type Objective int

const (
	// ObjWS maximizes weighted speedup (or EB-WS for EB-based search).
	ObjWS Objective = iota
	// ObjFI maximizes the fairness index (or EB-FI).
	ObjFI
	// ObjHS maximizes harmonic weighted speedup (or EB-HS).
	ObjHS
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case ObjWS:
		return "WS"
	case ObjFI:
		return "FI"
	case ObjHS:
		return "HS"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// SDMetric evaluates the objective over a slowdown vector.
func (o Objective) SDMetric(sd []float64) float64 {
	switch o {
	case ObjWS:
		return WS(sd)
	case ObjFI:
		return FI(sd)
	case ObjHS:
		return HS(sd)
	}
	return 0
}

// EBMetric evaluates the EB-based proxy of the objective over an EB
// vector, with optional alone-EB scaling (used by FI and HS as Section IV
// prescribes; WS is unscaled because outliers are rare).
func (o Objective) EBMetric(eb, scale []float64) float64 {
	switch o {
	case ObjWS:
		return EBWS(eb)
	case ObjFI:
		return EBFI(eb, scale)
	case ObjHS:
		return EBHS(eb, scale)
	}
	return 0
}
