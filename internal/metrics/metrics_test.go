package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSlowdowns(t *testing.T) {
	sd, err := Slowdowns([]float64{2, 3}, []float64{4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sd[0], 0.5) || !almost(sd[1], 0.5) {
		t.Fatalf("sd = %v", sd)
	}
	if _, err := Slowdowns([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Slowdowns([]float64{1, 1}, []float64{1, 0}); err == nil {
		t.Error("zero alone IPC accepted")
	}
}

func TestTableIIIWorkedExample(t *testing.T) {
	sd := []float64{0.8, 0.5}
	if !almost(WS(sd), 1.3) {
		t.Errorf("WS = %v", WS(sd))
	}
	if !almost(FI(sd), 0.625) {
		t.Errorf("FI = %v", FI(sd))
	}
	// HS = 2/(1/0.8 + 1/0.5) = 2/3.25
	if !almost(HS(sd), 2/3.25) {
		t.Errorf("HS = %v", HS(sd))
	}
	if !almost(IT([]float64{1.5, 2.5}), 4) {
		t.Errorf("IT wrong")
	}
}

func TestFIProperties(t *testing.T) {
	f := func(a, b uint16) bool {
		sd := []float64{float64(a)/100 + 0.01, float64(b)/100 + 0.01}
		fi := FI(sd)
		if fi < 0 || fi > 1+1e-12 {
			return false
		}
		// Symmetric.
		return almost(fi, FI([]float64{sd[1], sd[0]}))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if FI([]float64{0.7, 0.7}) != 1 {
		t.Error("equal slowdowns not perfectly fair")
	}
	if FI(nil) != 0 {
		t.Error("empty FI")
	}
}

func TestHSBetweenMinAndMax(t *testing.T) {
	// n-app harmonic speedup lies within [n*min, n*max]/n... more simply:
	// min(sd) <= HS <= max(sd) for the harmonic mean.
	f := func(a, b, c uint16) bool {
		sd := []float64{float64(a)/50 + 0.02, float64(b)/50 + 0.02, float64(c)/50 + 0.02}
		h := HS(sd)
		lo, hi := sd[0], sd[0]
		for _, s := range sd {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		return h >= lo-1e-9 && h <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWSProperties(t *testing.T) {
	// WS is the sum and is maximized at SD = 1 per app.
	f := func(a, b uint8) bool {
		sd := []float64{float64(a%101) / 100, float64(b%101) / 100}
		return WS(sd) <= 2+1e-12 && almost(WS(sd), sd[0]+sd[1])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEBAndFloor(t *testing.T) {
	if !almost(EB(0.4, 0.2), 2.0) {
		t.Errorf("EB = %v", EB(0.4, 0.2))
	}
	// CMR below the floor is clamped: caches amplify at most 100x.
	if got := EB(0.5, 0); !almost(got, 50) {
		t.Errorf("floored EB = %v, want 50", got)
	}
	if !almost(CMR(0.5, 0.4), 0.2) {
		t.Errorf("CMR wrong")
	}
}

func TestEBWS(t *testing.T) {
	if !almost(EBWS([]float64{1.5, 2.5}), 4) {
		t.Error("EBWS wrong")
	}
}

func TestEBFIScaling(t *testing.T) {
	eb := []float64{2, 4}
	if !almost(EBFI(eb, nil), 0.5) {
		t.Errorf("unscaled EBFI = %v", EBFI(eb, nil))
	}
	// Scaling by the alone EBs makes the system look perfectly fair when
	// each app retains the same fraction of its alone EB.
	if !almost(EBFI(eb, []float64{4, 8}), 1) {
		t.Errorf("scaled EBFI = %v, want 1", EBFI(eb, []float64{4, 8}))
	}
	// Zero/negative scales are ignored rather than dividing by zero.
	if v := EBFI(eb, []float64{0, 8}); v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("EBFI with zero scale = %v", v)
	}
}

func TestEBHS(t *testing.T) {
	if !almost(EBHS([]float64{2, 2}, nil), 2) {
		t.Errorf("EBHS = %v", EBHS([]float64{2, 2}, nil))
	}
	if v := EBHS([]float64{0, 2}, nil); v <= 0 {
		t.Errorf("floored EBHS = %v, want positive", v)
	}
}

func TestAloneRatio(t *testing.T) {
	if !almost(AloneRatio(2, 8), 4) || !almost(AloneRatio(8, 2), 4) {
		t.Error("AloneRatio not symmetric")
	}
	if !almost(AloneRatio(3, 3), 1) {
		t.Error("AloneRatio of equals != 1")
	}
	if !math.IsInf(AloneRatio(0, 1), 1) {
		t.Error("AloneRatio with zero should be +Inf")
	}
	f := func(a, b uint16) bool {
		return AloneRatio(float64(a)+1, float64(b)+1) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestObjectiveDispatch(t *testing.T) {
	sd := []float64{0.8, 0.5}
	if !almost(ObjWS.SDMetric(sd), WS(sd)) {
		t.Error("ObjWS dispatch")
	}
	if !almost(ObjFI.SDMetric(sd), FI(sd)) {
		t.Error("ObjFI dispatch")
	}
	if !almost(ObjHS.SDMetric(sd), HS(sd)) {
		t.Error("ObjHS dispatch")
	}
	eb := []float64{1, 2}
	if !almost(ObjWS.EBMetric(eb, nil), 3) {
		t.Error("EB dispatch WS")
	}
	if !almost(ObjFI.EBMetric(eb, nil), 0.5) {
		t.Error("EB dispatch FI")
	}
	if ObjWS.String() != "WS" || ObjFI.String() != "FI" || ObjHS.String() != "HS" {
		t.Error("Objective names")
	}
	if Objective(99).SDMetric(sd) != 0 {
		t.Error("unknown objective should score 0")
	}
}

func TestEquation5Consistency(t *testing.T) {
	// The paper's WS derivation: with equal alone values, WS is
	// proportional to the shared sum. Verify the algebra via Slowdowns.
	shared := []float64{3, 5}
	alone := []float64{10, 10}
	sd, _ := Slowdowns(shared, alone)
	if !almost(WS(sd), (3.0+5.0)/10.0) {
		t.Errorf("WS = %v", WS(sd))
	}
}
