package cache

import (
	"testing"

	"ebm/internal/config"
)

func TestVictimTagsDetectLostLocality(t *testing.T) {
	// 1-set, 4-way cache with a 5-line circular scan: every miss evicts a
	// line that will be referenced again soon — all steady-state misses
	// are lost locality.
	geom := config.CacheGeometry{SizeBytes: 512, Ways: 4, LineBytes: 128}
	c := New(geom, 1)
	c.EnableVictimTags(8)
	if !c.VictimTagsEnabled() {
		t.Fatal("detector not enabled")
	}
	lines := []uint64{0, 128, 256, 384, 512}
	for pass := 0; pass < 3; pass++ {
		for _, a := range lines {
			if !c.Access(a, 0) {
				c.Fill(a, 0)
			}
		}
	}
	c.NewWindow()
	missBefore := c.Stats[0].Misses.Total()
	vtaBefore := c.VTAHits[0].Total()
	for _, a := range lines {
		if !c.Access(a, 0) {
			c.Fill(a, 0)
		}
	}
	misses := c.Stats[0].Misses.Total() - missBefore
	vta := c.VTAHits[0].Total() - vtaBefore
	if misses == 0 {
		t.Fatal("expected thrashing misses")
	}
	if vta != misses {
		t.Fatalf("VTA hits %d != misses %d for a pure thrash pattern", vta, misses)
	}
}

func TestVictimTagsColdMissesNotCharged(t *testing.T) {
	geom := config.CacheGeometry{SizeBytes: 4096, Ways: 4, LineBytes: 128}
	c := New(geom, 1)
	c.EnableVictimTags(16)
	for i := uint64(0); i < 8; i++ {
		addr := i * 128
		if c.Access(addr, 0) {
			t.Fatal("unexpected hit")
		}
		c.Fill(addr, 0)
	}
	if got := c.VTAHits[0].Total(); got != 0 {
		t.Fatalf("cold misses charged %d lost-locality hits", got)
	}
}

func TestVictimTagsFIFOBounded(t *testing.T) {
	geom := config.CacheGeometry{SizeBytes: 512, Ways: 4, LineBytes: 128}
	c := New(geom, 1)
	c.EnableVictimTags(2) // tiny FIFO: old victims age out
	// Evict lines 0..3 in order by filling 4 new lines into the full set.
	for i := uint64(0); i < 4; i++ {
		c.Fill(i*128, 0)
	}
	for i := uint64(4); i < 8; i++ {
		c.Fill(i*128, 0) // evicts 0,1,2,3 in LRU order
	}
	// Victim FIFO holds only the last two victims (tags of 256, 384).
	c.Access(0, 0)   // aged out: no VTA hit
	c.Access(384, 0) // still in FIFO: VTA hit
	if got := c.VTAHits[0].Total(); got != 1 {
		t.Fatalf("VTA hits = %d, want 1 (FIFO bounded at 2)", got)
	}
}

func TestVictimTagsDisable(t *testing.T) {
	geom := config.CacheGeometry{SizeBytes: 512, Ways: 4, LineBytes: 128}
	c := New(geom, 1)
	c.EnableVictimTags(4)
	c.EnableVictimTags(0)
	if c.VictimTagsEnabled() {
		t.Fatal("disable failed")
	}
	// Operations must not panic with the detector off.
	c.Access(0, 0)
	c.Fill(0, 0)
	c.Fill(512, 0)
	c.Fill(1024, 0)
}

func TestVictimTagsWindowed(t *testing.T) {
	geom := config.CacheGeometry{SizeBytes: 512, Ways: 4, LineBytes: 128}
	c := New(geom, 1)
	c.EnableVictimTags(8)
	for pass := 0; pass < 3; pass++ {
		for _, a := range []uint64{0, 128, 256, 384, 512} {
			if !c.Access(a, 0) {
				c.Fill(a, 0)
			}
		}
	}
	if c.VTAHits[0].Window() == 0 {
		t.Fatal("no windowed VTA hits")
	}
	c.NewWindow()
	if c.VTAHits[0].Window() != 0 {
		t.Fatal("window not rolled")
	}
}
