package cache

import (
	"testing"
	"testing/quick"

	"ebm/internal/config"
)

func tiny() config.CacheGeometry {
	// 2 sets x 2 ways x 128B lines = 512 B.
	return config.CacheGeometry{SizeBytes: 512, Ways: 2, LineBytes: 128}
}

func TestMissThenFillThenHit(t *testing.T) {
	c := New(tiny(), 1)
	const addr = 0x1000
	if c.Access(addr, 0) {
		t.Fatal("hit in an empty cache")
	}
	c.Fill(addr, 0)
	if !c.Access(addr, 0) {
		t.Fatal("miss after fill")
	}
	if got := c.Stats[0].Accesses.Total(); got != 2 {
		t.Fatalf("accesses = %d, want 2", got)
	}
	if got := c.Stats[0].Misses.Total(); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
}

func TestAllocateOnFillOnly(t *testing.T) {
	c := New(tiny(), 1)
	c.Access(0x1000, 0) // miss must NOT install the line
	if c.Contains(0x1000) {
		t.Fatal("Access installed a line; the model is allocate-on-fill")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(tiny(), 1)
	// Set 0 holds lines whose (addr/128) is even... with 2 sets the set
	// index alternates per line. Use addresses mapping to the same set:
	// stride = sets*line = 256.
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Fill(a, 0)
	c.Fill(b, 0)
	c.Probe(a) // a is now MRU
	ev := c.Fill(d, 0)
	if !ev.Valid || ev.LineAddr != b {
		t.Fatalf("evicted %+v, want line %#x", ev, b)
	}
	if !c.Contains(a) || c.Contains(b) || !c.Contains(d) {
		t.Fatal("LRU state wrong after eviction")
	}
}

func TestFillRefreshExisting(t *testing.T) {
	c := New(tiny(), 2)
	c.Fill(0, 0)
	ev := c.Fill(0, 1) // re-fill by another app: refresh, no eviction
	if ev.Valid {
		t.Fatalf("re-fill evicted %+v", ev)
	}
	occ := c.Occupancy()
	if occ[0] != 0 || occ[1] != 1 {
		t.Fatalf("re-fill did not transfer ownership: %v", occ)
	}
}

func TestWriteProbeSetsDirtyAndWriteBack(t *testing.T) {
	c := New(tiny(), 1)
	if c.WriteProbe(0) {
		t.Fatal("write hit in empty cache")
	}
	c.Fill(0, 0)
	if !c.WriteProbe(0) {
		t.Fatal("write miss on resident line")
	}
	// Evict it: same set is reached with stride 512.
	c.Fill(512, 0)
	ev := c.Fill(1024, 0)
	if !ev.Valid || ev.LineAddr != 0 || !ev.Dirty {
		t.Fatalf("dirty eviction wrong: %+v", ev)
	}
	// A clean line must not come back dirty.
	ev2 := c.Fill(1536, 0)
	if !ev2.Valid || ev2.Dirty {
		t.Fatalf("clean eviction wrong: %+v", ev2)
	}
}

func TestDirtyClearedOnRefill(t *testing.T) {
	c := New(tiny(), 1)
	c.Fill(0, 0)
	c.WriteProbe(0)
	c.Fill(512, 0)
	c.Fill(1024, 0) // evicts dirty 0
	c.Fill(0, 0)    // fresh copy must be clean
	c.Fill(1536, 0) // fills the other way in the set
	// Now evict 0 again (it is LRU or not depending on touches; probe others):
	c.Probe(1024)
	c.Probe(1536)
	ev := c.Fill(2048, 0)
	if ev.LineAddr == 0 && ev.Dirty {
		t.Fatal("refilled line kept a stale dirty bit")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(tiny(), 1)
	c.Fill(0x80, 0)
	if !c.Invalidate(0x80) {
		t.Fatal("Invalidate missed a resident line")
	}
	if c.Invalidate(0x80) {
		t.Fatal("Invalidate hit twice")
	}
	if c.Contains(0x80) {
		t.Fatal("line survived invalidation")
	}
}

func TestWayPartitioning(t *testing.T) {
	c := New(tiny(), 2)
	if err := c.SetWayPartition(0, []bool{true, false}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetWayPartition(1, []bool{false, true}); err != nil {
		t.Fatal(err)
	}
	// App 0 fills two same-set lines: the second must evict the first
	// (only one way available), never app 1's line.
	c.Fill(0, 1)    // app 1 takes a way (the victim path prefers invalid ways)
	c.Fill(512, 0)  // app 0's first line
	c.Fill(1024, 0) // must evict 512, not 0
	if !c.Contains(0) {
		t.Fatal("partitioned fill evicted another app's way")
	}
	if c.Contains(512) {
		t.Fatal("app 0 exceeded its one allowed way")
	}
	occ := c.Occupancy()
	if occ[0] != 1 || occ[1] != 1 {
		t.Fatalf("occupancy %v, want [1 1]", occ)
	}
}

func TestWayPartitionErrors(t *testing.T) {
	c := New(tiny(), 1)
	if err := c.SetWayPartition(5, []bool{true, true}); err == nil {
		t.Error("out-of-range app accepted")
	}
	if err := c.SetWayPartition(0, []bool{true}); err == nil {
		t.Error("short mask accepted")
	}
	if err := c.SetWayPartition(0, []bool{false, false}); err == nil {
		t.Error("empty mask accepted")
	}
	if err := c.SetWayPartition(0, nil); err != nil {
		t.Errorf("clearing partition failed: %v", err)
	}
}

func TestNewWindowResetsStats(t *testing.T) {
	c := New(tiny(), 1)
	c.Access(0, 0)
	c.NewWindow()
	if c.Stats[0].Accesses.Window() != 0 {
		t.Fatal("window not reset")
	}
	if c.Stats[0].Accesses.Total() != 1 {
		t.Fatal("total lost on window reset")
	}
}

func TestFlush(t *testing.T) {
	c := New(tiny(), 1)
	c.Fill(0, 0)
	c.Fill(128, 0)
	c.Flush()
	if c.Contains(0) || c.Contains(128) {
		t.Fatal("lines survived Flush")
	}
	occ := c.Occupancy()
	if occ[0] != 0 {
		t.Fatalf("occupancy after flush: %v", occ)
	}
}

func TestProbeDoesNotRecordStats(t *testing.T) {
	c := New(tiny(), 1)
	c.Probe(0)
	c.WriteProbe(0)
	if c.Stats[0].Accesses.Total() != 0 {
		t.Fatal("Probe/WriteProbe perturbed the read miss-rate stats")
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	geom := config.CacheGeometry{SizeBytes: 4096, Ways: 4, LineBytes: 128}
	c := New(geom, 3)
	f := func(addrs []uint32) bool {
		for i, a := range addrs {
			c.Fill(uint64(a)&^127, i%3)
		}
		total := 0
		for _, o := range c.Occupancy() {
			total += o
		}
		return total <= c.Lines()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFillThenContainsProperty(t *testing.T) {
	geom := config.CacheGeometry{SizeBytes: 8192, Ways: 8, LineBytes: 128}
	c := New(geom, 1)
	f := func(a uint32) bool {
		addr := uint64(a) &^ 127
		c.Fill(addr, 0)
		return c.Contains(addr) // the just-filled line is always resident
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetFitsMeansNoSteadyStateMisses(t *testing.T) {
	geom := config.CacheGeometry{SizeBytes: 16 * 1024, Ways: 4, LineBytes: 128}
	c := New(geom, 1)
	// 64 lines, half the capacity: after one cold pass everything hits.
	lines := make([]uint64, 64)
	for i := range lines {
		lines[i] = uint64(i * 128)
	}
	for _, a := range lines {
		if !c.Access(a, 0) {
			c.Fill(a, 0)
		}
	}
	c.NewWindow()
	for pass := 0; pass < 3; pass++ {
		for _, a := range lines {
			if !c.Access(a, 0) {
				c.Fill(a, 0)
			}
		}
	}
	if r := c.Stats[0].WindowRate(); r != 0 {
		t.Fatalf("steady-state miss rate %v for a fitting working set", r)
	}
}

func TestThrashingCircularScanMissesEverything(t *testing.T) {
	// Classic LRU pathology: a circular scan one line larger than the
	// set's capacity misses on every access.
	geom := config.CacheGeometry{SizeBytes: 512, Ways: 4, LineBytes: 128} // 1 set, 4 ways
	c := New(geom, 1)
	lines := []uint64{0, 128, 256, 384, 512} // 5 lines, 4 ways
	for pass := 0; pass < 4; pass++ {
		for _, a := range lines {
			if !c.Access(a, 0) {
				c.Fill(a, 0)
			}
		}
	}
	c.NewWindow()
	for _, a := range lines {
		if !c.Access(a, 0) {
			c.Fill(a, 0)
		}
	}
	if r := c.Stats[0].WindowRate(); r != 1 {
		t.Fatalf("circular over-capacity scan miss rate %v, want 1 (LRU)", r)
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted invalid geometry")
		}
	}()
	New(config.CacheGeometry{SizeBytes: 100, Ways: 3, LineBytes: 7}, 1)
}
