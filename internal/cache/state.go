package cache

import (
	"fmt"

	"ebm/internal/stats"
)

// LineState mirrors one tag-store line for engine checkpoints.
type LineState struct {
	Tag   uint64
	App   int8
	Valid bool
	Dirty bool
	LRU   uint64
}

// State is a Cache's complete serializable snapshot. Geometry and way
// partitions are construction-time configuration (re-derived from the run
// spec on restore) and are not captured.
type State struct {
	Lines []LineState
	Tick  uint64
	Stats []stats.MissRatioState

	// Victim tag array: the FIFO content, its configured capacity, and
	// the ring head. VictimCap distinguishes the fill-up phase (len <
	// cap, appends) from the ring phase (replacement at VictimHead).
	VictimTags []uint64
	VictimCap  int
	VictimHead int
	VTAHits    []stats.CounterState
}

// State returns the cache's snapshot.
func (c *Cache) State() State {
	st := State{
		Lines: make([]LineState, len(c.sets)),
		Tick:  c.tick,
		Stats: make([]stats.MissRatioState, len(c.Stats)),
	}
	for i := range c.sets {
		l := &c.sets[i]
		st.Lines[i] = LineState{Tag: l.tag, App: l.app, Valid: l.valid, Dirty: l.dirty, LRU: l.lru}
	}
	for i := range c.Stats {
		st.Stats[i] = c.Stats[i].State()
	}
	if c.victimSet != nil {
		st.VictimTags = append([]uint64(nil), c.victimTags...)
		st.VictimCap = cap(c.victimTags)
		st.VictimHead = c.victimHead
		st.VTAHits = make([]stats.CounterState, len(c.VTAHits))
		for i := range c.VTAHits {
			st.VTAHits[i] = c.VTAHits[i].State()
		}
	}
	return st
}

// SetState restores the cache from a snapshot taken on an identically
// configured cache. The victim-tag membership index is rebuilt from the
// FIFO content.
func (c *Cache) SetState(st State) error {
	if len(st.Lines) != len(c.sets) {
		return fmt.Errorf("cache: state has %d lines, cache has %d", len(st.Lines), len(c.sets))
	}
	if len(st.Stats) != len(c.Stats) {
		return fmt.Errorf("cache: state has %d app stats, cache has %d", len(st.Stats), len(c.Stats))
	}
	for i := range c.sets {
		l := &st.Lines[i]
		c.sets[i] = line{tag: l.Tag, app: l.App, valid: l.Valid, dirty: l.Dirty, lru: l.LRU}
	}
	c.tick = st.Tick
	for i := range c.Stats {
		c.Stats[i].SetState(st.Stats[i])
	}
	if st.VictimCap > 0 {
		if len(st.VictimTags) > st.VictimCap {
			return fmt.Errorf("cache: victim FIFO state len %d exceeds cap %d", len(st.VictimTags), st.VictimCap)
		}
		c.victimTags = make([]uint64, len(st.VictimTags), st.VictimCap)
		copy(c.victimTags, st.VictimTags)
		c.victimHead = st.VictimHead
		c.victimSet = make(map[uint64]int, st.VictimCap)
		for _, tag := range c.victimTags {
			c.victimSet[tag]++
		}
		c.VTAHits = make([]stats.Counter, len(st.VTAHits))
		for i := range st.VTAHits {
			c.VTAHits[i].SetState(st.VTAHits[i])
		}
	} else if c.victimSet != nil {
		// The snapshot was taken with the detector off; mirror that.
		c.victimTags, c.victimSet, c.VTAHits = nil, nil, nil
	}
	return nil
}
