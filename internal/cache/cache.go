// Package cache implements the set-associative cache model used for both
// the per-core private L1 data caches and the shared L2 slices attached to
// each memory partition.
//
// The model is a tag store with true LRU replacement, allocate-on-fill
// semantics (a miss does not install the line; the caller fetches it and
// calls Fill when the data returns, as GPGPU-Sim's sector-less mode does),
// per-application access/miss accounting in sampling windows, and optional
// per-application way partitioning used by the L2-partitioning sensitivity
// study.
package cache

import (
	"fmt"

	"ebm/internal/config"
	"ebm/internal/stats"
)

type line struct {
	tag   uint64
	app   int8
	valid bool
	dirty bool
	lru   uint64 // global LRU tick of last touch; smaller = older
}

// Eviction describes a line displaced by Fill.
type Eviction struct {
	LineAddr uint64
	App      int
	Dirty    bool
	Valid    bool
}

// Cache is a single set-associative cache. It is not safe for concurrent
// use; the simulator is single-goroutine by design.
type Cache struct {
	geom     config.CacheGeometry
	sets     []line // sets*ways lines, flattened
	ways     int
	setMask  uint64
	lineBits uint
	tick     uint64

	// Stats holds one windowed access/miss counter per application.
	Stats []stats.MissRatio

	// allowedWays[app] restricts fills of that app to the enabled ways
	// (nil entry = all ways allowed). Lookups always search every way.
	allowedWays [][]bool

	// Victim tag array (CCWS-style lost-locality detection): a small
	// FIFO of recently evicted tags. A miss whose tag is found here is
	// "lost locality" — it would have hit with less thrashing. Disabled
	// until EnableVictimTags.
	victimTags []uint64
	victimHead int
	victimSet  map[uint64]int // tag -> live count in the FIFO
	// VTAHits counts lost-locality misses per application.
	VTAHits []stats.Counter
}

// New builds a cache with the given geometry and per-app stats for numApps
// applications. It panics on an invalid geometry: construction happens at
// configuration time where a bad machine description is a programming
// error.
func New(geom config.CacheGeometry, numApps int) *Cache {
	if err := geom.Validate(); err != nil {
		panic(fmt.Sprintf("cache: %v", err))
	}
	sets := geom.Sets()
	c := &Cache{
		geom:        geom,
		sets:        make([]line, sets*geom.Ways),
		ways:        geom.Ways,
		setMask:     uint64(sets - 1),
		Stats:       make([]stats.MissRatio, numApps),
		allowedWays: make([][]bool, numApps),
	}
	for b := geom.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	return c
}

// Geometry returns the cache geometry.
func (c *Cache) Geometry() config.CacheGeometry { return c.geom }

// EnableVictimTags turns on the lost-locality detector with a FIFO of n
// recently evicted tags (n <= capacity is typical; 0 disables).
func (c *Cache) EnableVictimTags(n int) {
	if n <= 0 {
		c.victimTags = nil
		c.victimSet = nil
		c.VTAHits = nil
		return
	}
	c.victimTags = make([]uint64, 0, n)
	c.victimHead = 0
	c.victimSet = make(map[uint64]int, n)
	c.VTAHits = make([]stats.Counter, len(c.Stats))
}

// VictimTagsEnabled reports whether the detector is active.
func (c *Cache) VictimTagsEnabled() bool { return c.victimSet != nil }

// recordVictim pushes an evicted tag into the FIFO.
func (c *Cache) recordVictim(tag uint64) {
	if c.victimSet == nil {
		return
	}
	if len(c.victimTags) < cap(c.victimTags) {
		c.victimTags = append(c.victimTags, tag)
	} else {
		old := c.victimTags[c.victimHead]
		if n := c.victimSet[old] - 1; n <= 0 {
			delete(c.victimSet, old)
		} else {
			c.victimSet[old] = n
		}
		c.victimTags[c.victimHead] = tag
		c.victimHead = (c.victimHead + 1) % cap(c.victimTags)
	}
	c.victimSet[tag]++
}

// noteMiss checks a missing tag against the victim FIFO and charges a
// lost-locality hit to app if present.
func (c *Cache) noteMiss(tag uint64, app int) {
	if c.victimSet == nil {
		return
	}
	if c.victimSet[tag] > 0 && app < len(c.VTAHits) {
		c.VTAHits[app].Inc()
	}
}

// SetWayPartition restricts app's fills to the ways enabled in mask
// (len(mask) must equal the associativity). Passing nil removes the
// restriction.
func (c *Cache) SetWayPartition(app int, mask []bool) error {
	if app < 0 || app >= len(c.allowedWays) {
		return fmt.Errorf("cache: app %d out of range", app)
	}
	if mask == nil {
		c.allowedWays[app] = nil
		return nil
	}
	if len(mask) != c.ways {
		return fmt.Errorf("cache: way mask length %d != associativity %d", len(mask), c.ways)
	}
	any := false
	for _, ok := range mask {
		any = any || ok
	}
	if !any {
		return fmt.Errorf("cache: way mask for app %d enables no ways", app)
	}
	c.allowedWays[app] = append([]bool(nil), mask...)
	return nil
}

func (c *Cache) setIndex(lineAddr uint64) uint64 {
	return (lineAddr >> c.lineBits) & c.setMask
}

func (c *Cache) tag(lineAddr uint64) uint64 {
	return lineAddr >> c.lineBits
}

// Access looks up lineAddr on behalf of app and records the outcome in the
// app's windowed stats. On a hit the line's recency is updated. Access
// never allocates; use Fill when the miss data returns.
func (c *Cache) Access(lineAddr uint64, app int) (hit bool) {
	hit = c.Probe(lineAddr)
	c.Stats[app].Record(!hit)
	if !hit {
		c.noteMiss(c.tag(lineAddr), app)
	}
	return hit
}

// Probe looks up lineAddr, updating recency on hit, without recording any
// statistics. Used for write-through lookups that should not perturb the
// miss-rate telemetry the paper's mechanism samples (it samples read/load
// miss rates).
func (c *Cache) Probe(lineAddr uint64) bool {
	set := c.setIndex(lineAddr)
	tag := c.tag(lineAddr)
	base := int(set) * c.ways
	for w := 0; w < c.ways; w++ {
		l := &c.sets[base+w]
		if l.valid && l.tag == tag {
			c.tick++
			l.lru = c.tick
			return true
		}
	}
	return false
}

// WriteProbe looks up lineAddr for a store: on a hit the line is marked
// dirty (write-back semantics) and recency is updated. Stores do not
// allocate on miss and are not recorded in the read miss-rate telemetry.
func (c *Cache) WriteProbe(lineAddr uint64) bool {
	set := c.setIndex(lineAddr)
	tag := c.tag(lineAddr)
	base := int(set) * c.ways
	for w := 0; w < c.ways; w++ {
		l := &c.sets[base+w]
		if l.valid && l.tag == tag {
			c.tick++
			l.lru = c.tick
			l.dirty = true
			return true
		}
	}
	return false
}

// Contains reports whether the line is resident without touching recency.
func (c *Cache) Contains(lineAddr uint64) bool {
	set := c.setIndex(lineAddr)
	tag := c.tag(lineAddr)
	base := int(set) * c.ways
	for w := 0; w < c.ways; w++ {
		l := &c.sets[base+w]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Fill installs lineAddr for app, evicting the LRU line among the app's
// allowed ways if needed. Filling an already-resident line only refreshes
// its recency. It returns the displaced line, if any, so the caller can
// write back dirty victims.
func (c *Cache) Fill(lineAddr uint64, app int) Eviction {
	set := c.setIndex(lineAddr)
	tag := c.tag(lineAddr)
	base := int(set) * c.ways
	c.tick++

	allowed := c.allowedWays[app]
	victim := -1
	var victimLRU uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		l := &c.sets[base+w]
		if l.valid && l.tag == tag {
			// Already present (e.g. two in-flight fills merged upstream
			// or a race between bypassed and cached paths).
			l.lru = c.tick
			l.app = int8(app)
			return Eviction{}
		}
		if allowed != nil && !allowed[w] {
			continue
		}
		if !l.valid {
			if victim == -1 || c.sets[base+victim].valid {
				victim = w
				victimLRU = 0
			}
			continue
		}
		if l.lru < victimLRU {
			victim = w
			victimLRU = l.lru
		}
	}
	if victim == -1 {
		// All of the app's allowed ways hold other lines and none is
		// preferable; should be unreachable because allowed masks always
		// enable at least one way.
		panic("cache: no fill victim")
	}
	l := &c.sets[base+victim]
	var ev Eviction
	if l.valid {
		ev = Eviction{
			LineAddr: l.tag << c.lineBits,
			App:      int(l.app),
			Dirty:    l.dirty,
			Valid:    true,
		}
		c.recordVictim(l.tag)
	}
	l.tag = tag
	l.valid = true
	l.dirty = false
	l.app = int8(app)
	l.lru = c.tick
	return ev
}

// Invalidate removes lineAddr if resident, returning whether it was.
func (c *Cache) Invalidate(lineAddr uint64) bool {
	set := c.setIndex(lineAddr)
	tag := c.tag(lineAddr)
	base := int(set) * c.ways
	for w := 0; w < c.ways; w++ {
		l := &c.sets[base+w]
		if l.valid && l.tag == tag {
			l.valid = false
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid lines currently owned by each app.
func (c *Cache) Occupancy() []int {
	occ := make([]int, len(c.Stats))
	for i := range c.sets {
		l := &c.sets[i]
		if l.valid && int(l.app) < len(occ) {
			occ[l.app]++
		}
	}
	return occ
}

// Lines returns the total line capacity.
func (c *Cache) Lines() int { return len(c.sets) }

// NewWindow starts a new sampling window on every app's counters.
func (c *Cache) NewWindow() {
	for i := range c.Stats {
		c.Stats[i].NewWindow()
	}
	for i := range c.VTAHits {
		c.VTAHits[i].NewWindow()
	}
}

// Flush invalidates every line (kernel relaunch of a fresh context uses
// this in some experiments).
func (c *Cache) Flush() {
	for i := range c.sets {
		c.sets[i].valid = false
	}
}
